package chiaroscuro

import (
	"testing"
)

// TestRunNetworkedMatchesRun drives the public entry points: the same
// seed and parameters through the in-memory simulator and through N
// real TCP listeners must release bit-identical centroids (single
// iteration; the fixed phase lengths make the two runs cycle-for-cycle
// identical).
func TestRunNetworkedMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	data, _ := GenerateCER(10, 11)
	seeds := SeedCentroids("cer", 2, 12)
	scheme, err := NewTestScheme(128, 4, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	diss, dec := FixedPhaseCycles(data.Len())
	opts := NetworkOptions{
		K: 2, InitCentroids: seeds,
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 1, Exchanges: 10,
		DissCycles: diss, DecryptCycles: dec,
		FracBits: 24, Seed: 33, Workers: 2,
	}
	want, err := Run(data, scheme, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunNetworked(data, scheme, NetworkedOptions{NetworkOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Centroids) != len(want.Centroids) || len(want.Centroids) == 0 {
		t.Fatalf("centroid count %d, want %d (non-zero)", len(got.Centroids), len(want.Centroids))
	}
	for c := range want.Centroids {
		for j := range want.Centroids[c] {
			if got.Centroids[c][j] != want.Centroids[c][j] {
				t.Fatalf("centroid %d[%d]: networked %v, sim %v", c, j, got.Centroids[c][j], want.Centroids[c][j])
			}
		}
	}
	if got.AvgMessages != want.AvgMessages || got.AvgBytes != want.AvgBytes {
		t.Fatalf("accounting diverged: %v/%v vs %v/%v", got.AvgMessages, got.AvgBytes, want.AvgMessages, want.AvgBytes)
	}
}

// TestRunNetworkedMultiIteration checks the runtime survives several
// iterations end to end (later iterations proceed from each node's own
// decoded view, so only liveness and shape are asserted).
func TestRunNetworkedMultiIteration(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	data, _ := GenerateCER(8, 5)
	seeds := SeedCentroids("cer", 2, 6)
	scheme, err := NewTestScheme(128, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNetworked(data, scheme, NetworkedOptions{NetworkOptions: NetworkOptions{
		K: 2, InitCentroids: seeds,
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 2, Exchanges: 8,
		FracBits: 24, Seed: 9, Workers: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("ran %d iterations, want 2", len(res.Traces))
	}
	if len(res.Centroids) == 0 {
		t.Fatal("no centroids released")
	}
	for _, c := range res.Centroids {
		if len(c) != data.Dim() {
			t.Fatalf("centroid length %d, want %d", len(c), data.Dim())
		}
	}
}
