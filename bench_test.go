package chiaroscuro

// One benchmark per table/figure of the paper (run at CI scale; use
// cmd/benchfig -scale small|paper for the full-size reproductions), plus
// ablation benchmarks for the design decisions called out in DESIGN.md §4
// and end-to-end protocol benchmarks.
//
//	go test -bench=. -benchmem

import (
	"context"
	"math"
	"math/big"
	"runtime"
	"strconv"
	"testing"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/dpkmeans"
	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/experiments"
	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
)

// benchExperiment runs one registered experiment per b.N iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	gen := experiments.Registry[id]
	if gen == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := gen(experiments.Params{Scale: experiments.CI, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable2Parameters(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig2aCERInertia(b *testing.B)     { benchExperiment(b, "fig2a") }
func BenchmarkFig2bNUMEDInertia(b *testing.B)   { benchExperiment(b, "fig2b") }
func BenchmarkFig2cCERCentroids(b *testing.B)   { benchExperiment(b, "fig2c") }
func BenchmarkFig2dNUMEDCentroids(b *testing.B) { benchExperiment(b, "fig2d") }
func BenchmarkFig2eCERPrePost(b *testing.B)     { benchExperiment(b, "fig2e") }
func BenchmarkFig2fNUMEDPrePost(b *testing.B)   { benchExperiment(b, "fig2f") }
func BenchmarkFig3aChurnInertia(b *testing.B)   { benchExperiment(b, "fig3a") }
func BenchmarkFig3bChurnSumError(b *testing.B)  { benchExperiment(b, "fig3b") }
func BenchmarkFig4aSumLatency(b *testing.B)     { benchExperiment(b, "fig4a") }
func BenchmarkFig4bDecryptLatency(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig5aLocalCosts(b *testing.B)     { benchExperiment(b, "fig5a") }
func BenchmarkFig5bBandwidth(b *testing.B)      { benchExperiment(b, "fig5b") }
func BenchmarkFig6Points2D(b *testing.B)        { benchExperiment(b, "fig6") }

// --- Cryptographic micro-benchmarks at the paper's 1024-bit key size
// (Figure 5(a)'s per-operation costs).

func djScheme(b *testing.B, keyBits int) *damgardjurik.Scheme {
	b.Helper()
	sch, err := damgardjurik.NewTestScheme(keyBits, 1, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	return sch
}

func BenchmarkDJEncrypt1024(b *testing.B) {
	sch := djScheme(b, 1024)
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch.Encrypt(m)
	}
}

func BenchmarkDJAdd1024(b *testing.B) {
	sch := djScheme(b, 1024)
	c := sch.Encrypt(big.NewInt(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch.Add(c, c)
	}
}

func BenchmarkDJPartialDecrypt1024(b *testing.B) {
	sch := djScheme(b, 1024)
	c := sch.Encrypt(big.NewInt(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.PartialDecrypt(1+i%3, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDJCombine1024(b *testing.B) {
	sch := djScheme(b, 1024)
	c := sch.Encrypt(big.NewInt(42))
	parts := make([]homenc.PartialDecryption, 3)
	for i := range parts {
		p, err := sch.PartialDecrypt(i+1, c)
		if err != nil {
			b.Fatal(err)
		}
		parts[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.Combine(c, parts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: the deferred-division update rule of Algorithm 2 versus
// plaintext push-pull halving (what a non-encrypted deployment would
// do). Measures per-cycle cost at equal population.

func BenchmarkAblationUpdateRulePlaintextHalving(b *testing.B) {
	const n = 1024
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := gossip.NewSum(vals, 0)
	e, err := sim.New(sim.Config{N: n, Seed: 1}, &sim.UniformSampler{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunCycle(s.Exchange)
	}
}

func BenchmarkAblationUpdateRuleDeferredScaling(b *testing.B) {
	const n = 1024
	sch, err := plain.New(nil, 256, n, 1)
	if err != nil {
		b.Fatal(err)
	}
	codec := homenc.NewCodec(20)
	initial := make([][]*big.Int, n)
	for i := range initial {
		initial[i] = []*big.Int{codec.Encode(float64(i))}
	}
	s, err := eesum.NewSum(sch, initial, 0)
	if err != nil {
		b.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: 1}, &sim.UniformSampler{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunCycle(s.Exchange)
	}
}

// --- Ablation: SMA smoothing and the aberrant-mean filter (DESIGN.md §4
// items 4 and 5). The benchmark reports the best pre-perturbation
// inertia as a custom metric so the quality effect is visible next to
// the cost.

func ablationRun(b *testing.B, smooth bool, slack float64) {
	b.Helper()
	rng := randx.New(77, 77)
	data, _ := datasets.GenerateCER(12000, rng)
	seeds := datasets.SeedCentroids("cer", 10, rng)
	var bestSum float64
	for i := 0; i < b.N; i++ {
		res, err := dpkmeans.Run(data, dpkmeans.Config{
			InitCentroids: seeds,
			Budget:        dp.Greedy{Eps: math.Ln2},
			DMin:          datasets.CERMin, DMax: datasets.CERMax,
			Smooth:        smooth,
			RangeSlack:    slack,
			MaxIterations: 8,
			RNG:           randx.New(uint64(i)+1, 7),
		})
		if err != nil {
			b.Fatal(err)
		}
		_, best := res.BestIteration()
		bestSum += best.PreInertia
	}
	b.ReportMetric(bestSum/float64(b.N), "inertia")
}

func BenchmarkAblationSmoothingOn(b *testing.B)  { ablationRun(b, true, 1) }
func BenchmarkAblationSmoothingOff(b *testing.B) { ablationRun(b, false, 1) }

// A huge slack effectively disables the aberrant filter: noisy means
// survive and drag the next iteration's partition. Smoothing is off in
// both arms so the pair isolates the filter's effect (the smoothing
// ablation above isolates smoothing at the default slack).
func BenchmarkAblationAberrantFilterOn(b *testing.B)  { ablationRun(b, false, 1) }
func BenchmarkAblationAberrantFilterOff(b *testing.B) { ablationRun(b, false, 1e9) }

// --- End-to-end protocol benchmarks.

func BenchmarkEndToEndPlain64(b *testing.B) {
	data, _ := GenerateCER(64, 5)
	seeds := SeedCentroids("cer", 4, 6)
	for i := 0; i < b.N; i++ {
		scheme, err := NewSimulationScheme(256, 64, 8)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(data, scheme, NetworkOptions{
			K: 4, InitCentroids: seeds,
			DMin: CERMin, DMax: CERMax,
			Epsilon: 1e4, MaxIterations: 2, Exchanges: 20,
			Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgMessages, "msgs/node")
	}
}

// endToEndRealCrypto12 runs the 12-participant real-crypto protocol at
// the given packing; the pair below tracks the packing speedup across
// PRs (both release bit-identical centroids, see internal/core tests).
func endToEndRealCrypto12(b *testing.B, packSlots int) {
	b.Helper()
	data, _ := GenerateCER(12, 7)
	seeds := SeedCentroids("cer", 2, 8)
	var bytesPerNode float64
	for i := 0; i < b.N; i++ {
		scheme, err := NewTestScheme(128, 4, 12, 4)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(data, scheme, NetworkOptions{
			K: 2, InitCentroids: seeds,
			DMin: CERMin, DMax: CERMax,
			Epsilon: 1e4, MaxIterations: 1, Exchanges: 12,
			FracBits: 24, PackSlots: packSlots, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Centroids) == 0 {
			b.Fatal("no centroids")
		}
		bytesPerNode = res.AvgBytes
	}
	b.ReportMetric(bytesPerNode, "wirebytes/node")
}

// PackSlots is pinned to 1 so this benchmark keeps measuring the
// unpacked baseline it always measured (0 would auto-pack on this s=4
// scheme and silently shift the trajectory).
func BenchmarkEndToEndRealCrypto12(b *testing.B) { endToEndRealCrypto12(b, 1) }

// BenchmarkEndToEndRealCrypto12Packed is the packed counterpart: the
// 128-bit s=4 plaintext space holds 2 guarded slots at this exchange
// budget, halving the ciphertexts per frame. The wirebytes/node metric
// makes the bandwidth division visible next to the time speedup.
func BenchmarkEndToEndRealCrypto12Packed(b *testing.B) { endToEndRealCrypto12(b, 2) }

// BenchmarkJobEventOverhead is EndToEndRealCrypto12 driven through the
// unified Job API with no Events subscriber attached: its ns/op must
// track BenchmarkEndToEndRealCrypto12 (the legacy wrapper over the
// same engine) — the event hooks threaded through every protocol loop
// cost one atomic load when nobody listens, nothing more
// (BenchmarkEventBusNoSubscriber pins the per-emission cost).
func BenchmarkJobEventOverhead(b *testing.B) {
	data, _ := GenerateCER(12, 7)
	seeds := SeedCentroids("cer", 2, 8)
	for i := 0; i < b.N; i++ {
		scheme, err := NewTestScheme(128, 4, 12, 4)
		if err != nil {
			b.Fatal(err)
		}
		job, err := NewJob(data, Options{
			Mode: Simulated, Scheme: scheme,
			K: 2, InitCentroids: seeds,
			DMin: CERMin, DMax: CERMax,
			Epsilon: 1e4, MaxIterations: 1, Exchanges: 12,
			FracBits: 24, PackSlots: 1, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Centroids) == 0 {
			b.Fatal("no centroids")
		}
	}
}

// BenchmarkEventBusNoSubscriber measures one pass over every emission
// site with no subscriber attached: each call must be a single atomic
// load — ~0 ns, 0 allocs — because the hot protocol loops call these
// unconditionally.
func BenchmarkEventBusNoSubscriber(b *testing.B) {
	em := &emitter{bus: newEventBus()}
	centroids := SeedCentroids("cer", 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.iteration(1, centroids, 0.5, 1.0)
		em.phase(1, PhaseSum, i, b.N)
		em.churn(1, i, 0, ChurnModel)
	}
}

// --- Substrate benchmarks used for the EXPERIMENTS.md cost model.

func BenchmarkGossipSumCycle100k(b *testing.B) {
	const n = 100_000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1
	}
	s := gossip.NewSum(vals, 0)
	e, err := sim.New(sim.Config{N: n, Seed: 1}, &sim.UniformSampler{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunCycle(s.Exchange)
	}
}

// BenchmarkGossipSumCycle100kParallel runs the same substrate cycle
// through the parallel engine (conflict-free batches on one worker per
// CPU) — the multicore counterpart of BenchmarkGossipSumCycle100k.
func BenchmarkGossipSumCycle100kParallel(b *testing.B) {
	const n = 100_000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1
	}
	s := gossip.NewSum(vals, 0)
	e, err := sim.New(sim.Config{N: n, Seed: 1, Workers: runtime.NumCPU()}, &sim.UniformSampler{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunCycleOn(s)
	}
}

// BenchmarkEESumCycleRealCrypto measures one parallel EESum cycle over
// real Damgård–Jurik ciphertext vectors — the encrypted-substrate cost
// the end-to-end runs are built from.
func BenchmarkEESumCycleRealCrypto(b *testing.B) {
	const n, dim = 16, 25
	sch, err := damgardjurik.NewTestScheme(128, 4, n, 4)
	if err != nil {
		b.Fatal(err)
	}
	codec := homenc.NewCodec(24)
	initial := make([][]*big.Int, n)
	for i := range initial {
		vec := make([]*big.Int, dim)
		for j := range vec {
			vec[j] = codec.Encode(float64(i + j))
		}
		initial[i] = vec
	}
	s, err := eesum.NewSum(sch, initial, 0)
	if err != nil {
		b.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: 1}, &sim.UniformSampler{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunCycleOn(s)
	}
}

func BenchmarkAssignCER100k(b *testing.B) {
	rng := randx.New(9, 9)
	data, _ := datasets.GenerateCER(100_000, rng)
	seeds := datasets.SeedCentroids("cer", 50, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Cluster(data, ClusterOptions{InitCentroids: seeds, MaxIterations: 1})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkNoiseShareGeneration(b *testing.B) {
	rng := randx.New(10, 10)
	dim := 50 * 25 // one Figure-5-sized vector
	for i := 0; i < b.N; i++ {
		for j := 0; j < dim; j++ {
			_ = rng.NoiseShare(1_000_000, 1920/math.Ln2)
		}
	}
	b.ReportMetric(float64(dim), "shares/op")
}

var sinkStr string

func BenchmarkTableRender(b *testing.B) {
	tab := &experiments.Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	for i := 0; i < 100; i++ {
		tab.AddRow(strconv.Itoa(i), "value")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkStr = tab.String()
	}
}
