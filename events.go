package chiaroscuro

import (
	"sync"
	"sync/atomic"

	"chiaroscuro/internal/core"
)

// Event is a typed notification from a running Job, delivered through
// Job.Events. The concrete types are IterationReleased, PhaseProgress,
// Churn and Done; switch on them.
//
// The paper's Diptych discloses a cleartext, differentially private
// centroid set per k-means iteration by design (Section 4) — the event
// stream surfaces exactly that disclosure as it happens, plus the
// progress a production deployment needs to observe (phase cycles,
// churn), instead of making callers wait for the whole run.
type Event interface{ isEvent() }

// Phase identifies one of the three gossip phases of a distributed
// protocol iteration (Algorithm 3).
type Phase int

const (
	// PhaseSum is the lockstep encrypted means/noise gossip sum.
	PhaseSum Phase = Phase(core.PhaseSum)
	// PhaseDissemination is the min-identifier correction dissemination.
	PhaseDissemination Phase = Phase(core.PhaseDissemination)
	// PhaseDecryption is the epidemic threshold decryption.
	PhaseDecryption Phase = Phase(core.PhaseDecryption)
)

// String returns the phase name.
func (p Phase) String() string { return core.Phase(p).String() }

// IterationReleased reports one iteration's released centroids — the
// cleartext, differentially private view every participant obtains
// after the threshold decryption (or after the local perturbation in
// the centralized modes). One event fires per protocol iteration, as
// soon as the release exists.
//
// EpsilonSpent and EpsilonTotal together give an observer the complete
// per-release budget accounting: what this release cost, and how much
// of the global ε the run has disclosed up to and including it. That
// is exactly the bookkeeping an honest-but-curious observer performs
// (and what internal/attack replays) — publishing it here makes the
// leakage surface explicit instead of reconstructable only from the
// terminal Result.TotalEpsilon aggregate.
type IterationReleased struct {
	Iteration    int      // 1-based
	Centroids    []Series // released centroids (shared with the run; do not mutate)
	EpsilonSpent float64  // privacy budget this iteration consumed (0 in Centralized mode)
	// EpsilonTotal is the cumulative privacy budget the run has consumed
	// through this release, i.e. the running sum of EpsilonSpent over
	// the iterations released so far. After the final release it equals
	// Result.TotalEpsilon. Always 0 in Centralized mode.
	EpsilonTotal float64
	// Inertia is the iteration's quality metric when the mode computes
	// one: the intra-cluster inertia in Centralized mode, the released-
	// centroid (post) inertia in CentralizedDP and in Simulated mode
	// under TraceQuality; 0 otherwise. Distributed quality metrics are
	// omniscient evaluation aids, never protocol inputs.
	Inertia float64
}

// PhaseProgress reports one completed gossip cycle of a distributed
// iteration's phase: Cycle cycles of the phase's budget of Of are done.
// Of is 0 when the phase length is adaptive (convergence-determined —
// the simulator's default dissemination and decryption phases): the
// phase ends when the protocol converges, not at a known cycle count.
// Centralized modes emit no phase progress. In Networked mode the
// events report participant 0's progress.
type PhaseProgress struct {
	Iteration int
	Phase     Phase
	Cycle, Of int
}

// Churn reports one churn observation. Reason ChurnModel events are the
// Section 6.1.5 churn model's per-cycle resampling: how many of the
// population's nodes it disconnected for that cycle (fires when
// Options.Churn > 0; Cycle counts engine cycles, cumulative across
// phases and iterations). Reason ChurnEvicted events fire in Networked
// mode when the fault policy's peer suspicion evicts an unreachable
// peer from the address book (Disconnected counts the evicted peers,
// always 1 per event). Reason ChurnResumed events are the eviction's
// inverse: a peer relaunched from its crash-recovery journal announced
// itself and was reinstated (Disconnected counts the reinstated peers,
// always 1 per event).
type Churn struct {
	Iteration    int
	Cycle        int
	Disconnected int
	Reason       string // ChurnModel, ChurnEvicted or ChurnResumed
}

// Churn reasons.
const (
	// ChurnModel marks the churn model's per-cycle disconnection draw.
	ChurnModel = core.ChurnModel
	// ChurnEvicted marks a peer-suspicion eviction (Networked mode with
	// FaultPolicy.SuspicionK > 0).
	ChurnEvicted = core.ChurnEvicted
	// ChurnResumed marks a crash-suspicion reversal: an evicted peer
	// came back from its journal and rejoined the population mid-run.
	ChurnResumed = core.ChurnResumed
)

// Done is the terminal event of every run: the stream ends right after
// it. Err mirrors what Job.Run returns (nil on success,
// context.Canceled after a cancellation).
type Done struct {
	Err error
}

func (IterationReleased) isEvent() {}
func (PhaseProgress) isEvent()     {}
func (Churn) isEvent()             {}
func (Done) isEvent()              {}

// eventBus fans events out to the Job's subscribers.
//
// The no-subscriber path must cost nothing: every emission site first
// loads one atomic flag and returns — no event value is built, nothing
// escapes, zero allocations (BenchmarkEventBusNoSubscriber pins this).
// With subscribers attached, delivery blocks per subscriber until the
// event is buffered, consumed, or the subscriber is gone — a consumer
// that stops reading without breaking out of its loop eventually
// applies backpressure to the run rather than losing events.
type eventBus struct {
	subscribed atomic.Bool // fast-path gate: any subscriber attached?

	mu     sync.Mutex
	subs   []*subscriber
	closed bool
	final  Event // the Done event, for subscriptions made after the run
}

// subscriber buffers events for one Events() stream. gone is closed
// when the stream stops consuming (break / return), releasing any
// emitter blocked on the buffer.
type subscriber struct {
	ch   chan Event
	gone chan struct{}
	once sync.Once
}

func (s *subscriber) cancel() { s.once.Do(func() { close(s.gone) }) }

func newEventBus() *eventBus { return &eventBus{} }

func (b *eventBus) subscribe() *subscriber {
	s := &subscriber{ch: make(chan Event, 64), gone: make(chan struct{})}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		// The run already finished: deliver the terminal event only.
		if b.final != nil {
			s.ch <- b.final
		}
		close(s.ch)
		return s
	}
	b.subs = append(b.subs, s)
	b.subscribed.Store(true)
	return s
}

func (b *eventBus) unsubscribe(s *subscriber) {
	s.cancel()
	b.mu.Lock()
	for i, x := range b.subs {
		if x == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.subscribed.Store(len(b.subs) > 0)
	b.mu.Unlock()
}

// emit delivers ev to every current subscriber. Callers gate on
// b.subscribed before building ev.
func (b *eventBus) emit(ev Event) {
	b.mu.Lock()
	subs := append([]*subscriber(nil), b.subs...)
	b.mu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- ev:
		case <-s.gone:
		}
	}
}

// close delivers the terminal event and ends every stream. Later
// subscriptions see only the terminal event.
func (b *eventBus) close(final Event) {
	b.mu.Lock()
	subs := b.subs
	b.subs = nil
	b.closed = true
	b.final = final
	b.subscribed.Store(false)
	b.mu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- final:
		case <-s.gone:
		}
		close(s.ch)
	}
}

// emitter is the hook surface the engines feed: one self-gating method
// per event type, safe to call unconditionally from the hot loops.
// It also carries the run's cumulative ε accounting so every
// IterationReleased can report EpsilonTotal; the accumulation happens
// before the subscriber gate so a mid-run subscriber still sees the
// correct running total (a float add, so the no-subscriber path stays
// allocation-free).
type emitter struct {
	bus      *eventBus
	epsTotal float64
}

func (e *emitter) active() bool { return e.bus.subscribed.Load() }

func (e *emitter) iteration(it int, centroids []Series, eps, inertia float64) {
	e.epsTotal += eps
	if !e.active() {
		return
	}
	e.bus.emit(IterationReleased{Iteration: it, Centroids: centroids, EpsilonSpent: eps, EpsilonTotal: e.epsTotal, Inertia: inertia})
}

func (e *emitter) phase(it int, p Phase, cycle, of int) {
	if !e.active() {
		return
	}
	e.bus.emit(PhaseProgress{Iteration: it, Phase: p, Cycle: cycle, Of: of})
}

func (e *emitter) churn(it, cycle, down int, reason string) {
	if !e.active() {
		return
	}
	e.bus.emit(Churn{Iteration: it, Cycle: cycle, Disconnected: down, Reason: reason})
}
