package chiaroscuro

import (
	"runtime"
	"testing"
)

// runWithWorkers executes the full distributed protocol with real
// crypto and the given worker-pool size. The decoded protocol outputs
// are exact integer sums, so the centroids must be bit-identical for
// any worker count at the same seed.
func runWithWorkers(t *testing.T, workers int) *NetworkResult {
	t.Helper()
	data, _ := GenerateCER(12, 7)
	seeds := SeedCentroids("cer", 2, 8)
	scheme, err := NewTestScheme(128, 4, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(data, scheme, NetworkOptions{
		K: 2, InitCentroids: seeds,
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 2, Exchanges: 12,
		Churn: 0.1, MidFailure: true,
		FracBits: 24, Seed: 21, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunWorkerCountInvariance(t *testing.T) {
	want := runWithWorkers(t, 1)
	if len(want.Centroids) == 0 {
		t.Fatal("serial run produced no centroids")
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := runWithWorkers(t, workers)
		if len(got.Centroids) != len(want.Centroids) {
			t.Fatalf("workers=%d: %d centroids, serial %d",
				workers, len(got.Centroids), len(want.Centroids))
		}
		for c := range want.Centroids {
			if (want.Centroids[c] == nil) != (got.Centroids[c] == nil) {
				t.Fatalf("workers=%d: centroid %d liveness differs", workers, c)
			}
			if want.Centroids[c] == nil {
				continue
			}
			for j := range want.Centroids[c] {
				if got.Centroids[c][j] != want.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid %d[%d] = %v, serial %v",
						workers, c, j, got.Centroids[c][j], want.Centroids[c][j])
				}
			}
		}
		if got.AvgMessages != want.AvgMessages || got.AvgBytes != want.AvgBytes {
			t.Fatalf("workers=%d: accounting diverged", workers)
		}
	}
}
