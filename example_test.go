package chiaroscuro_test

import (
	"context"
	"fmt"
	"math"

	"chiaroscuro"
)

// One Job, one Options struct, four run modes: the unified entry point
// behind every legacy helper.
func ExampleNewJob() {
	data, _ := chiaroscuro.GenerateCER(5000, 1)
	job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
		Mode:          chiaroscuro.CentralizedDP,
		InitCentroids: chiaroscuro.SeedCentroids("cer", 6, 2),
		Epsilon:       math.Ln2, // Budget defaults to Greedy(Epsilon)
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Smooth:        true,
		MaxIterations: 5,
		Seed:          3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := job.Run(context.Background())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("iterations released: %d\n", len(res.History))
	fmt.Printf("budget respected: %v\n", res.TotalEpsilon <= math.Ln2*(1+1e-9))
	// Output:
	// iterations released: 5
	// budget respected: true
}

// Streaming a run: the Diptych releases a cleartext centroid set per
// iteration by design, and Events delivers each release as soon as the
// population decrypts it — here from a full distributed protocol run.
func ExampleJob_events() {
	data, _ := chiaroscuro.GenerateCER(48, 6)
	scheme, err := chiaroscuro.NewSimulationScheme(256, 48, 6)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
		Mode:          chiaroscuro.Simulated,
		Scheme:        scheme,
		K:             3,
		InitCentroids: chiaroscuro.SeedCentroids("cer", 3, 7),
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Epsilon:       1e5, // demo population: gentle noise
		MaxIterations: 2,
		Exchanges:     20,
		Seed:          8,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	// Subscribe before Run, consume while the run executes.
	events := job.Events()
	go job.Run(context.Background())
	for ev := range events {
		switch e := ev.(type) {
		case chiaroscuro.IterationReleased:
			fmt.Printf("iteration %d: %d centroids released (ε %.1f spent)\n",
				e.Iteration, len(e.Centroids), e.EpsilonSpent)
		case chiaroscuro.Done:
			fmt.Printf("done, err: %v\n", e.Err)
		}
	}
	// Output:
	// iteration 1: 3 centroids released (ε 50000.0 spent)
	// iteration 2: 3 centroids released (ε 25000.0 spent)
	// done, err: <nil>
}

// The non-private baseline: plain centralized k-means.
func ExampleCluster() {
	data, _ := chiaroscuro.GenerateCER(5000, 1)
	seeds := chiaroscuro.SeedCentroids("cer", 6, 2)
	res, err := chiaroscuro.Cluster(data, chiaroscuro.ClusterOptions{
		InitCentroids: seeds,
		MaxIterations: 8,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("centroids: %d\n", len(res.Centroids))
	fmt.Printf("iterations: %d\n", len(res.Stats))
	// Output:
	// centroids: 6
	// iterations: 8
}

// Differentially private clustering with the paper's GREEDY budget.
func ExampleClusterDP() {
	data, _ := chiaroscuro.GenerateCER(30000, 3)
	seeds := chiaroscuro.SeedCentroids("cer", 8, 4)
	res, err := chiaroscuro.ClusterDP(data, chiaroscuro.DPOptions{
		InitCentroids: seeds,
		Budget:        chiaroscuro.Greedy(math.Ln2),
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Smooth:        true,
		MaxIterations: 10,
		Seed:          5,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("budget respected: %v\n", res.TotalEpsilon <= math.Ln2*(1+1e-9))
	fmt.Printf("best iteration recorded: %v\n", res.BestIter >= 1)
	fmt.Printf("profiles usable: %v\n", len(res.Best()) >= 1)
	// Output:
	// budget respected: true
	// best iteration recorded: true
	// profiles usable: true
}

// The fully distributed protocol over a simulated population.
func ExampleRun() {
	data, _ := chiaroscuro.GenerateCER(48, 6)
	seeds := chiaroscuro.SeedCentroids("cer", 3, 7)
	scheme, err := chiaroscuro.NewSimulationScheme(256, 48, 6)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := chiaroscuro.Run(data, scheme, chiaroscuro.NetworkOptions{
		K:             3,
		InitCentroids: seeds,
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Epsilon:       1e5, // demo population: gentle noise
		MaxIterations: 2,
		Exchanges:     20,
		Seed:          8,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("iterations: %d\n", len(res.Traces))
	fmt.Printf("centroids released: %v\n", len(res.Centroids) >= 1)
	fmt.Printf("gossip happened: %v\n", res.AvgMessages > 0)
	// Output:
	// iterations: 2
	// centroids released: true
	// gossip happened: true
}

// Budget strategies never exceed their ε, whatever the horizon.
func ExampleBudget() {
	for _, b := range []chiaroscuro.Budget{
		chiaroscuro.Greedy(0.69),
		chiaroscuro.GreedyFloor(0.69, 4),
		chiaroscuro.UniformFast(0.69, 5),
	} {
		var total float64
		for it := 1; it <= 1000; it++ {
			total += b.Epsilon(it)
		}
		fmt.Printf("%s spends at most ε: %v\n", b.Name(), total <= 0.69+1e-12)
	}
	// Output:
	// G spends at most ε: true
	// GF spends at most ε: true
	// UF spends at most ε: true
}
