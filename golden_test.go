package chiaroscuro

import (
	"context"
	"math"
	"testing"
)

// The golden bit patterns below were captured from the pre-Job
// implementations (commit db5a48c, where Cluster/ClusterDP/Run/
// RunNetworked were standalone code paths), so these tests pin the new
// engine against the historical releases — not against itself. The
// wrapper-vs-Job comparisons in TestJobMatches* guard the option
// mapping; these guard the numerics.

// goldenBits asserts the exact float64 bits of one centroid.
func goldenBits(t *testing.T, tag string, got Series, want []uint64) {
	t.Helper()
	if len(got) < len(want) {
		t.Fatalf("%s: centroid has %d measures, want >= %d", tag, len(got), len(want))
	}
	for j, w := range want {
		if g := math.Float64bits(got[j]); g != w {
			t.Fatalf("%s[%d] = %016x (%v), want %016x (%v)",
				tag, j, g, got[j], w, math.Float64frombits(w))
		}
	}
}

// TestGoldenSimulated pins the full simulated protocol's released
// centroids (and gossip accounting) at the simSetup seed to the exact
// bits the pre-Job implementation released.
func TestGoldenSimulated(t *testing.T) {
	data, opts := simSetup(t)
	job, err := NewJob(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	goldenBits(t, "run centroid 0", res.Centroids[0], []uint64{
		0x402d665229d28018, 0x402c1cca388129fb, 0x4027bf7ba3458795,
		0x4021fa75272da737, 0x401a3247a02b901b, 0x40136dc4295b5611,
		0x400c1b46e8c63ffe, 0x400431dc93c0afa1, 0x3ffd80fd1351288d,
		0x3ffb039f2307d1b3, 0x3ff8fc97b1235ac9, 0x3ff8870ef3b7b821,
		0x3ff7dbdcff066500, 0x3ff595682f110dc5, 0x3ff6db84ebbe4312,
		0x3ff61e6485dd7a62, 0x3ffc75462cdef28c, 0x4001e7a85dadb763,
		0x400b2ad8e39dd81d, 0x4015dc4e1965fc92, 0x401fac6e3bee05ef,
		0x40250dd554dd1236, 0x4028fe516c9098f5, 0x402b6857bf909f84,
	})
	if res.AvgMessages != 128 || res.AvgBytes != 3.309568e+06 || res.TotalEpsilon != 75000 {
		t.Fatalf("accounting drifted: msgs %v, bytes %v, epsilon %v",
			res.AvgMessages, res.AvgBytes, res.TotalEpsilon)
	}
}

// TestGoldenCentralizedDP pins the perturbed centralized release at
// seed 3 (the TestJobMatchesClusterDP configuration).
func TestGoldenCentralizedDP(t *testing.T) {
	data, _ := GenerateCER(2000, 1)
	job, err := NewJob(data, Options{
		Mode: CentralizedDP, InitCentroids: SeedCentroids("cer", 6, 2),
		Epsilon: math.Ln2, DMin: CERMin, DMax: CERMax, Smooth: true,
		MaxIterations: 4, Churn: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	goldenBits(t, "clusterdp centroid 0", res.Centroids[0], []uint64{
		0xc048a7c702304dbf, 0xc04c38f9a66e61ee, 0xc043fef5416e2263,
		0xc0382dfedb6ca91d, 0xc02ff65ff7e7056a, 0xc008d52c638dbedb,
	})
}

// TestGoldenNetworked pins the real-TCP release at seed 33 (the
// TestJobMatchesRunNetworked configuration).
func TestGoldenNetworked(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	data, _ := GenerateCER(10, 11)
	scheme, err := NewTestScheme(128, 4, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(data, Options{
		Mode: Networked, Scheme: scheme,
		K: 2, InitCentroids: SeedCentroids("cer", 2, 12),
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 1, Exchanges: 10,
		FracBits: 24, Seed: 33, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	goldenBits(t, "networked centroid 0", res.Centroids[0], []uint64{
		0x3ff16e5a9031355f, 0x3ff24272be2e4f53, 0x3fe69beac87e47f5,
		0x3ff0d9ce59a781dd, 0x3ff97bb83890cea3, 0x4005c3ef78d6161c,
	})
	if res.AvgMessages != 80 || res.AvgBytes != 166400 {
		t.Fatalf("accounting drifted: msgs %v, bytes %v", res.AvgMessages, res.AvgBytes)
	}
}
