package chiaroscuro

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/sim"
)

// Scheme is the additively-homomorphic threshold encryption the
// distributed protocol runs on.
type Scheme = homenc.Scheme

// NewDamgardJurik generates a fresh threshold Damgård–Jurik scheme:
// keyBits RSA modulus (the paper uses 1024), degree s (plaintexts mod
// n^s), nShares key-shares with decryption threshold tau. Key generation
// searches for safe primes and is slow beyond 512-bit keys; see
// NewTestScheme for instant deterministic setups.
func NewDamgardJurik(keyBits, s, nShares, tau int) (Scheme, error) {
	return damgardjurik.GenerateKey(nil, keyBits, s, nShares, tau)
}

// NewTestScheme builds a threshold Damgård–Jurik scheme from precomputed
// safe primes (instant, deterministic — and therefore offering NO
// security; the factorizations ship in the source). keyBits must be 128,
// 256, 512 or 1024.
func NewTestScheme(keyBits, s, nShares, tau int) (Scheme, error) {
	return damgardjurik.NewTestScheme(keyBits, s, nShares, tau)
}

// NewSimulationScheme returns the structure-preserving no-crypto scheme
// used to scale protocol simulations to large populations (the paper's
// latency experiments measure messages, not cipher cycles). ctBytes is
// the pretend ciphertext wire size (256 mimics a 1024-bit key at s=1).
func NewSimulationScheme(ctBytes, nShares, tau int) (Scheme, error) {
	return plain.New(nil, ctBytes, nShares, tau)
}

// NetworkOptions parametrizes a distributed protocol run. Zero values
// take the paper's defaults where one exists.
type NetworkOptions struct {
	K             int      // number of clusters (paper: 50)
	InitCentroids []Series // data-independent seeds; required
	DMin, DMax    float64  // per-measure range (sensitivity calibration)

	Epsilon float64 // total privacy budget (paper: ln 2)
	Budget  Budget  // concentration strategy (default GREEDY)

	MaxIterations int     // n_it^max (default 10)
	Threshold     float64 // θ (0 = run all iterations)
	Smooth        bool    // SMA smoothing of perturbed means

	NoiseShares int // nν lower bound (default: population size)
	Exchanges   int // gossip cycles per sum phase (default: Theorem 3)

	// DissCycles and DecryptCycles, when positive, fix the correction-
	// dissemination and epidemic-decryption phase lengths instead of
	// stopping at (globally observed) convergence — the schedule a
	// networked deployment must use, and the setting that makes a
	// simulation cycle-for-cycle comparable to RunNetworked. Zero keeps
	// the simulator's adaptive behavior (and, for RunNetworked, derives
	// FixedPhaseCycles defaults).
	DissCycles    int
	DecryptCycles int

	Churn      float64 // per-cycle disconnection probability
	MidFailure bool    // corrupt in-flight exchanges under churn
	Newscast   bool    // bounded Newscast views (size 30) instead of uniform sampling

	FracBits uint   // fixed-point fractional bits (default 30)
	Seed     uint64 // reproducibility

	// PackSlots controls ciphertext packing: how many fixed-point values
	// share one plaintext (slot width = value bits + a guard band sized
	// to the exchange budget). 0 auto-sizes from the scheme's plaintext
	// space (packing stays off when the space has no room, e.g. any s=1
	// key); 1 disables packing; >= 2 demands that many slots and fails
	// when they do not fit. Packing divides per-exchange ciphertext
	// counts and wire bytes by the pack factor; released centroids are
	// bit-identical either way.
	PackSlots int

	// Workers bounds the worker pool used for encryption fan-outs,
	// per-dimension homomorphic loops, partial-decryption sweeps and
	// parallel gossip cycles (0 = one worker per CPU, 1 = fully
	// serial). Results are identical per seed for any value.
	Workers int

	// TraceQuality additionally records per-iteration inertia metrics
	// (omniscient; for evaluation only).
	TraceQuality bool
}

// NetworkTrace re-exports the per-iteration protocol trace.
type NetworkTrace = core.IterationTrace

// NetworkResult re-exports the distributed run outcome.
type NetworkResult = core.Result

// Run executes the complete Chiaroscuro protocol over a simulated
// population: one participant per series of d, each holding one
// key-share of scheme. The scheme must have at least d.Len() shares.
func Run(d *Dataset, scheme Scheme, opts NetworkOptions) (*NetworkResult, error) {
	if scheme == nil {
		return nil, errors.New("chiaroscuro: nil scheme")
	}
	var sampler sim.Sampler
	if opts.Newscast {
		sampler = &sim.NewscastSampler{ViewSize: 30}
	}
	nw, err := core.NewNetwork(d, scheme, core.Config{
		K:             opts.K,
		InitCentroids: opts.InitCentroids,
		DMin:          opts.DMin,
		DMax:          opts.DMax,
		Epsilon:       opts.Epsilon,
		Budget:        opts.Budget,
		MaxIterations: opts.MaxIterations,
		Threshold:     opts.Threshold,
		Smooth:        opts.Smooth,
		NoiseShares:   opts.NoiseShares,
		Exchanges:     opts.Exchanges,
		Churn:         opts.Churn,
		MidFailure:    opts.MidFailure,
		DissCycles:    opts.DissCycles,
		DecryptCycles: opts.DecryptCycles,
		FracBits:      opts.FracBits,
		PackSlots:     opts.PackSlots,
		Seed:          opts.Seed,
		Workers:       opts.Workers,
		Sampler:       sampler,
		TraceQuality:  opts.TraceQuality,
	})
	if err != nil {
		return nil, err
	}
	return nw.Run()
}

// NetworkedOptions parametrizes RunNetworked: the shared protocol
// options plus the wire-runtime knobs.
type NetworkedOptions struct {
	NetworkOptions

	// ExchangeTimeout bounds every blocking exchange step on every
	// node (default 30s).
	ExchangeTimeout time.Duration
}

// FixedPhaseCycles returns deterministic phase lengths for a population
// of np participants: enough cycles for the min-identifier
// dissemination and the τ-share epidemic decryption to complete with
// ample slack (both finish in O(log np) cycles; extra cycles are
// protocol no-ops). Networked deployments need fixed lengths — no
// participant can observe global convergence — and a simulation
// configured with the same values is cycle-for-cycle identical.
func FixedPhaseCycles(np int) (dissCycles, decryptCycles int) {
	logN := bits.Len(uint(np))
	return 6 + 2*logN, 8 + 2*logN
}

// RunNetworked executes the complete Chiaroscuro protocol over real TCP
// connections: one listener (and one goroutine-driven peer runtime) per
// series of d, all on the loopback interface, exchanging ciphertexts,
// noise shares, correction proposals and partial decryptions through
// the binary wire protocol. It returns participant 0's view, which for
// a single-iteration run bit-matches Run on the same seed and
// parameters (see internal/node for the determinism model).
//
// For one daemon process per participant — real deployments — see
// cmd/chiaroscurod, which drives the same runtime over a key file and
// a bootstrap address.
func RunNetworked(d *Dataset, scheme Scheme, opts NetworkedOptions) (*NetworkResult, error) {
	if scheme == nil {
		return nil, errors.New("chiaroscuro: nil scheme")
	}
	if opts.Threshold != 0 {
		return nil, errors.New("chiaroscuro: networked runs use the fixed iteration schedule; set Threshold to 0")
	}
	np := d.Len()
	if opts.DissCycles == 0 || opts.DecryptCycles == 0 {
		diss, dec := FixedPhaseCycles(np)
		if opts.DissCycles == 0 {
			opts.DissCycles = diss
		}
		if opts.DecryptCycles == 0 {
			opts.DecryptCycles = dec
		}
	}
	nodes := make([]*node.Node, np)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				_ = nd.Close()
			}
		}
	}()
	bootstrap := ""
	for i := 0; i < np; i++ {
		var sampler sim.Sampler
		if opts.Newscast {
			sampler = &sim.NewscastSampler{ViewSize: 30}
		}
		nd, err := node.New(node.Config{
			Index:  i,
			N:      np,
			Series: d.Row(i),
			Scheme: scheme,
			Proto: core.Config{
				K:             opts.K,
				InitCentroids: opts.InitCentroids,
				DMin:          opts.DMin,
				DMax:          opts.DMax,
				Epsilon:       opts.Epsilon,
				Budget:        opts.Budget,
				MaxIterations: opts.MaxIterations,
				Smooth:        opts.Smooth,
				NoiseShares:   opts.NoiseShares,
				Exchanges:     opts.Exchanges,
				Churn:         opts.Churn,
				MidFailure:    opts.MidFailure,
				DissCycles:    opts.DissCycles,
				DecryptCycles: opts.DecryptCycles,
				FracBits:      opts.FracBits,
				PackSlots:     opts.PackSlots,
				Seed:          opts.Seed,
				Workers:       opts.Workers,
				Sampler:       sampler,
			},
			Bootstrap:       bootstrap,
			ExchangeTimeout: opts.ExchangeTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("chiaroscuro: node %d: %w", i, err)
		}
		nodes[i] = nd
		if i == 0 {
			bootstrap = nd.Addr()
		}
	}
	results := make([]*node.Result, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *node.Node) {
			defer wg.Done()
			results[i], errs[i] = nd.Run()
		}(i, nd)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chiaroscuro: node %d: %w", i, err)
		}
	}
	r0 := results[0]
	return &NetworkResult{
		Centroids:    r0.Centroids,
		Traces:       r0.Traces,
		TotalEpsilon: r0.TotalEpsilon,
		AvgMessages:  r0.AvgMessages,
		AvgBytes:     r0.AvgBytes,
	}, nil
}
