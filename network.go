package chiaroscuro

import (
	"context"
	"math/bits"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
)

// Scheme is the additively-homomorphic threshold encryption the
// distributed protocol runs on.
type Scheme = homenc.Scheme

// NewDamgardJurik generates a fresh threshold Damgård–Jurik scheme:
// keyBits RSA modulus (the paper uses 1024), degree s (plaintexts mod
// n^s), nShares key-shares with decryption threshold tau. Key generation
// searches for safe primes and is slow beyond 512-bit keys; see
// NewTestScheme for instant deterministic setups.
func NewDamgardJurik(keyBits, s, nShares, tau int) (Scheme, error) {
	return damgardjurik.GenerateKey(nil, keyBits, s, nShares, tau)
}

// NewTestScheme builds a threshold Damgård–Jurik scheme from precomputed
// safe primes (instant, deterministic — and therefore offering NO
// security; the factorizations ship in the source). keyBits must be 128,
// 256, 512 or 1024.
func NewTestScheme(keyBits, s, nShares, tau int) (Scheme, error) {
	return damgardjurik.NewTestScheme(keyBits, s, nShares, tau)
}

// NewSimulationScheme returns the structure-preserving no-crypto scheme
// used to scale protocol simulations to large populations (the paper's
// latency experiments measure messages, not cipher cycles). ctBytes is
// the pretend ciphertext wire size (256 mimics a 1024-bit key at s=1).
func NewSimulationScheme(ctBytes, nShares, tau int) (Scheme, error) {
	return plain.New(nil, ctBytes, nShares, tau)
}

// NetworkOptions parametrizes a distributed protocol run. Zero values
// take the paper's defaults where one exists.
//
// Deprecated: use Options (Mode Simulated or Networked) with NewJob,
// which adds context cancellation and the Events stream. Run and
// RunNetworked remain as thin wrappers and release bit-identical
// centroids per seed.
type NetworkOptions struct {
	K             int      // number of clusters (paper: 50)
	InitCentroids []Series // data-independent seeds; required
	DMin, DMax    float64  // per-measure range (sensitivity calibration)

	Epsilon float64 // total privacy budget (paper: ln 2)
	Budget  Budget  // concentration strategy (default GREEDY)

	MaxIterations int     // n_it^max (default 10)
	Threshold     float64 // θ (0 = run all iterations)
	Smooth        bool    // SMA smoothing of perturbed means

	NoiseShares int // nν lower bound (default: population size)
	Exchanges   int // gossip cycles per sum phase (default: Theorem 3)

	// DissCycles and DecryptCycles, when positive, fix the correction-
	// dissemination and epidemic-decryption phase lengths instead of
	// stopping at (globally observed) convergence — the schedule a
	// networked deployment must use, and the setting that makes a
	// simulation cycle-for-cycle comparable to RunNetworked. Zero keeps
	// the simulator's adaptive behavior (and, for RunNetworked, derives
	// FixedPhaseCycles defaults).
	DissCycles    int
	DecryptCycles int

	Churn      float64 // per-cycle disconnection probability
	MidFailure bool    // corrupt in-flight exchanges under churn
	Newscast   bool    // bounded Newscast views (size 30) instead of uniform sampling

	FracBits uint   // fixed-point fractional bits (default 30)
	Seed     uint64 // reproducibility

	// PackSlots controls ciphertext packing: how many fixed-point values
	// share one plaintext (slot width = value bits + a guard band sized
	// to the exchange budget). 0 auto-sizes from the scheme's plaintext
	// space (packing stays off when the space has no room, e.g. any s=1
	// key); 1 disables packing; >= 2 demands that many slots and fails
	// when they do not fit. Packing divides per-exchange ciphertext
	// counts and wire bytes by the pack factor; released centroids are
	// bit-identical either way.
	PackSlots int

	// Workers bounds the worker pool used for encryption fan-outs,
	// per-dimension homomorphic loops, partial-decryption sweeps and
	// parallel gossip cycles (0 = one worker per CPU, 1 = fully
	// serial). Results are identical per seed for any value.
	Workers int

	// TraceQuality additionally records per-iteration inertia metrics
	// (omniscient; for evaluation only).
	TraceQuality bool
}

// jobOptions maps the legacy option set onto the unified one.
func (o NetworkOptions) jobOptions(mode Mode, scheme Scheme) Options {
	return Options{
		Mode:          mode,
		K:             max(o.K, 0),
		InitCentroids: o.InitCentroids,
		DMin:          o.DMin,
		DMax:          o.DMax,
		Epsilon:       o.Epsilon,
		Budget:        o.Budget,
		MaxIterations: max(o.MaxIterations, 0),
		Threshold:     o.Threshold,
		Smooth:        o.Smooth,
		NoiseShares:   max(o.NoiseShares, 0),
		Exchanges:     max(o.Exchanges, 0),
		DissCycles:    max(o.DissCycles, 0),
		DecryptCycles: max(o.DecryptCycles, 0),
		Churn:         o.Churn,
		MidFailure:    o.MidFailure,
		Newscast:      o.Newscast,
		FracBits:      o.FracBits,
		PackSlots:     o.PackSlots,
		Seed:          o.Seed,
		Workers:       o.Workers,
		TraceQuality:  o.TraceQuality,
		Scheme:        scheme,
	}
}

// NetworkTrace re-exports the per-iteration protocol trace.
type NetworkTrace = core.IterationTrace

// NetworkResult re-exports the distributed run outcome.
type NetworkResult = core.Result

// networkResult maps a unified Job result back onto the legacy shape.
func networkResult(res *Result) *NetworkResult {
	return &NetworkResult{
		Centroids:    res.Centroids,
		Traces:       res.Traces,
		TotalEpsilon: res.TotalEpsilon,
		Converged:    res.Converged,
		AvgMessages:  res.AvgMessages,
		AvgBytes:     res.AvgBytes,
	}
}

// Run executes the complete Chiaroscuro protocol over a simulated
// population: one participant per series of d, each holding one
// key-share of scheme. The scheme must have at least d.Len() shares.
//
// Deprecated: use NewJob with Mode Simulated; Run is a thin wrapper
// over it (bit-identical centroids per seed) kept for compatibility.
func Run(d *Dataset, scheme Scheme, opts NetworkOptions) (*NetworkResult, error) {
	job, err := NewJob(d, opts.jobOptions(Simulated, scheme))
	if err != nil {
		return nil, err
	}
	res, err := job.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return networkResult(res), nil
}

// NetworkedOptions parametrizes RunNetworked: the shared protocol
// options plus the wire-runtime knobs.
//
// Deprecated: use Options with Mode Networked and NewJob.
type NetworkedOptions struct {
	NetworkOptions

	// ExchangeTimeout bounds every blocking exchange step on every
	// node (default 30s).
	ExchangeTimeout time.Duration

	// VirtualNodes multiplexes participants onto shared listeners in
	// groups of this size (see Options.VirtualNodes); 0 or 1 keeps one
	// listener per participant.
	VirtualNodes int
}

// FixedPhaseCycles returns deterministic phase lengths for a population
// of np participants: enough cycles for the min-identifier
// dissemination and the τ-share epidemic decryption to complete with
// ample slack (both finish in O(log np) cycles; extra cycles are
// protocol no-ops). Networked deployments need fixed lengths — no
// participant can observe global convergence — and a simulation
// configured with the same values is cycle-for-cycle identical.
func FixedPhaseCycles(np int) (dissCycles, decryptCycles int) {
	logN := bits.Len(uint(np))
	return 6 + 2*logN, 8 + 2*logN
}

// RunNetworked executes the complete Chiaroscuro protocol over real TCP
// connections: one listener (and one goroutine-driven peer runtime) per
// series of d, all on the loopback interface, exchanging ciphertexts,
// noise shares, correction proposals and partial decryptions through
// the binary wire protocol. It returns participant 0's view, which for
// a single-iteration run bit-matches Run on the same seed and
// parameters (see internal/node for the determinism model).
//
// For one daemon process per participant — real deployments — see
// cmd/chiaroscurod, which drives the same runtime over a key file and
// a bootstrap address.
//
// Deprecated: use NewJob with Mode Networked; RunNetworked is a thin
// wrapper over it (bit-identical centroids per seed) kept for
// compatibility.
func RunNetworked(d *Dataset, scheme Scheme, opts NetworkedOptions) (*NetworkResult, error) {
	jo := opts.jobOptions(Networked, scheme)
	jo.ExchangeTimeout = opts.ExchangeTimeout
	jo.VirtualNodes = opts.VirtualNodes
	job, err := NewJob(d, jo)
	if err != nil {
		return nil, err
	}
	res, err := job.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return networkResult(res), nil
}
