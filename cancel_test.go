package chiaroscuro

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

// checkNoGoroutineLeak polls until the live goroutine count is back at
// (or below) the pre-run baseline — cancelled runs must tear down node
// listeners, connection loops, worker fan-outs and randomizer-pool
// fillers, none of which may outlive the Job. On timeout it dumps every
// stack.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after cancellation\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobPreCancelled pins that every mode returns context.Canceled —
// not a mode-specific failure — when the context is dead on arrival.
func TestJobPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	data, simOpts := simSetup(t)
	scheme, err := NewTestScheme(128, 4, data.Len(), 3)
	if err != nil {
		t.Fatal(err)
	}
	netOpts := simOpts
	netOpts.Mode = Networked
	netOpts.Scheme = scheme
	netOpts.Exchanges = 4

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"centralized", Options{Mode: Centralized, InitCentroids: simOpts.InitCentroids}},
		{"centralized-dp", Options{
			Mode: CentralizedDP, InitCentroids: simOpts.InitCentroids,
			Epsilon: math.Ln2, DMin: CERMin, DMax: CERMax,
		}},
		{"simulated", simOpts},
		{"networked", netOpts},
	} {
		t.Run(tc.name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			job, err := NewJob(data, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := job.Run(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("Run on a dead context: %v, want context.Canceled", err)
			}
			checkNoGoroutineLeak(t, baseline)
		})
	}
}

// cancelMidSum runs the job while watching its event stream, cancels
// the context on the first completed sum-phase gossip cycle, and
// asserts the run aborts with context.Canceled (also surfaced on the
// terminal Done event).
func cancelMidSum(t *testing.T, job *Job) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := job.Events()
	go job.Run(ctx) //nolint:errcheck // outcome read through Wait
	cancelled := false
	var done Done
	for ev := range events {
		switch e := ev.(type) {
		case PhaseProgress:
			if e.Phase == PhaseSum && !cancelled {
				cancel()
				cancelled = true
			}
		case Done:
			done = e
		}
	}
	if !cancelled {
		t.Fatal("no sum-phase PhaseProgress event ever arrived")
	}
	if _, err := job.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if !errors.Is(done.Err, context.Canceled) {
		t.Fatalf("Done.Err = %v, want context.Canceled", done.Err)
	}
}

// TestJobCancelMidSumSimulated cancels a simulated run in the middle of
// its encrypted sum phase and checks the abort is clean: the cycle
// loops stop, the run returns context.Canceled, no goroutine survives.
func TestJobCancelMidSumSimulated(t *testing.T) {
	data, opts := simSetup(t)
	opts.Exchanges = 60 // a long sum phase: the cancel always lands inside it
	baseline := runtime.NumGoroutine()
	job, err := NewJob(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	cancelMidSum(t, job)
	checkNoGoroutineLeak(t, baseline)
}

// TestJobCancelMidSumNetworked cancels a real-TCP run mid-sum-phase:
// every node's listener and live connections must shut down — the
// daemon-side guarantee — and nothing may leak.
func TestJobCancelMidSumNetworked(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	data, _ := GenerateCER(8, 5)
	scheme, err := NewTestScheme(128, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	job, err := NewJob(data, Options{
		Mode: Networked, Scheme: scheme,
		K: 2, InitCentroids: SeedCentroids("cer", 2, 6),
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 2, Exchanges: 12,
		FracBits: 24, Seed: 9, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelMidSum(t, job)
	checkNoGoroutineLeak(t, baseline)
}

// TestJobCancelBetweenIterations cancels a centralized run from a
// watcher goroutine after the first released iteration.
func TestJobCancelBetweenIterations(t *testing.T) {
	data, _ := GenerateCER(20000, 1)
	job, err := NewJob(data, Options{
		// Plain centralized mode with θ = 0 runs every iteration of the
		// budget — and the budget is far beyond what runs before the
		// cancel lands (finishing it would take minutes), so a nil error
		// can only mean cancellation did not propagate.
		Mode: Centralized, InitCentroids: SeedCentroids("cer", 6, 2),
		MaxIterations: 100000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := job.Events()
	go job.Run(ctx) //nolint:errcheck // outcome read through Wait
	for ev := range events {
		if _, ok := ev.(IterationReleased); ok {
			cancel()
		}
	}
	if _, err := job.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}
