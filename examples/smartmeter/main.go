// Smart-meter scenario (the paper's motivating example): a utility's
// customers discover consumption profiles — and with them better price
// plans — without any household's load curve ever leaving its device
// unprotected.
//
// The example compares the three budget-concentration strategies of
// Section 5.1 on the same data — three Jobs differing in one Options
// field — and interprets the resulting cluster centroids
// (morning/evening peaks, night-heavy usage, ...).
//
//	go run ./examples/smartmeter
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"chiaroscuro"
)

func main() {
	const households = 60000
	data, _ := chiaroscuro.GenerateCER(households, 7)
	seeds := chiaroscuro.SeedCentroids("cer", 10, 8)

	fmt.Printf("private profiling of %d households (ε = ln 2 ≈ 0.693 total)\n\n", households)

	type entry struct {
		name   string
		budget chiaroscuro.Budget
	}
	strategies := []entry{
		{"GREEDY (G)", chiaroscuro.Greedy(math.Ln2)},
		{"GREEDY_FLOOR (GF, floor 4)", chiaroscuro.GreedyFloor(math.Ln2, 4)},
		{"UNIFORM_FAST (UF, 5 it.)", chiaroscuro.UniformFast(math.Ln2, 5)},
	}

	var best *chiaroscuro.Result
	bestInertia := math.Inf(1)
	for _, s := range strategies {
		job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
			Mode:          chiaroscuro.CentralizedDP,
			InitCentroids: seeds,
			Budget:        s.budget,
			DMin:          chiaroscuro.CERMin,
			DMax:          chiaroscuro.CERMax,
			Smooth:        true,
			MaxIterations: 10,
			Seed:          9,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		low := math.Inf(1)
		for _, st := range res.Stats {
			if st.Inertia < low {
				low = st.Inertia
			}
		}
		fmt.Printf("%-28s best inertia %8.2f at iteration %d (%d centroids), ε spent %.3f\n",
			s.name, low, res.BestIter, len(res.Best()), res.TotalEpsilon)
		if low < bestInertia {
			bestInertia, best = low, res
		}
	}

	fmt.Println("\nconsumption profiles discovered (best strategy, best iteration):")
	for i, c := range best.Best() {
		fmt.Printf("  profile %d: %s (daily total %.0f kWh, peak at %02d:00)\n",
			i+1, describe(c), c.Sum(), argmax(c))
	}
	fmt.Println("\nno raw load curve was ever visible to any party: the released")
	fmt.Println("centroids satisfy (ε,δ)-probabilistic differential privacy.")
}

// describe produces a human label from a daily load centroid.
func describe(c chiaroscuro.Series) string {
	peak := argmax(c)
	switch {
	case c.Sum() < 15:
		return "frugal / mostly away"
	case peak >= 17 && peak <= 21:
		return "evening-peak household"
	case peak >= 6 && peak <= 9:
		return "morning-peak household"
	case peak >= 11 && peak <= 15:
		return "daytime usage (home or business)"
	case peak >= 22 || peak <= 5:
		return "night-heavy (storage heating?)"
	default:
		return "mixed usage"
	}
}

func argmax(c chiaroscuro.Series) int {
	best, bestV := 0, math.Inf(-1)
	for h, v := range c {
		if v > bestV {
			best, bestV = h, v
		}
	}
	return best
}
