// Full protocol demo: a complete distributed Chiaroscuro run with REAL
// threshold Damgård–Jurik encryption — no trusted party anywhere. 48
// simulated devices, each holding one time-series and one key-share;
// gossip computes the encrypted sums, assembles the Laplace noise from
// per-device noise-shares, and decrypts with 12 distinct key-shares.
//
//	go run ./examples/fullprotocol
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"chiaroscuro"
)

func main() {
	const (
		devices  = 32
		clusters = 3
		tau      = 8 // key-shares needed to decrypt (τ of Table 1)
	)

	// Small synthetic load curves so the crypto-heavy demo stays snappy.
	data, _ := chiaroscuro.GenerateCER(devices, 99)
	seeds := chiaroscuro.SeedCentroids("cer", clusters, 100)

	// Real threshold Damgård–Jurik: degree s=3 gives the EESum enough
	// plaintext headroom at a 256-bit demo key (use >= 1024-bit keys and
	// GenerateKey-produced primes for anything resembling production).
	scheme, err := chiaroscuro.NewTestScheme(256, 3, devices, tau)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("devices: %d, clusters: %d, decryption threshold: %d key-shares\n",
		devices, clusters, tau)
	fmt.Println("running the full protocol (encrypted gossip sums + collaborative")
	fmt.Println("noise + epidemic threshold decryption)...")

	start := time.Now()
	job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
		Mode:          chiaroscuro.Simulated,
		Scheme:        scheme,
		K:             clusters,
		InitCentroids: seeds,
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		// A 32-device demo needs a gentler noise level than the paper's
		// millions of participants: the noise magnitude is absolute while
		// the signal grows with the population.
		Epsilon:       math.Ln2 * 1000,
		MaxIterations: 2,
		Smooth:        true,
		Exchanges:     16,
		FracBits:      24,
		Seed:          101,
		TraceQuality:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Watch the protocol live: the event stream reports every completed
	// gossip cycle of each phase and every iteration's released (i.e.
	// threshold-decrypted) centroid set as it happens.
	events := job.Events()
	go job.Run(context.Background())
	var lastPhase chiaroscuro.Phase = -1
	for ev := range events {
		switch e := ev.(type) {
		case chiaroscuro.PhaseProgress:
			if e.Phase != lastPhase {
				if e.Of > 0 {
					fmt.Printf("  iteration %d: %s phase (%d cycles)\n", e.Iteration, e.Phase, e.Of)
				} else {
					fmt.Printf("  iteration %d: %s phase (adaptive)\n", e.Iteration, e.Phase)
				}
				lastPhase = e.Phase
			}
		case chiaroscuro.IterationReleased:
			fmt.Printf("  iteration %d: %d centroids decrypted and released, ε %.4f\n",
				e.Iteration, len(e.Centroids), e.EpsilonSpent)
		}
	}

	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}

	for _, tr := range res.Traces {
		fmt.Printf("  iteration %d: %d→%d centroids, ε %.4f, %d sum + %d decrypt cycles, cross-device agreement %.1e\n",
			tr.Iteration, tr.CentroidsIn, tr.CentroidsOut, tr.EpsilonSpent,
			tr.SumCycles, tr.DecryptCycles, tr.Agreement)
	}
	fmt.Printf("\ndone in %v: %d centroids released, ε spent %.4f\n",
		time.Since(start).Round(time.Millisecond), len(res.Centroids), res.TotalEpsilon)
	fmt.Printf("gossip traffic: %.0f messages (%.0f kB) per device\n",
		res.AvgMessages, res.AvgBytes/1024)
	fmt.Println("\nevery value that crossed the (simulated) wire was either")
	fmt.Println("homomorphically encrypted, differentially private, or data-independent.")
}
