// Health scenario: patients' tumor-growth series (the paper's NUMED
// workload) are clustered into response cohorts — deep responders,
// stable disease, late escape, progression — without any patient series
// leaving its device unprotected.
//
//	go run ./examples/health
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"chiaroscuro"
)

func main() {
	const patients = 50000
	data, _ := chiaroscuro.GenerateNUMED(patients, 21)
	seeds := chiaroscuro.SeedCentroids("numed", 8, 22)

	job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
		Mode:          chiaroscuro.CentralizedDP,
		InitCentroids: seeds,
		Budget:        chiaroscuro.Greedy(math.Ln2),
		DMin:          chiaroscuro.NUMEDMin,
		DMax:          chiaroscuro.NUMEDMax,
		Smooth:        true, // harmless on NUMED (balanced clusters), cf. Figure 2(b)
		MaxIterations: 10,
		Seed:          23,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("private cohort analysis of %d patients (ε = %.3f spent)\n\n",
		patients, res.TotalEpsilon)
	fmt.Printf("tumor-size trajectories discovered (iteration %d, 20 weekly measures, mm):\n", res.BestIter)
	for i, c := range res.Best() {
		fmt.Printf("  cohort %d: %-18s start %5.1f → end %5.1f  (%+.1f mm, nadir week %d)\n",
			i+1, classify(c), c[0], c[len(c)-1], c[len(c)-1]-c[0], nadirWeek(c))
	}

	fmt.Println("\nweekly profile of the largest shrinking cohort:")
	for _, c := range res.Best() {
		if classify(c) == "deep response" || classify(c) == "response" {
			spark(c)
			break
		}
	}
}

func classify(c chiaroscuro.Series) string {
	delta := c[len(c)-1] - c[0]
	nadir := c[nadirWeek(c)]
	switch {
	case delta < -0.3*c[0] && nadir < 0.5*c[0]:
		return "deep response"
	case delta < -2:
		return "response"
	case math.Abs(delta) <= 2:
		return "stable disease"
	case nadir < c[0]-1 && delta > 2:
		return "late escape"
	default:
		return "progression"
	}
}

func nadirWeek(c chiaroscuro.Series) int {
	best, bestV := 0, math.Inf(1)
	for w, v := range c {
		if v < bestV {
			best, bestV = w, v
		}
	}
	return best
}

// spark prints a crude text profile of a trajectory.
func spark(c chiaroscuro.Series) {
	_, hi := 0.0, c.Max()
	for w, v := range c {
		bars := int(v / (hi + 1e-9) * 40)
		fmt.Printf("  week %2d %6.2f %s\n", w+1, v, repeat('#', bars))
	}
}

func repeat(ch byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
