// Quickstart: cluster 20,000 synthetic smart-meter series with
// differential privacy in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"chiaroscuro"
)

func main() {
	// 100K daily electricity load curves (24 hourly readings in [0, 80]).
	// DP noise has a fixed absolute magnitude, so more participants means
	// better clusters — the paper runs 3M.
	data, _ := chiaroscuro.GenerateCER(100000, 42)

	// Initial centroids must be data-independent (privacy!): draw them
	// from the same generator family, never from participant data.
	seeds := chiaroscuro.SeedCentroids("cer", 8, 43)

	// Cluster with the paper's settings: ε = ln 2, GREEDY budget
	// concentration, moving-average smoothing of the noisy means.
	res, err := chiaroscuro.ClusterDP(data, chiaroscuro.DPOptions{
		InitCentroids: seeds,
		Budget:        chiaroscuro.Greedy(math.Ln2),
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Smooth:        true,
		MaxIterations: 10,
		Seed:          44,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d series, spending ε = %.3f\n", data.Len(), res.TotalEpsilon)
	for it, s := range res.Stats {
		fmt.Printf("  iteration %2d: inertia %8.2f, %2d live centroids\n",
			it+1, s.Inertia, s.Centroids)
	}
	fmt.Printf("\nbest iteration: %d, with %d usable consumption profiles\n",
		res.BestIter, len(res.Best()))
	fmt.Println("(late iterations drowning in noise is expected: the GREEDY budget")
	fmt.Println("concentrates ε on the early, high-gain iterations — Section 5.1)")
}
