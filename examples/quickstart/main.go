// Quickstart: cluster 100,000 synthetic smart-meter series with
// differential privacy through the unified Job API, watching each
// iteration's release as it happens.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"chiaroscuro"
)

func main() {
	// 100K daily electricity load curves (24 hourly readings in [0, 80]).
	// DP noise has a fixed absolute magnitude, so more participants means
	// better clusters — the paper runs 3M.
	data, _ := chiaroscuro.GenerateCER(100000, 42)

	// Initial centroids must be data-independent (privacy!): draw them
	// from the same generator family, never from participant data.
	seeds := chiaroscuro.SeedCentroids("cer", 8, 43)

	// One Job, one options struct, whatever the mode: here the paper's
	// quality configuration — ε = ln 2, GREEDY budget concentration,
	// moving-average smoothing of the noisy means.
	job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
		Mode:          chiaroscuro.CentralizedDP,
		InitCentroids: seeds,
		Epsilon:       math.Ln2, // Budget defaults to Greedy(Epsilon)
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Smooth:        true,
		MaxIterations: 10,
		Seed:          44,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The Diptych releases one cleartext centroid set per iteration by
	// design — stream the releases instead of waiting for the whole run.
	events := job.Events()
	go job.Run(context.Background())
	for ev := range events {
		if rel, ok := ev.(chiaroscuro.IterationReleased); ok {
			fmt.Printf("  iteration %2d: inertia %8.2f, %2d live centroids\n",
				rel.Iteration, rel.Inertia, len(rel.Centroids))
		}
	}

	res, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustered %d series, spending ε = %.3f\n", data.Len(), res.TotalEpsilon)
	fmt.Printf("\nbest iteration: %d, with %d usable consumption profiles\n",
		res.BestIter, len(res.Best()))
	fmt.Println("(late iterations drowning in noise is expected: the GREEDY budget")
	fmt.Println("concentrates ε on the early, high-gain iterations — Section 5.1)")
}
