// Package chiaroscuro is a Go implementation of Chiaroscuro (Allard,
// Hébrail, Masseglia, Pacitti — SIGMOD 2015): privacy-preserving k-means
// clustering of personal time-series that are massively distributed on
// personal devices.
//
// Chiaroscuro never centralizes raw series. Each k-means iteration runs
// over the Diptych data structure: cleartext centroids protected by
// (ε,δ)-probabilistic differential privacy on one side, and cluster
// means encrypted under an additively-homomorphic threshold cryptosystem
// (Damgård–Jurik) on the other. Gossip (epidemic) protocols compute the
// encrypted sums, assemble the Laplace noise from per-participant
// noise-shares, and perform the threshold decryption — with no
// coordinator and tolerance to churn.
//
// Every run goes through one Job: NewJob validates a unified Options
// set eagerly (rejecting bad combinations with the typed sentinel
// errors of errors.go), Run executes it under a context.Context —
// cancellation propagates into the gossip and decryption cycle loops
// and shuts the TCP runtimes down cleanly — and Events streams typed
// progress while the run is in flight. The Diptych releases a
// cleartext, differentially private centroid set per iteration by
// design (Section 4 of the paper); the stream surfaces exactly that
// disclosure as it happens (IterationReleased), plus per-cycle phase
// progress and churn. Options.Mode selects one of four backends over
// the same knobs, covering the paper's evaluation methodology:
//
//   - Centralized: plain k-means — the non-private quality baseline;
//   - CentralizedDP: centralized k-means with the paper's
//     differentially private release of each iteration's sums and
//     counts, budget concentration strategies (GREEDY, GREEDY_FLOOR,
//     UNIFORM_FAST) and SMA smoothing — the configuration used for
//     quality experiments at millions of series;
//   - Simulated: the complete distributed protocol over an in-memory
//     cycle engine, with real or simulated encryption;
//   - Networked: the same protocol over real TCP through the binary
//     wire protocol, one peer runtime per series (cmd/chiaroscurod is
//     the one-process-per-participant daemon).
//
// The deprecated entry points Cluster, ClusterDP, Run and RunNetworked
// remain as thin wrappers over Job and release bit-identical centroids
// per seed.
//
// The synthetic workload generators of the evaluation (CER-like smart
// meter data, NUMED-like tumor-growth data, the A3 2-D benchmark) are
// exposed under Generate*.
package chiaroscuro

import (
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// Series is one time-series: a fixed-length sequence of measures.
type Series = timeseries.Series

// Dataset is a set of equal-length series stored densely.
type Dataset = timeseries.Dataset

// NewDataset creates an empty dataset for series of length n.
func NewDataset(n int) *Dataset { return timeseries.NewDataset(n) }

// FromSeries builds a dataset from equal-length series.
func FromSeries(rows []Series) (*Dataset, error) { return timeseries.FromSeries(rows) }

// LoadCSV reads a dataset from a CSV file (one series per row).
func LoadCSV(path string) (*Dataset, error) { return datasets.LoadCSV(path) }

// SaveCSV writes a dataset to a CSV file (one series per row).
func SaveCSV(path string, d *Dataset) error { return datasets.SaveCSV(path, d) }

// Budget distributes the privacy budget ε across k-means iterations
// (Section 5.1 of the paper). Use Greedy, GreedyFloor or UniformFast.
type Budget = dp.Budget

// Greedy returns the GREEDY strategy: iteration i gets ε/2^i.
func Greedy(eps float64) Budget { return dp.Greedy{Eps: eps} }

// GreedyFloor returns the GREEDY_FLOOR strategy with floors of f
// iterations (the paper uses f = 4).
func GreedyFloor(eps float64, f int) Budget { return dp.GreedyFloor{Eps: eps, Floor: f} }

// UniformFast returns the UNIFORM_FAST strategy: ε spread uniformly over
// at most limit iterations (the paper uses 5 and 10).
func UniformFast(eps float64, limit int) Budget { return dp.UniformFast{Eps: eps, Limit: limit} }

// GenerateCER produces CER-like daily electricity consumption series
// (24 hourly measures in [0, 80]); see DESIGN.md for the substitution
// rationale. It returns the dataset and the hidden archetype labels.
func GenerateCER(t int, seed uint64) (*Dataset, []int) {
	return datasets.GenerateCER(t, randx.New(seed, 0xCE2))
}

// GenerateNUMED produces NUMED-like tumor-growth series (20 weekly
// measures in [0, 50]) from the Claret growth-inhibition model.
func GenerateNUMED(t int, seed uint64) (*Dataset, []int) {
	return datasets.GenerateNUMED(t, randx.New(seed, 0x97ED))
}

// GenerateA3 produces the 750K-point 2-D dataset of the paper's
// Appendix D (50 clusters).
func GenerateA3(seed uint64) *Dataset {
	return datasets.GenerateA3(randx.New(seed, 0xA3))
}

// SeedCentroids draws k data-independent initial centroids for the named
// generator family ("cer", "numed", "a3") — the privacy-safe seeding the
// paper uses (real series must never seed the clustering).
func SeedCentroids(kind string, k int, seed uint64) []Series {
	return datasets.SeedCentroids(kind, k, randx.New(seed, 0x5EED))
}

// Ranges of the built-in generators, needed to calibrate sensitivity.
const (
	CERMin, CERMax     = datasets.CERMin, datasets.CERMax
	CERLen             = datasets.CERLen
	NUMEDMin, NUMEDMax = datasets.NUMEDMin, datasets.NUMEDMax
	NUMEDLen           = datasets.NUMEDLen
)
