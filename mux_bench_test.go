package chiaroscuro

import (
	"context"
	"testing"
)

// benchMuxCycle drives a full 12-participant Networked run on the
// simulation scheme — every frame real, no modular exponentiation — so
// the pair below isolates the transport: one TCP listener per
// participant versus all twelve as virtual nodes on one mux listener
// exchanging over in-process pipes. Reported per protocol run (one
// iteration: sum + dissemination + decryption cycles).
func benchMuxCycle(b *testing.B, vnodes int) {
	b.Helper()
	data, _ := GenerateCER(12, 7)
	seeds := SeedCentroids("cer", 2, 8)
	var cycles float64
	for i := 0; i < b.N; i++ {
		scheme, err := NewSimulationScheme(64, 12, 4)
		if err != nil {
			b.Fatal(err)
		}
		job, err := NewJob(data, Options{
			Mode: Networked, Scheme: scheme,
			K: 2, InitCentroids: seeds,
			DMin: CERMin, DMax: CERMax,
			Epsilon: 1e4, MaxIterations: 1, Exchanges: 10,
			FracBits: 24, Seed: uint64(i),
			VirtualNodes: vnodes,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Centroids) == 0 {
			b.Fatal("no centroids")
		}
		cycles = 0
		for _, tr := range res.Traces {
			cycles += float64(tr.SumCycles + tr.DissCycles + tr.DecryptCycles)
		}
	}
	b.ReportMetric(cycles, "cycles/run")
}

func BenchmarkMuxCycleTCP(b *testing.B)       { benchMuxCycle(b, 0) }
func BenchmarkMuxCycleInProcess(b *testing.B) { benchMuxCycle(b, 12) }
