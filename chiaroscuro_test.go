package chiaroscuro

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: generate data, cluster three
	// ways, compare.
	data, _ := GenerateCER(4000, 1)
	seeds := SeedCentroids("cer", 8, 2)

	base, err := Cluster(data, ClusterOptions{InitCentroids: seeds, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Centroids) == 0 || !withinRange(base.Centroids, CERMin, CERMax) {
		t.Fatal("baseline produced no plausible centroids")
	}

	private, err := ClusterDP(data, DPOptions{
		InitCentroids: seeds,
		Budget:        Greedy(math.Ln2),
		DMin:          CERMin, DMax: CERMax,
		Smooth:        true,
		MaxIterations: 5,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if private.TotalEpsilon > math.Ln2*(1+1e-9) {
		t.Errorf("privacy budget exceeded: %v", private.TotalEpsilon)
	}

	// Distributed run at a small population with simulated encryption.
	small, _ := GenerateCER(64, 4)
	scheme, err := NewSimulationScheme(256, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	netRes, err := Run(small, scheme, NetworkOptions{
		K:             4,
		InitCentroids: SeedCentroids("cer", 4, 5),
		DMin:          CERMin, DMax: CERMax,
		Epsilon:       1e5, // demo: negligible noise
		MaxIterations: 2,
		Exchanges:     25,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(netRes.Centroids) == 0 {
		t.Fatal("distributed run produced no centroids")
	}
	if netRes.AvgMessages <= 0 {
		t.Error("no gossip messages accounted")
	}
}

func withinRange(cs []Series, lo, hi float64) bool {
	for _, c := range cs {
		if !c.InRange(lo-(hi-lo), hi+(hi-lo)) {
			return false
		}
	}
	return true
}

func TestPublicBudgets(t *testing.T) {
	for _, b := range []Budget{Greedy(0.69), GreedyFloor(0.69, 4), UniformFast(0.69, 5)} {
		var total float64
		for it := 1; it <= 100; it++ {
			total += b.Epsilon(it)
		}
		if total > 0.69*(1+1e-9) {
			t.Errorf("%s overspends: %v", b.Name(), total)
		}
	}
}

func TestPublicGenerators(t *testing.T) {
	cer, labels := GenerateCER(100, 7)
	if cer.Len() != 100 || cer.Dim() != CERLen || len(labels) != 100 {
		t.Error("CER generator shape")
	}
	numed, _ := GenerateNUMED(100, 7)
	if numed.Dim() != NUMEDLen {
		t.Error("NUMED generator shape")
	}
	if lo, hi := numed.Range(); lo < NUMEDMin || hi > NUMEDMax {
		t.Error("NUMED range")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	d, _ := GenerateNUMED(20, 8)
	if err := SaveCSV(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 20 || got.Dim() != NUMEDLen {
		t.Error("round trip shape")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestFromSeriesAndDataset(t *testing.T) {
	d, err := FromSeries([]Series{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Error("FromSeries")
	}
	nd := NewDataset(3)
	nd.Append(Series{1, 2, 3})
	if nd.Dim() != 3 {
		t.Error("NewDataset")
	}
}

func TestRunValidation(t *testing.T) {
	data, _ := GenerateCER(8, 9)
	if _, err := Run(data, nil, NetworkOptions{}); err == nil {
		t.Error("nil scheme must fail")
	}
	scheme, _ := NewSimulationScheme(0, 4, 2) // too few shares
	if _, err := Run(data, scheme, NetworkOptions{
		K: 2, InitCentroids: SeedCentroids("cer", 2, 1),
		DMin: CERMin, DMax: CERMax, Epsilon: 1,
	}); err == nil {
		t.Error("too few key-shares must fail")
	}
}

func TestNewDamgardJurikTestScheme(t *testing.T) {
	s, err := NewTestScheme(128, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold() != 3 || s.NumShares() != 5 {
		t.Error("test scheme parameters")
	}
	if _, err := NewTestScheme(100, 1, 5, 3); err == nil {
		t.Error("unsupported key size must fail")
	}
}
