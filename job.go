package chiaroscuro

import (
	"context"
	"fmt"
	"iter"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/dpkmeans"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/mux"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
	"chiaroscuro/internal/wireproto"
)

// Mode selects a Job's execution backend. All four run the same
// clustering over the same Options; they differ in where the privacy
// and the network are real.
type Mode int

const (
	// Centralized runs plain (non-private) Lloyd k-means — the paper's
	// "No perturbation" quality baseline.
	Centralized Mode = iota
	// CentralizedDP runs centralized k-means with the paper's
	// differentially private release of every iteration's sums and
	// counts — the configuration of the quality experiments at millions
	// of series (Section 6.1).
	CentralizedDP
	// Simulated runs the complete distributed protocol — encrypted
	// gossip sums, collaborative noise, epidemic threshold decryption —
	// over an in-memory cycle engine, one participant per series.
	Simulated
	// Networked runs the same protocol over real TCP on the loopback
	// interface: one listener and peer runtime per series, speaking the
	// binary wire protocol. Results are participant 0's view.
	Networked
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Centralized:
		return "centralized"
	case CentralizedDP:
		return "centralized-dp"
	case Simulated:
		return "simulated"
	case Networked:
		return "networked"
	}
	return "unknown"
}

// Options is the single knob set shared by every run mode. Zero values
// take the paper's defaults where one exists; knobs a mode does not use
// are ignored (a Centralized run needs no Epsilon, a CentralizedDP run
// no Scheme). NewJob validates eagerly and returns the typed sentinel
// errors of errors.go on bad combinations.
type Options struct {
	// Mode selects the backend (default Centralized).
	Mode Mode

	// InitCentroids seeds the clustering. Required, and — for anything
	// private — data-independent: real series must never seed the run.
	InitCentroids []Series
	// K is the cluster count the distributed modes provision for
	// (message accounting, packing layout). 0 derives it from the live
	// seeds; the centralized modes always cluster to the seeds.
	K int

	// DMin, DMax bound each measure; they calibrate the Laplace
	// sensitivity (Definition 4) in every private mode.
	DMin, DMax float64

	// Epsilon is the total privacy budget (paper: ln 2). Required in
	// Simulated and Networked modes; in CentralizedDP mode it may be
	// replaced by an explicit Budget.
	Epsilon float64
	// Budget is the ε concentration strategy (Greedy, GreedyFloor,
	// UniformFast). Default: Greedy(Epsilon).
	Budget Budget

	// MaxIterations bounds the run (default 10, the paper's n_it^max).
	MaxIterations int
	// Threshold is the θ convergence bound on centroid movement
	// (0 = run all iterations; must be 0 in Networked mode).
	Threshold float64
	// Smooth enables the circular moving-average smoothing of the
	// released means (Section 5.2).
	Smooth bool

	// Churn disconnects each participant with this probability — per
	// iteration in CentralizedDP mode, per gossip cycle in the
	// distributed modes (Section 6.1.5).
	Churn float64
	// MidFailure additionally corrupts in-flight exchanges under churn
	// (distributed modes).
	MidFailure bool

	// Seed makes the run reproducible. Released centroids are
	// bit-identical per seed across Job and the legacy entry points,
	// and across Simulated and Networked single-iteration runs.
	Seed uint64

	// --- distributed knobs (Simulated and Networked modes) ---

	// Scheme is the threshold additively-homomorphic encryption the
	// protocol runs on (NewTestScheme, NewDamgardJurik,
	// NewSimulationScheme). Required; needs one key-share per series.
	Scheme Scheme
	// NoiseShares is the nν lower bound (default: population size).
	NoiseShares int
	// Exchanges is the gossip cycle count of each sum phase
	// (default: Theorem 3).
	Exchanges int
	// DissCycles and DecryptCycles, when positive, fix the correction-
	// dissemination and epidemic-decryption phase lengths (the schedule
	// a networked deployment must use; Networked mode derives
	// FixedPhaseCycles defaults). Zero keeps the simulator adaptive.
	DissCycles    int
	DecryptCycles int
	// Newscast uses bounded Newscast views (size 30) instead of uniform
	// peer sampling.
	Newscast bool
	// FracBits is the fixed-point encoding precision (default 30).
	FracBits uint
	// PackSlots controls ciphertext packing (0 auto, 1 off, >= 2
	// demanded); see NetworkOptions.PackSlots.
	PackSlots int
	// Workers bounds the crypto/simulation worker pool (0 = one per
	// CPU, 1 = serial). Identical results per seed for any value.
	Workers int
	// TraceQuality records per-iteration inertia metrics (omniscient;
	// evaluation only; Simulated mode).
	TraceQuality bool
	// ExchangeTimeout bounds every blocking exchange step of a
	// Networked run (default 30s).
	ExchangeTimeout time.Duration
	// FaultPolicy hardens a Networked run against hostile networks:
	// exchange retries with backoff, and peer suspicion. The zero value
	// keeps the single-attempt behavior.
	FaultPolicy FaultPolicy
	// VirtualNodes, when at least 2, multiplexes a Networked run's
	// participants onto shared listeners in groups of this size (the
	// internal/mux virtual-node runtime): co-located pairs exchange over
	// in-process pipes, remote pairs over TCP. Released centroids are
	// bit-identical to the default one-listener-per-participant shape
	// (and to the simulator) per seed; only the socket/goroutine
	// footprint changes. 0 or 1 keeps one listener per participant.
	VirtualNodes int
}

// FaultPolicy is the Networked mode's fault-tolerance policy. Retries
// only re-run exchange attempts that failed strictly before the local
// state merge — a committed half-exchange is never re-applied — so a
// run under retries releases the same centroids as one whose network
// never faulted, given the same completed-exchange trace.
type FaultPolicy struct {
	// MaxRetries is how many additional attempts a failed exchange leg
	// gets before its slot is abandoned (0 = single attempt).
	MaxRetries int
	// Backoff is the initial delay between attempts; it doubles per
	// attempt (capped at 8×) with ±50% jitter. Defaults to 25ms when
	// MaxRetries > 0.
	Backoff time.Duration
	// SuspicionK evicts a peer from a node's address book after this
	// many consecutive initiator-side exchange failures (0 = never).
	// Later exchanges to an evicted peer fail fast instead of burning
	// their deadline; the peer's own hello reinstates it. Evictions
	// surface as Churn events with Reason ChurnEvicted.
	SuspicionK int
}

// Result is the outcome of a Job, across all modes. Mode-specific
// fields stay zero where they do not apply: the centralized modes fill
// Stats (and CentralizedDP History/BestIter), the distributed modes
// fill Traces and the gossip accounting.
type Result struct {
	// Centroids is the final released centroid set (participant 0's
	// view in Networked mode).
	Centroids []Series
	// History holds every iteration's released centroids
	// (CentralizedDP mode).
	History [][]Series
	// BestIter is the 1-based iteration with the lowest inertia
	// (CentralizedDP mode; 0 if none).
	BestIter int
	// Stats traces the centralized modes' iterations.
	Stats []ClusterStats
	// Traces traces the distributed modes' iterations.
	Traces []NetworkTrace
	// TotalEpsilon is the privacy budget the run consumed.
	TotalEpsilon float64
	// Converged reports whether the θ criterion stopped the run.
	Converged bool
	// AvgMessages and AvgBytes are the per-participant gossip
	// accounting of the distributed modes.
	AvgMessages float64
	AvgBytes    float64
	// Wire is the population-wide wire-level accounting of a Networked
	// run (nil in every other mode): real exchange, fault-tolerance and
	// byte counters summed over all participants.
	Wire *WireStats
}

// WireStats aggregates the wire counters of a Networked population.
type WireStats struct {
	Initiated int64 // exchanges initiated
	Responded int64 // exchanges answered
	Timeouts  int64 // exchange slots abandoned on a deadline
	Rejected  int64 // frames refused (bad version/epoch/bounds)
	BadFrames int64 // malformed or over-limit frames that dropped a connection
	Retries   int64 // exchange attempts retried after a transient failure
	Suspected int64 // consecutive-failure strikes recorded against peers
	Evicted   int64 // peers evicted from address books by suspicion
	Resumed   int64 // resume announcements accepted from restarted peers
	BytesSent int64
	BytesRecv int64
}

// Best returns the released centroids of the best (lowest-inertia)
// iteration when a release history exists (CentralizedDP mode) and the
// final centroids otherwise — the paper's methodology for reading a
// perturbed run, where late iterations drown in noise under GREEDY
// budgets.
func (r *Result) Best() []Series {
	if r.BestIter >= 1 && r.BestIter <= len(r.History) {
		return r.History[r.BestIter-1]
	}
	return r.Centroids
}

// engine is the internal execution backend behind a Job: one per Mode,
// all driving the same validated Options and feeding the same event
// hooks.
type engine interface {
	run(ctx context.Context, em *emitter) (*Result, error)
}

// Job is one configured clustering run. Build it with NewJob (options
// are validated eagerly), optionally subscribe to Events, then Run it
// once. A Job is not reusable: one Job, one run.
type Job struct {
	data *Dataset
	opts Options
	eng  engine
	bus  *eventBus

	started atomic.Bool
	done    chan struct{}
	res     *Result
	err     error
}

// NewJob validates opts against d eagerly — returning the typed
// sentinel errors of errors.go, not a failure deep inside the run —
// fills the paper defaults, and binds the mode's execution backend.
func NewJob(d *Dataset, opts Options) (*Job, error) {
	if err := validateOptions(d, &opts); err != nil {
		return nil, err
	}
	j := &Job{data: d, opts: opts, bus: newEventBus(), done: make(chan struct{})}
	switch opts.Mode {
	case Centralized:
		j.eng = &centralizedEngine{data: d, opts: opts}
	case CentralizedDP:
		j.eng = &dpEngine{data: d, opts: opts}
	case Simulated:
		j.eng = &simEngine{data: d, opts: opts}
	case Networked:
		j.eng = &netEngine{data: d, opts: opts}
	}
	return j, nil
}

// Run executes the job until convergence, the iteration cap, budget
// exhaustion, or cancellation. A cancelled ctx aborts the run cleanly —
// the gossip and decryption cycle loops stop between cycles, a
// Networked population shuts down its listeners and live connections —
// and Run returns ctx.Err(). Run may be called once; subsequent calls
// return ErrJobReused.
func (j *Job) Run(ctx context.Context) (*Result, error) {
	if j.started.Swap(true) {
		return nil, ErrJobReused
	}
	em := &emitter{bus: j.bus}
	res, err := j.eng.run(ctx, em)
	j.res, j.err = res, err
	j.bus.close(Done{Err: err})
	close(j.done)
	return res, err
}

// Wait blocks until Run finished and returns its outcome — the
// companion of running a Job from a goroutine while consuming Events
// on the caller's side.
func (j *Job) Wait() (*Result, error) {
	<-j.done
	return j.res, j.err
}

// Events returns a stream of typed progress events: IterationReleased
// as every iteration's centroids are released (decrypted, in the
// distributed modes), PhaseProgress per gossip cycle, Churn per churn
// resampling, and a terminal Done. The stream ends after Done.
//
// Subscribe before calling Run to observe a run from its start; each
// call creates an independent subscription that sees events from that
// point on (after the run it yields only Done). Breaking out of the
// loop unsubscribes for good: ranging the same iterator again ends
// immediately (call Events again for a fresh subscription). A
// subscriber must consume or break: an abandoned, un-broken iterator
// eventually applies backpressure to the run once its buffer fills. When nobody subscribes the run pays nothing — the
// emission sites are a single atomic load (see
// BenchmarkJobEventOverhead).
func (j *Job) Events() iter.Seq[Event] {
	s := j.bus.subscribe()
	return func(yield func(Event) bool) {
		defer j.bus.unsubscribe(s)
		for {
			select {
			case <-s.gone:
				// The subscription was already ended (a previous range
				// broke out): the stream stays over instead of blocking
				// on a channel nobody feeds anymore.
				return
			case ev, ok := <-s.ch:
				if !ok || !yield(ev) {
					return
				}
			}
		}
	}
}

// validateOptions rejects invalid combinations eagerly and normalizes
// the defaults shared by every backend.
func validateOptions(d *Dataset, o *Options) error {
	if d == nil || d.Len() == 0 {
		return ErrNoData
	}
	if o.Mode < Centralized || o.Mode > Networked {
		return fmt.Errorf("%w: %d", ErrBadMode, int(o.Mode))
	}
	live := 0
	for _, c := range o.InitCentroids {
		if c == nil {
			continue
		}
		live++
		if len(c) != d.Dim() {
			return fmt.Errorf("%w: centroid has %d measures, series have %d", ErrSeedLength, len(c), d.Dim())
		}
	}
	if live == 0 {
		return ErrNoSeeds
	}
	if o.K < 0 {
		return fmt.Errorf("%w: %d", ErrBadK, o.K)
	}
	if o.MaxIterations < 0 {
		return fmt.Errorf("%w: %d", ErrBadIterations, o.MaxIterations)
	}
	if o.Threshold < 0 || math.IsNaN(o.Threshold) {
		return fmt.Errorf("%w: %v", ErrBadThreshold, o.Threshold)
	}
	if o.Churn < 0 || o.Churn >= 1 || math.IsNaN(o.Churn) {
		return fmt.Errorf("%w: %v", ErrBadChurn, o.Churn)
	}
	if o.DMin > o.DMax || math.IsNaN(o.DMin) || math.IsNaN(o.DMax) {
		return fmt.Errorf("%w: [%v, %v]", ErrBadRange, o.DMin, o.DMax)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: %d", ErrBadWorkers, o.Workers)
	}
	if o.PackSlots < 0 {
		return fmt.Errorf("%w: %d", ErrBadPackSlots, o.PackSlots)
	}
	if o.Exchanges < 0 || o.DissCycles < 0 || o.DecryptCycles < 0 || o.NoiseShares < 0 {
		return ErrBadCycles
	}
	if o.FaultPolicy.MaxRetries < 0 || o.FaultPolicy.Backoff < 0 || o.FaultPolicy.SuspicionK < 0 {
		return fmt.Errorf("%w: %+v", ErrBadFaultPolicy, o.FaultPolicy)
	}
	badEps := !(o.Epsilon > 0) || math.IsInf(o.Epsilon, 1)
	switch o.Mode {
	case CentralizedDP:
		if o.Budget == nil {
			if badEps {
				return fmt.Errorf("%w: %v (set Epsilon or a Budget)", ErrBadEpsilon, o.Epsilon)
			}
			o.Budget = Greedy(o.Epsilon)
		}
	case Simulated, Networked:
		if badEps {
			return fmt.Errorf("%w: %v", ErrBadEpsilon, o.Epsilon)
		}
	}
	if o.Mode == Simulated || o.Mode == Networked {
		if d.Len() < 2 {
			return fmt.Errorf("%w: %d series", ErrTooFewParticipants, d.Len())
		}
		if o.Scheme == nil {
			return ErrNilScheme
		}
		if o.Scheme.NumShares() < d.Len() {
			return fmt.Errorf("%w: %d shares for %d participants", ErrSchemeShares, o.Scheme.NumShares(), d.Len())
		}
		if o.K == 0 {
			o.K = live
		}
	}
	if o.Mode == Networked {
		if o.Threshold != 0 {
			return ErrThresholdNetworked
		}
		if o.DissCycles == 0 || o.DecryptCycles == 0 {
			diss, dec := FixedPhaseCycles(d.Len())
			if o.DissCycles == 0 {
				o.DissCycles = diss
			}
			if o.DecryptCycles == 0 {
				o.DecryptCycles = dec
			}
		}
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 10
	}
	return nil
}

// --- Centralized backend ---

type centralizedEngine struct {
	data *Dataset
	opts Options
}

func (g *centralizedEngine) run(ctx context.Context, em *emitter) (*Result, error) {
	res, err := kmeans.RunContext(ctx, g.data, kmeans.Config{
		InitCentroids: g.opts.InitCentroids,
		Threshold:     g.opts.Threshold,
		MaxIterations: g.opts.MaxIterations,
		OnIteration: func(s kmeans.IterationStats, means []Series) {
			em.iteration(s.Iteration, means, 0, s.IntraInertia)
		},
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Centroids: res.Centroids, Converged: res.Converged}
	for _, s := range res.Stats {
		out.Stats = append(out.Stats, ClusterStats{
			Iteration:   s.Iteration,
			Inertia:     s.IntraInertia,
			Centroids:   s.Centroids,
			PostInertia: s.IntraInertia,
		})
	}
	return out, nil
}

// --- CentralizedDP backend ---

type dpEngine struct {
	data *Dataset
	opts Options
}

func (g *dpEngine) run(ctx context.Context, em *emitter) (*Result, error) {
	res, err := dpkmeans.RunContext(ctx, g.data, dpkmeans.Config{
		InitCentroids: g.opts.InitCentroids,
		Budget:        g.opts.Budget,
		DMin:          g.opts.DMin,
		DMax:          g.opts.DMax,
		Smooth:        g.opts.Smooth,
		MaxIterations: g.opts.MaxIterations,
		Threshold:     g.opts.Threshold,
		Churn:         g.opts.Churn,
		KeepHistory:   true,
		RNG:           randx.New(g.opts.Seed, 0xD9),
		OnIteration: func(s dpkmeans.IterationStats, released []Series) {
			em.iteration(s.Iteration, released, s.EpsilonSpent, s.PostInertia)
		},
	})
	if err != nil {
		return nil, err
	}
	best, _ := res.BestIteration()
	out := &Result{
		Centroids:    res.Centroids,
		History:      res.History,
		BestIter:     best,
		Converged:    res.Converged,
		TotalEpsilon: res.TotalEpsilon,
	}
	for _, s := range res.Stats {
		out.Stats = append(out.Stats, ClusterStats{
			Iteration:    s.Iteration,
			Inertia:      s.PreInertia,
			Centroids:    s.CentroidsOut,
			PostInertia:  s.PostInertia,
			EpsilonSpent: s.EpsilonSpent,
		})
	}
	return out, nil
}

// --- shared distributed configuration ---

// coreConfig maps the unified Options onto the internal protocol
// configuration, wiring the event hooks. Call once per participant:
// the Newscast sampler is stateful and must be fresh per engine.
func coreConfig(o Options, em *emitter) core.Config {
	var sampler sim.Sampler
	if o.Newscast {
		sampler = &sim.NewscastSampler{ViewSize: 30}
	}
	return core.Config{
		K:             o.K,
		InitCentroids: o.InitCentroids,
		DMin:          o.DMin,
		DMax:          o.DMax,
		Epsilon:       o.Epsilon,
		Budget:        o.Budget,
		MaxIterations: o.MaxIterations,
		Threshold:     o.Threshold,
		Smooth:        o.Smooth,
		NoiseShares:   o.NoiseShares,
		Exchanges:     o.Exchanges,
		Churn:         o.Churn,
		MidFailure:    o.MidFailure,
		DissCycles:    o.DissCycles,
		DecryptCycles: o.DecryptCycles,
		FracBits:      o.FracBits,
		PackSlots:     o.PackSlots,
		Seed:          o.Seed,
		Workers:       o.Workers,
		Sampler:       sampler,
		TraceQuality:  o.TraceQuality,
		Observer: core.Observer{
			Iteration: func(tr core.IterationTrace, released []Series) {
				em.iteration(tr.Iteration, released, tr.EpsilonSpent, tr.PostInertia)
			},
			Phase: func(it int, p core.Phase, cycle, of int) {
				em.phase(it, Phase(p), cycle, of)
			},
			Churn: func(it, cycle, down int, reason string) {
				em.churn(it, cycle, down, reason)
			},
		},
	}
}

// --- Simulated backend ---

type simEngine struct {
	data *Dataset
	opts Options
}

func (g *simEngine) run(ctx context.Context, em *emitter) (*Result, error) {
	nw, err := core.NewNetwork(g.data, g.opts.Scheme, coreConfig(g.opts, em))
	if err != nil {
		return nil, err
	}
	res, err := nw.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{
		Centroids:    res.Centroids,
		Traces:       res.Traces,
		TotalEpsilon: res.TotalEpsilon,
		Converged:    res.Converged,
		AvgMessages:  res.AvgMessages,
		AvgBytes:     res.AvgBytes,
	}, nil
}

// --- Networked backend ---

type netEngine struct {
	data *Dataset
	opts Options
}

func (g *netEngine) run(ctx context.Context, em *emitter) (*Result, error) {
	np := g.data.Len()
	policy := node.Policy{
		MaxRetries: g.opts.FaultPolicy.MaxRetries,
		Backoff:    g.opts.FaultPolicy.Backoff,
		SuspicionK: g.opts.FaultPolicy.SuspicionK,
	}
	nodes := make([]*node.Node, np)
	var hosts []*mux.Host
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				_ = nd.Close()
			}
		}
		for _, h := range hosts {
			_ = h.Close()
		}
	}()
	if v := g.opts.VirtualNodes; v >= 2 {
		// Virtual-node shape: participants in groups of v behind shared
		// mux listeners; the first host bootstraps the rest.
		proto := coreConfig(g.opts, em)
		obs := proto.Observer
		proto.Observer = core.Observer{}
		bootstrap := ""
		for base := 0; base < np; base += v {
			h, err := mux.NewHost(mux.Config{
				N:               np,
				SeriesDim:       g.data.Dim(),
				Scheme:          g.opts.Scheme,
				Proto:           proto,
				Bootstrap:       bootstrap,
				ExchangeTimeout: g.opts.ExchangeTimeout,
			})
			if err != nil {
				return nil, fmt.Errorf("chiaroscuro: mux host at %d: %w", base, err)
			}
			hosts = append(hosts, h)
			for i := base; i < min(base+v, np); i++ {
				cfg := node.Config{
					Index:           i,
					Series:          g.data.Row(i),
					ExchangeTimeout: g.opts.ExchangeTimeout,
					Policy:          policy,
				}
				if i == 0 {
					// The stream is participant 0's view — the same
					// participant whose view the networked result reports.
					cfg.Proto.Observer = obs
				}
				nd, err := h.AddNode(cfg)
				if err != nil {
					return nil, fmt.Errorf("chiaroscuro: node %d: %w", i, err)
				}
				nodes[i] = nd
			}
			if base == 0 {
				bootstrap = h.Addr()
			}
		}
	} else {
		bootstrap := ""
		for i := 0; i < np; i++ {
			proto := coreConfig(g.opts, em)
			if i != 0 {
				// The stream is participant 0's view — the same participant
				// whose view the networked result reports.
				proto.Observer = core.Observer{}
			}
			nd, err := node.New(node.Config{
				Index:           i,
				N:               np,
				Series:          g.data.Row(i),
				Scheme:          g.opts.Scheme,
				Proto:           proto,
				Bootstrap:       bootstrap,
				ExchangeTimeout: g.opts.ExchangeTimeout,
				Policy:          policy,
			})
			if err != nil {
				return nil, fmt.Errorf("chiaroscuro: node %d: %w", i, err)
			}
			nodes[i] = nd
			if i == 0 {
				bootstrap = nd.Addr()
			}
		}
	}
	results := make([]*node.Result, np)
	errs := make([]error, np)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *node.Node) {
			defer wg.Done()
			results[i], errs[i] = nd.RunContext(ctx)
		}(i, nd)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chiaroscuro: node %d: %w", i, err)
		}
	}
	r0 := results[0]
	wire := &WireStats{}
	counters := make([]wireproto.Counters, 0, np+len(hosts))
	for _, r := range results {
		counters = append(counters, r.Counters)
	}
	for _, h := range hosts {
		// Host-side membership traffic (virtual-node runs).
		counters = append(counters, h.Counters())
	}
	for _, c := range counters {
		wire.Initiated += c.Initiated
		wire.Responded += c.Responded
		wire.Timeouts += c.Timeouts
		wire.Rejected += c.Rejected
		wire.BadFrames += c.BadFrames
		wire.Retries += c.Retries
		wire.Suspected += c.Suspected
		wire.Evicted += c.Evicted
		wire.Resumed += c.Resumed
		wire.BytesSent += c.BytesSent
		wire.BytesRecv += c.BytesRecv
	}
	return &Result{
		Centroids:    r0.Centroids,
		Traces:       r0.Traces,
		TotalEpsilon: r0.TotalEpsilon,
		AvgMessages:  r0.AvgMessages,
		AvgBytes:     r0.AvgBytes,
		Wire:         wire,
	}, nil
}
