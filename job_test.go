package chiaroscuro

import (
	"context"
	"errors"
	"math"
	"testing"
)

// simSetup builds a small, fast, valid Simulated-mode configuration:
// 64 participants over the structure-preserving no-crypto scheme.
func simSetup(t *testing.T) (*Dataset, Options) {
	t.Helper()
	data, _ := GenerateCER(64, 4)
	scheme, err := NewSimulationScheme(256, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	return data, Options{
		Mode:          Simulated,
		Scheme:        scheme,
		K:             4,
		InitCentroids: SeedCentroids("cer", 4, 5),
		DMin:          CERMin, DMax: CERMax,
		Epsilon:       1e5,
		MaxIterations: 2,
		Exchanges:     25,
		Seed:          6,
	}
}

// TestNewJobValidation table-tests every invalid Options combination
// against its typed sentinel: NewJob must reject eagerly, before any
// protocol machinery spins up.
func TestNewJobValidation(t *testing.T) {
	data, base := simSetup(t)
	shortScheme, err := NewSimulationScheme(256, 4, 2) // fewer shares than participants
	if err != nil {
		t.Fatal(err)
	}
	two, _ := GenerateCER(2, 4)
	one := NewDataset(two.Dim())
	one.Append(two.Row(0))

	cases := []struct {
		name string
		data *Dataset
		mut  func(*Options)
		want error
	}{
		{"nil dataset", nil, func(o *Options) {}, ErrNoData},
		{"empty dataset", NewDataset(24), func(o *Options) {}, ErrNoData},
		{"no seeds", data, func(o *Options) { o.InitCentroids = nil }, ErrNoSeeds},
		{"all-nil seeds", data, func(o *Options) { o.InitCentroids = []Series{nil, nil} }, ErrNoSeeds},
		{"seed length mismatch", data, func(o *Options) { o.InitCentroids = []Series{{1, 2, 3}} }, ErrSeedLength},
		{"negative mode", data, func(o *Options) { o.Mode = -1 }, ErrBadMode},
		{"unknown mode", data, func(o *Options) { o.Mode = Networked + 1 }, ErrBadMode},
		{"negative K", data, func(o *Options) { o.K = -1 }, ErrBadK},
		{"negative iterations", data, func(o *Options) { o.MaxIterations = -1 }, ErrBadIterations},
		{"negative threshold", data, func(o *Options) { o.Threshold = -0.5 }, ErrBadThreshold},
		{"NaN threshold", data, func(o *Options) { o.Threshold = math.NaN() }, ErrBadThreshold},
		{"negative churn", data, func(o *Options) { o.Churn = -0.1 }, ErrBadChurn},
		{"churn one", data, func(o *Options) { o.Churn = 1 }, ErrBadChurn},
		{"NaN churn", data, func(o *Options) { o.Churn = math.NaN() }, ErrBadChurn},
		{"inverted range", data, func(o *Options) { o.DMin, o.DMax = 5, -5 }, ErrBadRange},
		{"NaN range", data, func(o *Options) { o.DMin = math.NaN() }, ErrBadRange},
		{"negative workers", data, func(o *Options) { o.Workers = -1 }, ErrBadWorkers},
		{"negative pack slots", data, func(o *Options) { o.PackSlots = -1 }, ErrBadPackSlots},
		{"negative exchanges", data, func(o *Options) { o.Exchanges = -1 }, ErrBadCycles},
		{"negative diss cycles", data, func(o *Options) { o.DissCycles = -1 }, ErrBadCycles},
		{"negative decrypt cycles", data, func(o *Options) { o.DecryptCycles = -1 }, ErrBadCycles},
		{"negative noise shares", data, func(o *Options) { o.NoiseShares = -1 }, ErrBadCycles},
		{"sim zero epsilon", data, func(o *Options) { o.Epsilon = 0 }, ErrBadEpsilon},
		{"sim negative epsilon", data, func(o *Options) { o.Epsilon = -1 }, ErrBadEpsilon},
		{"sim infinite epsilon", data, func(o *Options) { o.Epsilon = math.Inf(1) }, ErrBadEpsilon},
		{"sim NaN epsilon", data, func(o *Options) { o.Epsilon = math.NaN() }, ErrBadEpsilon},
		{"dp no budget no epsilon", data, func(o *Options) {
			o.Mode = CentralizedDP
			o.Epsilon, o.Budget, o.Scheme = 0, nil, nil
		}, ErrBadEpsilon},
		{"nil scheme", data, func(o *Options) { o.Scheme = nil }, ErrNilScheme},
		{"too few key-shares", data, func(o *Options) { o.Scheme = shortScheme }, ErrSchemeShares},
		{"one participant", one, func(o *Options) {}, ErrTooFewParticipants},
		{"networked threshold", data, func(o *Options) {
			o.Mode = Networked
			o.Threshold = 0.1
		}, ErrThresholdNetworked},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			tc.mut(&opts)
			if _, err := NewJob(tc.data, opts); !errors.Is(err, tc.want) {
				t.Fatalf("NewJob error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestNewJobValidationCentralized checks the centralized modes skip the
// distributed-only requirements: no scheme, no epsilon needed.
func TestNewJobValidationCentralized(t *testing.T) {
	data, _ := GenerateCER(16, 4)
	seeds := SeedCentroids("cer", 2, 5)
	if _, err := NewJob(data, Options{InitCentroids: seeds}); err != nil {
		t.Fatalf("Centralized needs neither scheme nor epsilon: %v", err)
	}
	if _, err := NewJob(data, Options{
		Mode: CentralizedDP, InitCentroids: seeds, Budget: Greedy(math.Ln2),
		DMin: CERMin, DMax: CERMax,
	}); err != nil {
		t.Fatalf("CentralizedDP with explicit Budget needs no Epsilon: %v", err)
	}
}

// TestLegacyWrappersSurfaceSentinels pins that the deprecated entry
// points reject through the same typed sentinels as NewJob.
func TestLegacyWrappersSurfaceSentinels(t *testing.T) {
	data, _ := GenerateCER(8, 9)
	if _, err := Cluster(data, ClusterOptions{}); !errors.Is(err, ErrNoSeeds) {
		t.Errorf("Cluster without seeds: %v, want ErrNoSeeds", err)
	}
	if _, err := Run(data, nil, NetworkOptions{
		InitCentroids: SeedCentroids("cer", 2, 1), Epsilon: 1,
	}); !errors.Is(err, ErrNilScheme) {
		t.Errorf("Run without scheme: %v, want ErrNilScheme", err)
	}
}

// TestJobRunOnce pins that a Job is single-use.
func TestJobRunOnce(t *testing.T) {
	data, _ := GenerateCER(16, 4)
	job, err := NewJob(data, Options{InitCentroids: SeedCentroids("cer", 2, 5), MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); !errors.Is(err, ErrJobReused) {
		t.Fatalf("second Run: %v, want ErrJobReused", err)
	}
	if res, err := job.Wait(); err != nil || res == nil {
		t.Fatalf("Wait after Run: %v, %v", res, err)
	}
}

func sameCentroids(t *testing.T, got, want []Series) {
	t.Helper()
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("centroid count %d, want %d (non-zero)", len(got), len(want))
	}
	for c := range want {
		for j := range want[c] {
			if got[c][j] != want[c][j] {
				t.Fatalf("centroid %d[%d]: %v, want %v", c, j, got[c][j], want[c][j])
			}
		}
	}
}

// TestJobMatchesCluster pins Mode Centralized against the legacy
// Cluster entry point: bit-identical centroids and traces.
func TestJobMatchesCluster(t *testing.T) {
	data, _ := GenerateCER(2000, 1)
	seeds := SeedCentroids("cer", 6, 2)
	want, err := Cluster(data, ClusterOptions{InitCentroids: seeds, MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(data, Options{Mode: Centralized, InitCentroids: seeds, MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameCentroids(t, got.Centroids, want.Centroids)
	if len(got.Stats) != len(want.Stats) || got.Converged != want.Converged {
		t.Fatalf("stats/convergence diverged: %d/%v vs %d/%v",
			len(got.Stats), got.Converged, len(want.Stats), want.Converged)
	}
}

// TestJobMatchesClusterDP pins Mode CentralizedDP against the legacy
// ClusterDP entry point, per seed.
func TestJobMatchesClusterDP(t *testing.T) {
	data, _ := GenerateCER(2000, 1)
	seeds := SeedCentroids("cer", 6, 2)
	for _, seed := range []uint64{3, 17} {
		want, err := ClusterDP(data, DPOptions{
			InitCentroids: seeds, Budget: Greedy(math.Ln2),
			DMin: CERMin, DMax: CERMax, Smooth: true,
			MaxIterations: 4, Churn: 0.1, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewJob(data, Options{
			Mode: CentralizedDP, InitCentroids: seeds, Epsilon: math.Ln2,
			DMin: CERMin, DMax: CERMax, Smooth: true,
			MaxIterations: 4, Churn: 0.1, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := job.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sameCentroids(t, got.Centroids, want.Centroids)
		if got.BestIter != want.BestIter || got.TotalEpsilon != want.TotalEpsilon {
			t.Fatalf("seed %d: best/epsilon diverged: %d/%v vs %d/%v",
				seed, got.BestIter, got.TotalEpsilon, want.BestIter, want.TotalEpsilon)
		}
		if len(got.History) != len(want.History) {
			t.Fatalf("seed %d: history %d vs %d", seed, len(got.History), len(want.History))
		}
		for i := range want.History {
			sameCentroids(t, got.History[i], want.History[i])
		}
	}
}

// TestJobMatchesRun pins Mode Simulated against the legacy Run entry
// point: bit-identical centroids and gossip accounting per seed.
func TestJobMatchesRun(t *testing.T) {
	data, opts := simSetup(t)
	want, err := Run(data, opts.Scheme, NetworkOptions{
		K: opts.K, InitCentroids: opts.InitCentroids,
		DMin: opts.DMin, DMax: opts.DMax, Epsilon: opts.Epsilon,
		MaxIterations: opts.MaxIterations, Exchanges: opts.Exchanges, Seed: opts.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameCentroids(t, got.Centroids, want.Centroids)
	if got.AvgMessages != want.AvgMessages || got.AvgBytes != want.AvgBytes {
		t.Fatalf("accounting diverged: %v/%v vs %v/%v",
			got.AvgMessages, got.AvgBytes, want.AvgMessages, want.AvgBytes)
	}
	if got.TotalEpsilon != want.TotalEpsilon {
		t.Fatalf("epsilon diverged: %v vs %v", got.TotalEpsilon, want.TotalEpsilon)
	}
}

// TestJobMatchesRunNetworked pins Mode Networked against the legacy
// RunNetworked entry point: the same seed through two real-TCP
// populations releases bit-identical centroids.
func TestJobMatchesRunNetworked(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	data, _ := GenerateCER(10, 11)
	seeds := SeedCentroids("cer", 2, 12)
	scheme, err := NewTestScheme(128, 4, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	legacy := NetworkOptions{
		K: 2, InitCentroids: seeds,
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 1, Exchanges: 10,
		FracBits: 24, Seed: 33, Workers: 2,
	}
	want, err := RunNetworked(data, scheme, NetworkedOptions{NetworkOptions: legacy})
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(data, Options{
		Mode: Networked, Scheme: scheme,
		K: 2, InitCentroids: seeds,
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 1, Exchanges: 10,
		FracBits: 24, Seed: 33, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameCentroids(t, got.Centroids, want.Centroids)
	if got.AvgMessages != want.AvgMessages || got.AvgBytes != want.AvgBytes {
		t.Fatalf("accounting diverged: %v/%v vs %v/%v",
			got.AvgMessages, got.AvgBytes, want.AvgMessages, want.AvgBytes)
	}
}

// collect drains a job's event stream from a background run.
func collect(t *testing.T, job *Job, ctx context.Context) ([]Event, *Result, error) {
	t.Helper()
	events := job.Events()
	go job.Run(ctx) //nolint:errcheck // outcome read through Wait
	var evs []Event
	for ev := range events {
		evs = append(evs, ev)
	}
	res, err := job.Wait()
	return evs, res, err
}

// TestJobEventsSimulated pins the acceptance shape of the stream: one
// IterationReleased per protocol iteration, phase progress for all
// three gossip phases, and a terminal Done.
func TestJobEventsSimulated(t *testing.T) {
	data, opts := simSetup(t)
	opts.TraceQuality = true
	job, err := NewJob(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	evs, res, err := collect(t, job, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var released []IterationReleased
	phases := map[Phase]bool{}
	for i, ev := range evs {
		switch e := ev.(type) {
		case IterationReleased:
			released = append(released, e)
		case PhaseProgress:
			// Of is 0 for adaptive phases (the sim's default diss/dec).
			if e.Cycle < 1 || (e.Of > 0 && e.Cycle > e.Of) {
				t.Fatalf("phase progress out of range: %+v", e)
			}
			if e.Phase == PhaseSum && e.Of == 0 {
				t.Fatalf("sum phase has a fixed budget but reported adaptive: %+v", e)
			}
			phases[e.Phase] = true
		case Done:
			if i != len(evs)-1 {
				t.Fatalf("Done at %d of %d: not terminal", i, len(evs))
			}
			if e.Err != nil {
				t.Fatalf("Done.Err = %v on a clean run", e.Err)
			}
		}
	}
	if len(released) != len(res.Traces) || len(released) != opts.MaxIterations {
		t.Fatalf("%d IterationReleased events for %d iterations (max %d)",
			len(released), len(res.Traces), opts.MaxIterations)
	}
	var cum float64
	for i, rel := range released {
		if rel.Iteration != i+1 {
			t.Fatalf("release %d has iteration %d", i, rel.Iteration)
		}
		if len(rel.Centroids) == 0 {
			t.Fatalf("iteration %d released no centroids", rel.Iteration)
		}
		if rel.EpsilonSpent <= 0 {
			t.Fatalf("iteration %d spent no budget", rel.Iteration)
		}
		cum += rel.EpsilonSpent
		if rel.EpsilonTotal != cum {
			t.Fatalf("iteration %d: EpsilonTotal = %v, want running sum %v",
				rel.Iteration, rel.EpsilonTotal, cum)
		}
		if rel.Inertia == 0 {
			t.Fatalf("iteration %d has no inertia under TraceQuality", rel.Iteration)
		}
	}
	if last := released[len(released)-1]; last.EpsilonTotal != res.TotalEpsilon {
		t.Fatalf("final EpsilonTotal %v != Result.TotalEpsilon %v", last.EpsilonTotal, res.TotalEpsilon)
	}
	// The last release is the final result, by construction.
	sameCentroids(t, released[len(released)-1].Centroids, res.Centroids)
	for _, p := range []Phase{PhaseSum, PhaseDissemination, PhaseDecryption} {
		if !phases[p] {
			t.Errorf("no PhaseProgress for the %s phase", p)
		}
	}
	if _, ok := evs[0].(Done); ok {
		t.Fatal("stream was only Done")
	}
}

// TestJobEventsChurn pins that churn resamplings surface as events.
func TestJobEventsChurn(t *testing.T) {
	data, opts := simSetup(t)
	opts.Churn = 0.2
	opts.MaxIterations = 1
	job, err := NewJob(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	evs, _, err := collect(t, job, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	churns := 0
	for _, ev := range evs {
		if c, ok := ev.(Churn); ok {
			if c.Disconnected < 0 || c.Disconnected >= data.Len() {
				t.Fatalf("implausible churn: %+v", c)
			}
			churns++
		}
	}
	if churns == 0 {
		t.Fatal("no Churn events at 20% churn")
	}
}

// TestJobEventsCentralizedDP pins the stream in the centralized DP
// mode: one release per iteration, no phase progress.
func TestJobEventsCentralizedDP(t *testing.T) {
	data, _ := GenerateCER(500, 1)
	job, err := NewJob(data, Options{
		Mode: CentralizedDP, InitCentroids: SeedCentroids("cer", 4, 2),
		Epsilon: math.Ln2, DMin: CERMin, DMax: CERMax,
		MaxIterations: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, res, err := collect(t, job, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel, prog := 0, 0
	for _, ev := range evs {
		switch ev.(type) {
		case IterationReleased:
			rel++
		case PhaseProgress:
			prog++
		}
	}
	if rel != len(res.History) {
		t.Fatalf("%d releases for %d history entries", rel, len(res.History))
	}
	if prog != 0 {
		t.Fatalf("centralized mode emitted %d PhaseProgress events", prog)
	}
}

// TestJobEventsNetworked pins the acceptance criterion over real TCP:
// one IterationReleased per protocol iteration (participant 0's view).
func TestJobEventsNetworked(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	data, _ := GenerateCER(8, 5)
	scheme, err := NewTestScheme(128, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(data, Options{
		Mode: Networked, Scheme: scheme,
		K: 2, InitCentroids: SeedCentroids("cer", 2, 6),
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 2, Exchanges: 8,
		FracBits: 24, Seed: 9, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, res, err := collect(t, job, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var rel, prog int
	for _, ev := range evs {
		switch ev.(type) {
		case IterationReleased:
			rel++
		case PhaseProgress:
			prog++
		}
	}
	if rel != 2 || len(res.Traces) != 2 {
		t.Fatalf("%d IterationReleased events, %d traces, want 2/2", rel, len(res.Traces))
	}
	if prog == 0 {
		t.Fatal("networked run emitted no PhaseProgress")
	}
	if _, ok := evs[len(evs)-1].(Done); !ok {
		t.Fatalf("stream did not end with Done: %T", evs[len(evs)-1])
	}
}

// TestJobEventsAfterRun pins late subscription: a stream opened after
// the run yields exactly the terminal Done.
func TestJobEventsAfterRun(t *testing.T) {
	data, _ := GenerateCER(16, 4)
	job, err := NewJob(data, Options{InitCentroids: SeedCentroids("cer", 2, 5), MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	for ev := range job.Events() {
		evs = append(evs, ev)
	}
	if len(evs) != 1 {
		t.Fatalf("late subscription saw %d events, want 1", len(evs))
	}
	if d, ok := evs[0].(Done); !ok || d.Err != nil {
		t.Fatalf("late subscription saw %+v, want clean Done", evs[0])
	}
}

// TestJobEventsEarlyBreak pins that breaking out of the stream
// unsubscribes: the run completes without blocking on the abandoned
// subscriber.
func TestJobEventsEarlyBreak(t *testing.T) {
	data, opts := simSetup(t)
	job, err := NewJob(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	events := job.Events()
	go job.Run(context.Background()) //nolint:errcheck // outcome read through Wait
	for range events {
		break // drop the subscription after the first event
	}
	if res, err := job.Wait(); err != nil || len(res.Centroids) == 0 {
		t.Fatalf("run did not complete after early break: %v, %v", res, err)
	}
	// Ranging the dropped iterator again must end immediately — the
	// subscription is gone, so blocking would deadlock forever.
	reranged := 0
	for range events {
		reranged++
		if reranged > 100 {
			t.Fatal("re-ranged iterator did not terminate")
		}
	}
}
