module chiaroscuro

go 1.23
