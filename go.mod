module chiaroscuro

go 1.22
