package attack

import (
	"math"
	"sort"

	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// LinkageConfig parametrizes the profile-matching attack. Seed drives
// the tie-breaks and the empirical random baseline; TopK lists the
// identification ranks to score (defaults to {1, 5}).
type LinkageConfig struct {
	TopK []int
	Seed uint64
}

// RateAtK is one top-k identification score with its in-suite
// random-guess baselines.
type RateAtK struct {
	K int
	// Rate is the fraction of users whose true profile (any
	// observation owned by them) ranks in the attack's top k.
	Rate float64
	// BaselineAnalytic is the exact probability a uniformly random
	// ranking puts one of the user's profiles in the top k.
	BaselineAnalytic float64
	// BaselineEmpirical re-runs the scorer with the signal replaced by
	// the seeded tie-break alone — the attack machinery under pure
	// guessing.
	BaselineEmpirical float64
}

// Linkage is the outcome of the linkage attack against one trace.
type Linkage struct {
	Users      int
	Candidates int
	Rates      []RateAtK
	// MeanTrueRank is the average 0-based rank of each user's
	// best-ranked true profile (lower = more identifiable;
	// (Candidates−1)/2 under pure guessing).
	MeanTrueRank float64
}

// Link mounts the profile-matching linkage attack of arXiv 1710.00197
// against tr. truth holds the participants' real series (used only to
// derive each user's observable cluster-adoption trajectory, never
// handed to the scorer); profiles/owners are the attacker's candidate
// set, e.g. from datasets.GenerateProfiles.
//
// Per release the observable of user u is which released centroid u
// adopts (nearest by Euclidean distance — what u's device acts on).
// The attacker predicts the same trajectory for every candidate
// profile and ranks candidates per user by: (1) trajectory agreement,
// descending — the temporal signature; (2) ε-weighted proximity of the
// candidate to the user's adopted centroid sequence, ascending; (3) a
// seeded random tie-break. Under a noise-drowned release the DP-driven
// signal is gone: whenever every user adopts the same garbage centroid
// (or nothing is released at all) both signals collapse to a
// user-independent ordering and the identification rate provably falls
// to the random baseline k/n — the property the ε→0 end of the
// regression suite pins. What can survive at tiny populations is the
// adoption side channel itself: a garbage release that still happens to
// partition the data lets the attacker identify a user's cell, bounding
// ID@1 near 1/|cell| ≈ K/n regardless of ε. That is leakage of the
// observability assumption, not of the release — and at the paper's
// multi-million-user scale K/n is indistinguishable from the 1/n
// baseline (PERF.md "Adversarial privacy" shows it surfacing at n=16).
func Link(tr *Trace, truth *timeseries.Dataset, profiles *timeseries.Dataset, owners []int, cfg LinkageConfig) *Linkage {
	users := truth.Len()
	cand := profiles.Len()
	topk := cfg.TopK
	if len(topk) == 0 {
		topk = []int{1, 5}
	}

	// Assignment trajectories against every release that carries
	// centroids: a[u][t] for targets, b[p][t] for candidates, plus the
	// per-candidate distance to every released centroid for the
	// proximity score.
	type step struct {
		centroids []timeseries.Series
		weight    float64
	}
	var steps []step
	var wTotal float64
	for _, rel := range tr.Releases {
		if len(rel.Centroids) == 0 {
			continue
		}
		steps = append(steps, step{rel.Centroids, rel.Epsilon})
		wTotal += rel.Epsilon
	}
	if wTotal == 0 {
		for i := range steps {
			steps[i].weight = 1
		}
	}

	assign := func(s timeseries.Series, cs []timeseries.Series) int {
		bi, bd := 0, math.Inf(1)
		for i, c := range cs {
			if d := s.Dist2(c); d < bd {
				bi, bd = i, d
			}
		}
		return bi
	}

	T := len(steps)
	aUser := make([][]int, users)
	for u := 0; u < users; u++ {
		aUser[u] = make([]int, T)
		for t, st := range steps {
			aUser[u][t] = assign(truth.Row(u), st.centroids)
		}
	}
	bCand := make([][]int, cand)
	dCand := make([][][]float64, cand) // dCand[p][t][j] = dist²(profile p, centroid j at step t)
	for p := 0; p < cand; p++ {
		bCand[p] = make([]int, T)
		dCand[p] = make([][]float64, T)
		row := profiles.Row(p)
		for t, st := range steps {
			ds := make([]float64, len(st.centroids))
			bi, bd := 0, math.Inf(1)
			for j, c := range st.centroids {
				ds[j] = row.Dist2(c)
				if ds[j] < bd {
					bi, bd = j, ds[j]
				}
			}
			bCand[p][t] = bi
			dCand[p][t] = ds
		}
	}

	// Seeded tie-break values, drawn in fixed (u, p) order.
	rng := randx.New(cfg.Seed, 0x71EB)
	tie := make([][]float64, users)
	for u := range tie {
		tie[u] = make([]float64, cand)
		for p := range tie[u] {
			tie[u][p] = rng.Float64()
		}
	}

	rank := func(u int, useSignal bool) []int {
		type scored struct {
			p     int
			agree int
			prox  float64
		}
		ss := make([]scored, cand)
		for p := 0; p < cand; p++ {
			s := scored{p: p}
			if useSignal {
				for t := 0; t < T; t++ {
					if bCand[p][t] == aUser[u][t] {
						s.agree++
					}
					s.prox += steps[t].weight * dCand[p][t][aUser[u][t]]
				}
			}
			ss[p] = s
		}
		sort.Slice(ss, func(i, k int) bool {
			if ss[i].agree != ss[k].agree {
				return ss[i].agree > ss[k].agree
			}
			if ss[i].prox != ss[k].prox {
				return ss[i].prox < ss[k].prox
			}
			return tie[u][ss[i].p] < tie[u][ss[k].p]
		})
		out := make([]int, cand)
		for i, s := range ss {
			out[i] = s.p
		}
		return out
	}

	trueRank := func(u int, order []int) int {
		for i, p := range order {
			if owners[p] == u {
				return i
			}
		}
		return cand
	}

	lk := &Linkage{Users: users, Candidates: cand}
	ranks := make([]int, users)
	baseRanks := make([]int, users)
	var rankSum float64
	for u := 0; u < users; u++ {
		ranks[u] = trueRank(u, rank(u, true))
		baseRanks[u] = trueRank(u, rank(u, false))
		rankSum += float64(ranks[u])
	}
	lk.MeanTrueRank = rankSum / float64(users)

	// Per-user owned-profile count for the analytic baseline (profiles
	// may carry several observations per user).
	perUser := make([]int, users)
	for _, o := range owners {
		if o >= 0 && o < users {
			perUser[o]++
		}
	}

	for _, k := range topk {
		if k < 1 || k > cand {
			continue
		}
		r := RateAtK{K: k}
		hits, baseHits := 0, 0
		var analytic float64
		for u := 0; u < users; u++ {
			if ranks[u] < k {
				hits++
			}
			if baseRanks[u] < k {
				baseHits++
			}
			// P(any of the user's r profiles lands in a uniformly
			// random top k of N) = 1 − Π_{i<k} (N−r−i)/(N−i).
			miss := 1.0
			for i := 0; i < k; i++ {
				miss *= float64(cand-perUser[u]-i) / float64(cand-i)
			}
			analytic += 1 - miss
		}
		r.Rate = float64(hits) / float64(users)
		r.BaselineEmpirical = float64(baseHits) / float64(users)
		r.BaselineAnalytic = analytic / float64(users)
		lk.Rates = append(lk.Rates, r)
	}
	return lk
}
