// Package attack is Chiaroscuro's adversarial privacy bench: it replays
// the observer-visible surface of a clustering run — the Events()
// release stream every participant (and any honest-but-curious peer)
// sees — and mounts concrete, seeded attacks against it, turning the DP
// budget claims into measured identification and reconstruction rates.
//
// # Threat model
//
// The adversary is honest-but-curious: it follows the protocol and
// records everything the protocol discloses by design. Per iteration
// that is the cleartext differentially-private centroid release
// (IterationReleased: centroids, per-release ε spent and the cumulative
// total), the phase/cycle progress, and the churn observations; the
// wire exposes nothing more to a passive peer — exchange payloads are
// ciphertexts, and the e2e tests pin that a networked run releases
// bit-identically to the simulator. The linkage attack additionally
// assumes the deployment's per-user cluster adoption is observable
// (each device acts on its assignment — the service a user queries
// learns which released centroid the user adopted), plus auxiliary
// side-channel profiles from internal/datasets.GenerateProfiles.
//
// # Attacks
//
// Reconstruct mounts the temporal-correlation reconstruction of
// arXiv 2511.07073 adapted to our release surface: cross-iteration
// centroid trajectories are matched, inverse-variance denoised using
// the published per-release ε, shrunk toward the no-information
// estimate when the trajectory's own variance says the noise dominates,
// and scored per series against ground truth.
//
// Link mounts the profile-matching attack of arXiv 1710.00197: each
// user's observable assignment trajectory across releases is matched
// against every candidate profile's predicted trajectory (agreement
// first, ε-weighted centroid proximity second, seeded tie-break last),
// scoring top-k identification rates against analytic and empirical
// random-guess baselines.
//
// Everything is deterministic per seed: two same-seed sweeps produce
// byte-identical ATTACK_*.json reports (the package is in
// chiaroscurolint's deterministic/seeded sets), so CI can pin the
// measured leakage and fail when a change regresses it.
package attack

import (
	"context"

	"chiaroscuro"
	"chiaroscuro/internal/timeseries"
)

// Release is one iteration's observer-visible disclosure, deep-copied
// out of the event stream.
type Release struct {
	Iteration    int
	Centroids    []timeseries.Series
	Epsilon      float64 // ε spent by this release
	EpsilonTotal float64 // cumulative ε through this release
}

// Trace is the full observer-visible surface of one run: the release
// stream plus the progress metadata a passive peer also sees. It is
// everything the attacks are allowed to read.
type Trace struct {
	Releases []Release
	// PhaseCycles counts the PhaseProgress events observed (gossip
	// cycles across all phases and iterations).
	PhaseCycles int
	// ChurnEvents and ChurnDisconnected aggregate the observed churn.
	ChurnEvents       int
	ChurnDisconnected int
}

// Final returns the last release's centroids (nil when the run released
// nothing — a fully noise-drowned run).
func (tr *Trace) Final() []timeseries.Series {
	if len(tr.Releases) == 0 {
		return nil
	}
	return tr.Releases[len(tr.Releases)-1].Centroids
}

// Capture runs the job while recording its observer-visible surface.
// The subscription is made before the run starts, so the trace is
// complete; centroids are deep-copied because the stream shares its
// slices with the run.
func Capture(ctx context.Context, job *chiaroscuro.Job) (*Trace, *chiaroscuro.Result, error) {
	events := job.Events()
	tr := &Trace{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch e := ev.(type) {
			case chiaroscuro.IterationReleased:
				rel := Release{
					Iteration:    e.Iteration,
					Epsilon:      e.EpsilonSpent,
					EpsilonTotal: e.EpsilonTotal,
				}
				for _, c := range e.Centroids {
					rel.Centroids = append(rel.Centroids, c.Clone())
				}
				tr.Releases = append(tr.Releases, rel)
			case chiaroscuro.PhaseProgress:
				tr.PhaseCycles++
			case chiaroscuro.Churn:
				tr.ChurnEvents++
				tr.ChurnDisconnected += e.Disconnected
			}
		}
	}()
	res, err := job.Run(ctx)
	<-done
	if err != nil {
		return nil, nil, err
	}
	return tr, res, nil
}
