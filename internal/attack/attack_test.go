package attack

import (
	"context"
	"encoding/json"
	"testing"

	"chiaroscuro"
)

// quickSweep is the shared small grid: the non-private reference, the
// paper's ε = ln 2, and two points up the leakage transition.
func quickSweep(t *testing.T, seed uint64) *Report {
	t.Helper()
	rep, err := Sweep(context.Background(), SweepConfig{
		Population:    48,
		K:             4,
		MaxIterations: 4,
		Modes:         []chiaroscuro.Mode{chiaroscuro.Centralized, chiaroscuro.Simulated},
		Epsilons:      []float64{0.6931471805599453, 1000, 1_000_000},
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func findRow(t *testing.T, rep *Report, mode string, eps float64) *Row {
	t.Helper()
	for i := range rep.Rows {
		r := &rep.Rows[i]
		if r.Mode == mode && r.Epsilon == eps {
			return r
		}
	}
	t.Fatalf("no row %s ε=%g in %d rows", mode, eps, len(rep.Rows))
	return nil
}

// TestSweepDeterministic pins the acceptance criterion directly: two
// same-seed sweeps must marshal to byte-identical reports.
func TestSweepDeterministic(t *testing.T) {
	a, err := json.Marshal(quickSweep(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(quickSweep(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("same-seed sweeps diverge:\n%s\n---\n%s", a, b)
	}
}

// TestMonotoneTrend asserts the sweep's shape: attack rates rise with
// ε, the ε → 0 end is statistically indistinguishable from the
// in-suite random baselines, and the non-private reference sits well
// above them. The pinned DefaultThresholds must also hold, since CI
// enforces them on this same configuration.
func TestMonotoneTrend(t *testing.T) {
	rep := quickSweep(t, 1)

	paper := findRow(t, rep, "simulated", 0.6931471805599453)
	mid := findRow(t, rep, "simulated", 1000)
	open := findRow(t, rep, "simulated", 1_000_000)
	ref := findRow(t, rep, "centralized", 0)

	// ε → 0: both attacks at their baselines. The linkage bound is the
	// analytic baseline plus two binomial standard deviations.
	id1, base1 := paper.IDRate(1)
	if slack := 2 * 0.0208; id1 > base1+slack {
		t.Errorf("paper-ε ID@1 = %.3f, want ≤ baseline %.3f + %.3f", id1, base1, slack)
	}
	if paper.ReconAdvantage > 0.05 {
		t.Errorf("paper-ε reconstruction advantage = %.3f, want ≈ 0", paper.ReconAdvantage)
	}

	// Monotone: strictly more leakage at the open end than at the
	// paper's budget, and no regression from mid to open.
	openID1, _ := open.IDRate(1)
	midID1, _ := mid.IDRate(1)
	if !(open.ReconAdvantage > paper.ReconAdvantage+0.3) {
		t.Errorf("reconstruction advantage not rising: paper %.3f, open %.3f",
			paper.ReconAdvantage, open.ReconAdvantage)
	}
	if !(mid.ReconAdvantage > paper.ReconAdvantage) || !(open.ReconAdvantage >= mid.ReconAdvantage-0.05) {
		t.Errorf("reconstruction advantage not monotone: %.3f, %.3f, %.3f",
			paper.ReconAdvantage, mid.ReconAdvantage, open.ReconAdvantage)
	}
	if !(openID1 > id1) || !(midID1 > id1) {
		t.Errorf("ID@1 not rising with ε: paper %.3f, mid %.3f, open %.3f", id1, midID1, openID1)
	}
	if !(open.MeanTrueRank < paper.MeanTrueRank/2) {
		t.Errorf("true rank not falling with ε: paper %.1f, open %.1f",
			paper.MeanTrueRank, open.MeanTrueRank)
	}

	// Reference: the attacks must have real power against the
	// non-private release, or the ε-side assertions are vacuous.
	refID1, refBase1 := ref.IDRate(1)
	if !(refID1 >= 3*refBase1) {
		t.Errorf("reference ID@1 = %.3f, want ≥ 3× baseline %.3f", refID1, refBase1)
	}
	if !(ref.ReconAdvantage > 0.5) {
		t.Errorf("reference reconstruction advantage = %.3f, want > 0.5", ref.ReconAdvantage)
	}

	if v := DefaultThresholds().Check(rep); len(v) != 0 {
		t.Errorf("pinned thresholds violated: %v", v)
	}
}

// TestNetworkedRow runs one small real-TCP cell end to end: the bench
// must capture a networked trace and the paper-ε row must stay at
// baseline there too (the wire exposes nothing beyond the simulator).
func TestNetworkedRow(t *testing.T) {
	if testing.Short() {
		t.Skip("networked e2e")
	}
	rep, err := Sweep(context.Background(), SweepConfig{
		Population:    16,
		K:             3,
		MaxIterations: 2,
		Modes:         []chiaroscuro.Mode{chiaroscuro.Networked},
		Epsilons:      []float64{0.6931471805599453, 1_000_000},
		Exchanges:     12,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	paper := findRow(t, rep, "networked", 0.6931471805599453)
	open := findRow(t, rep, "networked", 1_000_000)
	if paper.ReconAdvantage > 0.05 {
		t.Errorf("networked paper-ε advantage = %.3f, want ≈ 0", paper.ReconAdvantage)
	}
	if !(open.ReconAdvantage > paper.ReconAdvantage+0.3) {
		t.Errorf("networked advantage not rising: %.3f → %.3f",
			paper.ReconAdvantage, open.ReconAdvantage)
	}
	if open.Iterations == 0 {
		t.Error("networked trace captured no releases")
	}
}

// TestThresholdsCheckCatches feeds Check hand-built regressing rows and
// asserts every gate direction fires.
func TestThresholdsCheckCatches(t *testing.T) {
	leaky := &Report{Rows: []Row{{
		Mode: "simulated", Private: true, Epsilon: 0.5,
		ReconAdvantage: 0.4,
		IDRates:        []RateAtK{{K: 1, Rate: 0.5, BaselineAnalytic: 0.02}},
	}}}
	if v := DefaultThresholds().Check(leaky); len(v) != 2 {
		t.Errorf("leaky paper-ε row: got %d violations, want 2: %v", len(v), v)
	}

	vacuous := &Report{Rows: []Row{{
		Mode: "centralized", Private: false,
		ReconAdvantage: 0.01,
		IDRates:        []RateAtK{{K: 1, Rate: 0.02, BaselineAnalytic: 0.02}},
	}}}
	if v := DefaultThresholds().Check(vacuous); len(v) != 2 {
		t.Errorf("powerless reference row: got %d violations, want 2: %v", len(v), v)
	}

	fine := &Report{Rows: []Row{
		{Mode: "simulated", Private: true, Epsilon: 0.693,
			ReconAdvantage: 0.0,
			IDRates:        []RateAtK{{K: 1, Rate: 0.02, BaselineAnalytic: 0.02}}},
		{Mode: "simulated", Private: true, Epsilon: 1e6,
			ReconAdvantage: 0.9, // high ε may leak; not gated
			IDRates:        []RateAtK{{K: 1, Rate: 0.3, BaselineAnalytic: 0.02}}},
		{Mode: "centralized", Private: false,
			ReconAdvantage: 0.9,
			IDRates:        []RateAtK{{K: 1, Rate: 0.2, BaselineAnalytic: 0.02}}},
	}}
	if v := DefaultThresholds().Check(fine); len(v) != 0 {
		t.Errorf("healthy report flagged: %v", v)
	}
}

// TestCaptureSurface checks the trace records the progress metadata a
// passive peer also observes, and that the ε accounting in the stream
// is a running sum.
func TestCaptureSurface(t *testing.T) {
	data, _ := chiaroscuro.GenerateCER(16, 3)
	scheme, err := chiaroscuro.NewSimulationScheme(256, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
		Mode:          chiaroscuro.Simulated,
		Scheme:        scheme,
		InitCentroids: chiaroscuro.SeedCentroids("cer", 3, 4),
		K:             3,
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Epsilon:       1e5,
		MaxIterations: 3,
		Exchanges:     12,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, res, err := Capture(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(tr.Releases) == 0 {
		t.Fatal("no releases captured")
	}
	if tr.PhaseCycles == 0 {
		t.Error("no phase progress observed")
	}
	var cum float64
	for _, rel := range tr.Releases {
		cum += rel.Epsilon
		if rel.EpsilonTotal != cum {
			t.Fatalf("iteration %d: EpsilonTotal = %v, want running sum %v",
				rel.Iteration, rel.EpsilonTotal, cum)
		}
	}
	if last := tr.Releases[len(tr.Releases)-1]; last.EpsilonTotal != res.TotalEpsilon {
		t.Errorf("final EpsilonTotal %v != Result.TotalEpsilon %v",
			last.EpsilonTotal, res.TotalEpsilon)
	}
}
