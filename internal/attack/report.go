package attack

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteReport writes rep to dir as ATTACK_<name>.json. The encoding is
// deterministic — struct-ordered fields, no maps, no timestamps — so
// two same-seed sweeps write byte-identical files.
func WriteReport(dir string, rep *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	buf = append(buf, '\n')
	name := strings.NewReplacer("/", "_", string(filepath.Separator), "_").Replace(rep.Name)
	path := filepath.Join(dir, "ATTACK_"+name+".json")
	return path, os.WriteFile(path, buf, 0o644)
}

// WriteTable renders the report as an aligned human-readable table.
func WriteTable(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "adversarial privacy bench — %s (n=%d, k=%d, seed=%d)\n",
		rep.Dataset, rep.Population, rep.K, rep.Seed)
	fmt.Fprintf(w, "%-14s %10s %5s %5s %9s %9s %8s %8s %8s %9s\n",
		"mode", "ε", "pack", "rel", "recon", "blind", "adv", "ID@1", "base@1", "rank")
	for i := range rep.Rows {
		r := &rep.Rows[i]
		eps := "—"
		if r.Private {
			eps = fmt.Sprintf("%.4g", r.Epsilon)
		}
		id1, base1 := r.IDRate(1)
		fmt.Fprintf(w, "%-14s %10s %5d %5d %9.3f %9.3f %8.3f %8.3f %8.3f %9.1f\n",
			r.Mode, eps, r.PackSlots, r.Iterations,
			r.ReconErr, r.ReconBaselineBlind, r.ReconAdvantage,
			id1, base1, r.MeanTrueRank)
	}
}

// Thresholds pin the measured leakage for the CI privacy-regression
// gate. Two directions are checked: paper-regime rows (private, ε at or
// below PaperEpsilon) must stay statistically indistinguishable from
// the random-guess baselines, and the non-private reference rows must
// stay clearly above them — otherwise the attacks have silently broken
// and the ε-side check means nothing.
type Thresholds struct {
	// PaperEpsilon bounds the rows held to the privacy side of the
	// gate (default ln 2, the paper's operating budget).
	PaperEpsilon float64
	// ID1Slack is the allowed excess of the paper-regime top-1
	// identification rate over its analytic baseline (default 0.09 —
	// about two binomial standard deviations at bench populations).
	ID1Slack float64
	// ReconSlack is the allowed paper-regime reconstruction advantage
	// over the blind baseline (default 0.05).
	ReconSlack float64
	// RefID1Factor is the minimum ratio of the reference rows' top-1
	// identification rate to its analytic baseline (default 2).
	RefID1Factor float64
	// RefReconAdv is the minimum reference-row reconstruction
	// advantage (default 0.15).
	RefReconAdv float64
}

// DefaultThresholds returns the pinned CI gate.
func DefaultThresholds() Thresholds {
	return Thresholds{
		PaperEpsilon: 0.6931471805599453,
		ID1Slack:     0.09,
		ReconSlack:   0.05,
		RefID1Factor: 2,
		RefReconAdv:  0.15,
	}
}

func (t Thresholds) normalize() Thresholds {
	d := DefaultThresholds()
	if t.PaperEpsilon == 0 {
		t.PaperEpsilon = d.PaperEpsilon
	}
	if t.ID1Slack == 0 {
		t.ID1Slack = d.ID1Slack
	}
	if t.ReconSlack == 0 {
		t.ReconSlack = d.ReconSlack
	}
	if t.RefID1Factor == 0 {
		t.RefID1Factor = d.RefID1Factor
	}
	if t.RefReconAdv == 0 {
		t.RefReconAdv = d.RefReconAdv
	}
	return t
}

// Check returns one violation string per row that breaks the gate
// (empty = pass). Zero-valued fields take their defaults.
func (t Thresholds) Check(rep *Report) []string {
	t = t.normalize()
	var v []string
	for i := range rep.Rows {
		r := &rep.Rows[i]
		tag := fmt.Sprintf("%s ε=%g pack=%d", r.Mode, r.Epsilon, r.PackSlots)
		id1, base1 := r.IDRate(1)
		switch {
		case r.Private && r.Epsilon <= t.PaperEpsilon:
			if id1 > base1+t.ID1Slack {
				v = append(v, fmt.Sprintf("%s: ID@1 %.3f exceeds baseline %.3f + slack %.3f — linkage leakage at the paper's budget",
					tag, id1, base1, t.ID1Slack))
			}
			if r.ReconAdvantage > t.ReconSlack {
				v = append(v, fmt.Sprintf("%s: reconstruction advantage %.3f exceeds slack %.3f — release leaks beyond public knowledge at the paper's budget",
					tag, r.ReconAdvantage, t.ReconSlack))
			}
		case !r.Private:
			if id1 < t.RefID1Factor*base1 {
				v = append(v, fmt.Sprintf("%s: reference ID@1 %.3f below %.1f× baseline %.3f — linkage attack lost its power, the gate is vacuous",
					tag, id1, t.RefID1Factor, base1))
			}
			if r.ReconAdvantage < t.RefReconAdv {
				v = append(v, fmt.Sprintf("%s: reference reconstruction advantage %.3f below %.3f — reconstruction attack lost its power, the gate is vacuous",
					tag, r.ReconAdvantage, t.RefReconAdv))
			}
		}
	}
	return v
}
