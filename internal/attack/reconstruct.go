package attack

import (
	"math"

	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// ReconstructionConfig is the attacker's public knowledge for the
// temporal-correlation reconstruction: the measure range every
// participant clamps to (it calibrates the sensitivity, so it is public
// by construction), the population size (a passive peer reads it off
// the address book), and the seed driving the uniform-random baseline.
type ReconstructionConfig struct {
	DMin, DMax float64
	Population int
	Seed       uint64
}

// Reconstruction is the outcome of the temporal-correlation
// reconstruction attack against one trace.
type Reconstruction struct {
	// Estimates are the attacker's denoised per-cluster profile
	// estimates (one per centroid trajectory), clamped to the public
	// range.
	Estimates []timeseries.Series
	// PerSeries is the oracle-matched reconstruction error per target
	// series: the RMSE (per measure) of the estimate closest to it —
	// the standard best-case reconstruction score.
	PerSeries []float64
	// MeanErr averages PerSeries.
	MeanErr float64
	// BaselineBlind is the error of the best data-independent guess
	// (the range midpoint) — the no-information Bayes estimate an
	// attacker falls back to when the release carries nothing.
	BaselineBlind float64
	// BaselineUniform is the error of seeded uniform-random guessing
	// with the same min-over-estimates structure as the attack.
	BaselineUniform float64
	// Advantage is 1 − MeanErr/BaselineBlind: 0 means the release
	// taught the attacker nothing beyond public knowledge, 1 means
	// perfect reconstruction. Negative values mean the attacker would
	// have done better ignoring the release.
	Advantage float64
}

// Reconstruct mounts the temporal-correlation reconstruction attack of
// arXiv 2511.07073 against tr, scoring against the ground-truth series
// of truth (which the attacker never reads — it only scores).
//
// The attack exploits exactly the temporal structure the release
// stream leaks: the same underlying cluster is re-released every
// iteration under fresh noise, so (1) centroid trajectories are built
// by nearest-neighbor matching backwards from the final release,
// (2) each trajectory is averaged with inverse-variance weights from
// the published per-release ε (averaging T noisy views of one profile
// divides the noise variance by T), and (3) the averaged estimate is
// shrunk toward the public-range midpoint by the trajectory's own
// signal-to-noise ratio — a wildly swinging trajectory is noise, and a
// rational attacker discards it rather than reporting garbage. The
// shrinkage uses the larger of the empirical trajectory variance and
// the analytic Laplace floor implied by the published ε, population
// and sensitivity, so a single-release trace still shrinks correctly.
func Reconstruct(tr *Trace, truth *timeseries.Dataset, cfg ReconstructionConfig) *Reconstruction {
	dim := truth.Dim()
	mid := (cfg.DMin + cfg.DMax) / 2
	width := cfg.DMax - cfg.DMin

	rec := &Reconstruction{}
	for _, est := range denoiseTrajectories(tr, dim, cfg, mid, width) {
		rec.Estimates = append(rec.Estimates, est)
	}
	if len(rec.Estimates) == 0 {
		// Nothing released (or nothing survived the aberrant filter):
		// the attacker's only estimate is the blind one.
		blind := make(timeseries.Series, dim)
		for j := range blind {
			blind[j] = mid
		}
		rec.Estimates = append(rec.Estimates, blind)
	}

	// Score: oracle-matched best estimate per target series.
	var sum float64
	rec.PerSeries = make([]float64, truth.Len())
	for i := 0; i < truth.Len(); i++ {
		row := truth.Row(i)
		best := math.Inf(1)
		for _, est := range rec.Estimates {
			if e := rmse(est, row); e < best {
				best = e
			}
		}
		rec.PerSeries[i] = best
		sum += best
	}
	rec.MeanErr = sum / float64(truth.Len())

	// Baselines, computed in-suite. Blind: the midpoint guess.
	var blindSum float64
	for i := 0; i < truth.Len(); i++ {
		var d2 float64
		for _, v := range truth.Row(i) {
			d := v - mid
			d2 += d * d
		}
		blindSum += math.Sqrt(d2 / float64(dim))
	}
	rec.BaselineBlind = blindSum / float64(truth.Len())

	// Uniform: seeded random guessing with the attack's min-over-K
	// structure, averaged over a few repetitions.
	const reps = 8
	rng := randx.New(cfg.Seed, 0xBA5E)
	var uniSum float64
	guesses := make([]timeseries.Series, len(rec.Estimates))
	for r := 0; r < reps; r++ {
		for g := range guesses {
			s := make(timeseries.Series, dim)
			for j := range s {
				s[j] = rng.Uniform(cfg.DMin, cfg.DMax)
			}
			guesses[g] = s
		}
		for i := 0; i < truth.Len(); i++ {
			row := truth.Row(i)
			best := math.Inf(1)
			for _, g := range guesses {
				if e := rmse(g, row); e < best {
					best = e
				}
			}
			uniSum += best
		}
	}
	rec.BaselineUniform = uniSum / float64(reps*truth.Len())

	if rec.BaselineBlind > 0 {
		rec.Advantage = 1 - rec.MeanErr/rec.BaselineBlind
	}
	return rec
}

// denoiseTrajectories builds centroid trajectories backwards from the
// final release and returns one shrunk, clamped estimate per final
// centroid.
func denoiseTrajectories(tr *Trace, dim int, cfg ReconstructionConfig, mid, width float64) []timeseries.Series {
	final := tr.Final()
	if len(final) == 0 {
		return nil
	}
	T := len(tr.Releases)

	// ε weights: inverse-variance shape (noise std ∝ 1/ε). All-zero ε
	// (the non-private reference) degenerates to uniform weights.
	weights := make([]float64, T)
	var wTotal float64
	for t, rel := range tr.Releases {
		weights[t] = rel.Epsilon * rel.Epsilon
		wTotal += weights[t]
	}
	if wTotal == 0 {
		for t := range weights {
			weights[t] = 1
		}
	}

	// Analytic per-release noise floor on a released mean coordinate:
	// Laplace(Δ/(ε/2)) on the sum, divided by the expected cluster
	// cardinality. Used as a lower bound on the empirical trajectory
	// variance so sparse traces still shrink.
	floor := func() float64 {
		if cfg.Population <= 0 || len(final) == 0 {
			return 0
		}
		card := float64(cfg.Population) / float64(len(final))
		var fsum, fw float64
		for t, rel := range tr.Releases {
			if rel.Epsilon <= 0 {
				continue
			}
			lambda := dp.LaplaceScale(dp.SumSensitivity(dim, cfg.DMin, cfg.DMax), rel.Epsilon/2)
			fsum += weights[t] * 2 * lambda * lambda / (card * card)
			fw += weights[t]
		}
		if fw == 0 {
			return 0
		}
		return fsum / fw
	}()

	out := make([]timeseries.Series, 0, len(final))
	path := make([]timeseries.Series, T)
	for _, anchor := range final {
		// Walk the trajectory backwards, matching each step to the
		// nearest centroid of the previous release (ties: lowest
		// index, so the walk is deterministic).
		cur := anchor
		path[T-1] = cur
		for t := T - 2; t >= 0; t-- {
			prev := tr.Releases[t].Centroids
			if len(prev) == 0 {
				path[t] = nil
				continue
			}
			bi, bd := 0, math.Inf(1)
			for i, c := range prev {
				if d := cur.Dist2(c); d < bd {
					bi, bd = i, d
				}
			}
			cur = prev[bi]
			path[t] = cur
		}

		// ε²-weighted mean and variance across the trajectory.
		mean := make(timeseries.Series, dim)
		var wsum float64
		for t, c := range path {
			if c == nil {
				continue
			}
			w := weights[t]
			wsum += w
			for k, v := range c {
				mean[k] += w * v
			}
		}
		if wsum == 0 {
			continue
		}
		mean.Scale(1 / wsum)
		var s2 float64
		for t, c := range path {
			if c == nil {
				continue
			}
			s2 += weights[t] * c.Dist2(mean) / float64(dim)
		}
		s2 /= wsum
		if s2 < floor {
			s2 = floor
		}

		// James–Stein-style shrinkage toward the no-information
		// estimate: fully trust trajectories whose spread is small
		// against the public range, fully discard ones the noise
		// scale dwarfs.
		alpha := 1.0
		if width > 0 {
			alpha = width * width / (width*width + s2)
		}
		est := make(timeseries.Series, dim)
		for k, v := range mean {
			est[k] = mid + alpha*(v-mid)
		}
		est.Clamp(cfg.DMin, cfg.DMax)
		out = append(out, est)
	}
	return out
}

// rmse is the per-measure root-mean-squared error between two series.
func rmse(a, b timeseries.Series) float64 {
	return math.Sqrt(a.Dist2(b) / float64(len(a)))
}
