package attack

import (
	"context"
	"fmt"
	"time"

	"chiaroscuro"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// SweepConfig drives one adversarial sweep: both attacks mounted
// against every (mode, ε, PackSlots) cell. Zero values take bench
// defaults sized for CI.
type SweepConfig struct {
	// Dataset is the generator family: "cer" or "numed".
	Dataset string
	// Population is the number of participants/series (default 48).
	Population int
	// K is the cluster count (default 4).
	K int
	// MaxIterations bounds each run (default 4).
	MaxIterations int
	// Modes lists the backends to sweep (default Simulated).
	Modes []chiaroscuro.Mode
	// Epsilons is the privacy-budget grid for the private modes. The
	// paper's ε = ln 2 belongs on it (default {0.693…, 100, 10_000,
	// 1_000_000} — at bench populations the leakage transition sits
	// orders of magnitude above the paper's multi-million-participant
	// operating point, so the grid spans it).
	Epsilons []float64
	// PackSlots values swept in the distributed modes (default {0}).
	// Packing changes the release granularity, which is exactly why
	// the bench sweeps it; centralized modes ignore it.
	PackSlots []int
	// Exchanges fixes the sum-phase gossip budget of the distributed
	// modes (default 20; 0 would mean Theorem 3's population-derived
	// value, too slow for a bench grid).
	Exchanges int
	// Seed makes the whole sweep replayable: dataset, profiles,
	// protocol runs, baselines and tie-breaks all derive from it.
	Seed uint64
	// ProfileReps and ProfileNoise shape the attacker's candidate set
	// (defaults 1 observation per user, σ = 2 measure units).
	ProfileReps  int
	ProfileNoise float64
	// TopK lists the identification ranks scored (default {1, 5}).
	TopK []int
	// RealCrypto runs the distributed modes on the deterministic
	// Damgård–Jurik test scheme instead of the structure-preserving
	// simulation scheme.
	RealCrypto bool
	// Workers bounds the worker pool (0 = one per CPU). Results are
	// seed-deterministic for any value.
	Workers int
	// Timeout bounds each networked exchange (default 30s).
	Timeout time.Duration
}

func (c *SweepConfig) normalize() {
	if c.Dataset == "" {
		c.Dataset = "cer"
	}
	if c.Population == 0 {
		c.Population = 48
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 4
	}
	if len(c.Modes) == 0 {
		c.Modes = []chiaroscuro.Mode{chiaroscuro.Simulated}
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{0.6931471805599453, 100, 10_000, 1_000_000}
	}
	if len(c.PackSlots) == 0 {
		c.PackSlots = []int{0}
	}
	if c.Exchanges == 0 {
		c.Exchanges = 20
	}
	if c.ProfileReps == 0 {
		c.ProfileReps = 1
	}
	if c.ProfileNoise == 0 {
		c.ProfileNoise = 2
	}
	if len(c.TopK) == 0 {
		c.TopK = []int{1, 5}
	}
}

// Row is one sweep cell: both attacks' scores for one
// (mode, ε, PackSlots) run. Private is false on the plain-k-means
// reference rows, whose Epsilon is recorded as 0.
type Row struct {
	Mode      string  `json:"mode"`
	Private   bool    `json:"private"`
	Epsilon   float64 `json:"epsilon"`
	PackSlots int     `json:"pack_slots"`

	Iterations int     `json:"iterations"` // releases observed
	EpsSpent   float64 `json:"eps_spent"`  // cumulative ε the trace disclosed

	ReconErr             float64 `json:"recon_rmse"`
	ReconBaselineBlind   float64 `json:"recon_baseline_blind"`
	ReconBaselineUniform float64 `json:"recon_baseline_uniform"`
	ReconAdvantage       float64 `json:"recon_advantage"`

	IDRates []RateAtK `json:"id_rates"`
	// MeanTrueRank is the linkage attack's average true-profile rank
	// (lower = more identifiable).
	MeanTrueRank float64 `json:"mean_true_rank"`
}

// IDRate returns the top-k identification rate and its analytic
// baseline (0, 0 when k was not scored).
func (r *Row) IDRate(k int) (rate, baseline float64) {
	for _, x := range r.IDRates {
		if x.K == k {
			return x.Rate, x.BaselineAnalytic
		}
	}
	return 0, 0
}

// Report is one sweep's machine-readable outcome — the ATTACK_*.json
// payload. It contains no wall-clock fields: two same-seed sweeps
// marshal byte-identically, which the regression suite relies on.
type Report struct {
	Name       string  `json:"name"`
	Dataset    string  `json:"dataset"`
	Population int     `json:"population"`
	K          int     `json:"k"`
	Seed       uint64  `json:"seed"`
	ProfileSd  float64 `json:"profile_noise"`
	Rows       []Row   `json:"rows"`
}

// Sweep runs the full grid and mounts both attacks on every cell.
func Sweep(ctx context.Context, cfg SweepConfig) (*Report, error) {
	cfg.normalize()

	var (
		data   *timeseries.Dataset
		lo, hi float64
	)
	switch cfg.Dataset {
	case "cer":
		data, _ = chiaroscuro.GenerateCER(cfg.Population, cfg.Seed)
		lo, hi = datasets.CERMin, datasets.CERMax
	case "numed":
		data, _ = chiaroscuro.GenerateNUMED(cfg.Population, cfg.Seed)
		lo, hi = datasets.NUMEDMin, datasets.NUMEDMax
	default:
		return nil, fmt.Errorf("attack: unknown dataset %q", cfg.Dataset)
	}
	profiles := datasets.GenerateProfiles(data, cfg.ProfileReps, cfg.ProfileNoise, lo, hi,
		randx.New(datasets.ProfileSeed(cfg.Seed), 0x90F))
	profData, owners := datasets.ProfilesDataset(profiles)

	rep := &Report{
		Name:       "attack_" + cfg.Dataset,
		Dataset:    cfg.Dataset,
		Population: cfg.Population,
		K:          cfg.K,
		Seed:       cfg.Seed,
		ProfileSd:  cfg.ProfileNoise,
	}
	for _, mode := range cfg.Modes {
		cells := gridFor(mode, cfg)
		for _, cell := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tr, err := runCell(ctx, data, lo, hi, mode, cell, cfg)
			if err != nil {
				return nil, fmt.Errorf("attack: %s ε=%g pack=%d: %w", mode, cell.eps, cell.pack, err)
			}
			row := scoreCell(tr, data, profData, owners, lo, hi, cfg)
			row.Mode = mode.String()
			row.Private = cell.private
			row.Epsilon = cell.eps
			row.PackSlots = cell.pack
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// cell is one grid point of a mode's sweep.
type cell struct {
	eps     float64
	pack    int
	private bool
}

// gridFor expands a mode into its grid: the centralized reference is a
// single non-private cell, CentralizedDP sweeps ε only, and the
// distributed modes sweep ε × PackSlots.
func gridFor(mode chiaroscuro.Mode, cfg SweepConfig) []cell {
	switch mode {
	case chiaroscuro.Centralized:
		return []cell{{private: false}}
	case chiaroscuro.CentralizedDP:
		cells := make([]cell, 0, len(cfg.Epsilons))
		for _, e := range cfg.Epsilons {
			cells = append(cells, cell{eps: e, private: true})
		}
		return cells
	default:
		cells := make([]cell, 0, len(cfg.Epsilons)*len(cfg.PackSlots))
		for _, p := range cfg.PackSlots {
			for _, e := range cfg.Epsilons {
				cells = append(cells, cell{eps: e, pack: p, private: true})
			}
		}
		return cells
	}
}

// runCell executes one job and captures its observer-visible trace.
func runCell(ctx context.Context, data *timeseries.Dataset, lo, hi float64, mode chiaroscuro.Mode, c cell, cfg SweepConfig) (*Trace, error) {
	opts := chiaroscuro.Options{
		Mode:          mode,
		InitCentroids: chiaroscuro.SeedCentroids(cfg.Dataset, cfg.K, cfg.Seed+1),
		K:             cfg.K,
		DMin:          lo,
		DMax:          hi,
		Epsilon:       c.eps,
		MaxIterations: cfg.MaxIterations,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
	}
	if mode == chiaroscuro.Simulated || mode == chiaroscuro.Networked {
		opts.Exchanges = cfg.Exchanges
		opts.PackSlots = c.pack
		opts.ExchangeTimeout = cfg.Timeout
		tau := data.Len() / 4
		if tau < 2 {
			tau = 2
		}
		var (
			sch chiaroscuro.Scheme
			err error
		)
		if cfg.RealCrypto {
			sch, err = chiaroscuro.NewTestScheme(128, 4, data.Len(), tau)
		} else {
			sch, err = chiaroscuro.NewSimulationScheme(256, data.Len(), tau)
		}
		if err != nil {
			return nil, err
		}
		opts.Scheme = sch
	}
	job, err := chiaroscuro.NewJob(data, opts)
	if err != nil {
		return nil, err
	}
	tr, _, err := Capture(ctx, job)
	return tr, err
}

// scoreCell mounts both attacks on one trace.
func scoreCell(tr *Trace, data, profData *timeseries.Dataset, owners []int, lo, hi float64, cfg SweepConfig) Row {
	rec := Reconstruct(tr, data, ReconstructionConfig{
		DMin: lo, DMax: hi,
		Population: data.Len(),
		Seed:       cfg.Seed,
	})
	lk := Link(tr, data, profData, owners, LinkageConfig{TopK: cfg.TopK, Seed: cfg.Seed})
	row := Row{
		Iterations:           len(tr.Releases),
		ReconErr:             rec.MeanErr,
		ReconBaselineBlind:   rec.BaselineBlind,
		ReconBaselineUniform: rec.BaselineUniform,
		ReconAdvantage:       rec.Advantage,
		IDRates:              lk.Rates,
		MeanTrueRank:         lk.MeanTrueRank,
	}
	if n := len(tr.Releases); n > 0 {
		row.EpsSpent = tr.Releases[n-1].EpsilonTotal
	}
	return row
}
