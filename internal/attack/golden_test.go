package attack

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chiaroscuro"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_trace.json from the current implementation")

// goldenTrace is the serialized observer-visible surface: exact float64
// bit patterns (so the comparison is bit-exact, not formatting-exact)
// plus the per-release ε accounting sequence.
type goldenTrace struct {
	Releases []goldenRelease `json:"releases"`
}

type goldenRelease struct {
	Iteration    int        `json:"iteration"`
	Epsilon      float64    `json:"epsilon"`
	EpsilonTotal float64    `json:"epsilon_total"`
	Centroids    [][]string `json:"centroids"` // %016x float64 bits per measure
}

func traceToGolden(tr *Trace) goldenTrace {
	var g goldenTrace
	for _, rel := range tr.Releases {
		gr := goldenRelease{
			Iteration:    rel.Iteration,
			Epsilon:      rel.Epsilon,
			EpsilonTotal: rel.EpsilonTotal,
		}
		for _, c := range rel.Centroids {
			bits := make([]string, len(c))
			for j, v := range c {
				bits[j] = fmt.Sprintf("%016x", math.Float64bits(v))
			}
			gr.Centroids = append(gr.Centroids, bits)
		}
		g.Releases = append(g.Releases, gr)
	}
	return g
}

// TestGoldenObserverTrace pins the exact observer-visible release trace
// — centroid float bits, per-release ε and the cumulative total, in
// stream order — of a fixed simulated run. Any change to what an
// honest-but-curious peer sees (noise draws, budget split, aberrant
// filter, release ordering) trips this test; run with -update to accept
// an intentional change, and justify it in the commit message.
func TestGoldenObserverTrace(t *testing.T) {
	data, _ := chiaroscuro.GenerateCER(16, 7)
	scheme, err := chiaroscuro.NewSimulationScheme(256, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	job, err := chiaroscuro.NewJob(data, chiaroscuro.Options{
		Mode:          chiaroscuro.Simulated,
		Scheme:        scheme,
		InitCentroids: chiaroscuro.SeedCentroids("cer", 3, 8),
		K:             3,
		DMin:          chiaroscuro.CERMin,
		DMax:          chiaroscuro.CERMax,
		Epsilon:       1e5,
		MaxIterations: 2,
		Exchanges:     12,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := Capture(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	got := traceToGolden(tr)
	if len(got.Releases) == 0 {
		t.Fatal("run released nothing; the golden config must produce a trace")
	}

	path := filepath.Join("testdata", "golden_trace.json")
	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d releases)", path, len(got.Releases))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/attack -run GoldenObserverTrace -update` to create it)", err)
	}
	var want goldenTrace
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		for i := range want.Releases {
			if i >= len(got.Releases) {
				t.Fatalf("trace truncated: got %d releases, want %d", len(got.Releases), len(want.Releases))
			}
			if !reflect.DeepEqual(got.Releases[i], want.Releases[i]) {
				t.Fatalf("observer trace drifted at release %d:\n got  %+v\n want %+v",
					i, got.Releases[i], want.Releases[i])
			}
		}
		t.Fatalf("observer trace drifted: got %d releases, want %d", len(got.Releases), len(want.Releases))
	}
}
