package eesum

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"chiaroscuro/internal/homenc"
	plainpkg "chiaroscuro/internal/homenc/plain"
)

// TestExchangeConservesLogicalMassQuick is the Appendix C.2.1 correctness
// argument as a property test: for ANY sequence of full exchanges between
// any pairs, the sum over nodes of dec_i / 2^epoch_i (the logical mass)
// is invariant — the deferred-division update rule is arithmetically
// equivalent to push-pull halving.
func TestExchangeConservesLogicalMassQuick(t *testing.T) {
	codec := homenc.NewCodec(16)
	f := func(vals [6]int16, pairs [12]uint8) bool {
		sch, err := plainSchemeQuick(len(vals))
		if err != nil {
			return false
		}
		initial := make([][]*big.Int, len(vals))
		var want float64
		for i, v := range vals {
			x := float64(v) / 8
			want += x
			initial[i] = []*big.Int{codec.Encode(x)}
		}
		s, err := NewSum(sch, initial, 0)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			a := int(p) % len(vals)
			b := int(p>>3) % len(vals)
			if a == b {
				continue
			}
			s.Exchange(a, b, true)
		}
		var mass float64
		for i := range vals {
			dec := s.Ciphertexts(i)[0].V
			mass += codec.Decode(dec, nil) / math.Pow(2, float64(s.Epoch(i)))
		}
		return math.Abs(mass-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWeightMassConservedQuick: the cleartext integer weights carry the
// same invariant — Σ ω_i / 2^epoch_i stays exactly 1.
func TestWeightMassConservedQuick(t *testing.T) {
	f := func(pairs [16]uint8) bool {
		const n = 5
		sch, err := plainSchemeQuick(n)
		if err != nil {
			return false
		}
		initial := make([][]*big.Int, n)
		for i := range initial {
			initial[i] = []*big.Int{big.NewInt(1)}
		}
		s, err := NewSum(sch, initial, 0)
		if err != nil {
			return false
		}
		for _, p := range pairs {
			a := int(p) % n
			b := int(p>>4) % n
			if a == b {
				continue
			}
			s.Exchange(a, b, true)
		}
		var mass float64
		for i := 0; i < n; i++ {
			w, _ := new(big.Float).SetInt(s.Omega(i)).Float64()
			mass += w / math.Pow(2, float64(s.Epoch(i)))
		}
		return math.Abs(mass-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func plainSchemeQuick(n int) (homenc.Scheme, error) {
	return newPlainForTest(n)
}

// newPlainForTest builds a plain scheme without importing the package
// again in each property.
func newPlainForTest(n int) (homenc.Scheme, error) {
	return plainpkg.New(nil, 0, n, 1)
}
