package eesum

import (
	"math"
	"math/big"
	"testing"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
)

func TestNoiseGenExactPopulation(t *testing.T) {
	// With nν equal to the true population, no correction is needed and
	// the aggregated noise must be Laplace(λ): check the variance over
	// repeated runs.
	const n = 24
	const lambda = 5.0
	const trials = 120
	codec := homenc.NewCodec(24)
	var sum2 float64
	rng := randx.New(31, 31)
	for trial := 0; trial < trials; trial++ {
		sch := plainScheme(t, n)
		g, err := NewNoiseGen(sch, codec, NoiseConfig{Lambdas: UniformLambdas(1, lambda), NShares: n}, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(sim.Config{N: n, Seed: uint64(trial), MessageBytes: 1}, &sim.UniformSampler{})
		if err != nil {
			t.Fatal(err)
		}
		e.RunCycles(15, g.Exchange)
		if err := g.PrepareCorrections(); err != nil {
			t.Fatal(err)
		}
		// Surplus should be zero: corrections are all-zero vectors.
		for i := 0; i < n; i++ {
			if g.corVec[i][0] != 0 {
				t.Fatalf("trial %d: node %d proposed nonzero correction %v with exact nν", trial, i, g.corVec[i][0])
			}
		}
		est, err := g.Enc.EstimateWith(0, codec, plainDecrypt)
		if err != nil {
			t.Fatal(err)
		}
		sum2 += est[0] * est[0]
	}
	variance := sum2 / trials
	want := 2 * lambda * lambda
	if math.Abs(variance-want)/want > 0.45 {
		t.Errorf("aggregated noise variance = %v, want ~%v (Lemma 1)", variance, want)
	}
}

func TestNoiseGenSurplusCorrection(t *testing.T) {
	// With nν below the true population, the counter detects the surplus,
	// every node proposes a correction, dissemination agrees on one, and
	// applying it changes the encrypted noise state.
	const n = 32
	const nShares = 20 // under-estimate of the population
	codec := homenc.NewCodec(24)
	sch := plainScheme(t, n)
	rng := randx.New(32, 32)
	g, err := NewNoiseGen(sch, codec, NoiseConfig{Lambdas: UniformLambdas(2, 1), NShares: nShares}, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: 7}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(20, g.Exchange)
	// Counter must be near n at every node.
	for i := 0; i < n; i++ {
		ctr, ok := g.Ctr.Estimate(i)
		if !ok || math.Abs(ctr-n) > 0.01 {
			t.Fatalf("node %d: counter estimate %v (ok=%v), want %d", i, ctr, ok, n)
		}
	}
	if err := g.PrepareCorrections(); err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for i := 0; i < n; i++ {
		if g.corVec[i][0] != 0 || g.corVec[i][1] != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no node proposed a surplus correction despite nν < population")
	}
	// Disseminate and check unicity.
	e2, err := sim.New(sim.Config{N: n, Seed: 8}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 50 && !g.CorrectionConverged(); c++ {
		e2.RunCycle(g.ExchangeCorrection)
	}
	if !g.CorrectionConverged() {
		t.Fatal("correction dissemination did not converge")
	}
	winner := g.corID[0]
	for i := 1; i < n; i++ {
		if g.corID[i] != winner {
			t.Fatalf("node %d holds id %d, want %d (unicity broken)", i, g.corID[i], winner)
		}
	}
	// Applying the correction shifts node 0's estimate by -correction.
	before, err := g.Enc.EstimateWith(0, codec, plainDecrypt)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ApplyCorrection(0); err != nil {
		t.Fatal(err)
	}
	after, err := g.Enc.EstimateWith(0, codec, plainDecrypt)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		wantShift := -g.corVec[0][d]
		if math.Abs((after[d]-before[d])-wantShift) > 1e-4 {
			t.Errorf("dim %d: correction shifted by %v, want %v", d, after[d]-before[d], wantShift)
		}
	}
}

func TestPerturbMeansLockstep(t *testing.T) {
	// Means and noise EESums driven by the same engine exchanges stay in
	// lockstep, so ciphertexts add directly (Algorithm 3, line 7).
	const n = 16
	codec := homenc.NewCodec(20)
	sch := plainScheme(t, n)
	rng := randx.New(33, 33)
	meansInit := make([][]*big.Int, n)
	for i := range meansInit {
		meansInit[i] = []*big.Int{codec.Encode(float64(i))}
	}
	means, err := NewSum(sch, meansInit, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewNoiseGen(sch, codec, NoiseConfig{Lambdas: UniformLambdas(1, 2), NShares: n}, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: 9}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(12, func(a, b sim.NodeID, full bool) {
		means.Exchange(a, b, full)
		g.Exchange(a, b, full)
	})
	meanEst, err := means.EstimateWith(4, codec, plainDecrypt)
	if err != nil {
		t.Fatal(err)
	}
	noiseEst, err := g.Enc.EstimateWith(4, codec, plainDecrypt)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.PerturbMeans(4, means); err != nil {
		t.Fatal(err)
	}
	perturbed, err := means.EstimateWith(4, codec, plainDecrypt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perturbed[0]-(meanEst[0]+noiseEst[0])) > 1e-6 {
		t.Errorf("perturbed = %v, want mean %v + noise %v", perturbed[0], meanEst[0], noiseEst[0])
	}
}

func TestPerturbMeansOutOfLockstep(t *testing.T) {
	codec := homenc.NewCodec(20)
	sch := plainScheme(t, 4)
	init := [][]*big.Int{{big.NewInt(1)}, {big.NewInt(1)}, {big.NewInt(1)}, {big.NewInt(1)}}
	means, _ := NewSum(sch, init, 0)
	g, err := NewNoiseGen(sch, codec, NoiseConfig{Lambdas: UniformLambdas(1, 1), NShares: 4}, 4, randx.New(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	means.Exchange(0, 1, true) // means moved, noise did not
	if err := g.PerturbMeans(0, means); err == nil {
		t.Error("out-of-lockstep perturbation must fail")
	}
}

func TestEpidemicDecryptionPlain(t *testing.T) {
	const n = 12
	sch, err := plain.New(nil, 0, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]DecState, n)
	idx := make([]int, n)
	for i := range idx {
		// Every node holds its own (here: identical) converged state.
		states[i] = DecState{
			CTs:   []homenc.Ciphertext{sch.Encrypt(big.NewInt(77)), sch.Encrypt(big.NewInt(-3))},
			Omega: big.NewInt(1),
		}
		idx[i] = i + 1
	}
	d, err := NewDecryption(sch, states, idx)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: 10}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := 0
	for ; cycles < 100 && !d.AllDone(); cycles++ {
		e.RunCycle(d.Exchange)
	}
	if !d.AllDone() {
		t.Fatal("epidemic decryption did not complete")
	}
	for _, node := range []int{0, 5, 11} {
		ms, err := d.Plaintexts(node)
		if err != nil {
			t.Fatal(err)
		}
		if ms[0].Cmp(big.NewInt(77)) != 0 || ms[1].Cmp(big.NewInt(-3)) != 0 {
			t.Errorf("node %d decrypted %v/%v", node, ms[0], ms[1])
		}
	}
}

func TestEpidemicDecryptionDamgardJurik(t *testing.T) {
	// Full stack: EESum over DJ + epidemic threshold decryption, no
	// trusted decryptor anywhere.
	const n = 10
	sch, err := damgardjurik.NewTestScheme(128, 1, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	codec := homenc.NewCodec(16)
	initial := make([][]*big.Int, n)
	var want float64
	for i := 0; i < n; i++ {
		v := float64(i) * 1.5
		want += v
		initial[i] = []*big.Int{codec.Encode(v)}
	}
	s, err := NewSum(sch, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: 11}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(20, s.Exchange)

	// Every node decrypts its own converged state epidemically.
	states := make([]DecState, n)
	idx := make([]int, n)
	for i := range idx {
		states[i] = DecState{CTs: s.Ciphertexts(i), Omega: s.Omega(i)}
		idx[i] = i + 1
	}
	d, err := NewDecryption(sch, states, idx)
	if err != nil {
		t.Fatal(err)
	}
	if cycles := d.RunUntilDone(e, 100); cycles >= 100 {
		t.Fatal("epidemic decryption did not complete")
	}
	for _, node := range []int{0, 2, 9} {
		vals, err := d.Values(node, codec)
		if err != nil {
			t.Fatal(err)
		}
		// Tolerance covers gossip approximation error; the crypto is exact.
		if math.Abs(vals[0]-want) > 1e-3*want {
			t.Errorf("node %d: epidemic threshold decrypt = %v, want %v", node, vals[0], want)
		}
	}
}

func TestDecryptionErrors(t *testing.T) {
	sch, _ := plain.New(nil, 0, 5, 2)
	st := func() DecState {
		return DecState{CTs: []homenc.Ciphertext{sch.Encrypt(big.NewInt(1))}, Omega: big.NewInt(1)}
	}
	if _, err := NewDecryption(sch, nil, nil); err == nil {
		t.Error("empty states must fail")
	}
	if _, err := NewDecryption(sch, []DecState{st()}, []int{9}); err == nil {
		t.Error("bad share index must fail")
	}
	if _, err := NewDecryption(sch, []DecState{st(), st()}, []int{1, 1}); err == nil {
		t.Error("duplicate share index must fail")
	}
	if _, err := NewDecryption(sch, []DecState{{}}, []int{1}); err == nil {
		t.Error("empty ciphertext vector must fail")
	}
	if _, err := NewDecryption(sch, []DecState{st(), {CTs: []homenc.Ciphertext{sch.Encrypt(big.NewInt(1)), sch.Encrypt(big.NewInt(2))}}}, []int{1, 2}); err == nil {
		t.Error("ragged ciphertext vectors must fail")
	}
	d, err := NewDecryption(sch, []DecState{st(), st(), st()}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Plaintexts(0); err == nil {
		t.Error("plaintexts before threshold must fail")
	}
}

func TestDecryptionLatencyExactCompletes(t *testing.T) {
	const n, tau = 200, 20
	rng := randx.New(41, 41)
	dl, err := NewDecryptionLatency(n, tau, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: 12}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := 0
	for ; cycles < 500 && dl.FractionDone() < 1; cycles++ {
		e.RunCycle(dl.Exchange)
	}
	if dl.FractionDone() < 1 {
		t.Fatal("exact latency sim never completed")
	}
	// Roughly linear in tau: with adoption the completion should take
	// O(tau) cycles, far below the 500 cap.
	if cycles > 200 {
		t.Errorf("completion took %d cycles for tau=%d", cycles, tau)
	}
}

func TestDecryptionLatencyMeanFieldTracksExact(t *testing.T) {
	const n, tau = 400, 40
	run := func(exact bool) float64 {
		rng := randx.New(42, 42)
		dl, err := NewDecryptionLatency(n, tau, exact, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := sim.New(sim.Config{N: n, Seed: 13}, &sim.UniformSampler{})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2000; c++ {
			e.RunCycle(dl.Exchange)
			if dl.FractionDone() >= 1 {
				break
			}
		}
		return e.AvgMessages()
	}
	exact, mf := run(true), run(false)
	if mf < exact/3 || mf > exact*3 {
		t.Errorf("mean-field messages %v vs exact %v: models diverge", mf, exact)
	}
}

func TestExpectedDecryptMessages(t *testing.T) {
	// ≈ tau for tau << n.
	if got := ExpectedDecryptMessages(1_000_000, 100); math.Abs(got-100) > 1 {
		t.Errorf("E[msgs] = %v, want ~100", got)
	}
	// Superlinear as tau -> n.
	if got := ExpectedDecryptMessages(1000, 900); got < 2000 {
		t.Errorf("E[msgs] = %v, want superlinear blowup", got)
	}
	if !math.IsInf(ExpectedDecryptMessages(10, 10), 1) {
		t.Error("tau = n must be infinite")
	}
	if _, err := NewDecryptionLatency(10, 11, true, randx.New(1, 1)); err == nil {
		t.Error("threshold > n must fail")
	}
}
