package eesum

import (
	"math"
	"math/big"
	"testing"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/sim"
)

func plainScheme(t testing.TB, n int) homenc.Scheme {
	t.Helper()
	s, err := plain.New(nil, 256, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newEngine(t testing.TB, n int, churn float64) *sim.Engine {
	t.Helper()
	e, err := sim.New(sim.Config{N: n, Seed: 21, Churn: churn}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// plainDecrypt returns a decryption oracle for the plain scheme.
func plainDecrypt(c homenc.Ciphertext) (*big.Int, error) { return c.V, nil }

func TestEESumConvergesPlain(t *testing.T) {
	const n = 64
	codec := homenc.NewCodec(20)
	sch := plainScheme(t, n)
	initial := make([][]*big.Int, n)
	var want0, want1 float64
	for i := 0; i < n; i++ {
		v0 := float64(i%5) + 0.25
		v1 := -float64(i % 3)
		want0 += v0
		want1 += v1
		initial[i] = []*big.Int{codec.Encode(v0), codec.Encode(v1)}
	}
	s, err := NewSum(sch, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, n, 0)
	e.RunCycles(25, s.Exchange)
	for i := 0; i < n; i++ {
		est, err := s.EstimateWith(i, codec, plainDecrypt)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if math.Abs(est[0]-want0) > 1e-5*math.Abs(want0) {
			t.Fatalf("node %d dim 0: estimate %v, want %v", i, est[0], want0)
		}
		if math.Abs(est[1]-want1) > 1e-5*math.Abs(want1) {
			t.Fatalf("node %d dim 1: estimate %v, want %v", i, est[1], want1)
		}
	}
}

func TestEESumConvergesDamgardJurik(t *testing.T) {
	// The real thing, end to end: 16 nodes, 128-bit key, threshold 3.
	const n = 16
	sch, err := damgardjurik.NewTestScheme(128, 1, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec := homenc.NewCodec(16)
	initial := make([][]*big.Int, n)
	var want float64
	for i := 0; i < n; i++ {
		v := float64(i) + 0.5
		want += v
		initial[i] = []*big.Int{codec.Encode(v)}
	}
	s, err := NewSum(sch, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, n, 0)
	// Epochs cascade ~4 per cycle, so 18 cycles stay well inside the
	// ~103-epoch headroom of a 128-bit key with these encodings.
	e.RunCycles(18, s.Exchange)
	maxEpoch := 0
	for i := 0; i < n; i++ {
		if s.Epoch(i) > maxEpoch {
			maxEpoch = s.Epoch(i)
		}
	}
	if head := s.HeadroomExchanges(codec.Encode(want)); maxEpoch > head {
		t.Fatalf("test exceeded plaintext headroom: epoch %d > %d", maxEpoch, head)
	}
	djDecrypt := func(c homenc.Ciphertext) (*big.Int, error) { return sch.Decrypt(c), nil }
	for _, node := range []int{0, 7, 15} {
		est, err := s.EstimateWith(node, codec, djDecrypt)
		if err != nil {
			t.Fatal(err)
		}
		// The residual is gossip approximation error, not crypto error.
		if math.Abs(est[0]-want) > 1e-3*want {
			t.Errorf("node %d: estimate %v, want %v", node, est[0], want)
		}
	}
}

func TestEESumEpochScaling(t *testing.T) {
	// Force an exchange between nodes at different epochs and verify the
	// scaling rule keeps logical values consistent (Appendix C.2.1).
	codec := homenc.NewCodec(10)
	sch := plainScheme(t, 4)
	initial := [][]*big.Int{
		{codec.Encode(8)}, {codec.Encode(0)}, {codec.Encode(0)}, {codec.Encode(0)},
	}
	s, err := NewSum(sch, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 0,1 exchange twice; node 2 stays at epoch 0; then 0-2 exchange.
	s.Exchange(0, 1, true)
	s.Exchange(0, 1, true)
	if s.Epoch(0) != 2 || s.Epoch(2) != 0 {
		t.Fatalf("epochs = %d, %d", s.Epoch(0), s.Epoch(2))
	}
	s.Exchange(0, 2, true)
	if s.Epoch(0) != 3 || s.Epoch(2) != 3 {
		t.Fatalf("after mixed exchange, epochs = %d, %d", s.Epoch(0), s.Epoch(2))
	}
	// Total logical mass must still be 8: logical value of node i is
	// dec/(2^epoch)... sum over nodes of dec_i/2^epoch_i.
	var total float64
	for i := 0; i < 4; i++ {
		dec, _ := plainDecrypt(s.Ciphertexts(i)[0])
		total += codec.Decode(dec, nil) / math.Pow(2, float64(s.Epoch(i)))
	}
	if math.Abs(total-8) > 1e-9 {
		t.Errorf("logical mass = %v, want 8", total)
	}
}

func TestEESumMidFailureBreaksMass(t *testing.T) {
	codec := homenc.NewCodec(10)
	sch := plainScheme(t, 2)
	s, err := NewSum(sch, [][]*big.Int{{codec.Encode(4)}, {codec.Encode(0)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Exchange(0, 1, false) // responder never applied its half
	dec0, _ := plainDecrypt(s.Ciphertexts(0)[0])
	dec1, _ := plainDecrypt(s.Ciphertexts(1)[0])
	l0 := codec.Decode(dec0, nil) / math.Pow(2, float64(s.Epoch(0)))
	l1 := codec.Decode(dec1, nil) / math.Pow(2, float64(s.Epoch(1)))
	if math.Abs(l0+l1-4) < 1e-12 {
		t.Error("half-exchange conserved mass; churn corruption not modeled")
	}
}

func TestAddEncryptedShiftsEstimate(t *testing.T) {
	const n = 8
	codec := homenc.NewCodec(16)
	sch := plainScheme(t, n)
	initial := make([][]*big.Int, n)
	for i := range initial {
		initial[i] = []*big.Int{codec.Encode(1)}
	}
	s, err := NewSum(sch, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, n, 0)
	e.RunCycles(12, s.Exchange)
	before, err := s.EstimateWith(3, codec, plainDecrypt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEncrypted(3, []*big.Int{codec.Encode(2.5)}); err != nil {
		t.Fatal(err)
	}
	after, err := s.EstimateWith(3, codec, plainDecrypt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after[0]-before[0]-2.5) > 1e-4 {
		t.Errorf("AddEncrypted shifted estimate by %v, want 2.5", after[0]-before[0])
	}
}

func TestEstimateUndefinedZeroWeight(t *testing.T) {
	codec := homenc.NewCodec(8)
	sch := plainScheme(t, 2)
	s, err := NewSum(sch, [][]*big.Int{{big.NewInt(1)}, {big.NewInt(2)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateWith(1, codec, plainDecrypt); err == nil {
		t.Error("zero-weight node estimate should fail")
	}
}

func TestNewSumErrors(t *testing.T) {
	sch := plainScheme(t, 2)
	if _, err := NewSum(sch, [][]*big.Int{{big.NewInt(1)}}, 0); err == nil {
		t.Error("single node must fail")
	}
	if _, err := NewSum(sch, [][]*big.Int{{big.NewInt(1)}, {big.NewInt(1)}}, 5); err == nil {
		t.Error("bad weight node must fail")
	}
	if _, err := NewSum(sch, [][]*big.Int{{big.NewInt(1)}, {big.NewInt(1), big.NewInt(2)}}, 0); err == nil {
		t.Error("ragged vectors must fail")
	}
}

func TestHeadroomExchanges(t *testing.T) {
	sch, err := plain.New(new(big.Int).Lsh(big.NewInt(1), 64), 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSum(sch, [][]*big.Int{{big.NewInt(1)}, {big.NewInt(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// space 2^64, half 2^63, bound 2^13 -> max epoch <= 49.
	h := s.HeadroomExchanges(new(big.Int).Lsh(big.NewInt(1), 13))
	if h != 49 && h != 50 {
		t.Errorf("headroom = %d, want ~50", h)
	}
	unlimited, err := NewSum(plainScheme(t, 2), [][]*big.Int{{big.NewInt(1)}, {big.NewInt(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.HeadroomExchanges(big.NewInt(1000)) < 1<<30 {
		t.Error("unbounded scheme should have unlimited headroom")
	}
}

func TestEESumOverflowSafety(t *testing.T) {
	// Running more cycles than the headroom allows on a tiny plaintext
	// space must corrupt estimates — this test documents why protocol
	// drivers must respect HeadroomExchanges.
	space := new(big.Int).Lsh(big.NewInt(1), 32)
	sch, err := plain.New(space, 0, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	codec := homenc.NewCodec(8)
	const n = 8
	initial := make([][]*big.Int, n)
	for i := range initial {
		initial[i] = []*big.Int{codec.Encode(100)}
	}
	s, err := NewSum(sch, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	headroom := s.HeadroomExchanges(codec.Encode(800))
	e := newEngine(t, n, 0)
	e.RunCycles(headroom*2, s.Exchange) // way past safety
	est, err := s.EstimateWith(0, codec, func(c homenc.Ciphertext) (*big.Int, error) {
		return homenc.Centered(c.V, space), nil
	})
	if err == nil && math.Abs(est[0]-800) < 1 {
		t.Skip("estimate survived overflow (possible but unlikely); headroom is conservative")
	}
}
