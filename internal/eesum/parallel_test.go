package eesum

import (
	"math/big"
	"runtime"
	"testing"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/sim"
)

// runEESum executes a fixed EESum schedule with the given worker count
// and returns node 0's decoded estimate — which must not depend on the
// worker count in any way (the encryption randomness cancels exactly).
func runEESum(t *testing.T, workers int, midFailure bool) []float64 {
	t.Helper()
	sch, err := damgardjurik.NewTestScheme(128, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec := homenc.NewCodec(20)
	const n, dim = 8, 6
	initial := make([][]*big.Int, n)
	for i := range initial {
		vec := make([]*big.Int, dim)
		for j := range vec {
			vec[j] = codec.Encode(float64(i*dim+j) / 3)
		}
		initial[i] = vec
	}
	s, err := NewSumWorkers(sch, initial, 0, workers)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{N: n, Seed: 99, Workers: workers}
	if midFailure {
		cfg.Churn = 0.15
		cfg.MidFailure = true
	}
	e, err := sim.New(cfg, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	e.RunCyclesOn(10, s)
	est, err := s.EstimateWith(0, codec, func(c homenc.Ciphertext) (*big.Int, error) {
		return sch.Decrypt(c), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestEESumWorkerCountInvariance(t *testing.T) {
	for _, midFailure := range []bool{false, true} {
		want := runEESum(t, 1, midFailure)
		for _, workers := range []int{4, runtime.NumCPU()} {
			got := runEESum(t, workers, midFailure)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("midFailure=%v workers=%d: estimate[%d] = %v, serial %v",
						midFailure, workers, j, got[j], want[j])
				}
			}
		}
	}
}

// runDecryption drives the epidemic decryption with the given worker
// count and returns node 0's decoded values.
func runDecryption(t *testing.T, workers int) []float64 {
	t.Helper()
	sch, err := damgardjurik.NewTestScheme(128, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec := homenc.NewCodec(20)
	const n, dim = 8, 5
	cts := make([]homenc.Ciphertext, dim)
	for j := range cts {
		cts[j] = sch.Encrypt(codec.Encode(float64(10 + j)))
	}
	states := make([]DecState, n)
	shareIdx := make([]int, n)
	for i := range states {
		// Every node converged to the same state, as after an EESum.
		states[i] = DecState{CTs: cts, Omega: big.NewInt(1)}
		shareIdx[i] = i + 1
	}
	d, err := NewDecryption(sch, states, shareIdx)
	if err != nil {
		t.Fatal(err)
	}
	d.SetWorkers(workers)
	e, err := sim.New(sim.Config{N: n, Seed: 5, Workers: workers}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	if d.RunUntilDone(e, 64) == 64 && !d.AllDone() {
		t.Fatal("decryption did not complete")
	}
	vals, err := d.Values(0, codec)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestDecryptionWorkerCountInvariance(t *testing.T) {
	want := runDecryption(t, 1)
	for j, v := range want {
		if v != float64(10+j) {
			t.Fatalf("serial decryption wrong: vals[%d] = %v", j, v)
		}
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := runDecryption(t, workers)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("workers=%d: vals[%d] = %v, serial %v", workers, j, got[j], want[j])
			}
		}
	}
}
