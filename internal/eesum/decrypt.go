package eesum

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/parallel"
	"chiaroscuro/internal/sim"
)

// DecState is one participant's input to the epidemic decryption: its
// converged ciphertext vector and the epidemic weight that decodes it.
// The epidemic sum guarantees every participant's state decodes to
// (approximately) the same values, which is what lets a less advanced
// participant adopt a more advanced one's state wholesale.
type DecState struct {
	CTs   []homenc.Ciphertext
	Omega *big.Int
}

// Decryption is the epidemic decryption protocol of Section 4.2.3.
// Every participant owns one key-share (identified by its share index)
// and accumulates partial decryptions of the ciphertext vector it
// currently holds. During an exchange the less advanced side adopts the
// more advanced side's whole state — ciphertexts, weight, and partials,
// which remain mutually consistent — and each side then applies its own
// key-share to the other's current ciphertexts if absent. A node is done
// once τ distinct key-shares have been applied.
type Decryption struct {
	sch       homenc.Scheme
	threshold int
	dim       int
	workers   int

	ownIdx []int
	states []DecState
	parts  []map[int][]homenc.PartialDecryption // node -> shareIdx -> per-element partials
}

// NewDecryption starts the protocol. states[i] is participant i's
// converged state; shareIdx[i] its key-share index (1-based, distinct).
func NewDecryption(sch homenc.Scheme, states []DecState, shareIdx []int) (*Decryption, error) {
	if len(states) != len(shareIdx) || len(states) == 0 {
		return nil, errors.New("eesum: states and share indices must align and be non-empty")
	}
	dim := len(states[0].CTs)
	if dim == 0 {
		return nil, errors.New("eesum: empty ciphertext vector")
	}
	seen := make(map[int]bool, len(shareIdx))
	for i, idx := range shareIdx {
		if idx < 1 || idx > sch.NumShares() {
			return nil, fmt.Errorf("eesum: key-share index %d out of range", idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("eesum: duplicate key-share index %d", idx)
		}
		seen[idx] = true
		if len(states[i].CTs) != dim {
			return nil, errors.New("eesum: ragged ciphertext vectors")
		}
	}
	d := &Decryption{
		sch:       sch,
		threshold: sch.Threshold(),
		dim:       dim,
		workers:   parallel.Workers(),
		ownIdx:    append([]int(nil), shareIdx...),
		states:    append([]DecState(nil), states...),
		parts:     make([]map[int][]homenc.PartialDecryption, len(states)),
	}
	for i := range d.parts {
		d.parts[i] = make(map[int][]homenc.PartialDecryption, d.threshold)
	}
	return d, nil
}

// SetWorkers overrides the worker count for the per-element partial-
// decryption and combination sweeps (values below 1 force serial). It
// returns d for chaining and must not be called mid-protocol.
func (d *Decryption) SetWorkers(workers int) *Decryption {
	if workers < 1 {
		workers = 1
	}
	d.workers = workers
	return d
}

// dimWorkers gates the per-element fan-out the same way Sum does.
func (d *Decryption) dimWorkers() int {
	if d.dim < minParallelDim {
		return 1
	}
	return d.workers
}

// ConcurrentExchangeSafe marks Decryption for the simulation engine's
// parallel cycle mode: Exchange reads and writes only the state and
// partial sets of its two nodes (adopted slices are immutable), so
// exchanges over disjoint node pairs may run concurrently.
func (d *Decryption) ConcurrentExchangeSafe() bool { return true }

// apply computes the key-share of node from over node to's current
// ciphertexts and stores it in to's set (at most once per share,
// Section 4.2.3).
func (d *Decryption) apply(to, from sim.NodeID) {
	idx := d.ownIdx[from]
	if !DecNeeds(d.parts[to], d.threshold, idx) {
		return
	}
	ps, err := DecPartials(d.sch, idx, d.states[to].CTs, d.dimWorkers())
	if err != nil {
		return // share indices validated at construction, cannot happen
	}
	d.parts[to][idx] = ps
}

// Exchange performs one epidemic decryption exchange.
func (d *Decryption) Exchange(a, b sim.NodeID, full bool) {
	// Latency optimization (Section 4.2.3): the less advanced side
	// erases its partially-decrypted state and adopts the more advanced
	// side's — ciphertexts, weight and partials move together so the
	// set stays consistent with the ciphertexts it decrypts.
	if DecAdopts(len(d.parts[a]), len(d.parts[b])) {
		d.adopt(a, b)
	} else if full && DecAdopts(len(d.parts[b]), len(d.parts[a])) {
		d.adopt(b, a)
	}
	// Each side applies its own key-share to the other's ciphertexts,
	// and to its own state.
	d.apply(a, b)
	d.apply(a, a)
	if full {
		d.apply(b, a)
		d.apply(b, b)
	}
}

func (d *Decryption) adopt(to, from sim.NodeID) {
	d.states[to] = d.states[from]
	d.parts[to] = CopyParts(d.parts[from], d.threshold)
}

// Done reports whether node i gathered τ distinct key-shares.
func (d *Decryption) Done(i sim.NodeID) bool { return len(d.parts[i]) >= d.threshold }

// AllDone reports whether every node finished.
func (d *Decryption) AllDone() bool {
	for i := range d.parts {
		if !d.Done(i) {
			return false
		}
	}
	return true
}

// RunUntilDone drives the engine until every node finished or maxCycles
// elapsed, returning the cycles used.
func (d *Decryption) RunUntilDone(e *sim.Engine, maxCycles int) int {
	for c := 0; c < maxCycles; c++ {
		if d.AllDone() {
			return c
		}
		e.RunCycleOn(d)
	}
	return maxCycles
}

// Plaintexts combines node i's accumulated partials into the plaintext
// vector of the state it currently holds. It fails below the threshold.
func (d *Decryption) Plaintexts(i sim.NodeID) ([]*big.Int, error) {
	return CombineParts(d.sch, d.states[i].CTs, d.parts[i], d.threshold, d.dimWorkers())
}

// Values decodes node i's decrypted plaintexts into floats using the
// weight of the state node i currently holds.
func (d *Decryption) Values(i sim.NodeID, codec homenc.Codec) ([]float64, error) {
	ms, err := d.Plaintexts(i)
	if err != nil {
		return nil, err
	}
	return DecodeState(d.sch, codec, ms, d.states[i].Omega)
}

// ValuesPacked decodes node i's decrypted packed plaintexts into the
// dim per-slot floats. With pc.Slots == 1 it equals Values.
func (d *Decryption) ValuesPacked(i sim.NodeID, pc homenc.PackedCodec, dim int) ([]float64, error) {
	ms, err := d.Plaintexts(i)
	if err != nil {
		return nil, err
	}
	return DecodePackedState(d.sch, pc, ms, d.states[i].Omega, dim)
}

// DecryptionLatency is the counting-only model of the epidemic
// decryption used for the large-population latency experiment (Figure
// 4(b)), where what matters is how many exchanges each node needs to
// gather τ distinct key-shares, not the crypto itself.
//
// Exact mode tracks the actual identifier sets (memory ∝ n·τ — the same
// platform limitation the paper reports at one million participants).
// Mean-field mode tracks only set sizes, approximating membership tests
// probabilistically; it scales to millions of nodes.
type DecryptionLatency struct {
	Threshold int
	Exact     bool

	n     int
	count []int32
	sets  []map[int32]struct{} // exact mode only
	rng   interface{ Float64() float64 }
}

// NewDecryptionLatency builds the latency model for n nodes, each owning
// key-share i (0-based here; identity is all that matters).
func NewDecryptionLatency(n, threshold int, exact bool, rng interface{ Float64() float64 }) (*DecryptionLatency, error) {
	if threshold < 1 || threshold > n {
		return nil, fmt.Errorf("eesum: threshold %d out of range for %d nodes", threshold, n)
	}
	dl := &DecryptionLatency{
		Threshold: threshold,
		Exact:     exact,
		n:         n,
		count:     make([]int32, n),
		rng:       rng,
	}
	if exact {
		dl.sets = make([]map[int32]struct{}, n)
		for i := range dl.sets {
			dl.sets[i] = map[int32]struct{}{int32(i): {}}
			dl.count[i] = 1
		}
	} else {
		for i := range dl.count {
			dl.count[i] = 1 // own share
		}
	}
	return dl, nil
}

// Exchange mirrors Decryption.Exchange at the counting level.
func (dl *DecryptionLatency) Exchange(a, b sim.NodeID, full bool) {
	if dl.Exact {
		if dl.count[b] > dl.count[a] {
			dl.adopt(a, b)
		} else if full && dl.count[a] > dl.count[b] {
			dl.adopt(b, a)
		}
		dl.insert(a, int32(b))
		if full {
			dl.insert(b, int32(a))
		}
		return
	}
	// Mean-field: adopt the larger count, then gain the peer's share
	// with probability 1 - count/n (chance it was not yet collected).
	if dl.count[b] > dl.count[a] {
		dl.count[a] = dl.count[b]
	} else if full && dl.count[a] > dl.count[b] {
		dl.count[b] = dl.count[a]
	}
	th := int32(dl.Threshold)
	if dl.count[a] < th && dl.rng.Float64() > float64(dl.count[a])/float64(dl.n) {
		dl.count[a]++
	}
	if full && dl.count[b] < th && dl.rng.Float64() > float64(dl.count[b])/float64(dl.n) {
		dl.count[b]++
	}
}

// adopt copies the more advanced side's share-set, truncating at
// Threshold over the ascending share ids — never over Go map iteration
// order, which would make the surviving set (and every later membership
// test) nondeterministic. The public transitions cap every set at
// Threshold, so the truncation branch is defensive here; the protocol's
// live truncation path is CopyParts (wire peers may present more than τ
// parts), which applies the same ordered rule.
func (dl *DecryptionLatency) adopt(to, from sim.NodeID) {
	src := dl.sets[from]
	dst := make(map[int32]struct{}, len(src))
	if len(src) <= dl.Threshold {
		//lint:orderfree whole-set copy into a set: every key lands regardless of order
		for k := range src {
			dst[k] = struct{}{}
		}
	} else {
		for _, k := range sortedKeys(src) {
			if len(dst) == dl.Threshold {
				break
			}
			dst[k] = struct{}{}
		}
	}
	dl.sets[to] = dst
	dl.count[to] = int32(len(dst))
	dl.insert(to, int32(to))
}

func (dl *DecryptionLatency) insert(node sim.NodeID, share int32) {
	if dl.count[node] >= int32(dl.Threshold) {
		return
	}
	if _, ok := dl.sets[node][share]; ok {
		return
	}
	dl.sets[node][share] = struct{}{}
	dl.count[node]++
}

// Done reports whether node i gathered enough shares.
func (dl *DecryptionLatency) Done(i sim.NodeID) bool {
	return dl.count[i] >= int32(dl.Threshold)
}

// FractionDone returns the fraction of nodes that finished.
func (dl *DecryptionLatency) FractionDone() float64 {
	done := 0
	for i := range dl.count {
		if dl.Done(i) {
			done++
		}
	}
	return float64(done) / float64(dl.n)
}

// ExpectedDecryptMessages is the closed-form "Tendencies" estimate for
// Figure 4(b): collecting tau distinct key-shares out of a population of
// n by meeting uniformly random peers is a coupon-collector partial sum,
//
//	E[messages] ≈ n · ln(n / (n - tau)),
//
// which is ≈ tau for tau ≪ n and grows superlinearly as tau approaches n.
func ExpectedDecryptMessages(n, tau int) float64 {
	if tau >= n {
		return math.Inf(1)
	}
	return float64(n) * math.Log(float64(n)/float64(n-tau))
}
