// Package eesum implements the encrypted epidemic protocols of Section
// 4.2 of the paper:
//
//   - EESum (Algorithm 2): the gossip sum over additively-homomorphic
//     ciphertexts. Divisions are deferred — instead of halving at each
//     exchange, both sides rescale to a common power-of-two epoch, add
//     homomorphically, and keep an integer weight that cancels the
//     scaling at decode time;
//   - epidemic noise generation (Section 4.2.2): each participant
//     contributes a Laplace noise-share (Definition 5), the shares are
//     EESum-aggregated alongside a cleartext participant counter, and a
//     min-identifier correction dissemination removes the surplus
//     shares;
//   - epidemic decryption (Section 4.2.3): each participant applies its
//     own key-share to the converged ciphertexts and gossips the set of
//     partial decryptions until τ distinct key-shares are gathered.
package eesum

import (
	"errors"
	"fmt"
	"math/big"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/parallel"
	"chiaroscuro/internal/sim"
)

// minParallelDim is the vector length below which per-dimension loops
// stay serial: the fan-out overhead only pays off once several
// homomorphic operations can run per worker.
const minParallelDim = 4

// Sum is the EESum protocol state for a population of nodes, each
// holding a vector of dim encrypted values, an integer weight, and an
// exchange epoch. The logical value of node i is ct_i / (ω_i · 2^f) —
// the power-of-two epoch scaling is common to numerator and denominator
// and cancels.
type Sum struct {
	sch     homenc.Scheme
	dim     int
	workers int

	ct    [][]homenc.Ciphertext
	omega []*big.Int
	epoch []int
}

// NewSum encrypts each node's initial plaintext vector and assigns the
// epidemic weight 1 to weightNode (0 elsewhere), per Section 3.2. It
// uses the process-wide parallel.Workers() default; see NewSumWorkers.
func NewSum(sch homenc.Scheme, initial [][]*big.Int, weightNode int) (*Sum, error) {
	return NewSumWorkers(sch, initial, weightNode, parallel.Workers())
}

// NewSumWorkers is NewSum with an explicit worker count for the n×dim
// encryption fan-out and every later per-dimension loop (1 forces fully
// serial execution; results are identical for any worker count).
func NewSumWorkers(sch homenc.Scheme, initial [][]*big.Int, weightNode, workers int) (*Sum, error) {
	n := len(initial)
	if n < 2 {
		return nil, errors.New("eesum: need at least 2 nodes")
	}
	if weightNode < 0 || weightNode >= n {
		return nil, fmt.Errorf("eesum: weight node %d out of range", weightNode)
	}
	if workers < 1 {
		workers = 1
	}
	dim := len(initial[0])
	s := &Sum{
		sch:     sch,
		dim:     dim,
		workers: workers,
		ct:      make([][]homenc.Ciphertext, n),
		omega:   make([]*big.Int, n),
		epoch:   make([]int, n),
	}
	for i, vec := range initial {
		if len(vec) != dim {
			return nil, errors.New("eesum: ragged initial vectors")
		}
		s.ct[i] = make([]homenc.Ciphertext, dim)
		s.omega[i] = big.NewInt(0)
	}
	// The n×dim encryption fan-out: every slot is independent, so it
	// spreads across the worker pool (the schemes are safe for
	// concurrent use).
	parallel.ForEach(workers, n*dim, func(f int) {
		i, j := f/dim, f%dim
		s.ct[i][j] = sch.Encrypt(initial[i][j])
	})
	s.omega[weightNode] = big.NewInt(1)
	return s, nil
}

// SetWorkers overrides the worker count used by the per-dimension
// loops (values below 1 force serial). It returns s for chaining and
// must not be called concurrently with protocol operations.
func (s *Sum) SetWorkers(workers int) *Sum {
	if workers < 1 {
		workers = 1
	}
	s.workers = workers
	return s
}

// dimWorkers returns the worker count for a per-dimension loop, gating
// out vectors too short to amortize the fan-out.
func (s *Sum) dimWorkers() int {
	if s.dim < minParallelDim {
		return 1
	}
	return s.workers
}

// ConcurrentExchangeSafe marks Sum for the simulation engine's parallel
// cycle mode (sim.ConcurrentExchanger): Exchange only touches the state
// of its two nodes, ciphertext values are immutable, and the scheme
// operations are concurrency-safe, so exchanges over disjoint node
// pairs may run concurrently.
func (s *Sum) ConcurrentExchangeSafe() bool { return true }

// Dim returns the vector length per node.
func (s *Sum) Dim() int { return s.dim }

// Epoch returns node i's exchange epoch (the deferred-division exponent).
func (s *Sum) Epoch(i sim.NodeID) int { return s.epoch[i] }

// Exchange is the local update rule of Algorithm 2, applied element-wise
// to the ciphertext vectors:
//
//	if epochs differ, the lower side is scaled by 2^diff (ciphertext
//	exponentiation, weight shift);
//	both sides then hold E(v_a)+hE(v_b), ω_a+ω_b, max(e_a,e_b)+1.
//
// When full is false only the initiator applies the update (mid-exchange
// churn corruption, Section 6.1.5).
func (s *Sum) Exchange(a, b sim.NodeID, full bool) {
	m := MergeSum(s.sch, s.State(a), s.State(b), s.dimWorkers())
	s.ct[a], s.omega[a], s.epoch[a] = m.CTs, m.Omega, m.Epoch
	if full {
		// The two sides share ciphertext values (immutable), but not the
		// slice or weight, so later in-place mutation of one cannot
		// corrupt the other.
		cpy := m.Clone()
		s.ct[b], s.omega[b], s.epoch[b] = cpy.CTs, cpy.Omega, cpy.Epoch
	}
}

// State returns node i's portable EESum state (shared slices; treat as
// read-only or Clone).
func (s *Sum) State(i sim.NodeID) SumState {
	return SumState{CTs: s.ct[i], Omega: s.omega[i], Epoch: s.epoch[i]}
}

func scaleVec(sch homenc.Scheme, in []homenc.Ciphertext, shift uint, workers int) []homenc.Ciphertext {
	k := new(big.Int).Lsh(big.NewInt(1), shift)
	out := make([]homenc.Ciphertext, len(in))
	parallel.ForEach(workers, len(in), func(j int) {
		out[j] = sch.ScalarMul(in[j], k)
	})
	return out
}

// AddEncrypted homomorphically adds an encrypted vector (already scaled
// by the node's own weight) into node i's state — the "encrypted
// perturbation" step of Algorithm 3 (line 7). The caller provides
// plaintext integers v; what is added is E(v · ω_i), so the decoded
// estimate shifts by exactly v.
func (s *Sum) AddEncrypted(i sim.NodeID, v []*big.Int) error {
	return AddEncryptedState(s.sch, s.State(i), v, s.dimWorkers())
}

// Ciphertexts returns node i's current encrypted vector (shared; do not
// mutate).
func (s *Sum) Ciphertexts(i sim.NodeID) []homenc.Ciphertext { return s.ct[i] }

// Omega returns node i's integer weight (shared; do not mutate).
func (s *Sum) Omega(i sim.NodeID) *big.Int { return s.omega[i] }

// EstimateWith decodes node i's estimate of the global sum using an
// arbitrary decryption oracle (the non-threshold Decrypt in tests, the
// epidemic threshold decryption in the full protocol). codec translates
// fixed-point plaintexts; the weight ω_i divides out the 2^epoch scale.
func (s *Sum) EstimateWith(i sim.NodeID, codec homenc.Codec, decrypt func(homenc.Ciphertext) (*big.Int, error)) ([]float64, error) {
	if s.omega[i].Sign() == 0 {
		return nil, errors.New("eesum: estimate undefined (zero weight)")
	}
	out := make([]float64, s.dim)
	for j, c := range s.ct[i] {
		raw, err := decrypt(c)
		if err != nil {
			return nil, err
		}
		centered := homenc.Centered(raw, s.sch.PlaintextSpace())
		out[j] = codec.Decode(centered, s.omega[i])
	}
	return out, nil
}

// HeadroomExchanges returns how many exchanges are safe before the
// scaled plaintexts could overflow half the plaintext space (values must
// stay centered-representable). sumAbsBound is an upper bound on the
// absolute value of the global (fixed-point encoded) sum. A scheme
// without a plaintext bound returns maxInt. The boundary math lives in
// homenc.HeadroomEpochs, shared with core's pre-flight check.
func (s *Sum) HeadroomExchanges(sumAbsBound *big.Int) int {
	return homenc.HeadroomEpochs(s.sch.PlaintextSpace(), sumAbsBound)
}
