package eesum

import (
	"errors"
	"math/big"

	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/parallel"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
)

// NoiseConfig parametrizes the epidemic noise generation of Section
// 4.2.2.
type NoiseConfig struct {
	// Lambdas holds the Laplace scale of each of the Dim() variables
	// (already compensated per Lemma 2). Algorithm 3 perturbs k·(n+1)
	// values per iteration: the k·n sum measures share one scale, the k
	// counts another.
	Lambdas []float64
	NShares int // nν: assumed lower bound on contributing participants

	// Workers bounds the worker pool of the underlying encrypted sum
	// (0 uses the process-wide parallel.Workers() default, 1 forces
	// serial execution).
	Workers int

	// Packing, when set (Slots >= 2), folds the encoded noise-share and
	// correction vectors into multi-slot plaintexts before encryption,
	// so the encrypted sum runs over PackedLen(Dim()) ciphertexts. It
	// must be the same layout as the means sum this noise runs in
	// lockstep with (PerturbMeans adds the ciphertexts element-wise).
	// Noise draws happen per variable before packing, so the Laplace
	// stream consumption is identical packed or not.
	Packing homenc.PackedCodec
}

// Dim returns the number of Laplace variables to produce.
func (c NoiseConfig) Dim() int { return len(c.Lambdas) }

// pack folds an encoded vector through the configured packing layout
// (identity when packing is off or unset).
func (c NoiseConfig) pack(vec []*big.Int) []*big.Int {
	if c.Packing.Slots <= 1 {
		return vec
	}
	return c.Packing.Pack(vec)
}

// UniformLambdas builds a NoiseConfig scale vector with a single scale.
func UniformLambdas(dim int, lambda float64) []float64 {
	ls := make([]float64, dim)
	for i := range ls {
		ls[i] = lambda
	}
	return ls
}

// NoiseGen runs the collaborative noise generation: an EESum over
// locally generated noise-share vectors, a cleartext epidemic counter of
// actual contributors, and a min-identifier dissemination of the surplus
// correction.
type NoiseGen struct {
	cfg   NoiseConfig
	codec homenc.Codec

	Enc *Sum        // encrypted sum of noise-share vectors
	Ctr *gossip.Sum // cleartext count of contributing participants

	corID   []uint64    // per-node correction identifier
	corVec  [][]float64 // per-node correction proposal
	n       int
	streams []*randx.RNG // per-node noise streams (NodeNoiseStreams)
}

// NewNoiseGen draws every node's noise-share vector (Definition 5),
// encrypts it into an EESum, and initializes the participant counter.
// rng must be the experiment's deterministic source; per-node streams
// are derived from it (NodeNoiseStreams), so a networked participant
// holding the same seed draws bit-identical shares from its own stream.
func NewNoiseGen(sch homenc.Scheme, codec homenc.Codec, cfg NoiseConfig, n int, rng *randx.RNG) (*NoiseGen, error) {
	if cfg.Dim() < 1 || cfg.NShares < 1 {
		return nil, errors.New("eesum: invalid noise configuration")
	}
	for _, l := range cfg.Lambdas {
		if l <= 0 {
			return nil, errors.New("eesum: non-positive Laplace scale")
		}
	}
	// The noise-shares are drawn from per-node streams split off the
	// deterministic rng (reproducibility per seed); only the encryption
	// fan-out below runs on the worker pool.
	streams := NodeNoiseStreams(rng, n)
	initial := make([][]*big.Int, n)
	for i := 0; i < n; i++ {
		shares := NoiseShareVector(streams[i], cfg)
		vec := make([]*big.Int, cfg.Dim())
		for j := 0; j < cfg.Dim(); j++ {
			vec[j] = codec.Encode(shares[j])
		}
		initial[i] = cfg.pack(vec)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = parallel.Workers()
	}
	enc, err := NewSumWorkers(sch, initial, 0, workers)
	if err != nil {
		return nil, err
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	return &NoiseGen{
		cfg:     cfg,
		codec:   codec,
		Enc:     enc,
		Ctr:     gossip.NewSum(ones, 0),
		n:       n,
		streams: streams,
	}, nil
}

// Exchange runs one combined gossip exchange: the encrypted noise sum
// and the cleartext counter travel in the same message (the paper runs
// them "in background" in parallel).
func (g *NoiseGen) Exchange(a, b sim.NodeID, full bool) {
	g.Enc.Exchange(a, b, full)
	g.Ctr.Exchange(a, b, full)
}

// ConcurrentExchangeSafe marks NoiseGen for the simulation engine's
// parallel cycle mode: both legs (the encrypted sum and the cleartext
// counter) only touch the two exchanging nodes' state.
func (g *NoiseGen) ConcurrentExchangeSafe() bool { return true }

// PrepareCorrections computes each node's local surplus estimate and
// correction proposal (Section 4.2.2): if the counter says ctr > nν
// participants contributed, the node draws ctr−nν extra noise-shares
// summed into a correction vector, tagged with a random identifier —
// all from the node's own noise stream (CorrectionProposal), so the
// draws are local decisions a networked participant replicates exactly.
// It must be called after the sum phase has converged.
func (g *NoiseGen) PrepareCorrections() error {
	g.corID = make([]uint64, g.n)
	g.corVec = make([][]float64, g.n)
	for i := 0; i < g.n; i++ {
		est, ok := g.Ctr.Estimate(i)
		g.corID[i], g.corVec[i] = CorrectionProposal(g.streams[i], g.cfg, est, ok)
	}
	return nil
}

// ExchangeCorrection is the min-identifier dissemination step: both
// sides keep the proposal with the smallest identifier.
func (g *NoiseGen) ExchangeCorrection(a, b sim.NodeID, full bool) {
	if g.corID[b] < g.corID[a] {
		g.corID[a], g.corVec[a] = g.corID[b], g.corVec[b]
	} else if full && g.corID[a] < g.corID[b] {
		g.corID[b], g.corVec[b] = g.corID[a], g.corVec[a]
	}
}

// CorrectionConverged reports whether all nodes agree on the correction.
func (g *NoiseGen) CorrectionConverged() bool {
	for _, id := range g.corID[1:] {
		if id != g.corID[0] {
			return false
		}
	}
	return true
}

// ApplyCorrection homomorphically subtracts the agreed correction from
// node i's encrypted noise state, so that the final noise is (in
// expectation) the sum of exactly nν noise-shares.
func (g *NoiseGen) ApplyCorrection(i sim.NodeID) error {
	if g.corVec == nil {
		return errors.New("eesum: corrections not prepared")
	}
	v := make([]*big.Int, g.cfg.Dim())
	for j, x := range g.corVec[i] {
		v[j] = new(big.Int).Neg(g.codec.Encode(x))
	}
	// Packing is linear, so the packed negated correction subtracts
	// exactly per slot.
	return g.Enc.AddEncrypted(i, g.cfg.pack(v))
}

// PerturbMeans adds node i's converged encrypted noise into node i's
// encrypted means state (Algorithm 3 line 7: M.s = M.s +h N.s). Both
// states must have compatible dimensions; their weights may differ, so
// the noise estimate is rebased onto the means' weight... which is not
// possible homomorphically without a division. Instead, the protocol
// keeps means and noise as a pair and adds the *estimates* after
// decryption; see core.Participant. This helper exists for the common
// case where both EESums ran in lockstep on the same engine and hold
// identical weights: then ciphertexts add directly.
func (g *NoiseGen) PerturbMeans(i sim.NodeID, means *Sum) error {
	return PerturbState(means.sch, means.State(i), g.Enc.State(i))
}
