// Transport-agnostic exchange transitions: the state updates of the
// encrypted epidemic protocols (Algorithm 2 sum merge, Section 4.2.3
// decryption adoption/partial gathering, Section 4.2.2 noise streams)
// expressed over portable per-participant states, with no reference to
// the simulation engine. The in-memory protocol drivers in this package
// and the TCP runtime in internal/node both execute these exact
// functions, which is what makes a networked run bit-reproduce a
// simulated one at the same seed.

package eesum

import (
	"errors"
	"math/big"
	"slices"
	"sync"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/parallel"
	"chiaroscuro/internal/randx"
)

// SumState is one participant's portable EESum state: the encrypted
// vector, the integer epidemic weight, and the deferred-division epoch.
// Its logical value is CTs / (Omega · 2^FracBits); the 2^Epoch scaling
// is common to numerator and weight and cancels at decode time.
type SumState struct {
	CTs   []homenc.Ciphertext
	Omega *big.Int
	Epoch int
}

// Clone returns a deep-enough copy: the ciphertext slice and weight are
// fresh, the (immutable) ciphertext values are shared.
func (st SumState) Clone() SumState {
	cts := make([]homenc.Ciphertext, len(st.CTs))
	copy(cts, st.CTs)
	return SumState{CTs: cts, Omega: new(big.Int).Set(st.Omega), Epoch: st.Epoch}
}

// MergeSum is the local update rule of Algorithm 2 as a pure function of
// the two exchanging sides' states: the staler side is rescaled to the
// fresher epoch (ciphertext exponentiation, weight shift), the vectors
// are added homomorphically, the weights added, and the epoch advanced.
// Neither input is mutated. Both sides of a full exchange adopt the
// result (each via its own Clone when states must not alias).
func MergeSum(sch homenc.Scheme, a, b SumState, workers int) SumState {
	cta, ctb := a.CTs, b.CTs
	oa, ob := a.Omega, b.Omega
	if a.Epoch < b.Epoch {
		cta = scaleVec(sch, cta, uint(b.Epoch-a.Epoch), workers)
		oa = new(big.Int).Lsh(oa, uint(b.Epoch-a.Epoch))
	} else if b.Epoch < a.Epoch {
		ctb = scaleVec(sch, ctb, uint(a.Epoch-b.Epoch), workers)
		ob = new(big.Int).Lsh(ob, uint(a.Epoch-b.Epoch))
	}
	sum := make([]homenc.Ciphertext, len(cta))
	parallel.ForEach(workers, len(cta), func(j int) {
		sum[j] = sch.Add(cta[j], ctb[j])
	})
	return SumState{
		CTs:   sum,
		Omega: new(big.Int).Add(oa, ob),
		Epoch: max(a.Epoch, b.Epoch) + 1,
	}
}

// AddEncryptedState homomorphically adds E(v_j · st.Omega) into st.CTs
// in place — the "encrypted perturbation" of Algorithm 3 line 7 shape,
// shifting the decoded estimate by exactly v.
func AddEncryptedState(sch homenc.Scheme, st SumState, v []*big.Int, workers int) error {
	if len(v) != len(st.CTs) {
		return errors.New("eesum: dimension mismatch")
	}
	parallel.ForEach(workers, len(st.CTs), func(j int) {
		scaled := new(big.Int).Mul(v[j], st.Omega)
		st.CTs[j] = sch.Add(st.CTs[j], sch.Encrypt(scaled))
	})
	return nil
}

// PerturbState adds the noise state's ciphertexts element-wise into the
// means state (Algorithm 3 line 7: M.s = M.s +h N.s). Both states must
// have run in lockstep on the same exchanges, so their weights and
// epochs agree and the ciphertexts add directly.
func PerturbState(sch homenc.Scheme, means, noise SumState) error {
	if len(means.CTs) != len(noise.CTs) {
		return errors.New("eesum: dimension mismatch between means and noise")
	}
	if means.Omega.Cmp(noise.Omega) != 0 || means.Epoch != noise.Epoch {
		return errors.New("eesum: means and noise states not in lockstep")
	}
	for j := range means.CTs {
		means.CTs[j] = sch.Add(means.CTs[j], noise.CTs[j])
	}
	return nil
}

// DecodeState decodes a decrypted plaintext vector of a SumState using
// its weight, centering residues into the plaintext space first.
func DecodeState(sch homenc.Scheme, codec homenc.Codec, ms []*big.Int, omega *big.Int) ([]float64, error) {
	if omega == nil || omega.Sign() == 0 {
		return nil, errors.New("eesum: zero weight; estimate undefined")
	}
	out := make([]float64, len(ms))
	for j, m := range ms {
		out[j] = codec.Decode(homenc.Centered(m, sch.PlaintextSpace()), omega)
	}
	return out, nil
}

// DecodePackedState is DecodeState for a packed SumState: the decrypted
// plaintexts are centered, split into their dim slot values, and each
// slot decoded with the weight. With pc.Slots == 1 it is exactly
// DecodeState over dim plaintexts.
func DecodePackedState(sch homenc.Scheme, pc homenc.PackedCodec, ms []*big.Int, omega *big.Int, dim int) ([]float64, error) {
	if omega == nil || omega.Sign() == 0 {
		return nil, errors.New("eesum: zero weight; estimate undefined")
	}
	centered := make([]*big.Int, len(ms))
	for j, m := range ms {
		centered[j] = homenc.Centered(m, sch.PlaintextSpace())
	}
	slots, err := pc.Unpack(centered, dim)
	if err != nil {
		return nil, err
	}
	out := make([]float64, dim)
	for j, m := range slots {
		out[j] = pc.Codec.Decode(m, omega)
	}
	return out, nil
}

// DimWorkers gates a per-dimension worker count the way the in-memory
// protocols do: vectors too short to amortize the fan-out run serial.
func DimWorkers(dim, workers int) int {
	if dim < minParallelDim || workers < 1 {
		return 1
	}
	return workers
}

// --- Epidemic decryption transitions (Section 4.2.3) ---

// DecAdopts reports whether the side holding gathered shares `mine`
// adopts the peer state holding `theirs` — the latency optimization of
// Section 4.2.3: the less advanced side erases its partially-decrypted
// state and takes over the more advanced side's wholesale. Ties adopt
// nothing.
func DecAdopts(mine, theirs int) bool { return theirs > mine }

// DecNeeds reports whether a state with the given gathered partials
// still wants key-share idx: below the threshold and not yet present.
func DecNeeds(parts map[int][]homenc.PartialDecryption, threshold, idx int) bool {
	if len(parts) >= threshold {
		return false
	}
	_, dup := parts[idx]
	return !dup
}

// DecPartials computes key-share idx's partial decryption of every
// element of cts — the unit of work one participant contributes to a
// peer's (or its own) decryption state.
func DecPartials(sch homenc.Scheme, idx int, cts []homenc.Ciphertext, workers int) ([]homenc.PartialDecryption, error) {
	ps := make([]homenc.PartialDecryption, len(cts))
	var firstErr error
	var mu sync.Mutex
	parallel.ForEach(workers, len(cts), func(j int) {
		p, err := sch.PartialDecrypt(idx, cts[j])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		ps[j] = p
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return ps, nil
}

// CopyParts copies a gathered-partials map, capped at threshold entries
// (the adopting side never needs more than τ distinct shares). The cap
// keeps the lowest share indices: truncating by map iteration order
// would make which shares survive — and every downstream state —
// nondeterministic across runs of the same seed.
func CopyParts(parts map[int][]homenc.PartialDecryption, threshold int) map[int][]homenc.PartialDecryption {
	dst := make(map[int][]homenc.PartialDecryption, threshold)
	if len(parts) <= threshold {
		//lint:orderfree whole-map copy into a map: every entry lands regardless of order
		for k, v := range parts {
			dst[k] = v
		}
		return dst
	}
	for _, k := range sortedKeys(parts) {
		if len(dst) == threshold {
			break
		}
		dst[k] = parts[k]
	}
	return dst
}

// sortedKeys returns a map's keys in ascending order — the deterministic
// iteration order for any truncation decision.
func sortedKeys[V any, K ~int | ~int32](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// CombineParts combines τ gathered partial-decryption vectors into the
// plaintext vector of cts. parts maps share index to per-element
// partials; threshold distinct shares must be present.
func CombineParts(sch homenc.Scheme, cts []homenc.Ciphertext, parts map[int][]homenc.PartialDecryption, threshold, workers int) ([]*big.Int, error) {
	if len(parts) < threshold {
		return nil, errors.New("eesum: decryption incomplete")
	}
	out := make([]*big.Int, len(cts))
	// Select which τ shares combine over ascending share ids, never map
	// order: the plaintext is share-set independent, but the combining
	// subset must not vary across runs of the same seed.
	order := sortedKeys(parts)
	if len(order) > threshold {
		order = order[:threshold]
	}
	var mu sync.Mutex
	var firstErr error
	parallel.ForEach(workers, len(cts), func(j int) {
		ps := make([]homenc.PartialDecryption, 0, threshold)
		for _, k := range order {
			ps = append(ps, parts[k][j])
		}
		m, err := sch.Combine(cts[j], ps)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		out[j] = m
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// --- Noise streams (Section 4.2.2) ---

// NodeNoiseStreams derives the per-participant noise RNG streams from
// the protocol's base source: stream i is Split(i), drawn in node order.
// The derivation consumes a data-independent amount of the base source
// (two values per node), so every participant of a networked deployment
// holding the shared seed derives the identical stream family and keeps
// only its own — while the simulator materializes all of them.
func NodeNoiseStreams(rng *randx.RNG, n int) []*randx.RNG {
	out := make([]*randx.RNG, n)
	for i := range out {
		out[i] = rng.Split(uint64(i))
	}
	return out
}

// NoiseShareVector draws one participant's noise-share vector
// (Definition 5) from its stream: one ν = G1 − G2 per protocol variable.
func NoiseShareVector(stream *randx.RNG, cfg NoiseConfig) []float64 {
	vec := make([]float64, cfg.Dim())
	for j := range vec {
		vec[j] = stream.NoiseShare(cfg.NShares, cfg.Lambdas[j])
	}
	return vec
}

// CorrectionProposal draws one participant's surplus-correction proposal
// (Section 4.2.2) from its stream: if the epidemic counter estimates
// more than nν contributors, the surplus noise-shares are re-drawn and
// summed into a correction vector tagged with a random identifier for
// the min-identifier dissemination. A participant without a defined
// counter estimate proposes the identity correction under the worst
// identifier (it loses every dissemination comparison).
func CorrectionProposal(stream *randx.RNG, cfg NoiseConfig, counterEst float64, ok bool) (uint64, []float64) {
	if !ok {
		return ^uint64(0), make([]float64, cfg.Dim())
	}
	surplus := int(counterEst+0.5) - cfg.NShares
	vec := make([]float64, cfg.Dim())
	for extra := 0; extra < surplus; extra++ {
		for j := 0; j < cfg.Dim(); j++ {
			vec[j] += stream.NoiseShare(cfg.NShares, cfg.Lambdas[j])
		}
	}
	return stream.Uint64(), vec
}
