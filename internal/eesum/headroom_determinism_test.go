package eesum

import (
	"math/big"
	"testing"

	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
)

// TestHeadroomExchangesExactPowerOfTwo pins the corrected boundary: when
// half(space)/bound is an exact power of two, the epoch that scales the
// bound to exactly half the space is unsafe and must not be counted.
// The old q.BitLen()-1 logic returned one epoch too many here.
func TestHeadroomExchangesExactPowerOfTwo(t *testing.T) {
	// space 16 → half 8, bound 1: 1·2^2 = 4 < 8 but 1·2^3 = 8 ≮ 8.
	sch, err := plain.New(big.NewInt(16), 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSum(sch, [][]*big.Int{{big.NewInt(1)}, {big.NewInt(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h := s.HeadroomExchanges(big.NewInt(1)); h != 2 {
		t.Errorf("HeadroomExchanges(bound=1, space=16) = %d, want 2 (3 scales to exactly half the space)", h)
	}
	// The same boundary at protocol-sized numbers: space 2^64, bound
	// 2^13 → exactly 49 safe epochs (2^13·2^50 = 2^63 = half).
	big64, err := plain.New(new(big.Int).Lsh(big.NewInt(1), 64), 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSum(big64, [][]*big.Int{{big.NewInt(1)}, {big.NewInt(1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h := s2.HeadroomExchanges(new(big.Int).Lsh(big.NewInt(1), 13)); h != 49 {
		t.Errorf("HeadroomExchanges(bound=2^13, space=2^64) = %d, want 49", h)
	}
}

// latencyCounts runs the exact-mode decryption latency model for the
// given cycles and returns every node's share count after each cycle.
func latencyCounts(t *testing.T, n, tau, cycles int, seed uint64) [][]int32 {
	t.Helper()
	rng := randx.New(seed, 0xDEC)
	dl, err := NewDecryptionLatency(n, tau, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{N: n, Seed: seed + 1}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int32, cycles)
	for c := 0; c < cycles; c++ {
		e.RunCycle(dl.Exchange)
		snap := make([]int32, n)
		for i := 0; i < n; i++ {
			snap[i] = dl.count[i]
			if dl.Done(i) {
				snap[i] = int32(tau) // normalize: done is done
			}
		}
		out[c] = snap
	}
	return out
}

// TestDecryptionLatencyExactModeReproducible pins the determinism fix in
// DecryptionLatency.adopt: two exact-mode runs at the same seed must
// produce identical per-node share counts at every cycle — the
// bit-per-seed reproducibility the Figure 4(b) experiment relies on.
// Threshold-sized adopted sets are where map-iteration-order truncation
// would bite, so τ is kept small relative to the cycle count.
func TestDecryptionLatencyExactModeReproducible(t *testing.T) {
	const n, tau, cycles = 200, 12, 16
	want := latencyCounts(t, n, tau, cycles, 77)
	for rep := 0; rep < 3; rep++ {
		got := latencyCounts(t, n, tau, cycles, 77)
		for c := range want {
			for i := range want[c] {
				if got[c][i] != want[c][i] {
					t.Fatalf("rep %d cycle %d node %d: count %d, want %d — exact mode not reproducible",
						rep, c, i, got[c][i], want[c][i])
				}
			}
		}
	}
}

// TestDecryptionLatencyAdoptDeterministic drives adopt directly with an
// over-full source set (the defensive case the truncation exists for)
// and checks the survivors are the smallest share ids, not map order.
func TestDecryptionLatencyAdoptDeterministic(t *testing.T) {
	const n, tau = 8, 3
	for rep := 0; rep < 20; rep++ {
		rng := randx.New(5, 5)
		dl, err := NewDecryptionLatency(n, tau, true, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Hand node 1 a set larger than τ (cannot arise through the
		// public transitions, which cap at τ — adopt must still
		// truncate deterministically rather than by map order).
		dl.sets[1] = map[int32]struct{}{6: {}, 2: {}, 5: {}, 0: {}, 7: {}}
		dl.count[1] = int32(len(dl.sets[1]))
		dl.adopt(0, 1)
		for _, want := range []int32{0, 2, 5} {
			if _, ok := dl.sets[0][want]; !ok {
				t.Fatalf("rep %d: adopted set %v, want the smallest ids {0,2,5}", rep, dl.sets[0])
			}
		}
		if len(dl.sets[0]) != tau {
			t.Fatalf("rep %d: adopted set has %d entries, want %d", rep, len(dl.sets[0]), tau)
		}
	}
}
