package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestVerdictsDeterministic pins the determinism contract: two
// injectors built from the same plan make identical decisions for the
// same (pair, attempt) sequence, regardless of the order pairs are
// exercised in.
func TestVerdictsDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, RefuseProb: 0.3, PartitionProb: 0.2, CutProb: 0.2, LatencyMax: 5 * time.Millisecond}
	a, b := New(plan), New(plan)

	type probe struct{ from, to int }
	order1 := []probe{{0, 1}, {0, 1}, {2, 3}, {0, 1}, {2, 3}, {5, 0}, {0, 1}}
	// The same attempts, interleaved differently across pairs.
	order2 := []probe{{2, 3}, {0, 1}, {5, 0}, {0, 1}, {0, 1}, {2, 3}, {0, 1}}

	got := map[probe][]verdict{}
	for _, p := range order1 {
		got[p] = append(got[p], a.decide(p.from, p.to))
	}
	want := map[probe][]verdict{}
	for _, p := range order2 {
		want[p] = append(want[p], b.decide(p.from, p.to))
	}
	for p, vs := range got {
		for i, v := range vs {
			if want[p][i] != v {
				t.Fatalf("pair %v attempt %d: %+v vs %+v across interleavings", p, i, v, want[p][i])
			}
		}
	}
}

// TestSeedsDiffer sanity-checks that distinct seeds actually produce
// distinct fault schedules (no accidental seed-independence).
func TestSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) []verdict {
		in := New(Plan{Seed: seed, RefuseProb: 0.5, CutProb: 0.5})
		out := make([]verdict, 0, 64)
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i != j {
					out = append(out, in.decide(i, j))
				}
			}
		}
		return out
	}
	a, b := mk(1), mk(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault schedules")
	}
}

// TestMaxStreakForcesCleanAttempt pins the liveness guard: even under
// certain-fault probabilities, no directed pair sees more than
// MaxStreak consecutive faulted attempts.
func TestMaxStreakForcesCleanAttempt(t *testing.T) {
	in := New(Plan{Seed: 7, RefuseProb: 1.0, MaxStreak: 2})
	streak := 0
	for i := 0; i < 50; i++ {
		v := in.decide(3, 4)
		if v.refuse || v.partition || v.cutAfter >= 0 {
			streak++
			if streak > 2 {
				t.Fatalf("attempt %d: streak of %d exceeds MaxStreak 2", i, streak)
			}
		} else {
			streak = 0
		}
	}
}

// TestRefusalAndPartitionErrors checks the dial-level fault shapes:
// both are ErrInjected, a refusal is immediate, a partition burns the
// configured delay, and the pair heals after PartitionAttempts dials.
func TestRefusalAndPartitionErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	in := New(Plan{Seed: 1, PartitionProb: 1.0, PartitionAttempts: 2, PartitionDelay: 30 * time.Millisecond, MaxStreak: -1})
	nf := in.Node(0)
	for attempt := 0; attempt < 2; attempt++ {
		start := time.Now()
		_, err := nf.Dial(1, ln.Addr().String(), time.Second)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("partitioned dial %d: err = %v, want ErrInjected", attempt, err)
		}
		if d := time.Since(start); d < 25*time.Millisecond {
			t.Fatalf("partitioned dial %d returned in %s, want the blackhole delay", attempt, d)
		}
	}
	// The partition window is spent: the pair heals.
	conn, err := nf.Dial(1, ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("healed dial: %v", err)
	}
	_ = conn.Close()

	refuser := New(Plan{Seed: 9, RefuseProb: 1.0, MaxStreak: -1}).Node(2)
	start := time.Now()
	_, err = refuser.Dial(3, ln.Addr().String(), time.Second)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("refused dial: err = %v, want ErrInjected", err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("refusal took %s, want immediate", d)
	}
}

// TestMembershipDialsPassThrough pins the determinism note: peer < 0
// (membership traffic) is never faulted, even under certain-fault
// probabilities.
func TestMembershipDialsPassThrough(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			_ = c.Close()
		}
	}()
	nf := New(Plan{Seed: 3, RefuseProb: 1.0, CutProb: 1.0, MaxStreak: -1}).Node(0)
	conn, err := nf.Dial(-1, ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("membership dial faulted: %v", err)
	}
	_ = conn.Close()
}

// TestCutConnEmitsPartialFrame checks the mid-frame cut shape: the
// writer sees ErrInjected once its byte budget is crossed, the peer
// receives exactly the partial prefix, and the connection is dead.
func TestCutConnEmitsPartialFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf, _ := io.ReadAll(c)
		received <- buf
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fc := &faultConn{Conn: raw, cutAfter: 10}
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write: err = %v, want ErrInjected", err)
	}
	if n != 10 {
		t.Fatalf("cut write reported %d bytes, want the 10-byte budget", n)
	}
	if _, err := fc.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after cut: err = %v, want ErrInjected", err)
	}
	select {
	case got := <-received:
		if len(got) != 10 {
			t.Fatalf("peer received %d bytes, want the 10-byte partial frame", len(got))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never saw the connection die")
	}
}

// TestCrashesAtSlotKeyed pins that crash decisions replay per exchange
// slot: the same coordinates always crash (a dead participant stays
// dead across retries), and the decision is independent of attempt
// ordinals consumed elsewhere.
func TestCrashesAtSlotKeyed(t *testing.T) {
	in := New(Plan{Seed: 11, CrashProb: 0.5})
	// Find a crashing slot.
	var self, leg, phase, iter, cycle, seq int
	found := false
	for s := 0; s < 8 && !found; s++ {
		for q := 0; q < 20 && !found; q++ {
			if in.CrashesAt(s, LegFinProbe, 0, 1, 2, q) {
				self, leg, phase, iter, cycle, seq = s, LegFinProbe, 0, 1, 2, q
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no crashing slot at p=0.5 over 160 probes (decision space broken?)")
	}
	for i := 0; i < 5; i++ {
		in.decide(0, 1) // burn unrelated attempt ordinals
		if !in.CrashesAt(self, leg, phase, iter, cycle, seq) {
			t.Fatalf("slot stopped crashing on re-query %d", i)
		}
	}
}

// LegFinProbe mirrors the node runtime's fin-leg constant without
// importing it (faultnet must stay import-light under the node).
const LegFinProbe = 2
