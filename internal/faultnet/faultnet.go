// Package faultnet is a seeded, deterministic fault-injection layer for
// the networked Chiaroscuro runtime. It wraps a node's dialer and the
// net.Conns it produces, injecting the failure modes a hostile
// deployment network exhibits — connection refusals, added latency,
// mid-frame connection cuts, asymmetric partitions, and crash-at-leg
// decisions generalizing the node runtime's fin-leg test hook — all
// driven by a reproducible per-seed fault plan.
//
// Determinism model. Every fault decision is a pure function of
// (plan seed, directed pair, per-pair attempt ordinal): the injector
// never keeps a shared RNG stream whose consumption order could depend
// on goroutine interleaving. A node's exchange dials to one peer happen
// strictly in schedule order on its main protocol loop, so the attempt
// ordinals — and with them every refusal, partition window, latency
// draw and cut point — replay identically across runs of the same seed.
// Membership traffic (hello/view gossip, peer < 0) is passed through
// unfaulted: its dial counts are timing-dependent and would poison the
// ordinals.
//
// Liveness guarantee. MaxStreak bounds how many consecutive dial
// attempts of one directed pair may fault: after MaxStreak faulted
// attempts the next one is forced clean. A retry policy allowing at
// least MaxStreak retries therefore completes every scheduled exchange,
// which is what lets a chaos run keep the simulator's completed-exchange
// trace — and release bit-identical centroids.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrInjected marks every artificial failure the injector produces, so
// tests and the soak harness can tell injected faults from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Plan is a reproducible fault plan. Probabilities are per dial attempt
// (refusals, cuts), per directed pair (partitions), or per exchange
// slot (crashes); the zero value injects nothing.
type Plan struct {
	// Seed drives every fault decision. Two injectors with equal plans
	// make identical decisions.
	Seed uint64

	// RefuseProb refuses a dial attempt outright (the ECONNREFUSED
	// shape: the failure is immediate, never a burned deadline).
	RefuseProb float64

	// PartitionProb marks a directed pair (from → to) partitioned. A
	// partitioned pair blackholes its first PartitionAttempts dials —
	// the dial hangs for PartitionDelay, then fails — and heals
	// afterwards. Directions are independent: from → to can be dark
	// while to → from is clean, the asymmetric-partition shape.
	PartitionProb float64
	// PartitionAttempts is how many dials a partition blocks before
	// healing (default 2).
	PartitionAttempts int
	// PartitionDelay is the scaled-down SYN-timeout a blackholed dial
	// burns before failing (default 25ms, capped at the dial timeout).
	PartitionDelay time.Duration

	// CutProb cuts a connection mid-frame: a deterministic byte budget
	// is drawn for the attempt, and the first write crossing it sends a
	// partial frame and kills the connection.
	CutProb float64

	// LatencyMax adds a per-attempt deterministic latency in
	// [0, LatencyMax) before every frame write on the connection.
	LatencyMax time.Duration

	// CrashProb crashes an exchange at one of its send legs: the leg is
	// never written and the connection dies silently, reproducing a
	// participant dying at exactly that point (the generalization of
	// the node runtime's fin-leg test hook). Decisions are keyed per
	// exchange slot, not per attempt: a crashed slot stays crashed.
	CrashProb float64

	// MaxStreak forces a clean dial after this many consecutive faulted
	// attempts on one directed pair (default 2; negative disables the
	// guard and with it the liveness guarantee).
	MaxStreak int
}

// withDefaults normalizes the zero-value knobs.
func (p Plan) withDefaults() Plan {
	if p.PartitionAttempts == 0 {
		p.PartitionAttempts = 2
	}
	if p.PartitionDelay == 0 {
		p.PartitionDelay = 25 * time.Millisecond
	}
	if p.MaxStreak == 0 {
		p.MaxStreak = 2
	}
	return p
}

// Injector materializes a Plan: it hands every node of a population a
// dialer and a crash hook wired to the shared decision space. Safe for
// concurrent use by all nodes of the population.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	pairs map[pair]*pairState
}

type pair struct{ from, to int }

// pairState orders one directed pair's dial attempts and tracks its
// consecutive-fault streak for the MaxStreak liveness guard.
type pairState struct {
	attempt int
	streak  int
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan.withDefaults(), pairs: make(map[pair]*pairState)}
}

// Seed returns the plan seed, for reproduction logging.
func (in *Injector) Seed() uint64 { return in.plan.Seed }

// --- deterministic decision space ---

// mix is SplitMix64: a bijective avalanche over a decision key. Every
// fault decision bottoms out here.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a decision key to [0, 1).
func unit(key uint64) float64 {
	return float64(mix(key)>>11) / (1 << 53)
}

// key builds a decision key from the seed, a fault-kind tag and up to
// four coordinates.
func (in *Injector) key(tag uint64, a, b, c, d int) uint64 {
	k := mix(in.plan.Seed ^ tag)
	k = mix(k ^ uint64(int64(a)))
	k = mix(k ^ uint64(int64(b)))
	k = mix(k ^ uint64(int64(c)))
	return mix(k ^ uint64(int64(d)))
}

// Fault-kind tags (arbitrary distinct constants).
const (
	tagRefuse uint64 = 0xA1
	tagPart   uint64 = 0xB2
	tagCut    uint64 = 0xC3
	tagLat    uint64 = 0xD4
	tagCrash  uint64 = 0xE5
)

// verdict is the fault outcome of one dial attempt.
type verdict struct {
	refuse    bool
	partition bool
	cutAfter  int64 // bytes until the mid-frame cut (<0: never)
	latency   time.Duration
}

// decide computes the attempt's verdict and advances the pair's streak
// accounting.
func (in *Injector) decide(from, to int) verdict {
	in.mu.Lock()
	ps, ok := in.pairs[pair{from, to}]
	if !ok {
		ps = &pairState{}
		in.pairs[pair{from, to}] = ps
	}
	attempt := ps.attempt
	ps.attempt++
	streak := ps.streak
	in.mu.Unlock()

	v := verdict{cutAfter: -1}
	guard := in.plan.MaxStreak >= 0 && streak >= in.plan.MaxStreak
	if !guard {
		// Partition: a pair-level property consuming the pair's first
		// PartitionAttempts dials.
		if in.plan.PartitionProb > 0 && attempt < in.plan.PartitionAttempts &&
			unit(in.key(tagPart, from, to, 0, 0)) < in.plan.PartitionProb {
			v.partition = true
		}
		if !v.partition && in.plan.RefuseProb > 0 &&
			unit(in.key(tagRefuse, from, to, attempt, 0)) < in.plan.RefuseProb {
			v.refuse = true
		}
		if !v.partition && !v.refuse && in.plan.CutProb > 0 &&
			unit(in.key(tagCut, from, to, attempt, 1)) < in.plan.CutProb {
			// Cut somewhere in the first KB: always mid-frame for every
			// protocol message (the smallest frame is 14 bytes).
			v.cutAfter = 1 + int64(unit(in.key(tagCut, from, to, attempt, 2))*1024)
		}
	}
	if in.plan.LatencyMax > 0 {
		v.latency = time.Duration(unit(in.key(tagLat, from, to, attempt, 0)) * float64(in.plan.LatencyMax))
	}

	in.mu.Lock()
	if v.refuse || v.partition || v.cutAfter >= 0 {
		ps.streak = streak + 1
	} else {
		ps.streak = 0
	}
	in.mu.Unlock()
	return v
}

// CrashesAt reports whether the plan crashes node self's send at the
// given exchange-slot coordinates (leg ∈ {0 req, 1 resp, 2 fin}). The
// decision is slot-keyed: retries of a crashed slot crash again, as a
// genuinely dead participant would.
func (in *Injector) CrashesAt(self, leg, phase, iter, cycle, seq int) bool {
	if in.plan.CrashProb <= 0 {
		return false
	}
	k := in.key(tagCrash, self, leg, phase, iter)
	k = mix(k ^ uint64(int64(cycle)))
	k = mix(k ^ uint64(int64(seq)))
	return unit(k) < in.plan.CrashProb
}

// DialFunc is the underlying transport a NodeFaults injects faults on
// top of — the same shape as the node runtime's Dialer.Dial.
type DialFunc func(peer int, addr string, timeout time.Duration) (net.Conn, error)

// NodeFaults is the per-node face of the injector: a dialer (matching
// the node runtime's Dialer surface) and a crash hook.
type NodeFaults struct {
	in   *Injector
	self int
	dial DialFunc // nil: plain TCP
}

// Node returns the fault surface for one participant index.
func (in *Injector) Node(self int) *NodeFaults {
	return &NodeFaults{in: in, self: self}
}

// WithTransport returns a copy of nf whose clean connections come from
// dial instead of plain TCP — the fault verdicts (refuse, partition,
// latency, cut) are layered on top unchanged. This is how a virtual
// population runs chaos plans over in-process pipes: same decisions at
// the same attempt ordinals, no kernel sockets.
func (nf *NodeFaults) WithTransport(dial DialFunc) *NodeFaults {
	return &NodeFaults{in: nf.in, self: nf.self, dial: dial}
}

// connect is the fault-free underlying dial.
func (nf *NodeFaults) connect(peer int, addr string, timeout time.Duration) (net.Conn, error) {
	if nf.dial != nil {
		return nf.dial(peer, addr, timeout)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// Dial dials addr under the plan's faults. peer is the destination's
// population index; membership dials (peer < 0) pass through unfaulted
// (see the package determinism note).
func (nf *NodeFaults) Dial(peer int, addr string, timeout time.Duration) (net.Conn, error) {
	if peer < 0 {
		return nf.connect(peer, addr, timeout)
	}
	v := nf.in.decide(nf.self, peer)
	if v.refuse {
		return nil, fmt.Errorf("%w: dial %d→%d refused", ErrInjected, nf.self, peer)
	}
	if v.partition {
		delay := nf.in.plan.PartitionDelay
		if timeout > 0 && delay > timeout {
			delay = timeout
		}
		time.Sleep(delay)
		return nil, fmt.Errorf("%w: dial %d→%d blackholed (partition)", ErrInjected, nf.self, peer)
	}
	conn, err := nf.connect(peer, addr, timeout)
	if err != nil {
		return nil, err
	}
	if v.cutAfter < 0 && v.latency == 0 {
		return conn, nil
	}
	return &faultConn{Conn: conn, latency: v.latency, cutAfter: v.cutAfter}, nil
}

// Crash implements the node runtime's crash-at-leg hook shape.
func (nf *NodeFaults) Crash(leg, phase, iter, cycle, seq int) bool {
	return nf.in.CrashesAt(nf.self, leg, phase, iter, cycle, seq)
}

// faultConn wraps one connection with the attempt's write latency and
// mid-frame byte budget. Reads pass through: the peer's own faultConn
// (or a genuine failure) shapes that direction.
type faultConn struct {
	net.Conn
	mu       sync.Mutex
	latency  time.Duration
	cutAfter int64 // remaining write bytes before the cut (<0: never)
	cut      bool
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.latency > 0 {
		time.Sleep(c.latency)
	}
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: connection already cut", ErrInjected)
	}
	if c.cutAfter < 0 || int64(len(p)) <= c.cutAfter {
		if c.cutAfter >= 0 {
			c.cutAfter -= int64(len(p))
		}
		c.mu.Unlock()
		return c.Conn.Write(p)
	}
	// The cut lands inside this write: emit the partial frame, then
	// kill the connection so both ends see it die mid-message.
	keep := c.cutAfter
	c.cut = true
	c.mu.Unlock()
	n, _ := c.Conn.Write(p[:keep])
	_ = c.Conn.Close()
	return n, fmt.Errorf("%w: connection cut mid-frame after %d bytes", ErrInjected, keep)
}
