package core

import (
	"testing"

	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/timeseries"
)

func honestViews(n, k int) [][]timeseries.Series {
	views := make([][]timeseries.Series, n)
	for i := range views {
		view := make([]timeseries.Series, k)
		for c := 0; c < k; c++ {
			view[c] = timeseries.Series{float64(c), float64(c) * 2}
		}
		views[i] = view
	}
	return views
}

func TestDetectDeviantsHonest(t *testing.T) {
	views := honestViews(9, 3)
	if got := DetectDeviants(views, 1e-6); got != nil {
		t.Errorf("honest views flagged: %v", got)
	}
	if got := DetectDeviants(nil, 1); got != nil {
		t.Errorf("empty views flagged: %v", got)
	}
}

func TestDetectDeviantsValueLiar(t *testing.T) {
	views := honestViews(9, 3)
	views[4][1] = timeseries.Series{100, 100} // lies about centroid 1
	got := DetectDeviants(views, 0.5)
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("deviants = %v, want [4]", got)
	}
}

func TestDetectDeviantsLivenessLiar(t *testing.T) {
	views := honestViews(7, 2)
	views[2][0] = nil // claims a live centroid is lost
	got := DetectDeviants(views, 0.5)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("deviants = %v, want [2]", got)
	}
	// And the converse: everyone says lost, one claims alive.
	views2 := honestViews(7, 2)
	for i := range views2 {
		views2[i][1] = nil
	}
	views2[5][1] = timeseries.Series{1, 1}
	got2 := DetectDeviants(views2, 0.5)
	if len(got2) != 1 || got2[0] != 5 {
		t.Errorf("deviants = %v, want [5]", got2)
	}
}

func TestDetectDeviantsToleratesGossipError(t *testing.T) {
	// Honest participants differ by tiny gossip approximation error;
	// tolerance must absorb it.
	views := honestViews(8, 2)
	for i := range views {
		views[i][0] = timeseries.Series{0 + float64(i)*1e-7, 0}
	}
	if got := DetectDeviants(views, 1e-3); got != nil {
		t.Errorf("gossip-level noise flagged: %v", got)
	}
}

func TestDetectDeviantsMinorityLiars(t *testing.T) {
	// Up to a minority of coordinated liars cannot displace the median
	// consensus: all three are flagged, no honest node is.
	views := honestViews(9, 2)
	for _, liar := range []int{1, 4, 7} {
		views[liar][0] = timeseries.Series{-50, -50}
	}
	got := DetectDeviants(views, 0.5)
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 7 {
		t.Errorf("deviants = %v, want [1 4 7]", got)
	}
}

func TestDeviantDetectionEndToEnd(t *testing.T) {
	// Full protocol with a tampering participant injected between
	// decryption and the Section 4.4 cross-check.
	const np, n, k = 24, 4, 2
	data, centers := blobs(np, n, k, 71)
	sch, err := plain.New(nil, 256, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 2,
		Exchanges:     25,
		Seed:          72,

		DeviantTolerance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.tamper = func(views [][]timeseries.Series) {
		if views[7][0] != nil {
			views[7][0] = timeseries.Series{999, 999, 999, 999}
		}
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		if len(tr.Deviants) != 1 || tr.Deviants[0] != 7 {
			t.Errorf("iteration %d: deviants = %v, want [7]", tr.Iteration, tr.Deviants)
		}
	}
}

func TestDeviantDetectionHonestRun(t *testing.T) {
	const np, n, k = 16, 4, 2
	data, centers := blobs(np, n, k, 73)
	sch, err := plain.New(nil, 256, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 2,
		Exchanges:     25,
		Seed:          74,

		DeviantTolerance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		if len(tr.Deviants) != 0 {
			t.Errorf("iteration %d: honest run flagged %v", tr.Iteration, tr.Deviants)
		}
	}
}
