package core

import (
	"math"
	"math/big"
	"testing"

	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
	"chiaroscuro/internal/timeseries"
)

// blobs builds np series of length n around nBlobs well-separated
// centers, plus the centers themselves (ground truth).
func blobs(np, n, nBlobs int, seed uint64) (*timeseries.Dataset, []timeseries.Series) {
	rng := randx.New(seed, seed)
	centers := make([]timeseries.Series, nBlobs)
	for b := range centers {
		c := make(timeseries.Series, n)
		for j := range c {
			c[j] = float64(10 + 20*b)
		}
		centers[b] = c
	}
	d := timeseries.NewDataset(n)
	for i := 0; i < np; i++ {
		c := centers[i%nBlobs]
		row := make(timeseries.Series, n)
		for j := range row {
			row[j] = c[j] + rng.Gaussian(0, 0.5)
		}
		d.Append(row)
	}
	return d, centers
}

// offSeeds returns data-independent seeds displaced from the truth.
func offSeeds(centers []timeseries.Series, off float64) []timeseries.Series {
	out := make([]timeseries.Series, len(centers))
	for i, c := range centers {
		s := c.Clone()
		for j := range s {
			s[j] += off
		}
		out[i] = s
	}
	return out
}

func TestProtocolMatchesCentralizedLowNoise(t *testing.T) {
	// With a huge ε the DP noise is negligible and the fully distributed
	// protocol must land on the same centroids as centralized k-means,
	// up to gossip approximation error.
	const np, n, k = 32, 6, 2
	data, centers := blobs(np, n, k, 51)
	seeds := offSeeds(centers, 3)
	sch, err := plain.New(nil, 256, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: seeds,
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 3,
		Exchanges:     25,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := kmeans.Run(data, kmeans.Config{
		InitCentroids: seeds, MaxIterations: 3, Threshold: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != len(ref.Centroids) {
		t.Fatalf("protocol kept %d centroids, centralized %d", len(res.Centroids), len(ref.Centroids))
	}
	for c := range res.Centroids {
		if d := res.Centroids[c].Dist(ref.Centroids[c]); d > 0.05 {
			t.Errorf("centroid %d: protocol %.4v vs centralized %.4v (dist %v)",
				c, res.Centroids[c], ref.Centroids[c], d)
		}
	}
	if res.TotalEpsilon > 1e6 {
		t.Errorf("budget exceeded: %v", res.TotalEpsilon)
	}
	if res.AvgMessages <= 0 {
		t.Error("no messages accounted")
	}
}

func TestParticipantsAgree(t *testing.T) {
	// The unicity argument of Section 4.2.3: all participants' decoded
	// centroids must agree up to gossip error.
	const np, n, k = 24, 4, 2
	data, centers := blobs(np, n, k, 52)
	sch, err := plain.New(nil, 256, np, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 2,
		Exchanges:     25,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		if tr.Agreement > 0.01 {
			t.Errorf("iteration %d: cross-participant disagreement %v", tr.Iteration, tr.Agreement)
		}
	}
}

func TestProtocolWithRealCrypto(t *testing.T) {
	// Full end-to-end with genuine threshold Damgård–Jurik: 10
	// participants, one key-share each, threshold 4, degree s=3 for
	// plaintext headroom.
	const np, n, k = 10, 4, 2
	data, centers := blobs(np, n, k, 53)
	sch, err := damgardjurik.NewTestScheme(128, 3, np, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6, // negligible noise: this test checks the crypto path
		MaxIterations: 2,
		Exchanges:     15,
		FracBits:      24,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != k {
		t.Fatalf("kept %d centroids, want %d", len(res.Centroids), k)
	}
	// Centroids must sit near the true blob centers.
	for c, ctr := range res.Centroids {
		want := centers[c]
		if d := ctr.Dist(want); d > 1.5 {
			t.Errorf("centroid %d = %.3v, want near %.3v (dist %v)", c, ctr, want, d)
		}
	}
	for _, tr := range res.Traces {
		if tr.Agreement > 0.01 {
			t.Errorf("iteration %d: disagreement %v with real crypto", tr.Iteration, tr.Agreement)
		}
	}
}

func TestDPNoiseActuallyApplied(t *testing.T) {
	// With a small ε the released centroids must differ measurably from
	// the exact means: privacy is not free.
	const np, n, k = 32, 6, 2
	data, centers := blobs(np, n, k, 54)
	seeds := offSeeds(centers, 1)
	run := func(eps float64) []timeseries.Series {
		sch, err := plain.New(nil, 256, np, 3)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := NewNetwork(data, sch, Config{
			K:             k,
			InitCentroids: seeds,
			DMin:          0, DMax: 60,
			Epsilon:       eps,
			MaxIterations: 1,
			Exchanges:     25,
			Seed:          4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Centroids
	}
	noisy := run(math.Ln2)
	clean := run(1e9)
	if len(noisy) == 0 {
		t.Skip("all centroids lost under noise at this tiny scale; acceptable")
	}
	var moved float64
	for c := range noisy {
		if c < len(clean) {
			moved += noisy[c].Dist(clean[c])
		}
	}
	if moved < 1e-3 {
		t.Errorf("ε=ln2 centroids identical to ε=1e9 centroids; noise path inert")
	}
}

func TestProtocolUnderChurn(t *testing.T) {
	const np, n, k = 40, 4, 2
	data, centers := blobs(np, n, k, 55)
	sch, err := plain.New(nil, 256, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 2,
		Exchanges:     40, // more cycles to absorb 25% churn
		Seed:          5,
		Churn:         0.25,
		MidFailure:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Correctness under churn (Section 2.3): terminates, >= 1 centroid.
	if len(res.Centroids) == 0 {
		t.Fatal("churn destroyed all centroids")
	}
	for c, ctr := range res.Centroids {
		if c < len(centers) {
			if d := ctr.Dist(centers[c]); d > 5 {
				t.Errorf("churn centroid %d drifted %v from truth", c, d)
			}
		}
	}
}

func TestBudgetStrategyStopsIterations(t *testing.T) {
	const np, n, k = 16, 4, 2
	data, centers := blobs(np, n, k, 56)
	sch, err := plain.New(nil, 256, np, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 1),
		DMin:          0, DMax: 60,
		Epsilon:       1e5,
		Budget:        dp.UniformFast{Eps: 1e5, Limit: 2},
		MaxIterations: 10,
		Exchanges:     20,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Errorf("UF(2) ran %d iterations, want 2", len(res.Traces))
	}
	if res.TotalEpsilon > 1e5*(1+1e-9) {
		t.Errorf("spent %v > ε", res.TotalEpsilon)
	}
}

func TestTraceQuality(t *testing.T) {
	const np, n, k = 24, 4, 2
	data, centers := blobs(np, n, k, 57)
	sch, err := plain.New(nil, 256, np, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 2,
		Exchanges:     20,
		Seed:          7,
		TraceQuality:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		if tr.PreInertia <= 0 {
			t.Errorf("iteration %d: no quality trace", tr.Iteration)
		}
		if tr.PostInertia < tr.PreInertia-1e-9 {
			t.Errorf("iteration %d: POST %v < PRE %v", tr.Iteration, tr.PostInertia, tr.PreInertia)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	data, centers := blobs(8, 4, 2, 58)
	sch, _ := plain.New(nil, 256, 8, 2)
	base := Config{
		K: 2, InitCentroids: offSeeds(centers, 1),
		DMin: 0, DMax: 60, Epsilon: 1,
	}
	if _, err := NewNetwork(timeseries.NewDataset(4), sch, base); err == nil {
		t.Error("empty dataset must fail")
	}
	bad := base
	bad.InitCentroids = nil
	if _, err := NewNetwork(data, sch, bad); err == nil {
		t.Error("no centroids must fail")
	}
	bad = base
	bad.InitCentroids = []timeseries.Series{{1, 2}} // wrong length
	if _, err := NewNetwork(data, sch, bad); err == nil {
		t.Error("wrong centroid length must fail")
	}
	bad = base
	bad.Epsilon = 0
	if _, err := NewNetwork(data, sch, bad); err == nil {
		t.Error("zero epsilon must fail")
	}
	small, _ := plain.New(nil, 256, 4, 2) // fewer shares than participants
	if _, err := NewNetwork(data, small, base); err == nil {
		t.Error("too few key-shares must fail")
	}
	// Tiny plaintext space must be rejected by the headroom check.
	tiny, _ := plain.New(new(big.Int).Lsh(big.NewInt(1), 48), 256, 8, 2)
	if _, err := NewNetwork(data, tiny, base); err == nil {
		t.Error("insufficient plaintext headroom must fail")
	}
}

func TestProtocolWithNewscastSampler(t *testing.T) {
	// The paper's connectivity layer: the full protocol over bounded
	// Newscast views (size 30) instead of idealized uniform sampling.
	const np, n, k = 40, 4, 2
	data, centers := blobs(np, n, k, 81)
	sch, err := plain.New(nil, 256, np, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 2,
		Exchanges:     30,
		Seed:          82,
		Sampler:       &sim.NewscastSampler{ViewSize: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != k {
		t.Fatalf("newscast run kept %d centroids, want %d", len(res.Centroids), k)
	}
	for c, ctr := range res.Centroids {
		if d := ctr.Dist(centers[c]); d > 2 {
			t.Errorf("centroid %d drifted %v from truth under newscast sampling", c, d)
		}
	}
}

func TestNoiseShareUnderestimateEndToEnd(t *testing.T) {
	// nν below the true population: the counter-based surplus correction
	// (Section 4.2.2) must keep the protocol correct.
	const np, n, k = 30, 4, 2
	data, centers := blobs(np, n, k, 83)
	sch, err := plain.New(nil, 256, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(data, sch, Config{
		K:             k,
		InitCentroids: offSeeds(centers, 2),
		DMin:          0, DMax: 60,
		Epsilon:       1e6,
		MaxIterations: 2,
		Exchanges:     25,
		Seed:          84,
		NoiseShares:   20, // underestimate of 30 participants
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != k {
		t.Fatalf("kept %d centroids, want %d", len(res.Centroids), k)
	}
	for _, tr := range res.Traces {
		if tr.DissCycles == 0 {
			t.Errorf("iteration %d: no correction dissemination despite nν underestimate", tr.Iteration)
		}
	}
}
