// Package core assembles the complete Chiaroscuro execution sequence of
// Section 4 of the paper: the Diptych data structure (Definition 6) and
// the iterative protocol of Algorithms 1 and 3, fully distributed over a
// simulated population of participants.
//
// Every iteration:
//
//  1. Assignment step — each participant assigns its own time-series to
//     the closest cleartext (differentially private) centroid and builds
//     its encrypted means contribution: its series in the chosen
//     cluster's slots, a count of one, zeros elsewhere;
//  2. Computation step (Algorithm 3) —
//     a. the encrypted means and the encrypted noise-shares are summed
//     by two EESum instances running in lockstep on the same gossip
//     exchanges, alongside the cleartext participant counter;
//     b. the noise surplus correction is agreed on by min-identifier
//     dissemination and applied;
//     c. the perturbed encrypted means are decrypted epidemically with
//     τ distinct key-shares;
//  3. Convergence step — each participant divides sums by counts,
//     smooths (Section 5.2), drops aberrant means (footnote 8), and
//     checks the θ / iteration-cap termination criterion locally.
//
// The paper's security analysis (Appendix B) holds structurally here:
// everything that travels between participants is either
// homomorphically encrypted (means, noise), differentially private
// (decrypted perturbed means), or data-independent (weights, epochs,
// counters, correction identifiers).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"

	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/parallel"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
	"chiaroscuro/internal/timeseries"
)

// Diptych is the twofold data structure of Definition 6: cleartext
// differentially-private centroids on one side, encrypted means on the
// other. Each participant holds one.
type Diptych struct {
	// Centroids is the cleartext, perturbed centroid set C (nil entries
	// are lost means).
	Centroids []timeseries.Series
	// Means is the participant's encrypted means state M: the EESum
	// vector holding E(σ_sum) and E(σ_count) per cluster — k·(n+1)
	// values, laid out in ⌈k·(n+1)/PackSlots⌉ packed ciphertexts — plus
	// the cleartext weight ω (inside the EESum state).
	Means *eesum.Sum
}

// Phase identifies one of the three gossip phases of a protocol
// iteration (Algorithm 3): the lockstep encrypted means/noise sum, the
// min-identifier correction dissemination, the epidemic threshold
// decryption. The networked peer runtime orders its exchange slots by
// the same ranks.
type Phase int

const (
	PhaseSum Phase = iota
	PhaseDissemination
	PhaseDecryption
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseSum:
		return "sum"
	case PhaseDissemination:
		return "dissemination"
	case PhaseDecryption:
		return "decryption"
	}
	return "unknown"
}

// Observer receives protocol progress callbacks from a run. All
// callbacks fire on the protocol goroutine, consume no protocol RNG
// (an observed run is draw-for-draw identical to a blind one), and
// must return quickly; nil members are skipped. The networked peer
// runtime (internal/node) drives the same callbacks from its side of
// the wire, so a consumer sees one shape across backends.
type Observer struct {
	// Iteration fires once per protocol iteration, after the local
	// convergence step: the iteration's trace and its released
	// (compacted, cleartext, differentially private) centroids.
	Iteration func(tr IterationTrace, released []timeseries.Series)
	// Phase fires after every gossip cycle: cycle counts completed
	// cycles (1-based) of the phase's budget of. A phase whose length
	// is adaptive (convergence-determined rather than fixed) reports
	// of = 0.
	Phase func(iter int, phase Phase, cycle, of int)
	// Churn fires whenever participants drop out of the run's view —
	// on every churn-model resampling (reason ChurnModel, with the
	// number of disconnected nodes), and, in the networked runtime,
	// when peer suspicion evicts an unresponsive peer from the address
	// book (reason ChurnEvicted, down = 1) — and when an evicted peer
	// comes back (reason ChurnResumed, down = 1): a crash-recovered
	// peer's resume announcement lifted the eviction.
	Churn func(iter, cycle, down int, reason string)
}

// Churn reasons reported through Observer.Churn.
const (
	// ChurnModel is a Section 6.1.5 churn-model resampling.
	ChurnModel = "model"
	// ChurnEvicted is a peer-suspicion eviction in the networked
	// runtime: a peer failed too many consecutive exchanges and was
	// dropped from the address book.
	ChurnEvicted = "evicted"
	// ChurnResumed is the eviction's inverse: a peer relaunched from
	// its crash-recovery journal announced itself and was reinstated.
	ChurnResumed = "resumed"
)

// Config parametrizes a Chiaroscuro network run.
type Config struct {
	K             int                 // number of clusters
	InitCentroids []timeseries.Series // C_init (data-independent seeds)
	DMin, DMax    float64             // per-measure range (Sum sensitivity)

	Epsilon  float64   // total privacy budget ε (paper: ln 2)
	Budget   dp.Budget // concentration strategy (default Greedy{ε})
	SumShare float64   // per-iteration ε split between sums and counts

	MaxIterations int     // n_it^max (default 10)
	Threshold     float64 // θ convergence threshold (0 = run all iterations)

	Smooth      bool    // SMA smoothing (Section 5.2)
	SMAFraction float64 // window fraction (default 0.2)
	CountFloor  float64 // aberrant filter on perturbed counts (default 1)
	RangeSlack  float64 // aberrant filter slack (default 1)

	NoiseShares int     // nν (default: population size)
	Exchanges   int     // ne gossip cycles per sum phase (default: Theorem 3)
	EmaxTarget  float64 // gossip error target for the Theorem 3 default (default 1e-6)

	FracBits uint   // fixed-point fractional bits (default homenc.DefaultFracBits)
	Seed     uint64 // simulation seed

	// PackSlots controls ciphertext packing of the encrypted means and
	// noise vectors: how many fixed-point values share one plaintext,
	// each slot padded with a guard band covering the exchange budget's
	// worst-case epoch growth. 0 auto-sizes from the scheme's
	// PlaintextSpace() (falling back to 1 when the space has no room
	// for 2 guarded slots — in particular for every s=1 key at realistic
	// exchange counts); 1 disables packing; >= 2 demands that many slots
	// and fails construction when they do not fit. Packing divides the
	// per-exchange ciphertext count and wire bytes by the pack factor
	// and releases bit-identical centroids (slot arithmetic is exact).
	PackSlots int

	Churn      float64 // per-cycle disconnection probability
	MidFailure bool    // corrupt in-flight exchanges under churn

	// Workers bounds the worker pool used for encryption fan-outs,
	// per-dimension homomorphic loops, partial-decryption sweeps and
	// the parallel simulation cycles (0 = process-wide default, 1 =
	// fully serial). Results are identical per seed for any value.
	Workers int

	// DissCycles, when positive, fixes the number of correction-
	// dissemination cycles instead of stopping at convergence, and
	// DecryptCycles likewise fixes the epidemic-decryption phase length.
	// Fixed lengths are how a networked deployment schedules phases —
	// no participant can observe global convergence — so a simulation
	// configured with the same values is cycle-for-cycle identical to a
	// networked run at the same seed (extra cycles past convergence are
	// protocol no-ops). Zero keeps the adaptive behavior.
	DissCycles    int
	DecryptCycles int

	Sampler sim.Sampler // peer sampling (default uniform)

	// Observer receives progress callbacks (per-iteration releases,
	// per-cycle phase progress, churn). Zero value: no callbacks.
	Observer Observer

	// TraceQuality computes the (omniscient) pre-perturbation inertia of
	// every iteration for evaluation purposes. It reads all series,
	// which a real deployment could not; it never feeds back into the
	// protocol.
	TraceQuality bool

	// DeviantTolerance enables the Section 4.4 malicious-behavior check:
	// after each decryption, participants whose decoded centroids
	// deviate from the consensus (coordinate-wise median) by more than
	// this distance are flagged in the trace. Zero disables the check.
	DeviantTolerance float64
}

// IterationTrace records one iteration of the distributed protocol.
type IterationTrace struct {
	Iteration     int
	CentroidsIn   int // live centroids used for assignment
	CentroidsOut  int // centroids surviving perturbation + filters
	EpsilonSpent  float64
	SumCycles     int     // gossip cycles of the means/noise sum phase
	DissCycles    int     // cycles of the correction dissemination
	DecryptCycles int     // cycles of the epidemic decryption
	Agreement     float64 // max cross-participant distance between decoded centroids
	Deviants      []int   // participants flagged by the Section 4.4 cross-check
	PreInertia    float64 // only when Config.TraceQuality
	PostInertia   float64 // only when Config.TraceQuality
}

// Result is the outcome of a full protocol run.
type Result struct {
	Centroids    []timeseries.Series // final centroids (participant 0's view)
	Traces       []IterationTrace
	TotalEpsilon float64
	Converged    bool
	AvgMessages  float64 // average gossip messages sent per participant
	AvgBytes     float64 // average bytes sent per participant
}

// Network is a simulated Chiaroscuro deployment: one participant per
// series of the dataset.
type Network struct {
	cfg      Config
	sch      homenc.Scheme
	codec    homenc.Codec
	pack     homenc.PackedCodec
	data     *timeseries.Dataset
	np       int
	engine   *sim.Engine
	rng      *randx.RNG
	acct     *dp.Accountant
	shareIdx []int
	curIter  int // iteration in flight, read by the engine's churn hook

	// tamper, when set by tests, corrupts the decoded views before the
	// Section 4.4 cross-check runs — the fault-injection hook for
	// exercising deviant detection.
	tamper func(views [][]timeseries.Series)
}

// NewNetwork validates the configuration and builds the deployment.
// Every participant owns one series of data and one key-share of sch
// (participant i holds share i+1), so sch.NumShares() must be at least
// data.Len().
func NewNetwork(data *timeseries.Dataset, sch homenc.Scheme, cfg Config) (*Network, error) {
	np := data.Len()
	if np < 2 {
		return nil, errors.New("core: need at least 2 participants")
	}
	if len(kmeans.Compact(cfg.InitCentroids)) == 0 {
		return nil, kmeans.ErrNoCentroids
	}
	for _, c := range cfg.InitCentroids {
		if c != nil && len(c) != data.Dim() {
			return nil, errors.New("core: centroid length does not match series length")
		}
	}
	if sch.NumShares() < np {
		return nil, fmt.Errorf("core: scheme has %d key-shares for %d participants", sch.NumShares(), np)
	}
	if cfg.Epsilon <= 0 {
		return nil, errors.New("core: epsilon must be positive")
	}
	cfg = cfg.Normalize(np)
	pack, err := PackingFor(cfg, np, data.Dim(), sch)
	if err != nil {
		return nil, err
	}
	codec := homenc.NewCodec(cfg.FracBits)
	nw := &Network{
		cfg:   cfg,
		sch:   sch,
		codec: codec,
		pack:  pack,
		data:  data,
		np:    np,
		rng:   ProtocolRNG(cfg.Seed),
		acct:  &dp.Accountant{Cap: cfg.Epsilon * (1 + 1e-9)},
	}
	ecfg := MirrorEngineConfig(cfg, np, data.Dim(), sch, pack)
	if hook := cfg.Observer.Churn; hook != nil {
		// The hook runs on the scheduling goroutine — the same one that
		// advances curIter — so the read is race-free.
		ecfg.OnChurn = func(cycle, down int) { hook(nw.curIter, cycle, down, ChurnModel) }
	}
	engine, err := sim.New(ecfg, cfg.Sampler)
	if err != nil {
		return nil, err
	}
	nw.engine = engine
	nw.shareIdx = make([]int, np)
	for i := range nw.shareIdx {
		nw.shareIdx[i] = i + 1
	}
	return nw, nil
}

// Normalize fills the paper defaults that depend on the population
// size, returning the effective configuration. Both the simulated
// Network and every networked peer apply it to the shared parameters,
// so their derived defaults are guaranteed to agree.
func (cfg Config) Normalize(np int) Config {
	if cfg.Budget == nil {
		cfg.Budget = dp.Greedy{Eps: cfg.Epsilon}
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10
	}
	if cfg.NoiseShares <= 0 {
		cfg.NoiseShares = np
	}
	if cfg.EmaxTarget <= 0 {
		cfg.EmaxTarget = 1e-6
	}
	if cfg.Exchanges <= 0 {
		cfg.Exchanges = dp.Theorem3Exchanges(np, 1, cfg.EmaxTarget, 0.005)
	}
	if cfg.CountFloor == 0 {
		cfg.CountFloor = 1
	}
	if cfg.RangeSlack == 0 {
		cfg.RangeSlack = 1
	}
	if cfg.Workers == 0 {
		cfg.Workers = parallel.Workers()
	}
	if cfg.Sampler == nil {
		cfg.Sampler = &sim.UniformSampler{}
	}
	return cfg
}

// MirrorEngineConfig is the exact engine configuration a deployment of
// np participants runs on — shared so every networked peer can mirror
// the engine (same seed, same churn model, same accounting) and draw
// the identical exchange schedule the simulator executes. pack is the
// deployment's slot layout (from PackingFor): the byte accounting
// counts packed ciphertexts, so the Figure 5(b) bandwidth divides by
// the pack factor, while the exchange schedule itself is byte-
// independent — which is why a packed run stays cycle-for-cycle
// identical to an unpacked one.
func MirrorEngineConfig(cfg Config, np, seriesDim int, sch homenc.Scheme, pack homenc.PackedCodec) sim.Config {
	ctPerSet := pack.PackedLen(cfg.K * (seriesDim + 1))
	return sim.Config{
		N:            np,
		Seed:         cfg.Seed,
		Churn:        cfg.Churn,
		MidFailure:   cfg.MidFailure,
		MessageBytes: sch.CiphertextBytes() * (ctPerSet + 1),
		Workers:      cfg.Workers,
	}
}

// ProtocolRNG is the deterministic base source of the protocol's noise
// draws for a given seed; per-participant streams derive from it
// (eesum.NodeNoiseStreams).
func ProtocolRNG(seed uint64) *randx.RNG { return randx.New(seed, 0xD1F7) }

// lockstep runs the encrypted means sum and the noise generation on the
// same gossip exchanges (Algorithm 3 runs them "in background" in
// parallel). Both legs only touch the two exchanging nodes' state, so
// the pair inherits their concurrency safety and the engine's parallel
// cycle mode applies.
type lockstep struct {
	means *eesum.Sum
	noise *eesum.NoiseGen
}

func (l lockstep) Exchange(a, b sim.NodeID, full bool) {
	l.means.Exchange(a, b, full)
	l.noise.Exchange(a, b, full)
}

func (l lockstep) ConcurrentExchangeSafe() bool {
	return l.means.ConcurrentExchangeSafe() && l.noise.ConcurrentExchangeSafe()
}

// SumAbsBound upper-bounds the absolute encoded value any EESum slot
// can reach before epoch scaling: the global sum of measures plus the
// worst-case noise magnitude (taken very generously at 64 λ_max). It is
// computable from the shared configuration alone, so every networked
// participant derives the same headroom verdict.
func SumAbsBound(cfg Config, np, seriesDim int, codec homenc.Codec) *big.Int {
	maxMeasure := math.Max(math.Abs(cfg.DMin), math.Abs(cfg.DMax))
	sens := dp.SumSensitivity(seriesDim, cfg.DMin, cfg.DMax)
	// Smallest per-iteration ε the strategy will ever use bounds λ.
	minEps := cfg.Epsilon
	for it := 1; it <= cfg.MaxIterations; it++ {
		if e := cfg.Budget.Epsilon(it); e > 0 && e < minEps {
			minEps = e
		}
	}
	lambdaMax := sens / (minEps / 2)
	bound := float64(np)*maxMeasure + 64*lambdaMax
	return codec.Encode(bound)
}

// HeadroomBits returns how many doubling epochs fit between bound and
// half the plaintext space — strictly below it, per the shared
// homenc.HeadroomEpochs boundary math (this used to duplicate the
// quotient logic, with an off-by-one at exact power-of-two quotients).
func HeadroomBits(space, bound *big.Int) int {
	return homenc.HeadroomEpochs(space, bound)
}

// HeadroomNeeded is the epoch headroom a full run must fit: the EESum
// epoch grows by one per exchange a node participates in, with cascades
// across a cycle, so 8 per scheduled gossip cycle plus slack is a
// comfortable margin. The same bound sizes the per-slot guard bands of
// the packed layout and the wire-side epoch sanity check.
func HeadroomNeeded(exchanges int) int { return 8*exchanges + 64 }

// PackingFor derives the ciphertext packing layout a deployment of np
// participants runs with — slot guard bands sized from the corrected
// headroom math for the configured exchange count, slot counts resolved
// against the scheme's plaintext space per cfg.PackSlots — and performs
// the plaintext-headroom pre-flight: a packed layout (>= 2 slots)
// carries its guard band inside every slot by construction, while an
// unpacked run must fit the whole epoch budget between the sum bound
// and half the plaintext space. It is computable from the shared
// (normalized) configuration alone, so the simulator, every networked
// peer, and the mirror byte accounting all derive the identical layout.
func PackingFor(cfg Config, np, seriesDim int, sch homenc.Scheme) (homenc.PackedCodec, error) {
	codec := homenc.NewCodec(cfg.FracBits)
	bound := SumAbsBound(cfg, np, seriesDim, codec)
	needed := HeadroomNeeded(cfg.Exchanges)
	pc, err := homenc.NewPackedCodec(codec, sch.PlaintextSpace(), bound, needed, cfg.PackSlots)
	if err != nil {
		return pc, fmt.Errorf("core: %w", err)
	}
	if space := sch.PlaintextSpace(); pc.Slots == 1 && space != nil {
		if have := HeadroomBits(space, bound); have < needed {
			return pc, fmt.Errorf("core: plaintext space too small: %d epochs of headroom, need ~%d (raise key bits or the scheme degree s)", have, needed)
		}
	}
	return pc, nil
}

// Run executes the full protocol until convergence or the iteration cap
// (Section 4.2.4) and returns participant 0's final view.
func (nw *Network) Run() (*Result, error) {
	return nw.RunContext(context.Background())
}

// RunContext is Run with cancellation: the context is checked between
// iterations and between gossip cycles inside the sum, dissemination
// and decryption phase loops, so a cancelled run returns ctx.Err()
// promptly even mid-phase.
func (nw *Network) RunContext(ctx context.Context) (*Result, error) {
	centroids := kmeans.Compact(nw.cfg.InitCentroids)
	res := &Result{}
	for it := 1; it <= nw.cfg.MaxIterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		epsIter := nw.cfg.Budget.Epsilon(it)
		if epsIter <= 0 {
			break // privacy budget exhausted
		}
		if err := nw.acct.Spend(epsIter); err != nil {
			return nil, err
		}
		nw.curIter = it
		trace, next, err := nw.iterate(ctx, it, centroids, epsIter)
		if err != nil {
			return nil, err
		}
		res.TotalEpsilon += epsIter
		res.Traces = append(res.Traces, *trace)
		if len(next) == 0 {
			break // noise overwhelmed every centroid
		}
		if nw.cfg.Threshold > 0 && len(next) == len(centroids) &&
			kmeans.MaxShift(centroids, next) <= nw.cfg.Threshold {
			centroids = next
			res.Converged = true
			break
		}
		centroids = next
	}
	res.Centroids = centroids
	res.AvgMessages = nw.engine.AvgMessages()
	res.AvgBytes = nw.engine.AvgBytes()
	return res, nil
}

// observePhase reports one completed gossip cycle to the observer.
func (nw *Network) observePhase(it int, phase Phase, cycle, of int) {
	if hook := nw.cfg.Observer.Phase; hook != nil {
		hook(it, phase, cycle, of)
	}
}

// iterate runs one full Chiaroscuro iteration (Algorithms 1 and 3).
func (nw *Network) iterate(ctx context.Context, it int, centroids []timeseries.Series, epsIter float64) (*IterationTrace, []timeseries.Series, error) {
	k := len(centroids)
	n := nw.data.Dim()
	trace := &IterationTrace{Iteration: it, CentroidsIn: k, EpsilonSpent: epsIter}

	// --- Assignment step (local, cleartext): every participant builds
	// its encrypted means contribution, packed into the deployment's
	// slot layout before encryption.
	initial := make([][]*big.Int, nw.np)
	for i := 0; i < nw.np; i++ {
		initial[i] = nw.pack.Pack(BuildContribution(nw.data.Row(i), centroids, nw.codec))
	}
	meansSum, err := eesum.NewSumWorkers(nw.sch, initial, 0, nw.cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	// The Diptych of Definition 6: cleartext perturbed centroids on one
	// side, the encrypted means state on the other. Every participant
	// conceptually holds one; the simulation shares the centroid slice
	// and indexes the EESum per participant.
	dip := Diptych{Centroids: centroids, Means: meansSum}
	means := dip.Means

	// --- Noise configuration: the sum coordinates use the time-series
	// Sum sensitivity, the count coordinates sensitivity 1; the
	// iteration budget is split between them (disjoint clusters compose
	// in parallel, so one cluster's release prices them all).
	lambdas := NoiseLambdas(k, n, epsIter, nw.cfg.SumShare, nw.cfg.DMin, nw.cfg.DMax)
	noise, err := eesum.NewNoiseGen(nw.sch, nw.codec, eesum.NoiseConfig{
		Lambdas: lambdas,
		NShares: nw.cfg.NoiseShares,
		Workers: nw.cfg.Workers,
		Packing: nw.pack,
	}, nw.np, nw.rng)
	if err != nil {
		return nil, nil, err
	}

	// --- Algorithm 3 (a)+(b): means and noise sums run in lockstep on
	// the same gossip exchanges, the counter piggybacking.
	pair := lockstep{means, noise}
	for c := 0; c < nw.cfg.Exchanges; c++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		nw.engine.RunCycleOn(pair)
		nw.observePhase(it, PhaseSum, c+1, nw.cfg.Exchanges)
	}
	trace.SumCycles = nw.cfg.Exchanges

	// Noise correction: propose, disseminate (min identifier), apply.
	// A fixed DissCycles runs the networked deployment's schedule (extra
	// cycles past convergence are no-ops); the adaptive default stops as
	// soon as the omniscient convergence check passes.
	if err := noise.PrepareCorrections(); err != nil {
		return nil, nil, err
	}
	diss := 0
	if nw.cfg.DissCycles > 0 {
		for ; diss < nw.cfg.DissCycles; diss++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			nw.engine.RunCycle(noise.ExchangeCorrection)
			nw.observePhase(it, PhaseDissemination, diss+1, nw.cfg.DissCycles)
		}
		if !noise.CorrectionConverged() {
			return nil, nil, errors.New("core: correction dissemination did not converge in the fixed cycle budget")
		}
	} else {
		dissCap := 4 * nw.cfg.Exchanges
		for ; diss < dissCap && !noise.CorrectionConverged(); diss++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			nw.engine.RunCycle(noise.ExchangeCorrection)
			// Adaptive phase: the length is convergence-determined, so
			// of = 0 (the 4x cap is a safety bound, not an expectation).
			nw.observePhase(it, PhaseDissemination, diss+1, 0)
		}
	}
	trace.DissCycles = diss
	for i := 0; i < nw.np; i++ {
		if err := noise.ApplyCorrection(i); err != nil {
			return nil, nil, err
		}
		if err := noise.PerturbMeans(i, means); err != nil {
			return nil, nil, err
		}
	}

	// --- Algorithm 3 (c): epidemic decryption of the perturbed means.
	states := make([]eesum.DecState, nw.np)
	for i := range states {
		states[i] = eesum.DecState{CTs: means.Ciphertexts(i), Omega: means.Omega(i)}
	}
	dec, err := eesum.NewDecryption(nw.sch, states, nw.shareIdx)
	if err != nil {
		return nil, nil, err
	}
	dec.SetWorkers(nw.cfg.Workers)
	if nw.cfg.DecryptCycles > 0 {
		// Fixed-length phase (networked schedule): run every cycle;
		// exchanges past completion are protocol no-ops.
		for c := 0; c < nw.cfg.DecryptCycles; c++ {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			nw.engine.RunCycleOn(dec)
			nw.observePhase(it, PhaseDecryption, c+1, nw.cfg.DecryptCycles)
		}
		trace.DecryptCycles = nw.cfg.DecryptCycles
	} else {
		// Adaptive phase: stop as soon as every node gathered τ shares
		// (the cycle accounting matches eesum's RunUntilDone).
		decCap := 64 * nw.cfg.Exchanges
		used := decCap
		for c := 0; c < decCap; c++ {
			if dec.AllDone() {
				used = c
				break
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			nw.engine.RunCycleOn(dec)
			// Adaptive phase: of = 0, as for the dissemination above.
			nw.observePhase(it, PhaseDecryption, c+1, 0)
		}
		trace.DecryptCycles = used
	}
	if !dec.AllDone() {
		return nil, nil, errors.New("core: epidemic decryption did not complete")
	}

	// --- Convergence step inputs: every participant decodes its own
	// perturbed means and post-processes locally.
	perCentroids := make([][]timeseries.Series, nw.np)
	for i := 0; i < nw.np; i++ {
		vals, err := dec.ValuesPacked(i, nw.pack, k*(n+1))
		if err != nil {
			return nil, nil, err
		}
		perCentroids[i] = nw.postprocess(vals, k, n)
	}
	if nw.tamper != nil {
		nw.tamper(perCentroids)
	}
	trace.Agreement = crossAgreement(perCentroids)
	if nw.cfg.DeviantTolerance > 0 {
		trace.Deviants = DetectDeviants(perCentroids, nw.cfg.DeviantTolerance)
	}

	next := kmeans.Compact(perCentroids[0])
	trace.CentroidsOut = len(next)

	if nw.cfg.TraceQuality {
		nw.traceQuality(trace, centroids, perCentroids[0])
	}
	if hook := nw.cfg.Observer.Iteration; hook != nil {
		hook(*trace, next)
	}
	return trace, next, nil
}

// postprocess turns a decoded k·(n+1) value vector into centroids.
func (nw *Network) postprocess(vals []float64, k, n int) []timeseries.Series {
	return Postprocess(vals, k, n, PostprocessParams{
		DMin: nw.cfg.DMin, DMax: nw.cfg.DMax,
		RangeSlack: nw.cfg.RangeSlack, CountFloor: nw.cfg.CountFloor,
		Smooth: nw.cfg.Smooth, SMAFraction: nw.cfg.SMAFraction,
	})
}

// PostprocessParams carries the convergence-step knobs of Section 5.2
// and footnote 8, shared between the simulated Network and the
// networked peer runtime.
type PostprocessParams struct {
	DMin, DMax  float64
	RangeSlack  float64 // aberrant filter slack (fraction of the range width)
	CountFloor  float64 // aberrant filter on perturbed counts
	Smooth      bool
	SMAFraction float64
}

// BuildContribution is the assignment step every participant runs
// locally: assign row to the closest live centroid and build the
// k·(n+1) fixed-point contribution vector — the series in the chosen
// cluster's slots, an encoded one in its count slot, zeros elsewhere.
// Nil centroids (lost means) never attract assignments.
func BuildContribution(row timeseries.Series, centroids []timeseries.Series, codec homenc.Codec) []*big.Int {
	k, n := len(centroids), len(row)
	best, bestD2 := 0, math.Inf(1)
	for c, ctr := range centroids {
		if ctr == nil {
			continue
		}
		if d2 := row.Dist2(ctr); d2 < bestD2 {
			best, bestD2 = c, d2
		}
	}
	zero := big.NewInt(0)
	vec := make([]*big.Int, k*(n+1))
	for j := range vec {
		vec[j] = zero
	}
	base := best * (n + 1)
	for j, v := range row {
		vec[base+j] = codec.Encode(v)
	}
	vec[base+n] = codec.Encode(1)
	return vec
}

// NoiseLambdas builds the per-variable Laplace scale vector of one
// iteration: the k·n sum slots use the time-series Sum sensitivity, the
// k count slots sensitivity 1, with the iteration budget split between
// them (disjoint clusters compose in parallel, so one cluster's release
// prices them all). Shared between the simulated Network and the
// networked peer runtime, which must derive identical scales.
func NoiseLambdas(k, n int, epsIter, sumShare, dmin, dmax float64) []float64 {
	epsSum, epsCount := dp.SplitIteration(epsIter, sumShare)
	sens := dp.SumSensitivity(n, dmin, dmax)
	lambdas := make([]float64, k*(n+1))
	for c := 0; c < k; c++ {
		base := c * (n + 1)
		for j := 0; j < n; j++ {
			lambdas[base+j] = dp.LaplaceScale(sens, epsSum)
		}
		lambdas[base+n] = dp.LaplaceScale(1, epsCount)
	}
	return lambdas
}

// Postprocess turns a decoded k·(n+1) value vector into centroids:
// divide sums by counts, smooth, and apply the aberrant filters
// (Section 5.2 and footnote 8). Lost or aberrant means come back nil.
func Postprocess(vals []float64, k, n int, p PostprocessParams) []timeseries.Series {
	out := make([]timeseries.Series, k)
	rangeWidth := p.DMax - p.DMin
	lo := p.DMin - p.RangeSlack*rangeWidth
	hi := p.DMax + p.RangeSlack*rangeWidth
	var window int
	if p.Smooth {
		frac := p.SMAFraction
		if frac <= 0 {
			frac = 0.2
		}
		window = int(math.Round(frac * float64(n)))
	}
	for c := 0; c < k; c++ {
		base := c * (n + 1)
		count := vals[base+n]
		if count < p.CountFloor {
			continue // lost mean
		}
		mean := make(timeseries.Series, n)
		for j := 0; j < n; j++ {
			mean[j] = vals[base+j] / count
		}
		if p.Smooth && window > 0 {
			mean = mean.SMA(window)
		}
		if !mean.InRange(lo, hi) {
			continue // aberrant mean
		}
		out[c] = mean
	}
	return out
}

// crossAgreement returns the maximum distance between corresponding
// centroids across participants — the empirical check of the paper's
// unicity argument (all participants converge to the same view up to
// gossip error).
func crossAgreement(views [][]timeseries.Series) float64 {
	var worst float64
	ref := views[0]
	for _, v := range views[1:] {
		for c := range ref {
			if ref[c] == nil || c >= len(v) || v[c] == nil {
				continue
			}
			if d := ref[c].Dist(v[c]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// traceQuality computes the omniscient evaluation metrics (never part of
// the protocol): pre-perturbation inertia of the iteration's partition
// and post-perturbation inertia against the released centroids.
func (nw *Network) traceQuality(trace *IterationTrace, centroids, released []timeseries.Series) {
	a, err := kmeans.Assign(nw.data, centroids)
	if err != nil {
		return
	}
	trace.PreInertia = a.InertiaAgainst(a.Means())
	trace.PostInertia = a.InertiaAgainst(released)
}
