package core

import (
	"math/big"
	"strings"
	"testing"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
)

// runPacked executes a full protocol run at the given PackSlots, with
// everything else (data, scheme, seed) identical.
func runPacked(t *testing.T, sch homenc.Scheme, cfg Config, seed uint64, slots int) *Result {
	t.Helper()
	data, centers := blobs(sch.NumShares(), 4, cfg.K, seed)
	cfg.InitCentroids = offSeeds(centers, 2)
	cfg.PackSlots = slots
	nw, err := NewNetwork(data, sch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertBitIdentical compares two runs' released centroids and traces
// for exact (bit-level) float equality.
func assertBitIdentical(t *testing.T, packed, unpacked *Result) {
	t.Helper()
	if len(packed.Centroids) != len(unpacked.Centroids) || len(packed.Centroids) == 0 {
		t.Fatalf("centroid count %d vs %d (want equal, non-zero)", len(packed.Centroids), len(unpacked.Centroids))
	}
	for c := range packed.Centroids {
		for j := range packed.Centroids[c] {
			if packed.Centroids[c][j] != unpacked.Centroids[c][j] {
				t.Fatalf("centroid %d[%d]: packed %v, unpacked %v — slot arithmetic must be exact",
					c, j, packed.Centroids[c][j], unpacked.Centroids[c][j])
			}
		}
	}
	for i := range packed.Traces {
		if packed.Traces[i].Agreement != unpacked.Traces[i].Agreement {
			t.Fatalf("iteration %d: agreement %v vs %v", i+1,
				packed.Traces[i].Agreement, unpacked.Traces[i].Agreement)
		}
	}
	if packed.AvgMessages != unpacked.AvgMessages {
		t.Fatalf("message counts diverged: %v vs %v (packing must not change the schedule)",
			packed.AvgMessages, unpacked.AvgMessages)
	}
}

func TestPackedMatchesUnpackedPlain(t *testing.T) {
	// A bounded plain scheme large enough for 4 guarded slots.
	const np, k = 24, 2
	sch, err := plain.New(new(big.Int).Lsh(big.NewInt(1), 2048), 256, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		K: k, DMin: 0, DMax: 60,
		Epsilon: 1e6, MaxIterations: 2, Exchanges: 25, Seed: 91,
	}
	unpacked := runPacked(t, sch, cfg, 61, 1)
	packed := runPacked(t, sch, cfg, 61, 4)
	assertBitIdentical(t, packed, unpacked)
	// dim = k·(n+1) = 10 values → 3 ciphertexts at 4 slots; the mirror
	// accounting counts ciphertexts+1 per message, so bytes shrink by
	// exactly (10+1)/(3+1).
	if ratio := unpacked.AvgBytes / packed.AvgBytes; ratio != 11.0/4.0 {
		t.Errorf("byte ratio = %v, want 11/4", ratio)
	}
}

func TestPackedMatchesUnpackedChurnMidFailure(t *testing.T) {
	// The mid-exchange churn model corrupts in-flight state; packed and
	// unpacked runs must corrupt identically (same schedule, same
	// half-applied merges) and still release bit-identical centroids.
	const np, k = 24, 2
	sch, err := plain.New(new(big.Int).Lsh(big.NewInt(1), 2048), 256, np, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		K: k, DMin: 0, DMax: 60,
		Epsilon: 1e6, MaxIterations: 2, Exchanges: 40, Seed: 92,
		Churn: 0.25, MidFailure: true,
	}
	unpacked := runPacked(t, sch, cfg, 62, 1)
	packed := runPacked(t, sch, cfg, 62, 4)
	assertBitIdentical(t, packed, unpacked)
}

func TestPackedMatchesUnpackedRealCryptoS4(t *testing.T) {
	// The acceptance case: PackSlots = 4 on a degree s=4 Damgård–Jurik
	// scheme (1024-bit plaintext space on a 256-bit key) must release
	// bit-identical centroids to the unpacked run at the same seed,
	// with real noise applied (moderate ε), through the real threshold
	// decryption.
	if testing.Short() {
		t.Skip("real-crypto packing e2e")
	}
	const np, k = 20, 2
	sch, err := damgardjurik.NewTestScheme(256, 4, np, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		K: k, DMin: 0, DMax: 60,
		Epsilon: 100, MaxIterations: 1, Exchanges: 12,
		FracBits: 24, Seed: 93,
	}
	unpacked := runPacked(t, sch, cfg, 63, 1)
	packed := runPacked(t, sch, cfg, 63, 4)
	assertBitIdentical(t, packed, unpacked)
	// 10 values → 3 ciphertexts: wire bytes divide by (10+1)/(3+1).
	if ratio := unpacked.AvgBytes / packed.AvgBytes; ratio != 11.0/4.0 {
		t.Errorf("byte ratio = %v, want 11/4", ratio)
	}
}

func TestPackingForAutoAndValidation(t *testing.T) {
	const np, seriesDim = 10, 4
	cfg := Config{
		K: 2, DMin: 0, DMax: 60,
		Epsilon: 1e6, MaxIterations: 1, Exchanges: 12, FracBits: 24,
	}.Normalize(np)

	// Auto on an s=4 scheme finds room for several slots.
	s4, err := damgardjurik.NewTestScheme(256, 4, np, 4)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := PackingFor(cfg, np, seriesDim, s4)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Slots < 4 {
		t.Errorf("auto-sizing on a 1024-bit plaintext space packed %d slots, want >= 4", pc.Slots)
	}
	// The guard band covers the full exchange-budget epoch growth under
	// the corrected headroom math.
	slotSpace := new(big.Int).Lsh(big.NewInt(1), pc.SlotBits)
	bound := SumAbsBound(cfg, np, seriesDim, homenc.NewCodec(cfg.FracBits))
	if have := homenc.HeadroomEpochs(slotSpace, bound); have < HeadroomNeeded(cfg.Exchanges) {
		t.Errorf("slot guard band holds %d epochs, need %d", have, HeadroomNeeded(cfg.Exchanges))
	}

	// Auto on an s=1 scheme of the same key: no room, packing off.
	s1, err := damgardjurik.NewTestScheme(256, 1, np, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pc, err := PackingFor(cfg, np, seriesDim, s1); err != nil || pc.Slots != 1 {
		t.Errorf("auto on s=1: slots %d, err %v — want packing off", pc.Slots, err)
	}

	// An explicit slot count the space cannot hold fails construction.
	over := cfg
	over.PackSlots = 64
	if _, err := PackingFor(over, np, seriesDim, s4); err == nil || !strings.Contains(err.Error(), "slots") {
		t.Errorf("oversized PackSlots must fail with a slot-layout error, got %v", err)
	}
	data, centers := blobs(np, seriesDim, 2, 59)
	over.InitCentroids = offSeeds(centers, 1)
	if _, err := NewNetwork(data, s4, over); err == nil {
		t.Error("NewNetwork must reject an oversized PackSlots")
	}
}
