package core

import (
	"sort"

	"chiaroscuro/internal/timeseries"
)

// DetectDeviants implements the malicious-behavior detection sketched in
// Section 4.4 of the paper: because every honest participant decodes
// (approximately) the same perturbed centroids, systematically comparing
// the decrypted values across participants exposes "lying" nodes. The
// consensus reference is the coordinate-wise median of all views, which
// honest majorities cannot be displaced from; a participant whose view
// deviates from the consensus by more than tol (Euclidean distance on
// any centroid) is flagged.
//
// views[i] is participant i's decoded centroid set (nil entries are lost
// means and must be nil for everyone — disagreeing on liveness is itself
// deviant). The returned indices are sorted.
func DetectDeviants(views [][]timeseries.Series, tol float64) []int {
	if len(views) == 0 {
		return nil
	}
	k := len(views[0])
	consensus := consensusCentroids(views, k)
	var deviants []int
	for i, view := range views {
		if isDeviant(view, consensus, k, tol) {
			deviants = append(deviants, i)
		}
	}
	sort.Ints(deviants)
	return deviants
}

// consensusCentroids builds the coordinate-wise median view. A centroid
// slot is live in the consensus when a majority of participants report
// it live.
func consensusCentroids(views [][]timeseries.Series, k int) []timeseries.Series {
	out := make([]timeseries.Series, k)
	for c := 0; c < k; c++ {
		live := 0
		var dim int
		for _, v := range views {
			if c < len(v) && v[c] != nil {
				live++
				dim = len(v[c])
			}
		}
		if live*2 <= len(views) {
			continue // majority says the centroid is lost
		}
		med := make(timeseries.Series, dim)
		col := make([]float64, 0, live)
		for j := 0; j < dim; j++ {
			col = col[:0]
			for _, v := range views {
				if c < len(v) && v[c] != nil && j < len(v[c]) {
					col = append(col, v[c][j])
				}
			}
			sort.Float64s(col)
			med[j] = col[len(col)/2]
		}
		out[c] = med
	}
	return out
}

func isDeviant(view, consensus []timeseries.Series, k int, tol float64) bool {
	for c := 0; c < k; c++ {
		var mine, ref timeseries.Series
		if c < len(view) {
			mine = view[c]
		}
		if c < len(consensus) {
			ref = consensus[c]
		}
		switch {
		case mine == nil && ref == nil:
			continue
		case mine == nil || ref == nil:
			return true // disagrees with the majority on liveness
		case len(mine) != len(ref):
			return true
		case mine.Dist(ref) > tol:
			return true
		}
	}
	return false
}
