package transport

import (
	"math"
	"net"
	"testing"
	"time"
)

// loopbackAvailable reports whether the sandbox allows TCP listeners.
func loopbackAvailable() bool {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return false
	}
	ln.Close()
	return true
}

func TestTCPSumConverges(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("no loopback TCP in this environment")
	}
	values := make([]float64, 12)
	var want float64
	for i := range values {
		values[i] = float64(i + 1)
		want += values[i]
	}
	c, err := NewCluster(values, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.WaitConverged(1e-6, 20*time.Second) {
		lo, hi, def := c.Spread()
		t.Fatalf("no convergence over TCP: spread [%v, %v], defined %v", lo, hi, def)
	}
	lo, hi, _ := c.Spread()
	if math.Abs(lo-want) > 1e-3 || math.Abs(hi-want) > 1e-3 {
		t.Errorf("estimates [%v, %v], want %v", lo, hi, want)
	}
	var total int64
	for _, n := range c.Nodes {
		total += n.Exchanges()
	}
	if total == 0 {
		t.Error("no exchanges over the wire")
	}
}

func TestNodeLifecycle(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("no loopback TCP in this environment")
	}
	n, err := NewNode(5, true, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n.Addr() == "" {
		t.Error("no listen address")
	}
	if est, ok := n.Estimate(); !ok || est != 5 {
		t.Errorf("initial estimate %v/%v", est, ok)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestWeightlessEstimateUndefined(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("no loopback TCP in this environment")
	}
	n, err := NewNode(5, false, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, ok := n.Estimate(); ok {
		t.Error("weightless node must have undefined estimate")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster([]float64{1}, time.Millisecond); err == nil {
		t.Error("single-node cluster must fail")
	}
}

func TestSurvivesDeadPeer(t *testing.T) {
	if !loopbackAvailable() {
		t.Skip("no loopback TCP in this environment")
	}
	c, err := NewCluster([]float64{1, 2, 3, 4, 5, 6}, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WaitConverged(1e-3, 10*time.Second)
	// Kill one node abruptly; the others must keep converging among
	// themselves (its address stays in their views — dials just fail).
	_ = c.Nodes[3].Close()
	time.Sleep(50 * time.Millisecond)
	lo, hi, def := c.Spread()
	if def < 0.8 {
		t.Errorf("defined fraction %v after one crash", def)
	}
	if hi-lo > 1 {
		t.Errorf("survivors diverged: [%v, %v]", lo, hi)
	}
}

func TestCountersTrackExchanges(t *testing.T) {
	c, err := NewCluster([]float64{1, 2, 3}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.WaitConverged(1e-6, 5*time.Second) {
		t.Fatal("cluster did not converge")
	}
	var total int64
	for i, n := range c.Nodes {
		s := n.Stats()
		if s.Exchanges() != n.Exchanges() {
			t.Fatalf("node %d: Stats().Exchanges()=%d, Exchanges()=%d", i, s.Exchanges(), n.Exchanges())
		}
		if s.Initiated > 0 && s.BytesSent == 0 {
			t.Fatalf("node %d initiated exchanges but sent no bytes", i)
		}
		total += s.Exchanges()
	}
	if total == 0 {
		t.Fatal("no exchanges counted across the cluster")
	}
}
