// Package transport runs the epidemic sum over real TCP connections —
// the deployment-shaped vertical slice of the gossip substrate. Each
// participant owns a listener on the loopback interface, keeps an
// address book of peers (its local view Λ), and initiates push-pull
// exchanges as JSON-framed request/response round trips.
//
// The exchange is the same atomic averaging the simulators use: the
// responder merges the initiator's state with its own, adopts the
// result, and replies with it; the initiator adopts the reply. A reply
// lost to a timeout reproduces exactly the half-completed exchange the
// churn model of Section 6.1.5 describes.
package transport

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/wireproto"
)

// wire is the JSON frame of one exchange leg.
type wire struct {
	Sigma float64 `json:"sigma"`
	Omega float64 `json:"omega"`
}

// Node is one TCP gossip participant.
type Node struct {
	ln    net.Listener
	addr  string
	peers []string

	mu    sync.Mutex
	sigma float64
	omega float64

	interval  time.Duration
	timeout   time.Duration
	stop      chan struct{}
	wg        sync.WaitGroup
	exchanges atomic.Int64
	closed    atomic.Bool

	// counters mirrors the wire accounting chiaroscurod exports:
	// exchanges by role, timeouts, byte volume.
	counters wireproto.CounterSet

	// jitter paces initiations and picks gossip partners from a seeded
	// stream (keyed per listener address) — never the global source, so
	// gossip runs replay from their construction order alone.
	jitter *randx.Jitter
}

// NewNode starts a listener on 127.0.0.1 (ephemeral port) holding the
// given local value. interval is the pause between initiated exchanges.
func NewNode(value float64, weight bool, interval time.Duration) (*Node, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	n := &Node{
		ln:       ln,
		addr:     ln.Addr().String(),
		sigma:    value,
		interval: interval,
		timeout:  2 * time.Second,
		stop:     make(chan struct{}),
		jitter:   randx.NewJitter(0x6A177E12, addrStream(ln.Addr().String())),
	}
	if weight {
		n.omega = 1
	}
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.addr }

// SetPeers installs the local view (addresses of other nodes).
func (n *Node) SetPeers(addrs []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append([]string(nil), addrs...)
}

// Start launches the gossip loop.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.loop()
}

// Estimate returns the node's current estimate σ/ω, if defined.
func (n *Node) Estimate() (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.omega <= 0 {
		return 0, false
	}
	return n.sigma / n.omega, true
}

// Exchanges returns how many exchanges this node completed (both roles).
func (n *Node) Exchanges() int64 { return n.exchanges.Load() }

// Stats returns the node's wire counters (exchanges by role, timeouts,
// byte volume) — the same shape chiaroscurod exports as metrics.
func (n *Node) Stats() wireproto.Counters { return n.counters.Snapshot() }

// Close stops the loops and the listener.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	close(n.stop)
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

// countingConn counts the bytes actually moved on the wire into the
// node's counters — exact accounting with no re-serialization.
type countingConn struct {
	net.Conn
	c *wireproto.CounterSet
}

func (cc countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.c.BytesRecv.Add(int64(n))
	return n, err
}

func (cc countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.c.BytesSent.Add(int64(n))
	return n, err
}

// serve accepts exchange requests: read one frame, merge, adopt, reply.
func (n *Node) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func(conn net.Conn) {
			defer n.wg.Done()
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(n.timeout))
			cc := countingConn{Conn: conn, c: &n.counters}
			var req wire
			if err := json.NewDecoder(bufio.NewReader(cc)).Decode(&req); err != nil {
				n.counters.Rejected.Add(1)
				return
			}
			merged := n.merge(req)
			enc, _ := json.Marshal(merged)
			_, _ = cc.Write(append(enc, '\n'))
			n.counters.Responded.Add(1)
		}(conn)
	}
}

// merge applies the push-pull update under the node lock and returns
// the merged state.
func (n *Node) merge(req wire) wire {
	n.mu.Lock()
	defer n.mu.Unlock()
	ms := (n.sigma + req.Sigma) / 2
	mw := (n.omega + req.Omega) / 2
	n.sigma, n.omega = ms, mw
	n.exchanges.Add(1)
	return wire{Sigma: ms, Omega: mw}
}

// loop initiates exchanges with random peers.
func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case <-time.After(n.interval/2 + n.jitter.DurationN(n.interval)):
		}
		n.mu.Lock()
		if len(n.peers) == 0 {
			n.mu.Unlock()
			continue
		}
		peer := n.peers[n.jitter.IntN(len(n.peers))]
		mine := wire{Sigma: n.sigma, Omega: n.omega}
		n.mu.Unlock()

		merged, err := n.call(peer, mine)
		if err != nil {
			// Nothing was given away; if the responder merged before the
			// reply was lost, the global mass is corrupted — exactly the
			// mid-exchange churn hazard of Section 6.1.5, rare on a
			// loopback with generous timeouts.
			n.counters.Timeouts.Add(1)
			continue
		}
		n.counters.Initiated.Add(1)
		n.mu.Lock()
		// Concurrent exchanges may have changed our state since `mine`
		// was snapshotted; reconcile by keeping the difference so the
		// pairwise average stays mass-preserving:
		//   new = merged + (current - mine).
		n.sigma = merged.Sigma + (n.sigma - mine.Sigma)
		n.omega = merged.Omega + (n.omega - mine.Omega)
		n.exchanges.Add(1)
		n.mu.Unlock()
	}
}

// call performs one TCP round trip.
func (n *Node) call(addr string, req wire) (wire, error) {
	conn, err := net.DialTimeout("tcp", addr, n.timeout)
	if err != nil {
		return wire{}, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.timeout))
	cc := countingConn{Conn: conn, c: &n.counters}
	enc, _ := json.Marshal(req)
	if _, err := cc.Write(append(enc, '\n')); err != nil {
		return wire{}, err
	}
	var resp wire
	if err := json.NewDecoder(bufio.NewReader(cc)).Decode(&resp); err != nil {
		return wire{}, err
	}
	return resp, nil
}

// Cluster is a convenience harness: spin up n nodes on loopback, fully
// meshed, node 0 carrying the weight.
type Cluster struct {
	Nodes []*Node
}

// NewCluster builds and starts a loopback cluster over the given values.
func NewCluster(values []float64, interval time.Duration) (*Cluster, error) {
	if len(values) < 2 {
		return nil, errors.New("transport: need at least 2 nodes")
	}
	c := &Cluster{}
	for i, v := range values {
		node, err := NewNode(v, i == 0, interval)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: node %d: %w", i, err)
		}
		c.Nodes = append(c.Nodes, node)
	}
	addrs := make([]string, len(c.Nodes))
	for i, node := range c.Nodes {
		addrs[i] = node.Addr()
	}
	for i, node := range c.Nodes {
		peers := make([]string, 0, len(addrs)-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node.SetPeers(peers)
		node.Start()
	}
	return c, nil
}

// Spread returns the min/max defined estimates and the defined fraction.
func (c *Cluster) Spread() (lo, hi, defined float64) {
	nDef := 0
	for _, node := range c.Nodes {
		est, ok := node.Estimate()
		if !ok {
			continue
		}
		if nDef == 0 || est < lo {
			lo = est
		}
		if nDef == 0 || est > hi {
			hi = est
		}
		nDef++
	}
	return lo, hi, float64(nDef) / float64(len(c.Nodes))
}

// WaitConverged polls until all estimates agree within tol or the
// deadline passes.
func (c *Cluster) WaitConverged(tol float64, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		lo, hi, def := c.Spread()
		if def == 1 && hi-lo <= tol {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, node := range c.Nodes {
		if node != nil {
			_ = node.Close()
		}
	}
}

// addrStream folds an address string into a jitter stream id (FNV-1a),
// giving each listener its own seeded sequence.
func addrStream(addr string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return h.Sum64()
}
