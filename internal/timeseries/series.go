// Package timeseries provides the time-series substrate used throughout
// Chiaroscuro: fixed-length real-valued series, datasets stored as dense
// matrices, Euclidean geometry, and the circular moving-average smoothing
// of Section 5.2 of the paper.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Series is a fixed-length sequence of real-valued measures
// s = <s[1] s[2] ... s[n]> (0-indexed here).
type Series []float64

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Add adds o to s element-wise, in place. It panics if lengths differ.
func (s Series) Add(o Series) {
	if len(s) != len(o) {
		panic(fmt.Sprintf("timeseries: length mismatch %d != %d", len(s), len(o)))
	}
	for i, v := range o {
		s[i] += v
	}
}

// Scale multiplies every measure by f, in place.
func (s Series) Scale(f float64) {
	for i := range s {
		s[i] *= f
	}
}

// Dist2 returns the squared Euclidean distance between s and o.
// It panics if lengths differ.
func (s Series) Dist2(o Series) float64 {
	if len(s) != len(o) {
		panic(fmt.Sprintf("timeseries: length mismatch %d != %d", len(s), len(o)))
	}
	var d2 float64
	for i, v := range s {
		d := v - o[i]
		d2 += d * d
	}
	return d2
}

// Dist returns the Euclidean distance between s and o.
func (s Series) Dist(o Series) float64 { return math.Sqrt(s.Dist2(o)) }

// Sum returns the sum of the measures of s.
func (s Series) Sum() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// Min returns the smallest measure, or +Inf for an empty series.
func (s Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measure, or -Inf for an empty series.
func (s Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// Clamp restricts every measure to [lo, hi], in place.
func (s Series) Clamp(lo, hi float64) {
	for i, v := range s {
		if v < lo {
			s[i] = lo
		} else if v > hi {
			s[i] = hi
		}
	}
}

// InRange reports whether every measure lies in [lo, hi].
func (s Series) InRange(lo, hi float64) bool {
	for _, v := range s {
		if v < lo || v > hi || math.IsNaN(v) {
			return false
		}
	}
	return true
}

// SMA returns the circular simple-moving-average smoothing of s over a
// window of w+1 measures (w/2 on each side, indices taken modulo n), as
// defined in Section 5.2 of the paper:
//
//	s̄[j] = (s[j−w/2] + ... + s[j+w/2]) / (w+1)
//
// A window w <= 0 returns a plain copy. Even w is used as-is; odd w is
// rounded down to the nearest even value so the window stays centered.
func (s Series) SMA(w int) Series {
	n := len(s)
	if w <= 0 || n == 0 {
		return s.Clone()
	}
	if w >= n {
		w = n - 1
	}
	w -= w % 2 // keep the window centered
	if w == 0 {
		return s.Clone()
	}
	half := w / 2
	out := make(Series, n)
	// Running circular window sum: O(n) rather than O(n*w).
	var sum float64
	for j := -half; j <= half; j++ {
		sum += s[mod(j, n)]
	}
	for j := 0; j < n; j++ {
		out[j] = sum / float64(w+1)
		sum -= s[mod(j-half, n)]
		sum += s[mod(j+half+1, n)]
	}
	return out
}

func mod(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// ErrRagged is returned when series of different lengths are combined
// into a single dataset.
var ErrRagged = errors.New("timeseries: series have differing lengths")

// Dataset is a set of t time-series of identical length n, stored in a
// single dense row-major buffer so that large collections (millions of
// series) stay cache- and GC-friendly.
type Dataset struct {
	data []float64
	n    int // series length
	t    int // number of series
}

// NewDataset creates an empty dataset of series length n.
func NewDataset(n int) *Dataset {
	if n <= 0 {
		panic("timeseries: series length must be positive")
	}
	return &Dataset{n: n}
}

// NewDatasetCap creates an empty dataset of series length n with room
// preallocated for capSeries series.
func NewDatasetCap(n, capSeries int) *Dataset {
	d := NewDataset(n)
	d.data = make([]float64, 0, n*capSeries)
	return d
}

// FromSeries builds a dataset from a slice of equal-length series.
func FromSeries(rows []Series) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, errors.New("timeseries: empty dataset")
	}
	d := NewDatasetCap(len(rows[0]), len(rows))
	for _, r := range rows {
		if len(r) != d.n {
			return nil, ErrRagged
		}
		d.Append(r)
	}
	return d, nil
}

// Append adds one series to the dataset. It panics on length mismatch.
func (d *Dataset) Append(s Series) {
	if len(s) != d.n {
		panic(fmt.Sprintf("timeseries: appending series of length %d to dataset of length %d", len(s), d.n))
	}
	d.data = append(d.data, s...)
	d.t++
}

// AppendRaw adds t series stored contiguously in raw. It panics if
// len(raw) is not a multiple of the series length.
func (d *Dataset) AppendRaw(raw []float64) {
	if len(raw)%d.n != 0 {
		panic("timeseries: raw buffer is not a whole number of series")
	}
	d.data = append(d.data, raw...)
	d.t += len(raw) / d.n
}

// Len returns the number of series t.
func (d *Dataset) Len() int { return d.t }

// Dim returns the series length n.
func (d *Dataset) Dim() int { return d.n }

// Row returns the i-th series as a view into the dataset buffer.
// Mutating the returned slice mutates the dataset.
func (d *Dataset) Row(i int) Series {
	return Series(d.data[i*d.n : (i+1)*d.n])
}

// Raw exposes the underlying row-major buffer (length Len()*Dim()).
func (d *Dataset) Raw() []float64 { return d.data }

// Centroid returns the dimension-wise mean g of the whole dataset
// (the "center of mass" used by the inter-cluster inertia).
func (d *Dataset) Centroid() Series {
	g := make(Series, d.n)
	if d.t == 0 {
		return g
	}
	for i := 0; i < d.t; i++ {
		row := d.data[i*d.n : (i+1)*d.n]
		for j, v := range row {
			g[j] += v
		}
	}
	g.Scale(1 / float64(d.t))
	return g
}

// Range returns the minimum and maximum measure across the dataset.
func (d *Dataset) Range() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range d.data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Subset returns a new dataset containing the rows whose indices are
// listed in idx. Rows are copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := NewDatasetCap(d.n, len(idx))
	for _, i := range idx {
		out.Append(d.Row(i))
	}
	return out
}

// FullInertia returns the constant q^ζ of Definition 1: the mean squared
// distance of every series to the global centroid. It upper-bounds the
// intra-cluster inertia of any clustering of d.
func (d *Dataset) FullInertia() float64 {
	if d.t == 0 {
		return 0
	}
	g := d.Centroid()
	var q float64
	for i := 0; i < d.t; i++ {
		q += d.Row(i).Dist2(g)
	}
	return q / float64(d.t)
}
