package timeseries

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestDist2(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{1, 2, 2}
	if got := a.Dist2(b); got != 9 {
		t.Errorf("Dist2 = %v, want 9", got)
	}
	if got := a.Dist(b); got != 3 {
		t.Errorf("Dist = %v, want 3", got)
	}
}

func TestDistSymmetryQuick(t *testing.T) {
	f := func(x, y [8]int32) bool {
		a, b := make(Series, 8), make(Series, 8)
		for i := range x {
			a[i], b[i] = float64(x[i]), float64(y[i])
		}
		return almostEq(a.Dist2(b), b.Dist2(a)) && a.Dist2(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddScale(t *testing.T) {
	s := Series{1, 2, 3}
	s.Add(Series{1, 1, 1})
	s.Scale(2)
	want := Series{4, 6, 8}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("got %v, want %v", s, want)
		}
	}
}

func TestAddLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched length should panic")
		}
	}()
	Series{1}.Add(Series{1, 2})
}

func TestMinMaxSumClamp(t *testing.T) {
	s := Series{-3, 7, 2}
	if s.Min() != -3 || s.Max() != 7 || s.Sum() != 6 {
		t.Errorf("Min/Max/Sum = %v/%v/%v", s.Min(), s.Max(), s.Sum())
	}
	s.Clamp(0, 5)
	if s[0] != 0 || s[1] != 5 || s[2] != 2 {
		t.Errorf("Clamp produced %v", s)
	}
	if !s.InRange(0, 5) || s.InRange(1, 5) {
		t.Error("InRange misbehaves after clamp")
	}
}

func TestSMAConstantInvariant(t *testing.T) {
	// Smoothing a constant series must return the same constant series.
	s := make(Series, 24)
	for i := range s {
		s[i] = 42
	}
	for _, w := range []int{0, 2, 4, 5, 10, 23, 24, 100} {
		out := s.SMA(w)
		for j, v := range out {
			if !almostEq(v, 42) {
				t.Fatalf("SMA(%d)[%d] = %v, want 42", w, j, v)
			}
		}
	}
}

func TestSMAPreservesMeanQuick(t *testing.T) {
	// The circular window gives every element weight exactly (w+1)/(w+1):
	// the mean of the series is invariant under SMA.
	f := func(x [12]int32, wRaw uint8) bool {
		s := make(Series, 12)
		for i := range x {
			s[i] = float64(x[i]) / 1024
		}
		w := int(wRaw % 12)
		out := s.SMA(w)
		return almostEq(out.Sum(), s.Sum())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSMAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	s := make(Series, 20)
	for i := range s {
		s[i] = rng.Float64() * 10
	}
	for _, w := range []int{2, 4, 6, 8} {
		fast := s.SMA(w)
		half := w / 2
		for j := range s {
			var naive float64
			for d := -half; d <= half; d++ {
				naive += s[mod(j+d, len(s))]
			}
			naive /= float64(w + 1)
			if !almostEq(fast[j], naive) {
				t.Fatalf("SMA(%d)[%d] = %v, naive = %v", w, j, fast[j], naive)
			}
		}
	}
}

func TestSMAReducesLaplaceVariance(t *testing.T) {
	// The whole point of Section 5.2: averaging w+1 i.i.d. Laplace noises
	// divides their variance by ~(w+1).
	rng := rand.New(rand.NewPCG(3, 4))
	n := 240
	s := make(Series, n)
	for i := range s {
		// crude Laplace via difference of exponentials
		s[i] = -math.Log(1-rng.Float64()) + math.Log(1-rng.Float64())
	}
	varOf := func(x Series) float64 {
		m := x.Sum() / float64(len(x))
		var v float64
		for _, e := range x {
			v += (e - m) * (e - m)
		}
		return v / float64(len(x))
	}
	raw := varOf(s)
	smooth := varOf(s.SMA(8))
	if smooth > raw/3 {
		t.Errorf("SMA(8) variance %v not well below raw %v", smooth, raw)
	}
}

func TestDataset(t *testing.T) {
	d := NewDataset(3)
	d.Append(Series{1, 2, 3})
	d.Append(Series{3, 4, 5})
	if d.Len() != 2 || d.Dim() != 3 {
		t.Fatalf("Len/Dim = %d/%d", d.Len(), d.Dim())
	}
	g := d.Centroid()
	want := Series{2, 3, 4}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("Centroid = %v, want %v", g, want)
		}
	}
	lo, hi := d.Range()
	if lo != 1 || hi != 5 {
		t.Errorf("Range = %v..%v, want 1..5", lo, hi)
	}
	sub := d.Subset([]int{1})
	if sub.Len() != 1 || sub.Row(0)[0] != 3 {
		t.Errorf("Subset wrong: %+v", sub.Row(0))
	}
}

func TestFromSeriesRagged(t *testing.T) {
	if _, err := FromSeries([]Series{{1, 2}, {1}}); err != ErrRagged {
		t.Errorf("FromSeries ragged err = %v, want ErrRagged", err)
	}
	if _, err := FromSeries(nil); err == nil {
		t.Error("FromSeries(nil) should error")
	}
}

func TestAppendRaw(t *testing.T) {
	d := NewDataset(2)
	d.AppendRaw([]float64{1, 2, 3, 4})
	if d.Len() != 2 || d.Row(1)[1] != 4 {
		t.Errorf("AppendRaw wrong: len=%d", d.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendRaw with ragged buffer should panic")
		}
	}()
	d.AppendRaw([]float64{1})
}

func TestFullInertiaTwoPoints(t *testing.T) {
	d := NewDataset(1)
	d.Append(Series{0})
	d.Append(Series{2})
	// centroid = 1, each point at squared distance 1 -> mean 1.
	if got := d.FullInertia(); !almostEq(got, 1) {
		t.Errorf("FullInertia = %v, want 1", got)
	}
}

func TestRowIsView(t *testing.T) {
	d := NewDataset(2)
	d.Append(Series{1, 2})
	d.Row(0)[0] = 9
	if d.Row(0)[0] != 9 {
		t.Error("Row should be a mutable view")
	}
}
