package datasets

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"chiaroscuro/internal/timeseries"
)

// WriteCSV writes a dataset as CSV, one series per row.
func WriteCSV(w io.Writer, d *timeseries.Dataset) error {
	cw := csv.NewWriter(w)
	rec := make([]string, d.Dim())
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV. All rows must have the
// same number of fields.
func ReadCSV(r io.Reader) (*timeseries.Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var d *timeseries.Dataset
	var row timeseries.Series
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if d == nil {
			d = timeseries.NewDataset(len(rec))
			row = make(timeseries.Series, len(rec))
		}
		if len(rec) != d.Dim() {
			return nil, timeseries.ErrRagged
		}
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: bad float %q: %w", f, err)
			}
			row[j] = v
		}
		d.Append(row)
	}
	if d == nil {
		return nil, io.ErrUnexpectedEOF
	}
	return d, nil
}

// SaveCSV writes the dataset to the named file.
func SaveCSV(path string, d *timeseries.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := WriteCSV(bw, d); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSV reads a dataset from the named file.
func LoadCSV(path string) (*timeseries.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(bufio.NewReaderSize(f, 1<<20))
}
