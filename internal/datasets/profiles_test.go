package datasets

import (
	"bytes"
	"testing"

	"chiaroscuro/internal/randx"
)

func TestGenerateProfilesDeterministicAndLabeled(t *testing.T) {
	d, _ := GenerateCER(12, randx.New(7, 0xCE2))
	a := GenerateProfiles(d, 2, 1.5, CERMin, CERMax, randx.New(ProfileSeed(7), 0x90F))
	b := GenerateProfiles(d, 2, 1.5, CERMin, CERMax, randx.New(ProfileSeed(7), 0x90F))
	if len(a) != 24 {
		t.Fatalf("got %d profiles, want 24", len(a))
	}
	for i := range a {
		if a[i].User != i/2 || a[i].Rep != i%2 {
			t.Fatalf("profile %d labeled (%d,%d), want (%d,%d)", i, a[i].User, a[i].Rep, i/2, i%2)
		}
		for j := range a[i].Series {
			if a[i].Series[j] != b[i].Series[j] {
				t.Fatalf("profile %d measure %d differs across same-seed runs", i, j)
			}
			if a[i].Series[j] < CERMin || a[i].Series[j] > CERMax {
				t.Fatalf("profile %d measure %d = %v outside [%v, %v]",
					i, j, a[i].Series[j], CERMin, CERMax)
			}
		}
	}
	// The observation noise must actually perturb: profiles are aux
	// side-channel views, not copies of the raw series.
	same := 0
	for i, p := range a {
		src := d.Row(p.User)
		if p.Series.Dist2(src) == 0 {
			same++
		}
		_ = i
	}
	if same == len(a) {
		t.Fatal("profiles are exact copies of the source series")
	}
}

func TestProfileSeedDecorrelates(t *testing.T) {
	if ProfileSeed(1) == 1 || ProfileSeed(1) == ProfileSeed(2) {
		t.Fatalf("ProfileSeed not mixing: %x %x", ProfileSeed(1), ProfileSeed(2))
	}
}

func TestProfilesCSVRoundTrip(t *testing.T) {
	d, _ := GenerateNUMED(5, randx.New(3, 0x97ED))
	ps := GenerateProfiles(d, 3, 0.8, NUMEDMin, NUMEDMax, randx.New(ProfileSeed(3), 0x90F))
	var buf bytes.Buffer
	if err := WriteProfilesCSV(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfilesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("round trip lost rows: %d != %d", len(got), len(ps))
	}
	for i := range got {
		if got[i].User != ps[i].User || got[i].Rep != ps[i].Rep {
			t.Fatalf("row %d labels drifted", i)
		}
		for j := range got[i].Series {
			if got[i].Series[j] != ps[i].Series[j] {
				t.Fatalf("row %d measure %d drifted", i, j)
			}
		}
	}
	ds, owners := ProfilesDataset(ps)
	if ds.Len() != len(ps) || len(owners) != len(ps) || owners[4] != 1 {
		t.Fatalf("ProfilesDataset shape wrong: len %d owners %v", ds.Len(), owners)
	}
}
