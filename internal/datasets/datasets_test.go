package datasets

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"chiaroscuro/internal/randx"
)

func TestGenerateCERShape(t *testing.T) {
	rng := randx.New(1, 1)
	d, labels := GenerateCER(5000, rng)
	if d.Len() != 5000 || d.Dim() != CERLen {
		t.Fatalf("CER shape = %dx%d", d.Len(), d.Dim())
	}
	lo, hi := d.Range()
	if lo < CERMin || hi > CERMax {
		t.Errorf("CER range [%v,%v] outside [%v,%v]", lo, hi, CERMin, CERMax)
	}
	if len(labels) != 5000 {
		t.Fatalf("labels len = %d", len(labels))
	}
	// The mixture must be strongly concentrated: largest archetype well
	// above the smallest.
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	if len(counts) < 6 {
		t.Errorf("only %d archetypes appeared in 5000 draws", len(counts))
	}
	var sizes []int
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Ints(sizes)
	if sizes[len(sizes)-1] < 8*sizes[0] {
		t.Errorf("CER cluster sizes not concentrated: min=%d max=%d", sizes[0], sizes[len(sizes)-1])
	}
}

func TestGenerateCERDistinctArchetypes(t *testing.T) {
	rng := randx.New(2, 2)
	d, labels := GenerateCER(20000, rng)
	// Per-archetype mean curves should be pairwise well separated,
	// otherwise clustering on this data is meaningless.
	sums := make(map[int][]float64)
	counts := make(map[int]int)
	for i, l := range labels {
		if sums[l] == nil {
			sums[l] = make([]float64, CERLen)
		}
		row := d.Row(i)
		for j, v := range row {
			sums[l][j] += v
		}
		counts[l]++
	}
	var means [][]float64
	for l, s := range sums {
		if counts[l] < 50 {
			continue
		}
		m := make([]float64, CERLen)
		for j := range s {
			m[j] = s[j] / float64(counts[l])
		}
		means = append(means, m)
	}
	for i := 0; i < len(means); i++ {
		for j := i + 1; j < len(means); j++ {
			var d2 float64
			for h := range means[i] {
				diff := means[i][h] - means[j][h]
				d2 += diff * diff
			}
			if math.Sqrt(d2) < 1.0 {
				t.Errorf("archetype mean curves %d and %d nearly identical (dist %v)", i, j, math.Sqrt(d2))
			}
		}
	}
}

func TestGenerateNUMEDShape(t *testing.T) {
	rng := randx.New(3, 3)
	d, labels := GenerateNUMED(6000, rng)
	if d.Len() != 6000 || d.Dim() != NUMEDLen {
		t.Fatalf("NUMED shape = %dx%d", d.Len(), d.Dim())
	}
	lo, hi := d.Range()
	if lo < NUMEDMin || hi > NUMEDMax {
		t.Errorf("NUMED range [%v,%v] outside [%v,%v]", lo, hi, NUMEDMin, NUMEDMax)
	}
	// Balanced regimes: max/min cluster size ratio should stay modest.
	counts := make([]int, NUMEDRegimes())
	for _, l := range labels {
		counts[l]++
	}
	sort.Ints(counts)
	if counts[0] == 0 {
		t.Fatal("a NUMED regime never appeared")
	}
	if ratio := float64(counts[len(counts)-1]) / float64(counts[0]); ratio > 2 {
		t.Errorf("NUMED regimes unbalanced: ratio %v > 2", ratio)
	}
}

func TestNUMEDRegimesDiverge(t *testing.T) {
	// Responders should shrink on average, progressors grow.
	rng := randx.New(4, 4)
	d, labels := GenerateNUMED(6000, rng)
	slope := make([]float64, NUMEDRegimes())
	n := make([]int, NUMEDRegimes())
	for i, l := range labels {
		row := d.Row(i)
		slope[l] += row[NUMEDLen-1] - row[0]
		n[l]++
	}
	// regime 1 = deep-responder, regime 5 = fast-progressor
	if n[1] == 0 || n[5] == 0 {
		t.Skip("regimes missing in sample")
	}
	if slope[1]/float64(n[1]) >= 0 {
		t.Errorf("deep-responder mean slope %v, want negative", slope[1]/float64(n[1]))
	}
	if slope[5]/float64(n[5]) <= 0 {
		t.Errorf("fast-progressor mean slope %v, want positive", slope[5]/float64(n[5]))
	}
}

func TestGenerateA3Base(t *testing.T) {
	rng := randx.New(5, 5)
	d, labels := GenerateA3Base(rng)
	if d.Len() != A3BasePts || d.Dim() != 2 {
		t.Fatalf("A3 base shape = %dx%d", d.Len(), d.Dim())
	}
	counts := make(map[int]int)
	for _, l := range labels {
		counts[l]++
	}
	if len(counts) != A3Clusters {
		t.Fatalf("A3 clusters = %d, want %d", len(counts), A3Clusters)
	}
	for l, c := range counts {
		if c != A3BasePts/A3Clusters {
			t.Errorf("cluster %d has %d points", l, c)
		}
	}
}

func TestReplicateJitter(t *testing.T) {
	rng := randx.New(6, 6)
	base, _ := GenerateA3Base(rng)
	small := base.Subset([]int{0, 1, 2})
	rep := ReplicateJitter(small, 4, 0.5, rng)
	if rep.Len() != 12 {
		t.Fatalf("replicated len = %d, want 12", rep.Len())
	}
	// Jittered copies stay within 0.5 of originals.
	for r := 0; r < 4; r++ {
		for i := 0; i < 3; i++ {
			src, dst := small.Row(i), rep.Row(r*3+i)
			for j := range src {
				if math.Abs(src[j]-dst[j]) > 0.5+1e-12 {
					t.Fatalf("jitter exceeded bound: |%v - %v|", src[j], dst[j])
				}
			}
		}
	}
}

func TestSeedCentroids(t *testing.T) {
	rng := randx.New(7, 7)
	for _, kind := range []string{"cer", "numed", "a3"} {
		seeds := SeedCentroids(kind, 10, rng)
		if len(seeds) != 10 {
			t.Fatalf("%s: %d seeds", kind, len(seeds))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown kind should panic")
		}
	}()
	SeedCentroids("nope", 1, rng)
}

func TestCSVRoundTrip(t *testing.T) {
	rng := randx.New(8, 8)
	d, _ := GenerateCER(50, rng)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Dim() != d.Dim() {
		t.Fatalf("round trip shape %dx%d, want %dx%d", got.Len(), got.Dim(), d.Len(), d.Dim())
	}
	for i := 0; i < d.Len(); i++ {
		a, b := d.Row(i), got.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty CSV should error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,x\n")); err == nil {
		t.Error("non-numeric CSV should error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := GenerateCER(100, randx.New(9, 9))
	b, _ := GenerateCER(100, randx.New(9, 9))
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatal("same-seed CER generation diverged")
			}
		}
	}
}
