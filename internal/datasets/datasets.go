// Package datasets generates the three workloads used by the paper's
// evaluation (Section 6 and Appendix D) and provides CSV persistence.
//
// The real CER electricity dataset is distributed under an ISSDA license
// and the paper's NUMED dataset is itself synthetic, so this package
// substitutes faithful generators (see DESIGN.md §2):
//
//   - CER-like: daily household electricity load curves, 24 hourly
//     measures in [0, 80] kWh, drawn from a skewed mixture of household
//     archetypes. The mixture is strongly concentrated (a few huge
//     clusters, a long tail of small ones), which is the property the
//     paper's smoothing heuristic exploits.
//   - NUMED-like: tumor-growth series, 20 weekly measures in [0, 50] mm,
//     generated with the Claret tumor-growth-inhibition model the
//     paper's reference [7] describes, with balanced profile regimes.
//   - A3-like: the 7.5K-point, 50-cluster 2-D benchmark, duplicated 100
//     times with small uniform jitter to reach 750K points, exactly as
//     the paper's Appendix D constructs its dataset.
package datasets

import (
	"math"

	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// CER dataset constants from Table 2 and Section 6.1.1 of the paper.
const (
	CERLen  = 24  // measures per series (one per hour)
	CERMin  = 0.0 // measure range lower bound
	CERMax  = 80.0
	CERSize = 3_000_000 // series used in the paper's experiments

	NUMEDLen  = 20 // one measure per week
	NUMEDMin  = 0.0
	NUMEDMax  = 50.0
	NUMEDSize = 1_200_000

	A3Clusters = 50
	A3BasePts  = 7_500
	A3Replicas = 100
	A3Size     = A3BasePts * A3Replicas // 750K
	A3Min      = 0.0
	A3Max      = 100.0
)

// cerArchetype is one daily electricity usage shape. Loads are expressed
// as a base plus weighted bumps; the per-household scale is lognormal.
type cerArchetype struct {
	name   string
	weight float64   // population share (unnormalized) — deliberately skewed
	base   float64   // constant background load
	bumps  []cerBump // activity peaks
	scale  float64   // archetype-level multiplier
}

type cerBump struct {
	center, width, height float64
}

// cerArchetypes mirrors the strong concentration of residential load
// profiles: two dominant shapes (evening-peak workers), a mid tail, and
// several rare shapes (night storage heating, small businesses, ...).
var cerArchetypes = []cerArchetype{
	{"evening-peak", 0.34, 0.6, []cerBump{{7.5, 1.4, 3.0}, {19, 2.4, 9.0}}, 1.0},
	{"double-peak", 0.26, 0.5, []cerBump{{8, 1.8, 6.0}, {18.5, 2.2, 7.5}}, 1.0},
	{"daytime-home", 0.14, 0.9, []cerBump{{12, 3.5, 5.0}, {20, 1.8, 4.0}}, 1.0},
	{"late-night", 0.08, 0.7, []cerBump{{22.5, 2.0, 6.5}, {1.5, 1.5, 4.0}}, 1.0},
	{"business-9-5", 0.07, 0.4, []cerBump{{13, 4.0, 11.0}}, 1.6},
	{"night-storage", 0.05, 0.5, []cerBump{{3, 2.5, 14.0}, {19, 1.5, 2.0}}, 1.4},
	{"frugal-flat", 0.03, 0.35, []cerBump{{19.5, 2.0, 1.2}}, 0.5},
	{"heavy-consumer", 0.015, 2.5, []cerBump{{9, 2.0, 10.0}, {14, 2.5, 9.0}, {20, 2.5, 13.0}}, 2.2},
	{"two-shift", 0.01, 0.6, []cerBump{{5.5, 1.2, 7.0}, {17.5, 1.2, 7.0}}, 1.1},
	{"weekend-surge", 0.005, 0.8, []cerBump{{11, 5.0, 8.0}, {21, 1.5, 6.0}}, 1.3},
}

// CERArchetypes returns the number of distinct household archetypes used
// by the CER-like generator (useful for choosing k in demos).
func CERArchetypes() int { return len(cerArchetypes) }

// GenerateCER produces t CER-like daily electricity load series of
// CERLen hourly measures, clamped to [CERMin, CERMax]. The label slice
// gives the archetype index each series was drawn from (handy for
// sanity-checking clustering quality; the protocol never sees it).
func GenerateCER(t int, rng *randx.RNG) (*timeseries.Dataset, []int) {
	weights := make([]float64, len(cerArchetypes))
	for i, a := range cerArchetypes {
		weights[i] = a.weight
	}
	d := timeseries.NewDatasetCap(CERLen, t)
	labels := make([]int, t)
	row := make(timeseries.Series, CERLen)
	for i := 0; i < t; i++ {
		ai := rng.Categorical(weights)
		labels[i] = ai
		a := cerArchetypes[ai]
		// Household-level lognormal scale: median 1, moderate spread.
		hh := a.scale * rng.LogNormal(0, 0.35)
		jitterPhase := rng.Gaussian(0, 0.4)
		for h := 0; h < CERLen; h++ {
			v := a.base
			for _, b := range a.bumps {
				v += b.height * gaussBump(float64(h)+0.5, b.center+jitterPhase, b.width)
			}
			v *= hh
			v += math.Abs(rng.Gaussian(0, 0.25)) // appliance noise, non-negative-ish
			row[h] = v
		}
		row.Clamp(CERMin, CERMax)
		d.Append(row)
	}
	return d, labels
}

// gaussBump evaluates a periodic (24h-wrapped) Gaussian bump.
func gaussBump(x, center, width float64) float64 {
	d := math.Mod(x-center+36, 24) - 12 // circular distance in hours
	return math.Exp(-d * d / (2 * width * width))
}

// numedRegime is one tumor-response profile for the Claret model
// y(t) = y0 · exp(kG·t − (kD/λ)·(1 − e^(−λt))).
type numedRegime struct {
	name            string
	weight          float64
	y0Mu, y0Sig     float64 // baseline tumor size (lognormal, mm)
	kGMu, kGSig     float64 // growth rate per week
	kDMu, kDSig     float64 // drug-induced decay per week
	lambMu, lambSig float64 // drug-effect attenuation
}

// Balanced regimes (the paper notes NUMED series are "equally distributed
// across the clusters", unlike CER).
var numedRegimes = []numedRegime{
	{"responder", 1, 3.0, 0.25, 0.005, 0.002, 0.09, 0.02, 0.05, 0.01},
	{"deep-responder", 1, 3.2, 0.20, 0.003, 0.001, 0.16, 0.03, 0.03, 0.008},
	{"stable", 1, 2.8, 0.25, 0.012, 0.004, 0.012, 0.004, 0.08, 0.02},
	{"late-escape", 1, 2.6, 0.25, 0.045, 0.008, 0.11, 0.02, 0.35, 0.06},
	{"progressor", 1, 2.9, 0.25, 0.035, 0.007, 0.008, 0.003, 0.10, 0.02},
	{"fast-progressor", 1, 2.5, 0.30, 0.065, 0.010, 0.004, 0.002, 0.12, 0.02},
}

// NUMEDRegimes returns the number of distinct tumor-response regimes.
func NUMEDRegimes() int { return len(numedRegimes) }

// GenerateNUMED produces t NUMED-like tumor-growth series of NUMEDLen
// weekly measures clamped to [NUMEDMin, NUMEDMax], using the Claret
// tumor-growth-inhibition model with per-patient parameters.
func GenerateNUMED(t int, rng *randx.RNG) (*timeseries.Dataset, []int) {
	weights := make([]float64, len(numedRegimes))
	for i, r := range numedRegimes {
		weights[i] = r.weight
	}
	d := timeseries.NewDatasetCap(NUMEDLen, t)
	labels := make([]int, t)
	row := make(timeseries.Series, NUMEDLen)
	for i := 0; i < t; i++ {
		ri := rng.Categorical(weights)
		labels[i] = ri
		reg := numedRegimes[ri]
		y0 := rng.LogNormal(reg.y0Mu, reg.y0Sig)
		kG := math.Max(0, rng.Gaussian(reg.kGMu, reg.kGSig))
		kD := math.Max(0, rng.Gaussian(reg.kDMu, reg.kDSig))
		lamb := math.Max(1e-3, rng.Gaussian(reg.lambMu, reg.lambSig))
		for w := 0; w < NUMEDLen; w++ {
			tw := float64(w)
			y := y0 * math.Exp(kG*tw-(kD/lamb)*(1-math.Exp(-lamb*tw)))
			y += rng.Gaussian(0, 0.15) // measurement noise
			row[w] = y
		}
		row.Clamp(NUMEDMin, NUMEDMax)
		d.Append(row)
	}
	return d, labels
}

// GenerateA3Base produces the 7.5K-point, 50-cluster 2-D base set: 50
// well-separated Gaussian blobs of 150 points each inside [A3Min, A3Max]².
// Centers are laid on a jittered grid so blobs never collapse onto each
// other (the property the original A3 benchmark has).
func GenerateA3Base(rng *randx.RNG) (*timeseries.Dataset, []int) {
	const perCluster = A3BasePts / A3Clusters
	// 8x7 jittered grid, 50 of 56 cells used.
	type pt struct{ x, y float64 }
	centers := make([]pt, 0, A3Clusters)
	cells := rng.Perm(56)
	for _, c := range cells[:A3Clusters] {
		cx := float64(c%8)*12.5 + 6.25
		cy := float64(c/8)*14.3 + 7.15
		centers = append(centers, pt{
			x: cx + rng.Uniform(-2.5, 2.5),
			y: cy + rng.Uniform(-2.5, 2.5),
		})
	}
	d := timeseries.NewDatasetCap(2, A3BasePts)
	labels := make([]int, 0, A3BasePts)
	for ci, c := range centers {
		for p := 0; p < perCluster; p++ {
			d.Append(timeseries.Series{
				clampF(c.x+rng.Gaussian(0, 1.4), A3Min, A3Max),
				clampF(c.y+rng.Gaussian(0, 1.4), A3Min, A3Max),
			})
			labels = append(labels, ci)
		}
	}
	return d, labels
}

// ReplicateJitter duplicates every row of base `replicas` times, adding
// uniform jitter in [-jitter, +jitter] to each coordinate — the Appendix D
// construction ("duplicating 100 times each of the 7.5K points ... adding
// to each copy a uniform random value small enough to preserve the
// clusters").
func ReplicateJitter(base *timeseries.Dataset, replicas int, jitter float64, rng *randx.RNG) *timeseries.Dataset {
	out := timeseries.NewDatasetCap(base.Dim(), base.Len()*replicas)
	row := make(timeseries.Series, base.Dim())
	for r := 0; r < replicas; r++ {
		for i := 0; i < base.Len(); i++ {
			src := base.Row(i)
			for j := range row {
				row[j] = src[j] + rng.Uniform(-jitter, jitter)
			}
			out.Append(row)
		}
	}
	return out
}

// GenerateA3 produces the full 750K-point dataset of Appendix D.
func GenerateA3(rng *randx.RNG) *timeseries.Dataset {
	base, _ := GenerateA3Base(rng)
	return ReplicateJitter(base, A3Replicas, 0.5, rng)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SeedCentroids draws k plausible initial centroids for a dataset
// *without touching participant data*: it generates fresh series from
// the same generator family (the paper uses the CourboGen synthetic
// generator for CER seeds for exactly this privacy reason). kind must be
// one of "cer", "numed", "a3".
func SeedCentroids(kind string, k int, rng *randx.RNG) []timeseries.Series {
	var d *timeseries.Dataset
	switch kind {
	case "cer":
		d, _ = GenerateCER(k, rng)
	case "numed":
		d, _ = GenerateNUMED(k, rng)
	case "a3":
		base, _ := GenerateA3Base(rng)
		idx := rng.Perm(base.Len())[:k]
		d = base.Subset(idx)
	default:
		panic("datasets: unknown kind " + kind)
	}
	out := make([]timeseries.Series, k)
	for i := 0; i < k; i++ {
		out[i] = d.Row(i).Clone()
	}
	return out
}
