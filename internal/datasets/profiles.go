package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// Profile is one candidate observation of a user's series: the auxiliary
// information a linkage adversary holds (arXiv 1710.00197's "user
// profiles"). User is the ground-truth owner index into the dataset the
// profiles were drawn from; Rep distinguishes repeated observations of
// the same user.
type Profile struct {
	User   int
	Rep    int
	Series timeseries.Series
}

// ProfileSeed derives the replayable profile-observation seed from the
// dataset seed with the SplitMix64 finalizer — the same mixer family as
// cmd/soak's shard seeds — so the observation noise stream is
// decorrelated from the dataset stream but replays alone from the
// printed seed.
func ProfileSeed(base uint64) uint64 {
	x := base ^ 0x50F11E5D_A7A5E70 // "profile dataset" tweak
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// GenerateProfiles draws reps noisy candidate observations of every
// series of d — each profile is its owner's series plus i.i.d. Gaussian
// observation noise of the given standard deviation, clamped to
// [lo, hi]. The result is the labeled ground truth the linkage attack
// of internal/attack matches against the released centroids; the
// adversary model is a side channel that sees each user's measures
// imperfectly (a neighboring meter, a coarser-grained service, an old
// leak of the same household).
//
// Profiles come out in deterministic (user, rep) order; drive rng from
// ProfileSeed for a stream that replays independently of the dataset.
func GenerateProfiles(d *timeseries.Dataset, reps int, noise, lo, hi float64, rng *randx.RNG) []Profile {
	if reps < 1 {
		reps = 1
	}
	out := make([]Profile, 0, d.Len()*reps)
	for u := 0; u < d.Len(); u++ {
		src := d.Row(u)
		for r := 0; r < reps; r++ {
			s := make(timeseries.Series, len(src))
			for j, v := range src {
				s[j] = v + rng.Gaussian(0, noise)
			}
			s.Clamp(lo, hi)
			out = append(out, Profile{User: u, Rep: r, Series: s})
		}
	}
	return out
}

// ProfilesDataset flattens profiles into a dense dataset plus the
// parallel owner-label slice the attack scorer consumes.
func ProfilesDataset(ps []Profile) (*timeseries.Dataset, []int) {
	if len(ps) == 0 {
		return nil, nil
	}
	d := timeseries.NewDatasetCap(len(ps[0].Series), len(ps))
	owners := make([]int, 0, len(ps))
	for _, p := range ps {
		d.Append(p.Series)
		owners = append(owners, p.User)
	}
	return d, owners
}

// WriteProfilesCSV writes labeled profiles as CSV: user, rep, then the
// measures. The label columns are the linkage ground truth; strip them
// to obtain the anonymized candidate set an adversary would publish.
func WriteProfilesCSV(w io.Writer, ps []Profile) error {
	cw := csv.NewWriter(w)
	for _, p := range ps {
		rec := make([]string, 0, len(p.Series)+2)
		rec = append(rec, strconv.Itoa(p.User), strconv.Itoa(p.Rep))
		for _, v := range p.Series {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadProfilesCSV reads profiles written by WriteProfilesCSV.
func ReadProfilesCSV(r io.Reader) ([]Profile, error) {
	cr := csv.NewReader(r)
	var out []Profile
	dim := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("datasets: profile row has %d fields, want >= 3", len(rec))
		}
		if dim == -1 {
			dim = len(rec) - 2
		}
		if len(rec)-2 != dim {
			return nil, timeseries.ErrRagged
		}
		user, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("datasets: bad user label %q: %w", rec[0], err)
		}
		rep, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("datasets: bad rep label %q: %w", rec[1], err)
		}
		s := make(timeseries.Series, dim)
		for j, f := range rec[2:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: bad measure %q: %w", f, err)
			}
			s[j] = v
		}
		out = append(out, Profile{User: user, Rep: rep, Series: s})
	}
	if len(out) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	return out, nil
}
