package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 3, 100, 1000} {
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachSerialIsInline(t *testing.T) {
	// With one worker the calls must happen on the calling goroutine,
	// in order — protocols rely on this for deterministic serial mode.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if orig < 1 {
		t.Fatalf("default workers %d < 1", orig)
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("SetWorkers(3) -> %d", got)
	}
	SetWorkers(0) // reset to NumCPU
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("SetWorkers(0) -> %d, want NumCPU %d", got, runtime.NumCPU())
	}
}
