package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 3, 100, 1000} {
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachSerialIsInline(t *testing.T) {
	// With one worker the calls must happen on the calling goroutine,
	// in order — protocols rely on this for deterministic serial mode.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestEnvWorkers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"1", 1}, {"7", 7}, {" 3 ", 3}, {"16", 16}} {
		v, err := EnvWorkers(tc.in)
		if err != nil || v != tc.want {
			t.Errorf("EnvWorkers(%q) = %d, %v; want %d", tc.in, v, err, tc.want)
		}
	}
	// A malformed override must be a loud error, not a silent no-op
	// (CHIAROSCURO_WORKERS=fast used to be dropped without a word).
	for _, bad := range []string{"", "fast", "1.5", "0", "-2", "0x4", "1e3"} {
		if _, err := EnvWorkers(bad); err == nil {
			t.Errorf("EnvWorkers(%q) accepted a malformed worker count", bad)
		}
	}
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if orig < 1 {
		t.Fatalf("default workers %d < 1", orig)
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("SetWorkers(3) -> %d", got)
	}
	SetWorkers(0) // reset to NumCPU
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("SetWorkers(0) -> %d, want NumCPU %d", got, runtime.NumCPU())
	}
}
