// Package parallel is the shared bounded worker substrate the crypto
// and simulation layers fan out on: per-dimension homomorphic
// operations, encryption fan-outs, partial-decryption sweeps, and the
// conflict-free exchange batches of the parallel simulation cycle.
//
// The process-wide default worker count is runtime.NumCPU(), overridable
// programmatically with SetWorkers or from the environment with
// CHIAROSCURO_WORKERS (CI sets it to 1 to force fully serial runs).
// Every fan-out assigns each index to exactly one worker, so any
// computation whose index i writes only slot i is deterministic
// regardless of the worker count.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var defaultWorkers atomic.Int64

// tokens is the process-wide bucket bounding the number of *spawned*
// worker goroutines across every concurrent and nested ForEach: a
// fan-out may only spawn helpers while tokens are available, and the
// calling goroutine always works inline. A dim-level loop nested inside
// an engine-level batch therefore degrades to inline execution instead
// of oversubscribing the machine with workers² goroutines.
var tokens atomic.Value // chan struct{} with capacity Workers()-1

func init() {
	w := runtime.NumCPU()
	if s := os.Getenv("CHIAROSCURO_WORKERS"); s != "" {
		v, err := EnvWorkers(s)
		if err != nil {
			// init cannot return an error; a malformed override used to be
			// dropped silently, which hid typos like WORKERS=fast. Say so.
			fmt.Fprintf(os.Stderr, "chiaroscuro: %v (falling back to %d workers)\n", err, w)
		} else {
			w = v
		}
	}
	setWorkers(w)
}

// EnvWorkers parses a CHIAROSCURO_WORKERS value: a positive integer
// worker count. Anything else — non-numeric, zero, negative — is an
// error (reported at startup; the override is then ignored).
func EnvWorkers(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("parallel: CHIAROSCURO_WORKERS=%q is not an integer", s)
	}
	if v < 1 {
		return 0, fmt.Errorf("parallel: CHIAROSCURO_WORKERS=%d must be at least 1", v)
	}
	return v, nil
}

func setWorkers(v int) {
	defaultWorkers.Store(int64(v))
	tokens.Store(make(chan struct{}, v-1))
}

// Workers returns the process-wide default worker count (>= 1).
func Workers() int { return int(defaultWorkers.Load()) }

// SetWorkers overrides the process-wide default worker count and the
// shared spawn budget; values below 1 reset it to runtime.NumCPU(). It
// must not be called concurrently with running fan-outs.
func SetWorkers(v int) {
	if v < 1 {
		v = runtime.NumCPU()
	}
	setWorkers(v)
}

// ForEach runs fn(i) for every i in [0, n) and returns when all calls
// completed. The calling goroutine always participates; up to
// workers-1 helper goroutines are spawned while the process-wide spawn
// budget allows, so total worker concurrency stays bounded by the
// SetWorkers/CHIAROSCURO_WORKERS setting no matter how fan-outs nest
// or race. workers <= 1 (or a single-element range) is exactly a plain
// inline loop. Indices are handed out dynamically, which keeps cores
// busy when per-index cost is skewed (the big.Int exponent sizes of
// the crypto layer vary); fn must therefore not depend on execution
// order.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	if workers <= 1 {
		work()
		return
	}
	bucket, _ := tokens.Load().(chan struct{})
	var wg sync.WaitGroup
spawn:
	for w := 1; w < workers; w++ {
		select {
		case bucket <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-bucket
					wg.Done()
				}()
				work()
			}()
		default:
			// Spawn budget exhausted (nested or concurrent fan-outs
			// already saturate the cores): work inline instead.
			break spawn
		}
	}
	work()
	wg.Wait()
}
