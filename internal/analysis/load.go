package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready for
// analyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load resolves patterns (e.g. "./...") relative to dir, type-checks
// every matched package from source, and returns them sorted by import
// path. Dependencies — the standard library included — are imported
// from the gc export data `go list -export` produces, so loading works
// offline and needs nothing beyond the Go toolchain. This is the same
// strategy golang.org/x/tools/go/packages uses, restated on the
// standard library because this repository carries no module
// dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	type listPkg struct {
		ImportPath string
		Dir        string
		Export     string
		GoFiles    []string
		DepOnly    bool
		Error      *struct{ Err string }
	}

	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, fn := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, fn), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// NewInfo allocates a types.Info with every map analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Finding pairs a diagnostic with the analyzer that produced it and its
// resolved position.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}
