package analysis

import "strings"

// PathIn reports whether import path p is one of the roots or a
// subpackage of one (e.g. "chiaroscuro/internal/homenc/damgardjurik"
// is in root "chiaroscuro/internal/homenc").
func PathIn(p string, roots ...string) bool {
	for _, r := range roots {
		if p == r || strings.HasPrefix(p, r+"/") {
			return true
		}
	}
	return false
}

// Package sets the analyzers scope themselves to. The analyzers match
// by these full import paths, which the analysistest fixtures reproduce
// under their testdata/src trees.
var (
	// DeterministicPackages hold protocol state whose iteration order
	// reaches released centroids, wire bytes, or replayable schedules:
	// range over a map there is a determinism bug unless proven
	// order-free (maporder's invariant, the PR 3 bug class).
	DeterministicPackages = []string{
		// The adversarial privacy bench's contract is byte-identical
		// same-seed ATTACK_*.json reports; any ordering or rng drift
		// there silently un-pins the CI privacy-regression gate.
		"chiaroscuro/internal/attack",
		"chiaroscuro/internal/eesum",
		"chiaroscuro/internal/core",
		"chiaroscuro/internal/sim",
		"chiaroscuro/internal/node",
		"chiaroscuro/internal/homenc",
		"chiaroscuro/internal/gossip",
		"chiaroscuro/internal/newscast",
		"chiaroscuro/internal/journal",
	}

	// SeededPackages must draw every random decision from the seeded
	// randx/SplitMix64 lineage so soak and chaos runs replay exactly
	// (rngsource's invariant, the PR 6 replay guarantee).
	SeededPackages = append([]string{
		"chiaroscuro/internal/faultnet",
		"chiaroscuro/internal/mux",
		"chiaroscuro/internal/transport",
		"chiaroscuro/internal/p2p",
		"chiaroscuro/internal/randx",
		"chiaroscuro/internal/dp",
		"chiaroscuro/internal/dpkmeans",
		"chiaroscuro/internal/kmeans",
		"chiaroscuro/internal/soak",
	}, DeterministicPackages...)

	// WallclockFreePackages are the protocol-decision packages where
	// time.Now has no business at all: anything timing-derived there
	// leaks schedule nondeterminism into protocol state. The network
	// runtime packages (node, mux, transport, p2p, soak) are exempt —
	// they legitimately stamp I/O deadlines.
	WallclockFreePackages = []string{
		"chiaroscuro/internal/eesum",
		"chiaroscuro/internal/core",
		"chiaroscuro/internal/sim",
		"chiaroscuro/internal/homenc",
		"chiaroscuro/internal/gossip",
		"chiaroscuro/internal/newscast",
		"chiaroscuro/internal/faultnet",
		"chiaroscuro/internal/dp",
		"chiaroscuro/internal/randx",
	}

	// NetworkReachablePackages decode bytes an adversary controls;
	// every Unmarshal there must be the ...Bound/Limits variant when
	// one exists (boundeddecode's invariant, the PR 2 hardening).
	NetworkReachablePackages = []string{
		"chiaroscuro/internal/node",
		"chiaroscuro/internal/mux",
		"chiaroscuro/internal/wireproto",
		"chiaroscuro/internal/p2p",
		"chiaroscuro/internal/transport",
		// The journal decodes bytes from disk, not the wire, but a
		// tampered or corrupted state file is the same adversary shape:
		// every decode there must be bounded.
		"chiaroscuro/internal/journal",
	}

	// SharedBigIntPackages hold ciphertext/share state built on big.Int
	// whose documented contract is immutability (bigintalias's
	// invariant).
	SharedBigIntPackages = []string{
		"chiaroscuro/internal/homenc",
		"chiaroscuro/internal/eesum",
		"chiaroscuro/internal/shamir",
	}
)
