// Package maporder flags `range` over a map in the deterministic
// protocol packages (eesum, core, sim, node, homenc, gossip, newscast).
//
// Go randomizes map iteration order per run, so any map-ordered loop
// whose effects reach protocol state — merged sums, partial-decryption
// truncation, wire encodings, schedules — breaks the bit-identical
// release guarantee. PR 3 shipped two exactly such bugs on the
// decryption path (DecryptionLatency.adopt and eesum.CopyParts
// truncated in map order); this analyzer makes the class unshippable.
//
// Two forms are allowed:
//
//   - the collect-keys idiom: a loop whose whole body appends the range
//     key to a slice that the same function later sorts;
//   - an explicit `//lint:orderfree <reason>` annotation on the loop
//     (same line or the line above) for loops that are genuinely
//     order-insensitive (pure set/count/lookup construction).
package maporder

import (
	"go/ast"
	"go/types"

	"chiaroscuro/internal/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags range over a map in deterministic protocol packages unless keys are collected and sorted or the loop is annotated //lint:orderfree",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathIn(pass.Pkg.Path(), analysis.DeterministicPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		// All function bodies in the file, so each range loop can find
		// its innermost enclosing function for the sorted-keys check.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkRange(pass, rs, innermost(bodies, rs))
			}
			return true
		})
	}
	return nil
}

// innermost returns the smallest function body containing at.
func innermost(bodies []*ast.BlockStmt, at ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= at.Pos() && at.End() <= b.End() {
			if best == nil || b.Pos() >= best.Pos() {
				best = b
			}
		}
	}
	return best
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if pass.Exempt("orderfree", rs.For) {
		return
	}
	if fnBody != nil && isCollectKeysIdiom(pass, rs, fnBody) {
		return
	}
	pass.Reportf(rs.For, "range over map iterates in nondeterministic order in a deterministic protocol package; collect and sort the keys, or annotate //lint:orderfree with a reason")
}

// isCollectKeysIdiom recognizes
//
//	for k := range m { ks = append(ks, k) }
//	... sort.Slice(ks, ...) / slices.Sort(ks) ...
//
// the loop body must be exactly the append of the range key, and the
// enclosing function must sort the same slice after the loop.
func isCollectKeysIdiom(pass *analysis.Pass, rs *ast.RangeStmt, fn *ast.BlockStmt) bool {
	if rs.Value != nil && !isBlank(rs.Value) {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.ObjectOf(src) != pass.ObjectOf(dst) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok || pass.ObjectOf(arg) != pass.ObjectOf(key) {
		return false
	}
	// The collected slice must be sorted after the loop.
	slice := pass.ObjectOf(dst)
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		first, ok := call.Args[0].(*ast.Ident)
		if ok && pass.ObjectOf(first) == slice {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
