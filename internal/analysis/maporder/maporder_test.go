package maporder_test

import (
	"testing"

	"chiaroscuro/internal/analysis/analysistest"
	"chiaroscuro/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "chiaroscuro/internal/eesum")
}

// TestOutOfScope proves the analyzer is silent outside the
// deterministic protocol packages.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "chiaroscuro/internal/wireproto")
}
