// Fixture for the maporder analyzer: eesum is a deterministic protocol
// package, so naked map ranges are flagged; the collect-and-sort idiom
// and justified //lint:orderfree annotations are not.
package eesum

import "sort"

func naked(parts map[int]float64) float64 {
	total := 0.0
	for k := range parts { // want `range over map iterates in nondeterministic order`
		total += parts[k]
	}
	return total
}

func nakedKeyValue(parts map[int]float64) float64 {
	total := 0.0
	for _, v := range parts { // want `range over map iterates in nondeterministic order`
		total += v
	}
	return total
}

func collectAndSort(parts map[int]float64) []float64 {
	ks := make([]int, 0, len(parts))
	for k := range parts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([]float64, 0, len(ks))
	for _, k := range ks {
		out = append(out, parts[k])
	}
	return out
}

func collectWithoutSort(parts map[int]float64) []int {
	ks := make([]int, 0, len(parts))
	for k := range parts { // want `range over map iterates in nondeterministic order`
		ks = append(ks, k)
	}
	return ks
}

func annotated(parts map[int]float64) int {
	n := 0
	//lint:orderfree pure count, no order-dependent effects
	for range parts {
		n++
	}
	return n
}

func annotatedSameLine(parts map[int]float64) map[int]bool {
	out := make(map[int]bool, len(parts))
	for k := range parts { //lint:orderfree whole-map copy into a map
		out[k] = true
	}
	return out
}

func annotatedWithoutReason(parts map[int]float64) int {
	n := 0
	// want+1 `//lint:orderfree annotation requires a reason`
	for range parts { //lint:orderfree
		n++
	}
	return n
}

func sliceRangeIsFine(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}
