// Out-of-scope fixture: wireproto is not a deterministic protocol
// package, so maporder must stay silent here even on a naked map range.
package wireproto

func frameSizes(frames map[string][]byte) int {
	total := 0
	for _, b := range frames {
		total += len(b)
	}
	return total
}
