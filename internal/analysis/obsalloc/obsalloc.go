// Package obsalloc guards the Events() no-subscriber fast path that
// PR 5 pinned at zero allocations (BenchmarkEventBusNoSubscriber):
// every emission site in package chiaroscuro must check the bus's
// atomic subscribed gate before building an event value or calling
// emit. A site that constructs the event first — even one that then
// checks the gate — allocates on every protocol iteration of every
// silent run, and the benchmark only catches the sites it exercises.
//
// In package chiaroscuro the analyzer flags, outside the bus's own
// implementation (methods of eventBus and subscriber):
//
//   - calls to eventBus.emit not dominated by an active()/
//     subscribed.Load() guard;
//   - composite literals of a concrete Event type not dominated by such
//     a guard, unless passed directly to eventBus.close (the terminal
//     Done event is built once per run, not on the fast path).
//
// Escape hatch: `//lint:obs <reason>` for deliberate off-fast-path
// construction.
package obsalloc

import (
	"go/ast"
	"go/types"

	"chiaroscuro/internal/analysis"
)

// Analyzer is the obsalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obsalloc",
	Doc:  "flags event allocation or emit calls on the no-subscriber Events() fast path that are not gated on the subscribed flag",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != "chiaroscuro" {
		return nil
	}
	eventTypes := concreteEventTypes(pass.Pkg)
	if len(eventTypes) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isBusInternal(pass, fd) {
				continue
			}
			checkFunc(pass, fd.Body, eventTypes)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, eventTypes map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBusMethodCall(pass, n, "emit") && !guarded(pass, body, n) {
				if !pass.Exempt("obs", n.Pos()) {
					pass.Reportf(n.Pos(), "emit call not dominated by an active()/subscribed gate; the no-subscriber fast path must return before any event work")
				}
			}
		case *ast.CompositeLit:
			tv := pass.TypeOf(n)
			if tv == nil {
				return true
			}
			named, ok := tv.(*types.Named)
			if !ok || !eventTypes[named.Obj()] {
				return true
			}
			if closedTerminal(pass, body, n) || guarded(pass, body, n) {
				return true
			}
			if !pass.Exempt("obs", n.Pos()) {
				pass.Reportf(n.Pos(), "event value %s built without checking the subscribed gate first; this allocates on every iteration of a silent run", named.Obj().Name())
			}
		}
		return true
	})
}

// guarded reports whether node sits on the subscriber-present side of
// an active()/subscribed.Load() check: either inside an if whose
// condition reads the gate, or after an early-return gate check in an
// enclosing block.
func guarded(pass *analysis.Pass, body *ast.BlockStmt, node ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !readsGate(ifs.Cond) {
			return true
		}
		// Inside the guarded branch.
		if ifs.Body.Pos() <= node.Pos() && node.End() <= ifs.Body.End() {
			found = true
			return false
		}
		// After `if !active() { return }`.
		if ifs.End() <= node.Pos() && endsInReturn(ifs.Body) {
			found = true
			return false
		}
		return true
	})
	return found
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// readsGate reports whether expr mentions e.active() or
// b.subscribed.Load().
func readsGate(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "active":
			found = true
		case "Load":
			if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "subscribed" {
				found = true
			}
		}
		return !found
	})
	return found
}

// closedTerminal reports whether lit is an argument of a direct
// eventBus.close call — the once-per-run terminal event.
func closedTerminal(pass *analysis.Pass, body *ast.BlockStmt, lit *ast.CompositeLit) bool {
	terminal := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBusMethodCall(pass, call, "close") {
			return true
		}
		for _, a := range call.Args {
			if a == lit {
				terminal = true
				return false
			}
			if u, ok := a.(*ast.UnaryExpr); ok && u.X == lit {
				terminal = true
				return false
			}
		}
		return true
	})
	return terminal
}

// isBusMethodCall reports whether call invokes the named method on the
// eventBus type.
func isBusMethodCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	return namedTypeName(recv.Type()) == "eventBus"
}

// isBusInternal reports whether fd is a method of the bus machinery
// itself (eventBus, subscriber), where unguarded event handling is the
// implementation, not a leak.
func isBusInternal(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	switch namedTypeName(t) {
	case "eventBus", "subscriber":
		return true
	}
	return false
}

func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// concreteEventTypes finds the package-level struct types implementing
// the package's Event interface (the isEvent marker).
func concreteEventTypes(pkg *types.Package) map[types.Object]bool {
	evObj := pkg.Scope().Lookup("Event")
	if evObj == nil {
		return nil
	}
	iface, ok := evObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	out := map[types.Object]bool{}
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || tn == evObj {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out[tn] = true
		}
	}
	return out
}
