package obsalloc_test

import (
	"testing"

	"chiaroscuro/internal/analysis/analysistest"
	"chiaroscuro/internal/analysis/obsalloc"
)

func TestObsalloc(t *testing.T) {
	analysistest.Run(t, "testdata", obsalloc.Analyzer, "chiaroscuro")
}
