// Fixture for the obsalloc analyzer: a miniature of the root package's
// event machinery (Event marker interface, eventBus with an atomic
// subscribed gate, emitter with active()), plus emission sites in and
// out of compliance with the zero-alloc no-subscriber fast path.
package chiaroscuro

import "sync/atomic"

// Event is the marker interface the analyzer discovers concrete event
// types through.
type Event interface{ isEvent() }

// IterationEvent is a per-iteration event — the fast-path hazard.
type IterationEvent struct{ N int }

func (IterationEvent) isEvent() {}

// DoneEvent is the once-per-run terminal event.
type DoneEvent struct{ Iterations int }

func (DoneEvent) isEvent() {}

type eventBus struct {
	subscribed atomic.Bool
	ch         chan Event
}

// emit and close are the bus implementation: unguarded event handling
// here is the mechanism, not a leak, so the analyzer skips bus methods.
func (b *eventBus) emit(e Event) {
	if b.ch != nil {
		b.ch <- e
	}
}

func (b *eventBus) close(e Event) {
	if b.ch != nil {
		b.ch <- e
		close(b.ch)
	}
}

type emitter struct{ bus *eventBus }

func (e *emitter) active() bool { return e.bus.subscribed.Load() }

func unguardedEmit(b *eventBus, ev Event) {
	b.emit(ev) // want `emit call not dominated by an active\(\)/subscribed gate`
}

func unguardedBuild(b *eventBus, n int) {
	ev := IterationEvent{N: n} // want `event value IterationEvent built without checking the subscribed gate first`
	if b.subscribed.Load() {
		b.emit(ev)
	}
}

func guardedBranch(em *emitter, b *eventBus, n int) {
	if em.active() {
		b.emit(IterationEvent{N: n})
	}
}

func guardedEarlyReturn(b *eventBus, n int) {
	if !b.subscribed.Load() {
		return
	}
	b.emit(IterationEvent{N: n})
}

func terminalClose(b *eventBus, n int) {
	b.close(DoneEvent{Iterations: n}) // fine: the once-per-run terminal event
}

func annotatedSlowPath(b *eventBus, n int) {
	//lint:obs error path, runs at most once per job
	b.emit(IterationEvent{N: n})
}
