// Package bigintalias enforces the ciphertext immutability contract in
// the shared-big.Int packages (homenc and its schemes, eesum, shamir):
// "Ciphertexts are immutable: operations return new values"
// (homenc.Ciphertext's doc). A big.Int stored in a Ciphertext,
// PartialDecryption, share, or any other struct/slice/map cell may be
// aliased by every copy of that value across the protocol state — the
// eesum merge paths copy Ciphertext values freely — so mutating it in
// place corrupts state at a distance, nondeterministically.
//
// Two hazards are flagged:
//
//   - a mutating math/big method (one that writes its receiver: Add,
//     Mul, Mod, Exp, Set*, ...) called on a struct field or slice/map
//     element — only function-local big values may be mutated in place;
//   - a mutating method on a local variable that was previously stored
//     into a composite literal, a field, an element, or appended to a
//     slice — the store published the value, so later in-place writes
//     alias shared state.
//
// Escape hatch: `//lint:inplace <reason>` where single ownership is
// provable (e.g. a freshly allocated accumulator inside one function).
package bigintalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"chiaroscuro/internal/analysis"
)

// Analyzer is the bigintalias analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "bigintalias",
	Doc:  "flags in-place big.Int mutation of shared ciphertext/share state in homenc/eesum/shamir",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathIn(pass.Pkg.Path(), analysis.SharedBigIntPackages...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	escaped := collectEscapes(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || !isMutator(fn) {
			return true
		}
		switch recv := unparen(sel.X).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			if !pass.Exempt("inplace", call.Pos()) {
				pass.Reportf(call.Pos(), "%s mutates a big value held in shared struct/element state in place; ciphertext and share values are immutable — allocate a fresh value (or annotate //lint:inplace with an ownership argument)", fn.Name())
			}
		case *ast.Ident:
			obj := pass.ObjectOf(recv)
			if storePos, ok := escaped[obj]; ok && call.Pos() > storePos {
				if !pass.Exempt("inplace", call.Pos()) {
					pass.Reportf(call.Pos(), "%s mutates %s in place after it was stored into shared state (line %d); stored big values are immutable", fn.Name(), recv.Name, pass.Fset.Position(storePos).Line)
				}
			}
		}
		return true
	})
}

// collectEscapes finds local big.Int/Float/Rat variables published into
// shared state: assigned to a field or element, placed in a composite
// literal, or appended to a slice. Maps the object to the position of
// its earliest store.
func collectEscapes(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]token.Pos {
	escaped := map[types.Object]token.Pos{}
	record := func(e ast.Expr) {
		id, ok := unparen(stripAddr(e)).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !isBigPtr(obj.Type()) {
			return
		}
		if prev, ok := escaped[obj]; !ok || id.Pos() < prev {
			escaped[obj] = id.Pos()
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				switch unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					record(n.Rhs[i])
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					record(kv.Value)
				} else {
					record(el)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, a := range n.Args[1:] {
					record(a)
				}
			}
		}
		return true
	})
	return escaped
}

func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := e.(*ast.UnaryExpr); ok {
		return u.X
	}
	return e
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isMutator reports whether fn is a math/big method that writes its
// receiver. The math/big API contract makes this structural: every
// mutator is a pointer-receiver method whose first result is the
// receiver type ("sets z to ... and returns z").
func isMutator(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "math/big" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil || sig.Results().Len() == 0 {
		return false
	}
	return types.Identical(sig.Results().At(0).Type(), recv.Type())
}

// isBigPtr reports whether t is *big.Int, *big.Float or *big.Rat.
func isBigPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "math/big"
}
