// Fixture for the bigintalias analyzer: homenc is a shared-big.Int
// package, so in-place mutation of big values held in (or published to)
// shared state is flagged; fresh function-local accumulators are not.
package homenc

import "math/big"

type Ciphertext struct {
	C *big.Int
}

func mutateField(ct Ciphertext, x *big.Int) {
	ct.C.Add(ct.C, x) // want `Add mutates a big value held in shared struct/element state in place`
}

func mutateElement(cs []*big.Int, x *big.Int) {
	cs[0].Mul(cs[0], x) // want `Mul mutates a big value held in shared struct/element state in place`
}

func mutateAfterAppend(cs []*big.Int, x *big.Int) []*big.Int {
	v := new(big.Int).Set(x)
	cs = append(cs, v)
	v.Add(v, big.NewInt(1)) // want `Add mutates v in place after it was stored into shared state`
	return cs
}

func mutateAfterCompositeLit(x *big.Int) Ciphertext {
	v := new(big.Int).Set(x)
	ct := Ciphertext{C: v}
	v.SetInt64(3) // want `SetInt64 mutates v in place after it was stored into shared state`
	return ct
}

func mutateAfterFieldStore(ct *Ciphertext, x *big.Int) {
	v := new(big.Int).Set(x)
	ct.C = v
	v.Lsh(v, 1) // want `Lsh mutates v in place after it was stored into shared state`
}

func freshAccumulatorIsFine(xs []*big.Int) *big.Int {
	acc := new(big.Int)
	for _, x := range xs {
		acc.Add(acc, x)
	}
	return acc
}

func mutateBeforeStoreIsFine(x *big.Int) Ciphertext {
	v := new(big.Int).Set(x)
	v.Add(v, big.NewInt(1)) // still private here: the store happens below
	return Ciphertext{C: v}
}

func readOnlyUseIsFine(ct Ciphertext) *big.Int {
	return new(big.Int).Add(ct.C, big.NewInt(1))
}

func annotatedOwnership(cs []*big.Int) {
	v := new(big.Int)
	cs = append(cs, v)
	v.Add(v, big.NewInt(2)) //lint:inplace v was freshly allocated above and cs never leaves this function
	_ = cs
}
