package bigintalias_test

import (
	"testing"

	"chiaroscuro/internal/analysis/analysistest"
	"chiaroscuro/internal/analysis/bigintalias"
)

func TestBigintalias(t *testing.T) {
	analysistest.Run(t, "testdata", bigintalias.Analyzer, "chiaroscuro/internal/homenc")
}
