// Package analysis is Chiaroscuro's in-tree static-analysis framework:
// a deliberately small, dependency-free re-statement of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic)
// plus a package loader built on `go list -export` and the standard
// library's gc export-data importer.
//
// The framework exists because the repository's headline guarantee —
// networked, packed, chaos-injected and virtual-node runs all release
// bit-identical centroids to the simulator — rests on invariants that
// no general-purpose linter knows about:
//
//   - protocol state must never be iterated in map order (maporder);
//   - every random decision must descend from the seeded randx/SplitMix64
//     lineage, never wall clocks or global sources (rngsource);
//   - network-reachable decoding must use the ...Bound variants
//     (boundeddecode);
//   - big.Int values stored in shared ciphertext/share state are
//     immutable (bigintalias);
//   - the no-subscriber Events() path allocates nothing (obsalloc).
//
// Each invariant is an Analyzer in a subpackage, with analysistest
// fixtures under its testdata/ tree; cmd/chiaroscurolint runs the whole
// suite and CI fails on any diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. The shape mirrors
// x/tools/go/analysis so the checkers port mechanically if the external
// module ever becomes a dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// chiaroscurolint command line. By convention it is a single
	// lowercase word.
	Name string
	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary, the rest describes the invariant and its escape hatch.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Report. The returned error aborts the whole
	// run (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked view to an
// analyzer, plus the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)

	directives map[string][]directive // per-file //lint: directives, lazily built
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by identifier id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Info.ObjectOf(id)
}
