package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The analyzers' escape hatches are //lint:<tag> <reason> comments,
// placed either at the end of the flagged line or as a standalone
// comment on the line immediately above it. The reason is mandatory:
// an annotation without one is itself a diagnostic, so every exemption
// in the tree documents why the invariant does not apply.
//
// Tags in use: orderfree (maporder), wallclock and entropy (rngsource),
// unbounded (boundeddecode), inplace (bigintalias), obs (obsalloc).

type directive struct {
	tag    string
	reason string
	pos    token.Pos
}

// Exempt reports whether a //lint:<tag> directive covers pos. An
// annotation present but missing its reason still exempts the finding,
// but reports its own diagnostic, so the suite stays red until the
// reason is written down.
func (p *Pass) Exempt(tag string, pos token.Pos) bool {
	if p.directives == nil {
		p.directives = map[string][]directive{}
		for _, f := range p.Files {
			fname := p.Fset.Position(f.Pos()).Filename
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c)
					if ok {
						p.directives[fname] = append(p.directives[fname], d)
					}
				}
			}
		}
	}
	at := p.Fset.Position(pos)
	for _, d := range p.directives[at.Filename] {
		if d.tag != tag {
			continue
		}
		dl := p.Fset.Position(d.pos).Line
		if dl == at.Line || dl == at.Line-1 {
			if d.reason == "" {
				p.Reportf(d.pos, "//lint:%s annotation requires a reason", tag)
			}
			return true
		}
	}
	return false
}

func parseDirective(c *ast.Comment) (directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//lint:")
	if !ok {
		return directive{}, false
	}
	tag, reason, _ := strings.Cut(text, " ")
	return directive{tag: tag, reason: strings.TrimSpace(reason), pos: c.Pos()}, true
}
