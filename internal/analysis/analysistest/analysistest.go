// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want` comments — a self-contained
// restatement of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <analyzer pkg>/testdata/src/<import path>/*.go;
// the directory path below src/ IS the fixture package's import path,
// so an analyzer that scopes itself to chiaroscuro/internal/eesum is
// exercised by a fixture at testdata/src/chiaroscuro/internal/eesum/.
// Fixture packages may import each other and the standard library;
// standard-library dependencies are resolved from `go list -export`
// data, fixture-local ones recursively from source.
//
// Expectations are end-of-line comments:
//
//	for k := range m { // want `range over map`
//
// The backquoted text is a regexp that must match a diagnostic reported
// on that line. Every diagnostic must be wanted and every want matched,
// or the test fails. A comment may carry several `want` clauses (one
// per expected diagnostic on its line), and `want+N` expects the
// diagnostic N lines below the comment — needed when the flagged line
// ends in a //lint: directive and so cannot hold the want itself.
package analysistest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"chiaroscuro/internal/analysis"
)

// Run loads the fixture package with the given import path from
// testdata (the testdata/ directory of the calling analyzer package),
// applies the analyzer, and checks diagnostics against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	l := &loader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*fixturePkg{},
	}
	fp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var got []analysis.Finding
	pass := &analysis.Pass{
		Analyzer: a,
		Fset:     l.fset,
		Files:    fp.files,
		Pkg:      fp.types,
		Info:     fp.info,
	}
	pass.Report = func(d analysis.Diagnostic) {
		got = append(got, analysis.Finding{
			Analyzer: a.Name,
			Position: l.fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, l.fset, fp.files)
	for _, f := range got {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(f.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("missing diagnostic at %s: want match for %q", key, w)
			}
		}
	}
}

var wantRE = regexp.MustCompile("want(\\+[0-9]+)? `([^`]*)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "// want") {
					continue
				}
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[2], err)
					}
					offset := 0
					if m[1] != "" {
						offset, _ = strconv.Atoi(m[1])
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line+offset)
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader type-checks fixture packages, resolving fixture-local imports
// from source (recursively) and everything else from stdlib export
// data.
type loader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
}

func (l *loader) load(pkgPath string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[pkgPath]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	conf := types.Config{Importer: &fixtureImporter{l: l}}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{files: files, types: tpkg, info: info}
	l.pkgs[pkgPath] = fp
	return fp, nil
}

// fixtureImporter resolves fixture-local packages from the testdata
// tree and defers everything else to the shared stdlib importer.
type fixtureImporter struct{ l *loader }

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(fi.l.src, filepath.FromSlash(path)); isDir(dir) {
		fp, err := fi.l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.types, nil
	}
	return stdImporter().Import(path)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// stdImporter is the shared gc-export-data importer for the standard
// library, built once per test process: `go list -export -json std` is
// cheap after the first warm build but not free, so every analyzer test
// reuses one map and one importer.
var stdImporter = sync.OnceValue(func() types.Importer {
	type listPkg struct {
		ImportPath string
		Export     string
	}
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "std")
	out, err := cmd.Output()
	if err != nil {
		panic(fmt.Sprintf("analysistest: go list std: %v", err))
	}
	exports := map[string]string{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			panic(fmt.Sprintf("analysistest: go list output: %v", err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysistest: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(token.NewFileSet(), "gc", lookup)
})
