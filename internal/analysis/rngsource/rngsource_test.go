package rngsource_test

import (
	"testing"

	"chiaroscuro/internal/analysis/analysistest"
	"chiaroscuro/internal/analysis/rngsource"
)

// TestGlobalAndWallclock covers the global-source and wall-clock checks
// in a wallclock-free protocol package.
func TestGlobalAndWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", rngsource.Analyzer, "chiaroscuro/internal/sim")
}

// TestSeedLineage covers the constructor-seed check in a runtime
// package where the wall clock itself is allowed.
func TestSeedLineage(t *testing.T) {
	analysistest.Run(t, "testdata", rngsource.Analyzer, "chiaroscuro/internal/mux")
}
