// Package rngsource enforces the seeded-randomness lineage: every
// random decision in the protocol, simulation, network and fault
// packages must descend from an explicitly seeded source (the
// randx/SplitMix64 family), never from math/rand's global source, a
// wall clock, or crypto entropy.
//
// PR 6's fault schedules and the soak harness replay runs from a seed;
// one call to rand.IntN or a time-seeded rand.New breaks that replay
// silently. The analyzer flags, in the seeded packages:
//
//   - calls to math/rand or math/rand/v2 package-level functions that
//     draw from the global source (IntN, N, Shuffle, Perm, Float64, ...);
//     constructors (New, NewPCG, NewSource, ...) are fine — they take
//     the seed explicitly;
//   - rand.New / rand.NewSource / rand.NewPCG whose seed expression
//     derives from time (time.Now) or crypto entropy (crypto/rand);
//   - time.Now in the wallclock-free protocol packages, where timing
//     must never feed protocol state (the network runtime's I/O
//     deadlines are exempt by package).
//
// Escape hatches: `//lint:entropy <reason>` for a deliberate
// non-replayable draw, `//lint:wallclock <reason>` for a deliberate
// clock read.
package rngsource

import (
	"go/ast"
	"go/types"

	"chiaroscuro/internal/analysis"
)

// Analyzer is the rngsource analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc:  "flags global math/rand draws, time/crypto-seeded sources, and wall-clock reads that would break seed-replayability",
	Run:  run,
}

// Constructors take their seed explicitly and are the supported way to
// build a source; everything else at package level draws from the
// global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.PathIn(path, analysis.SeededPackages...) {
		return nil
	}
	wallclockFree := analysis.PathIn(path, analysis.WallclockFreePackages...)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return true
			}
			switch pkgPath(fn) {
			case "math/rand", "math/rand/v2":
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // methods on an explicit *Rand are fine
				}
				if !randConstructors[fn.Name()] {
					if !pass.Exempt("entropy", call.Pos()) {
						pass.Reportf(call.Pos(), "%s.%s draws from the global math/rand source; derive from the seeded randx/SplitMix64 lineage so runs replay from their seed", pkgPath(fn), fn.Name())
					}
					return true
				}
				if bad, what := nonSeedEntropy(pass, call); bad {
					if !pass.Exempt("entropy", call.Pos()) {
						pass.Reportf(call.Pos(), "rand.%s seeded from %s is not replayable; thread an explicit seed instead", fn.Name(), what)
					}
				}
			case "time":
				if wallclockFree && fn.Name() == "Now" {
					if !pass.Exempt("wallclock", call.Pos()) {
						pass.Reportf(call.Pos(), "time.Now in a wallclock-free protocol package; protocol decisions must not depend on the clock (annotate //lint:wallclock if this never reaches protocol state)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// nonSeedEntropy reports whether any argument of the constructor call
// reads the clock or crypto entropy.
func nonSeedEntropy(pass *analysis.Pass, call *ast.CallExpr) (bool, string) {
	found := ""
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil {
					if pkgPath(fn) == "time" && fn.Name() == "Now" {
						found = "time.Now"
						return false
					}
					if pkgPath(fn) == "crypto/rand" {
						found = "crypto/rand"
						return false
					}
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok && pn.Imported().Path() == "crypto/rand" {
						found = "crypto/rand"
						return false
					}
				}
			}
			return true
		})
		if found != "" {
			return true, found
		}
	}
	return false, ""
}

// calleeFunc resolves the called package-level function or method, or
// nil for builtins, conversions and indirect calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

func pkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
