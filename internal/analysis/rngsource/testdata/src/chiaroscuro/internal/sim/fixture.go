// Fixture for the rngsource analyzer: sim is both seeded (no global
// math/rand draws) and wallclock-free (no time.Now feeding protocol
// decisions).
package sim

import (
	"math/rand/v2"
	"time"
)

func globalDraw() int {
	return rand.IntN(10) // want `math/rand/v2.IntN draws from the global math/rand source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand/v2.Shuffle draws from the global math/rand source`
}

func seededDrawIsFine(seed uint64) int {
	r := rand.New(rand.NewPCG(seed, 1))
	return r.IntN(10)
}

func wallClock() time.Time {
	return time.Now() // want `time.Now in a wallclock-free protocol package`
}

func annotatedClock() int64 {
	t := time.Now() //lint:wallclock log timestamp only, never reaches protocol state
	return t.UnixNano()
}

func annotatedEntropy() int {
	return rand.IntN(3) //lint:entropy deliberate non-replayable tiebreak in a test helper
}

func durationMathIsFine(d time.Duration) time.Duration {
	return d / 2
}
