// Fixture for the rngsource analyzer's constructor-seed check: mux is a
// seeded package (runtime, so the wall clock itself is allowed for I/O
// deadlines) — but a source seeded from the clock or crypto entropy is
// still not replayable.
package mux

import (
	crand "crypto/rand"
	"io"
	"math/rand/v2"
	"time"
)

func timeSeeded() *rand.Rand {
	// Both the outer New and the inner NewPCG see the clock in their
	// argument tree, so the line carries two diagnostics.
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1)) // want `rand.New seeded from time.Now is not replayable` want `rand.NewPCG seeded from time.Now is not replayable`
}

func cryptoSeeded() *rand.Rand {
	return rand.New(rand.NewPCG(readSeed(crand.Reader), 1)) // want `rand.New seeded from crypto/rand is not replayable` want `rand.NewPCG seeded from crypto/rand is not replayable`
}

func explicitSeedIsFine(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 2))
}

func deadlineIsFine(d time.Duration) time.Time {
	return time.Now().Add(d) // mux is not wallclock-free: I/O deadlines are legitimate
}

func annotatedEntropySeed() *rand.Rand {
	//lint:entropy port-assignment nonce, never replayed
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 3))
}

func readSeed(r io.Reader) uint64 {
	var b [8]byte
	_, _ = io.ReadFull(r, b[:])
	var s uint64
	for _, x := range b {
		s = s<<8 | uint64(x)
	}
	return s
}
