// Package boundeddecode enforces PR 2's hostile-frame hardening: on
// network-reachable paths (node, mux, wireproto, p2p, transport), a
// decoder that has a size-bounded sibling must be called through it.
//
// An unbounded UnmarshalBinary on an attacker-supplied frame is an
// allocation bomb — the length words inside the frame, not the frame
// size, drive the allocations. The homenc wire layer therefore grew
// UnmarshalBinaryBound / UnmarshalVectorBound / UnmarshalIntBound with
// explicit caps. This analyzer flags any call to an Unmarshal* function
// or method from a network-reachable package when the callee's package
// or method set also exports the same name with a Bound suffix — the
// caller picked the unbounded variant where a bounded one exists.
//
// Escape hatch: `//lint:unbounded <reason>` for call sites whose input
// is provably not attacker-controlled (e.g. decoding a local key file).
package boundeddecode

import (
	"go/ast"
	"go/types"
	"strings"

	"chiaroscuro/internal/analysis"
)

// Analyzer is the boundeddecode analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "boundeddecode",
	Doc:  "flags unbounded Unmarshal calls on network-reachable paths where a ...Bound variant exists",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathIn(pass.Pkg.Path(), analysis.NetworkReachablePackages...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			name := fn.Name()
			if !strings.HasPrefix(name, "Unmarshal") || strings.HasSuffix(name, "Bound") {
				return true
			}
			if bounded := boundSibling(pass, sel, fn); bounded != "" {
				if !pass.Exempt("unbounded", call.Pos()) {
					pass.Reportf(call.Pos(), "unbounded %s on a network-reachable path; use %s with explicit caps (hostile frames drive allocations by their internal length words)", name, bounded)
				}
			}
			return true
		})
	}
	return nil
}

// boundSibling returns the name of the Bound variant of the callee if
// one exists in the same method set (for methods) or package scope (for
// functions), or "" if the callee has no bounded sibling.
func boundSibling(pass *analysis.Pass, sel *ast.SelectorExpr, fn *types.Func) string {
	want := fn.Name() + "Bound"
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		// Method: look the sibling up in the receiver's method set.
		t := recv.Type()
		ms := types.NewMethodSet(t)
		if ms.Lookup(fn.Pkg(), want) != nil {
			return want
		}
		// The receiver in the call may be addressable where the method
		// set above used the value type; check the pointer set too.
		if _, ok := t.(*types.Pointer); !ok {
			if types.NewMethodSet(types.NewPointer(t)).Lookup(fn.Pkg(), want) != nil {
				return want
			}
		}
		return ""
	}
	// Package-level function: the sibling lives in the callee's scope.
	if fn.Pkg() != nil && fn.Pkg().Scope().Lookup(want) != nil {
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := pass.ObjectOf(id).(*types.PkgName); isPkg {
				return id.Name + "." + want
			}
		}
		return want
	}
	return ""
}
