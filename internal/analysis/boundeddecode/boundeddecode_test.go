package boundeddecode_test

import (
	"testing"

	"chiaroscuro/internal/analysis/analysistest"
	"chiaroscuro/internal/analysis/boundeddecode"
)

func TestBoundeddecode(t *testing.T) {
	analysistest.Run(t, "testdata", boundeddecode.Analyzer, "chiaroscuro/internal/node")
}

// TestOutOfScope proves calls inside a non-network-reachable package
// (the homenc provider itself) are not flagged.
func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata", boundeddecode.Analyzer, "chiaroscuro/internal/homenc")
}
