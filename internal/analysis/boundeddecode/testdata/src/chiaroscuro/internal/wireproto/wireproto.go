// Provider fixture for the boundeddecode analyzer: a package-level
// decoder function with a Bound sibling in the same scope.
package wireproto

import "errors"

type Hello struct {
	Addr string
}

func UnmarshalHello(b []byte) (Hello, error) {
	return Hello{Addr: string(b)}, nil
}

func UnmarshalHelloBound(b []byte, max int) (Hello, error) {
	if len(b) > max {
		return Hello{}, errors.New("too large")
	}
	return Hello{Addr: string(b)}, nil
}
