// Provider fixture for the boundeddecode analyzer: a decoder method
// with a Bound sibling, and one without. homenc itself is not a
// network-reachable package, so calls inside it are not flagged.
package homenc

import "errors"

type Ciphertext struct{ b []byte }

func (c *Ciphertext) UnmarshalBinary(data []byte) error {
	c.b = append([]byte(nil), data...)
	return nil
}

func (c *Ciphertext) UnmarshalBinaryBound(data []byte, max int) error {
	if len(data) > max {
		return errors.New("too large")
	}
	return c.UnmarshalBinary(data) // out of scope: homenc is not network-reachable
}

type Share struct{ b []byte }

// UnmarshalText has no Bound sibling, so calls to it are never flagged.
func (s *Share) UnmarshalText(data []byte) error {
	s.b = append([]byte(nil), data...)
	return nil
}
