// Caller fixture for the boundeddecode analyzer: node is a
// network-reachable package, so every Unmarshal with a Bound sibling
// must go through the bounded variant.
package node

import (
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/wireproto"
)

func decodeCiphertext(b []byte) error {
	var c homenc.Ciphertext
	return c.UnmarshalBinary(b) // want `unbounded UnmarshalBinary on a network-reachable path; use UnmarshalBinaryBound with explicit caps`
}

func decodeCiphertextBounded(b []byte) error {
	var c homenc.Ciphertext
	return c.UnmarshalBinaryBound(b, 1024)
}

func decodeHello(b []byte) (wireproto.Hello, error) {
	return wireproto.UnmarshalHello(b) // want `unbounded UnmarshalHello on a network-reachable path; use wireproto.UnmarshalHelloBound with explicit caps`
}

func decodeHelloBounded(b []byte) (wireproto.Hello, error) {
	return wireproto.UnmarshalHelloBound(b, 256)
}

func decodeShare(b []byte) error {
	var s homenc.Share
	return s.UnmarshalText(b) // fine: UnmarshalText has no Bound sibling
}

func decodeTrustedKeyFile(b []byte) error {
	var c homenc.Ciphertext
	return c.UnmarshalBinary(b) //lint:unbounded local key file read at startup, not attacker-controlled
}
