package homenc

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzCiphertextWire round-trips arbitrary integers and feeds arbitrary
// bytes to the decoder: a decode that succeeds must re-encode to the
// same canonical bytes, and no input may allocate past the bound or
// panic.
func FuzzCiphertextWire(f *testing.F) {
	for _, seed := range [][]byte{
		{},
		{0x01, 0, 0, 0, 0},
		{0x02, 0, 0, 0, 1, 0xFF},
		{0x01, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3},
		mustMarshalCT(big.NewInt(0)),
		mustMarshalCT(big.NewInt(-123456789)),
		mustMarshalCT(new(big.Int).Lsh(big.NewInt(1), 2048)),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Ciphertext
		if err := c.UnmarshalBinaryBound(data, 1<<12); err != nil {
			return // malformed input must only error, never panic
		}
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		// The encoding is canonical up to leading zero bytes in the
		// magnitude (big.Int.Bytes strips them), so a decode/encode
		// round trip of the re-encoded form must be a fixed point.
		var c2 Ciphertext
		if err := c2.UnmarshalBinary(out); err != nil {
			t.Fatalf("decode of canonical encoding failed: %v", err)
		}
		if c.V.Cmp(c2.V) != 0 {
			t.Fatalf("round trip changed value: %v != %v", c.V, c2.V)
		}
		out2, _ := c2.MarshalBinary()
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical encoding not a fixed point")
		}
	})
}

// FuzzPartialDecryptionWire does the same for partial decryptions
// (share index + value).
func FuzzPartialDecryptionWire(f *testing.F) {
	for _, seed := range [][]byte{
		{},
		{0, 0, 0, 1},
		{0, 0, 0, 1, 0x01, 0, 0, 0, 0},
		{0, 0, 0, 2, 0x02, 0, 0, 0, 2, 0xAB, 0xCD},
		{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x7F, 0xFF, 0xFF, 0xFF, 1},
		mustMarshalPD(7, big.NewInt(424242)),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p PartialDecryption
		if err := p.UnmarshalBinaryBound(data, 1<<12); err != nil {
			return
		}
		out, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		var p2 PartialDecryption
		if err := p2.UnmarshalBinary(out); err != nil {
			t.Fatalf("decode of canonical encoding failed: %v", err)
		}
		if p2.Index != p.Index || p.V.Cmp(p2.V) != 0 {
			t.Fatalf("round trip changed (%d, %v) to (%d, %v)", p.Index, p.V, p2.Index, p2.V)
		}
	})
}

// FuzzVectorWire feeds arbitrary bytes to the bounded vector decoder:
// hostile counts and lengths must be rejected without large allocations.
func FuzzVectorWire(f *testing.F) {
	good, _ := MarshalVector([]Ciphertext{{V: big.NewInt(5)}, {V: big.NewInt(-9)}})
	f.Add(good)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // hostile count, no data
	f.Add([]byte{0, 0, 0, 2, 0x01, 0, 0, 0, 0}) // count 2, one element
	f.Add([]byte{0, 0, 0, 1, 0x03, 0, 0, 0, 0}) // bad tag
	f.Fuzz(func(t *testing.T, data []byte) {
		cts, err := UnmarshalVectorBound(data, 64, 1<<12)
		if err != nil {
			return
		}
		if len(cts) > 64 {
			t.Fatalf("decoded %d elements past the bound", len(cts))
		}
		out, err := MarshalVector(cts)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		cts2, err := UnmarshalVector(out)
		if err != nil || len(cts2) != len(cts) {
			t.Fatalf("canonical round trip failed: %v", err)
		}
	})
}

func mustMarshalCT(v *big.Int) []byte {
	b, err := Ciphertext{V: v}.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}

func mustMarshalPD(idx int, v *big.Int) []byte {
	b, err := PartialDecryption{Index: idx, V: v}.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}

// TestUnmarshalBoundsRejectBeforeAllocating pins the hardening contract:
// a frame advertising a magnitude or count beyond the caller's bound is
// rejected up front.
func TestUnmarshalBoundsRejectBeforeAllocating(t *testing.T) {
	// 4 GiB magnitude announcement in a 6-byte input.
	huge := []byte{0x01, 0xFF, 0xFF, 0xFF, 0xFE, 0x00}
	var c Ciphertext
	if err := c.UnmarshalBinaryBound(huge, 1<<16); err == nil {
		t.Fatal("hostile magnitude accepted")
	}
	// Magnitude exactly at the bound passes (given enough data).
	val := new(big.Int).Lsh(big.NewInt(1), 8*8-1) // 8-byte magnitude
	enc := mustMarshalCT(val)
	if err := c.UnmarshalBinaryBound(enc, 8); err != nil {
		t.Fatalf("in-bound magnitude rejected: %v", err)
	}
	if err := c.UnmarshalBinaryBound(enc, 7); err == nil {
		t.Fatal("out-of-bound magnitude accepted")
	}
	// 16M-element vector announcement in a 4-byte input.
	if _, err := UnmarshalVectorBound([]byte{0x00, 0xFF, 0xFF, 0xFF}, 1<<24, 16); err == nil {
		t.Fatal("hostile vector count accepted")
	}
	if _, err := UnmarshalVectorBound([]byte{0x00, 0x00, 0x00, 0x03}, 2, 16); err == nil {
		t.Fatal("vector count past bound accepted")
	}
}
