// Package homenc defines the additively-homomorphic threshold encryption
// abstraction Chiaroscuro is built on (Section 3.3.1 of the paper: any
// semantically secure, additively homomorphic scheme with non-interactive
// threshold decryption), plus the fixed-point encoding that maps the
// protocol's real-valued time-series into the scheme's integer plaintext
// space.
//
// Two implementations exist:
//
//   - homenc/damgardjurik: the real Damgård–Jurik scheme the paper names,
//     used for local-cost experiments and small-scale end-to-end runs;
//   - homenc/plain: a structure-preserving stand-in with no security,
//     used so protocol simulations can scale to 10⁵–10⁶ nodes (the paper
//     does the same: its large-scale latency experiments simulate the
//     epidemic algorithms without paying for crypto at every node).
package homenc

import (
	"math"
	"math/big"
)

// Ciphertext is an opaque encrypted (or, for the plain scheme, stand-in)
// integer. Ciphertexts are immutable: operations return new values.
type Ciphertext struct {
	V *big.Int
}

// PartialDecryption is the output of one key-share applied to a
// ciphertext (Section 4.2.3: partial decryptions combine once τ distinct
// shares contributed).
type PartialDecryption struct {
	Index int // 1-based key-share index
	V     *big.Int
}

// Scheme is the encryption interface the protocol layers use.
//
// Plaintexts are integers in [0, PlaintextSpace()); negative values are
// represented by their residue (two's-complement style) and recovered
// with Centered. Add is the homomorphic +h of the paper; ScalarMul is
// repeated +h (used by Algorithm 2 to rescale by powers of two).
type Scheme interface {
	// Name identifies the scheme ("damgard-jurik", "plain").
	Name() string
	// PlaintextSpace returns the plaintext modulus (n^s for Damgård–
	// Jurik), or nil when plaintexts are unbounded (plain scheme).
	PlaintextSpace() *big.Int
	// Encrypt encrypts m (which may be negative; it is reduced into the
	// plaintext space).
	Encrypt(m *big.Int) Ciphertext
	// Add returns a +h b.
	Add(a, b Ciphertext) Ciphertext
	// ScalarMul returns k ·h a for a non-negative integer k.
	ScalarMul(a Ciphertext, k *big.Int) Ciphertext
	// CiphertextBytes is the wire size of one ciphertext, for the
	// bandwidth accounting of Figure 5(b).
	CiphertextBytes() int
	// NumShares and Threshold describe the key-share configuration
	// (nκ and τ of Table 1).
	NumShares() int
	Threshold() int
	// PartialDecrypt applies key-share index (1-based) to c.
	PartialDecrypt(index int, c Ciphertext) (PartialDecryption, error)
	// Combine merges at least Threshold distinct partial decryptions of
	// c into the plaintext (reduced into [0, PlaintextSpace())).
	Combine(c Ciphertext, parts []PartialDecryption) (*big.Int, error)
}

// HeadroomEpochs returns the largest e with bound·2^e < half(space) —
// how many doubling epochs an EESum run can accumulate before a value
// of magnitude bound stops being centered-representable. The inequality
// is strict: for an even space the epoch that scales bound to exactly
// space/2 is unsafe (-space/2 has no centered representative; the
// residue decodes as +space/2), so it is not counted. For an odd space
// ±half are both representable and the strict rule gives up that one
// boundary epoch — deliberately, keeping a single conservative rule
// (the boundary is a measure-zero case for real Damgård–Jurik spaces).
// A nil space or non-positive bound means no constraint (the maximum
// int is returned).
//
// This is the single source of truth for the protocol's plaintext
// headroom math; eesum.Sum.HeadroomExchanges and core.HeadroomBits are
// thin wrappers.
func HeadroomEpochs(space, bound *big.Int) int {
	maxInt := int(^uint(0) >> 1)
	if space == nil || bound == nil || bound.Sign() <= 0 {
		return maxInt
	}
	half := new(big.Int).Rsh(space, 1)
	q, r := new(big.Int).QuoRem(half, bound, new(big.Int))
	e := q.BitLen() - 1 // 2^e <= q, so bound·2^e <= half
	if e >= 0 && r.Sign() == 0 && q.TrailingZeroBits() == uint(e) {
		// q is an exact power of two and divides half exactly:
		// bound·2^e == half violates the strict bound.
		e--
	}
	return e
}

// Centered maps a residue v in [0, space) to its centered representative
// in (-space/2, space/2], recovering negative plaintexts. A nil space
// returns v unchanged.
func Centered(v, space *big.Int) *big.Int {
	if space == nil {
		return v
	}
	half := new(big.Int).Rsh(space, 1)
	if v.Cmp(half) > 0 {
		return new(big.Int).Sub(v, space)
	}
	return v
}

// Codec converts between the protocol's float64 measures and integer
// plaintexts using fixed-point encoding with FracBits fractional bits.
type Codec struct {
	FracBits uint
}

// DefaultFracBits gives ~1e-9 absolute encoding precision, far below
// any differentially-private noise magnitude.
const DefaultFracBits = 30

// NewCodec returns a codec with the given number of fractional bits
// (DefaultFracBits if fracBits is 0).
func NewCodec(fracBits uint) Codec {
	if fracBits == 0 {
		fracBits = DefaultFracBits
	}
	return Codec{FracBits: fracBits}
}

// Encode converts x to its fixed-point integer representation
// round(x · 2^FracBits). It panics on NaN/Inf: those are programming
// errors upstream, not data.
func (c Codec) Encode(x float64) *big.Int {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic("homenc: cannot encode NaN/Inf")
	}
	scaled := new(big.Float).SetPrec(128).SetFloat64(x)
	scaled.Mul(scaled, new(big.Float).SetPrec(128).SetMantExp(big.NewFloat(1), int(c.FracBits)))
	i, _ := scaled.Int(nil)
	// Round-to-nearest: big.Float.Int truncates toward zero, so adjust
	// when the fractional remainder reaches one half in magnitude.
	frac := new(big.Float).Sub(scaled, new(big.Float).SetInt(i))
	frac.Abs(frac)
	if frac.Cmp(big.NewFloat(0.5)) >= 0 {
		if scaled.Sign() >= 0 {
			i.Add(i, big.NewInt(1))
		} else {
			i.Sub(i, big.NewInt(1))
		}
	}
	return i
}

// Decode converts a (possibly negative, already centered) fixed-point
// integer back to float64, dividing by an extra integer divisor (the
// epidemic weight, so the 2^e scaling of Algorithm 2 cancels). A nil or
// zero divisor means divide by one.
func (c Codec) Decode(v *big.Int, divisor *big.Int) float64 {
	num := new(big.Float).SetPrec(256).SetInt(v)
	den := new(big.Float).SetPrec(256).SetMantExp(big.NewFloat(1), int(c.FracBits))
	if divisor != nil && divisor.Sign() != 0 {
		den.Mul(den, new(big.Float).SetPrec(256).SetInt(divisor))
	}
	out, _ := new(big.Float).Quo(num, den).Float64()
	return out
}
