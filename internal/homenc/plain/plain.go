// Package plain implements homenc.Scheme with no encryption at all: the
// "ciphertext" is the plaintext integer. It preserves the structure of
// the real scheme — plaintext-space reduction, threshold bookkeeping,
// partial-decryption interface, wire sizes — so the gossip protocols can
// run unchanged at populations where real cryptography would be the
// bottleneck rather than the object of study. This mirrors the paper's
// own methodology (Section 6.1): latency experiments simulate the
// epidemic algorithms; crypto costs are measured separately on one node.
//
// SECURITY: this scheme offers none. It exists for simulation only.
package plain

import (
	"errors"
	"fmt"
	"math/big"

	"chiaroscuro/internal/homenc"
)

// Scheme is the no-crypto stand-in. The zero value is not usable; use New.
type Scheme struct {
	space     *big.Int // optional plaintext modulus (nil = unbounded)
	ctBytes   int      // reported wire size per ciphertext
	nShares   int
	threshold int
}

// New returns a plain scheme. space may be nil for unbounded plaintexts;
// ctBytes is the pretend wire size of a ciphertext (e.g. 2048/8 to mimic
// a 1024-bit-key Damgård–Jurik ciphertext at s=1); nShares/threshold
// configure the pretend key-share population.
func New(space *big.Int, ctBytes, nShares, threshold int) (*Scheme, error) {
	if threshold < 1 || nShares < threshold {
		return nil, fmt.Errorf("plain: invalid threshold %d of %d", threshold, nShares)
	}
	if ctBytes <= 0 {
		ctBytes = 256
	}
	return &Scheme{space: space, ctBytes: ctBytes, nShares: nShares, threshold: threshold}, nil
}

// Name implements homenc.Scheme.
func (s *Scheme) Name() string { return "plain" }

// PlaintextSpace implements homenc.Scheme.
func (s *Scheme) PlaintextSpace() *big.Int { return s.space }

func (s *Scheme) reduce(v *big.Int) *big.Int {
	if s.space == nil {
		return v
	}
	return v.Mod(v, s.space)
}

// Encrypt implements homenc.Scheme.
func (s *Scheme) Encrypt(m *big.Int) homenc.Ciphertext {
	return homenc.Ciphertext{V: s.reduce(new(big.Int).Set(m))}
}

// Add implements homenc.Scheme.
func (s *Scheme) Add(a, b homenc.Ciphertext) homenc.Ciphertext {
	return homenc.Ciphertext{V: s.reduce(new(big.Int).Add(a.V, b.V))}
}

// ScalarMul implements homenc.Scheme.
func (s *Scheme) ScalarMul(a homenc.Ciphertext, k *big.Int) homenc.Ciphertext {
	if k.Sign() < 0 {
		panic("plain: negative scalar")
	}
	return homenc.Ciphertext{V: s.reduce(new(big.Int).Mul(a.V, k))}
}

// CiphertextBytes implements homenc.Scheme.
func (s *Scheme) CiphertextBytes() int { return s.ctBytes }

// NumShares implements homenc.Scheme.
func (s *Scheme) NumShares() int { return s.nShares }

// Threshold implements homenc.Scheme.
func (s *Scheme) Threshold() int { return s.threshold }

// PartialDecrypt implements homenc.Scheme. The partial decryption of the
// plain scheme carries no information (the plaintext is already public
// within the simulation); only the index bookkeeping matters.
func (s *Scheme) PartialDecrypt(index int, c homenc.Ciphertext) (homenc.PartialDecryption, error) {
	if index < 1 || index > s.nShares {
		return homenc.PartialDecryption{}, fmt.Errorf("plain: key-share index %d out of range", index)
	}
	return homenc.PartialDecryption{Index: index, V: new(big.Int).Set(c.V)}, nil
}

// Combine implements homenc.Scheme: it checks that at least Threshold
// distinct shares contributed (the protocol invariant of Section 4.2.3)
// and returns the plaintext.
func (s *Scheme) Combine(c homenc.Ciphertext, parts []homenc.PartialDecryption) (*big.Int, error) {
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		if p.Index < 1 || p.Index > s.nShares {
			return nil, fmt.Errorf("plain: key-share index %d out of range", p.Index)
		}
		if seen[p.Index] {
			return nil, fmt.Errorf("plain: duplicate key-share %d", p.Index)
		}
		seen[p.Index] = true
	}
	if len(seen) < s.threshold {
		return nil, errors.New("plain: not enough distinct key-shares")
	}
	return new(big.Int).Set(c.V), nil
}

var _ homenc.Scheme = (*Scheme)(nil)
