package plain

import (
	"math/big"
	"testing"

	"chiaroscuro/internal/homenc"
)

func TestBasicOps(t *testing.T) {
	s, err := New(nil, 256, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Encrypt(big.NewInt(10))
	b := s.Encrypt(big.NewInt(-3))
	sum := s.Add(a, b)
	if sum.V.Cmp(big.NewInt(7)) != 0 {
		t.Errorf("Add = %v, want 7", sum.V)
	}
	sc := s.ScalarMul(a, big.NewInt(4))
	if sc.V.Cmp(big.NewInt(40)) != 0 {
		t.Errorf("ScalarMul = %v, want 40", sc.V)
	}
	if s.CiphertextBytes() != 256 {
		t.Errorf("CiphertextBytes = %d", s.CiphertextBytes())
	}
	if s.Name() != "plain" || s.PlaintextSpace() != nil {
		t.Error("metadata wrong")
	}
}

func TestModularSpace(t *testing.T) {
	s, err := New(big.NewInt(97), 0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Encrypt(big.NewInt(-1))
	if c.V.Cmp(big.NewInt(96)) != 0 {
		t.Errorf("Encrypt(-1) mod 97 = %v, want 96", c.V)
	}
	if got := homenc.Centered(c.V, s.PlaintextSpace()); got.Cmp(big.NewInt(-1)) != 0 {
		t.Errorf("Centered = %v, want -1", got)
	}
}

func TestThresholdBookkeeping(t *testing.T) {
	s, err := New(nil, 0, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Encrypt(big.NewInt(42))
	var parts []homenc.PartialDecryption
	for idx := 1; idx <= 3; idx++ {
		p, err := s.PartialDecrypt(idx, c)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	got, err := s.Combine(c, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(42)) != 0 {
		t.Errorf("Combine = %v, want 42", got)
	}
	// Below threshold fails even with no real crypto: the protocol
	// invariant must hold identically in simulation.
	if _, err := s.Combine(c, parts[:2]); err == nil {
		t.Error("below-threshold combine must fail")
	}
	dup := []homenc.PartialDecryption{parts[0], parts[0], parts[1]}
	if _, err := s.Combine(c, dup); err == nil {
		t.Error("duplicate shares must fail")
	}
	if _, err := s.PartialDecrypt(9, c); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, err := New(nil, 0, 2, 3); err == nil {
		t.Error("threshold > shares must fail")
	}
}

func TestImmutability(t *testing.T) {
	s, _ := New(nil, 0, 2, 1)
	m := big.NewInt(5)
	c := s.Encrypt(m)
	m.SetInt64(99) // mutating the input must not affect the ciphertext
	if c.V.Cmp(big.NewInt(5)) != 0 {
		t.Error("Encrypt aliased its input")
	}
	a := s.Encrypt(big.NewInt(1))
	_ = s.Add(a, a)
	if a.V.Cmp(big.NewInt(1)) != 0 {
		t.Error("Add mutated an operand")
	}
}
