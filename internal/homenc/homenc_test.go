package homenc

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestCentered(t *testing.T) {
	space := big.NewInt(100)
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 1}, {50, 50}, {51, -49}, {99, -1},
	}
	for _, c := range cases {
		got := Centered(big.NewInt(c.in), space)
		if got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Centered(%d) = %v, want %d", c.in, got, c.want)
		}
	}
	v := big.NewInt(-7)
	if Centered(v, nil) != v {
		t.Error("nil space must be identity")
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	codec := NewCodec(0)
	f := func(x int32, frac uint16) bool {
		v := float64(x) + float64(frac)/65536
		enc := codec.Encode(v)
		dec := codec.Decode(enc, nil)
		return math.Abs(dec-v) < 1.0/float64(uint64(1)<<(DefaultFracBits-1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecNegative(t *testing.T) {
	codec := NewCodec(16)
	enc := codec.Encode(-3.5)
	if enc.Sign() >= 0 {
		t.Fatalf("Encode(-3.5) = %v, want negative", enc)
	}
	if got := codec.Decode(enc, nil); got != -3.5 {
		t.Errorf("round trip = %v, want -3.5", got)
	}
}

func TestCodecDivisor(t *testing.T) {
	codec := NewCodec(20)
	// Encoding 10.0 then dividing by 4 must give 2.5: the divisor is how
	// the epidemic weight cancels the 2^e scaling.
	enc := codec.Encode(10)
	if got := codec.Decode(enc, big.NewInt(4)); got != 2.5 {
		t.Errorf("Decode with divisor 4 = %v, want 2.5", got)
	}
	if got := codec.Decode(enc, nil); got != 10 {
		t.Errorf("Decode nil divisor = %v, want 10", got)
	}
	if got := codec.Decode(enc, new(big.Int)); got != 10 {
		t.Errorf("Decode zero divisor = %v, want 10", got)
	}
}

func TestCodecAdditivity(t *testing.T) {
	// The whole protocol relies on Encode(a)+Encode(b) ≈ Encode(a+b).
	codec := NewCodec(0)
	f := func(a, b int32) bool {
		x, y := float64(a)/128, float64(b)/128
		sum := new(big.Int).Add(codec.Encode(x), codec.Encode(y))
		dec := codec.Decode(sum, nil)
		return math.Abs(dec-(x+y)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecRejectsNaN(t *testing.T) {
	codec := NewCodec(0)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%v) should panic", bad)
				}
			}()
			codec.Encode(bad)
		}()
	}
}

func TestCodecRounding(t *testing.T) {
	codec := NewCodec(2) // quarter precision
	// 0.3 * 4 = 1.2 -> rounds to 1 -> 0.25
	if got := codec.Decode(codec.Encode(0.3), nil); got != 0.25 {
		t.Errorf("Encode(0.3) decoded to %v, want 0.25", got)
	}
	// 0.4 * 4 = 1.6 -> rounds to 2 -> 0.5
	if got := codec.Decode(codec.Encode(0.4), nil); got != 0.5 {
		t.Errorf("Encode(0.4) decoded to %v, want 0.5", got)
	}
	// -0.4 -> -0.5 (round away from zero at half)
	if got := codec.Decode(codec.Encode(-0.4), nil); got != -0.5 {
		t.Errorf("Encode(-0.4) decoded to %v, want -0.5", got)
	}
}
