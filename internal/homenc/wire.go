package homenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Wire formats: in a deployment the Diptych's encrypted means travel
// between devices on every gossip exchange, so ciphertexts and partial
// decryptions need a compact canonical encoding. The format is a 1-byte
// sign/kind tag, a 4-byte big-endian length, and the magnitude bytes.

const (
	wirePositive byte = 0x01
	wireNegative byte = 0x02
)

// MarshalBinary implements encoding.BinaryMarshaler for ciphertexts.
func (c Ciphertext) MarshalBinary() ([]byte, error) {
	if c.V == nil {
		return nil, errors.New("homenc: nil ciphertext")
	}
	return marshalInt(c.V), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *Ciphertext) UnmarshalBinary(data []byte) error {
	v, rest, err := unmarshalInt(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("homenc: trailing bytes after ciphertext")
	}
	c.V = v
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for partial
// decryptions: a 4-byte share index followed by the value.
func (p PartialDecryption) MarshalBinary() ([]byte, error) {
	if p.V == nil {
		return nil, errors.New("homenc: nil partial decryption")
	}
	out := make([]byte, 4, 4+5+(p.V.BitLen()+7)/8)
	binary.BigEndian.PutUint32(out, uint32(p.Index))
	return append(out, marshalInt(p.V)...), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *PartialDecryption) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return errors.New("homenc: short partial decryption")
	}
	idx := binary.BigEndian.Uint32(data)
	v, rest, err := unmarshalInt(data[4:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("homenc: trailing bytes after partial decryption")
	}
	p.Index = int(idx)
	p.V = v
	return nil
}

// MarshalVector encodes a ciphertext vector (the Diptych means payload)
// with a count prefix.
func MarshalVector(cts []Ciphertext) ([]byte, error) {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, uint32(len(cts)))
	for _, c := range cts {
		b, err := c.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalVector decodes a MarshalVector payload.
func UnmarshalVector(data []byte) ([]Ciphertext, error) {
	if len(data) < 4 {
		return nil, errors.New("homenc: short vector")
	}
	n := binary.BigEndian.Uint32(data)
	if n > 1<<24 {
		return nil, fmt.Errorf("homenc: implausible vector length %d", n)
	}
	data = data[4:]
	out := make([]Ciphertext, 0, n)
	for i := uint32(0); i < n; i++ {
		v, rest, err := unmarshalInt(data)
		if err != nil {
			return nil, err
		}
		out = append(out, Ciphertext{V: v})
		data = rest
	}
	if len(data) != 0 {
		return nil, errors.New("homenc: trailing bytes after vector")
	}
	return out, nil
}

func marshalInt(v *big.Int) []byte {
	mag := v.Bytes()
	out := make([]byte, 5+len(mag))
	if v.Sign() < 0 {
		out[0] = wireNegative
	} else {
		out[0] = wirePositive
	}
	binary.BigEndian.PutUint32(out[1:], uint32(len(mag)))
	copy(out[5:], mag)
	return out
}

func unmarshalInt(data []byte) (*big.Int, []byte, error) {
	if len(data) < 5 {
		return nil, nil, errors.New("homenc: short integer encoding")
	}
	kind := data[0]
	if kind != wirePositive && kind != wireNegative {
		return nil, nil, fmt.Errorf("homenc: unknown integer tag 0x%02x", kind)
	}
	n := binary.BigEndian.Uint32(data[1:])
	if uint32(len(data)-5) < n {
		return nil, nil, errors.New("homenc: truncated integer encoding")
	}
	v := new(big.Int).SetBytes(data[5 : 5+n])
	if kind == wireNegative {
		v.Neg(v)
	}
	return v, data[5+n:], nil
}
