package homenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Wire formats: in a deployment the Diptych's encrypted means travel
// between devices on every gossip exchange, so ciphertexts and partial
// decryptions need a compact canonical encoding. The format is a 1-byte
// sign/kind tag, a 4-byte big-endian length, and the magnitude bytes.

const (
	wirePositive byte = 0x01
	wireNegative byte = 0x02
)

// DefaultMaxIntBytes bounds the magnitude of a decoded integer when the
// caller supplies no tighter bound: 64 KiB covers Damgård–Jurik
// ciphertexts up to a 4096-bit modulus at very high degrees with two
// orders of magnitude to spare, while refusing the 4 GiB allocations a
// hostile length prefix could otherwise request.
const DefaultMaxIntBytes = 64 << 10

// DefaultMaxVectorLen bounds the element count of a decoded ciphertext
// vector when the caller supplies no tighter bound.
const DefaultMaxVectorLen = 1 << 20

// MarshalBinary implements encoding.BinaryMarshaler for ciphertexts.
func (c Ciphertext) MarshalBinary() ([]byte, error) {
	if c.V == nil {
		return nil, errors.New("homenc: nil ciphertext")
	}
	return marshalInt(c.V), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler with the
// DefaultMaxIntBytes magnitude bound.
func (c *Ciphertext) UnmarshalBinary(data []byte) error {
	return c.UnmarshalBinaryBound(data, DefaultMaxIntBytes)
}

// UnmarshalBinaryBound decodes a ciphertext whose magnitude must not
// exceed maxBytes (callers on a network boundary pass the scheme's
// actual ciphertext size, so a malicious frame cannot force a large
// allocation).
func (c *Ciphertext) UnmarshalBinaryBound(data []byte, maxBytes int) error {
	v, rest, err := unmarshalInt(data, maxBytes)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("homenc: trailing bytes after ciphertext")
	}
	c.V = v
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for partial
// decryptions: a 4-byte share index followed by the value.
func (p PartialDecryption) MarshalBinary() ([]byte, error) {
	if p.V == nil {
		return nil, errors.New("homenc: nil partial decryption")
	}
	out := make([]byte, 4, 4+5+(p.V.BitLen()+7)/8)
	binary.BigEndian.PutUint32(out, uint32(p.Index))
	return append(out, marshalInt(p.V)...), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler with the
// DefaultMaxIntBytes magnitude bound.
func (p *PartialDecryption) UnmarshalBinary(data []byte) error {
	return p.UnmarshalBinaryBound(data, DefaultMaxIntBytes)
}

// UnmarshalBinaryBound decodes a partial decryption whose magnitude
// must not exceed maxBytes.
func (p *PartialDecryption) UnmarshalBinaryBound(data []byte, maxBytes int) error {
	if len(data) < 4 {
		return errors.New("homenc: short partial decryption")
	}
	idx := binary.BigEndian.Uint32(data)
	v, rest, err := unmarshalInt(data[4:], maxBytes)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("homenc: trailing bytes after partial decryption")
	}
	p.Index = int(idx)
	p.V = v
	return nil
}

// MarshalVector encodes a ciphertext vector (the Diptych means payload)
// with a count prefix.
func MarshalVector(cts []Ciphertext) ([]byte, error) {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, uint32(len(cts)))
	for _, c := range cts {
		b, err := c.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalVector decodes a MarshalVector payload with the default
// bounds (DefaultMaxVectorLen elements of DefaultMaxIntBytes each).
func UnmarshalVector(data []byte) ([]Ciphertext, error) {
	return UnmarshalVectorBound(data, DefaultMaxVectorLen, DefaultMaxIntBytes)
}

// UnmarshalVectorBound decodes a MarshalVector payload rejecting more
// than maxLen elements or any magnitude above maxBytes — both checked
// before allocating, so a hostile count or length prefix cannot reserve
// memory beyond what the frame itself carries.
func UnmarshalVectorBound(data []byte, maxLen, maxBytes int) ([]Ciphertext, error) {
	if len(data) < 4 {
		return nil, errors.New("homenc: short vector")
	}
	n := binary.BigEndian.Uint32(data)
	if maxLen < 0 {
		maxLen = 0
	}
	if uint64(n) > uint64(maxLen) {
		return nil, fmt.Errorf("homenc: vector length %d exceeds bound %d", n, maxLen)
	}
	data = data[4:]
	// Every element costs at least 5 bytes on the wire, so the count can
	// never exceed len(data)/5 in a well-formed payload: cap the
	// pre-allocation by the bytes actually present.
	capHint := n
	if present := uint32(len(data) / 5); capHint > present {
		capHint = present
	}
	out := make([]Ciphertext, 0, capHint)
	for i := uint32(0); i < n; i++ {
		v, rest, err := unmarshalInt(data, maxBytes)
		if err != nil {
			return nil, err
		}
		out = append(out, Ciphertext{V: v})
		data = rest
	}
	if len(data) != 0 {
		return nil, errors.New("homenc: trailing bytes after vector")
	}
	return out, nil
}

// MarshalInt encodes an arbitrary big integer in the package's
// canonical sign/length/magnitude format — the building block the wire
// protocol layer uses for epidemic weights and other protocol integers.
func MarshalInt(v *big.Int) []byte { return marshalInt(v) }

// UnmarshalIntBound decodes one MarshalInt integer from the front of
// data, rejecting magnitudes above maxBytes before allocating, and
// returns the remaining bytes.
func UnmarshalIntBound(data []byte, maxBytes int) (*big.Int, []byte, error) {
	return unmarshalInt(data, maxBytes)
}

func marshalInt(v *big.Int) []byte {
	mag := v.Bytes()
	out := make([]byte, 5+len(mag))
	if v.Sign() < 0 {
		out[0] = wireNegative
	} else {
		out[0] = wirePositive
	}
	binary.BigEndian.PutUint32(out[1:], uint32(len(mag)))
	copy(out[5:], mag)
	return out
}

// unmarshalInt decodes one tag/length/magnitude integer. maxBytes is
// the caller's bound on the magnitude size: a length prefix beyond it
// is rejected before any allocation happens, which is what protects a
// network endpoint from a malicious frame advertising a huge integer.
func unmarshalInt(data []byte, maxBytes int) (*big.Int, []byte, error) {
	if len(data) < 5 {
		return nil, nil, errors.New("homenc: short integer encoding")
	}
	kind := data[0]
	if kind != wirePositive && kind != wireNegative {
		return nil, nil, fmt.Errorf("homenc: unknown integer tag 0x%02x", kind)
	}
	n := binary.BigEndian.Uint32(data[1:])
	if maxBytes < 0 {
		maxBytes = 0
	}
	if uint64(n) > uint64(maxBytes) {
		return nil, nil, fmt.Errorf("homenc: integer magnitude %d bytes exceeds bound %d", n, maxBytes)
	}
	if uint32(len(data)-5) < n {
		return nil, nil, errors.New("homenc: truncated integer encoding")
	}
	v := new(big.Int).SetBytes(data[5 : 5+n])
	if kind == wireNegative {
		v.Neg(v)
	}
	return v, data[5+n:], nil
}
