// Ciphertext packing: with scheme degree s >= 2 the plaintext space n^s
// has room for many fixed-point values per plaintext, each padded with a
// guard band sized to the gossip epoch headroom. EESum only ever adds
// ciphertexts and multiplies them by powers of two, and both operations
// act on the packed integer
//
//	P = Σ_j m_j · 2^(j·SlotBits)
//
// linearly and slot-wise: as long as every slot value stays inside
// (-2^(SlotBits-1), 2^(SlotBits-1)) — which the guard band guarantees
// for the configured exchange budget — no slot ever carries into its
// neighbor, and the whole encrypted pipeline runs unchanged over
// ⌈dim/Slots⌉ ciphertexts instead of dim. Per-participant crypto work
// and wire bytes divide by the packing factor (PERF.md).

package homenc

import (
	"fmt"
	"math/big"
)

// PackedCodec lays fixed-point values out in slots of a plaintext.
// Slots == 1 disables packing: Pack and Unpack are identities and the
// pipeline behaves exactly as without a packed layer.
type PackedCodec struct {
	Codec    Codec // fixed-point encoding of the individual slot values
	Slots    int   // values per plaintext (>= 1)
	SlotBits uint  // slot width: value bits + guard band (0 iff Slots == 1)
}

// NewPackedCodec sizes a slot layout for the given plaintext space:
// every slot holds values up to sumAbsBound in magnitude with room for
// guardEpochs doublings on top (the corrected headroom requirement
// sumAbsBound·2^guardEpochs < 2^(SlotBits-1) holds strictly by
// construction). slots requests a slot count: 0 auto-sizes to the most
// the space can hold (falling back to 1 — packing off — when there is
// no room for 2 guarded slots, or when space is nil), 1 disables
// packing, and >= 2 errors when the space cannot fit that many guarded
// slots. A nil space with an explicit slots >= 2 is allowed: unbounded
// plaintexts (the plain simulation scheme) pack fine.
func NewPackedCodec(codec Codec, space, sumAbsBound *big.Int, guardEpochs, slots int) (PackedCodec, error) {
	if slots < 0 {
		return PackedCodec{}, fmt.Errorf("homenc: negative slot count %d", slots)
	}
	if slots == 1 || (slots == 0 && space == nil) {
		return PackedCodec{Codec: codec, Slots: 1}, nil
	}
	if sumAbsBound == nil || sumAbsBound.Sign() <= 0 {
		return PackedCodec{}, fmt.Errorf("homenc: packing needs a positive sum bound")
	}
	if guardEpochs < 0 {
		guardEpochs = 0
	}
	slotBits := uint(sumAbsBound.BitLen() + guardEpochs + 1)
	if space != nil {
		// Every packed plaintext P satisfies |P| <= 2^(Slots·SlotBits),
		// so Slots·SlotBits <= space bits - 3 keeps |P| < space/2
		// (centered-representable on both signs).
		maxSlots := (space.BitLen() - 3) / int(slotBits)
		if slots == 0 {
			slots = maxSlots
			if slots < 2 {
				return PackedCodec{Codec: codec, Slots: 1}, nil // no room: packing off
			}
		} else if slots > maxSlots {
			return PackedCodec{}, fmt.Errorf(
				"homenc: %d slots of %d bits (%d value + %d guard) exceed the %d-bit plaintext space (at most %d slots; raise the scheme degree s)",
				slots, slotBits, sumAbsBound.BitLen(), guardEpochs+1, space.BitLen(), maxSlots)
		}
	}
	return PackedCodec{Codec: codec, Slots: slots, SlotBits: slotBits}, nil
}

// PackedLen returns how many plaintexts hold dim values: ⌈dim/Slots⌉.
func (pc PackedCodec) PackedLen(dim int) int {
	if pc.Slots <= 1 {
		return dim
	}
	return (dim + pc.Slots - 1) / pc.Slots
}

// Pack folds dim fixed-point integers (possibly negative) into
// PackedLen(dim) plaintext integers, value j landing in slot j%Slots of
// plaintext j/Slots. With Slots >= 2 the inputs are only read and the
// result is freshly allocated; with Slots <= 1 the input slice itself
// is returned — treat the result as read-only in either case.
func (pc PackedCodec) Pack(vec []*big.Int) []*big.Int {
	if pc.Slots <= 1 {
		return vec
	}
	out := make([]*big.Int, pc.PackedLen(len(vec)))
	for g := range out {
		lo := g * pc.Slots
		hi := min(lo+pc.Slots, len(vec))
		p := new(big.Int)
		for j := hi - 1; j >= lo; j-- { // Horner: high slot first
			p.Lsh(p, pc.SlotBits)
			p.Add(p, vec[j])
		}
		out[g] = p
	}
	return out
}

// Unpack splits centered plaintexts (as produced by Centered) back into
// dim slot values with sign recovery: each slot's residue mod
// 2^SlotBits is mapped into [-2^(SlotBits-1), 2^(SlotBits-1)), which is
// exact for every value the guard band admits. With Slots == 1 the
// input is returned unchanged.
func (pc PackedCodec) Unpack(packed []*big.Int, dim int) ([]*big.Int, error) {
	if pc.Slots <= 1 {
		if len(packed) != dim {
			return nil, fmt.Errorf("homenc: %d plaintexts for %d values", len(packed), dim)
		}
		return packed, nil
	}
	if want := pc.PackedLen(dim); len(packed) != want {
		return nil, fmt.Errorf("homenc: %d packed plaintexts for %d values (want %d)", len(packed), dim, want)
	}
	mod := new(big.Int).Lsh(big.NewInt(1), pc.SlotBits)
	half := new(big.Int).Lsh(big.NewInt(1), pc.SlotBits-1)
	out := make([]*big.Int, dim)
	for g, p := range packed {
		lo := g * pc.Slots
		hi := min(lo+pc.Slots, dim)
		rem := new(big.Int).Set(p)
		for j := lo; j < hi; j++ {
			r := new(big.Int).Mod(rem, mod) // non-negative residue
			if r.Cmp(half) >= 0 {
				r.Sub(r, mod)
			}
			out[j] = r
			rem.Sub(rem, r)
			rem.Rsh(rem, pc.SlotBits) // exact: rem is divisible by 2^SlotBits
		}
	}
	return out, nil
}
