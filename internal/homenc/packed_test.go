package homenc

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestHeadroomEpochsBoundary(t *testing.T) {
	maxInt := int(^uint(0) >> 1)
	pow2 := func(k uint) *big.Int { return new(big.Int).Lsh(big.NewInt(1), k) }
	cases := []struct {
		name         string
		space, bound *big.Int
		want         int
	}{
		// The regression the fix is for: half/bound an exact power of
		// two. space 16 → half 8, bound 1: the old q.BitLen()-1 logic
		// returned 3, but 1·2^3 = 8 is NOT < 8 — the "safe" epoch
		// scales the sum to exactly half the space, where the negative
		// bound is not centered-representable.
		{"exact-pow2-quotient", big.NewInt(16), big.NewInt(1), 2},
		{"exact-pow2-quotient-large", pow2(64), pow2(13), 49},
		// Non-exact quotients keep the old answer: half 8, bound 3 →
		// 3·2^1 = 6 < 8, 3·2^2 = 12 ≥ 8.
		{"plain-quotient", big.NewInt(16), big.NewInt(3), 1},
		// Power-of-two quotient with a remainder is not at the boundary:
		// half 9, bound 2 → q=4 r=1; 2·2^2 = 8 < 9.
		{"pow2-quotient-with-remainder", big.NewInt(18), big.NewInt(2), 2},
		{"bound-equals-half", big.NewInt(16), big.NewInt(8), -1},
		{"bound-above-half", big.NewInt(16), big.NewInt(9), -1},
		{"nil-space", nil, big.NewInt(5), maxInt},
		{"zero-bound", big.NewInt(16), big.NewInt(0), maxInt},
	}
	for _, c := range cases {
		if got := HeadroomEpochs(c.space, c.bound); got != c.want {
			t.Errorf("%s: HeadroomEpochs = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestHeadroomEpochsStrictInvariant property-checks the definition:
// bound·2^e < half and bound·2^(e+1) >= half for every returned e.
func TestHeadroomEpochsStrictInvariant(t *testing.T) {
	f := func(spaceBits uint8, boundRaw uint32) bool {
		bits := uint(spaceBits%48) + 4
		space := new(big.Int).Lsh(big.NewInt(1), bits)
		space.Add(space, big.NewInt(int64(boundRaw%7))) // not always a power of two
		bound := big.NewInt(int64(boundRaw%1021) + 1)
		half := new(big.Int).Rsh(space, 1)
		e := HeadroomEpochs(space, bound)
		if e < 0 {
			return new(big.Int).Lsh(bound, 0).Cmp(half) >= 0
		}
		at := new(big.Int).Lsh(bound, uint(e))
		next := new(big.Int).Lsh(bound, uint(e)+1)
		return at.Cmp(half) < 0 && next.Cmp(half) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// testPackedCodec builds a layout directly from a bound and guard, the
// way the protocol does.
func testPackedCodec(t *testing.T, spaceBits uint, bound int64, guard, slots int) PackedCodec {
	t.Helper()
	space := new(big.Int).Lsh(big.NewInt(1), spaceBits)
	pc, err := NewPackedCodec(NewCodec(8), space, big.NewInt(bound), guard, slots)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestPackedCodecSizing(t *testing.T) {
	// bound 1000 (10 bits) + guard 20 + sign = 31-bit slots; a 256-bit
	// space fits (256-3)/31 = 8 of them.
	pc := testPackedCodec(t, 256, 1000, 20, 0)
	if pc.Slots != 8 || pc.SlotBits != 31 {
		t.Fatalf("auto-sized to %d slots of %d bits, want 8 of 31", pc.Slots, pc.SlotBits)
	}
	// The per-slot guard band satisfies the corrected headroom math: a
	// slot is its own little plaintext space of 2^SlotBits.
	slotSpace := new(big.Int).Lsh(big.NewInt(1), pc.SlotBits)
	if have := HeadroomEpochs(slotSpace, big.NewInt(1000)); have < 20 {
		t.Fatalf("slot guard band gives %d epochs, want >= 20", have)
	}
	// Explicit requests: the max fits, one more errors.
	if _, err := NewPackedCodec(NewCodec(8), new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1000), 20, 8); err != nil {
		t.Fatalf("8 slots must fit: %v", err)
	}
	if _, err := NewPackedCodec(NewCodec(8), new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1000), 20, 9); err == nil {
		t.Fatal("9 slots must not fit a 256-bit space")
	}
	// Slots == 1 and nil-space auto: packing off.
	if pc := testPackedCodec(t, 256, 1000, 20, 1); pc.Slots != 1 {
		t.Fatalf("explicit 1 slot: got %d", pc.Slots)
	}
	if pc, err := NewPackedCodec(NewCodec(8), nil, big.NewInt(1000), 20, 0); err != nil || pc.Slots != 1 {
		t.Fatalf("nil-space auto: %d slots, %v", pc.Slots, err)
	}
	// Nil space with an explicit request packs (unbounded plaintexts).
	if pc, err := NewPackedCodec(NewCodec(8), nil, big.NewInt(1000), 20, 16); err != nil || pc.Slots != 16 {
		t.Fatalf("nil-space explicit: %d slots, %v", pc.Slots, err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	pc := testPackedCodec(t, 512, 1<<20, 8, 0)
	space := new(big.Int).Lsh(big.NewInt(1), 512)
	maxMag := new(big.Int).Lsh(big.NewInt(1<<20), 8) // bound·2^guard: the largest admissible slot value
	f := func(raw []int32, scale uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vec := make([]*big.Int, len(raw))
		for i, r := range raw {
			v := new(big.Int).Mul(big.NewInt(int64(r)), big.NewInt(int64(scale%5)+1))
			if v.CmpAbs(maxMag) > 0 {
				v.SetInt64(int64(r % 1024))
			}
			vec[i] = v
		}
		packed := pc.Pack(vec)
		if len(packed) != pc.PackedLen(len(vec)) {
			return false
		}
		// Residue round-trip: what decryption sees is the packed value
		// mod the plaintext space, centered back.
		for i, p := range packed {
			packed[i] = Centered(new(big.Int).Mod(p, space), space)
		}
		out, err := pc.Unpack(packed, len(vec))
		if err != nil {
			return false
		}
		for i := range vec {
			if out[i].Cmp(vec[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackSlotBoundaries(t *testing.T) {
	const bound, guard = 1, 3 // slotBits = 1 + 3 + 1 = 5, slot range [-16, 16)
	pc := testPackedCodec(t, 64, bound, guard, 0)
	if pc.SlotBits != 5 {
		t.Fatalf("slot bits = %d, want 5", pc.SlotBits)
	}
	halfSlot := int64(1) << (pc.SlotBits - 1)
	cases := [][]*big.Int{
		// The guard-band extremes on every slot, alternating signs.
		{big.NewInt(bound << guard), big.NewInt(-(bound << guard)), big.NewInt(bound << guard)},
		// The true slot boundary: ±(2^(SlotBits-1)-1) and the asymmetric
		// minimum -2^(SlotBits-1), which the residue decode must recover.
		{big.NewInt(halfSlot - 1), big.NewInt(-halfSlot), big.NewInt(-(halfSlot - 1))},
		// Zeros between extremes (no borrow leakage into empty slots).
		{big.NewInt(0), big.NewInt(-halfSlot), big.NewInt(0), big.NewInt(halfSlot - 1)},
	}
	for ci, vec := range cases {
		out, err := pc.Unpack(pc.Pack(vec), len(vec))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for i := range vec {
			if out[i].Cmp(vec[i]) != 0 {
				t.Errorf("case %d slot %d: got %v, want %v", ci, i, out[i], vec[i])
			}
		}
	}
}

// TestPackedArithmeticMatchesSlotwise is the EESum algebra over packed
// plaintexts: sums of many packed vectors, each scaled by a power of
// two up to the guard epoch, must unpack to the slot-wise results —
// including through the mod-space residue a decryption produces.
func TestPackedArithmeticMatchesSlotwise(t *testing.T) {
	const nVec, dim, guard = 5, 11, 6
	bound := big.NewInt(999)
	space := new(big.Int).Lsh(big.NewInt(1), 160)
	pc, err := NewPackedCodec(NewCodec(8), space, bound, guard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Slots < 2 {
		t.Fatalf("layout did not pack: %d slots", pc.Slots)
	}
	vecs := make([][]*big.Int, nVec)
	val := int64(-999)
	for i := range vecs {
		vecs[i] = make([]*big.Int, dim)
		for j := range vecs[i] {
			vecs[i][j] = big.NewInt(val)
			val = (val*31 + 17) % 1000 // deterministic mixed-sign walk
		}
	}
	// Each vector gets its own epoch shift; the shifted magnitudes sum
	// to at most bound·2^guard per slot (weights: Σ 2^e_i ≤ 2^guard for
	// the per-vector shares of the epidemic sum). Use shifts whose sum
	// of 2^e is 2^guard: e = guard-1, guard-2, ..., and two zeros.
	shifts := []uint{guard - 1, guard - 2, guard - 3, guard - 4, guard - 4}
	packedAcc := make([]*big.Int, pc.PackedLen(dim))
	for g := range packedAcc {
		packedAcc[g] = new(big.Int)
	}
	slotAcc := make([]*big.Int, dim)
	for j := range slotAcc {
		slotAcc[j] = new(big.Int)
	}
	for i, vec := range vecs {
		packed := pc.Pack(vec)
		for g, p := range packed {
			packedAcc[g].Add(packedAcc[g], new(big.Int).Lsh(p, shifts[i]))
			packedAcc[g].Mod(packedAcc[g], space) // the scheme reduces every op
		}
		for j, v := range vec {
			slotAcc[j].Add(slotAcc[j], new(big.Int).Lsh(v, shifts[i]))
		}
	}
	for g := range packedAcc {
		packedAcc[g] = Centered(packedAcc[g], space)
	}
	out, err := pc.Unpack(packedAcc, dim)
	if err != nil {
		t.Fatal(err)
	}
	for j := range slotAcc {
		if out[j].Cmp(slotAcc[j]) != 0 {
			t.Fatalf("slot %d: packed arithmetic gave %v, slot-wise %v", j, out[j], slotAcc[j])
		}
	}
}

func TestUnpackLengthMismatch(t *testing.T) {
	pc := testPackedCodec(t, 256, 1000, 20, 0)
	if _, err := pc.Unpack([]*big.Int{big.NewInt(1)}, 100); err == nil {
		t.Error("wrong packed length must error")
	}
	one := PackedCodec{Codec: NewCodec(8), Slots: 1}
	if _, err := one.Unpack([]*big.Int{big.NewInt(1)}, 2); err == nil {
		t.Error("identity layout with wrong length must error")
	}
}
