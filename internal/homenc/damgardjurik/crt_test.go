package damgardjurik

import (
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"chiaroscuro/internal/homenc"
)

// TestExpNS1MatchesExp checks the CRT exponentiation (with group-order
// exponent reduction) against the naive modular exponentiation for unit
// bases across degrees, including exponents far larger than the group
// order (the protocol's 2Δ·s_i decryption exponents).
func TestExpNS1MatchesExp(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		sch := testScheme(t, 128, s)
		bases := []*big.Int{
			big.NewInt(2),
			new(big.Int).Add(sch.N, big.NewInt(1)),
			sch.Encrypt(big.NewInt(123456)).V,
		}
		exps := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			big.NewInt(1 << 20),
			new(big.Int).Sub(sch.NS1, big.NewInt(3)),
			new(big.Int).Mul(sch.NS1, sch.NS1), // way past the group order
		}
		for _, b := range bases {
			for _, e := range exps {
				want := new(big.Int).Exp(b, e, sch.NS1)
				if got := sch.expNS1(b, e); got.Cmp(want) != 0 {
					t.Errorf("s=%d base=%v e=%v: expNS1 = %v, want %v", s, b, e, got, want)
				}
			}
		}
	}
}

func TestInvNS1MatchesModInverse(t *testing.T) {
	sch := testScheme(t, 128, 2)
	for _, m := range []int64{1, 2, 42, 1 << 40} {
		x := sch.Encrypt(big.NewInt(m)).V
		want := new(big.Int).ModInverse(x, sch.NS1)
		if got := sch.invNS1(x); got.Cmp(want) != 0 {
			t.Errorf("invNS1(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestRandomizerSubgroup verifies that sampled randomizers are n^s-th
// residues: they must land in the subgroup of order φ(n), i.e. be
// annihilated by φ(n) — which a uniform unit of Z*_{n^(s+1)} is not
// (the full group has order n^s·φ(n)).
func TestRandomizerSubgroup(t *testing.T) {
	for _, s := range []int{1, 2} {
		sch := testScheme(t, 128, s)
		p, q, err := KnownSafePrimes(64)
		if err != nil {
			t.Fatal(err)
		}
		phi := new(big.Int).Mul(
			new(big.Int).Sub(p, big.NewInt(1)),
			new(big.Int).Sub(q, big.NewInt(1)),
		)
		for i := 0; i < 8; i++ {
			rho := sch.newRandomizer(nil)
			got := new(big.Int).Exp(rho, phi, sch.NS1)
			if got.Cmp(big.NewInt(1)) != 0 {
				t.Fatalf("s=%d: randomizer^phi(n) = %v, not an n^s-th residue", s, got)
			}
			// And it must decrypt as E(0): the randomizer is exactly a
			// fresh encryption of zero.
			if m := sch.Decrypt(homenc.Ciphertext{V: rho}); m.Sign() != 0 {
				t.Fatalf("s=%d: randomizer decrypts to %v, want 0", s, m)
			}
		}
	}
}

// TestPoolPathRoundTrip drains past the pool capacity so both pooled
// and inline randomizers are exercised, and every ciphertext must still
// decrypt correctly and differ from its neighbors (semantic security).
func TestPoolPathRoundTrip(t *testing.T) {
	sch := testScheme(t, 128, 1)
	sch.PrecomputeRandomizers(16)
	m := big.NewInt(777)
	prev := sch.Encrypt(m)
	for i := 0; i < 64; i++ {
		c := sch.Encrypt(m)
		if c.V.Cmp(prev.V) == 0 {
			t.Fatal("consecutive encryptions are identical")
		}
		if got := sch.Decrypt(c); got.Cmp(m) != 0 {
			t.Fatalf("pool path round trip: got %v, want %v", got, m)
		}
		prev = c
	}
}

func TestScalarMulLargeExponent(t *testing.T) {
	// Exponents above crtDirectExpBits take the CRT path; cross-check
	// the homomorphic property against plaintext arithmetic.
	sch := testScheme(t, 128, 2)
	k := new(big.Int).Lsh(big.NewInt(1), 80) // 81-bit scalar
	k.Add(k, big.NewInt(12345))
	m := big.NewInt(9)
	c := sch.ScalarMul(sch.Encrypt(m), k)
	want := new(big.Int).Mul(m, k)
	want.Mod(want, sch.NS)
	if got := sch.Decrypt(c); got.Cmp(want) != 0 {
		t.Errorf("ScalarMul large k: got %v, want %v", got, want)
	}
}

func TestCombTableMatchesExp(t *testing.T) {
	p, _, err := KnownSafePrimes(64)
	if err != nil {
		t.Fatal(err)
	}
	ps1 := new(big.Int).Mul(p, p)
	g := generatorH(nil, p, p, ps1)
	ord := new(big.Int).Sub(p, big.NewInt(1))
	tab := newCombTable(g, ps1, ord.BitLen())
	f := func(raw uint64) bool {
		e := new(big.Int).Mod(new(big.Int).SetUint64(raw), ord)
		return tab.exp(e).Cmp(new(big.Int).Exp(g, e, ps1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// lcgReader is a trivially deterministic entropy source: two instances
// produce the same byte stream.
type lcgReader struct{ state uint64 }

func (r *lcgReader) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

// TestDeterministicReaderReproducibleCiphertexts builds two schemes
// from identical deterministic readers: the subgroup generators, the
// Shamir shares and every randomizer draw must replay identically, so
// the ciphertext bytes are equal across runs (the pre-existing
// contract for callers supplying a custom Random source).
func TestDeterministicReaderReproducibleCiphertexts(t *testing.T) {
	p, q, err := KnownSafePrimes(64)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Scheme {
		sch, err := NewFromPrimes(&lcgReader{state: 7}, p, q, 2, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		return sch
	}
	a, b := build(), build()
	for i := 0; i < 5; i++ {
		m := big.NewInt(int64(1000 + i))
		ca, cb := a.Encrypt(m), b.Encrypt(m)
		if ca.V.Cmp(cb.V) != 0 {
			t.Fatalf("encryption %d not reproducible across identical readers", i)
		}
		if got := a.Decrypt(ca); got.Cmp(m) != 0 {
			t.Fatalf("deterministic-reader round trip: got %v, want %v", got, m)
		}
	}
}

// TestCustomRandomConcurrentEncrypt hammers Encrypt from many
// goroutines on a scheme with a custom (non-thread-safe) Random
// reader: randMu must serialize the draws (run under -race).
func TestCustomRandomConcurrentEncrypt(t *testing.T) {
	p, q, err := KnownSafePrimes(64)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewFromPrimes(&lcgReader{state: 3}, p, q, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(4242)
	var wg sync.WaitGroup
	cts := make([]homenc.Ciphertext, 32)
	for g := range cts {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cts[g] = sch.Encrypt(m)
		}(g)
	}
	wg.Wait()
	for _, c := range cts {
		if got := sch.Decrypt(c); got.Cmp(m) != 0 {
			t.Fatalf("concurrent custom-reader encrypt mangled: %v", got)
		}
	}
}

// TestGeneratorOrder checks that generatorH really returns an element
// of full order p-1 = 2p'.
func TestGeneratorOrder(t *testing.T) {
	p, _, err := KnownSafePrimes(64)
	if err != nil {
		t.Fatal(err)
	}
	ps1 := new(big.Int).Mul(p, p)
	g := generatorH(nil, p, p, ps1)
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	pp := new(big.Int).Rsh(pm1, 1)
	one := big.NewInt(1)
	if new(big.Int).Exp(g, pm1, ps1).Cmp(one) != 0 {
		t.Error("generator order does not divide p-1")
	}
	if new(big.Int).Exp(g, pp, ps1).Cmp(one) == 0 {
		t.Error("generator order divides p'")
	}
	if sq := new(big.Int).Exp(g, big.NewInt(2), ps1); sq.Cmp(one) == 0 {
		t.Error("generator order divides 2")
	}
}
