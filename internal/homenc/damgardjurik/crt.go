package damgardjurik

import (
	"crypto/rand"
	"io"
	"math/big"
)

// crtDirectExpBits is the exponent size below which a direct modular
// exponentiation beats the CRT split (two half-width reductions plus a
// Garner recombination have a fixed cost that tiny exponents — the
// power-of-two epoch scalings of EESum — do not amortize).
const crtDirectExpBits = 32

// crtContext holds the factorization-derived constants that accelerate
// arithmetic in Z*_{n^(s+1)}. The scheme legitimately owns p and q (it
// generated them), so every exponentiation can run modulo the two
// half-width prime powers p^(s+1) and q^(s+1) and be recombined by CRT.
// Both halves additionally reduce the exponent modulo the (known) group
// order, which shrinks the protocol's oversized decryption exponents —
// 2Δ·s_i is about twice the modulus size — down to half-width.
//
// For encryption it goes further: the randomizer factors r^(n^s) form
// the unique cyclic subgroup of order p-1 (resp. q-1) in each half, so
// a per-key generator plus a fixed-base comb table turn randomizer
// sampling into ~log2(p)/4 modular multiplications with no squarings.
type crtContext struct {
	p, q       *big.Int // the safe primes
	ps1, qs1   *big.Int // p^(s+1), q^(s+1)
	pPowS      *big.Int // p^s
	qPowS      *big.Int // q^s
	ordP, ordQ *big.Int // |Z*_{p^(s+1)}| = p^s(p-1), |Z*_{q^(s+1)}| = q^s(q-1)
	qs1InvP    *big.Int // (q^(s+1))^(-1) mod p^(s+1), for Garner recombination

	hOrdP, hOrdQ *big.Int   // |H_p| = p-1, |H_q| = q-1 (randomizer subgroups)
	combP, combQ *combTable // fixed-base tables over generators of H_p, H_q
}

// newCRTContext derives the constants from the factorization. random
// seeds the subgroup-generator search (nil = crypto/rand); a
// deterministic reader yields deterministic generators, keeping
// ciphertexts reproducible across runs for callers that construct the
// scheme with one.
func newCRTContext(random io.Reader, p, q *big.Int, s int) *crtContext {
	c := &crtContext{p: p, q: q}
	c.pPowS = pow(p, s)
	c.qPowS = pow(q, s)
	c.ps1 = new(big.Int).Mul(c.pPowS, p)
	c.qs1 = new(big.Int).Mul(c.qPowS, q)
	c.ordP = new(big.Int).Mul(c.pPowS, new(big.Int).Sub(p, one))
	c.ordQ = new(big.Int).Mul(c.qPowS, new(big.Int).Sub(q, one))
	c.qs1InvP = new(big.Int).ModInverse(c.qs1, c.ps1)
	c.hOrdP = new(big.Int).Sub(p, one)
	c.hOrdQ = new(big.Int).Sub(q, one)
	c.combP = newCombTable(generatorH(random, p, c.pPowS, c.ps1), c.ps1, c.hOrdP.BitLen())
	c.combQ = newCombTable(generatorH(random, q, c.qPowS, c.qs1), c.qs1, c.hOrdQ.BitLen())
	return c
}

func pow(b *big.Int, e int) *big.Int {
	out := new(big.Int).Set(b)
	for i := 1; i < e; i++ {
		out.Mul(out, b)
	}
	return out
}

// combine merges the two half-width residues x ≡ xp (mod p^(s+1)),
// x ≡ xq (mod q^(s+1)) into x mod n^(s+1) (Garner's formula).
func (c *crtContext) combine(xp, xq *big.Int) *big.Int {
	t := new(big.Int).Sub(xp, xq)
	t.Mul(t, c.qs1InvP)
	t.Mod(t, c.ps1) // Go's Mod is Euclidean: the result is non-negative
	t.Mul(t, c.qs1)
	return t.Add(t, xq) // < p^(s+1)·q^(s+1) = n^(s+1) by construction
}

// expNS1 computes base^e mod n^(s+1) for a non-negative exponent,
// through the CRT split when it pays off. The group-order exponent
// reduction requires gcd(base, n) = 1, which holds for every value the
// scheme exponentiates (ciphertexts and partial decryptions are units).
func (s *Scheme) expNS1(base, e *big.Int) *big.Int {
	c := s.crt
	if c == nil || e.BitLen() <= crtDirectExpBits {
		return new(big.Int).Exp(base, e, s.NS1)
	}
	ep := new(big.Int).Mod(e, c.ordP)
	eq := new(big.Int).Mod(e, c.ordQ)
	xp := new(big.Int).Exp(new(big.Int).Mod(base, c.ps1), ep, c.ps1)
	xq := new(big.Int).Exp(new(big.Int).Mod(base, c.qs1), eq, c.qs1)
	return c.combine(xp, xq)
}

// invNS1 computes base^(-1) mod n^(s+1) on the two half-width moduli.
func (s *Scheme) invNS1(base *big.Int) *big.Int {
	c := s.crt
	if c == nil {
		return new(big.Int).ModInverse(base, s.NS1)
	}
	xp := new(big.Int).ModInverse(new(big.Int).Mod(base, c.ps1), c.ps1)
	xq := new(big.Int).ModInverse(new(big.Int).Mod(base, c.qs1), c.qs1)
	if xp == nil || xq == nil {
		return nil
	}
	return c.combine(xp, xq)
}

// newRandomizer draws a fresh encryption randomizer — the message-
// independent factor r^(n^s) mod n^(s+1) of E(m) — from the given
// entropy source (crypto/rand when nil).
//
// The sampled distribution is exactly the scheme's. For uniform r in
// Z*_n, the component r^(n^s) mod p^(s+1) lies in the unique subgroup
// H_p of order p-1 (the cyclic group Z*_{p^(s+1)} has order p^s(p-1);
// raising to n^s = p^s·q^s annihilates the p^s part, and gcd(q^s, p-1)
// = 1 permutes the rest), it is uniform over H_p because r mod p is a
// uniform unit, and the p and q components are independent because
// r mod p and r mod q are. g_p^t for a fixed generator g_p of H_p and
// uniform t in [0, p-1) is the same uniform draw from H_p — computed
// by the precomputed comb table in a few dozen multiplications.
func (s *Scheme) newRandomizer(random io.Reader) *big.Int {
	if random == nil {
		random = rand.Reader
	}
	c := s.crt
	if c == nil {
		r := s.randomUnit()
		return r.Exp(r, s.NS, s.NS1)
	}
	tp, err := rand.Int(random, c.hOrdP)
	if err != nil {
		panic("damgardjurik: entropy source failed: " + err.Error())
	}
	tq, err := rand.Int(random, c.hOrdQ)
	if err != nil {
		panic("damgardjurik: entropy source failed: " + err.Error())
	}
	return c.combine(c.combP.exp(tp), c.combQ.exp(tq))
}

// generatorH finds a generator of H_p, the cyclic subgroup of n^s-th
// residues mod p^(s+1). For a safe prime p = 2p'+1 the subgroup has
// order 2p', so h generates iff h² ≠ 1 and h^(p') ≠ 1; a uniform h
// (the canonical lift w^(p^s) of a uniform w in Z*_p) succeeds with
// probability (p'-1)/(2p') ≈ 1/2 per draw.
func generatorH(random io.Reader, p, pPowS, ps1 *big.Int) *big.Int {
	if random == nil {
		random = rand.Reader
	}
	pp := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1) // p'
	for {
		w, err := rand.Int(random, p)
		if err != nil {
			panic("damgardjurik: entropy source failed: " + err.Error())
		}
		if w.Sign() == 0 {
			continue
		}
		h := w.Exp(w, pPowS, ps1)
		sq := new(big.Int).Mul(h, h)
		if sq.Mod(sq, ps1).Cmp(one) == 0 {
			continue
		}
		if new(big.Int).Exp(h, pp, ps1).Cmp(one) == 0 {
			continue
		}
		return h
	}
}

// combWindow is the fixed-base window width: 4 bits keeps the table
// at (bits/4)·15 entries — ≈0.25 MB per prime at the paper's 1024-bit
// key — while replacing every squaring of a generic exponentiation
// with a plain table-lookup multiply.
const combWindow = 4

// combTable implements fixed-base modular exponentiation: tab[i][j-1]
// holds g^(j·2^(4i)) mod m, so g^e is the product of one entry per
// non-zero 4-bit digit of e.
type combTable struct {
	mod *big.Int
	tab [][]*big.Int
}

func newCombTable(g, mod *big.Int, expBits int) *combTable {
	windows := (expBits + combWindow - 1) / combWindow
	t := &combTable{mod: mod, tab: make([][]*big.Int, windows)}
	base := new(big.Int).Set(g)
	for i := range t.tab {
		row := make([]*big.Int, 1<<combWindow-1)
		row[0] = new(big.Int).Set(base)
		for j := 1; j < len(row); j++ {
			v := new(big.Int).Mul(row[j-1], base)
			row[j] = v.Mod(v, mod)
		}
		t.tab[i] = row
		// Next window base: base^(2^combWindow) = row[last] · base.
		next := new(big.Int).Mul(row[len(row)-1], base)
		base = next.Mod(next, mod)
	}
	return t
}

// exp computes g^e mod m for 0 <= e < 2^(4·len(tab)).
func (t *combTable) exp(e *big.Int) *big.Int {
	acc := big.NewInt(1)
	scratch := new(big.Int)
	for i := 0; i < len(t.tab) && 4*i < e.BitLen(); i++ {
		d := e.Bit(4*i) | e.Bit(4*i+1)<<1 | e.Bit(4*i+2)<<2 | e.Bit(4*i+3)<<3
		if d != 0 {
			scratch.Mul(acc, t.tab[i][d-1])
			acc.Mod(scratch, t.mod)
		}
	}
	return acc
}
