package damgardjurik

import (
	"math/big"
	"testing"
	"testing/quick"

	"chiaroscuro/internal/homenc"
)

func testScheme(t testing.TB, keyBits, s int) *Scheme {
	t.Helper()
	sch, err := NewTestScheme(keyBits, s, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		sch := testScheme(t, 128, s)
		for _, m := range []int64{0, 1, 42, 1 << 30, -5} {
			c := sch.Encrypt(big.NewInt(m))
			got := sch.Decrypt(c)
			want := new(big.Int).Mod(big.NewInt(m), sch.NS)
			if got.Cmp(want) != 0 {
				t.Errorf("s=%d: Decrypt(Encrypt(%d)) = %v, want %v", s, m, got, want)
			}
		}
	}
}

func TestNegativeViaCentered(t *testing.T) {
	sch := testScheme(t, 128, 1)
	c := sch.Encrypt(big.NewInt(-12345))
	got := homenc.Centered(sch.Decrypt(c), sch.PlaintextSpace())
	if got.Cmp(big.NewInt(-12345)) != 0 {
		t.Errorf("centered decrypt = %v, want -12345", got)
	}
}

func TestSemanticRandomization(t *testing.T) {
	// Two encryptions of the same plaintext must differ (the scheme is
	// probabilistic; determinism would break semantic security).
	sch := testScheme(t, 128, 1)
	a := sch.Encrypt(big.NewInt(7))
	b := sch.Encrypt(big.NewInt(7))
	if a.V.Cmp(b.V) == 0 {
		t.Error("two encryptions of the same plaintext are identical")
	}
	if sch.Decrypt(a).Cmp(sch.Decrypt(b)) != 0 {
		t.Error("randomized ciphertexts decrypt differently")
	}
}

func TestHomomorphicAddQuick(t *testing.T) {
	// Section 3.3.1 property 2: D(E(a) +h E(b)) == a + b.
	sch := testScheme(t, 128, 1)
	f := func(a, b uint32) bool {
		ca := sch.Encrypt(big.NewInt(int64(a)))
		cb := sch.Encrypt(big.NewInt(int64(b)))
		got := sch.Decrypt(sch.Add(ca, cb))
		return got.Cmp(big.NewInt(int64(a)+int64(b))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestScalarMulQuick(t *testing.T) {
	sch := testScheme(t, 128, 1)
	f := func(a uint16, k uint8) bool {
		ca := sch.Encrypt(big.NewInt(int64(a)))
		got := sch.Decrypt(sch.ScalarMul(ca, big.NewInt(int64(k))))
		return got.Cmp(big.NewInt(int64(a)*int64(k))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestThresholdDecryption(t *testing.T) {
	sch := testScheme(t, 128, 1)
	m := big.NewInt(987654321)
	c := sch.Encrypt(m)
	// Exactly threshold = 3 shares, various subsets.
	for _, subset := range [][]int{{1, 2, 3}, {1, 3, 5}, {2, 4, 5}, {3, 4, 5}} {
		parts := make([]homenc.PartialDecryption, 0, len(subset))
		for _, idx := range subset {
			p, err := sch.PartialDecrypt(idx, c)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, p)
		}
		got, err := sch.Combine(c, parts)
		if err != nil {
			t.Fatalf("subset %v: %v", subset, err)
		}
		if got.Cmp(m) != 0 {
			t.Errorf("subset %v: combined %v, want %v", subset, got, m)
		}
	}
}

func TestThresholdMoreThanTau(t *testing.T) {
	sch := testScheme(t, 128, 1)
	m := big.NewInt(31337)
	c := sch.Encrypt(m)
	parts := make([]homenc.PartialDecryption, 0, 5)
	for idx := 1; idx <= 5; idx++ {
		p, err := sch.PartialDecrypt(idx, c)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	got, err := sch.Combine(c, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Errorf("all-shares combine = %v, want %v", got, m)
	}
}

func TestThresholdTooFewShares(t *testing.T) {
	sch := testScheme(t, 128, 1)
	c := sch.Encrypt(big.NewInt(1))
	p1, _ := sch.PartialDecrypt(1, c)
	p2, _ := sch.PartialDecrypt(2, c)
	if _, err := sch.Combine(c, []homenc.PartialDecryption{p1, p2}); err == nil {
		t.Error("combine below threshold must fail")
	}
	if _, err := sch.Combine(c, []homenc.PartialDecryption{p1, p1, p2}); err == nil {
		t.Error("duplicate shares must be rejected")
	}
}

func TestThresholdS2(t *testing.T) {
	// Threshold decryption must work for s > 1 as well.
	sch := testScheme(t, 128, 2)
	m := new(big.Int).Lsh(big.NewInt(1), 200) // needs > n bits of plaintext space
	m.Add(m, big.NewInt(99))
	c := sch.Encrypt(m)
	var parts []homenc.PartialDecryption
	for _, idx := range []int{2, 3, 5} {
		p, err := sch.PartialDecrypt(idx, c)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	got, err := sch.Combine(c, parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Errorf("s=2 threshold decrypt = %v, want %v", got, m)
	}
}

func TestLargePlaintextHeadroom(t *testing.T) {
	// The EESum protocol scales plaintexts by 2^exchanges; make sure a
	// realistically huge plaintext round-trips (2^400 at a 512-bit key).
	sch := testScheme(t, 512, 1)
	m := new(big.Int).Lsh(big.NewInt(1), 400)
	m.Add(m, big.NewInt(123456789))
	c := sch.Encrypt(m)
	if got := sch.Decrypt(c); got.Cmp(m) != 0 {
		t.Errorf("huge plaintext mangled: %v", got)
	}
}

func TestPowOnePlusNMatchesExp(t *testing.T) {
	// The binomial shortcut must agree with naive modular exponentiation.
	for _, s := range []int{1, 2, 3} {
		sch := testScheme(t, 128, s)
		base := new(big.Int).Add(sch.N, big.NewInt(1))
		for _, m := range []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(12345),
			new(big.Int).Sub(sch.NS, big.NewInt(1)),
		} {
			want := new(big.Int).Exp(base, m, sch.NS1)
			got := sch.powOnePlusN(m)
			if got.Cmp(want) != 0 {
				t.Errorf("s=%d m=%v: powOnePlusN = %v, Exp = %v", s, m, got, want)
			}
		}
	}
}

func TestDLogIdentity(t *testing.T) {
	sch := testScheme(t, 128, 3)
	f := func(mRaw uint64) bool {
		m := new(big.Int).Mod(new(big.Int).SetUint64(mRaw), sch.NS)
		a := sch.powOnePlusN(m)
		return sch.dLog(a).Cmp(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCiphertextBytes(t *testing.T) {
	sch := testScheme(t, 128, 1)
	if got := sch.CiphertextBytes(); got != 32 {
		t.Errorf("128-bit key, s=1: %d bytes, want 32", got)
	}
	sch2 := testScheme(t, 128, 2)
	if got := sch2.CiphertextBytes(); got != 48 {
		t.Errorf("128-bit key, s=2: %d bytes, want 48", got)
	}
}

func TestErrors(t *testing.T) {
	sch := testScheme(t, 128, 1)
	c := sch.Encrypt(big.NewInt(1))
	if _, err := sch.PartialDecrypt(0, c); err == nil {
		t.Error("index 0 must fail")
	}
	if _, err := sch.PartialDecrypt(6, c); err == nil {
		t.Error("index beyond nShares must fail")
	}
	p, q, _ := KnownSafePrimes(64)
	if _, err := NewFromPrimes(nil, p, q, 0, 3, 2); err == nil {
		t.Error("s=0 must fail")
	}
	if _, err := NewFromPrimes(nil, p, q, 1, 2, 3); err == nil {
		t.Error("threshold > shares must fail")
	}
	if _, err := NewFromPrimes(nil, p, p, 1, 3, 2); err == nil {
		t.Error("p == q must fail")
	}
	if _, err := NewFromPrimes(nil, big.NewInt(35), q, 1, 3, 2); err == nil {
		t.Error("composite p must fail")
	}
	if _, _, err := KnownSafePrimes(99); err == nil {
		t.Error("unknown prime size must fail")
	}
}

func TestGenerateKeySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("key generation is slow")
	}
	sch, err := GenerateKey(nil, 96, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(4242)
	if got := sch.Decrypt(sch.Encrypt(m)); got.Cmp(m) != 0 {
		t.Errorf("fresh-key round trip = %v, want %v", got, m)
	}
}

func TestCodecThroughScheme(t *testing.T) {
	// Fixed-point values survive an encrypt/add/decrypt cycle.
	sch := testScheme(t, 256, 1)
	codec := homenc.NewCodec(0)
	a, b := 3.25, -1.75
	ca := sch.Encrypt(codec.Encode(a))
	cb := sch.Encrypt(codec.Encode(b))
	sum := sch.Decrypt(sch.Add(ca, cb))
	got := codec.Decode(homenc.Centered(sum, sch.PlaintextSpace()), nil)
	if got != a+b {
		t.Errorf("codec through scheme: %v, want %v", got, a+b)
	}
}

func BenchmarkEncrypt512(b *testing.B) {
	sch := testScheme(b, 512, 1)
	m := big.NewInt(123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch.Encrypt(m)
	}
}

func BenchmarkAdd512(b *testing.B) {
	sch := testScheme(b, 512, 1)
	c := sch.Encrypt(big.NewInt(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sch.Add(c, c)
	}
}

func BenchmarkThresholdDecrypt512(b *testing.B) {
	sch := testScheme(b, 512, 1)
	c := sch.Encrypt(big.NewInt(123456))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var parts []homenc.PartialDecryption
		for _, idx := range []int{1, 2, 3} {
			p, err := sch.PartialDecrypt(idx, c)
			if err != nil {
				b.Fatal(err)
			}
			parts = append(parts, p)
		}
		if _, err := sch.Combine(c, parts); err != nil {
			b.Fatal(err)
		}
	}
}
