package damgardjurik

import (
	"fmt"
	"math/big"
)

// Precomputed safe primes for tests, examples and benchmarks. They make
// key setup instantaneous and deterministic. DO NOT use them to protect
// anything: their factorizations are public by construction (they sit in
// this source file).
var knownSafePrimes = map[int][2]string{
	64: {
		"16789170908485046927",
		"14026146571354011467",
	},
	128: {
		"282999416242222447274964463183096259399",
		"314420795639698709615179767023255641439",
	},
	256: {
		"100525766844833656671303923414328398289579659103001943578658899980222061594823",
		"88509685524954922560713284193511004286848701670225608083799748344189573134027",
	},
	512: {
		"10077582970576515607682422383856137189728070608317332768024400650979153125236442788008029299582665740192463601562515852430980601014460143283612237645500423",
		"12551734917502876393102833814116710147876757616772902224810626724270433175265264402635740024962419809575122440552902291779414500425292510828778883868770059",
	},
}

// KnownSafePrimes returns a precomputed pair of safe primes whose
// individual bit length is primeBits (so the resulting RSA modulus has
// 2·primeBits bits; the paper's 1024-bit key corresponds to primeBits =
// 512). Supported sizes: 64, 128, 256, 512.
func KnownSafePrimes(primeBits int) (p, q *big.Int, err error) {
	pair, ok := knownSafePrimes[primeBits]
	if !ok {
		return nil, nil, fmt.Errorf("damgardjurik: no known safe primes of %d bits", primeBits)
	}
	p, _ = new(big.Int).SetString(pair[0], 10)
	q, _ = new(big.Int).SetString(pair[1], 10)
	return p, q, nil
}

// NewTestScheme builds a scheme from the precomputed safe primes. It is
// the standard entry point for tests, examples and benchmarks. keyBits
// is the modulus size (twice the prime size): 128, 256, 512 or 1024.
func NewTestScheme(keyBits, s, nShares, threshold int) (*Scheme, error) {
	p, q, err := KnownSafePrimes(keyBits / 2)
	if err != nil {
		return nil, err
	}
	return NewFromPrimes(nil, p, q, s, nShares, threshold)
}
