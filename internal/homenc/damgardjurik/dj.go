// Package damgardjurik implements the Damgård–Jurik generalization of
// the Paillier cryptosystem (PKC 2001), the concrete scheme the paper
// instantiates (Section 3.3.1): semantically secure, additively
// homomorphic, with non-interactive threshold decryption.
//
//   - Public key: an RSA modulus n = p·q (p, q safe primes) and the
//     degree s; plaintexts live in Z_{n^s}, ciphertexts in Z*_{n^(s+1)}.
//   - Encryption: E(m) = (1+n)^m · r^(n^s) mod n^(s+1).
//   - Homomorphic addition is ciphertext multiplication; scalar
//     multiplication is ciphertext exponentiation.
//   - The decryption exponent d (d ≡ 1 mod n^s, d ≡ 0 mod p'q') is
//     Shamir-shared over Z_{n^s·p'q'}; a partial decryption is
//     c_i = c^(2Δ·s_i) with Δ = ℓ!, and any τ distinct partials combine
//     through integer Lagrange coefficients, followed by the iterative
//     discrete-log algorithm on (1+n)-powers.
package damgardjurik

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/shamir"
)

var one = big.NewInt(1)

// PublicKey holds the public parameters and derived constants.
type PublicKey struct {
	N *big.Int // RSA modulus p·q
	S int      // plaintext space degree: messages mod N^S

	NS  *big.Int // N^S, the plaintext modulus
	NS1 *big.Int // N^(S+1), the ciphertext modulus
}

func newPublicKey(n *big.Int, s int) *PublicKey {
	ns := new(big.Int).Set(n)
	for i := 1; i < s; i++ {
		ns.Mul(ns, n)
	}
	ns1 := new(big.Int).Mul(ns, n)
	return &PublicKey{N: new(big.Int).Set(n), S: s, NS: ns, NS1: ns1}
}

// Scheme is a complete threshold Damgård–Jurik instance. For simulation
// convenience it holds every key-share; a deployed participant would
// hold only its own (the protocol layer only ever passes an index).
// Methods are safe for concurrent use when Random is crypto/rand.Reader.
type Scheme struct {
	*PublicKey

	nShares   int
	threshold int
	delta     *big.Int       // Δ = nShares!
	combInv   *big.Int       // (4Δ²)^(-1) mod N^S
	shares    []shamir.Share // Shamir shares of d over Z_{N^S · p'q'}

	d *big.Int // the full decryption exponent (kept for direct Decrypt)

	Random io.Reader // entropy source for Encrypt (crypto/rand if nil)
}

// GenerateKey creates a fresh threshold Damgård–Jurik scheme with an
// RSA modulus of the given bit length (so p and q are bits/2-bit safe
// primes — for bits >= 1024 this takes a while; tests use the
// precomputed safe primes exposed by KnownSafePrimes). random may be nil
// for crypto/rand.
func GenerateKey(random io.Reader, bits, s, nShares, threshold int) (*Scheme, error) {
	if random == nil {
		random = rand.Reader
	}
	if bits < 32 {
		return nil, errors.New("damgardjurik: modulus below 32 bits")
	}
	p, err := safePrime(random, bits/2)
	if err != nil {
		return nil, err
	}
	var q *big.Int
	for {
		q, err = safePrime(random, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if q.Cmp(p) != 0 {
			break
		}
	}
	return NewFromPrimes(random, p, q, s, nShares, threshold)
}

// NewFromPrimes builds a scheme from two distinct safe primes p = 2p'+1,
// q = 2q'+1. random is used for the Shamir sharing polynomial (nil =
// crypto/rand).
func NewFromPrimes(random io.Reader, p, q *big.Int, s, nShares, threshold int) (*Scheme, error) {
	if s < 1 {
		return nil, errors.New("damgardjurik: s must be >= 1")
	}
	if threshold < 1 || nShares < threshold {
		return nil, fmt.Errorf("damgardjurik: invalid threshold %d of %d", threshold, nShares)
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("damgardjurik: p and q must differ")
	}
	pp := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1) // p' = (p-1)/2
	qp := new(big.Int).Rsh(new(big.Int).Sub(q, one), 1) // q'
	for _, pr := range []*big.Int{p, q, pp, qp} {
		if !pr.ProbablyPrime(24) {
			return nil, errors.New("damgardjurik: p and q must be safe primes")
		}
	}
	n := new(big.Int).Mul(p, q)
	pk := newPublicKey(n, s)
	mbar := new(big.Int).Mul(pp, qp) // p'q'

	// d ≡ 1 mod N^S and d ≡ 0 mod p'q' by CRT:
	// d = m̄ · (m̄^{-1} mod N^S).
	mbarInv := new(big.Int).ModInverse(mbar, pk.NS)
	if mbarInv == nil {
		return nil, errors.New("damgardjurik: gcd(p'q', n^s) != 1")
	}
	d := new(big.Int).Mul(mbar, mbarInv)

	// Share d over Z_{N^S · m̄}.
	shareMod := new(big.Int).Mul(pk.NS, mbar)
	shares, err := shamir.Split(new(big.Int).Mod(d, shareMod), shareMod, threshold, nShares, random)
	if err != nil {
		return nil, err
	}

	delta := shamir.Delta(nShares)
	// (4Δ²)^{-1} mod N^S — Δ = ℓ! is coprime to n for ℓ < p.
	fourD2 := new(big.Int).Mul(delta, delta)
	fourD2.Lsh(fourD2, 2)
	combInv := new(big.Int).ModInverse(fourD2, pk.NS)
	if combInv == nil {
		return nil, errors.New("damgardjurik: 4Δ² not invertible mod n^s (nShares too large?)")
	}

	return &Scheme{
		PublicKey: pk,
		nShares:   nShares,
		threshold: threshold,
		delta:     delta,
		combInv:   combInv,
		shares:    shares,
		d:         d,
		Random:    random,
	}, nil
}

// Name implements homenc.Scheme.
func (s *Scheme) Name() string { return "damgard-jurik" }

// PlaintextSpace implements homenc.Scheme.
func (s *Scheme) PlaintextSpace() *big.Int { return s.NS }

// NumShares implements homenc.Scheme.
func (s *Scheme) NumShares() int { return s.nShares }

// Threshold implements homenc.Scheme.
func (s *Scheme) Threshold() int { return s.threshold }

// CiphertextBytes implements homenc.Scheme.
func (s *Scheme) CiphertextBytes() int { return (s.NS1.BitLen() + 7) / 8 }

// powOnePlusN computes (1+n)^m mod n^(s+1) through the binomial
// expansion: Σ_{i=0..s} C(m, i)·n^i, which is exact because n^(s+1)
// kills every higher term. This is dramatically cheaper than a modular
// exponentiation for the large m the protocol produces.
func (s *Scheme) powOnePlusN(m *big.Int) *big.Int {
	mr := new(big.Int).Mod(m, s.NS) // (1+n) has order n^s, so reduce first
	acc := big.NewInt(1)
	bin := big.NewInt(1)  // C(m, i) mod n^(s+1)
	npow := big.NewInt(1) // n^i
	for i := 1; i <= s.S; i++ {
		// C(m,i) = C(m,i-1)·(m-i+1)/i; the quotient is an integer, so
		// multiplying by i^{-1} mod n^(s+1) (i is coprime to n) yields
		// the correct residue.
		f := new(big.Int).Sub(mr, big.NewInt(int64(i-1)))
		bin.Mul(bin, f)
		bin.Mod(bin, s.NS1)
		inv := new(big.Int).ModInverse(big.NewInt(int64(i)), s.NS1)
		bin.Mul(bin, inv)
		bin.Mod(bin, s.NS1)
		npow.Mul(npow, s.N)
		term := new(big.Int).Mul(bin, npow)
		acc.Add(acc, term)
		acc.Mod(acc, s.NS1)
	}
	return acc
}

// Encrypt implements homenc.Scheme: E(m) = (1+n)^m · r^(n^s) mod n^(s+1).
func (s *Scheme) Encrypt(m *big.Int) homenc.Ciphertext {
	r := s.randomUnit()
	r.Exp(r, s.NS, s.NS1)
	c := s.powOnePlusN(m)
	c.Mul(c, r)
	c.Mod(c, s.NS1)
	return homenc.Ciphertext{V: c}
}

func (s *Scheme) randomUnit() *big.Int {
	random := s.Random
	if random == nil {
		random = rand.Reader
	}
	for {
		r, err := rand.Int(random, s.N)
		if err != nil {
			panic("damgardjurik: entropy source failed: " + err.Error())
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, s.N).Cmp(one) == 0 {
			return r
		}
	}
}

// Add implements homenc.Scheme: E(a) +h E(b) = E(a)·E(b) mod n^(s+1).
func (s *Scheme) Add(a, b homenc.Ciphertext) homenc.Ciphertext {
	c := new(big.Int).Mul(a.V, b.V)
	c.Mod(c, s.NS1)
	return homenc.Ciphertext{V: c}
}

// ScalarMul implements homenc.Scheme: k ·h E(a) = E(a)^k mod n^(s+1).
func (s *Scheme) ScalarMul(a homenc.Ciphertext, k *big.Int) homenc.Ciphertext {
	if k.Sign() < 0 {
		panic("damgardjurik: negative scalar")
	}
	return homenc.Ciphertext{V: new(big.Int).Exp(a.V, k, s.NS1)}
}

// dLog recovers i from a = (1+n)^i mod n^(s+1), 0 <= i < n^s, using the
// iterative algorithm of Damgård–Jurik (PKC 2001, Section 3).
func (s *Scheme) dLog(a *big.Int) *big.Int {
	i := new(big.Int)
	nj := new(big.Int).Set(s.N) // n^j
	for j := 1; j <= s.S; j++ {
		nj1 := new(big.Int).Mul(nj, s.N) // n^(j+1)
		// t1 = L(a mod n^(j+1)) = (a mod n^(j+1) - 1) / n
		t1 := new(big.Int).Mod(a, nj1)
		t1.Sub(t1, one)
		t1.Div(t1, s.N)
		t1.Mod(t1, nj)
		t2 := new(big.Int).Set(i)
		ii := new(big.Int).Set(i)
		kfact := big.NewInt(1)
		npow := big.NewInt(1) // n^(k-1)
		for k := 2; k <= j; k++ {
			ii.Sub(ii, one)
			t2.Mul(t2, ii)
			t2.Mod(t2, nj)
			npow.Mul(npow, s.N)
			kfact.Mul(kfact, big.NewInt(int64(k)))
			// t1 -= t2 · n^(k-1) / k!   (division = inverse mod n^j)
			inv := new(big.Int).ModInverse(kfact, nj)
			sub := new(big.Int).Mul(t2, npow)
			sub.Mul(sub, inv)
			t1.Sub(t1, sub)
			t1.Mod(t1, nj)
		}
		i = t1
		nj = nj1
	}
	return i
}

// Decrypt recovers the plaintext using the full exponent d — the
// non-threshold path, handy for tests and local-cost measurements.
// It computes c^(2d) (the factor 2 annihilates the random component)
// and divides the discrete log by 2.
func (s *Scheme) Decrypt(c homenc.Ciphertext) *big.Int {
	e := new(big.Int).Lsh(s.d, 1)
	a := new(big.Int).Exp(c.V, e, s.NS1)
	m := s.dLog(a)
	twoInv := new(big.Int).ModInverse(big.NewInt(2), s.NS)
	m.Mul(m, twoInv)
	return m.Mod(m, s.NS)
}

// PartialDecrypt implements homenc.Scheme: c_i = c^(2Δ·s_i) mod n^(s+1).
func (s *Scheme) PartialDecrypt(index int, c homenc.Ciphertext) (homenc.PartialDecryption, error) {
	if index < 1 || index > s.nShares {
		return homenc.PartialDecryption{}, fmt.Errorf("damgardjurik: key-share index %d out of range", index)
	}
	e := new(big.Int).Lsh(s.delta, 1) // 2Δ
	e.Mul(e, s.shares[index-1].Y)
	return homenc.PartialDecryption{
		Index: index,
		V:     new(big.Int).Exp(c.V, e, s.NS1),
	}, nil
}

// Combine implements homenc.Scheme: it merges >= Threshold distinct
// partial decryptions into the plaintext,
//
//	c' = Π c_i^(2μ_i) = c^(4Δ²d) = (1+n)^(4Δ²·m)  mod n^(s+1),
//
// then m = dLog(c') · (4Δ²)^{-1} mod n^s.
func (s *Scheme) Combine(c homenc.Ciphertext, parts []homenc.PartialDecryption) (*big.Int, error) {
	xs := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		if p.Index < 1 || p.Index > s.nShares {
			return nil, fmt.Errorf("damgardjurik: key-share index %d out of range", p.Index)
		}
		if seen[p.Index] {
			return nil, fmt.Errorf("damgardjurik: duplicate key-share %d", p.Index)
		}
		seen[p.Index] = true
		xs = append(xs, p.Index)
	}
	if len(xs) < s.threshold {
		return nil, errors.New("damgardjurik: not enough distinct key-shares")
	}
	acc := big.NewInt(1)
	for _, p := range parts {
		mu, err := shamir.Lambda0(xs, p.Index, s.nShares)
		if err != nil {
			return nil, err
		}
		e := new(big.Int).Lsh(mu, 1) // 2μ_i, possibly negative
		base := p.V
		if e.Sign() < 0 {
			base = new(big.Int).ModInverse(p.V, s.NS1)
			if base == nil {
				return nil, errors.New("damgardjurik: partial decryption not invertible")
			}
			e.Neg(e)
		}
		term := new(big.Int).Exp(base, e, s.NS1)
		acc.Mul(acc, term)
		acc.Mod(acc, s.NS1)
	}
	m := s.dLog(acc)
	m.Mul(m, s.combInv)
	return m.Mod(m, s.NS), nil
}

var _ homenc.Scheme = (*Scheme)(nil)

// safePrime generates a prime p = 2p'+1 with p' prime, of the given bit
// length.
func safePrime(random io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("damgardjurik: safe prime below 16 bits")
	}
	for {
		pp, err := rand.Prime(random, bits-1)
		if err != nil {
			return nil, err
		}
		p := new(big.Int).Lsh(pp, 1)
		p.Add(p, one)
		if p.ProbablyPrime(24) {
			return p, nil
		}
	}
}
