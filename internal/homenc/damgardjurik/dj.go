// Package damgardjurik implements the Damgård–Jurik generalization of
// the Paillier cryptosystem (PKC 2001), the concrete scheme the paper
// instantiates (Section 3.3.1): semantically secure, additively
// homomorphic, with non-interactive threshold decryption.
//
//   - Public key: an RSA modulus n = p·q (p, q safe primes) and the
//     degree s; plaintexts live in Z_{n^s}, ciphertexts in Z*_{n^(s+1)}.
//   - Encryption: E(m) = (1+n)^m · r^(n^s) mod n^(s+1).
//   - Homomorphic addition is ciphertext multiplication; scalar
//     multiplication is ciphertext exponentiation.
//   - The decryption exponent d (d ≡ 1 mod n^s, d ≡ 0 mod p'q') is
//     Shamir-shared over Z_{n^s·p'q'}; a partial decryption is
//     c_i = c^(2Δ·s_i) with Δ = ℓ!, and any τ distinct partials combine
//     through integer Lagrange coefficients, followed by the iterative
//     discrete-log algorithm on (1+n)-powers.
package damgardjurik

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/shamir"
)

var one = big.NewInt(1)

// PublicKey holds the public parameters and derived constants.
type PublicKey struct {
	N *big.Int // RSA modulus p·q
	S int      // plaintext space degree: messages mod N^S

	NS  *big.Int // N^S, the plaintext modulus
	NS1 *big.Int // N^(S+1), the ciphertext modulus
}

func newPublicKey(n *big.Int, s int) *PublicKey {
	ns := new(big.Int).Set(n)
	for i := 1; i < s; i++ {
		ns.Mul(ns, n)
	}
	ns1 := new(big.Int).Mul(ns, n)
	return &PublicKey{N: new(big.Int).Set(n), S: s, NS: ns, NS1: ns1}
}

// Scheme is a complete threshold Damgård–Jurik instance. For simulation
// convenience it holds every key-share; a deployed participant would
// hold only its own (the protocol layer only ever passes an index).
// Methods are safe for concurrent use when Random is crypto/rand.Reader.
type Scheme struct {
	*PublicKey

	nShares   int
	threshold int
	delta     *big.Int       // Δ = nShares!
	combInv   *big.Int       // (4Δ²)^(-1) mod N^S
	shares    []shamir.Share // Shamir shares of d over Z_{N^S · p'q'}

	d *big.Int // the full decryption exponent (kept for direct Decrypt)

	Random io.Reader // entropy source for Encrypt (crypto/rand if nil)

	// Performance machinery (PERF.md): the CRT context exploits the
	// scheme's knowledge of p and q to run every exponentiation on the
	// two half-width prime powers; the pool precomputes the message-
	// independent encryption factors in the background; the remaining
	// fields cache the small-integer inverses that powOnePlusN, dLog and
	// Decrypt previously recomputed on every call.
	crt         *crtContext
	pool        *randomizerPool
	randMu      sync.Mutex   // serializes draws from a custom Random reader
	smallInv    []*big.Int   // smallInv[i] = i^(-1) mod N^(S+1), 1 <= i <= S
	njPow       []*big.Int   // njPow[j] = N^j, 0 <= j <= S+1
	dlogFactInv [][]*big.Int // dlogFactInv[j][k] = (k!)^(-1) mod N^j
	halfInv     *big.Int     // 2^(-1) mod N^S
}

// GenerateKey creates a fresh threshold Damgård–Jurik scheme with an
// RSA modulus of the given bit length (so p and q are bits/2-bit safe
// primes — for bits >= 1024 this takes a while; tests use the
// precomputed safe primes exposed by KnownSafePrimes). random may be nil
// for crypto/rand.
func GenerateKey(random io.Reader, bits, s, nShares, threshold int) (*Scheme, error) {
	if random == nil {
		random = rand.Reader
	}
	if bits < 32 {
		return nil, errors.New("damgardjurik: modulus below 32 bits")
	}
	p, err := safePrime(random, bits/2)
	if err != nil {
		return nil, err
	}
	var q *big.Int
	for {
		q, err = safePrime(random, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if q.Cmp(p) != 0 {
			break
		}
	}
	return NewFromPrimes(random, p, q, s, nShares, threshold)
}

// NewFromPrimes builds a scheme from two distinct safe primes p = 2p'+1,
// q = 2q'+1. random is used for the Shamir sharing polynomial (nil =
// crypto/rand).
func NewFromPrimes(random io.Reader, p, q *big.Int, s, nShares, threshold int) (*Scheme, error) {
	if s < 1 {
		return nil, errors.New("damgardjurik: s must be >= 1")
	}
	if threshold < 1 || nShares < threshold {
		return nil, fmt.Errorf("damgardjurik: invalid threshold %d of %d", threshold, nShares)
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("damgardjurik: p and q must differ")
	}
	pp := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1) // p' = (p-1)/2
	qp := new(big.Int).Rsh(new(big.Int).Sub(q, one), 1) // q'
	for _, pr := range []*big.Int{p, q, pp, qp} {
		if !pr.ProbablyPrime(24) {
			return nil, errors.New("damgardjurik: p and q must be safe primes")
		}
	}
	n := new(big.Int).Mul(p, q)
	pk := newPublicKey(n, s)
	mbar := new(big.Int).Mul(pp, qp) // p'q'

	// d ≡ 1 mod N^S and d ≡ 0 mod p'q' by CRT:
	// d = m̄ · (m̄^{-1} mod N^S).
	mbarInv := new(big.Int).ModInverse(mbar, pk.NS)
	if mbarInv == nil {
		return nil, errors.New("damgardjurik: gcd(p'q', n^s) != 1")
	}
	d := new(big.Int).Mul(mbar, mbarInv)

	// Share d over Z_{N^S · m̄}.
	shareMod := new(big.Int).Mul(pk.NS, mbar)
	shares, err := shamir.Split(new(big.Int).Mod(d, shareMod), shareMod, threshold, nShares, random)
	if err != nil {
		return nil, err
	}

	delta := shamir.Delta(nShares)
	// (4Δ²)^{-1} mod N^S — Δ = ℓ! is coprime to n for ℓ < p.
	fourD2 := new(big.Int).Mul(delta, delta)
	fourD2.Lsh(fourD2, 2)
	combInv := new(big.Int).ModInverse(fourD2, pk.NS)
	if combInv == nil {
		return nil, errors.New("damgardjurik: 4Δ² not invertible mod n^s (nShares too large?)")
	}

	sch := &Scheme{
		PublicKey: pk,
		nShares:   nShares,
		threshold: threshold,
		delta:     delta,
		combInv:   combInv,
		shares:    shares,
		d:         d,
		Random:    random,
		crt:       newCRTContext(random, p, q, s),
	}
	sch.pool = newRandomizerPool(func() *big.Int { return sch.newRandomizer(nil) })
	sch.precomputeInverses()
	return sch, nil
}

// precomputeInverses caches every modular inverse whose operands depend
// only on the key: the small integers of the powOnePlusN binomial, the
// factorials of the dLog recursion, and the 2^(-1) of Decrypt. They are
// tiny (O(S²) entries for the degrees the protocol uses) but were
// recomputed per loop iteration per call on the previous hot path.
func (s *Scheme) precomputeInverses() {
	s.smallInv = make([]*big.Int, s.S+1)
	for i := 1; i <= s.S; i++ {
		s.smallInv[i] = new(big.Int).ModInverse(big.NewInt(int64(i)), s.NS1)
	}
	s.njPow = make([]*big.Int, s.S+2)
	s.njPow[0] = big.NewInt(1)
	for j := 1; j <= s.S+1; j++ {
		s.njPow[j] = new(big.Int).Mul(s.njPow[j-1], s.N)
	}
	s.dlogFactInv = make([][]*big.Int, s.S+1)
	kfact := new(big.Int)
	for j := 1; j <= s.S; j++ {
		s.dlogFactInv[j] = make([]*big.Int, j+1)
		kfact.SetInt64(1)
		for k := 2; k <= j; k++ {
			kfact.Mul(kfact, big.NewInt(int64(k)))
			s.dlogFactInv[j][k] = new(big.Int).ModInverse(kfact, s.njPow[j])
		}
	}
	s.halfInv = new(big.Int).ModInverse(big.NewInt(2), s.NS)
}

// Name implements homenc.Scheme.
func (s *Scheme) Name() string { return "damgard-jurik" }

// PlaintextSpace implements homenc.Scheme.
func (s *Scheme) PlaintextSpace() *big.Int { return s.NS }

// NumShares implements homenc.Scheme.
func (s *Scheme) NumShares() int { return s.nShares }

// Threshold implements homenc.Scheme.
func (s *Scheme) Threshold() int { return s.threshold }

// CiphertextBytes implements homenc.Scheme.
func (s *Scheme) CiphertextBytes() int { return (s.NS1.BitLen() + 7) / 8 }

// powOnePlusN computes (1+n)^m mod n^(s+1) through the binomial
// expansion: Σ_{i=0..s} C(m, i)·n^i, which is exact because n^(s+1)
// kills every higher term. This is dramatically cheaper than a modular
// exponentiation for the large m the protocol produces.
func (s *Scheme) powOnePlusN(m *big.Int) *big.Int {
	mr := new(big.Int).Mod(m, s.NS) // (1+n) has order n^s, so reduce first
	acc := big.NewInt(1)
	bin := big.NewInt(1)  // C(m, i) mod n^(s+1)
	npow := big.NewInt(1) // n^i
	for i := 1; i <= s.S; i++ {
		// C(m,i) = C(m,i-1)·(m-i+1)/i; the quotient is an integer, so
		// multiplying by i^{-1} mod n^(s+1) (i is coprime to n) yields
		// the correct residue.
		f := new(big.Int).Sub(mr, big.NewInt(int64(i-1)))
		bin.Mul(bin, f)
		bin.Mod(bin, s.NS1)
		bin.Mul(bin, s.smallInv[i])
		bin.Mod(bin, s.NS1)
		npow.Mul(npow, s.N)
		term := new(big.Int).Mul(bin, npow)
		acc.Add(acc, term)
		acc.Mod(acc, s.NS1)
	}
	return acc
}

// Encrypt implements homenc.Scheme: E(m) = (1+n)^m · r^(n^s) mod n^(s+1).
// The r^(n^s) factor is message-independent and comes from the
// randomizer pool when available, so the per-message work is one
// binomial evaluation and one modular multiply.
func (s *Scheme) Encrypt(m *big.Int) homenc.Ciphertext {
	c := s.powOnePlusN(m)
	c.Mul(c, s.takeRandomizer())
	c.Mod(c, s.NS1)
	return homenc.Ciphertext{V: c}
}

// takeRandomizer returns one fresh r^(n^s) factor. The pool only serves
// schemes drawing from crypto/rand: a caller-supplied Random source is
// consumed sequentially under randMu — arbitrary io.Readers are not
// safe for the concurrent draws the worker-pool layers perform — so
// deterministic readers stay reproducible (draw order under a parallel
// fan-out follows execution order, but each draw is whole and the
// stream is never torn).
func (s *Scheme) takeRandomizer() *big.Int {
	if random := s.Random; random != nil {
		s.randMu.Lock()
		defer s.randMu.Unlock()
		return s.newRandomizer(random)
	}
	if s.pool != nil {
		return s.pool.take()
	}
	return s.newRandomizer(nil)
}

// PrecomputeRandomizers synchronously stocks the randomizer pool with
// up to k encryption factors (bounded by the pool capacity), so an
// imminent burst of Encrypt calls — an EESum fan-out, a benchmark
// steady state — starts warm. It is a no-op for schemes with a custom
// Random source.
func (s *Scheme) PrecomputeRandomizers(k int) {
	if s.pool != nil && s.Random == nil {
		s.pool.prefill(k)
	}
}

func (s *Scheme) randomUnit() *big.Int {
	random := s.Random
	if random == nil {
		random = rand.Reader
	}
	for {
		r, err := rand.Int(random, s.N)
		if err != nil {
			panic("damgardjurik: entropy source failed: " + err.Error())
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, s.N).Cmp(one) == 0 {
			return r
		}
	}
}

// Add implements homenc.Scheme: E(a) +h E(b) = E(a)·E(b) mod n^(s+1).
func (s *Scheme) Add(a, b homenc.Ciphertext) homenc.Ciphertext {
	c := new(big.Int).Mul(a.V, b.V)
	c.Mod(c, s.NS1)
	return homenc.Ciphertext{V: c}
}

// ScalarMul implements homenc.Scheme: k ·h E(a) = E(a)^k mod n^(s+1).
func (s *Scheme) ScalarMul(a homenc.Ciphertext, k *big.Int) homenc.Ciphertext {
	if k.Sign() < 0 {
		panic("damgardjurik: negative scalar")
	}
	return homenc.Ciphertext{V: s.expNS1(a.V, k)}
}

// dLog recovers i from a = (1+n)^i mod n^(s+1), 0 <= i < n^s, using the
// iterative algorithm of Damgård–Jurik (PKC 2001, Section 3).
func (s *Scheme) dLog(a *big.Int) *big.Int {
	i := new(big.Int)
	for j := 1; j <= s.S; j++ {
		nj, nj1 := s.njPow[j], s.njPow[j+1]
		// t1 = L(a mod n^(j+1)) = (a mod n^(j+1) - 1) / n
		t1 := new(big.Int).Mod(a, nj1)
		t1.Sub(t1, one)
		t1.Div(t1, s.N)
		t1.Mod(t1, nj)
		t2 := new(big.Int).Set(i)
		ii := new(big.Int).Set(i)
		for k := 2; k <= j; k++ {
			ii.Sub(ii, one)
			t2.Mul(t2, ii)
			t2.Mod(t2, nj)
			// t1 -= t2 · n^(k-1) / k!   (division = cached inverse mod n^j)
			sub := new(big.Int).Mul(t2, s.njPow[k-1])
			sub.Mul(sub, s.dlogFactInv[j][k])
			t1.Sub(t1, sub)
			t1.Mod(t1, nj)
		}
		i = t1
	}
	return i
}

// Decrypt recovers the plaintext using the full exponent d — the
// non-threshold path, handy for tests and local-cost measurements.
// It computes c^(2d) (the factor 2 annihilates the random component)
// and divides the discrete log by 2.
func (s *Scheme) Decrypt(c homenc.Ciphertext) *big.Int {
	e := new(big.Int).Lsh(s.d, 1)
	a := s.expNS1(c.V, e)
	m := s.dLog(a)
	m.Mul(m, s.halfInv)
	return m.Mod(m, s.NS)
}

// PartialDecrypt implements homenc.Scheme: c_i = c^(2Δ·s_i) mod n^(s+1).
func (s *Scheme) PartialDecrypt(index int, c homenc.Ciphertext) (homenc.PartialDecryption, error) {
	if index < 1 || index > s.nShares {
		return homenc.PartialDecryption{}, fmt.Errorf("damgardjurik: key-share index %d out of range", index)
	}
	e := new(big.Int).Lsh(s.delta, 1) // 2Δ
	e.Mul(e, s.shares[index-1].Y)
	return homenc.PartialDecryption{
		Index: index,
		V:     s.expNS1(c.V, e),
	}, nil
}

// Combine implements homenc.Scheme: it merges >= Threshold distinct
// partial decryptions into the plaintext,
//
//	c' = Π c_i^(2μ_i) = c^(4Δ²d) = (1+n)^(4Δ²·m)  mod n^(s+1),
//
// then m = dLog(c') · (4Δ²)^{-1} mod n^s.
func (s *Scheme) Combine(c homenc.Ciphertext, parts []homenc.PartialDecryption) (*big.Int, error) {
	xs := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		if p.Index < 1 || p.Index > s.nShares {
			return nil, fmt.Errorf("damgardjurik: key-share index %d out of range", p.Index)
		}
		if seen[p.Index] {
			return nil, fmt.Errorf("damgardjurik: duplicate key-share %d", p.Index)
		}
		seen[p.Index] = true
		xs = append(xs, p.Index)
	}
	if len(xs) < s.threshold {
		return nil, errors.New("damgardjurik: not enough distinct key-shares")
	}
	acc := big.NewInt(1)
	for _, p := range parts {
		mu, err := shamir.Lambda0(xs, p.Index, s.nShares)
		if err != nil {
			return nil, err
		}
		e := new(big.Int).Lsh(mu, 1) // 2μ_i, possibly negative
		base := p.V
		if e.Sign() < 0 {
			base = s.invNS1(p.V)
			if base == nil {
				return nil, errors.New("damgardjurik: partial decryption not invertible")
			}
			e.Neg(e)
		}
		term := s.expNS1(base, e)
		acc.Mul(acc, term)
		acc.Mod(acc, s.NS1)
	}
	m := s.dLog(acc)
	m.Mul(m, s.combInv)
	return m.Mod(m, s.NS), nil
}

var _ homenc.Scheme = (*Scheme)(nil)

// safePrime generates a prime p = 2p'+1 with p' prime, of the given bit
// length.
func safePrime(random io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("damgardjurik: safe prime below 16 bits")
	}
	for {
		pp, err := rand.Prime(random, bits-1)
		if err != nil {
			return nil, err
		}
		p := new(big.Int).Lsh(pp, 1)
		p.Add(p, one)
		if p.ProbablyPrime(24) {
			return p, nil
		}
	}
}
