package damgardjurik

import (
	"math/big"
	"sync/atomic"
)

// poolCapacity bounds the number of precomputed randomizers a scheme
// keeps. Each is one big.Int of ciphertext size (≈256 bytes at the
// paper's 1024-bit key), so the pool tops out around 32 KiB.
const poolCapacity = 128

// randomizerPool precomputes encryption randomizers — the message-
// independent r^(n^s) mod n^(s+1) factors — off the critical path, so a
// burst of Encrypt calls pays one powOnePlusN plus a multiply each.
// take never blocks: a miss computes inline, and draining the pool past
// its low-water mark wakes a single background filler that tops it up
// and exits (no long-lived goroutine is ever parked on a scheme).
// fillDemand is the number of takes after which background refilling
// kicks in: a scheme that encrypts once or twice never pays for a full
// pool, while an encryption burst (an EESum fan-out) warms up fast.
const fillDemand = 8

type randomizerPool struct {
	ch      chan *big.Int // precomputed factors
	filling atomic.Bool   // at most one filler at a time
	takes   atomic.Int64  // demand counter gating the background fill
	gen     func() *big.Int
}

func newRandomizerPool(gen func() *big.Int) *randomizerPool {
	return &randomizerPool{ch: make(chan *big.Int, poolCapacity), gen: gen}
}

// take returns a precomputed randomizer, computing one inline when the
// pool is empty, and triggers a background refill when stocks are low
// and demand is proven.
func (p *randomizerPool) take() *big.Int {
	if p.takes.Add(1) >= fillDemand {
		p.maybeFill()
	}
	select {
	case r := <-p.ch:
		return r
	default:
		return p.gen()
	}
}

// maybeFill starts one background filler when the pool has drained
// below a quarter of its capacity.
func (p *randomizerPool) maybeFill() {
	if len(p.ch) > cap(p.ch)/4 {
		return
	}
	if !p.filling.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.filling.Store(false)
		for {
			if len(p.ch) == cap(p.ch) {
				return
			}
			select {
			case p.ch <- p.gen():
			default:
				return
			}
		}
	}()
}

// prefill synchronously stocks up to k randomizers (capped at the pool
// capacity) — for callers that know an encryption burst is imminent.
func (p *randomizerPool) prefill(k int) {
	if k > cap(p.ch) {
		k = cap(p.ch)
	}
	for i := 0; i < k; i++ {
		select {
		case p.ch <- p.gen():
		default:
			return
		}
	}
}
