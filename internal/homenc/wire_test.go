package homenc

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestCiphertextRoundTrip(t *testing.T) {
	f := func(raw []byte, neg bool) bool {
		v := new(big.Int).SetBytes(raw)
		if neg {
			v.Neg(v)
		}
		c := Ciphertext{V: v}
		b, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		var got Ciphertext
		if err := got.UnmarshalBinary(b); err != nil {
			return false
		}
		return got.V.Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartialDecryptionRoundTrip(t *testing.T) {
	p := PartialDecryption{Index: 42, V: big.NewInt(-123456789)}
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got PartialDecryption
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Index != 42 || got.V.Cmp(p.V) != 0 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	cts := []Ciphertext{
		{V: big.NewInt(0)},
		{V: big.NewInt(1)},
		{V: new(big.Int).Lsh(big.NewInt(1), 2048)},
		{V: big.NewInt(-99)},
	}
	b, err := MarshalVector(cts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVector(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cts) {
		t.Fatalf("length %d, want %d", len(got), len(cts))
	}
	for i := range cts {
		if got[i].V.Cmp(cts[i].V) != 0 {
			t.Errorf("element %d: %v != %v", i, got[i].V, cts[i].V)
		}
	}
}

func TestWireErrors(t *testing.T) {
	var c Ciphertext
	if _, err := c.MarshalBinary(); err == nil {
		t.Error("nil ciphertext must not marshal")
	}
	if err := c.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("short input must fail")
	}
	if err := c.UnmarshalBinary([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Error("bad tag must fail")
	}
	if err := c.UnmarshalBinary([]byte{1, 0, 0, 0, 5, 1}); err == nil {
		t.Error("truncated magnitude must fail")
	}
	good, _ := Ciphertext{V: big.NewInt(5)}.MarshalBinary()
	if err := c.UnmarshalBinary(append(good, 0)); err == nil {
		t.Error("trailing bytes must fail")
	}
	var p PartialDecryption
	if _, err := p.MarshalBinary(); err == nil {
		t.Error("nil partial must not marshal")
	}
	if err := p.UnmarshalBinary([]byte{0}); err == nil {
		t.Error("short partial must fail")
	}
	if _, err := UnmarshalVector([]byte{0}); err == nil {
		t.Error("short vector must fail")
	}
	huge := make([]byte, 4)
	huge[0] = 0xFF
	if _, err := UnmarshalVector(huge); err == nil {
		t.Error("implausible vector length must fail")
	}
	vec, _ := MarshalVector([]Ciphertext{{V: big.NewInt(1)}})
	if _, err := UnmarshalVector(append(vec, 7)); err == nil {
		t.Error("trailing vector bytes must fail")
	}
}

func TestWireDeterministic(t *testing.T) {
	a, _ := Ciphertext{V: big.NewInt(12345)}.MarshalBinary()
	b, _ := Ciphertext{V: big.NewInt(12345)}.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Error("encoding not canonical")
	}
}
