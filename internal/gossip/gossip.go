// Package gossip implements the plaintext epidemic aggregation
// algorithms of Section 3.2: the push-pull averaging sum of Kempe et
// al. / Jelasity et al. (each participant holds a local state (σ, ω)
// whose ratio σ/ω converges to the global sum exponentially fast) and
// the min-identifier epidemic dissemination used to agree on the noise
// correction (Section 4.2.2).
//
// The encrypted counterpart (EESum, Algorithm 2) lives in package eesum;
// this package is the cleartext machinery used for the epidemic counter,
// for the dissemination of corrections, and for the large-scale latency
// experiments of Figures 3(b) and 4(a).
package gossip

import (
	"math"

	"chiaroscuro/internal/sim"
)

// Sum is the epidemic sum protocol state for a population. Node i holds
// (Sigma[i], Omega[i]); the local estimate of the global sum is
// Sigma[i]/Omega[i]. Exactly one participant must start with ω = 1 and
// the rest with ω = 0 (Section 3.2, footnote 5).
type Sum struct {
	Sigma []float64
	Omega []float64
}

// NewSum initializes the protocol with each node's local value. The
// weight 1 is assigned to weightNode.
func NewSum(values []float64, weightNode int) *Sum {
	s := &Sum{
		Sigma: make([]float64, len(values)),
		Omega: make([]float64, len(values)),
	}
	copy(s.Sigma, values)
	s.Omega[weightNode] = 1
	return s
}

// Exchange is the push-pull averaging update: both sides set their state
// to the pairwise average, which preserves total mass. When full is
// false (the responder disconnected mid-exchange, Section 6.1.5) only
// the initiator updates — the paper's churn-induced corruption: total
// mass is no longer conserved, producing the residual error Figure 3(b)
// measures.
func (s *Sum) Exchange(a, b sim.NodeID, full bool) {
	ms := (s.Sigma[a] + s.Sigma[b]) / 2
	mw := (s.Omega[a] + s.Omega[b]) / 2
	s.Sigma[a], s.Omega[a] = ms, mw
	if full {
		s.Sigma[b], s.Omega[b] = ms, mw
	}
}

// ConcurrentExchangeSafe marks Sum for the simulation engine's parallel
// cycle mode (sim.ConcurrentExchanger): Exchange touches only the two
// exchanging nodes' slots, so node-disjoint exchanges commute.
func (s *Sum) ConcurrentExchangeSafe() bool { return true }

// Estimate returns node i's local estimate σ_i/ω_i of the global sum,
// and whether it is defined (ω_i > 0).
func (s *Sum) Estimate(i sim.NodeID) (float64, bool) {
	if s.Omega[i] <= 0 {
		return 0, false
	}
	return s.Sigma[i] / s.Omega[i], true
}

// MaxAbsError returns the maximum |estimate - want| over nodes with a
// defined estimate, plus the fraction of nodes whose estimate is defined.
func (s *Sum) MaxAbsError(want float64) (maxErr float64, defined float64) {
	var nDef int
	for i := range s.Sigma {
		est, ok := s.Estimate(i)
		if !ok {
			continue
		}
		nDef++
		if e := math.Abs(est - want); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, float64(nDef) / float64(len(s.Sigma))
}

// MeanRelError returns the average relative error of the defined
// estimates with respect to want (which must be non-zero).
func (s *Sum) MeanRelError(want float64) float64 {
	var sum float64
	var n int
	for i := range s.Sigma {
		if est, ok := s.Estimate(i); ok {
			sum += math.Abs(est-want) / math.Abs(want)
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// RunUntil runs cycles of the sum protocol on the engine until the
// maximum absolute error over defined estimates drops to target or
// maxCycles is reached. It returns the number of cycles executed.
func (s *Sum) RunUntil(e *sim.Engine, want, target float64, maxCycles int) int {
	for c := 0; c < maxCycles; c++ {
		e.RunCycleOn(s)
		if err, def := s.MaxAbsError(want); def == 1 && err <= target {
			return c + 1
		}
	}
	return maxCycles
}

// Dissemination is the min-identifier epidemic broadcast of Section
// 4.2.2: every participant proposes a (value, identifier) pair; at each
// exchange both sides keep the pair with the smallest identifier. All
// nodes converge to the globally smallest identifier's value — the
// unicity property the noise correction requires.
type Dissemination struct {
	ID    []uint64
	Value []float64 // opaque payload (experiments use a scalar; the protocol layer carries vectors)
}

// NewDissemination initializes the broadcast with each node's proposal.
func NewDissemination(ids []uint64, values []float64) *Dissemination {
	d := &Dissemination{
		ID:    make([]uint64, len(ids)),
		Value: make([]float64, len(values)),
	}
	copy(d.ID, ids)
	copy(d.Value, values)
	return d
}

// Exchange keeps the smallest identifier on both sides (initiator only,
// when full is false).
func (d *Dissemination) Exchange(a, b sim.NodeID, full bool) {
	if d.ID[b] < d.ID[a] {
		d.ID[a], d.Value[a] = d.ID[b], d.Value[b]
	} else if full && d.ID[a] < d.ID[b] {
		d.ID[b], d.Value[b] = d.ID[a], d.Value[a]
	}
}

// ConcurrentExchangeSafe marks Dissemination for the simulation
// engine's parallel cycle mode: only the two exchanging nodes' slots
// are touched.
func (d *Dissemination) ConcurrentExchangeSafe() bool { return true }

// Converged reports whether every node holds the same identifier.
func (d *Dissemination) Converged() bool {
	for _, id := range d.ID[1:] {
		if id != d.ID[0] {
			return false
		}
	}
	return true
}

// RunUntilConverged runs cycles until convergence or maxCycles, and
// returns the number of cycles executed.
func (d *Dissemination) RunUntilConverged(e *sim.Engine, maxCycles int) int {
	for c := 0; c < maxCycles; c++ {
		e.RunCycleOn(d)
		if d.Converged() {
			return c + 1
		}
	}
	return maxCycles
}
