package gossip

import (
	"math"
	"testing"

	"chiaroscuro/internal/sim"
)

func engine(t testing.TB, n int, churn float64, midFail bool) *sim.Engine {
	t.Helper()
	e, err := sim.New(sim.Config{
		N: n, Seed: 11, Churn: churn, MidFailure: midFail,
	}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSumMassConservation(t *testing.T) {
	const n = 500
	vals := make([]float64, n)
	var want float64
	for i := range vals {
		vals[i] = float64(i % 7)
		want += vals[i]
	}
	s := NewSum(vals, 0)
	e := engine(t, n, 0, false)
	for c := 0; c < 20; c++ {
		e.RunCycle(s.Exchange)
		var sigma, omega float64
		for i := range s.Sigma {
			sigma += s.Sigma[i]
			omega += s.Omega[i]
		}
		if math.Abs(sigma-want) > 1e-6*want {
			t.Fatalf("cycle %d: Σσ = %v, want %v (mass not conserved)", c, sigma, want)
		}
		if math.Abs(omega-1) > 1e-9 {
			t.Fatalf("cycle %d: Σω = %v, want 1", c, omega)
		}
	}
}

func TestSumConvergesExponentially(t *testing.T) {
	// Section 3.2: approximation error converges to zero exponentially
	// fast. Check the error after 2k cycles is well below that at k.
	const n = 1000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1
	}
	s := NewSum(vals, 0)
	e := engine(t, n, 0, false)
	var errAt20, errAt40 float64
	for c := 1; c <= 40; c++ {
		e.RunCycle(s.Exchange)
		if c == 20 {
			errAt20, _ = s.MaxAbsError(float64(n))
		}
		if c == 40 {
			errAt40, _ = s.MaxAbsError(float64(n))
		}
	}
	if errAt20 > float64(n)*1e-3 {
		t.Errorf("error after 20 cycles = %v, too high", errAt20)
	}
	if errAt40 > errAt20/100 && errAt20 > 0 {
		t.Errorf("no exponential decay: err(20)=%v err(40)=%v", errAt20, errAt40)
	}
}

func TestSumRunUntil(t *testing.T) {
	const n = 256
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 2
	}
	s := NewSum(vals, 0)
	e := engine(t, n, 0, false)
	cycles := s.RunUntil(e, 2*n, 0.001, 200)
	if cycles >= 200 {
		t.Errorf("did not reach 0.001 accuracy within 200 cycles")
	}
	err, def := s.MaxAbsError(2 * n)
	if def != 1 || err > 0.001 {
		t.Errorf("after RunUntil: err=%v defined=%v", err, def)
	}
	// Logarithmic latency: a 256-node sum should converge in tens of
	// cycles, not hundreds.
	if cycles > 60 {
		t.Errorf("convergence took %d cycles, want <= 60", cycles)
	}
}

func TestSumChurnResidualError(t *testing.T) {
	// With mid-exchange failures, mass conservation breaks and a residual
	// error floor appears (Figure 3(b)): error must stay small relative
	// to the sum but be clearly nonzero, and grow with churn.
	const n = 2000
	run := func(churn float64) float64 {
		var total float64
		const seeds = 6
		for seed := uint64(0); seed < seeds; seed++ {
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = 1
			}
			s := NewSum(vals, 0)
			e, err := sim.New(sim.Config{N: n, Seed: 13 + seed, Churn: churn, MidFailure: true},
				&sim.UniformSampler{})
			if err != nil {
				t.Fatal(err)
			}
			e.RunCycles(50, s.Exchange)
			total += s.MeanRelError(float64(n))
		}
		return total / seeds
	}
	low, high := run(0.1), run(0.5)
	if low == 0 || high == 0 {
		t.Error("mid-failure model inert: churn produced exactly zero error")
	}
	// The drift is a heavy-tailed random walk (dominated by rare early
	// corruptions of weight-heavy nodes), so strict monotonicity in the
	// churn rate is not testable at this scale — only the magnitude is:
	// a residual floor appears, bounded to a few percent at n=2000.
	if low > 0.08 || high > 0.08 {
		t.Errorf("residual churn error unreasonably large: %v / %v", low, high)
	}
	// Without mid-failure, the same churn leaves no residual floor.
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1
	}
	s := NewSum(vals, 0)
	e, err := sim.New(sim.Config{N: n, Seed: 13, Churn: 0.5}, &sim.UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(200, s.Exchange)
	if clean := s.MeanRelError(float64(n)); clean > 1e-9 {
		t.Errorf("atomic exchanges under churn left error %v, want ~0", clean)
	}
}

func TestDisseminationConverges(t *testing.T) {
	const n = 1000
	ids := make([]uint64, n)
	vals := make([]float64, n)
	for i := range ids {
		ids[i] = uint64(i + 10)
		vals[i] = float64(i + 10)
	}
	const minHolder = 637 // the global minimum sits at an arbitrary node
	ids[minHolder] = 3
	d := NewDissemination(ids, vals)
	e := engine(t, n, 0, false)
	cycles := d.RunUntilConverged(e, 100)
	if !d.Converged() {
		t.Fatal("dissemination did not converge in 100 cycles")
	}
	for i := range d.ID {
		if d.ID[i] != 3 {
			t.Fatalf("node %d holds id %d, want 3", i, d.ID[i])
		}
	}
	// Epidemic spreading is logarithmic.
	if cycles > 30 {
		t.Errorf("dissemination took %d cycles for n=1000", cycles)
	}
}

func TestDisseminationUnderChurn(t *testing.T) {
	const n = 500
	ids := make([]uint64, n)
	vals := make([]float64, n)
	for i := range ids {
		ids[i] = uint64(i + 100)
		vals[i] = 1
	}
	ids[250] = 1
	d := NewDissemination(ids, vals)
	e := engine(t, n, 0.3, false)
	d.RunUntilConverged(e, 300)
	if !d.Converged() {
		t.Error("dissemination did not survive 30% churn")
	}
}

func TestEstimateUndefined(t *testing.T) {
	s := NewSum([]float64{1, 2, 3}, 0)
	if _, ok := s.Estimate(1); ok {
		t.Error("node with ω=0 must have undefined estimate")
	}
	if _, ok := s.Estimate(0); !ok {
		t.Error("weight node must have defined estimate")
	}
	if rel := s.MeanRelError(6); math.IsInf(rel, 1) {
		t.Error("at least one estimate should be defined")
	}
}
