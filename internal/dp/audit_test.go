package dp

import (
	"math"
	"testing"

	"chiaroscuro/internal/randx"
)

// TestEmpiricalPrivacyAudit checks Definition 2 empirically on the real
// release pipeline: two neighboring datasets (one differing by a single
// individual's worst-case series) are pushed through PerturbSum many
// times, the outputs are histogrammed, and the log-ratio of bin
// frequencies must not exceed ε beyond statistical slack. A broken
// sensitivity calibration (e.g. forgetting the series length factor)
// fails this audit immediately.
func TestEmpiricalPrivacyAudit(t *testing.T) {
	const (
		eps           = 0.69
		n             = 4  // series length
		dmax          = 10 // measure bound
		trials        = 400_000
		binsPerLambda = 2
	)
	sens := SumSensitivity(n, 0, dmax) // 40
	lambda := LaplaceScale(sens, eps)

	// Neighboring inputs: the single coordinate we audit differs by the
	// maximal per-coordinate impact (the individual contributes dmax to
	// this coordinate of the sum). The vector case follows by the L1
	// composition the Laplace mechanism is calibrated for.
	sumA, sumB := 100.0, 100.0+dmax

	sample := func(base float64, seed uint64) []float64 {
		m := &Mechanism{Sensitivity: sens, RNG: randx.New(seed, 0xA0D17)}
		out := make([]float64, trials)
		for i := range out {
			v := []float64{base}
			m.PerturbSum(v, eps)
			out[i] = v[0]
		}
		return out
	}
	a := sample(sumA, 1)
	b := sample(sumB, 2)

	// Histogram over ±6λ around the midpoint.
	mid := (sumA + sumB) / 2
	binW := lambda / binsPerLambda
	lo := mid - 6*lambda
	nBins := int(12 * lambda / binW)
	histA := make([]int, nBins)
	histB := make([]int, nBins)
	count := func(xs []float64, h []int) {
		for _, x := range xs {
			i := int((x - lo) / binW)
			if i >= 0 && i < nBins {
				h[i]++
			}
		}
	}
	count(a, histA)
	count(b, histB)

	// The per-coordinate privacy loss is ε·(|Δ|/sens) because the noise
	// is calibrated to the full L1 sensitivity but the neighboring pair
	// differs by only dmax on this coordinate.
	budget := eps * dmax / sens
	worst := 0.0
	for i := 0; i < nBins; i++ {
		// Only bins with enough mass for the ratio to be meaningful.
		if histA[i] < 500 || histB[i] < 500 {
			continue
		}
		r := math.Abs(math.Log(float64(histA[i]) / float64(histB[i])))
		if r > worst {
			worst = r
		}
	}
	if worst == 0 {
		t.Fatal("audit found no comparable bins")
	}
	// Statistical slack: bin frequencies of >=500 samples have ~9%
	// relative noise at 2σ; allow 25%.
	if worst > budget*1.25 {
		t.Errorf("empirical privacy loss %.4f exceeds budget %.4f", worst, budget)
	}
	// Sanity: the audit must have teeth — an undersized noise scale
	// would blow the budget. Re-run with sensitivity accidentally
	// dropped by the series-length factor.
	broken := &Mechanism{Sensitivity: sens / n, RNG: randx.New(3, 0xA0D17)}
	brokeA := make([]int, nBins)
	brokeB := make([]int, nBins)
	for i := 0; i < trials/4; i++ {
		va := []float64{sumA}
		vb := []float64{sumB}
		broken.PerturbSum(va, eps)
		broken.PerturbSum(vb, eps)
		ia := int((va[0] - lo) / binW)
		ib := int((vb[0] - lo) / binW)
		if ia >= 0 && ia < nBins {
			brokeA[ia]++
		}
		if ib >= 0 && ib < nBins {
			brokeB[ib]++
		}
	}
	worstBroken := 0.0
	for i := 0; i < nBins; i++ {
		if brokeA[i] < 200 || brokeB[i] < 200 {
			continue
		}
		r := math.Abs(math.Log(float64(brokeA[i]) / float64(brokeB[i])))
		if r > worstBroken {
			worstBroken = r
		}
	}
	if worstBroken <= budget*1.25 {
		t.Errorf("audit has no teeth: broken mechanism passed with loss %.4f", worstBroken)
	}
}

// TestCompositionAcrossIterations verifies that the sequential
// composition enforced by the accountant matches the budget strategies'
// total: spending per Greedy for 60 iterations plus one more atom must
// be rejected.
func TestCompositionAcrossIterations(t *testing.T) {
	g := Greedy{Eps: 1}
	acct := &Accountant{Cap: 1}
	for it := 1; it <= 60; it++ {
		if eps := g.Epsilon(it); eps > 0 {
			if err := acct.Spend(eps); err != nil {
				t.Fatalf("iteration %d rejected: %v", it, err)
			}
		}
	}
	if err := acct.Spend(0.01); err == nil {
		t.Error("accountant allowed spending beyond the composed total")
	}
}
