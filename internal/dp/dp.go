// Package dp implements the differential-privacy machinery of the paper:
// the Laplace mechanism calibrated to the time-series Sum sensitivity
// (Definition 4), divisible noise-shares (Definition 5 / Lemma 1), the
// (ε,δ)-probabilistic relaxation with its gossip-error compensation
// (Lemma 2 and Lemma 3), the Newscast exchange bound (Theorem 3), and
// the privacy-budget concentration strategies of Section 5.1.
package dp

import (
	"errors"
	"fmt"
	"math"

	"chiaroscuro/internal/randx"
)

// SumSensitivity returns the L1 sensitivity of the time-series Sum
// aggregate of Definition 4: n * max(|dmin|, |dmax|), where n is the
// series length and [dmin, dmax] the per-measure range. For the CER
// dataset this is 24*80 = 1920, for NUMED 20*50 = 1000 — the values
// quoted in Section 6.1.1.
func SumSensitivity(n int, dmin, dmax float64) float64 {
	return float64(n) * math.Max(math.Abs(dmin), math.Abs(dmax))
}

// LaplaceScale returns the Laplace scale λ for releasing an aggregate of
// the given sensitivity at privacy level epsilon.
func LaplaceScale(sensitivity, epsilon float64) float64 {
	if epsilon <= 0 {
		panic("dp: epsilon must be positive")
	}
	return sensitivity / epsilon
}

// CompensatedScale applies the Lemma 2 correction for a gossip
// approximation error bounded by emax (relative): the sensitivity grows
// by (1+emax) and the noise magnitude by 1/(1-emax), so
//
//	λ' = (1+emax) * sensitivity / ε
//
// with the generated noise further inflated by 1+emax/(1-emax)
// (CompensationFactor).
func CompensatedScale(sensitivity, epsilon, emax float64) float64 {
	if emax < 0 || emax >= 1 {
		panic("dp: emax must be in [0,1)")
	}
	return (1 + emax) * sensitivity / epsilon
}

// CompensationFactor returns 1 + emax/(1-emax), the multiplicative
// inflation Lemma 2 applies to the gossip-approximated noise so that the
// worst-case shrunk noise still dominates Laplace(λ).
func CompensationFactor(emax float64) float64 {
	if emax < 0 || emax >= 1 {
		panic("dp: emax must be in [0,1)")
	}
	return 1 + emax/(1-emax)
}

// Theorem3Exchanges returns the minimum number of gossip exchanges per
// participant that Newscast needs so that, with probability 1-iota, every
// node's sum estimate is within emax of the exact value (Theorem 3, from
// Kowalczyk & Vlassis):
//
//	ne = ⌈0.581 (log np + 2 log s + 2 log 1/emax + log 1/iota)⌉
//
// Logs are natural. np is the population size, s² the data variance.
func Theorem3Exchanges(np int, s2, emax, iota float64) int {
	if np < 1 || emax <= 0 || iota <= 0 || iota >= 1 || s2 <= 0 {
		panic("dp: invalid Theorem 3 parameters")
	}
	s := math.Sqrt(s2)
	ne := 0.581 * (math.Log(float64(np)) + 2*math.Log(s) + 2*math.Log(1/emax) + math.Log(1/iota))
	return int(math.Ceil(ne))
}

// DeltaAtom returns the per-released-value probability δ_atom such that
// n_released values, each (ε_i, δ_atom)-probabilistically private, compose
// to the global δ: δ_atom = δ^(1/nReleased) (Appendix B.1.1).
func DeltaAtom(delta float64, nReleased int) float64 {
	if delta <= 0 || delta > 1 || nReleased < 1 {
		panic("dp: invalid DeltaAtom parameters")
	}
	return math.Pow(delta, 1/float64(nReleased))
}

// IotaForDelta inverts δ_atom = (1-ι)² (Lemma 2): the per-gossip-run
// failure probability allowed for a target per-value δ_atom.
func IotaForDelta(deltaAtom float64) float64 {
	if deltaAtom <= 0 || deltaAtom > 1 {
		panic("dp: deltaAtom must be in (0,1]")
	}
	return 1 - math.Sqrt(deltaAtom)
}

// Budget distributes a global privacy budget ε over k-means iterations.
// Implementations must never allocate more than ε in total (the paper's
// privacy-budget constraint).
type Budget interface {
	// Epsilon returns the budget assigned to iteration it (1-based).
	// A return of 0 means the iteration must not release anything
	// (run out of budget / past the iteration cap).
	Epsilon(it int) float64
	// MaxIterations returns the hard iteration cap the strategy implies
	// (0 = no cap beyond the caller's own n_it^max).
	MaxIterations() int
	// Name returns the paper's short name (G, GF, UF).
	Name() string
}

// Greedy is the GREEDY (G) strategy: iteration i receives ε/2^i, so the
// total spent is bounded by ε.
type Greedy struct{ Eps float64 }

// Epsilon implements Budget.
func (g Greedy) Epsilon(it int) float64 {
	if it < 1 || it > 62 {
		return 0
	}
	return g.Eps / math.Pow(2, float64(it))
}

// MaxIterations implements Budget.
func (g Greedy) MaxIterations() int { return 0 }

// Name implements Budget.
func (g Greedy) Name() string { return "G" }

// GreedyFloor is the GREEDY_FLOOR (GF) strategy: GREEDY assignments are
// spread over floors of f iterations; iterations 1..f each get ε/(2f),
// iterations f+1..2f each get ε/(4f), and so on.
type GreedyFloor struct {
	Eps   float64
	Floor int // f, floor size (the paper uses 4)
}

// Epsilon implements Budget.
func (g GreedyFloor) Epsilon(it int) float64 {
	if it < 1 || g.Floor < 1 {
		return 0
	}
	floor := (it-1)/g.Floor + 1 // 1-based floor index
	if floor > 62 {
		return 0
	}
	return g.Eps / (math.Pow(2, float64(floor)) * float64(g.Floor))
}

// MaxIterations implements Budget.
func (g GreedyFloor) MaxIterations() int { return 0 }

// Name implements Budget.
func (g GreedyFloor) Name() string { return "GF" }

// UniformFast is the UNIFORM_FAST (UF) strategy: the budget is spread
// uniformly over a strongly limited number of iterations (the paper uses
// 5 and 10), after which releases stop.
type UniformFast struct {
	Eps   float64
	Limit int // hard iteration cap
}

// Epsilon implements Budget.
func (u UniformFast) Epsilon(it int) float64 {
	if it < 1 || it > u.Limit || u.Limit < 1 {
		return 0
	}
	return u.Eps / float64(u.Limit)
}

// MaxIterations implements Budget.
func (u UniformFast) MaxIterations() int { return u.Limit }

// Name implements Budget.
func (u UniformFast) Name() string { return "UF" }

// NewBudget builds a strategy by paper name: "G", "GF" (needs floor) or
// "UF" (needs limit).
func NewBudget(name string, eps float64, param int) (Budget, error) {
	switch name {
	case "G":
		return Greedy{Eps: eps}, nil
	case "GF":
		if param < 1 {
			return nil, errors.New("dp: GF needs a positive floor size")
		}
		return GreedyFloor{Eps: eps, Floor: param}, nil
	case "UF":
		if param < 1 {
			return nil, errors.New("dp: UF needs a positive iteration limit")
		}
		return UniformFast{Eps: eps, Limit: param}, nil
	}
	return nil, fmt.Errorf("dp: unknown budget strategy %q", name)
}

// TotalSpent sums the budget a strategy would spend over maxIt iterations.
func TotalSpent(b Budget, maxIt int) float64 {
	var total float64
	for it := 1; it <= maxIt; it++ {
		total += b.Epsilon(it)
	}
	return total
}

// Accountant tracks cumulative ε spending and enforces the global cap.
// It is used by the perturbed k-means driver so a buggy strategy can
// never silently overrun the budget.
type Accountant struct {
	Cap   float64
	spent float64
}

// Spend consumes eps from the budget; it returns an error if the cap
// would be exceeded (beyond a tiny float tolerance).
func (a *Accountant) Spend(eps float64) error {
	if eps < 0 {
		return errors.New("dp: negative spend")
	}
	if a.spent+eps > a.Cap*(1+1e-9) {
		return fmt.Errorf("dp: budget exceeded: spent %.6g + %.6g > cap %.6g", a.spent, eps, a.Cap)
	}
	a.spent += eps
	return nil
}

// Spent returns the cumulative ε consumed so far.
func (a *Accountant) Spent() float64 { return a.spent }

// Remaining returns the budget left.
func (a *Accountant) Remaining() float64 { return a.Cap - a.spent }

// Mechanism perturbs aggregates with Laplace noise. SumEps and CountEps
// are the per-iteration budget split between the k sum vectors and the k
// counts (disjoint clusters compose in parallel, so one cluster's budget
// covers all k).
type Mechanism struct {
	Sensitivity float64 // Sum sensitivity (Definition 4)
	RNG         *randx.RNG
}

// PerturbSum adds i.i.d. Laplace(sensitivity/eps) noise to every measure
// of sum, in place.
func (m *Mechanism) PerturbSum(sum []float64, eps float64) {
	lambda := LaplaceScale(m.Sensitivity, eps)
	for i := range sum {
		sum[i] += m.RNG.Laplace(lambda)
	}
}

// PerturbCount adds Laplace(1/eps) noise to a cluster cardinality
// (count sensitivity is 1) and returns the perturbed value.
func (m *Mechanism) PerturbCount(count float64, eps float64) float64 {
	return count + m.RNG.Laplace(1/eps)
}

// SplitIteration splits an iteration budget between the sum release and
// the count release. The paper perturbs both parts of each mean; we use
// an even split by default (sumShare = 0.5). Returns (εsum, εcount).
func SplitIteration(epsIter, sumShare float64) (float64, float64) {
	if sumShare <= 0 || sumShare >= 1 {
		sumShare = 0.5
	}
	return epsIter * sumShare, epsIter * (1 - sumShare)
}
