package dp

import (
	"math"
	"testing"
	"testing/quick"

	"chiaroscuro/internal/randx"
)

func TestSumSensitivityPaperValues(t *testing.T) {
	// Section 6.1.1: CER sensitivity 1920, NUMED 1000.
	if got := SumSensitivity(24, 0, 80); got != 1920 {
		t.Errorf("CER sensitivity = %v, want 1920", got)
	}
	if got := SumSensitivity(20, 0, 50); got != 1000 {
		t.Errorf("NUMED sensitivity = %v, want 1000", got)
	}
	if got := SumSensitivity(10, -5, 3); got != 50 {
		t.Errorf("negative-range sensitivity = %v, want 50", got)
	}
}

func TestTheorem3PaperExample(t *testing.T) {
	// Appendix B: δ=0.995, emax=1e-12, s²=1, n_it^max=10, np=1e6, n=24
	// ⇒ δ_atom = 480√0.995 ≈ 1-1e-5 ⇒ ne = 47 exchanges.
	nReleased := 10 * 2 * 24 // n_it^max * 2n (the paper's δ^(1/(nmax*2n)))
	dAtom := DeltaAtom(0.995, nReleased)
	if math.Abs(dAtom-(1-1.044e-5)) > 1e-6 {
		t.Errorf("delta_atom = %v, want ~1-1e-5", dAtom)
	}
	// The worked example plugs ι = 1-δ_atom straight into Theorem 3.
	ne := Theorem3Exchanges(1_000_000, 1, 1e-12, 1-dAtom)
	if ne != 47 {
		t.Errorf("Theorem 3 exchanges = %d, paper says 47", ne)
	}
	// The stricter Lemma 2 relation δ_atom=(1-ι)² costs at most one more.
	neStrict := Theorem3Exchanges(1_000_000, 1, 1e-12, IotaForDelta(dAtom))
	if neStrict < ne || neStrict > ne+1 {
		t.Errorf("strict ne = %d, want %d or %d", neStrict, ne, ne+1)
	}
}

func TestTheorem3Monotonicity(t *testing.T) {
	base := Theorem3Exchanges(1000, 1, 1e-3, 0.01)
	if Theorem3Exchanges(1_000_000, 1, 1e-3, 0.01) <= base {
		t.Error("ne should grow with population")
	}
	if Theorem3Exchanges(1000, 1, 1e-9, 0.01) <= base {
		t.Error("ne should grow as emax shrinks")
	}
	if Theorem3Exchanges(1000, 1, 1e-3, 1e-6) <= base {
		t.Error("ne should grow as iota shrinks")
	}
	// Logarithmic growth: doubling np adds O(1) exchanges.
	d := Theorem3Exchanges(2_000_000, 1, 1e-3, 0.01) - Theorem3Exchanges(1_000_000, 1, 1e-3, 0.01)
	if d > 2 {
		t.Errorf("doubling np added %d exchanges, want <= 2 (log growth)", d)
	}
}

func TestCompensation(t *testing.T) {
	if f := CompensationFactor(0); f != 1 {
		t.Errorf("CompensationFactor(0) = %v, want 1", f)
	}
	if f := CompensationFactor(0.5); f != 2 {
		t.Errorf("CompensationFactor(0.5) = %v, want 2", f)
	}
	// Lemma 2 guarantee: (1+c)(1-emax) >= 1 for c = emax/(1-emax).
	f := func(e10000 uint16) bool {
		emax := float64(e10000%9999) / 10000 // [0, 0.9999)
		c := CompensationFactor(emax) - 1
		return (1+c)*(1-emax) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if s := CompensatedScale(1920, 0.69, 0.001); s <= 1920/0.69 {
		t.Error("compensated scale should exceed the raw scale")
	}
}

func TestGreedyBudget(t *testing.T) {
	g := Greedy{Eps: 0.69}
	if e := g.Epsilon(1); math.Abs(e-0.345) > 1e-12 {
		t.Errorf("G iteration 1 = %v, want 0.345", e)
	}
	if e := g.Epsilon(2); math.Abs(e-0.1725) > 1e-12 {
		t.Errorf("G iteration 2 = %v, want 0.1725", e)
	}
	if g.Epsilon(0) != 0 || g.Epsilon(1000) != 0 {
		t.Error("out-of-range iterations must cost 0")
	}
}

func TestGreedyFloorBudget(t *testing.T) {
	gf := GreedyFloor{Eps: 0.8, Floor: 4}
	// Iterations 1..4 each get ε/8 = 0.1; 5..8 each get ε/16 = 0.05.
	for it := 1; it <= 4; it++ {
		if e := gf.Epsilon(it); math.Abs(e-0.1) > 1e-12 {
			t.Errorf("GF iteration %d = %v, want 0.1", it, e)
		}
	}
	for it := 5; it <= 8; it++ {
		if e := gf.Epsilon(it); math.Abs(e-0.05) > 1e-12 {
			t.Errorf("GF iteration %d = %v, want 0.05", it, e)
		}
	}
}

func TestUniformFastBudget(t *testing.T) {
	uf := UniformFast{Eps: 0.5, Limit: 5}
	for it := 1; it <= 5; it++ {
		if e := uf.Epsilon(it); math.Abs(e-0.1) > 1e-12 {
			t.Errorf("UF iteration %d = %v, want 0.1", it, e)
		}
	}
	if uf.Epsilon(6) != 0 {
		t.Error("UF beyond limit must cost 0")
	}
	if uf.MaxIterations() != 5 {
		t.Error("UF MaxIterations")
	}
}

// TestBudgetNeverExceedsEps is the core privacy invariant of Section 5.1:
// whatever the strategy and horizon, total spend stays within ε.
func TestBudgetNeverExceedsEps(t *testing.T) {
	const eps = 0.69
	strategies := []Budget{
		Greedy{Eps: eps},
		GreedyFloor{Eps: eps, Floor: 4},
		GreedyFloor{Eps: eps, Floor: 1},
		UniformFast{Eps: eps, Limit: 5},
		UniformFast{Eps: eps, Limit: 10},
	}
	for _, s := range strategies {
		for _, horizon := range []int{1, 5, 10, 100, 1000} {
			if total := TotalSpent(s, horizon); total > eps*(1+1e-9) {
				t.Errorf("%s over %d iterations spends %v > ε=%v", s.Name(), horizon, total, eps)
			}
		}
	}
}

func TestNewBudget(t *testing.T) {
	if _, err := NewBudget("G", 1, 0); err != nil {
		t.Error(err)
	}
	if _, err := NewBudget("GF", 1, 4); err != nil {
		t.Error(err)
	}
	if _, err := NewBudget("GF", 1, 0); err == nil {
		t.Error("GF with no floor should fail")
	}
	if _, err := NewBudget("UF", 1, 0); err == nil {
		t.Error("UF with no limit should fail")
	}
	if _, err := NewBudget("bogus", 1, 0); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestAccountant(t *testing.T) {
	a := &Accountant{Cap: 1.0}
	if err := a.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.39); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(0.1); err == nil {
		t.Error("overspend must fail")
	}
	if err := a.Spend(-1); err == nil {
		t.Error("negative spend must fail")
	}
	if math.Abs(a.Spent()-0.99) > 1e-12 {
		t.Errorf("Spent = %v", a.Spent())
	}
	if math.Abs(a.Remaining()-0.01) > 1e-12 {
		t.Errorf("Remaining = %v", a.Remaining())
	}
}

func TestAccountantWithStrategyQuick(t *testing.T) {
	// Any strategy driven through the accountant never errors.
	f := func(name uint8, horizon uint8) bool {
		var b Budget
		switch name % 3 {
		case 0:
			b = Greedy{Eps: 0.69}
		case 1:
			b = GreedyFloor{Eps: 0.69, Floor: 4}
		default:
			b = UniformFast{Eps: 0.69, Limit: 10}
		}
		a := &Accountant{Cap: 0.69}
		for it := 1; it <= int(horizon%64)+1; it++ {
			if eps := b.Epsilon(it); eps > 0 {
				if err := a.Spend(eps); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMechanismPerturbSum(t *testing.T) {
	m := &Mechanism{Sensitivity: 1920, RNG: randx.New(1, 1)}
	const trials = 20000
	var sum2 float64
	for i := 0; i < trials; i++ {
		v := []float64{0}
		m.PerturbSum(v, 0.69)
		sum2 += v[0] * v[0]
	}
	lambda := 1920 / 0.69
	wantVar := 2 * lambda * lambda
	got := sum2 / trials
	if math.Abs(got-wantVar)/wantVar > 0.1 {
		t.Errorf("perturbation variance = %v, want ~%v", got, wantVar)
	}
}

func TestMechanismPerturbCount(t *testing.T) {
	m := &Mechanism{Sensitivity: 1920, RNG: randx.New(2, 2)}
	const trials = 20000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += m.PerturbCount(100, 0.69) - 100
	}
	if mean := sum / trials; math.Abs(mean) > 0.2 {
		t.Errorf("count noise mean = %v, want ~0", mean)
	}
}

func TestSplitIteration(t *testing.T) {
	s, c := SplitIteration(0.1, 0.5)
	if s != 0.05 || c != 0.05 {
		t.Errorf("even split = %v/%v", s, c)
	}
	s, c = SplitIteration(0.1, 0.8)
	if math.Abs(s-0.08) > 1e-12 || math.Abs(c-0.02) > 1e-12 {
		t.Errorf("80/20 split = %v/%v", s, c)
	}
	s, c = SplitIteration(0.1, 0) // invalid share falls back to even
	if s != 0.05 || c != 0.05 {
		t.Errorf("fallback split = %v/%v", s, c)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("LaplaceScale eps<=0", func() { LaplaceScale(1, 0) })
	mustPanic("CompensationFactor emax>=1", func() { CompensationFactor(1) })
	mustPanic("Theorem3 bad iota", func() { Theorem3Exchanges(10, 1, 0.1, 0) })
	mustPanic("DeltaAtom bad delta", func() { DeltaAtom(0, 1) })
	mustPanic("IotaForDelta bad", func() { IotaForDelta(0) })
}
