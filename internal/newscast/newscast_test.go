package newscast

import (
	"sort"
	"testing"
)

// build creates a network of n agents bootstrapped the paper's way:
// each joiner receives a random initial view (Table 2, local view 30).
func build(t *testing.T, n, cacheSize int, seed uint64) *Network {
	t.Helper()
	nw, err := New(cacheSize, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := nw.JoinWithRandomView(i); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// buildChain creates the adversarial single-contact chain bootstrap.
func buildChain(t *testing.T, n, cacheSize int, seed uint64) *Network {
	t.Helper()
	nw, err := New(cacheSize, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := nw.Join(i, i-1); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestJoinErrors(t *testing.T) {
	nw, err := New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(0, 1); err == nil {
		t.Error("cache size 0 must fail")
	}
	if _, err := nw.Join(0, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Join(0, -1); err == nil {
		t.Error("duplicate join must fail")
	}
	if _, err := nw.Join(1, 99); err == nil {
		t.Error("unknown bootstrap must fail")
	}
	if err := nw.Crash(42); err == nil {
		t.Error("crashing unknown agent must fail")
	}
}

func TestCachesStayBoundedAndClean(t *testing.T) {
	nw := build(t, 200, 30, 2)
	for c := 0; c < 30; c++ {
		nw.RunCycle()
	}
	for id := 0; id < 200; id++ {
		cache := nw.Cache(id)
		if len(cache) == 0 || len(cache) > 30 {
			t.Fatalf("agent %d cache size %d", id, len(cache))
		}
		seen := map[int]bool{}
		for _, it := range cache {
			if it.Peer == id {
				t.Fatalf("agent %d caches itself", id)
			}
			if seen[it.Peer] {
				t.Fatalf("agent %d has duplicate item for %d", id, it.Peer)
			}
			seen[it.Peer] = true
		}
	}
}

func TestChainBootstrapBecomesConnectedFast(t *testing.T) {
	// From a degenerate chain topology, Newscast must reach a connected,
	// well-mixed overlay within a logarithmic number of cycles.
	nw := buildChain(t, 500, 30, 3)
	cycles := 0
	for ; cycles < 40 && !nw.Connected(0); cycles++ {
		nw.RunCycle()
	}
	if !nw.Connected(0) {
		t.Fatal("overlay never became connected")
	}
	if cycles > 25 {
		t.Errorf("connectivity took %d cycles for 500 agents", cycles)
	}
}

func TestInDegreesConcentrate(t *testing.T) {
	// Newscast's key load-balance property: in-degrees stay within a
	// small factor of the mean, no hubs, no starvation.
	nw := build(t, 400, 30, 4)
	for c := 0; c < 40; c++ {
		nw.RunCycle()
	}
	deg := nw.InDegrees()
	var ds []int
	for _, d := range deg {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	mean := 30.0 // total items / agents = cache size (all live)
	if len(ds) < 350 {
		t.Fatalf("only %d agents appear in caches", len(ds))
	}
	if max := float64(ds[len(ds)-1]); max > 6*mean {
		t.Errorf("hub detected: max in-degree %v vs mean %v", max, mean)
	}
}

func TestSelfHealingAfterCrashes(t *testing.T) {
	nw := build(t, 300, 30, 5)
	for c := 0; c < 20; c++ {
		nw.RunCycle()
	}
	// A third of the population crashes at once.
	for id := 0; id < 100; id++ {
		if err := nw.Crash(id); err != nil {
			t.Fatal(err)
		}
	}
	if nw.Size() != 200 {
		t.Fatalf("size = %d", nw.Size())
	}
	stale0 := nw.StaleFraction()
	if stale0 == 0 {
		t.Fatal("no stale entries right after a mass crash?")
	}
	for c := 0; c < 25; c++ {
		nw.RunCycle()
	}
	stale := nw.StaleFraction()
	if stale > stale0/4 {
		t.Errorf("stale fraction %v after healing, was %v (no self-healing)", stale, stale0)
	}
	if !nw.Connected(150) {
		t.Error("survivors not connected after healing")
	}
}

func TestLateJoinIntegrates(t *testing.T) {
	nw := build(t, 100, 30, 6)
	for c := 0; c < 15; c++ {
		nw.RunCycle()
	}
	// A newcomer knowing a single peer must become reachable by others.
	if _, err := nw.Join(1000, 37); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 20; c++ {
		nw.RunCycle()
	}
	deg := nw.InDegrees()
	if deg[1000] == 0 {
		t.Error("late joiner never advertised into any cache")
	}
	if !nw.Connected(1000) {
		t.Error("overlay not connected from the late joiner")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Item {
		nw := build(t, 50, 30, 7)
		for c := 0; c < 10; c++ {
			nw.RunCycle()
		}
		return nw.Cache(25)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("same-seed runs diverged in cache size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at item %d", i)
		}
	}
}

// TestUndersizedCacheFragments documents a known failure regime of
// keep-freshest peer sampling (cf. the gossip peer-sampling literature):
// with caches far below the paper's 30 and an adversarial chain
// bootstrap, the overlay can splinter into closed cliques of roughly
// cache size — because a merge leaves both parties with identical views,
// a group whose caches contain only group members can never escape.
// This is exactly why Table 2 sets the local view size to 30.
func TestUndersizedCacheFragments(t *testing.T) {
	nw := buildChain(t, 200, 4, 8)
	for c := 0; c < 40; c++ {
		nw.RunCycle()
	}
	if nw.Connected(0) {
		t.Skip("tiny-cache overlay happened to stay connected (rare but possible)")
	}
	// Fragmented, as the literature predicts for undersized caches.
}
