// Package newscast implements the Newscast membership protocol
// (Jelasity, Kowalczyk, van Steen), the connectivity layer the paper's
// Chiaroscuro instance runs on (Appendix B: "The current version of
// Chiaroscuro relies on Newscast for managing the connectivity between
// participants").
//
// Every agent keeps a bounded cache of news items (peer address,
// heartbeat timestamp). On each exchange, the initiator picks the peer
// of a random cache item, both sides insert a fresh item about
// themselves, merge the two caches, and keep the freshest CacheSize
// items with distinct addresses. The emergent communication graph has
// low diameter, high clustering resilience, and approximately uniform
// sampling properties — the assumptions behind the gossip convergence
// results of Theorem 3.
//
// This package is the faithful protocol (caches with heartbeats, proper
// merge semantics, self-healing under crashes); internal/sim carries a
// leaner adapter tuned for million-node latency simulations.
package newscast

import (
	"errors"
	"fmt"
	"sort"

	"chiaroscuro/internal/randx"
)

// Item is one news entry: who, and how fresh.
type Item struct {
	Peer      int
	Heartbeat int64 // logical clock of the peer's last self-insertion
}

// Agent is one Newscast participant.
type Agent struct {
	ID    int
	cache []Item
}

// Network is a set of Newscast agents driven by a logical clock.
type Network struct {
	CacheSize int

	agents map[int]*Agent
	ids    []int
	clock  int64
	rng    *randx.RNG
}

// New creates a Newscast network with the given cache size (the paper
// uses 30) and seed.
func New(cacheSize int, seed uint64) (*Network, error) {
	if cacheSize < 1 {
		return nil, errors.New("newscast: cache size must be positive")
	}
	return &Network{
		CacheSize: cacheSize,
		agents:    make(map[int]*Agent),
		rng:       randx.New(seed, 0x9EB5),
	}, nil
}

// Join adds an agent. bootstrap is the address of any existing agent (or
// -1 for the first one): joining requires knowing a single live peer.
// Use JoinWithRandomView for the paper's bootstrap model (an initial
// local view Λ of random participants handed out with the parameters).
func (n *Network) Join(id, bootstrap int) (*Agent, error) {
	if bootstrap < 0 {
		return n.JoinWithView(id, nil)
	}
	if _, ok := n.agents[bootstrap]; !ok {
		return nil, fmt.Errorf("newscast: bootstrap peer %d unknown", bootstrap)
	}
	return n.JoinWithView(id, []int{bootstrap})
}

// JoinWithView adds an agent whose initial cache holds the given peers
// (all must exist). This is the paper's bootstrap: the initial local
// view Λ comes from the bootstrap server along with the parameters.
func (n *Network) JoinWithView(id int, peers []int) (*Agent, error) {
	if _, dup := n.agents[id]; dup {
		return nil, fmt.Errorf("newscast: duplicate agent %d", id)
	}
	a := &Agent{ID: id}
	for _, p := range peers {
		if _, ok := n.agents[p]; !ok {
			return nil, fmt.Errorf("newscast: bootstrap peer %d unknown", p)
		}
		if p != id {
			a.cache = append(a.cache, Item{Peer: p, Heartbeat: n.clock})
		}
	}
	if len(a.cache) > n.CacheSize {
		a.cache = a.cache[:n.CacheSize]
	}
	n.agents[id] = a
	n.ids = append(n.ids, id)
	return a, nil
}

// JoinWithRandomView adds an agent bootstrapped with up to CacheSize
// random existing participants — the Table 2 setting (local view of 30
// random addresses).
func (n *Network) JoinWithRandomView(id int) (*Agent, error) {
	want := n.CacheSize
	if want > len(n.ids) {
		want = len(n.ids)
	}
	peers := make([]int, 0, want)
	seen := make(map[int]bool, want)
	for len(peers) < want {
		p := n.ids[n.rng.IntN(len(n.ids))]
		if !seen[p] {
			seen[p] = true
			peers = append(peers, p)
		}
	}
	return n.JoinWithView(id, peers)
}

// Crash removes an agent without notice. Its stale items remain in other
// caches until fresher news crowds them out — the self-healing property
// the tests verify.
func (n *Network) Crash(id int) error {
	if _, ok := n.agents[id]; !ok {
		return fmt.Errorf("newscast: unknown agent %d", id)
	}
	delete(n.agents, id)
	for i, v := range n.ids {
		if v == id {
			n.ids[i] = n.ids[len(n.ids)-1]
			n.ids = n.ids[:len(n.ids)-1]
			break
		}
	}
	return nil
}

// Size returns the number of live agents.
func (n *Network) Size() int { return len(n.agents) }

// Cache returns a copy of an agent's cache.
func (n *Network) Cache(id int) []Item {
	a, ok := n.agents[id]
	if !ok {
		return nil
	}
	return append([]Item(nil), a.cache...)
}

// RunCycle lets every live agent (in random order) initiate one exchange
// with a random cache peer. Exchanges with crashed peers fail silently
// (their items simply age out). It returns the number of successful
// exchanges.
//
// The heartbeat clock ticks once per cycle: coarse timestamps are
// essential to Newscast's mixing — with a per-exchange clock, freshness
// becomes a total order and the freshest-c selection collapses caches
// onto the most recent local partners, fragmenting the overlay into
// cliques.
func (n *Network) RunCycle() int {
	n.clock++
	ok := 0
	for _, idx := range n.rng.Perm(len(n.ids)) {
		id := n.ids[idx]
		a, alive := n.agents[id]
		if !alive {
			continue
		}
		peer := n.pickPeer(a)
		if peer == nil {
			continue
		}
		n.exchange(a, peer)
		ok++
	}
	return ok
}

// pickPeer selects the agent behind a random cache item, skipping
// crashed entries.
func (n *Network) pickPeer(a *Agent) *Agent {
	if len(a.cache) == 0 {
		return nil
	}
	for tries := 0; tries < 8; tries++ {
		it := a.cache[n.rng.IntN(len(a.cache))]
		if p, alive := n.agents[it.Peer]; alive && p.ID != a.ID {
			return p
		}
	}
	return nil
}

// exchange is the Newscast merge: both agents add a fresh self item,
// union their caches, deduplicate by peer keeping the freshest item, and
// truncate to the CacheSize freshest entries (random tie-break among
// equal heartbeats, so same-cycle items survive uniformly).
func (n *Network) exchange(a, b *Agent) {
	merged := make(map[int]int64, len(a.cache)+len(b.cache)+2)
	add := func(it Item) {
		if hb, ok := merged[it.Peer]; !ok || it.Heartbeat > hb {
			merged[it.Peer] = it.Heartbeat
		}
	}
	for _, it := range a.cache {
		add(it)
	}
	for _, it := range b.cache {
		add(it)
	}
	add(Item{Peer: a.ID, Heartbeat: n.clock})
	add(Item{Peer: b.ID, Heartbeat: n.clock})
	a.cache = n.rebuild(merged, a.ID)
	b.cache = n.rebuild(merged, b.ID)
}

// rebuild extracts the freshest entries, excluding self. Ties in
// heartbeat are broken uniformly at random (seeded), not by identifier:
// a deterministic tie-break would systematically evict the same peers
// and re-introduce the clique collapse.
func (n *Network) rebuild(merged map[int]int64, self int) []Item {
	items := make([]Item, 0, len(merged))
	//lint:orderfree collection is canonically re-sorted by Peer two lines down before any decision
	for peer, hb := range merged {
		if peer == self {
			continue
		}
		items = append(items, Item{Peer: peer, Heartbeat: hb})
	}
	// Canonical order first (map iteration is random), then a seeded
	// shuffle as the tie-break, then a stable sort by freshness.
	sort.Slice(items, func(i, j int) bool { return items[i].Peer < items[j].Peer })
	for i := len(items) - 1; i > 0; i-- {
		j := n.rng.IntN(i + 1)
		items[i], items[j] = items[j], items[i]
	}
	sort.SliceStable(items, func(i, j int) bool {
		return items[i].Heartbeat > items[j].Heartbeat
	})
	if len(items) > n.CacheSize {
		items = items[:n.CacheSize]
	}
	return items
}

// InDegrees returns how many caches each live agent appears in — the
// load-balance indicator (Newscast keeps in-degrees concentrated, which
// is what makes cache sampling approximately uniform).
func (n *Network) InDegrees() map[int]int {
	deg := make(map[int]int, len(n.agents))
	//lint:orderfree commutative integer increments into a map; no order-dependent state
	for _, a := range n.agents {
		for _, it := range a.cache {
			if _, alive := n.agents[it.Peer]; alive {
				deg[it.Peer]++
			}
		}
	}
	return deg
}

// StaleFraction returns the fraction of cache entries across live agents
// that point to crashed peers.
func (n *Network) StaleFraction() float64 {
	total, stale := 0, 0
	//lint:orderfree commutative counting; result is a ratio of totals
	for _, a := range n.agents {
		for _, it := range a.cache {
			total++
			if _, alive := n.agents[it.Peer]; !alive {
				stale++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stale) / float64(total)
}

// Connected reports whether the overlay graph (cache edges taken as
// undirected, the standard Newscast connectivity notion) reaches every
// live agent from the given start — the partition check. Exchanges
// themselves are bidirectional, so undirected edges are the operative
// communication relation.
func (n *Network) Connected(start int) bool {
	if _, ok := n.agents[start]; !ok {
		return false
	}
	adj := make(map[int][]int, len(n.agents))
	//lint:orderfree adjacency order varies but reachability (the returned bool) does not
	for id, a := range n.agents {
		for _, it := range a.cache {
			if _, alive := n.agents[it.Peer]; alive {
				adj[id] = append(adj[id], it.Peer)
				adj[it.Peer] = append(adj[it.Peer], id)
			}
		}
	}
	seen := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, p := range adj[id] {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return len(seen) == len(n.agents)
}
