// Package journal is the crash-recovery write-ahead state store behind
// `chiaroscurod -state-dir`: a small append-only record log a peer
// fsyncs at every protocol commit point, so a process killed −9 can be
// relaunched bit-identical to one that never crashed (the node runtime
// decides what to record; this package only owns durability and
// framing).
//
// On-disk format. The file is a sequence of records:
//
//	uint32 BE  body length (kind byte + payload)
//	uint32 BE  CRC-32 (IEEE) of the body
//	byte       record kind (owned by the caller)
//	payload    kind-specific encoding (owned by the caller)
//
// Decode discipline. A record whose trailing bytes are missing — and
// only the final record may be in that state — is a torn tail: the
// process died mid-append before the fsync, so the record was never
// committed and Open silently truncates the file back to its clean
// prefix. Anything else that fails to decode (a CRC mismatch, an
// impossible length, a torn record with committed records after it) is
// corruption and surfaces as ErrCorrupt: replaying a damaged journal
// would rejoin the population with undefined protocol state, which the
// caller must refuse loudly rather than risk. Decoding never allocates
// beyond what the file's own bytes justify (every record length is
// checked against both MaxRecord and the remaining file size before
// the body is read), so a hostile journal cannot panic or balloon the
// process.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// ErrCorrupt marks a journal whose committed prefix fails to decode:
// a CRC mismatch, an impossible record length, or a truncation before
// the final record. Match with errors.Is; the public API re-exports it
// as chiaroscuro.ErrJournalCorrupt.
var ErrCorrupt = errors.New("journal: corrupt record")

// MaxRecord bounds a single record body. No peer checkpoint approaches
// it (the largest is a full decryption state); a length field above it
// is corruption, not a big record.
const MaxRecord = 1 << 28

// recordHdrLen is the fixed per-record framing overhead.
const recordHdrLen = 8

// Record is one committed journal entry.
type Record struct {
	Kind    byte
	Payload []byte
}

// Journal is an append-only record log. Append buffers in the OS;
// Sync makes everything appended so far durable. Safe for concurrent
// use (the node's exchange loop appends while /healthz reads Lag).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	pendingEntries int   // records appended since the last Sync
	pendingBytes   int64 // bytes appended since the last Sync
}

// Open opens (or creates) the journal at path and replays its
// committed records. A torn final record — the mark of a crash
// mid-append — is truncated away; any earlier decode failure returns
// ErrCorrupt and no Journal.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, nil, err
	}
	recs, clean, err := replay(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	// Drop the torn tail so the next append starts at the clean prefix.
	if err := f.Truncate(clean); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, path: path}, recs, nil
}

// replay decodes every committed record, returning them plus the byte
// offset of the clean prefix (everything before it decoded; everything
// after is a torn tail to truncate).
func replay(f *os.File) ([]Record, int64, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := info.Size()
	var recs []Record
	var off int64
	var hdr [recordHdrLen]byte
	for off < size {
		if size-off < recordHdrLen {
			// A header the file cannot hold: torn mid-append. Only legal at
			// the very tail, which this is by construction of the loop.
			return recs, off, nil
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return nil, 0, err
		}
		n := int64(binary.BigEndian.Uint32(hdr[0:4]))
		if n < 1 || n > MaxRecord {
			return nil, 0, fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, n, off)
		}
		if size-off-recordHdrLen < n {
			// Body shorter than its committed length: torn tail.
			return recs, off, nil
		}
		body := make([]byte, n)
		if _, err := f.ReadAt(body, off+recordHdrLen); err != nil {
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(hdr[4:8]) {
			return nil, 0, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		recs = append(recs, Record{Kind: body[0], Payload: body[1:]})
		off += recordHdrLen + n
	}
	return recs, off, nil
}

// Decode replays the records of an in-memory journal image, with the
// same torn-tail tolerance as Open (the tail is simply ignored). It is
// the pure-function face of the decoder, for tests and fuzzing.
func Decode(data []byte) ([]Record, error) {
	var recs []Record
	off := 0
	for off < len(data) {
		if len(data)-off < recordHdrLen {
			return recs, nil // torn tail
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n < 1 || n > MaxRecord {
			return nil, fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, n, off)
		}
		if len(data)-off-recordHdrLen < n {
			return recs, nil // torn tail
		}
		body := data[off+recordHdrLen : off+recordHdrLen+n]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			return nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		recs = append(recs, Record{Kind: body[0], Payload: append([]byte(nil), body[1:]...)})
		off += recordHdrLen + n
	}
	return recs, nil
}

// Append writes one record. The bytes reach the OS immediately but are
// durable only after Sync: the caller orders Append+Sync before
// whatever wire message announces the commit.
func (j *Journal) Append(kind byte, payload []byte) error {
	if len(payload)+1 > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord", len(payload)+1)
	}
	buf := make([]byte, recordHdrLen+1+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(1+len(payload)))
	buf[recordHdrLen] = kind
	copy(buf[recordHdrLen+1:], payload)
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(buf[recordHdrLen:]))
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.pendingEntries++
	j.pendingBytes += int64(len(buf))
	return nil
}

// Sync fsyncs every record appended so far — the commit point of the
// write-ahead discipline.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pendingEntries = 0
	j.pendingBytes = 0
	return nil
}

// Lag reports how much has been appended since the last Sync — the
// journal-lag numbers /healthz exposes (0, 0 means everything written
// is durable).
func (j *Journal) Lag() (entries int, bytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pendingEntries, j.pendingBytes
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the file. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
