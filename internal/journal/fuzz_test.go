package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// frame builds one well-formed record image.
func frame(kind byte, payload []byte) []byte {
	body := append([]byte{kind}, payload...)
	buf := make([]byte, recordHdrLen+len(body))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body))
	copy(buf[recordHdrLen:], body)
	return buf
}

// FuzzDecode is the journal torture harness: whatever bytes land in a
// journal file — truncations, bit flips, garbage — Decode must either
// return records or ErrCorrupt, never panic, and never mistake damage
// for data (round-tripped prefixes must survive their own truncation
// rules).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(1, []byte("identity")))
	two := append(frame(1, []byte("identity")), frame(3, bytes.Repeat([]byte{0xAB}, 200))...)
	f.Add(two)
	f.Add(two[:len(two)-3])              // torn tail
	f.Add(append(two, 0x00, 0x01, 0x02)) // garbage tail
	huge := make([]byte, recordHdrLen)
	binary.BigEndian.PutUint32(huge, MaxRecord+7)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		// Whatever decoded must re-encode to a prefix of the input: Decode
		// must not invent records.
		var enc []byte
		for _, r := range recs {
			enc = append(enc, frame(r.Kind, r.Payload)...)
		}
		if !bytes.HasPrefix(data, enc) {
			t.Fatalf("decoded records re-encode to a non-prefix (%d records, %d bytes)", len(recs), len(enc))
		}
	})
}

// FuzzDecodeMutated starts from a healthy two-record journal and lets
// the fuzzer flip its bytes: every mutation must decode cleanly (the
// flip landed in a torn-tail position), or return ErrCorrupt — crashes
// and silent misreads both fail.
func FuzzDecodeMutated(f *testing.F) {
	base := append(frame(1, []byte("identity-record")), frame(3, bytes.Repeat([]byte{0x5C}, 333))...)
	f.Add(uint16(0), byte(1))
	f.Add(uint16(9), byte(0x80))
	f.Add(uint16(uint16(len(base))-1), byte(0xFF))
	f.Fuzz(func(t *testing.T, pos uint16, mask byte) {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] ^= mask
		if _, err := Decode(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mutated decode error is not ErrCorrupt: %v", err)
		}
	})
}
