package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j, recs
}

func TestRoundTripAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, recs := mustOpen(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: 1, Payload: []byte("identity")},
		{Kind: 2, Payload: nil},
		{Kind: 3, Payload: make([]byte, 4096)},
	}
	for _, r := range want {
		if err := j.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs = mustOpen(t, path)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Kind != want[i].Kind || len(r.Payload) != len(want[i].Payload) {
			t.Fatalf("record %d: kind %d len %d, want kind %d len %d",
				i, r.Kind, len(r.Payload), want[i].Kind, len(want[i].Payload))
		}
	}
}

func TestTornTailIsTruncatedNotCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, _ := mustOpen(t, path)
	if err := j.Append(1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("torn away")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file anywhere strictly inside the second record: header
	// fragments and body fragments are both legal torn tails.
	firstEnd := recordHdrLen + 1 + len("committed")
	for cut := firstEnd + 1; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: torn tail surfaced as error: %v", cut, err)
		}
		if len(recs) != 1 || string(recs[0].Payload) != "committed" {
			t.Fatalf("cut %d: replayed %d records", cut, len(recs))
		}
		// The torn bytes are gone: a fresh append lands on the clean prefix.
		if err := j2.Append(3, []byte("after")); err != nil {
			t.Fatal(err)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs2, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != 2 || recs2[1].Kind != 3 {
			t.Fatalf("cut %d: post-truncate append not replayed", cut)
		}
	}
}

func TestBitFlipIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, _ := mustOpen(t, path)
	if err := j.Append(1, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the FIRST record's body: committed data damaged.
	for _, bit := range []int{0, 3, 7} {
		mut := append([]byte(nil), data...)
		mut[recordHdrLen+1] ^= 1 << bit
		if err := os.WriteFile(path, mut, 0o600); err != nil {
			t.Fatal(err)
		}
		_, _, err := Open(path)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit %d: corrupted journal opened with err = %v, want ErrCorrupt", bit, err)
		}
	}
}

func TestImpossibleLengthIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	hdr := make([]byte, recordHdrLen+64)
	binary.BigEndian.PutUint32(hdr, MaxRecord+1)
	if err := os.WriteFile(path, hdr, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize length opened with err = %v, want ErrCorrupt", err)
	}
	binary.BigEndian.PutUint32(hdr, 0)
	if err := os.WriteFile(path, hdr, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero length opened with err = %v, want ErrCorrupt", err)
	}
}

func TestLagTracksUnsyncedAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, _ := mustOpen(t, path)
	if e, b := j.Lag(); e != 0 || b != 0 {
		t.Fatalf("fresh lag = %d entries %d bytes", e, b)
	}
	if err := j.Append(1, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	e, b := j.Lag()
	if e != 1 || b != int64(recordHdrLen+3) {
		t.Fatalf("lag after append = %d entries %d bytes", e, b)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if e, b := j.Lag(); e != 0 || b != 0 {
		t.Fatalf("lag after sync = %d entries %d bytes", e, b)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peer.journal")
	j, _ := mustOpen(t, path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Sync(); err == nil {
		t.Fatal("sync after close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
