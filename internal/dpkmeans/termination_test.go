package dpkmeans

import (
	"chiaroscuro/internal/timeseries"
	"math"
	"testing"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/randx"
)

// TestQualityDropTermination exercises the footnote-9 smarter criterion:
// with a GREEDY budget whose late iterations drown in noise, the
// quality-monitored run must stop earlier than the fixed-cap run, and it
// must never stop later.
func TestQualityDropTermination(t *testing.T) {
	rng := randx.New(60, 60)
	data, _ := datasets.GenerateCER(20000, rng)
	seeds := datasets.SeedCentroids("cer", 10, rng)
	base := Config{
		InitCentroids: seeds,
		Budget:        dp.Greedy{Eps: math.Ln2},
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		Smooth:        true,
		MaxIterations: 10,
		RNG:           randx.New(61, 61),
	}
	capped, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	smart := base
	smart.RNG = randx.New(61, 61) // same noise stream
	smart.StopOnQualityDrop = true
	smart.QualityPatience = 2
	monitored, err := Run(data, smart)
	if err != nil {
		t.Fatal(err)
	}
	if len(monitored.Stats) > len(capped.Stats) {
		t.Errorf("monitored run took %d iterations, cap-only %d", len(monitored.Stats), len(capped.Stats))
	}
	if len(monitored.Stats) == 0 {
		t.Fatal("monitored run recorded nothing")
	}
	// The monitor must have actually recorded inter-cluster inertia.
	for _, s := range monitored.Stats {
		if s.EpsilonSpent > 0 && s.InterInertia <= 0 && s.CentroidsOut > 0 {
			t.Errorf("iteration %d: no inter-inertia recorded", s.Iteration)
		}
	}
	// Budget still respected.
	if monitored.TotalEpsilon > math.Ln2*(1+1e-9) {
		t.Errorf("monitored run spent ε=%v", monitored.TotalEpsilon)
	}
}

// TestQualityMonitorUnperturbedNoStop: with no budget the criterion is
// inert (nothing is noisy; the monitor only guards perturbed runs).
func TestQualityMonitorUnperturbedNoStop(t *testing.T) {
	rng := randx.New(62, 62)
	data, _ := datasets.GenerateCER(5000, rng)
	seeds := datasets.SeedCentroids("cer", 6, rng)
	res, err := Run(data, Config{
		InitCentroids: seeds,
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		MaxIterations:     6,
		StopOnQualityDrop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 6 {
		t.Errorf("unperturbed monitored run stopped at %d iterations", len(res.Stats))
	}
}

func TestInterInertiaHelper(t *testing.T) {
	g := timeseries.Series{0, 0}
	means := []timeseries.Series{{3, 4}, nil, {0, 0}}
	counts := []float64{10, 0, 30}
	// q = (10/40)·25 + (30/40)·0 = 6.25
	if got := interInertia(means, counts, g); math.Abs(got-6.25) > 1e-12 {
		t.Errorf("interInertia = %v, want 6.25", got)
	}
	if got := interInertia(means, []float64{0, 0, 0}, g); got != 0 {
		t.Errorf("zero-count interInertia = %v, want 0", got)
	}
}
