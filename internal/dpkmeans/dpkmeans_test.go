package dpkmeans

import (
	"math"
	"testing"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

func cerSample(t testing.TB, n int) (*timeseries.Dataset, []timeseries.Series) {
	t.Helper()
	rng := randx.New(10, 10)
	d, _ := datasets.GenerateCER(n, rng)
	seeds := datasets.SeedCentroids("cer", 20, rng)
	return d, seeds
}

func TestUnperturbedMatchesKMeans(t *testing.T) {
	d, seeds := cerSample(t, 3000)
	res, err := Run(d, Config{
		InitCentroids: seeds,
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		MaxIterations: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := kmeans.Run(d, kmeans.Config{
		InitCentroids: seeds,
		Threshold:     0,
		MaxIterations: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) == 0 {
		t.Fatal("no iterations recorded")
	}
	// Sandwich property of Lloyd's algorithm: for the same (unperturbed)
	// trajectory, the PRE inertia of iteration i (fixed partition, fresh
	// means) lies between plain k-means' inertia at iteration i (same
	// partition, old centroids — means can only improve it) and at
	// iteration i+1 (same means, re-assigned partition — re-assignment
	// can only improve it).
	for i := 0; i < len(res.Stats); i++ {
		got := res.Stats[i].PreInertia
		upper := ref.Stats[i].IntraInertia
		if got > upper+1e-9 {
			t.Errorf("iteration %d: PRE inertia %v above same-partition bound %v", i+1, got, upper)
		}
		if i+1 < len(ref.Stats) {
			lower := ref.Stats[i+1].IntraInertia
			if got < lower-1e-9 {
				t.Errorf("iteration %d: PRE inertia %v below re-assigned bound %v", i+1, got, lower)
			}
		}
	}
	if res.TotalEpsilon != 0 {
		t.Errorf("no-budget run spent ε=%v", res.TotalEpsilon)
	}
}

func TestPerturbedQualityOrdering(t *testing.T) {
	// The central quality claim (Figure 2a): the perturbed clustering
	// still learns real structure — its best inertia sits well below the
	// dataset's full inertia — while never beating the unperturbed run.
	// DP noise magnitude is independent of the dataset size, so this
	// needs enough series for the signal to dominate (the paper used 3M;
	// 50K with k=10 gives the same signal-to-noise regime).
	rng := randx.New(10, 10)
	d, _ := datasets.GenerateCER(50000, rng)
	seeds := datasets.SeedCentroids("cer", 10, rng)
	full := d.FullInertia()

	clean, err := Run(d, Config{
		InitCentroids: seeds,
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		MaxIterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(d, Config{
		InitCentroids: seeds,
		Budget:        dp.Greedy{Eps: math.Ln2},
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		Smooth:        true,
		MaxIterations: 10,
		RNG:           randx.New(11, 11),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, bestClean := clean.BestIteration()
	_, bestG := g.BestIteration()
	if bestG.PreInertia < bestClean.PreInertia*0.99 {
		t.Errorf("perturbed (%v) beat unperturbed (%v)?", bestG.PreInertia, bestClean.PreInertia)
	}
	if bestG.PreInertia > full {
		t.Errorf("perturbed inertia %v above dataset inertia %v", bestG.PreInertia, full)
	}
	// The paper's shape: the private clustering captures real structure
	// (well below the no-clustering upper bound).
	if bestG.PreInertia > 0.85*full {
		t.Errorf("perturbed inertia %v too close to dataset inertia %v (no structure learned)",
			bestG.PreInertia, full)
	}
}

func TestBudgetIsRespected(t *testing.T) {
	d, seeds := cerSample(t, 2000)
	for _, b := range []dp.Budget{
		dp.Greedy{Eps: math.Ln2},
		dp.GreedyFloor{Eps: math.Ln2, Floor: 4},
		dp.UniformFast{Eps: math.Ln2, Limit: 5},
	} {
		res, err := Run(d, Config{
			InitCentroids: seeds,
			Budget:        b,
			DMin:          datasets.CERMin, DMax: datasets.CERMax,
			MaxIterations: 10,
			RNG:           randx.New(12, 12),
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if res.TotalEpsilon > math.Ln2*(1+1e-9) {
			t.Errorf("%s spent ε=%v > ln2", b.Name(), res.TotalEpsilon)
		}
	}
}

func TestUFStopsAtLimit(t *testing.T) {
	d, seeds := cerSample(t, 1000)
	res, err := Run(d, Config{
		InitCentroids: seeds,
		Budget:        dp.UniformFast{Eps: math.Ln2, Limit: 5},
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		MaxIterations: 10,
		RNG:           randx.New(13, 13),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) > 5 {
		t.Errorf("UF(5) ran %d iterations", len(res.Stats))
	}
}

func TestCentroidAttritionUnderNoise(t *testing.T) {
	// With a tiny budget the noise must overwhelm most centroids (the
	// effect behind Figure 2(c)): fewer centroids survive than with a
	// comfortable budget.
	d, seeds := cerSample(t, 4000)
	run := func(eps float64) int {
		res, err := Run(d, Config{
			InitCentroids: seeds,
			Budget:        dp.Greedy{Eps: eps},
			DMin:          datasets.CERMin, DMax: datasets.CERMax,
			Smooth:        true,
			MaxIterations: 8,
			RNG:           randx.New(14, 14),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Stats) == 0 {
			return 0
		}
		return res.Stats[len(res.Stats)-1].CentroidsOut
	}
	generous := run(50)   // effectively no noise
	starved := run(0.001) // crushing noise
	if starved >= generous {
		t.Errorf("starved budget kept %d centroids, generous kept %d", starved, generous)
	}
}

func TestSmoothingHelpsOnCER(t *testing.T) {
	// Figure 2(a): SMA smoothing lowers (or at least does not degrade)
	// the best pre-perturbation inertia on the concentrated CER data.
	// Averaged over seeds to keep the test robust.
	rng := randx.New(10, 10)
	d, _ := datasets.GenerateCER(30000, rng)
	seeds := datasets.SeedCentroids("cer", 10, rng)
	var withSMA, withoutSMA float64
	const reps = 3
	for r := 0; r < reps; r++ {
		for _, smooth := range []bool{true, false} {
			res, err := Run(d, Config{
				InitCentroids: seeds,
				Budget:        dp.Greedy{Eps: math.Ln2},
				DMin:          datasets.CERMin, DMax: datasets.CERMax,
				Smooth:        smooth,
				MaxIterations: 8,
				RNG:           randx.New(20+uint64(r), 20),
			})
			if err != nil {
				t.Fatal(err)
			}
			_, best := res.BestIteration()
			if smooth {
				withSMA += best.PreInertia
			} else {
				withoutSMA += best.PreInertia
			}
		}
	}
	if withSMA > withoutSMA*1.15 {
		t.Errorf("smoothing hurt: SMA %v vs raw %v", withSMA/reps, withoutSMA/reps)
	}
}

func TestChurnRun(t *testing.T) {
	d, seeds := cerSample(t, 4000)
	res, err := Run(d, Config{
		InitCentroids: seeds,
		Budget:        dp.Greedy{Eps: math.Ln2},
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		Smooth:        true,
		MaxIterations: 6,
		Churn:         0.25,
		RNG:           randx.New(15, 15),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stats {
		frac := float64(s.ActiveSeries) / float64(d.Len())
		if frac < 0.65 || frac > 0.85 {
			t.Errorf("iteration %d: active fraction %v, want ~0.75", s.Iteration, frac)
		}
	}
}

func TestPostInertiaAtLeastPre(t *testing.T) {
	// POST uses the same partition with worse (perturbed) representatives,
	// so POST >= PRE always (the mean minimizes the squared distance).
	d, seeds := cerSample(t, 3000)
	res, err := Run(d, Config{
		InitCentroids: seeds,
		Budget:        dp.Greedy{Eps: math.Ln2},
		DMin:          datasets.CERMin, DMax: datasets.CERMax,
		Smooth:        true,
		MaxIterations: 8,
		RNG:           randx.New(16, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stats {
		if s.CentroidsOut == s.CentroidsIn && s.PostInertia < s.PreInertia-1e-9 {
			t.Errorf("iteration %d: POST %v < PRE %v with no centroid loss",
				s.Iteration, s.PostInertia, s.PreInertia)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	d, seeds := cerSample(t, 100)
	if _, err := Run(timeseries.NewDataset(24), Config{InitCentroids: seeds}); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := Run(d, Config{}); err == nil {
		t.Error("no centroids should error")
	}
	if _, err := Run(d, Config{InitCentroids: seeds, Budget: dp.Greedy{Eps: 1}}); err == nil {
		t.Error("budget without RNG should error")
	}
	if _, err := Run(d, Config{InitCentroids: seeds, Churn: 0.5}); err == nil {
		t.Error("churn without RNG should error")
	}
}

func TestBestIterationEmpty(t *testing.T) {
	r := &Result{}
	if it, _ := r.BestIteration(); it != 0 {
		t.Errorf("BestIteration on empty result = %d", it)
	}
}
