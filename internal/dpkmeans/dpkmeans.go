// Package dpkmeans implements the perturbed k-means the paper uses for
// its quality evaluation (Section 6.1, item 2): a centralized k-means
// whose per-iteration cluster sums and counts are released through the
// Laplace mechanism under a budget-concentration strategy (Section 5.1),
// optionally smoothed by the circular moving average of Section 5.2, with
// aberrant ("lost") means removed as footnote 8 describes.
//
// This is numerically the same computation the distributed protocol in
// internal/core performs — there the sums travel encrypted and the noise
// is assembled from gossip noise-shares; here both are local, which lets
// the quality experiments run at the paper's scale (millions of series).
package dpkmeans

import (
	"context"
	"errors"
	"math"

	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// Config parametrizes a perturbed k-means run.
type Config struct {
	InitCentroids []timeseries.Series // C_init (data-independent seeds)
	Budget        dp.Budget           // ε concentration strategy; nil = no perturbation
	SumShare      float64             // fraction of each iteration's ε spent on sums (default 0.5)
	DMin, DMax    float64             // per-measure range (defines Sum sensitivity)
	Smooth        bool                // apply SMA smoothing to perturbed means (Section 5.2)
	SMAFraction   float64             // window as a fraction of the series length (paper: 0.2)
	MaxIterations int                 // n_it^max (paper: 10, or 5 for UF(5))
	Threshold     float64             // θ convergence threshold (0 = run all iterations)
	CountFloor    float64             // perturbed counts below this make the mean aberrant (default 1)
	RangeSlack    float64             // aberrant if a measure leaves [DMin-slack*R, DMax+slack*R] (default 1)
	Churn         float64             // per-iteration probability that a series is disconnected
	RNG           *randx.RNG          // required when Budget != nil or Churn > 0
	KeepHistory   bool                // retain the released centroids of every iteration

	// StopOnQualityDrop enables the smarter termination criterion of the
	// paper's footnote 9: participants monitor the inter-cluster inertia
	// (computable from the released perturbed means and counts plus the
	// once-and-for-all released global center of mass) and stop when it
	// drops for QualityPatience consecutive iterations — the moment the
	// noise becomes intractable.
	StopOnQualityDrop bool
	QualityPatience   int // consecutive drops tolerated (default 1)

	// OnIteration, when set, observes each iteration as it completes:
	// its stats and the (compacted) released centroids — the perturbed
	// means under a Budget, the exact means without one. It runs on the
	// clustering goroutine and must not mutate the centroids.
	OnIteration func(stats IterationStats, released []timeseries.Series)
}

// IterationStats is the per-iteration quality trace, matching what
// Figures 2(a)–2(d) and 3(a) plot.
type IterationStats struct {
	Iteration    int     // 1-based
	PreInertia   float64 // intra-cluster inertia of the *unperturbed* means on this iteration's partition
	PostInertia  float64 // same partition, perturbed (and smoothed) means, aberrant removed
	InterInertia float64 // inter-cluster inertia of the released means (the footnote-9 quality monitor)
	CentroidsIn  int     // live centroids used for the assignment
	CentroidsOut int     // centroids surviving perturbation + aberrant filter
	EpsilonSpent float64 // privacy budget consumed by this iteration
	ActiveSeries int     // series that participated (churn-aware)
}

// Result is the outcome of a perturbed k-means run.
type Result struct {
	Centroids    []timeseries.Series // final surviving (perturbed) centroids
	Stats        []IterationStats
	History      [][]timeseries.Series // per-iteration released centroids (Config.KeepHistory)
	TotalEpsilon float64               // total privacy budget consumed (≤ strategy's ε)
	Converged    bool
}

// BestIteration returns the 1-based iteration with the lowest
// pre-perturbation inertia, as used by Figures 2(e)/2(f), and its stats.
// Iterations whose released centroids all died (no POST measurable) are
// only chosen if no iteration kept a centroid. It returns (0, zero) if
// no iterations ran.
func (r *Result) BestIteration() (int, IterationStats) {
	best, bestQ := 0, math.Inf(1)
	for _, s := range r.Stats {
		if s.CentroidsOut == 0 {
			continue
		}
		if s.PreInertia < bestQ {
			best, bestQ = s.Iteration, s.PreInertia
		}
	}
	if best == 0 {
		for _, s := range r.Stats {
			if s.PreInertia < bestQ {
				best, bestQ = s.Iteration, s.PreInertia
			}
		}
	}
	if best == 0 {
		return 0, IterationStats{}
	}
	return best, r.Stats[best-1]
}

// Run executes the perturbed k-means over d.
func Run(d *timeseries.Dataset, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext is Run with cancellation: the context is checked between
// iterations and a cancelled run returns ctx.Err().
func RunContext(ctx context.Context, d *timeseries.Dataset, cfg Config) (*Result, error) {
	if d.Len() == 0 {
		return nil, errors.New("dpkmeans: empty dataset")
	}
	centroids := kmeans.Compact(cfg.InitCentroids)
	if len(centroids) == 0 {
		return nil, kmeans.ErrNoCentroids
	}
	if (cfg.Budget != nil || cfg.Churn > 0) && cfg.RNG == nil {
		return nil, errors.New("dpkmeans: RNG required for perturbation or churn")
	}
	maxIt := cfg.MaxIterations
	if maxIt <= 0 {
		maxIt = 10
	}
	if cfg.Budget != nil {
		if cap := cfg.Budget.MaxIterations(); cap > 0 && cap < maxIt {
			maxIt = cap
		}
	}
	countFloor := cfg.CountFloor
	if countFloor == 0 {
		countFloor = 1
	}
	slack := cfg.RangeSlack
	if slack == 0 {
		slack = 1
	}
	rangeWidth := cfg.DMax - cfg.DMin
	lo, hi := cfg.DMin-slack*rangeWidth, cfg.DMax+slack*rangeWidth

	var mech *dp.Mechanism
	var acct *dp.Accountant
	if cfg.Budget != nil {
		mech = &dp.Mechanism{
			Sensitivity: dp.SumSensitivity(d.Dim(), cfg.DMin, cfg.DMax),
			RNG:         cfg.RNG,
		}
		acct = &dp.Accountant{Cap: totalCap(cfg.Budget, maxIt)}
	}

	res := &Result{}
	var globalCenter timeseries.Series
	if cfg.StopOnQualityDrop {
		// The protocol releases the global center of mass once, before the
		// clustering starts (footnote 9); here it is computed directly.
		globalCenter = d.Centroid()
	}
	patience := cfg.QualityPatience
	if patience <= 0 {
		patience = 1
	}
	var prevInter float64
	drops := 0
	for it := 1; it <= maxIt; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		active := d
		if cfg.Churn > 0 {
			active = churnSubset(d, cfg.Churn, cfg.RNG)
			if active.Len() == 0 {
				break
			}
		}
		a, err := kmeans.Assign(active, centroids)
		if err != nil {
			return nil, err
		}
		exactMeans := a.Means()
		pre := a.InertiaAgainst(exactMeans)

		stats := IterationStats{
			Iteration:    it,
			PreInertia:   pre,
			CentroidsIn:  len(centroids),
			ActiveSeries: active.Len(),
		}

		var next []timeseries.Series
		if cfg.Budget == nil {
			next = kmeans.Compact(exactMeans)
			stats.PostInertia = pre
		} else {
			epsIter := cfg.Budget.Epsilon(it)
			if epsIter <= 0 {
				break // budget exhausted: stop releasing
			}
			if err := acct.Spend(epsIter); err != nil {
				return nil, err
			}
			stats.EpsilonSpent = epsIter
			res.TotalEpsilon += epsIter
			epsSum, epsCount := dp.SplitIteration(epsIter, cfg.SumShare)
			perturbed, pCounts := perturbMeans(a, mech, epsSum, epsCount, cfg, lo, hi, countFloor)
			stats.PostInertia = a.InertiaAgainst(perturbed)
			if cfg.StopOnQualityDrop {
				stats.InterInertia = interInertia(perturbed, pCounts, globalCenter)
			}
			next = kmeans.Compact(perturbed)
		}
		stats.CentroidsOut = len(next)
		res.Stats = append(res.Stats, stats)
		if cfg.OnIteration != nil {
			cfg.OnIteration(stats, next)
		}
		if cfg.KeepHistory {
			hist := make([]timeseries.Series, len(next))
			for i, c := range next {
				hist[i] = c.Clone()
			}
			res.History = append(res.History, hist)
		}
		if len(next) == 0 {
			break // every mean became aberrant: noise overwhelmed the centroids
		}
		if cfg.StopOnQualityDrop && cfg.Budget != nil {
			if it > 1 && stats.InterInertia < prevInter {
				drops++
				if drops >= patience {
					centroids = next
					break // quality started dropping: the noise is winning
				}
			} else {
				drops = 0
			}
			prevInter = stats.InterInertia
		}
		if cfg.Threshold > 0 && len(next) == len(centroids) &&
			kmeans.MaxShift(centroids, next) <= cfg.Threshold {
			centroids = next
			res.Converged = true
			break
		}
		centroids = next
	}
	res.Centroids = centroids
	return res, nil
}

// interInertia is the footnote-9 quality monitor: the cardinality-
// weighted mean squared distance of the released means to the global
// center of mass. It uses only information the protocol discloses
// anyway: the perturbed means, the perturbed counts, and the
// once-released global centroid.
func interInertia(means []timeseries.Series, counts []float64, g timeseries.Series) float64 {
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	var q float64
	for i, m := range means {
		if m == nil || counts[i] <= 0 {
			continue
		}
		q += counts[i] / total * m.Dist2(g)
	}
	return q
}

// perturbMeans releases the per-cluster (sum, count) pairs through the
// Laplace mechanism, divides, smooths, and filters aberrant means,
// mirroring lines 7–12 of Algorithm 3.
func perturbMeans(a *kmeans.Assignment, mech *dp.Mechanism, epsSum, epsCount float64,
	cfg Config, lo, hi, countFloor float64) ([]timeseries.Series, []float64) {

	k := len(a.Sums)
	out := make([]timeseries.Series, k)
	outCounts := make([]float64, k)
	var window int
	if cfg.Smooth {
		frac := cfg.SMAFraction
		if frac <= 0 {
			frac = 0.2
		}
		window = int(math.Round(frac * float64(len(a.Sums[0]))))
	}
	for c := 0; c < k; c++ {
		// Perturb even empty clusters: the protocol cannot know a cluster
		// is empty before decryption, and an empty cluster's perturbed
		// mean is exactly the "irrelevant value" footnote 8 predicts will
		// be ignored (it fails the aberrant filter below).
		sum := a.Sums[c].Clone()
		mech.PerturbSum(sum, epsSum)
		count := mech.PerturbCount(float64(a.Counts[c]), epsCount)
		if count < countFloor {
			continue // lost mean
		}
		mean := sum
		mean.Scale(1 / count)
		if cfg.Smooth && window > 0 {
			mean = mean.SMA(window)
		}
		if !mean.InRange(lo, hi) {
			continue // aberrant mean
		}
		out[c] = mean
		outCounts[c] = count
	}
	return out, outCounts
}

// churnSubset samples the series that remain connected this iteration.
func churnSubset(d *timeseries.Dataset, churn float64, rng *randx.RNG) *timeseries.Dataset {
	keep := make([]int, 0, d.Len())
	for i := 0; i < d.Len(); i++ {
		if !rng.Bernoulli(churn) {
			keep = append(keep, i)
		}
	}
	return d.Subset(keep)
}

// totalCap computes the exact amount a strategy will request over maxIt
// iterations, so the accountant enforces it strictly.
func totalCap(b dp.Budget, maxIt int) float64 {
	return dp.TotalSpent(b, maxIt)
}
