package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// twoBlobs builds a dataset with two obvious clusters around 0 and 10.
func twoBlobs(t *testing.T, n int) *timeseries.Dataset {
	t.Helper()
	rng := randx.New(1, 1)
	d := timeseries.NewDataset(2)
	for i := 0; i < n; i++ {
		c := 0.0
		if i%2 == 1 {
			c = 10
		}
		d.Append(timeseries.Series{c + rng.Gaussian(0, 0.3), c + rng.Gaussian(0, 0.3)})
	}
	return d
}

func TestAssignBasic(t *testing.T) {
	d := twoBlobs(t, 1000)
	cents := []timeseries.Series{{0, 0}, {10, 10}}
	a, err := Assign(d, cents)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 500 || a.Counts[1] != 500 {
		t.Errorf("counts = %v, want [500 500]", a.Counts)
	}
	means := a.Means()
	if means[0].Dist(timeseries.Series{0, 0}) > 0.2 {
		t.Errorf("mean 0 = %v, want near origin", means[0])
	}
	if means[1].Dist(timeseries.Series{10, 10}) > 0.2 {
		t.Errorf("mean 1 = %v, want near (10,10)", means[1])
	}
}

func TestAssignNoCentroids(t *testing.T) {
	d := twoBlobs(t, 10)
	if _, err := Assign(d, nil); err != ErrNoCentroids {
		t.Errorf("err = %v, want ErrNoCentroids", err)
	}
}

func TestAssignMatchesSerial(t *testing.T) {
	// The parallel assignment must agree with a simple serial one.
	rng := randx.New(2, 2)
	d, _ := datasets.GenerateCER(2000, rng)
	cents := datasets.SeedCentroids("cer", 7, rng)
	a, err := Assign(d, cents)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, len(cents))
	var sse float64
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		best, bestD2 := 0, math.Inf(1)
		for c, ctr := range cents {
			if d2 := row.Dist2(ctr); d2 < bestD2 {
				best, bestD2 = c, d2
			}
		}
		counts[best]++
		sse += bestD2
	}
	for c := range counts {
		if counts[c] != a.Counts[c] {
			t.Errorf("cluster %d count %d != serial %d", c, a.Counts[c], counts[c])
		}
	}
	if math.Abs(sse-a.SSE)/sse > 1e-9 {
		t.Errorf("SSE %v != serial %v", a.SSE, sse)
	}
}

func TestEmptyClusterBecomesLost(t *testing.T) {
	d := twoBlobs(t, 100)
	cents := []timeseries.Series{{0, 0}, {10, 10}, {1e6, 1e6}}
	a, err := Assign(d, cents)
	if err != nil {
		t.Fatal(err)
	}
	means := a.Means()
	if means[2] != nil {
		t.Errorf("far-away centroid should be lost, got %v", means[2])
	}
	if got := len(Compact(means)); got != 2 {
		t.Errorf("live means = %d, want 2", got)
	}
}

func TestRunConvergesTwoBlobs(t *testing.T) {
	d := twoBlobs(t, 2000)
	res, err := Run(d, Config{
		InitCentroids: []timeseries.Series{{2, 2}, {7, 7}},
		Threshold:     1e-6,
		MaxIterations: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("expected convergence")
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Correctness (Section 2.3): terminated and produced >= 1 centroid.
	q, err := IntraInertia(d, res.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	if q > 0.5 {
		t.Errorf("final inertia %v too high for trivially separable data", q)
	}
}

func TestInertiaMonotoneNonIncreasing(t *testing.T) {
	// Lloyd's algorithm never increases the objective.
	rng := randx.New(3, 3)
	d, _ := datasets.GenerateCER(3000, rng)
	res, err := Run(d, Config{
		InitCentroids: datasets.SeedCentroids("cer", 12, rng),
		Threshold:     1e-9,
		MaxIterations: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Stats); i++ {
		if res.Stats[i].IntraInertia > res.Stats[i-1].IntraInertia+1e-9 {
			t.Errorf("inertia increased at iteration %d: %v -> %v",
				i+1, res.Stats[i-1].IntraInertia, res.Stats[i].IntraInertia)
		}
	}
}

func TestFullInertiaDecomposition(t *testing.T) {
	// Definition 1: q_intra + q_inter == q (constant), for the clustering
	// induced by any centroid set, when centroids are the cluster means.
	rng := randx.New(4, 4)
	d, _ := datasets.GenerateCER(1500, rng)
	res, err := Run(d, Config{
		InitCentroids: datasets.SeedCentroids("cer", 8, rng),
		Threshold:     1e-9, MaxIterations: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	intra, err := IntraInertia(d, res.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := InterInertia(d, res.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	full := d.FullInertia()
	if math.Abs(intra+inter-full)/full > 0.02 {
		t.Errorf("decomposition broken: intra %v + inter %v != full %v", intra, inter, full)
	}
}

func TestMaxShift(t *testing.T) {
	old := []timeseries.Series{{0, 0}, {1, 1}, nil}
	new_ := []timeseries.Series{{3, 4}, {1, 1}, {9, 9}}
	if got := MaxShift(old, new_); got != 5 {
		t.Errorf("MaxShift = %v, want 5", got)
	}
	if got := MaxShift(nil, nil); got != 0 {
		t.Errorf("MaxShift(nil,nil) = %v, want 0", got)
	}
}

func TestCompact(t *testing.T) {
	in := []timeseries.Series{nil, {1}, nil, {2}}
	out := Compact(in)
	if len(out) != 2 || out[0][0] != 1 || out[1][0] != 2 {
		t.Errorf("Compact = %v", out)
	}
}

func TestRunTerminatesQuick(t *testing.T) {
	// Termination property: Run always halts within MaxIterations and
	// returns at least one centroid, whatever (sane) seeds it is given.
	rng := randx.New(5, 5)
	d, _ := datasets.GenerateNUMED(400, rng)
	f := func(seedA, seedB uint8) bool {
		c1 := d.Row(int(seedA) % d.Len()).Clone()
		c2 := d.Row(int(seedB) % d.Len()).Clone()
		res, err := Run(d, Config{
			InitCentroids: []timeseries.Series{c1, c2},
			Threshold:     1e-3,
			MaxIterations: 30,
		})
		return err == nil && len(res.Centroids) >= 1 && len(res.Stats) <= 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSeedPlusPlus(t *testing.T) {
	d := twoBlobs(t, 500)
	rng := randx.New(6, 6)
	seeds := SeedPlusPlus(d, 2, 0, rng.IntN, rng.Categorical)
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	// The two seeds should land in different blobs with overwhelming
	// probability (d² weighting).
	if seeds[0].Dist(seeds[1]) < 5 {
		t.Errorf("k-means++ seeds too close: %v vs %v", seeds[0], seeds[1])
	}
}

func TestRunEmptyDataset(t *testing.T) {
	d := timeseries.NewDataset(2)
	if _, err := Run(d, Config{InitCentroids: []timeseries.Series{{0, 0}}}); err == nil {
		t.Error("Run on empty dataset should error")
	}
}

func BenchmarkAssignCER10k(b *testing.B) {
	rng := randx.New(7, 7)
	d, _ := datasets.GenerateCER(10000, rng)
	cents := datasets.SeedCentroids("cer", 50, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assign(d, cents); err != nil {
			b.Fatal(err)
		}
	}
}
