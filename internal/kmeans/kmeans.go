// Package kmeans implements the centralized Lloyd k-means algorithm of
// Section 3.1 of the paper, together with the inertia quality measures of
// Definition 1. It is both the non-private baseline ("No perturbation" in
// Figures 2–3) and the computational core reused by the perturbed variant
// in package dpkmeans.
package kmeans

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"

	"chiaroscuro/internal/timeseries"
)

// ErrNoCentroids is returned when a step is asked to run with no centroids.
var ErrNoCentroids = errors.New("kmeans: no centroids")

// Assignment is the result of one assignment step: for each cluster, the
// dimension-wise sum of its members, the member count, and the total
// squared distance of members to their centroid (pre-perturbation
// intra-cluster inertia numerator).
type Assignment struct {
	Sums   []timeseries.Series // k × n cluster sums
	Counts []int64             // k cluster cardinalities
	SqSums []float64           // k per-cluster Σ ||s||² (enables closed-form inertias)
	SSE    float64             // Σ over series of squared distance to closest centroid
}

// Assign performs the assignment step: each series of d goes to its
// closest centroid. Work is split across all CPUs. It never mutates the
// centroids. An empty centroid set returns ErrNoCentroids.
func Assign(d *timeseries.Dataset, centroids []timeseries.Series) (*Assignment, error) {
	k := len(centroids)
	if k == 0 {
		return nil, ErrNoCentroids
	}
	n := d.Dim()
	workers := runtime.GOMAXPROCS(0)
	if workers > d.Len() {
		workers = 1
	}
	type partial struct {
		sums   []timeseries.Series
		counts []int64
		sq     []float64
		sse    float64
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (d.Len() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > d.Len() {
			hi = d.Len()
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := partial{
				sums:   make([]timeseries.Series, k),
				counts: make([]int64, k),
				sq:     make([]float64, k),
			}
			for i := range p.sums {
				p.sums[i] = make(timeseries.Series, n)
			}
			for i := lo; i < hi; i++ {
				row := d.Row(i)
				best, bestD2 := 0, math.Inf(1)
				for c, ctr := range centroids {
					d2 := row.Dist2(ctr)
					if d2 < bestD2 {
						best, bestD2 = c, d2
					}
				}
				p.sums[best].Add(row)
				p.counts[best]++
				var sq float64
				for _, v := range row {
					sq += v * v
				}
				p.sq[best] += sq
				p.sse += bestD2
			}
			parts[w] = p
		}(w, lo, hi)
	}
	wg.Wait()
	out := &Assignment{
		Sums:   make([]timeseries.Series, k),
		Counts: make([]int64, k),
		SqSums: make([]float64, k),
	}
	for i := range out.Sums {
		out.Sums[i] = make(timeseries.Series, n)
	}
	for _, p := range parts {
		if p.sums == nil {
			continue
		}
		for c := range out.Sums {
			out.Sums[c].Add(p.sums[c])
			out.Counts[c] += p.counts[c]
			out.SqSums[c] += p.sq[c]
		}
		out.SSE += p.sse
	}
	return out, nil
}

// InertiaAgainst returns the mean squared distance of the assigned series
// to an arbitrary per-cluster representative set reps (same indexing as
// the assignment's clusters, nil entries skipped), keeping the partition
// fixed. With reps = Means() this is the pre-perturbation intra-cluster
// inertia; with perturbed means it is the paper's POST inertia "without
// re-assignment" (Figure 2(e)/(f)). Series in clusters whose rep is nil
// are excluded from both numerator and denominator.
func (a *Assignment) InertiaAgainst(reps []timeseries.Series) float64 {
	var sse float64
	var total int64
	for c, rep := range reps {
		if rep == nil || c >= len(a.Counts) || a.Counts[c] == 0 {
			continue
		}
		// Σ||s - r||² = Σ||s||² - 2 r·Σs + n_c ||r||²
		var dot, norm2 float64
		for j, v := range rep {
			dot += v * a.Sums[c][j]
			norm2 += v * v
		}
		sse += a.SqSums[c] - 2*dot + float64(a.Counts[c])*norm2
		total += a.Counts[c]
	}
	if total == 0 {
		return 0
	}
	return sse / float64(total)
}

// Means computes the candidate centroids ("means") from an assignment.
// Clusters with zero members produce a nil series: the paper's "lost"
// means, ignored de facto by subsequent iterations.
func (a *Assignment) Means() []timeseries.Series {
	means := make([]timeseries.Series, len(a.Sums))
	for c, sum := range a.Sums {
		if a.Counts[c] == 0 {
			continue
		}
		m := sum.Clone()
		m.Scale(1 / float64(a.Counts[c]))
		means[c] = m
	}
	return means
}

// IntraInertia returns the intra-cluster inertia q_intra of Definition 1
// for the assignment of d to centroids: the mean (over the t series) of
// the squared distance to the assigned centroid.
func IntraInertia(d *timeseries.Dataset, centroids []timeseries.Series) (float64, error) {
	live := Compact(centroids)
	if len(live) == 0 {
		return 0, ErrNoCentroids
	}
	a, err := Assign(d, live)
	if err != nil {
		return 0, err
	}
	return a.SSE / float64(d.Len()), nil
}

// InterInertia returns the inter-cluster inertia q_inter of Definition 1:
// the cardinality-weighted mean squared distance of each centroid to the
// global center of mass g.
func InterInertia(d *timeseries.Dataset, centroids []timeseries.Series) (float64, error) {
	live := Compact(centroids)
	if len(live) == 0 {
		return 0, ErrNoCentroids
	}
	a, err := Assign(d, live)
	if err != nil {
		return 0, err
	}
	g := d.Centroid()
	var q float64
	for c, ctr := range live {
		q += float64(a.Counts[c]) / float64(d.Len()) * ctr.Dist2(g)
	}
	return q, nil
}

// Compact drops nil (lost) centroids, preserving order.
func Compact(centroids []timeseries.Series) []timeseries.Series {
	out := centroids[:0:0]
	for _, c := range centroids {
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

// MaxShift returns the largest Euclidean distance between corresponding
// centroids of two same-length sets, skipping pairs where either side is
// nil. It is the convergence measure of the convergence step.
func MaxShift(old, new []timeseries.Series) float64 {
	var max float64
	for i := range old {
		if i >= len(new) || old[i] == nil || new[i] == nil {
			continue
		}
		if d := old[i].Dist(new[i]); d > max {
			max = d
		}
	}
	return max
}

// Config parametrizes a centralized k-means run.
type Config struct {
	K             int                 // number of clusters (only used by seeding helpers)
	InitCentroids []timeseries.Series // C_init; required
	Threshold     float64             // θ convergence threshold on MaxShift
	MaxIterations int                 // n_it^max safety bound (Section 4.2.4)

	// OnIteration, when set, observes each iteration as it completes:
	// its stats and the (compacted) means it produced. It runs on the
	// clustering goroutine and must not mutate the means.
	OnIteration func(stats IterationStats, means []timeseries.Series)
}

// IterationStats records the quality trace of one iteration, mirroring
// what Figures 2(a)–2(d) plot.
type IterationStats struct {
	Iteration    int     // 1-based
	IntraInertia float64 // pre-update inertia of the centroids used for assignment
	Centroids    int     // number of live (non-lost) centroids used
	Shift        float64 // MaxShift between centroids and new means
}

// Result is the outcome of a k-means run.
type Result struct {
	Centroids []timeseries.Series // final means (lost clusters removed)
	Stats     []IterationStats
	Converged bool
}

// Run executes centralized k-means until convergence (MaxShift <= θ) or
// MaxIterations. It is correct in the paper's sense: it terminates and
// outputs at least one centroid (provided the dataset is non-empty and at
// least one initial centroid is given).
func Run(d *timeseries.Dataset, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext is Run with cancellation: the context is checked between
// iterations and a cancelled run returns ctx.Err().
func RunContext(ctx context.Context, d *timeseries.Dataset, cfg Config) (*Result, error) {
	if d.Len() == 0 {
		return nil, errors.New("kmeans: empty dataset")
	}
	centroids := Compact(cfg.InitCentroids)
	if len(centroids) == 0 {
		return nil, ErrNoCentroids
	}
	maxIt := cfg.MaxIterations
	if maxIt <= 0 {
		maxIt = 100
	}
	res := &Result{}
	for it := 1; it <= maxIt; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, err := Assign(d, centroids)
		if err != nil {
			return nil, err
		}
		means := Compact(a.Means())
		if len(means) == 0 {
			// All clusters lost: cannot happen with non-empty data, but be safe.
			res.Centroids = centroids
			return res, nil
		}
		shift := MaxShift(centroids, means)
		stats := IterationStats{
			Iteration:    it,
			IntraInertia: a.SSE / float64(d.Len()),
			Centroids:    len(centroids),
			Shift:        shift,
		}
		res.Stats = append(res.Stats, stats)
		if cfg.OnIteration != nil {
			cfg.OnIteration(stats, means)
		}
		converged := len(means) == len(centroids) && shift <= cfg.Threshold
		centroids = means
		if converged {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// SeedPlusPlus chooses k initial centroids with the k-means++ heuristic
// (distance-squared weighted sampling), reading at most sample rows. It
// is exposed for the non-private baseline; the private protocol must use
// data-independent seeds (see datasets.SeedCentroids).
func SeedPlusPlus(d *timeseries.Dataset, k, sample int, pick func(n int) int, pickW func(w []float64) int) []timeseries.Series {
	t := d.Len()
	if sample <= 0 || sample > t {
		sample = t
	}
	first := pick(sample)
	out := []timeseries.Series{d.Row(first).Clone()}
	w := make([]float64, sample)
	for len(out) < k {
		for i := 0; i < sample; i++ {
			row := d.Row(i)
			best := math.Inf(1)
			for _, c := range out {
				if d2 := row.Dist2(c); d2 < best {
					best = d2
				}
			}
			w[i] = best
		}
		out = append(out, d.Row(pickW(w)).Clone())
	}
	return out
}
