// Package randx provides the random variates Chiaroscuro needs on top of
// the standard library: Laplace noise, Gamma variates with arbitrary
// (including sub-unit) shape for the divisible noise-shares of Lemma 1,
// and small conveniences for the synthetic data generators.
//
// All sampling is driven by an explicit *RNG so every experiment in the
// repository is reproducible from a seed.
package randx

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random source (PCG) with the sampling
// helpers used across the repository.
type RNG struct {
	*rand.Rand
}

// New returns an RNG seeded with the pair (seed, stream). Distinct
// streams with the same seed yield independent sequences, which the
// simulator uses to give every node its own source.
func New(seed, stream uint64) *RNG {
	return &RNG{rand.New(rand.NewPCG(seed, stream^0x9e3779b97f4a7c15))}
}

// Split derives a new independent RNG from r, keyed by id. It does not
// disturb r's own sequence beyond consuming two values.
func (r *RNG) Split(id uint64) *RNG {
	return New(r.Uint64(), r.Uint64()^id)
}

// Uniform returns a uniform variate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Gaussian(mu, sigma))
}

// Laplace returns a Laplace variate centered at 0 with scale lambda,
// i.e. density f(x) = exp(-|x|/lambda) / (2 lambda)  (Definition 4).
func (r *RNG) Laplace(lambda float64) float64 {
	// Inverse CDF on u ~ U(-1/2, 1/2): x = -lambda * sign(u) * ln(1-2|u|).
	u := r.Float64() - 0.5
	if u >= 0 {
		return -lambda * math.Log(1-2*u)
	}
	return lambda * math.Log(1+2*u)
}

// Exponential returns an exponential variate with mean lambda.
func (r *RNG) Exponential(lambda float64) float64 {
	return -lambda * math.Log(1-r.Float64())
}

// Gamma returns a Gamma(shape, scale) variate with density
//
//	g(x; k, θ) = x^(k-1) e^(-x/θ) / (Γ(k) θ^k),  x >= 0.
//
// Marsaglia–Tsang squeeze for shape >= 1, boosted with U^(1/shape) for
// shape < 1. The noise-shares of Definition 5 use shape = 1/nν, which is
// typically tiny, so the boost path is the hot one.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("randx: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// G(a) = G(a+1) * U^(1/a)   (Marsaglia–Tsang boost).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// NoiseShare returns one noise-share ν = G1(nShares, lambda) − G2(nShares,
// lambda) from Definition 5 of the paper: the difference of two i.i.d.
// Gamma(1/nShares, lambda) variates. Summing nShares independent
// NoiseShare values yields an exact Laplace(lambda) variate (Lemma 1,
// infinite divisibility of the Laplace distribution).
func (r *RNG) NoiseShare(nShares int, lambda float64) float64 {
	if nShares < 1 {
		panic("randx: NoiseShare requires nShares >= 1")
	}
	shape := 1 / float64(nShares)
	return r.Gamma(shape, lambda) - r.Gamma(shape, lambda)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	return r.Rand.Perm(n)
}

// IntN returns a uniform int in [0, n).
func (r *RNG) IntN(n int) int { return r.Rand.IntN(n) }

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Categorical draws an index from the (unnormalized) weight vector w.
func (r *RNG) Categorical(w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	x := r.Float64() * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}
