package randx

import (
	"math"
	"testing"
)

func TestLaplaceMoments(t *testing.T) {
	r := New(1, 1)
	const n = 200000
	const lambda = 3.0
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Laplace(lambda)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.1 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	want := 2 * lambda * lambda // Var(Laplace(λ)) = 2λ²
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Laplace variance = %v, want ~%v", variance, want)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(2, 7)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.01, 2}, {0.5, 1}, {1, 3}, {2.5, 0.5}, {9, 2},
	} {
		const n = 150000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := r.Gamma(tc.shape, tc.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative %v", tc.shape, tc.scale, x)
			}
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean)/wantMean > 0.08 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ~%v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.25 {
			t.Errorf("Gamma(%v,%v) variance = %v, want ~%v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

// TestLaplaceDivisibility is the Lemma 1 check: the sum of nν noise-shares
// must be distributed as Laplace(λ). We compare the first two even moments.
func TestLaplaceDivisibility(t *testing.T) {
	r := New(3, 3)
	const lambda = 2.0
	const nShares = 64
	const trials = 30000
	var sum2, sum4 float64
	for i := 0; i < trials; i++ {
		var x float64
		for j := 0; j < nShares; j++ {
			x += r.NoiseShare(nShares, lambda)
		}
		sum2 += x * x
		sum4 += x * x * x * x
	}
	m2 := sum2 / trials
	m4 := sum4 / trials
	wantM2 := 2 * lambda * lambda                    // E[X²] = 2λ²
	wantM4 := 24 * lambda * lambda * lambda * lambda // E[X⁴] = 24λ⁴
	if math.Abs(m2-wantM2)/wantM2 > 0.08 {
		t.Errorf("sum of shares: E[X²] = %v, want ~%v", m2, wantM2)
	}
	if math.Abs(m4-wantM4)/wantM4 > 0.35 {
		t.Errorf("sum of shares: E[X⁴] = %v, want ~%v", m4, wantM4)
	}
}

func TestNoiseShareSymmetry(t *testing.T) {
	r := New(4, 4)
	var pos, neg int
	for i := 0; i < 100000; i++ {
		if r.NoiseShare(100, 1) > 0 {
			pos++
		} else {
			neg++
		}
	}
	ratio := float64(pos) / float64(pos+neg)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("noise-share sign ratio = %v, want ~0.5", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42, 9), New(42, 9)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Laplace(1), b.Laplace(1); av != bv {
			t.Fatalf("same-seed RNGs diverged at step %d: %v != %v", i, av, bv)
		}
	}
	c := New(42, 10)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different streams look identical (%d/1000 equal draws)", same)
	}
}

func TestCategorical(t *testing.T) {
	r := New(5, 5)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("category ratio = %v, want ~3", ratio)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(6, 6)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("split RNGs look identical (%d/1000 equal draws)", same)
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gamma(0, 1) should panic")
		}
	}()
	New(1, 1).Gamma(0, 1)
}

func BenchmarkLaplace(b *testing.B) {
	r := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = r.Laplace(1)
	}
}

func BenchmarkNoiseShareTinyShape(b *testing.B) {
	r := New(1, 1)
	for i := 0; i < b.N; i++ {
		_ = r.NoiseShare(1000000, 1)
	}
}
