package randx

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Jitter is a concurrency-safe seeded source for the network runtime's
// timing decisions: backoff jitter, gossip pacing, random peer picks.
// It exists so no component reaches for math/rand's global source —
// every draw in the repository descends from an explicit seed and
// replays with it (the rngsource analyzer enforces this).
//
// Jitter decisions are timing-only: they never feed protocol state, so
// they may be shared freely across a component's goroutines; the mutex
// makes the sequence serialization racy-schedule-dependent but every
// drawn value still comes from the seeded stream.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter returns a Jitter seeded with (seed, stream), the same
// lineage convention as New.
func NewJitter(seed, stream uint64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewPCG(seed, stream^0x9e3779b97f4a7c15))}
}

// IntN returns a uniform int in [0, n).
func (j *Jitter) IntN(n int) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.IntN(n)
}

// Int64N returns a uniform int64 in [0, n).
func (j *Jitter) Int64N(n int64) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Int64N(n)
}

// DurationN returns a uniform duration in [0, d).
func (j *Jitter) DurationN(d time.Duration) time.Duration {
	return time.Duration(j.Int64N(int64(d)))
}
