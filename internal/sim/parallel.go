// Parallel cycle mode: the engine pre-draws a cycle's full exchange
// schedule from its RNG — consuming it in exactly the order the serial
// RunCycle would, so runs stay reproducible per seed — and then
// executes conflict-free batches of exchanges (no node appears in two
// in-flight exchanges) on the shared worker pool. Protocol states opt
// in by implementing ConcurrentExchanger; anything else falls back to
// the serial path with identical results.
package sim

import (
	"chiaroscuro/internal/parallel"
)

// Exchanger is a protocol state driven by engine cycles.
type Exchanger interface {
	Exchange(initiator, responder NodeID, full bool)
}

// ConcurrentExchanger is the opt-in marker for the parallel cycle mode:
// a protocol whose Exchange touches only the state of its two nodes
// (and whose shared dependencies are concurrency-safe) may run
// node-disjoint exchanges concurrently. eesum.Sum, eesum.Decryption,
// eesum.NoiseGen, gossip.Sum and gossip.Dissemination opt in.
type ConcurrentExchanger interface {
	Exchanger
	ConcurrentExchangeSafe() bool
}

// scheduled is one pre-drawn exchange of a cycle.
type scheduled struct {
	a, b NodeID
	full bool
}

// RunCycleOn executes one cycle of p, concurrently when p opts in via
// ConcurrentExchanger and the engine has more than one worker, serially
// otherwise. Both paths draw the same RNG sequence and produce the same
// protocol state per seed. It returns the number of exchanges.
func (e *Engine) RunCycleOn(p Exchanger) int {
	if c, ok := p.(ConcurrentExchanger); ok && c.ConcurrentExchangeSafe() && e.workers > 1 {
		return e.runCycleParallel(p)
	}
	return e.RunCycle(p.Exchange)
}

// RunCyclesOn runs the given number of cycles through RunCycleOn.
func (e *Engine) RunCyclesOn(cycles int, p Exchanger) {
	for i := 0; i < cycles; i++ {
		e.RunCycleOn(p)
	}
}

// schedule pre-draws one cycle: churn resampling, initiator
// permutation, peer picks, mid-exchange failure draws, message
// accounting and sampler view updates all happen here, in the serial
// cycle's exact order — the protocol exchanges are the only work left
// to execute.
func (e *Engine) schedule() []scheduled {
	e.resampleChurn()
	sched := e.sched[:0]
	order := e.rng.Perm(e.cfg.N)
	for _, a := range order {
		if !e.alive[a] {
			continue
		}
		b, ok := e.sampler.Pick(a, e.alive, e.rng)
		if !ok {
			continue
		}
		full := true
		if e.cfg.MidFailure && e.cfg.Churn > 0 {
			window := e.cfg.MidFailureWindow
			if window == 0 {
				window = 0.05
			}
			if e.rng.Bernoulli(e.cfg.Churn * window) {
				full = false
			}
		}
		sched = append(sched, scheduled{a, b, full})
		e.msgs[a]++
		e.msgs[b]++
		e.bytes[a] += int64(e.cfg.MessageBytes)
		e.bytes[b] += int64(e.cfg.MessageBytes)
		e.sampler.AfterExchange(a, b, e.rng)
	}
	e.sched = sched
	return sched
}

// runCycleParallel executes a pre-drawn schedule in maximal
// conflict-free batches: exchanges are taken in schedule order until
// one touches a node already busy in the batch, the batch runs
// concurrently on the worker pool, and the next batch starts. Within a
// batch all node pairs are disjoint, so any execution order yields the
// state the serial cycle would; across batches the schedule order is
// preserved.
func (e *Engine) runCycleParallel(p Exchanger) int {
	sched := e.schedule()
	if e.mark == nil {
		e.mark = make([]int, e.cfg.N)
	}
	for start := 0; start < len(sched); {
		e.markGen++
		end := start
		for end < len(sched) {
			s := sched[end]
			if e.mark[s.a] == e.markGen || e.mark[s.b] == e.markGen {
				break
			}
			e.mark[s.a], e.mark[s.b] = e.markGen, e.markGen
			end++
		}
		batch := sched[start:end]
		parallel.ForEach(e.workers, len(batch), func(i int) {
			p.Exchange(batch[i].a, batch[i].b, batch[i].full)
		})
		start = end
	}
	e.cycle++
	return len(sched)
}
