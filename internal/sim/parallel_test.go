package sim

import (
	"sync/atomic"
	"testing"
)

func casInt32(p *int32, old, new int32) bool { return atomic.CompareAndSwapInt32(p, old, new) }

// sumState is a minimal push-pull averaging protocol (a local copy of
// gossip.Sum, which sim cannot import) used to compare the serial and
// parallel cycle modes bit for bit.
type sumState struct {
	sigma []float64
	omega []float64
}

func newSumState(n int) *sumState {
	s := &sumState{sigma: make([]float64, n), omega: make([]float64, n)}
	for i := range s.sigma {
		s.sigma[i] = float64(i)
	}
	s.omega[0] = 1
	return s
}

func (s *sumState) Exchange(a, b NodeID, full bool) {
	ms := (s.sigma[a] + s.sigma[b]) / 2
	mw := (s.omega[a] + s.omega[b]) / 2
	s.sigma[a], s.omega[a] = ms, mw
	if full {
		s.sigma[b], s.omega[b] = ms, mw
	}
}

func (s *sumState) ConcurrentExchangeSafe() bool { return true }

// serialOnly is the same protocol without the opt-in marker.
type serialOnly struct{ *sumState }

func runBoth(t *testing.T, cfg Config, cycles int, sampler func() Sampler) (*sumState, *sumState) {
	t.Helper()
	serialCfg := cfg
	serialCfg.Workers = 1
	es, err := New(serialCfg, sampler())
	if err != nil {
		t.Fatal(err)
	}
	ss := newSumState(cfg.N)
	for c := 0; c < cycles; c++ {
		es.RunCycle(ss.Exchange)
	}

	parCfg := cfg
	parCfg.Workers = 4
	ep, err := New(parCfg, sampler())
	if err != nil {
		t.Fatal(err)
	}
	sp := newSumState(cfg.N)
	for c := 0; c < cycles; c++ {
		ep.RunCycleOn(sp)
	}

	if es.AvgMessages() != ep.AvgMessages() || es.AvgBytes() != ep.AvgBytes() {
		t.Errorf("accounting diverged: serial (%v msgs, %v bytes), parallel (%v msgs, %v bytes)",
			es.AvgMessages(), es.AvgBytes(), ep.AvgMessages(), ep.AvgBytes())
	}
	if es.Cycle() != ep.Cycle() {
		t.Errorf("cycle counters diverged: %d vs %d", es.Cycle(), ep.Cycle())
	}
	return ss, sp
}

func assertSameState(t *testing.T, ss, sp *sumState) {
	t.Helper()
	for i := range ss.sigma {
		if ss.sigma[i] != sp.sigma[i] || ss.omega[i] != sp.omega[i] {
			t.Fatalf("node %d diverged: serial (%v, %v), parallel (%v, %v)",
				i, ss.sigma[i], ss.omega[i], sp.sigma[i], sp.omega[i])
		}
	}
}

func TestParallelCycleEqualsSerialUniform(t *testing.T) {
	cfg := Config{N: 257, Seed: 42, MessageBytes: 100}
	ss, sp := runBoth(t, cfg, 12, func() Sampler { return &UniformSampler{} })
	assertSameState(t, ss, sp)
}

func TestParallelCycleEqualsSerialChurnMidFailure(t *testing.T) {
	// The churn + mid-exchange failure path draws extra RNG values per
	// exchange; the parallel schedule must consume them identically.
	cfg := Config{N: 128, Seed: 7, Churn: 0.2, MidFailure: true, MessageBytes: 64}
	ss, sp := runBoth(t, cfg, 20, func() Sampler { return &UniformSampler{} })
	assertSameState(t, ss, sp)
}

func TestParallelCycleEqualsSerialNewscast(t *testing.T) {
	// Newscast mutates views between peer picks inside a cycle; the
	// schedule pass must interleave sampler updates exactly like the
	// serial engine.
	cfg := Config{N: 96, Seed: 9, Churn: 0.1, MidFailure: true}
	ss, sp := runBoth(t, cfg, 15, func() Sampler { return &NewscastSampler{ViewSize: 8} })
	assertSameState(t, ss, sp)
}

func TestRunCycleOnFallsBackToSerial(t *testing.T) {
	// A protocol without the marker must take the serial path and match
	// plain RunCycle exactly even on a multi-worker engine.
	cfg := Config{N: 64, Seed: 3, Workers: 4}
	e1, err := New(cfg, &UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newSumState(cfg.N)
	for c := 0; c < 10; c++ {
		e1.RunCycle(s1.Exchange)
	}
	e2, err := New(cfg, &UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := newSumState(cfg.N)
	for c := 0; c < 10; c++ {
		e2.RunCycleOn(serialOnly{s2})
	}
	assertSameState(t, s1, s2)
}

func TestScheduleBatchesAreConflictFree(t *testing.T) {
	// Directly exercise the batching invariant: within one batch no
	// node may appear twice. Detect via a per-node in-flight flag.
	cfg := Config{N: 200, Seed: 11, Workers: 8}
	e, err := New(cfg, &UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	busy := make([]int32, cfg.N)
	ck := &conflictChecker{busy: busy, t: t}
	for c := 0; c < 5; c++ {
		e.RunCycleOn(ck)
	}
}

type conflictChecker struct {
	busy []int32
	t    *testing.T
}

func (c *conflictChecker) Exchange(a, b NodeID, full bool) {
	if !casInt32(&c.busy[a], 0, 1) || !casInt32(&c.busy[b], 0, 1) {
		c.t.Error("conflicting concurrent exchange detected")
	}
	casInt32(&c.busy[a], 1, 0)
	casInt32(&c.busy[b], 1, 0)
}

func (c *conflictChecker) ConcurrentExchangeSafe() bool { return true }
