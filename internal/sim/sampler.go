package sim

import (
	"chiaroscuro/internal/randx"
)

// UniformSampler draws exchange targets uniformly from the whole
// connected population — the idealized peer-sampling service behind the
// paper's "Tendencies" curves. It keeps no per-node state, so it scales
// to millions of nodes for the latency experiments.
type UniformSampler struct {
	n int
}

// Init implements Sampler.
func (u *UniformSampler) Init(n int, _ *randx.RNG) { u.n = n }

// Pick implements Sampler.
func (u *UniformSampler) Pick(from NodeID, alive []bool, rng *randx.RNG) (NodeID, bool) {
	// Rejection sampling; with bounded churn (< 1) this terminates fast.
	for tries := 0; tries < 64; tries++ {
		p := rng.IntN(u.n)
		if p != from && alive[p] {
			return p, true
		}
	}
	return 0, false
}

// AfterExchange implements Sampler.
func (u *UniformSampler) AfterExchange(_, _ NodeID, _ *randx.RNG) {}

// NewscastSampler approximates the Newscast membership protocol the
// paper's connectivity layer uses (Section 6.1.4, view size 30): every
// node keeps a bounded cache of (peer, freshness) descriptors; on every
// exchange the two caches are merged, deduplicated, and truncated to the
// freshest ViewSize entries, after each node inserts a fresh descriptor
// of itself. Views are int32-packed so a million-node simulation stays
// within memory.
type NewscastSampler struct {
	ViewSize int

	n     int
	view  [][]int32 // peer ids per node
	stamp [][]int32 // freshness per entry (engine cycle when inserted)
	clock int32
}

// Init implements Sampler: views bootstrap with ViewSize random peers,
// mirroring the initial local view Λ handed out with the parameters.
func (ns *NewscastSampler) Init(n int, rng *randx.RNG) {
	if ns.ViewSize <= 0 {
		ns.ViewSize = 30
	}
	ns.n = n
	ns.view = make([][]int32, n)
	ns.stamp = make([][]int32, n)
	for i := 0; i < n; i++ {
		c := ns.ViewSize
		if c > n-1 {
			c = n - 1
		}
		ns.view[i] = make([]int32, 0, ns.ViewSize*2)
		ns.stamp[i] = make([]int32, 0, ns.ViewSize*2)
		seen := map[int32]bool{int32(i): true}
		for len(ns.view[i]) < c {
			p := int32(rng.IntN(n))
			if seen[p] {
				continue
			}
			seen[p] = true
			ns.view[i] = append(ns.view[i], p)
			ns.stamp[i] = append(ns.stamp[i], 0)
		}
	}
}

// Pick implements Sampler: a uniformly random live entry of the view.
func (ns *NewscastSampler) Pick(from NodeID, alive []bool, rng *randx.RNG) (NodeID, bool) {
	v := ns.view[from]
	if len(v) == 0 {
		return 0, false
	}
	for tries := 0; tries < 16; tries++ {
		p := int(v[rng.IntN(len(v))])
		if p != from && alive[p] {
			return p, true
		}
	}
	return 0, false
}

// AfterExchange implements Sampler: Newscast view merge.
func (ns *NewscastSampler) AfterExchange(a, b NodeID, rng *randx.RNG) {
	ns.clock++
	merged := make(map[int32]int32, 2*ns.ViewSize+2)
	add := func(id, st int32) {
		if prev, ok := merged[id]; !ok || st > prev {
			merged[id] = st
		}
	}
	for i, id := range ns.view[a] {
		add(id, ns.stamp[a][i])
	}
	for i, id := range ns.view[b] {
		add(id, ns.stamp[b][i])
	}
	// Each participant advertises a fresh descriptor of itself.
	add(int32(a), ns.clock)
	add(int32(b), ns.clock)
	ns.rebuild(a, merged)
	ns.rebuild(b, merged)
}

// rebuild installs the freshest ViewSize entries of merged (minus self)
// as the node's new view.
func (ns *NewscastSampler) rebuild(node NodeID, merged map[int32]int32) {
	type entry struct{ id, st int32 }
	entries := make([]entry, 0, len(merged))
	//lint:orderfree selection below totally orders entries (stamp desc, id asc tie-break)
	for id, st := range merged {
		if id == int32(node) {
			continue
		}
		entries = append(entries, entry{id, st})
	}
	// Partial selection sort of the freshest ViewSize entries: views are
	// tiny (≈30–60), so this beats a full sort's allocations. Equal
	// stamps tie-break on the smaller id so the result does not depend
	// on the map's randomized iteration order — per-seed runs must be
	// bit-reproducible.
	limit := ns.ViewSize
	if limit > len(entries) {
		limit = len(entries)
	}
	for i := 0; i < limit; i++ {
		best := i
		for j := i + 1; j < len(entries); j++ {
			if entries[j].st > entries[best].st ||
				(entries[j].st == entries[best].st && entries[j].id < entries[best].id) {
				best = j
			}
		}
		entries[i], entries[best] = entries[best], entries[i]
	}
	ns.view[node] = ns.view[node][:0]
	ns.stamp[node] = ns.stamp[node][:0]
	for i := 0; i < limit; i++ {
		ns.view[node] = append(ns.view[node], entries[i].id)
		ns.stamp[node] = append(ns.stamp[node], entries[i].st)
	}
}

// View returns node's current view (for tests).
func (ns *NewscastSampler) View(node NodeID) []int32 { return ns.view[node] }
