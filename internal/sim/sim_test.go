package sim

import (
	"testing"

	"chiaroscuro/internal/randx"
)

func TestEngineBasics(t *testing.T) {
	e, err := New(Config{N: 100, Seed: 1, MessageBytes: 10}, &UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	exchanges := e.RunCycle(func(a, b NodeID, full bool) {
		if a == b {
			t.Error("self exchange")
		}
		if !full {
			t.Error("mid-failure without churn")
		}
	})
	if exchanges != 100 {
		t.Errorf("exchanges = %d, want 100 (no churn)", exchanges)
	}
	if e.Cycle() != 1 {
		t.Errorf("cycle = %d", e.Cycle())
	}
	// Each exchange counts one message per side: total = 2 * exchanges.
	if got := e.AvgMessages(); got != 2 {
		t.Errorf("avg messages = %v, want 2", got)
	}
	if got := e.AvgBytes(); got != 20 {
		t.Errorf("avg bytes = %v, want 20", got)
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := New(Config{N: 1, Seed: 1}, &UniformSampler{}); err == nil {
		t.Error("N=1 must fail")
	}
	if _, err := New(Config{N: 10, Seed: 1, Churn: 1}, &UniformSampler{}); err == nil {
		t.Error("churn=1 must fail")
	}
}

func TestChurnReducesExchanges(t *testing.T) {
	e, err := New(Config{N: 2000, Seed: 2, Churn: 0.5}, &UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < 10; c++ {
		total += e.RunCycle(func(a, b NodeID, full bool) {
			if !e.Alive(a) || !e.Alive(b) {
				t.Error("exchange involving disconnected node")
			}
		})
	}
	// ~50% of nodes initiate each cycle.
	if total < 7000 || total > 13000 {
		t.Errorf("exchanges over 10 cycles = %d, want ~10000", total)
	}
}

func TestMidFailureMode(t *testing.T) {
	// With MidFailureWindow = 1 every churn event inside an exchange
	// corrupts it, so the half-exchange ratio equals the churn rate.
	e, err := New(Config{
		N: 1000, Seed: 3, Churn: 0.3, MidFailure: true, MidFailureWindow: 1,
	}, &UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	var fullCnt, halfCnt int
	e.RunCycles(5, func(a, b NodeID, full bool) {
		if full {
			fullCnt++
		} else {
			halfCnt++
		}
	})
	if halfCnt == 0 {
		t.Error("no half-completed exchanges despite MidFailure")
	}
	ratio := float64(halfCnt) / float64(fullCnt+halfCnt)
	if ratio < 0.2 || ratio > 0.4 {
		t.Errorf("half-exchange ratio %v, want ~0.3", ratio)
	}
	// Default window (0.05) makes corruption rare.
	e2, err := New(Config{N: 1000, Seed: 3, Churn: 0.3, MidFailure: true}, &UniformSampler{})
	if err != nil {
		t.Fatal(err)
	}
	halfCnt = 0
	e2.RunCycles(5, func(a, b NodeID, full bool) {
		if !full {
			halfCnt++
		}
	})
	if ratio2 := float64(halfCnt) / float64(5*1000); ratio2 > 0.05 {
		t.Errorf("default-window half-exchange rate %v, want ~0.015", ratio2)
	}
}

func TestUniformSamplerAvoidsSelfAndDead(t *testing.T) {
	u := &UniformSampler{}
	rng := randx.New(4, 4)
	u.Init(10, rng)
	alive := make([]bool, 10)
	alive[3] = true
	alive[7] = true
	for i := 0; i < 100; i++ {
		p, ok := u.Pick(3, alive, rng)
		if !ok {
			t.Fatal("no peer found")
		}
		if p != 7 {
			t.Fatalf("picked %d, only 7 is a valid peer", p)
		}
	}
	// No live peer at all.
	alive[7] = false
	if _, ok := u.Pick(3, alive, rng); ok {
		t.Error("picked a peer when none is alive")
	}
}

func TestNewscastViewProperties(t *testing.T) {
	ns := &NewscastSampler{ViewSize: 5}
	e, err := New(Config{N: 200, Seed: 5}, ns)
	if err != nil {
		t.Fatal(err)
	}
	e.RunCycles(20, func(a, b NodeID, full bool) {})
	for node := 0; node < 200; node++ {
		v := ns.View(node)
		if len(v) == 0 || len(v) > 5 {
			t.Fatalf("node %d view size %d", node, len(v))
		}
		seen := map[int32]bool{}
		for _, p := range v {
			if p == int32(node) {
				t.Fatalf("node %d has itself in view", node)
			}
			if seen[p] {
				t.Fatalf("node %d has duplicate view entry %d", node, p)
			}
			seen[p] = true
		}
	}
}

func TestNewscastKeepsNetworkMixed(t *testing.T) {
	// After some cycles, exchange partners should cover a large part of
	// the network (views keep being refreshed), not collapse to a clique.
	ns := &NewscastSampler{ViewSize: 8}
	e, err := New(Config{N: 300, Seed: 6}, ns)
	if err != nil {
		t.Fatal(err)
	}
	partners := make(map[[2]int]bool)
	e.RunCycles(30, func(a, b NodeID, full bool) {
		if a > b {
			a, b = b, a
		}
		partners[[2]int{a, b}] = true
	})
	if len(partners) < 1500 {
		t.Errorf("only %d distinct pairs after 30 cycles; network not mixing", len(partners))
	}
}

func TestSmallPopulationNewscast(t *testing.T) {
	// ViewSize larger than the population must not break.
	ns := &NewscastSampler{ViewSize: 30}
	e, err := New(Config{N: 4, Seed: 7}, ns)
	if err != nil {
		t.Fatal(err)
	}
	ex := 0
	e.RunCycles(10, func(a, b NodeID, full bool) { ex++ })
	if ex != 40 {
		t.Errorf("exchanges = %d, want 40", ex)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e, _ := New(Config{N: 50, Seed: 42, Churn: 0.2}, &UniformSampler{})
		e.RunCycles(10, func(a, b NodeID, full bool) {})
		out := make([]int64, 50)
		copy(out, e.Messages())
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at node %d", i)
		}
	}
}
