// Package sim is the peer-to-peer simulation substrate Chiaroscuro's
// protocols run on — the role PeerSim (cycle-driven mode) plays in the
// paper's evaluation (Section 6.1). It provides:
//
//   - a cycle-based engine: in each cycle every connected node initiates
//     one gossip exchange with a peer drawn from its local view;
//   - pluggable peer sampling: an idealized uniform sampler (the paper's
//     "Tendencies" curves) and a Newscast-style bounded view of 30
//     entries (the paper's "Real. Case" curves, Section 6.1.4);
//   - a churn model: every node is independently disconnected with a
//     fixed probability, re-sampled each cycle (Section 6.1.5), with an
//     optional mid-exchange failure mode where the initiator's update
//     applies but the responder's does not;
//   - per-node message and byte accounting for the latency experiments
//     (Figures 3(b), 4(a), 4(b)).
package sim

import (
	"errors"

	"chiaroscuro/internal/parallel"
	"chiaroscuro/internal/randx"
)

// NodeID identifies a simulated participant.
type NodeID = int

// Sampler provides each node's local view (Section 3.2: the list of
// random participants that bootstraps gossip exchanges).
type Sampler interface {
	// Init prepares views for n nodes.
	Init(n int, rng *randx.RNG)
	// Pick draws an exchange target for node from, avoiding self.
	// ok is false when the node has no usable peer this cycle.
	Pick(from NodeID, alive []bool, rng *randx.RNG) (peer NodeID, ok bool)
	// AfterExchange lets the sampler update views (Newscast merges).
	AfterExchange(a, b NodeID, rng *randx.RNG)
}

// Exchange is one push-pull gossip interaction. full reports whether the
// responder's half of the update applied too (false = the responder
// disconnected mid-exchange; the protocol must apply only the
// initiator-side effect, which is how churn corrupts in-flight state).
type Exchange func(initiator, responder NodeID, full bool)

// Config parametrizes an Engine.
type Config struct {
	N            int     // population size
	Seed         uint64  // RNG seed (runs are reproducible per seed)
	Churn        float64 // per-cycle probability a node is disconnected
	MidFailure   bool    // model half-completed exchanges under churn
	MessageBytes int     // wire size of one protocol message (accounting)

	// MidFailureWindow is the fraction of a cycle during which a
	// responder's disconnection corrupts an in-flight exchange (the
	// initiator applies its update, the responder does not). The
	// probability of a half-completed exchange is Churn ×
	// MidFailureWindow. Zero means the default of 0.05: disconnections
	// are per-cycle events, but only those landing inside the short
	// exchange window corrupt state.
	MidFailureWindow float64

	// Workers bounds the worker pool of the parallel cycle mode
	// (RunCycleOn): 0 uses the process-wide parallel.Workers() default,
	// 1 forces fully serial cycles. Results are identical per seed for
	// any worker count.
	Workers int

	// OnChurn, when set, observes every churn resampling: the engine
	// cycle about to run (0-based, cumulative across phases) and how
	// many of the N nodes it disconnected. It fires only when Churn > 0,
	// runs on the scheduling goroutine, and consumes no engine RNG — a
	// run with the hook is draw-for-draw identical to one without.
	OnChurn func(cycle, down int)
}

// Engine drives cycles of gossip exchanges.
type Engine struct {
	cfg     Config
	rng     *randx.RNG
	sampler Sampler
	alive   []bool
	workers int

	msgs  []int64 // messages sent per node
	bytes []int64 // bytes sent per node
	cycle int

	// Parallel cycle mode scratch state (see parallel.go).
	sched   []scheduled
	mark    []int
	markGen int
}

// New creates an engine over n nodes with the given sampler.
func New(cfg Config, sampler Sampler) (*Engine, error) {
	if cfg.N < 2 {
		return nil, errors.New("sim: population must be at least 2")
	}
	if cfg.Churn < 0 || cfg.Churn >= 1 {
		return nil, errors.New("sim: churn must be in [0,1)")
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = parallel.Workers()
	}
	rng := randx.New(cfg.Seed, 0xC1A0)
	sampler.Init(cfg.N, rng)
	e := &Engine{
		cfg:     cfg,
		rng:     rng,
		sampler: sampler,
		alive:   make([]bool, cfg.N),
		workers: workers,
		msgs:    make([]int64, cfg.N),
		bytes:   make([]int64, cfg.N),
	}
	for i := range e.alive {
		e.alive[i] = true
	}
	return e, nil
}

// N returns the population size.
func (e *Engine) N() int { return e.cfg.N }

// Cycle returns the number of completed cycles.
func (e *Engine) Cycle() int { return e.cycle }

// RNG exposes the engine RNG so protocols can derive per-node sources.
func (e *Engine) RNG() *randx.RNG { return e.rng }

// Alive reports whether a node is connected in the current cycle.
func (e *Engine) Alive(id NodeID) bool { return e.alive[id] }

// resampleChurn re-draws the connected set (uniform independent
// disconnections, Section 6.1.5).
func (e *Engine) resampleChurn() {
	if e.cfg.Churn == 0 {
		return
	}
	down := 0
	for i := range e.alive {
		e.alive[i] = !e.rng.Bernoulli(e.cfg.Churn)
		if !e.alive[i] {
			down++
		}
	}
	if e.cfg.OnChurn != nil {
		e.cfg.OnChurn(e.cycle, down)
	}
}

// RunCycle executes one cycle: every connected node, in random order,
// initiates one exchange with a peer from its view. It returns the
// number of exchanges that took place.
//
// The cycle's schedule is pre-drawn (see schedule), so RunCycle consumes
// the engine RNG exactly like the parallel path and DrawCycle do —
// protocol exchanges themselves never touch the engine RNG.
func (e *Engine) RunCycle(x Exchange) int {
	sched := e.schedule()
	for _, s := range sched {
		x(s.a, s.b, s.full)
	}
	e.cycle++
	return len(sched)
}

// Scheduled is one pre-drawn exchange of a cycle: initiator A contacts
// responder B; Full=false marks a half-completed exchange (the responder
// disconnects mid-exchange and never applies its update, Section 6.1.5).
type Scheduled struct {
	A, B NodeID
	Full bool
}

// DrawCycle advances the engine by one cycle — churn resampling,
// initiator permutation, peer picks, mid-failure draws, accounting and
// sampler view updates, in the exact order RunCycle performs them — but
// executes no protocol exchanges, returning the schedule instead.
//
// This is the replication hook for the networked runtime: every peer
// holding the same seed and configuration mirrors an Engine, draws the
// same schedule, and executes its own participations over real
// connections. A run driven by DrawCycle schedules is exchange-for-
// exchange identical to a RunCycle simulation at the same seed.
func (e *Engine) DrawCycle() []Scheduled {
	sched := e.schedule()
	out := make([]Scheduled, len(sched))
	for i, s := range sched {
		out[i] = Scheduled{A: s.a, B: s.b, Full: s.full}
	}
	e.cycle++
	return out
}

// RunCycles runs the given number of cycles.
func (e *Engine) RunCycles(cycles int, x Exchange) {
	for i := 0; i < cycles; i++ {
		e.RunCycle(x)
	}
}

// AvgMessages returns the average number of messages sent per node.
func (e *Engine) AvgMessages() float64 {
	var total int64
	for _, m := range e.msgs {
		total += m
	}
	return float64(total) / float64(e.cfg.N)
}

// AvgBytes returns the average number of bytes sent per node.
func (e *Engine) AvgBytes() float64 {
	var total int64
	for _, b := range e.bytes {
		total += b
	}
	return float64(total) / float64(e.cfg.N)
}

// Messages returns the per-node sent-message counters (live slice).
func (e *Engine) Messages() []int64 { return e.msgs }
