package experiments

import (
	"fmt"
	"math"

	"chiaroscuro/internal/dp"
)

// Table2 echoes the experimental parameters actually used at the given
// scale, mirroring the paper's Table 2.
func Table2(p Params) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Experimental Parameters",
		Columns: []string{"group", "parameter", "paper", "this run"},
	}
	s := p.Scale
	t.AddRow("Dataset", "Number of time-series", "3M (CER), 1.2M (NUMED)",
		fmt.Sprintf("%d (CER), %d (NUMED)", s.cerSize(), s.numedSize()))
	t.AddRow("Dataset", "Size of time-series", "24 (CER), 20 (NUMED)", "24 (CER), 20 (NUMED)")
	t.AddRow("Privacy", "Key size", "1024 bits", fmt.Sprintf("%d bits", s.keyBits()))
	t.AddRow("Privacy", "Key-shares threshold", "0.001%–10%", "0.001%–10% (fig4b grid)")
	t.AddRow("Privacy", "Privacy budget", "ε = 0.69", fmt.Sprintf("ε = %.4f (ln 2)", math.Ln2))
	t.AddRow("Privacy", "Nb of noise-shares", "nν = 100%", "nν = population size")
	t.AddRow("k-means", "Initial nb of centroids", "k = 50", fmt.Sprintf("k = %d", s.k()))
	t.AddRow("GOSSIP", "Size of the local view", "30", "30 (newscast sampler)")
	t.AddRow("GOSSIP", "Churn", "10%–50%", "10%–50% (fig3a/fig3b)")
	t.AddRow("Quality", "Floor size (GF)", "4", "4")
	t.AddRow("Quality", "Max nb of iterations", "5 (UF only), 10", "5 (UF only), 10")
	t.AddRow("Quality", "Moving average (SMA)", "20%", "20%")
	ne := dp.Theorem3Exchanges(1_000_000, 1, 1e-12, 1-dp.DeltaAtom(0.995, 480))
	t.AddRow("GOSSIP", "Exchanges (Theorem 3 example)", "47", fmt.Sprintf("%d", ne))
	t.Note("scale preset: %s", s)
	return t, nil
}
