package experiments

import (
	"math"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/dpkmeans"
	"chiaroscuro/internal/randx"
)

// Ablation quantifies the design decisions DESIGN.md §4 calls out, on
// one CER workload: SMA smoothing, the aberrant-mean filter, the
// sum/count budget split, and the footnote-9 smarter termination. Each
// row reports the best pre-perturbation inertia (lower is better), the
// centroids surviving at that iteration, and the ε actually spent.
func Ablation(p Params) (*Table, error) {
	rng := randx.New(p.Seed, 0xAB1A)
	size := p.Scale.cerSize() / 2
	if size < 4000 {
		size = 4000
	}
	data, _ := datasets.GenerateCER(size, rng)
	k := p.Scale.k()
	seeds := datasets.SeedCentroids("cer", k, rng)

	type variant struct {
		name string
		cfg  func() dpkmeans.Config
	}
	base := func() dpkmeans.Config {
		return dpkmeans.Config{
			InitCentroids: seeds,
			Budget:        dp.Greedy{Eps: math.Ln2},
			DMin:          datasets.CERMin, DMax: datasets.CERMax,
			Smooth:        true,
			MaxIterations: 10,
		}
	}
	variants := []variant{
		{"baseline (G_SMA, filter, split .5)", base},
		{"no SMA smoothing", func() dpkmeans.Config {
			c := base()
			c.Smooth = false
			return c
		}},
		{"no aberrant filter (slack 1e9)", func() dpkmeans.Config {
			c := base()
			c.RangeSlack = 1e9
			c.CountFloor = 1e-9
			return c
		}},
		{"budget split .9 to sums", func() dpkmeans.Config {
			c := base()
			c.SumShare = 0.9
			return c
		}},
		{"budget split .1 to sums", func() dpkmeans.Config {
			c := base()
			c.SumShare = 0.1
			return c
		}},
		{"smarter termination (footnote 9)", func() dpkmeans.Config {
			c := base()
			c.StopOnQualityDrop = true
			c.QualityPatience = 2
			return c
		}},
	}

	t := &Table{
		ID:    "ablation",
		Title: "Ablations of the Quality Heuristics (CER, GREEDY, ε=ln2)",
		Columns: []string{
			"variant", "best inertia", "mid-run inertia (it.2-5)",
			"centroids@5", "iterations run", "ε spent",
		},
	}
	reps := p.Scale.repetitions()
	for _, v := range variants {
		var inertia, midInertia, centroids, iters, eps float64
		for rep := 0; rep < reps; rep++ {
			cfg := v.cfg()
			cfg.RNG = randx.New(p.Seed+uint64(rep)+11, 0xAB1A)
			res, err := dpkmeans.Run(data, cfg)
			if err != nil {
				return nil, err
			}
			_, best := res.BestIteration()
			inertia += best.PreInertia
			// The discriminating metric: iteration 1 is identical across
			// variants by construction (its partition predates any
			// perturbation), so quality differences show in how well the
			// *subsequent* iterations survive the noise.
			var mid float64
			var midN, c5 int
			for _, s := range res.Stats {
				if s.Iteration >= 2 && s.Iteration <= 5 {
					mid += s.PreInertia
					midN++
				}
				if s.Iteration == 5 {
					c5 = s.CentroidsOut
				}
			}
			if midN > 0 {
				midInertia += mid / float64(midN)
			}
			centroids += float64(c5)
			iters += float64(len(res.Stats))
			eps += res.TotalEpsilon
		}
		r := float64(reps)
		t.AddRow(v.name, f(inertia/r), f(midInertia/r), f(centroids/r), f(iters/r), f(eps/r))
	}
	t.Note("%d series, k=%d, averaged over %d run(s); lower inertia is better", size, k, reps)
	t.Note("smarter termination should cut iterations (and unspent ε) without hurting the best inertia")
	return t, nil
}
