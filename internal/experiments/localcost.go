package experiments

import (
	"fmt"
	"math"
	"math/big"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/randx"
)

// meansSetDims mirrors Figure 5's sizing: 50 means of 20 measures each
// (plus the encrypted count per mean, as the Diptych carries).
const (
	figure5Means    = 50
	figure5Measures = 20
)

// Fig5a measures the local times for encrypting a set of means,
// homomorphically adding two sets, partially decrypting one set (the
// per-exchange work of the epidemic decryption), and combining τ partial
// decryptions — the per-participant costs of Section 6.3.1.
func Fig5a(p Params) (*Table, error) {
	sch, err := damgardjurik.NewTestScheme(p.Scale.keyBits(), 1, 5, 3)
	if err != nil {
		return nil, err
	}
	dim := figure5Means * (figure5Measures + 1)
	codec := homenc.NewCodec(0)
	rng := randx.New(p.Seed, 0xF15A)

	plain := make([]*big.Int, dim)
	for i := range plain {
		plain[i] = codec.Encode(rng.Uniform(0, 80))
	}

	// Encrypt one set.
	encTimes := make([]time.Duration, dim)
	cts := make([]homenc.Ciphertext, dim)
	for i, m := range plain {
		start := time.Now()
		cts[i] = sch.Encrypt(m)
		encTimes[i] = time.Since(start)
	}
	// Add two sets.
	addTimes := make([]time.Duration, dim)
	for i := range cts {
		start := time.Now()
		sch.Add(cts[i], cts[(i+1)%dim])
		addTimes[i] = time.Since(start)
	}
	// Partial decryption of one set (one key-share pass).
	partTimes := make([]time.Duration, dim)
	parts := make([][]homenc.PartialDecryption, dim)
	for i, c := range cts {
		start := time.Now()
		ps := make([]homenc.PartialDecryption, 0, sch.Threshold())
		for idx := 1; idx <= sch.Threshold(); idx++ {
			pd, err := sch.PartialDecrypt(idx, c)
			if err != nil {
				return nil, err
			}
			ps = append(ps, pd)
		}
		partTimes[i] = time.Since(start)
		parts[i] = ps
	}
	// Combine τ partials into plaintexts.
	combTimes := make([]time.Duration, dim)
	for i, c := range cts {
		start := time.Now()
		if _, err := sch.Combine(c, parts[i]); err != nil {
			return nil, err
		}
		combTimes[i] = time.Since(start)
	}

	t := &Table{
		ID:      "fig5a",
		Title:   "Local Times for One Set of 50 Means (20 Measures per Mean)",
		Columns: []string{"operation", "min (s)", "max (s)", "avg (s)", "set total (s)"},
	}
	t.AddRow(statRow("Encrypt", encTimes)...)
	t.AddRow(statRow("Add", addTimes)...)
	t.AddRow(statRow("Decrypt (τ partials)", partTimes)...)
	t.AddRow(statRow("Decrypt (combine)", combTimes)...)
	t.Note("key size %d bits, s=1, threshold τ=%d of %d shares", p.Scale.keyBits(), sch.Threshold(), sch.NumShares())
	t.Note("the paper's 'Decrypt' aggregates partial decryption and combination; Add ≪ Decrypt by ~2 orders of magnitude")
	return t, nil
}

func statRow(op string, ds []time.Duration) []string {
	min, max := time.Duration(math.MaxInt64), time.Duration(0)
	var total time.Duration
	for _, d := range ds {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
		total += d
	}
	avg := total / time.Duration(len(ds))
	return []string{
		op,
		fmt.Sprintf("%.3g", min.Seconds()),
		fmt.Sprintf("%.3g", max.Seconds()),
		fmt.Sprintf("%.3g", avg.Seconds()),
		fmt.Sprintf("%.3g", total.Seconds()),
	}
}

// fig5bPackedDegree is the Damgård–Jurik degree of the packed rows:
// s=4 leaves enough plaintext room for multiple guarded slots at every
// scale's key size (s=1, the unpacked baseline, never has room).
const fig5bPackedDegree = 4

// fig5bDeployment is the representative deployment the packed layout is
// sized for: a 1000-participant CER-like run with a 20-cycle sum phase.
// The guard bands come from the protocol's own headroom math
// (core.PackingFor), so the reported slot counts are exactly what a run
// with these parameters would use.
func fig5bDeployment() (core.Config, int, int) {
	const np, seriesDim = 1000, figure5Measures
	cfg := core.Config{
		K:    figure5Means,
		DMin: 0, DMax: 80, // CER measure range
		Epsilon:       math.Ln2,
		MaxIterations: 10,
		Exchanges:     20,
	}
	return cfg.Normalize(np), np, seriesDim
}

// Fig5b reports the bandwidth for transferring one set of encrypted
// means, in the paper's accounting (one key-length per encrypted
// value), in this implementation's exact accounting per degree
// ((s+1)·key bits per Damgård–Jurik ciphertext — the old table
// hard-coded s=1), and with ciphertext packing on the s>=2 degree,
// where ⌈dim/slots⌉ ciphertexts carry the whole set.
func Fig5b(p Params) (*Table, error) {
	dim := figure5Means * (figure5Measures + 1)
	paperAccounting := figure5Means * figure5Measures * p.Scale.keyBits() / 8

	t := &Table{
		ID:      "fig5b",
		Title:   "Bandwidth for Transferring One Set of 50 Means (kB)",
		Columns: []string{"accounting", "kB per set", "kB per sum exchange (2 sets)", "kB per decrypt exchange (4 sets)"},
	}
	addRow := func(label string, setBytes int) {
		t.AddRow(label,
			f(float64(setBytes)/1024),
			f(float64(2*setBytes)/1024),
			f(float64(4*setBytes)/1024))
	}
	addRow("paper (key-bits per value, sums only)", paperAccounting)

	cfg, np, seriesDim := fig5bDeployment()
	var baseline, packedBytes, packedLen int
	for _, degree := range []int{1, fig5bPackedDegree} {
		sch, err := damgardjurik.NewTestScheme(p.Scale.keyBits(), degree, 5, 3)
		if err != nil {
			return nil, err
		}
		ctBytes := sch.CiphertextBytes()
		addRow(fmt.Sprintf("this implementation (s=%d, (s+1)·key-bits, sums+counts)", sch.S), dim*ctBytes)
		if degree == 1 {
			baseline = dim * ctBytes
			continue
		}
		pack, err := core.PackingFor(cfg, np, seriesDim, sch)
		if err != nil {
			return nil, err
		}
		packedLen = pack.PackedLen(dim)
		packedBytes = packedLen * ctBytes
		addRow(fmt.Sprintf("this implementation (s=%d, packed, %d slots)", sch.S, pack.Slots), packedBytes)
		t.Note("packed: %d ciphertexts instead of %d (%d slots of %d bits; guard band sized for %d-participant, %d-exchange runs)",
			pack.PackedLen(dim), dim, pack.Slots, pack.SlotBits, np, cfg.Exchanges)
	}
	t.Note("key size %d bits; %d encrypted values per set", p.Scale.keyBits(), dim)
	t.Note("packing divides the same-degree set volume by %.2f; net vs the s=1 baseline: %.2f×",
		float64(dim)/float64(packedLen), float64(baseline)/float64(packedBytes))
	t.Note("at a humble 1 Mb/s uplink, one unpacked s=1 set transfers in ~%.1f s, the packed set in ~%.1f s",
		float64(baseline*8)/1e6, float64(packedBytes*8)/1e6)
	return t, nil
}
