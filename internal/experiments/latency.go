package experiments

import (
	"fmt"
	"math"
	"sort"

	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/sim"
)

// Fig3b measures the relative error of the epidemic sum after a fixed
// message budget (~100 messages per participant) under per-exchange
// churn .1/.25/.5, across population sizes.
func Fig3b(p Params) (*Table, error) {
	t := &Table{
		ID:      "fig3b",
		Title:   "Churn-Enabled: Relative Error of the Epidemic Sum (100 Messages per Participant)",
		Columns: []string{"population", "churn .1", "churn .25", "churn .5"},
	}
	const cycles = 50 // 2 messages per node per cycle ⇒ ~100 messages
	// The residual drift is heavy-tailed (an early corruption of the
	// weight-holding node dominates whole runs), so the median over more
	// repetitions is the meaningful statistic at sub-paper populations.
	reps := 3 * p.Scale.repetitions()
	for _, np := range p.Scale.populations() {
		row := []string{fmt.Sprintf("%d", np)}
		for _, churn := range []float64{0.1, 0.25, 0.5} {
			errs := make([]float64, 0, reps)
			for rep := 0; rep < reps; rep++ {
				e, err := sim.New(sim.Config{
					N:          np,
					Seed:       p.Seed + uint64(rep)*97,
					Churn:      churn,
					MidFailure: true,
				}, &sim.UniformSampler{})
				if err != nil {
					return nil, err
				}
				vals := make([]float64, np)
				for i := range vals {
					vals[i] = 1 // the paper's setting: local data = 1
				}
				s := gossip.NewSum(vals, 0)
				e.RunCycles(cycles, s.Exchange)
				errs = append(errs, s.MeanRelError(float64(np)))
			}
			row = append(row, f(median(errs)))
		}
		t.AddRow(row...)
	}
	t.Note("mid-exchange failure window 5%% of a cycle; error is the residual mass drift")
	t.Note("median over %d runs (the drift distribution is heavy-tailed)", reps)
	return t, nil
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Fig4a measures the messages per node the epidemic sum needs to reach
// absolute approximation errors 0.001..1, plus the dissemination latency
// of the min-identifier broadcast, across populations. Both the
// idealized uniform sampler ("tendencies") and the Newscast bounded view
// ("realistic") are reported.
func Fig4a(p Params) (*Table, error) {
	t := &Table{
		ID:    "fig4a",
		Title: "Epidemic Sum and Dissemination: Messages per Node vs Population",
		Columns: []string{
			"population", "sampler",
			"err ±0.001", "err ±0.01", "err ±0.1", "err ±1", "dissemination",
		},
	}
	targets := []float64{0.001, 0.01, 0.1, 1}
	for _, np := range p.Scale.populations() {
		for _, realistic := range []bool{false, true} {
			if realistic && np > 300_000 {
				continue // bounded-view state at >300K nodes exceeds the platform budget
			}
			row := []string{fmt.Sprintf("%d", np), samplerName(realistic)}
			for _, target := range targets {
				e, err := newEngine(np, p.Seed, realistic)
				if err != nil {
					return nil, err
				}
				vals := make([]float64, np)
				for i := range vals {
					vals[i] = 1
				}
				s := gossip.NewSum(vals, 0)
				s.RunUntil(e, float64(np), target, 200)
				row = append(row, f(e.AvgMessages()))
			}
			// Dissemination latency of the smallest-identifier value.
			e, err := newEngine(np, p.Seed+1, realistic)
			if err != nil {
				return nil, err
			}
			ids := make([]uint64, np)
			vals := make([]float64, np)
			rng := randx.New(p.Seed, 0xD155)
			for i := range ids {
				ids[i] = rng.Uint64()
			}
			d := gossip.NewDissemination(ids, vals)
			d.RunUntilConverged(e, 200)
			row = append(row, f(e.AvgMessages()))
			t.AddRow(row...)
		}
	}
	t.Note("messages grow logarithmically with the population (Theorem 3)")
	return t, nil
}

func samplerName(realistic bool) string {
	if realistic {
		return "newscast-30"
	}
	return "uniform"
}

func newEngine(np int, seed uint64, realistic bool) (*sim.Engine, error) {
	var sampler sim.Sampler = &sim.UniformSampler{}
	if realistic {
		sampler = &sim.NewscastSampler{ViewSize: 30}
	}
	return sim.New(sim.Config{N: np, Seed: seed}, sampler)
}

// Fig4b measures the messages per peer the epidemic decryption needs to
// gather τ distinct key-shares, for τ = 0.001%..10% of the population.
// Exact simulation runs where the n·τ state fits the platform (the same
// limitation the paper reports at one million participants); the
// closed-form coupon-collector tendency covers the full grid.
func Fig4b(p Params) (*Table, error) {
	t := &Table{
		ID:      "fig4b",
		Title:   "Epidemic Decryption: Messages per Peer vs Key-Share Threshold",
		Columns: []string{"population", "tau fraction", "tau", "tendency", "simulated"},
	}
	fractions := []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	// Total simulated exchange budget per cell, mirroring the paper's
	// platform limit.
	var exchangeBudget float64
	switch p.Scale {
	case CI:
		exchangeBudget = 2e6
	case Small:
		exchangeBudget = 5e7
	default:
		exchangeBudget = 5e8
	}
	for _, np := range p.Scale.populations() {
		for _, frac := range fractions {
			tau := int(frac * float64(np))
			if tau < 1 {
				continue // threshold below one share is meaningless
			}
			tendency := eesum.ExpectedDecryptMessages(np, tau)
			row := []string{fmt.Sprintf("%d", np), f(frac), fmt.Sprintf("%d", tau)}
			// Expected total exchanges ≈ np·tendency/2.
			if float64(np)*tendency/2 > exchangeBudget {
				row = append(row, f(tendency), "- (platform limit)")
				t.AddRow(row...)
				continue
			}
			exact := float64(np)*float64(tau) < 5e7 // state budget
			rng := randx.New(p.Seed, 0xDEC)
			dl, err := eesum.NewDecryptionLatency(np, tau, exact, rng)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(sim.Config{N: np, Seed: p.Seed + uint64(tau)}, &sim.UniformSampler{})
			if err != nil {
				return nil, err
			}
			maxCycles := int(4*tendency) + 200
			for c := 0; c < maxCycles; c++ {
				e.RunCycle(dl.Exchange)
				if dl.FractionDone() >= 1 {
					break
				}
			}
			mode := "exact"
			if !exact {
				mode = "mean-field"
			}
			row = append(row, f(tendency), fmt.Sprintf("%s (%s)", f(e.AvgMessages()), mode))
			t.AddRow(row...)
		}
	}
	t.Note("tendency: coupon-collector bound n·ln(n/(n-τ)) ≈ τ for τ ≪ n")
	t.Note("linear growth in τ, matching the paper; cells beyond the exchange budget mirror the paper's platform limit")
	return t, nil
}

// theoreticalSumError estimates the push-pull error decay for sanity
// notes (exported for tests).
func theoreticalSumError(cycles int) float64 {
	// Variance reduction ≈ (2√e)^-1 per cycle (Jelasity et al. 2005).
	return math.Pow(1/(2*math.Sqrt(math.E)), float64(cycles))
}
