package experiments

import (
	"fmt"
	"math"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/dpkmeans"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// Fig6 reproduces the Appendix D illustration: k-means over the
// replicated A3 2-D point set, in the clear versus Chiaroscuro (GREEDY,
// no smoothing — 2-D points have no temporal axis to smooth), both taken
// at iteration 6. The table reports, for each method, how many centroids
// landed within capture radii of a true cluster center, plus the
// centroid coordinates for plotting.
func Fig6(p Params) (*Table, error) {
	rng := randx.New(p.Seed, 0xF16)
	base, _ := datasets.GenerateA3Base(rng)
	data := datasets.ReplicateJitter(base, p.Scale.a3Replicas(), 0.5, rng)

	// True centers: per-cluster means of the base set.
	trueCenters := make([][2]float64, datasets.A3Clusters)
	perCluster := datasets.A3BasePts / datasets.A3Clusters
	for c := 0; c < datasets.A3Clusters; c++ {
		var sx, sy float64
		for i := 0; i < perCluster; i++ {
			row := base.Row(c*perCluster + i)
			sx += row[0]
			sy += row[1]
		}
		trueCenters[c] = [2]float64{sx / float64(perCluster), sy / float64(perCluster)}
	}

	seeds := datasets.SeedCentroids("a3", datasets.A3Clusters, rng)
	const iterations = 6

	clear, err := kmeans.Run(data, kmeans.Config{
		InitCentroids: seeds,
		MaxIterations: iterations,
		Threshold:     0,
	})
	if err != nil {
		return nil, err
	}
	private, err := dpkmeans.Run(data, dpkmeans.Config{
		InitCentroids: seeds,
		Budget:        dp.Greedy{Eps: math.Ln2},
		DMin:          datasets.A3Min, DMax: datasets.A3Max,
		Smooth:        false,
		MaxIterations: iterations,
		KeepHistory:   true,
		RNG:           randx.New(p.Seed+1, 0xF16),
	})
	if err != nil {
		return nil, err
	}
	// The paper plots "the highest-quality iteration for the perturbed
	// k-means" (iteration 6 at its scale); take the best iteration here
	// too, which is scale-appropriate.
	bestIt, _ := private.BestIteration()
	privCentroids := private.Centroids
	if bestIt >= 1 && bestIt <= len(private.History) {
		privCentroids = private.History[bestIt-1]
	}

	t := &Table{
		ID:      "fig6",
		Title:   "A3 2-D Points: Centroid Capture, Clear vs Chiaroscuro (GREEDY, best iteration)",
		Columns: []string{"method", "centroids", "within r=2", "within r=5", "mean dist to nearest true center"},
	}
	for _, m := range []struct {
		name string
		cs   [][2]float64
	}{
		{"in the clear", toXY(clear.Centroids)},
		{fmt.Sprintf("chiaroscuro (G, it. %d)", bestIt), toXY(privCentroids)},
	} {
		w2, w5, meanD := capture(m.cs, trueCenters)
		t.AddRow(m.name, fmt.Sprintf("%d", len(m.cs)), fmt.Sprintf("%d", w2), fmt.Sprintf("%d", w5), f(meanD))
	}
	t.Note("%d points (%d base × %d replicas), 50 true clusters, ε=ln2", data.Len(), base.Len(), p.Scale.a3Replicas())
	t.Note("perturbed centroids land within or near actual clusters, mirroring Figure 6(b)")
	return t, nil
}

func toXY(cs []timeseries.Series) [][2]float64 {
	out := make([][2]float64, 0, len(cs))
	for _, c := range cs {
		if len(c) == 2 {
			out = append(out, [2]float64{c[0], c[1]})
		}
	}
	return out
}

func capture(cs [][2]float64, centers [][2]float64) (w2, w5 int, meanD float64) {
	for _, c := range cs {
		best := math.Inf(1)
		for _, tc := range centers {
			dx, dy := c[0]-tc[0], c[1]-tc[1]
			if d := math.Sqrt(dx*dx + dy*dy); d < best {
				best = d
			}
		}
		if best <= 2 {
			w2++
		}
		if best <= 5 {
			w5++
		}
		meanD += best
	}
	if len(cs) > 0 {
		meanD /= float64(len(cs))
	}
	return w2, w5, meanD
}
