package experiments

import (
	"fmt"

	"chiaroscuro/internal/dp"
)

// Thm3 tabulates the Theorem 3 / Appendix B machinery: the number of
// gossip exchanges per participant required to reach a target
// approximation error with the target probability, across populations —
// including the paper's worked example (δ=0.995, e_max=1e-12, s²=1,
// n_it^max=10, n=24, np=1e6 ⇒ 47 exchanges).
func Thm3(p Params) (*Table, error) {
	t := &Table{
		ID:      "thm3",
		Title:   "Theorem 3: Gossip Exchanges Required per Participant",
		Columns: []string{"population", "e_max 1e-3", "e_max 1e-6", "e_max 1e-9", "e_max 1e-12"},
	}
	const (
		delta  = 0.995
		maxIt  = 10
		series = 24
	)
	dAtom := dp.DeltaAtom(delta, maxIt*2*series)
	iota := 1 - dAtom
	for _, np := range []int{1_000, 10_000, 100_000, 1_000_000} {
		row := []string{fmt.Sprintf("%d", np)}
		for _, emax := range []float64{1e-3, 1e-6, 1e-9, 1e-12} {
			row = append(row, fmt.Sprintf("%d", dp.Theorem3Exchanges(np, 1, emax, iota)))
		}
		t.AddRow(row...)
	}
	t.Note("δ=%.3f over %d iterations × 2×%d values ⇒ δ_atom=%.6f, ι=%.2e", delta, maxIt, series, dAtom, iota)
	t.Note("paper's worked example: np=1e6, e_max=1e-12 ⇒ 47 exchanges")
	return t, nil
}
