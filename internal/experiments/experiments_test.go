package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func ciParams() Params { return Params{Scale: CI, Seed: 1} }

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"ci": CI, "small": Small, "PAPER": Paper} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("big"); err == nil {
		t.Error("unknown scale must fail")
	}
	if CI.String() != "ci" || Small.String() != "small" || Paper.String() != "paper" {
		t.Error("Scale.String")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation",
		"fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2f",
		"fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig5b", "fig6",
		"table2", "thm3",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], id)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Note("note %d", 7)
	text := tab.String()
	if !strings.Contains(text, "== x — T ==") || !strings.Contains(text, "# note 7") {
		t.Errorf("rendered table missing parts:\n%s", text)
	}
	csv := tab.CSV()
	if csv != "a,bb\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 12 {
		t.Errorf("table2 has %d rows", len(tab.Rows))
	}
	// The Theorem 3 worked example must reproduce the paper's 47.
	found := false
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "Theorem 3") && row[3] == "47" {
			found = true
		}
	}
	if !found {
		t.Error("Theorem 3 example row missing or wrong")
	}
}

func TestFig2aShape(t *testing.T) {
	tab, err := Fig2a(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 10 { // iteration + 9 strategies
		t.Fatalf("fig2a has %d columns", len(tab.Columns))
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("fig2a has %d rows", len(tab.Rows))
	}
	// The unperturbed curve must be non-increasing.
	prev := 1e18
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if v > prev*(1+1e-9) {
			t.Errorf("unperturbed inertia increased: %v after %v", v, prev)
		}
		prev = v
	}
	// UF(5) variants stop after 5 iterations.
	for i, col := range tab.Columns {
		if strings.HasPrefix(col, "UF_SMA (5") {
			if tab.Rows[6][i] != "-" {
				t.Errorf("UF(5) column %q shows data at iteration 7: %q", col, tab.Rows[6][i])
			}
		}
	}
}

func TestFig2cCentroidAttrition(t *testing.T) {
	tab, err := Fig2c(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	// Find the G (no smoothing) column: centroid counts must be
	// non-increasing over iterations where present.
	gCol := -1
	for i, c := range tab.Columns {
		if c == "G" {
			gCol = i
		}
	}
	if gCol < 0 {
		t.Fatal("no G column")
	}
	prev := 1e18
	for _, row := range tab.Rows {
		if row[gCol] == "-" {
			continue
		}
		v, _ := strconv.ParseFloat(row[gCol], 64)
		if v > prev+1e-9 {
			t.Errorf("G centroid count increased: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestFig2ePrePostOrdering(t *testing.T) {
	tab, err := Fig2e(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	measurable := 0
	for _, row := range tab.Rows {
		if row[2] == "-" {
			continue // noise killed every centroid at CI scale
		}
		pre, err1 := strconv.ParseFloat(row[1], 64)
		post, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad PRE/POST cells %v", row)
		}
		if post < pre*(1-1e-9) {
			t.Errorf("%s: POST %v < PRE %v", row[0], post, pre)
		}
		measurable++
	}
	if measurable < 4 {
		t.Errorf("only %d strategies had measurable POST", measurable)
	}
}

func TestFig3aShape(t *testing.T) {
	tab, err := Fig3a(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 5 || len(tab.Rows) != 10 {
		t.Errorf("fig3a shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}

func TestFig3bErrorsSmall(t *testing.T) {
	tab, err := Fig3b(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			// The drift floor scales ~1/√population: at the CI grid
			// (1K–10K nodes) it sits orders above the paper's
			// million-node <0.1%, but must stay a small fraction.
			if v < 0 || v > 0.25 {
				t.Errorf("churn sum error %v out of the expected band", v)
			}
		}
	}
}

func TestFig4aLogGrowth(t *testing.T) {
	if testing.Short() {
		// Fig4a sweeps populations up to 10K nodes; minutes under -race.
		t.Skip("fig4a population sweep is not short")
	}
	tab, err := Fig4a(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	// Messages at 10K must be within a small additive band of 1K for
	// the uniform sampler (log growth), at the tightest error target.
	var at1k, at10k float64
	for _, row := range tab.Rows {
		if row[1] != "uniform" {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		switch row[0] {
		case "1000":
			at1k = v
		case "10000":
			at10k = v
		}
	}
	if at1k == 0 || at10k == 0 {
		t.Fatal("missing populations in fig4a")
	}
	if at10k > at1k*2 {
		t.Errorf("messages grow too fast with population: %v -> %v", at1k, at10k)
	}
	if at10k > 150 {
		t.Errorf("messages per node %v too high (paper: under ~100)", at10k)
	}
}

func TestFig4bLinearInTau(t *testing.T) {
	tab, err := Fig4b(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	// At population 10K, the tendency for tau fraction 1e-2 must be ~10x
	// the one for 1e-3.
	var t3, t2 float64
	for _, row := range tab.Rows {
		if row[0] != "10000" {
			continue
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad tendency %q", row[3])
		}
		switch row[1] {
		case "0.001":
			t3 = v
		case "0.01":
			t2 = v
		}
	}
	if t3 == 0 || t2 == 0 {
		t.Fatal("missing tau rows in fig4b")
	}
	if ratio := t2 / t3; ratio < 8 || ratio > 12 {
		t.Errorf("tendency ratio %v, want ~10 (linear in tau)", ratio)
	}
}

func TestFig5aOrdering(t *testing.T) {
	tab, err := Fig5a(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	get := func(op string) float64 {
		for _, row := range tab.Rows {
			if row[0] == op {
				v, err := strconv.ParseFloat(row[3], 64) // avg column
				if err != nil {
					t.Fatalf("bad avg for %s: %q", op, row[3])
				}
				return v
			}
		}
		t.Fatalf("missing row %s", op)
		return 0
	}
	add := get("Add")
	enc := get("Encrypt")
	dec := get("Decrypt (τ partials)") + get("Decrypt (combine)")
	if !(add < enc && enc < dec) {
		t.Errorf("cost ordering broken: add=%v enc=%v dec=%v (want add < enc < dec)", add, enc, dec)
	}
}

func TestFig5bAccounting(t *testing.T) {
	tab, err := Fig5b(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	// paper accounting, s=1 exact, s=4 exact, s=4 packed.
	if len(tab.Rows) != 4 {
		t.Fatalf("fig5b rows = %d", len(tab.Rows))
	}
	paper, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	ours, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	if ours <= paper {
		t.Errorf("exact accounting (%v kB) should exceed the paper's (%v kB)", ours, paper)
	}
	s4, _ := strconv.ParseFloat(tab.Rows[2][1], 64)
	packed, _ := strconv.ParseFloat(tab.Rows[3][1], 64)
	if packed >= s4 {
		t.Errorf("packed set (%v kB) should undercut the same-degree unpacked set (%v kB)", packed, s4)
	}
	if packed >= ours {
		t.Errorf("packed set (%v kB) should undercut the s=1 baseline (%v kB) even at the CI key size", packed, ours)
	}
	// At the paper's scale the first row reproduces ~125 kB.
	tabP, err := Fig5b(Params{Scale: Paper, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	paperKB, _ := strconv.ParseFloat(tabP.Rows[0][1], 64)
	if paperKB < 115 || paperKB > 135 {
		t.Errorf("paper-accounting bandwidth %v kB, want ~125 (Figure 5b)", paperKB)
	}
}

func TestFig6Capture(t *testing.T) {
	tab, err := Fig6(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("fig6 rows = %d", len(tab.Rows))
	}
	clearW5, _ := strconv.Atoi(tab.Rows[0][3])
	privW5, _ := strconv.Atoi(tab.Rows[1][3])
	if clearW5 < 40 {
		t.Errorf("clear k-means captured only %d/50 clusters", clearW5)
	}
	// At CI scale (30K points) the per-cluster DP noise is 25x the
	// paper's 750K-point setting, so the capture bar is proportionate.
	if privW5 < 10 {
		t.Errorf("chiaroscuro captured only %d/50 clusters within r=5", privW5)
	}
	if privW5 > clearW5 {
		t.Errorf("perturbed (%d) cannot beat clear (%d)", privW5, clearW5)
	}
}

func TestTheoreticalSumError(t *testing.T) {
	if theoreticalSumError(10) >= theoreticalSumError(5) {
		t.Error("error must decay with cycles")
	}
}

func TestAblationShape(t *testing.T) {
	tab, err := Ablation(ciParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("ablation rows = %d, want 6", len(tab.Rows))
	}
	get := func(name string, col int) float64 {
		for _, row := range tab.Rows {
			if row[0] == name {
				v, err := strconv.ParseFloat(row[col], 64)
				if err != nil {
					t.Fatalf("bad cell %q for %s", row[col], name)
				}
				return v
			}
		}
		t.Fatalf("missing variant %s", name)
		return 0
	}
	baseEps := get("baseline (G_SMA, filter, split .5)", 5)
	if baseEps > math.Ln2*(1+1e-9) {
		t.Errorf("baseline overspent ε: %v", baseEps)
	}
	// The smarter termination must not run longer than the baseline.
	if get("smarter termination (footnote 9)", 4) > get("baseline (G_SMA, filter, split .5)", 4) {
		t.Error("footnote-9 termination ran longer than the fixed cap")
	}
}
