package experiments

import (
	"fmt"
	"math"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/dpkmeans"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// strategySpec names one curve of Figure 2.
type strategySpec struct {
	label  string
	budget func(eps float64) dp.Budget // nil = no perturbation
	smooth bool
	maxIt  int
}

// cerStrategies are the nine curves of Figures 2(a)/2(c).
func cerStrategies() []strategySpec {
	return []strategySpec{
		{"No perturbation", nil, false, 10},
		{"UF_SMA (10 it.)", func(e float64) dp.Budget { return dp.UniformFast{Eps: e, Limit: 10} }, true, 10},
		{"UF (10 it.)", func(e float64) dp.Budget { return dp.UniformFast{Eps: e, Limit: 10} }, false, 10},
		{"UF_SMA (5 it.)", func(e float64) dp.Budget { return dp.UniformFast{Eps: e, Limit: 5} }, true, 5},
		{"UF (5 it.)", func(e float64) dp.Budget { return dp.UniformFast{Eps: e, Limit: 5} }, false, 5},
		{"G_SMA", func(e float64) dp.Budget { return dp.Greedy{Eps: e} }, true, 10},
		{"G", func(e float64) dp.Budget { return dp.Greedy{Eps: e} }, false, 10},
		{"GF_SMA (4 it./floor)", func(e float64) dp.Budget { return dp.GreedyFloor{Eps: e, Floor: 4} }, true, 10},
		{"GF (4 it./floor)", func(e float64) dp.Budget { return dp.GreedyFloor{Eps: e, Floor: 4} }, false, 10},
	}
}

// numedStrategies are the five curves of Figures 2(b)/2(d) (the paper
// omits the non-smoothed variants on NUMED: they coincide with SMA).
func numedStrategies() []strategySpec {
	return []strategySpec{
		{"No perturbation", nil, false, 10},
		{"UF_SMA (10 it.)", func(e float64) dp.Budget { return dp.UniformFast{Eps: e, Limit: 10} }, true, 10},
		{"UF_SMA (5 it.)", func(e float64) dp.Budget { return dp.UniformFast{Eps: e, Limit: 5} }, true, 5},
		{"G_SMA", func(e float64) dp.Budget { return dp.Greedy{Eps: e} }, true, 10},
		{"GF_SMA (4 it./floor)", func(e float64) dp.Budget { return dp.GreedyFloor{Eps: e, Floor: 4} }, true, 10},
	}
}

// qualityRun is the averaged trace of one strategy.
type qualityRun struct {
	label     string
	inertia   []float64 // per iteration (0 = absent)
	centroids []float64
	bestPre   float64
	bestPost  float64
}

// qualityResult bundles everything Figures 2(a)-2(f) need for one dataset.
type qualityResult struct {
	dataset      string
	fullInertia  float64
	initialK     int
	runs         []qualityRun
	seriesCount  int
	seriesLength int
}

// runQuality executes the Figure 2 protocol for one dataset kind.
func runQuality(kind string, p Params, specs []strategySpec, churn float64) (*qualityResult, error) {
	rng := randx.New(p.Seed, 0xF162)
	var data *timeseries.Dataset
	var dmin, dmax float64
	switch kind {
	case "cer":
		data, _ = datasets.GenerateCER(p.Scale.cerSize(), rng)
		dmin, dmax = datasets.CERMin, datasets.CERMax
	case "numed":
		data, _ = datasets.GenerateNUMED(p.Scale.numedSize(), rng)
		dmin, dmax = datasets.NUMEDMin, datasets.NUMEDMax
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", kind)
	}
	k := p.Scale.k()
	seeds := datasets.SeedCentroids(kind, k, rng)
	reps := p.Scale.repetitions()
	const maxIt = 10
	eps := math.Ln2 // the paper's ε

	res := &qualityResult{
		dataset:      kind,
		fullInertia:  data.FullInertia(),
		initialK:     k,
		seriesCount:  data.Len(),
		seriesLength: data.Dim(),
	}
	for _, spec := range specs {
		run := qualityRun{
			label:     spec.label,
			inertia:   make([]float64, maxIt),
			centroids: make([]float64, maxIt),
		}
		var sumBestPre, sumBestPost float64
		counts := make([]int, maxIt)
		for rep := 0; rep < reps; rep++ {
			cfg := dpkmeans.Config{
				InitCentroids: seeds,
				DMin:          dmin, DMax: dmax,
				Smooth:        spec.smooth,
				MaxIterations: spec.maxIt,
				Churn:         churn,
				RNG:           randx.New(p.Seed+uint64(rep)+1, 0xF162),
			}
			if spec.budget != nil {
				cfg.Budget = spec.budget(eps)
			}
			out, err := dpkmeans.Run(data, cfg)
			if err != nil {
				return nil, err
			}
			for _, st := range out.Stats {
				i := st.Iteration - 1
				run.inertia[i] += st.PreInertia
				run.centroids[i] += float64(st.CentroidsOut)
				counts[i]++
			}
			_, best := out.BestIteration()
			sumBestPre += best.PreInertia
			sumBestPost += best.PostInertia
		}
		for i := range run.inertia {
			if counts[i] > 0 {
				run.inertia[i] /= float64(counts[i])
				run.centroids[i] /= float64(counts[i])
			}
		}
		run.bestPre = sumBestPre / float64(reps)
		run.bestPost = sumBestPost / float64(reps)
		res.runs = append(res.runs, run)
	}
	return res, nil
}

// evolutionTable renders iterations × strategies for either inertia or
// centroid counts.
func evolutionTable(id, title string, q *qualityResult, metric string) *Table {
	t := &Table{ID: id, Title: title}
	t.Columns = append([]string{"iteration"}, labels(q)...)
	const maxIt = 10
	for it := 0; it < maxIt; it++ {
		row := []string{fmt.Sprintf("%d", it+1)}
		for _, r := range q.runs {
			var v float64
			if metric == "inertia" {
				v = r.inertia[it]
			} else {
				v = r.centroids[it]
			}
			if v == 0 {
				row = append(row, "-") // strategy stopped (budget/iteration cap)
			} else {
				row = append(row, f(v))
			}
		}
		t.AddRow(row...)
	}
	if metric == "inertia" {
		t.Note("dataset inertia (constant upper bound): %s", f(q.fullInertia))
	} else {
		t.Note("initial number of centroids: %d", q.initialK)
	}
	t.Note("%s: %d series of length %d, ε=ln2, averaged over runs", q.dataset, q.seriesCount, q.seriesLength)
	return t
}

func labels(q *qualityResult) []string {
	out := make([]string, len(q.runs))
	for i, r := range q.runs {
		out[i] = r.label
	}
	return out
}

// prePostTable renders Figures 2(e)/2(f): lowest pre-perturbation
// inertia and its post-perturbation counterpart per strategy.
func prePostTable(id, title string, q *qualityResult) *Table {
	t := &Table{ID: id, Title: title, Columns: []string{"strategy", "PRE", "POST"}}
	for _, r := range q.runs {
		post := f(r.bestPost)
		if r.bestPost == 0 && r.bestPre > 0 {
			post = "-" // every released centroid died: POST unmeasurable
		}
		t.AddRow(r.label, f(r.bestPre), post)
	}
	t.Note("PRE: lowest pre-perturbation intra-cluster inertia over the run")
	t.Note("POST: inertia of the same partition against the released perturbed means (no re-assignment)")
	t.Note("'-' means the noise overwhelmed every centroid at that scale")
	return t
}

// Fig2a is the CER pre-perturbation inertia evolution.
func Fig2a(p Params) (*Table, error) {
	q, err := runQuality("cer", p, cerStrategies(), 0)
	if err != nil {
		return nil, err
	}
	return evolutionTable("fig2a", "CER: Evolution of the Pre-Perturbation Intra-Cluster Inertia", q, "inertia"), nil
}

// Fig2b is the NUMED pre-perturbation inertia evolution.
func Fig2b(p Params) (*Table, error) {
	q, err := runQuality("numed", p, numedStrategies(), 0)
	if err != nil {
		return nil, err
	}
	return evolutionTable("fig2b", "NUMED: Evolution of the Pre-Perturbation Intra-Cluster Inertia", q, "inertia"), nil
}

// Fig2c is the CER surviving-centroid evolution.
func Fig2c(p Params) (*Table, error) {
	q, err := runQuality("cer", p, cerStrategies(), 0)
	if err != nil {
		return nil, err
	}
	return evolutionTable("fig2c", "CER: Evolution of the Number of Centroids", q, "centroids"), nil
}

// Fig2d is the NUMED surviving-centroid evolution.
func Fig2d(p Params) (*Table, error) {
	q, err := runQuality("numed", p, numedStrategies(), 0)
	if err != nil {
		return nil, err
	}
	return evolutionTable("fig2d", "NUMED: Evolution of the Number of Centroids", q, "centroids"), nil
}

// Fig2e is the CER PRE/POST comparison at the best iteration.
func Fig2e(p Params) (*Table, error) {
	q, err := runQuality("cer", p, cerStrategies(), 0)
	if err != nil {
		return nil, err
	}
	return prePostTable("fig2e", "CER: Lowest Pre-Perturbation Inertia and Corresponding Post-Perturbation Inertia", q), nil
}

// Fig2f is the NUMED PRE/POST comparison.
func Fig2f(p Params) (*Table, error) {
	q, err := runQuality("numed", p, numedStrategies(), 0)
	if err != nil {
		return nil, err
	}
	return prePostTable("fig2f", "NUMED: Lowest Pre-Perturbation Inertia and Corresponding Post-Perturbation Inertia", q), nil
}

// Fig3a is the churn-enabled CER inertia evolution (G_SMA under
// per-iteration churn 0 / .1 / .25 / .5).
func Fig3a(p Params) (*Table, error) {
	churns := []float64{0, 0.1, 0.25, 0.5}
	gsma := []strategySpec{{
		"G_SMA",
		func(e float64) dp.Budget { return dp.Greedy{Eps: e} },
		true, 10,
	}}
	t := &Table{
		ID:      "fig3a",
		Title:   "Churn-Enabled: Evolution of the Pre-Perturbation Intra-Cluster Inertia (CER)",
		Columns: []string{"iteration", "no churn", "churn .1", "churn .25", "churn .5"},
	}
	var series [][]float64
	var full float64
	for _, churn := range churns {
		q, err := runQuality("cer", p, gsma, churn)
		if err != nil {
			return nil, err
		}
		series = append(series, q.runs[0].inertia)
		full = q.fullInertia
	}
	for it := 0; it < 10; it++ {
		row := []string{fmt.Sprintf("%d", it+1)}
		for _, s := range series {
			if s[it] == 0 {
				row = append(row, "-")
			} else {
				row = append(row, f(s[it]))
			}
		}
		t.AddRow(row...)
	}
	t.Note("dataset inertia (constant upper bound): %s", f(full))
	t.Note("churn = probability each series is disconnected at each iteration")
	return t, nil
}
