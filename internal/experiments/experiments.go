// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Appendix D). Each Fig*/Table* function
// returns a Table whose rows mirror the series the paper plots; the
// cmd/benchfig tool prints them, and bench_test.go wraps them in
// testing.B benchmarks.
//
// Absolute numbers differ from the paper's (different hardware, synthetic
// data substitutes) but the shapes are preserved; EXPERIMENTS.md records
// the paper-vs-measured comparison for every artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects the experiment size.
type Scale int

// Scales: CI finishes in seconds (unit-test and benchmark default),
// Small in minutes on a laptop, Paper replays the paper's dimensions
// (millions of series / participants; minutes to hours).
const (
	CI Scale = iota
	Small
	Paper
)

// ParseScale maps "ci", "small", "paper".
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "ci":
		return CI, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return CI, fmt.Errorf("experiments: unknown scale %q (want ci, small, paper)", s)
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case CI:
		return "ci"
	case Small:
		return "small"
	default:
		return "paper"
	}
}

// cerSize returns the number of CER series clustered at this scale.
func (s Scale) cerSize() int {
	switch s {
	case CI:
		return 6_000
	case Small:
		return 150_000
	default:
		return 3_000_000
	}
}

// numedSize returns the number of NUMED series.
func (s Scale) numedSize() int {
	switch s {
	case CI:
		return 6_000
	case Small:
		return 120_000
	default:
		return 1_200_000
	}
}

// k returns the initial number of centroids (the paper uses 50; CI runs
// shrink it so tiny datasets keep meaningful cluster sizes).
func (s Scale) k() int {
	if s == CI {
		return 10
	}
	return 50
}

// repetitions returns how many runs are averaged (the paper uses 10).
func (s Scale) repetitions() int {
	switch s {
	case CI:
		return 1
	case Small:
		return 3
	default:
		return 10
	}
}

// populations returns the gossip population grid of Figures 3(b)/4(a)/4(b).
func (s Scale) populations() []int {
	switch s {
	case CI:
		return []int{1_000, 10_000}
	case Small:
		return []int{1_000, 10_000, 100_000}
	default:
		return []int{1_000, 10_000, 100_000, 1_000_000}
	}
}

// keyBits returns the Damgård–Jurik modulus size for the local-cost
// experiments (the paper uses 1024).
func (s Scale) keyBits() int {
	switch s {
	case CI:
		return 256
	case Small:
		return 512
	default:
		return 1024
	}
}

// a3Replicas returns the duplication factor of the Appendix D dataset
// (paper: 100 → 750K points).
func (s Scale) a3Replicas() int {
	switch s {
	case CI:
		return 4
	case Small:
		return 20
	default:
		return 100
	}
}

// Params carries the experiment inputs.
type Params struct {
	Scale Scale
	Seed  uint64
}

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment identifier (fig2a, table2, ...)
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a free-form note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as CSV (without notes).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// Registry maps experiment ids to their generators.
var Registry = map[string]func(Params) (*Table, error){
	"table2":   Table2,
	"fig2a":    Fig2a,
	"fig2b":    Fig2b,
	"fig2c":    Fig2c,
	"fig2d":    Fig2d,
	"fig2e":    Fig2e,
	"fig2f":    Fig2f,
	"fig3a":    Fig3a,
	"fig3b":    Fig3b,
	"fig4a":    Fig4a,
	"fig4b":    Fig4b,
	"fig5a":    Fig5a,
	"fig5b":    Fig5b,
	"fig6":     Fig6,
	"thm3":     Thm3,
	"ablation": Ablation,
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
