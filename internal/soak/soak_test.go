package soak

import (
	"strings"
	"testing"
	"time"

	"chiaroscuro/internal/faultnet"
	"chiaroscuro/internal/node"
)

// TestSoakOneRunTCP pins the classic shape: one run, one TCP listener
// per participant, real test-scheme crypto.
func TestSoakOneRunTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto soak")
	}
	rep, err := Run(Config{N: 4, Plan: faultnet.Plan{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 1 || rep.Failures != 0 {
		t.Fatalf("runs/failures = %d/%d, want 1/0 (last: %v)", rep.Runs, rep.Failures, rep.LastErr)
	}
	if rep.Cycles == 0 || rep.Centroids == 0 || rep.Wire.BytesSent == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.PeakGoroutines == 0 || rep.PeakHeapBytes == 0 {
		t.Fatalf("resource peaks not sampled: %d goroutines, %d heap", rep.PeakGoroutines, rep.PeakHeapBytes)
	}
}

// TestSoakVirtualNodes pins the paper-scale shape: the whole population
// as virtual nodes behind one mux host, simulation scheme, with a
// chaos profile on top — refusals and crash storms over in-process
// pipes, retried and survived.
func TestSoakVirtualNodes(t *testing.T) {
	rep, err := Run(Config{
		N:               24,
		VirtualNodes:    true,
		SimScheme:       true,
		Tau:             3,
		Plan:            faultnet.Plan{Seed: 5, RefuseProb: 0.03, CrashProb: 0.01},
		Policy:          node.Policy{MaxRetries: 3, SuspicionK: 6},
		Churn:           0.05,
		ExchangeTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("virtual run failed: %v", rep.LastErr)
	}
	if rep.Cycles == 0 || rep.Centroids == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Wire.BytesSent != rep.Wire.BytesRecv {
		// Clean completion over loss-free pipes: both directions counted
		// by FrameWireSize must agree in aggregate... unless the chaos
		// profile cut frames mid-flight, which undercounts the receiver.
		if rep.Wire.BytesRecv > rep.Wire.BytesSent {
			t.Fatalf("received more than sent: %+v", rep.Wire)
		}
	}
	if rep.Wire.Retries == 0 {
		t.Fatal("chaos profile produced no retries (faults not reaching the pipe transport?)")
	}
}

// TestSoakVirtualMatchesSeededReplay pins replayability: the same
// virtual soak config runs twice and the protocol outcome — cycles,
// released centroids, failures — is identical, the property that lets
// a failing shard be replayed from its printed seed. (The wire-level
// trace is NOT asserted: timeout and retry counts depend on real-time
// scheduling; the slot-keyed fault decisions and the released result
// do not.)
func TestSoakVirtualMatchesSeededReplay(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{
			N:               12,
			VirtualNodes:    true,
			SimScheme:       true,
			Tau:             3,
			Plan:            faultnet.Plan{Seed: 11, RefuseProb: 0.05, CrashProb: 0.01},
			Policy:          node.Policy{MaxRetries: 2},
			ExchangeTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Centroids != b.Centroids || a.Failures != b.Failures {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
}

// TestSoakRestartStorm pins the crash-recovery runtime end to end: a
// TCP population runs with per-peer journals while the supervisor
// kills random live peers mid-protocol and relaunches them from their
// journals. The run must still converge and release centroids, peers
// must have actually died and resumed, and the population must have
// accepted Resume announcements over the wire.
func TestSoakRestartStorm(t *testing.T) {
	rep, err := Run(Config{
		N:               6,
		SimScheme:       true,
		Tau:             2,
		Plan:            faultnet.Plan{Seed: 11},
		Iterations:      3,
		Policy:          node.Policy{MaxRetries: 3, SuspicionK: 6},
		KillProb:        0.4,
		StateDir:        t.TempDir(),
		ExchangeTimeout: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("storm run failed: %v", rep.LastErr)
	}
	if rep.Cycles == 0 || rep.Centroids == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Kills == 0 {
		t.Fatal("supervisor killed nobody; storm did not storm (run too fast or killer not wired)")
	}
	if rep.Resumes == 0 {
		t.Fatal("no peer resumed from its journal")
	}
	if rep.Wire.Resumed == 0 {
		t.Fatal("no Resume announcement accepted on the wire")
	}
}

// TestSoakRestartStormRejectsVirtualNodes pins the shape guard.
func TestSoakRestartStormRejectsVirtualNodes(t *testing.T) {
	_, err := Run(Config{N: 4, VirtualNodes: true, KillProb: 0.1})
	if err == nil {
		t.Fatal("VirtualNodes + KillProb accepted; want refusal")
	}
}

// TestSchemeSelection pins the scheme factory switch.
func TestSchemeSelection(t *testing.T) {
	sim, err := Config{N: 8, SimScheme: true}.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sim.Name(), "plain") {
		t.Fatalf("sim scheme = %q", sim.Name())
	}
	dj, err := Config{N: 4}.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(dj.Name()), "j") || dj.NumShares() != 4 {
		t.Fatalf("dj scheme = %q shares %d", dj.Name(), dj.NumShares())
	}
}
