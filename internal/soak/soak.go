// Package soak is the chaos soak harness behind `chiaroscurod -soak`
// and `cmd/soak`: it runs an in-process networked population — real TCP
// listeners, real wire frames — in a loop under a seeded faultnet plan
// (refusals, partitions, mid-frame cuts, latency, crash storms), the
// Section 6.1.5 churn model, and a join flood (every run boots the
// whole population through one bootstrap peer simultaneously), and
// reports sustained throughput as gossip cycles per second plus the
// aggregated wire and fault-tolerance counters.
//
// Two population shapes are supported: one listener per participant
// (the deployment shape, default) and the virtual-node shape
// (VirtualNodes), where the whole population lives behind one
// mux.Host and exchanges over in-process pipes — the shape that scales
// to the paper's hundred-thousand-peer populations on one machine.
//
// Each run advances the fault plan's seed by one, so a soak sweeps a
// family of reproducible fault schedules; any failing run can be
// replayed by seeding a single run with the reported seed.
package soak

import (
	"fmt"
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/faultnet"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/homenc/plain"
	"chiaroscuro/internal/mux"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
	"chiaroscuro/internal/wireproto"
)

// Config provisions a soak.
type Config struct {
	// N is the population size (default 8).
	N int
	// Duration bounds the soak wall-clock; runs start until it elapses
	// (0 = exactly one run).
	Duration time.Duration
	// Plan is the fault plan every run injects. Plan.Seed seeds run 0;
	// run r uses Plan.Seed + r.
	Plan faultnet.Plan
	// Policy is the per-node fault-tolerance policy.
	Policy node.Policy
	// Churn is the Section 6.1.5 modeled churn probability per cycle.
	Churn float64
	// Iterations is the protocol iteration count per run (default 1).
	Iterations int
	// Workers bounds each node's crypto worker pool (default 1: the
	// population already saturates the cores).
	Workers int
	// KeyBits and Degree size the test scheme (defaults 128, 4).
	KeyBits, Degree int
	// Tau overrides the decryption threshold (default max(2, N/3)).
	// Large virtual populations need a modest fixed threshold: the
	// epidemic decryption budget grows with log N, not N/3.
	Tau int
	// VirtualNodes runs the whole population as virtual nodes behind one
	// mux.Host (in-process pipes) instead of one TCP listener each.
	VirtualNodes bool
	// SimScheme swaps real Damgård–Jurik for the arithmetic-faithful
	// plaintext scheme — same packing, framing and thresholds, no
	// modular exponentiation — so the soak measures runtime capacity
	// (sockets, goroutines, scheduling) rather than crypto throughput.
	SimScheme bool
	// ExchangeTimeout overrides the per-exchange deadline (default 2s;
	// thousand-peer virtual populations need minutes — a cycle's worth
	// of serial exchanges can sit ahead of a slot).
	ExchangeTimeout time.Duration
	// KillProb turns the soak into a restart storm: every ~50ms a
	// seeded supervisor coin-flips with this probability and, on heads,
	// kills one random live peer outright and relaunches it from its
	// crash-recovery journal. Requires the TCP shape (not VirtualNodes);
	// each peer runs with a durable journal under StateDir.
	KillProb float64
	// StateDir is where restart-storm journals live (one per peer per
	// run, under a per-seed subdirectory). Empty with KillProb set means
	// a temp directory that is removed when the soak ends.
	StateDir string
	// Out, when set, receives a progress line per run.
	Out io.Writer
}

// Report is the soak outcome.
type Report struct {
	Runs      int           // runs started
	Failures  int           // runs that returned an error
	Cycles    int           // gossip cycles completed (participant 0's traces)
	Elapsed   time.Duration // wall clock of the whole soak
	Centroids int           // centroids released by the last successful run
	Wire      wireproto.Counters
	Seed      uint64 // fault seed of run 0 (run r used Seed + r)
	LastErr   error  // last per-run error, if any
	Kills     int    // restart storm: peers killed mid-run by the supervisor
	Resumes   int    // restart storm: relaunches that resumed from a journal

	// Resource peaks observed across the soak (sampled every ~200ms):
	// the capacity numbers behind the PERF.md peers-per-process table.
	PeakGoroutines int
	PeakHeapBytes  uint64
}

// CyclesPerSec is the soak's sustained throughput.
func (r *Report) CyclesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Cycles) / r.Elapsed.Seconds()
}

func (c Config) withDefaults() Config {
	if c.N < 2 {
		c.N = 8
	}
	if c.Iterations <= 0 {
		c.Iterations = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.KeyBits == 0 {
		c.KeyBits = 128
	}
	if c.Degree == 0 {
		c.Degree = 4
	}
	if c.Tau <= 0 {
		c.Tau = max(2, c.N/3)
	}
	if c.ExchangeTimeout <= 0 {
		// Tight by default: a crash storm makes slots whose request never
		// arrives routine, and each burns its await window on the
		// responder's serial main loop.
		c.ExchangeTimeout = 2 * time.Second
	}
	return c
}

// Scheme builds the soak's threshold scheme: real Damgård–Jurik test
// keys, or the arithmetic-faithful plaintext scheme when SimScheme is
// set (64-byte ciphertexts: DJ-frame-shaped without the arithmetic).
func (c Config) Scheme() (homenc.Scheme, error) {
	c = c.withDefaults()
	if c.SimScheme {
		return plain.New(nil, 64, c.N, c.Tau)
	}
	return damgardjurik.NewTestScheme(c.KeyBits, c.Degree, c.N, c.Tau)
}

// Run executes the soak. Per-run protocol errors (a crash storm can
// legitimately starve a run of key-shares) are counted, not fatal; only
// provisioning errors abort the soak.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.KillProb > 0 && cfg.VirtualNodes {
		return nil, fmt.Errorf("soak: restart storm (KillProb) needs the TCP shape, not VirtualNodes")
	}
	if cfg.KillProb > 0 && cfg.StateDir == "" {
		dir, err := os.MkdirTemp("", "chiaroscuro-soak-")
		if err != nil {
			return nil, err
		}
		cfg.StateDir = dir
		defer os.RemoveAll(dir)
	}
	scheme, err := cfg.Scheme()
	if err != nil {
		return nil, err
	}
	data, _ := datasets.GenerateCER(cfg.N, randx.New(cfg.Plan.Seed^0x50AC, 0))
	seeds := make([]timeseries.Series, 2)
	for c := range seeds {
		s := make(timeseries.Series, data.Dim())
		for j := range s {
			s[j] = 10 + 30*float64(c)
		}
		seeds[c] = s
	}

	rep := &Report{Seed: cfg.Plan.Seed}
	stopSampler := sampleResources(rep)
	defer stopSampler()
	start := time.Now()
	for run := 0; run == 0 || (cfg.Duration > 0 && time.Since(start) < cfg.Duration); run++ {
		plan := cfg.Plan
		plan.Seed = cfg.Plan.Seed + uint64(run)
		rep.Runs++
		runStart := time.Now()
		var (
			res            *node.Result
			counters       wireproto.Counters
			kills, resumes int
		)
		if cfg.KillProb > 0 {
			res, counters, kills, resumes, err = runRestartStorm(cfg, scheme, data, seeds, plan)
			rep.Kills += kills
			rep.Resumes += resumes
		} else {
			res, counters, err = runOnce(cfg, scheme, data, seeds, plan)
		}
		addCounters(&rep.Wire, counters)
		if err != nil {
			rep.Failures++
			rep.LastErr = err
			if cfg.Out != nil {
				fmt.Fprintf(cfg.Out, "soak: run %d seed %d FAILED in %s: %v\n",
					run, plan.Seed, time.Since(runStart).Round(time.Millisecond), err)
			}
			continue
		}
		cycles := 0
		for _, tr := range res.Traces {
			cycles += tr.SumCycles + tr.DissCycles + tr.DecryptCycles
		}
		rep.Cycles += cycles
		rep.Centroids = len(res.Centroids)
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "soak: run %d seed %d ok in %s: %d cycles, %d centroids, retries %d, evicted %d, kills %d, resumes %d\n",
				run, plan.Seed, time.Since(runStart).Round(time.Millisecond),
				cycles, len(res.Centroids), counters.Retries, counters.Evicted, kills, resumes)
		}
	}
	rep.Elapsed = time.Since(start)
	stopSampler()
	return rep, nil
}

// sampleResources watches goroutine count and heap-in-use while the
// soak runs, recording the peaks into rep. The returned stop is
// idempotent and takes one final sample (so even sub-interval soaks
// report real numbers).
func sampleResources(rep *Report) (stop func()) {
	sample := func() {
		if g := runtime.NumGoroutine(); g > rep.PeakGoroutines {
			rep.PeakGoroutines = g
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapInuse > rep.PeakHeapBytes {
			rep.PeakHeapBytes = ms.HeapInuse
		}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(200 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(done)
		<-finished
		sample()
	}
}

// protoFor is the soak's shared protocol configuration for one run.
func protoFor(cfg Config, seeds []timeseries.Series, plan faultnet.Plan) core.Config {
	logN := bits.Len(uint(cfg.N))
	return core.Config{
		K:             2,
		InitCentroids: seeds,
		DMin:          datasets.CERMin,
		DMax:          datasets.CERMax,
		Epsilon:       1e4, // quality is not under test; noise must not wipe centroids
		MaxIterations: cfg.Iterations,
		Exchanges:     10,
		DissCycles:    6 + 2*logN,
		DecryptCycles: 8 + 2*logN,
		FracBits:      24,
		Seed:          plan.Seed,
		Churn:         cfg.Churn,
		MidFailure:    cfg.Churn > 0,
		Workers:       cfg.Workers,
	}
}

// runOnce boots the full population — one TCP listener per participant
// through a join flood, or every participant behind one mux.Host — runs
// the protocol under the plan's faults, and returns participant 0's
// result plus the population's aggregated counters.
func runOnce(cfg Config, scheme homenc.Scheme, data *timeseries.Dataset, seeds []timeseries.Series, plan faultnet.Plan) (*node.Result, wireproto.Counters, error) {
	proto := protoFor(cfg, seeds, plan)
	inj := faultnet.New(plan)
	var agg wireproto.Counters
	nodes := make([]*node.Node, cfg.N)

	var host *mux.Host
	if cfg.VirtualNodes {
		h, err := mux.NewHost(mux.Config{
			N:               cfg.N,
			SeriesDim:       data.Dim(),
			Scheme:          scheme,
			Proto:           proto,
			ExchangeTimeout: cfg.ExchangeTimeout,
		})
		if err != nil {
			return nil, agg, err
		}
		host = h
		defer host.Close()
		transport := host.Transport()
		for i := 0; i < cfg.N; i++ {
			nf := inj.Node(i).WithTransport(transport.Dial)
			nd, err := host.AddNode(node.Config{
				Index:           i,
				Series:          data.Row(i),
				ExchangeTimeout: cfg.ExchangeTimeout,
				FinTimeout:      400 * time.Millisecond,
				Policy:          cfg.Policy,
				Dialer:          nf,
				CrashHook:       nf.Crash,
			})
			if err != nil {
				return nil, agg, err
			}
			nodes[i] = nd
		}
	} else {
		defer func() {
			for _, nd := range nodes {
				if nd != nil {
					_ = nd.Close()
				}
			}
		}()
		bootstrap := ""
		for i := 0; i < cfg.N; i++ {
			nf := inj.Node(i)
			nd, err := node.New(node.Config{
				Index:           i,
				N:               cfg.N,
				Series:          data.Row(i),
				Scheme:          scheme,
				Proto:           proto,
				Bootstrap:       bootstrap,
				ExchangeTimeout: cfg.ExchangeTimeout,
				FinTimeout:      400 * time.Millisecond,
				JoinTimeout:     30 * time.Second,
				Policy:          cfg.Policy,
				Dialer:          nf,
				CrashHook:       nf.Crash,
			})
			if err != nil {
				return nil, agg, err
			}
			nodes[i] = nd
			if i == 0 {
				bootstrap = nd.Addr()
			}
		}
	}

	results := make([]*node.Result, cfg.N)
	errs := make([]error, cfg.N)
	done := make(chan int, cfg.N)
	for i, nd := range nodes {
		go func(i int, nd *node.Node) {
			results[i], errs[i] = nd.Run()
			done <- i
		}(i, nd)
	}
	for range nodes {
		<-done
	}
	for _, nd := range nodes {
		c := nd.Counters()
		addCounters(&agg, c)
	}
	if host != nil {
		addCounters(&agg, host.Counters())
	}
	for i, err := range errs {
		if err != nil {
			return nil, agg, fmt.Errorf("node %d: %w", i, err)
		}
	}
	if len(results[0].Centroids) == 0 {
		return nil, agg, fmt.Errorf("run released no centroids")
	}
	return results[0], agg, nil
}

// runRestartStorm is runOnce's restart-storm variant: the TCP-shape
// population runs with one durable journal per peer, and a seeded
// supervisor ticker kills random live peers mid-protocol — the process
// dies with whatever its last fsynced commit recorded, exactly the
// kill -9 contract — then relaunches each victim from its journal. The
// relaunched peer rebinds its recorded listen address (SO_REUSEADDR),
// announces itself with a Resume handshake, and re-enters the run
// where its journal left off. Returns participant 0's result, the
// final-instance aggregated counters (resumed instances restore their
// predecessors' counters from the journal, so final instances carry
// the whole history), and the kill/resume totals.
func runRestartStorm(cfg Config, scheme homenc.Scheme, data *timeseries.Dataset, seeds []timeseries.Series, plan faultnet.Plan) (*node.Result, wireproto.Counters, int, int, error) {
	proto := protoFor(cfg, seeds, plan)
	inj := faultnet.New(plan)
	var agg wireproto.Counters

	// One subdirectory per fault seed: journals encode the run's seed in
	// their identity record, so a stale journal from another seed would
	// be (correctly) refused at relaunch. Start clean.
	dir := filepath.Join(cfg.StateDir, fmt.Sprintf("seed-%d", plan.Seed))
	_ = os.RemoveAll(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, agg, 0, 0, err
	}

	type cell struct {
		mu     sync.Mutex
		nd     *node.Node
		killed bool // supervisor closed this instance; its runner relaunches
		done   bool // runner finished for good (success or terminal failure)
	}
	cells := make([]*cell, cfg.N)
	for i := range cells {
		cells[i] = &cell{}
	}
	addrs := make([]string, cfg.N) // stable: relaunches rebind the saved addr

	faults := make([]*faultnet.NodeFaults, cfg.N)
	for i := range faults {
		faults[i] = inj.Node(i)
	}

	launch := func(i int) (*node.Node, error) {
		st, err := node.OpenState(filepath.Join(dir, fmt.Sprintf("node-%d.journal", i)))
		if err != nil {
			return nil, err
		}
		bootstrap := ""
		for j := range addrs {
			if j != i && addrs[j] != "" {
				bootstrap = addrs[j]
				break
			}
		}
		nf := faults[i]
		nd, err := node.New(node.Config{
			Index:           i,
			N:               cfg.N,
			Series:          data.Row(i),
			Scheme:          scheme,
			Proto:           proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: cfg.ExchangeTimeout,
			FinTimeout:      400 * time.Millisecond,
			JoinTimeout:     30 * time.Second,
			Policy:          cfg.Policy,
			Dialer:          nf,
			CrashHook:       nf.Crash,
			State:           st,
		})
		if err != nil {
			_ = st.Close()
			return nil, err
		}
		addrs[i] = nd.Addr()
		return nd, nil
	}

	defer func() {
		for _, c := range cells {
			c.mu.Lock()
			nd := c.nd
			c.mu.Unlock()
			if nd != nil {
				_ = nd.Close()
			}
		}
	}()

	// Join flood, as in runOnce: node 0 first so the rest have a
	// bootstrap peer.
	for i := 0; i < cfg.N; i++ {
		nd, err := launch(i)
		if err != nil {
			return nil, agg, 0, 0, err
		}
		cells[i].nd = nd
	}

	var kills, resumes atomic.Int64
	stopKiller := make(chan struct{})
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		rng := randx.New(plan.Seed^0xC4A5, 9)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopKiller:
				return
			case <-t.C:
				if !rng.Bernoulli(cfg.KillProb) {
					continue
				}
				c := cells[rng.IntN(cfg.N)]
				c.mu.Lock()
				nd := c.nd
				if nd == nil || c.done || c.killed {
					c.mu.Unlock()
					continue
				}
				c.killed = true
				c.mu.Unlock()
				_ = nd.Close()
				kills.Add(1)
			}
		}
	}()

	results := make([]*node.Result, cfg.N)
	errs := make([]error, cfg.N)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cells[i]
			// Bound relaunches so a pathological schedule cannot spin a
			// runner forever; 64 restarts of one peer in one run is far
			// beyond any plausible storm.
			for attempt := 0; ; attempt++ {
				c.mu.Lock()
				nd := c.nd
				c.mu.Unlock()
				res, err := nd.Run()
				c.mu.Lock()
				wasKilled := c.killed
				c.killed = false
				// A killed instance's result is discarded even when Run
				// limped to a nil error: Close only severs the network
				// runtime, but the contract under test is kill -9 — the
				// whole process dies — so the victim must come back
				// through its journal, not coast on an in-memory result.
				if !wasKilled || attempt >= 64 {
					c.done = true
					c.mu.Unlock()
					results[i], errs[i] = res, err
					return
				}
				c.mu.Unlock()
				nd2, lerr := launch(i)
				if lerr != nil {
					c.mu.Lock()
					c.done = true
					c.mu.Unlock()
					errs[i] = fmt.Errorf("relaunch: %w", lerr)
					return
				}
				resumes.Add(1)
				c.mu.Lock()
				c.nd = nd2
				c.mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(stopKiller)
	<-killerDone

	for _, c := range cells {
		agg2 := c.nd.Counters()
		addCounters(&agg, agg2)
	}
	nKills, nResumes := int(kills.Load()), int(resumes.Load())
	for i, err := range errs {
		if err != nil {
			return nil, agg, nKills, nResumes, fmt.Errorf("node %d: %w", i, err)
		}
	}
	if len(results[0].Centroids) == 0 {
		return nil, agg, nKills, nResumes, fmt.Errorf("run released no centroids")
	}
	return results[0], agg, nKills, nResumes, nil
}

func addCounters(dst *wireproto.Counters, c wireproto.Counters) {
	dst.Initiated += c.Initiated
	dst.Responded += c.Responded
	dst.Timeouts += c.Timeouts
	dst.Rejected += c.Rejected
	dst.BadFrames += c.BadFrames
	dst.Retries += c.Retries
	dst.Suspected += c.Suspected
	dst.Evicted += c.Evicted
	dst.Resumed += c.Resumed
	dst.BytesSent += c.BytesSent
	dst.BytesRecv += c.BytesRecv
}
