package node

import (
	"chiaroscuro/internal/core"
	"chiaroscuro/internal/homenc"
)

// ConfigDigest hashes the shared protocol parameters every peer of a
// population must agree on — population size, cluster count, fixed-
// point precision, packing slot layout, the fixed per-phase cycle
// budgets, iteration cap and the protocol vector dimension. Two daemons
// provisioned inconsistently (different -k, -pack-slots, -frac-bits,
// -population, …) produce different digests; the hello handshake
// carries the digest so the mismatch is rejected at the door (with
// ErrConfigMismatch) instead of diverging silently mid-run.
//
// The seed is deliberately excluded: it is already enforced by the
// population epoch on every frame. proto must be normalized (node.New
// and mux.NewHost digest after Normalize, so defaulted and explicit
// configurations of the same deployment agree).
func ConfigDigest(proto core.Config, n, seriesDim int, pack homenc.PackedCodec) uint64 {
	h := mix64(0xC41AD16E57)
	for _, v := range []uint64{
		uint64(int64(n)),
		uint64(int64(proto.K)),
		uint64(int64(proto.FracBits)),
		uint64(int64(proto.Exchanges)),
		uint64(int64(proto.DissCycles)),
		uint64(int64(proto.DecryptCycles)),
		uint64(int64(proto.MaxIterations)),
		uint64(int64(seriesDim)),
		uint64(int64(pack.Slots)),
		uint64(pack.SlotBits),
	} {
		h = mix64(h ^ v)
	}
	return h
}

// mix64 is SplitMix64's finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
