package node

import (
	"net"
	"sync"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/wireproto"
)

// phase ranks order the three exchange phases within an iteration.
// They are the shared core.Phase ranks, so the observer callbacks and
// the wire slots speak the same numbering.
const (
	phaseSum  = int(core.PhaseSum)
	phaseDiss = int(core.PhaseDissemination)
	phaseDec  = int(core.PhaseDecryption)
)

// slot identifies one scheduled exchange globally: iteration, phase,
// cycle, sequence within the cycle. Slots are totally ordered; each
// peer processes its own participations strictly in slot order, which
// makes the distributed execution conflict-serializable in the global
// schedule order (exchanges not sharing a node commute).
type slot struct {
	iter  int
	phase int
	cycle int
	seq   int
}

func (s slot) before(o slot) bool {
	if s.iter != o.iter {
		return s.iter < o.iter
	}
	if s.phase != o.phase {
		return s.phase < o.phase
	}
	if s.cycle != o.cycle {
		return s.cycle < o.cycle
	}
	return s.seq < o.seq
}

// inbound is a parked exchange request: the decoded frame and the
// connection the response legs travel on. The responder's main loop
// owns the connection once it consumes the entry.
type inbound struct {
	frame wireproto.Frame
	conn  net.Conn
}

// registry parks inbound exchange requests until the responder's main
// loop reaches their slot. Requests may arrive arbitrarily early (the
// initiator runs ahead) or never (the initiator died); the main loop
// waits with a deadline and prunes entries that fall behind its
// position. A slot the owner has already consumed or given up on is
// tombstoned, so a late delivery can never strand a connection in an
// unreachable channel.
type registry struct {
	mu      sync.Mutex
	pending map[slot]chan inbound
	done    map[slot]bool // consumed or abandoned slots (pruned by advance)
	horizon slot          // the owner's current position; earlier slots are stale
	closed  bool
	stop    <-chan struct{} // closed on node shutdown; wakes blocked awaits (nil: never)
}

func newRegistry(stop <-chan struct{}) *registry {
	return &registry{
		pending: make(map[slot]chan inbound),
		done:    make(map[slot]bool),
		stop:    stop,
	}
}

// channel returns the slot's channel, creating it if needed. Callers
// hold r.mu.
func (r *registry) channel(s slot) chan inbound {
	if ch, ok := r.pending[s]; ok {
		return ch
	}
	ch := make(chan inbound, 1)
	r.pending[s] = ch
	return ch
}

// deliver parks a request. Requests for slots already passed,
// consumed, abandoned, or arriving after close are refused: the
// connection is closed and false returned. The buffered send happens
// under the lock, so a delivery can never race into a channel the
// owner has already given up on.
func (r *registry) deliver(s slot, in inbound) bool {
	r.mu.Lock()
	if r.closed || r.done[s] || s.before(r.horizon) {
		r.mu.Unlock()
		_ = in.conn.Close()
		return false
	}
	ch := r.channel(s)
	ok := false
	select {
	case ch <- in:
		ok = true
	default: // duplicate request for the slot
	}
	r.mu.Unlock()
	if !ok {
		_ = in.conn.Close()
	}
	return ok
}

// await blocks until the request for slot s arrives, the deadline
// passes, or the registry's stop channel closes (node shutdown —
// cancellation must not sit out a full exchange timeout). Either way
// the slot is finished afterwards: later deliveries are refused at the
// door.
func (r *registry) await(s slot, timeout time.Duration) (inbound, bool) {
	r.mu.Lock()
	if r.closed || r.done[s] {
		r.mu.Unlock()
		return inbound{}, false
	}
	ch := r.channel(s)
	r.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case in := <-ch:
		r.finish(s, ch)
		return in, true
	case <-t.C:
		// Resolve the race between the timer and a delivery under the
		// lock: whatever is in the channel now is the last word.
		r.mu.Lock()
		defer r.mu.Unlock()
		r.done[s] = true
		delete(r.pending, s)
		select {
		case in := <-ch:
			return in, true
		default:
			return inbound{}, false
		}
	case <-r.stop:
		// Shutting down: abandon the slot, releasing any delivery that
		// raced in.
		r.mu.Lock()
		defer r.mu.Unlock()
		r.done[s] = true
		delete(r.pending, s)
		select {
		case in := <-ch:
			_ = in.conn.Close()
		default:
		}
		return inbound{}, false
	}
}

// finish marks a slot consumed, drops its channel, and closes out any
// duplicate delivery that slipped in between the owner's receive and
// the tombstone.
func (r *registry) finish(s slot, ch chan inbound) {
	r.mu.Lock()
	r.done[s] = true
	delete(r.pending, s)
	select {
	case dup := <-ch:
		_ = dup.conn.Close()
	default:
	}
	r.mu.Unlock()
}

// advance moves the owner's position: entries for earlier slots can
// never be consumed anymore and are closed out, and earlier tombstones
// are garbage-collected.
func (r *registry) advance(pos slot) {
	r.mu.Lock()
	r.horizon = pos
	for s, ch := range r.pending {
		if s.before(pos) {
			select {
			case in := <-ch:
				_ = in.conn.Close()
			default:
			}
			delete(r.pending, s)
		}
	}
	for s := range r.done {
		if s.before(pos) {
			delete(r.done, s)
		}
	}
	r.mu.Unlock()
}

// close refuses all future deliveries and drains parked connections.
func (r *registry) close() {
	r.mu.Lock()
	r.closed = true
	for s, ch := range r.pending {
		select {
		case in := <-ch:
			_ = in.conn.Close()
		default:
		}
		delete(r.pending, s)
	}
	r.mu.Unlock()
}
