package node

import (
	"net"
	"sync"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/wireproto"
)

// phase ranks order the three exchange phases within an iteration.
// They are the shared core.Phase ranks, so the observer callbacks and
// the wire slots speak the same numbering.
const (
	phaseSum  = int(core.PhaseSum)
	phaseDiss = int(core.PhaseDissemination)
	phaseDec  = int(core.PhaseDecryption)
)

// slot identifies one scheduled exchange globally: iteration, phase,
// cycle, sequence within the cycle. Slots are totally ordered; each
// peer processes its own participations strictly in slot order, which
// makes the distributed execution conflict-serializable in the global
// schedule order (exchanges not sharing a node commute).
type slot struct {
	iter  int
	phase int
	cycle int
	seq   int
}

func (s slot) before(o slot) bool {
	if s.iter != o.iter {
		return s.iter < o.iter
	}
	if s.phase != o.phase {
		return s.phase < o.phase
	}
	if s.cycle != o.cycle {
		return s.cycle < o.cycle
	}
	return s.seq < o.seq
}

// inbound is a parked exchange request: the decoded frame and the
// connection the response legs travel on. The responder's main loop
// owns the connection once it consumes the entry.
type inbound struct {
	frame wireproto.Frame
	conn  net.Conn
}

// registry parks inbound exchange requests until the responder's main
// loop reaches their slot. Requests may arrive arbitrarily early (the
// initiator runs ahead), more than once (a retrying initiator redials
// the same slot after its connection died), or never (the initiator
// died for good); the main loop waits with a deadline and prunes
// entries that fall behind its position. Consuming a delivery does not
// close a slot — the owner may re-await it while re-serving a retried
// exchange; release tombstones the slot when its owner is done for
// good, so a late delivery can never strand a connection in an
// unreachable channel.
type registry struct {
	mu      sync.Mutex
	pending map[slot]chan inbound
	done    map[slot]bool // consumed or abandoned slots (pruned by advance)
	horizon slot          // the owner's current position; earlier slots are stale
	closed  bool
	stop    <-chan struct{} // closed on node shutdown; wakes blocked awaits (nil: never)
}

func newRegistry(stop <-chan struct{}) *registry {
	return &registry{
		pending: make(map[slot]chan inbound),
		done:    make(map[slot]bool),
		stop:    stop,
	}
}

// channel returns the slot's channel, creating it if needed. Callers
// hold r.mu.
func (r *registry) channel(s slot) chan inbound {
	if ch, ok := r.pending[s]; ok {
		return ch
	}
	ch := make(chan inbound, 1)
	r.pending[s] = ch
	return ch
}

// deliver parks a request. Requests for slots already passed, released,
// or arriving after close are refused: the connection is closed and
// false returned. A parked request the owner has not consumed yet is
// replaced — the newest connection wins, because a retrying initiator
// only redials after its previous connection died, so whatever was
// parked before is a corpse.
func (r *registry) deliver(s slot, in inbound) bool {
	r.mu.Lock()
	if r.closed || r.done[s] || s.before(r.horizon) {
		r.mu.Unlock()
		_ = in.conn.Close()
		return false
	}
	ch := r.channel(s)
	var stale net.Conn
	select {
	case old := <-ch:
		stale = old.conn
	default:
	}
	ch <- in // buffered and just drained: never blocks under the lock
	r.mu.Unlock()
	if stale != nil {
		_ = stale.Close()
	}
	return true
}

// await blocks until a request for slot s arrives, the deadline passes,
// or the registry's stop channel closes (node shutdown — cancellation
// must not sit out a full exchange timeout). The slot stays open
// afterwards: the owner re-awaits it while re-serving retried
// exchanges, and calls release when done with it for good. A
// non-positive timeout polls: an already-parked request is returned,
// nothing is waited for.
func (r *registry) await(s slot, timeout time.Duration) (inbound, bool) {
	r.mu.Lock()
	if r.closed || r.done[s] {
		r.mu.Unlock()
		return inbound{}, false
	}
	ch := r.channel(s)
	r.mu.Unlock()
	if timeout <= 0 {
		select {
		case in := <-ch:
			return in, true
		default:
			return inbound{}, false
		}
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case in := <-ch:
		return in, true
	case <-t.C:
		// Resolve the race between the timer and a delivery: whatever is
		// parked now is the last word.
		select {
		case in := <-ch:
			return in, true
		default:
			return inbound{}, false
		}
	case <-r.stop:
		return inbound{}, false // close drains the parked conn, if any
	}
}

// release tombstones a slot its owner is done with: later deliveries
// are refused at the door, and a parked request nobody will ever
// consume is closed out.
func (r *registry) release(s slot) {
	r.mu.Lock()
	r.done[s] = true
	ch := r.pending[s]
	delete(r.pending, s)
	var stale net.Conn
	if ch != nil {
		select {
		case in := <-ch:
			stale = in.conn
		default:
		}
	}
	r.mu.Unlock()
	if stale != nil {
		_ = stale.Close()
	}
}

// advance moves the owner's position: entries for earlier slots can
// never be consumed anymore and are closed out, and earlier tombstones
// are garbage-collected.
func (r *registry) advance(pos slot) {
	r.mu.Lock()
	r.horizon = pos
	//lint:orderfree independent per-slot close-out; each entry is handled exactly once
	for s, ch := range r.pending {
		if s.before(pos) {
			select {
			case in := <-ch:
				_ = in.conn.Close()
			default:
			}
			delete(r.pending, s)
		}
	}
	//lint:orderfree independent per-slot garbage collection
	for s := range r.done {
		if s.before(pos) {
			delete(r.done, s)
		}
	}
	r.mu.Unlock()
}

// close refuses all future deliveries and drains parked connections.
func (r *registry) close() {
	r.mu.Lock()
	r.closed = true
	//lint:orderfree independent per-slot drain during shutdown
	for s, ch := range r.pending {
		select {
		case in := <-ch:
			_ = in.conn.Close()
		default:
		}
		delete(r.pending, s)
	}
	r.mu.Unlock()
}
