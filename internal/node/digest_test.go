package node

import (
	"errors"
	"testing"
	"time"

	"chiaroscuro/internal/core"
)

// TestConfigDigestSensitivity pins that the digest separates every
// parameter class it covers, and that defaulted and explicit spellings
// of the same deployment agree (digesting happens after Normalize).
func TestConfigDigestSensitivity(t *testing.T) {
	ts := newSetup(t, 4, 0)
	pack, err := core.PackingFor(ts.proto.Normalize(ts.n), ts.n, ts.data.Dim(), ts.scheme)
	if err != nil {
		t.Fatal(err)
	}
	base := ConfigDigest(ts.proto.Normalize(ts.n), ts.n, ts.data.Dim(), pack)
	if base == 0 {
		t.Fatal("zero digest (0 is the wire sentinel for a pre-digest peer)")
	}
	mutations := map[string]func() uint64{
		"population": func() uint64 { return ConfigDigest(ts.proto.Normalize(ts.n+1), ts.n+1, ts.data.Dim(), pack) },
		"k": func() uint64 {
			p := ts.proto
			p.K = 3
			return ConfigDigest(p.Normalize(ts.n), ts.n, ts.data.Dim(), pack)
		},
		"frac-bits": func() uint64 {
			p := ts.proto
			p.FracBits = 16
			return ConfigDigest(p.Normalize(ts.n), ts.n, ts.data.Dim(), pack)
		},
		"exchanges": func() uint64 {
			p := ts.proto
			p.Exchanges = 11
			return ConfigDigest(p.Normalize(ts.n), ts.n, ts.data.Dim(), pack)
		},
		"series-dim": func() uint64 { return ConfigDigest(ts.proto.Normalize(ts.n), ts.n, ts.data.Dim()+1, pack) },
		"pack-slots": func() uint64 {
			p2 := pack
			p2.Slots++
			return ConfigDigest(ts.proto.Normalize(ts.n), ts.n, ts.data.Dim(), p2)
		},
	}
	for name, mutate := range mutations {
		if got := mutate(); got == base {
			t.Errorf("digest ignores %s", name)
		}
	}
	// Seed is covered by the epoch, not the digest: same deployment at a
	// different seed must keep its digest.
	p := ts.proto
	p.Seed++
	if got := ConfigDigest(p.Normalize(ts.n), ts.n, ts.data.Dim(), pack); got != base {
		t.Error("digest depends on the seed (epoch already covers it)")
	}
}

// TestJoinRejectsConfigMismatch is the handshake end-to-end: a node
// provisioned with different protocol parameters dials into a
// population and must be turned away with ErrConfigMismatch — before
// any protocol traffic, not as a mid-run divergence.
func TestJoinRejectsConfigMismatch(t *testing.T) {
	ts := newSetup(t, 2, 0)
	good, err := New(Config{
		Index: 0, N: ts.n, Series: ts.data.Row(0), Scheme: ts.scheme, Proto: ts.proto,
		ViewInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	bad := ts.proto
	bad.FracBits = 16 // disagrees on the fixed-point encoding
	nd, err := New(Config{
		Index: 1, N: ts.n, Series: ts.data.Row(1), Scheme: ts.scheme, Proto: bad,
		Bootstrap:   good.Addr(),
		JoinTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	err = nd.Join()
	if !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("join error = %v, want ErrConfigMismatch", err)
	}
}
