package node

import (
	"sync"

	"chiaroscuro/internal/wireproto"
)

// book is a node's address-book view: the Newscast-style local view Λ
// mapping population indices to dialable addresses with freshness
// heartbeats. Unlike the protocol state, the book is connectivity
// metadata — it is filled by hello/view gossip, never by the
// deterministic schedule, and its contents carry no participant data.
type book struct {
	mu    sync.Mutex
	self  int
	n     int // population size; out-of-range indices are refused
	items map[int]wireproto.ViewItem
	clock int64
	gone  map[int]bool // peers that announced a graceful leave
}

func newBook(self, n int, addr string) *book {
	b := &book{
		self:  self,
		n:     n,
		items: make(map[int]wireproto.ViewItem, n),
		gone:  make(map[int]bool),
	}
	b.items[self] = wireproto.ViewItem{Index: uint32(self), Addr: addr, Heartbeat: 0}
	return b
}

// merge folds incoming view items in, keeping the freshest entry per
// index (the Newscast merge rule over (index, heartbeat)). Items
// naming indices outside the population are dropped: junk entries must
// not be able to satisfy the roster-complete check or grow the book.
func (b *book) merge(items []wireproto.ViewItem) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, it := range items {
		idx := int(it.Index)
		if idx < 0 || idx >= b.n || idx == b.self {
			continue
		}
		if prev, ok := b.items[idx]; !ok || it.Heartbeat > prev.Heartbeat {
			b.items[idx] = it
		}
	}
}

// roster returns the current view with a fresh self item — the payload
// of a view exchange or a hello-ack.
func (b *book) roster() []wireproto.ViewItem {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock++
	self := b.items[b.self]
	self.Heartbeat = b.clock
	b.items[b.self] = self
	out := make([]wireproto.ViewItem, 0, len(b.items))
	for _, it := range b.items {
		out = append(out, it)
	}
	return out
}

// learn records a directly-announced peer address (a hello) as the
// freshest knowledge about that index.
func (b *book) learn(idx int, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= b.n {
		return
	}
	b.clock++
	b.items[idx] = wireproto.ViewItem{Index: uint32(idx), Addr: addr, Heartbeat: b.clock}
	delete(b.gone, idx)
}

// addr resolves a population index to its last known address ("" when
// unknown or departed).
func (b *book) addr(idx int) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gone[idx] {
		return ""
	}
	it, ok := b.items[idx]
	if !ok {
		return ""
	}
	return it.Addr
}

// size returns how many distinct participants the view covers.
func (b *book) size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// markGone records a graceful departure.
func (b *book) markGone(idx int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gone[idx] = true
}
