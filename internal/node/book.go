package node

import (
	"sort"
	"sync"

	"chiaroscuro/internal/wireproto"
)

// Book is an address-book view: the Newscast-style local view Λ mapping
// population indices to dialable addresses with freshness heartbeats.
// Unlike the protocol state, the book is connectivity metadata — it is
// filled by hello/view gossip, never by the deterministic schedule, and
// its contents carry no participant data.
//
// A Book serves one node in the classic single-daemon deployment, or an
// entire mux.Host worth of co-located virtual nodes: local indices are
// registered with AddLocal and are immune to remote gossip (merge,
// learn, leave), so a hostile or stale view item can never redirect or
// expel a participant this process hosts.
type Book struct {
	mu     sync.Mutex
	n      int // population size; out-of-range indices are refused
	locals map[int]bool
	items  map[int]wireproto.ViewItem
	clock  int64
	gone   map[int]bool // peers that announced a graceful leave
}

// NewBook creates an empty book for a population of n.
func NewBook(n int) *Book {
	return &Book{
		n:      n,
		locals: make(map[int]bool),
		items:  make(map[int]wireproto.ViewItem, n),
		gone:   make(map[int]bool),
	}
}

// AddLocal registers a locally-hosted participant. Local entries are
// authoritative: gossip never overwrites or expels them.
func (b *Book) AddLocal(idx int, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= b.n {
		return
	}
	b.locals[idx] = true
	b.items[idx] = wireproto.ViewItem{Index: uint32(idx), Addr: addr, Heartbeat: 0}
	delete(b.gone, idx)
}

// Merge folds incoming view items in, keeping the freshest entry per
// index (the Newscast merge rule over (index, heartbeat)). Items naming
// indices outside the population or hosted locally are dropped: junk
// entries must not be able to satisfy the roster-complete check, grow
// the book, or redirect a local participant.
func (b *Book) Merge(items []wireproto.ViewItem) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, it := range items {
		idx := int(it.Index)
		if idx < 0 || idx >= b.n || b.locals[idx] {
			continue
		}
		if prev, ok := b.items[idx]; !ok || it.Heartbeat > prev.Heartbeat {
			b.items[idx] = it
		}
	}
}

// Roster returns the current view with fresh local items — the payload
// of a view exchange or a hello-ack.
func (b *Book) Roster() []wireproto.ViewItem {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock++
	//lint:orderfree independent per-index writes of the same clock value
	for idx := range b.locals {
		it := b.items[idx]
		it.Heartbeat = b.clock
		b.items[idx] = it
	}
	// Emit in ascending index order: the roster is a wire payload, and a
	// canonical encoding keeps same-seed runs byte-identical on the wire.
	idxs := make([]int, 0, len(b.items))
	for idx := range b.items {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	out := make([]wireproto.ViewItem, 0, len(idxs))
	for _, idx := range idxs {
		out = append(out, b.items[idx])
	}
	return out
}

// Learn records a directly-announced peer address (a hello) as the
// freshest knowledge about that index, reinstating an evicted peer.
func (b *Book) Learn(idx int, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= b.n || b.locals[idx] {
		return
	}
	b.clock++
	b.items[idx] = wireproto.ViewItem{Index: uint32(idx), Addr: addr, Heartbeat: b.clock}
	delete(b.gone, idx)
}

// Addr resolves a population index to its last known address ("" when
// unknown or departed).
func (b *Book) Addr(idx int) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gone[idx] {
		return ""
	}
	it, ok := b.items[idx]
	if !ok {
		return ""
	}
	return it.Addr
}

// Size returns how many distinct participants the view covers.
func (b *Book) Size() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

// MarkGone records a graceful departure. Local participants cannot be
// expelled by a remote leave notice.
func (b *Book) MarkGone(idx int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.locals[idx] {
		return
	}
	b.gone[idx] = true
}
