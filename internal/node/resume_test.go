package node

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chiaroscuro/internal/wireproto"
)

// launchResumeNodes is launchNodes with a crash-recovery victim: node
// victim runs with a durable journal under dir plus the given commit
// hook (which kills the node at a chosen commit point) and crash hook
// (which can swallow wire legs of the killed slot). When the hook kills
// the victim, its runner relaunches it once from the journal — same
// config, listen address rebound from the identity record — exactly as
// a restarted daemon would, and the relaunched instance's result stands
// in as the victim's. Unlike launchNodes it closes every node before
// returning, so callers can assert on goroutine baselines; victim -1
// runs a plain population (the uncrashed control, same policy and
// timeouts).
func launchResumeNodes(t *testing.T, ts testSetup, victim int, dir string, hook CommitHook, crash CrashHook, policy Policy) []*Result {
	t.Helper()
	journalPath := filepath.Join(dir, "victim.journal")
	nodes := make([]*Node, ts.n)
	var bootstrap string
	mkCfg := func(i int) Config {
		return Config{
			Index:           i,
			N:               ts.n,
			Series:          ts.data.Row(i),
			Scheme:          ts.scheme,
			Proto:           ts.proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: 20 * time.Second,
			FinTimeout:      500 * time.Millisecond,
			JoinTimeout:     20 * time.Second,
			ViewInterval:    200 * time.Millisecond,
			Policy:          policy,
		}
	}
	for i := 0; i < ts.n; i++ {
		cfg := mkCfg(i)
		if i == victim {
			st, err := OpenState(journalPath)
			if err != nil {
				t.Fatal(err)
			}
			cfg.State = st
			cfg.CommitHook = hook
			cfg.CrashHook = crash
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		nodes[i] = nd
		if i == 0 {
			bootstrap = nd.Addr()
		}
	}
	results := make([]*Result, ts.n)
	errs := make([]error, ts.n)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *Node) {
			defer wg.Done()
			res, err := nd.Run()
			if i == victim && err != nil && nd.stopped.Load() {
				// The commit hook killed this instance mid-run (an
				// unrelated failure would not have closed the node);
				// its in-memory result dies with it. Relaunch from the
				// journal.
				_ = nd.Close()
				st, oerr := OpenState(journalPath)
				if oerr != nil {
					errs[i] = oerr
					return
				}
				cfg := mkCfg(i)
				cfg.State = st
				nd2, nerr := New(cfg)
				if nerr != nil {
					_ = st.Close()
					errs[i] = nerr
					return
				}
				t.Cleanup(func() { _ = nd2.Close() })
				res, err = nd2.Run()
				_ = nd2.Close()
			}
			results[i], errs[i] = res, err
		}(i, nd)
	}
	wg.Wait()
	for _, nd := range nodes {
		_ = nd.Close()
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results
}

// exchangeTotals sums the population's commit-relevant counters.
func exchangeTotals(results []*Result) (tot wireproto.Counters) {
	for _, r := range results {
		c := r.Counters
		tot.Initiated += c.Initiated
		tot.Responded += c.Responded
		tot.Retries += c.Retries
		tot.Timeouts += c.Timeouts
		tot.Resumed += c.Resumed
	}
	return tot
}

// TestCrashResumeBitMatchesSimulator is the crash-recovery acceptance
// e2e: a 12-peer networked run has one peer killed at a commit point (a
// responder merge, journaled before the kill), relaunched from its
// journal, and resumed mid-run via the Resume handshake. Node 0 must
// still release centroids bit-identical to the in-memory simulator, and
// every participant — the resumed victim above all — must release a
// view bit-identical to its own view in an uncrashed same-seed run,
// with identical exchange totals (a resume that lost or double-applied
// a single merge would shift both). Running the crash scenario twice
// pins that the kill schedule, the journal replay, and the counter
// totals are all same-seed deterministic.
func TestCrashResumeBitMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	baseline := runtime.NumGoroutine()
	ts := newSetup(t, 12, 0)
	policy := Policy{MaxRetries: 3, Backoff: 50 * time.Millisecond}
	simRes := runSim(t, ts)
	if len(simRes.Centroids) == 0 {
		t.Fatal("simulator produced no centroids")
	}
	clean := launchResumeNodes(t, ts, -1, "", nil, nil, policy)
	assertCentroidsEqual(t, "uncrashed vs sim", simRes.Centroids, clean[0].Centroids)
	cleanTot := exchangeTotals(clean)

	const victim = 3
	runCrash := func(dir string) ([]*Result, bool) {
		// Kill at the victim's first responder commit of sum cycle ≥ 2:
		// FIN received, both halves merged and journaled — nothing is
		// lost, so the resumed run must be bit-identical.
		var killed atomic.Bool
		hook := func(phase, iter, cycle, seq int, initiator bool) bool {
			if phase == phaseSum && cycle >= 2 && !initiator {
				return killed.CompareAndSwap(false, true)
			}
			return false
		}
		res := launchResumeNodes(t, ts, victim, dir, hook, nil, policy)
		return res, killed.Load()
	}

	resA, killedA := runCrash(t.TempDir())
	if !killedA {
		t.Fatal("commit hook never fired — nothing was killed")
	}
	assertCentroidsEqual(t, "crashed run node 0 vs sim", simRes.Centroids, resA[0].Centroids)
	// Each participant releases its own view (the simulator replays
	// participant 0's); bit-identity for the population is each view
	// matching its uncrashed self.
	for i := range resA {
		assertCentroidsEqual(t, fmt.Sprintf("crashed run node %d vs uncrashed", i),
			clean[i].Centroids, resA[i].Centroids)
	}
	totA := exchangeTotals(resA)
	if totA.Initiated != cleanTot.Initiated || totA.Responded != cleanTot.Responded {
		t.Fatalf("exchange totals diverged from the uncrashed run: init %d want %d, resp %d want %d",
			totA.Initiated, cleanTot.Initiated, totA.Responded, cleanTot.Responded)
	}
	if totA.Resumed == 0 {
		t.Fatal("no peer accepted the victim's Resume announcement")
	}

	resB, killedB := runCrash(t.TempDir())
	if !killedB {
		t.Fatal("replay: commit hook never fired")
	}
	assertCentroidsEqual(t, "replay vs first crashed run", resA[0].Centroids, resB[0].Centroids)
	assertCentroidsEqual(t, "replay victim vs first crashed run", resA[victim].Centroids, resB[victim].Centroids)
	totB := exchangeTotals(resB)
	// Initiated/Responded are the protocol's merge commits and must
	// replay exactly. Retry counts are NOT asserted: a retry happens
	// when a dial lands inside the victim's real relaunch window, which
	// is wall-clock-wide (a millisecond or two), not seed-determined.
	if totA.Initiated != totB.Initiated || totA.Responded != totB.Responded {
		t.Fatalf("same-seed replay counter totals diverged:\n  A %+v\n  B %+v", totA, totB)
	}
	checkNoLeak(t, baseline)
}

// TestKillDuringFinNeverDoubleApplies pins the half-completed-exchange
// crash window (Section 6.1.5): the victim is killed between its
// initiator merge commit (journaled) and the FIN leg, so the responder
// never learns the exchange committed and discards its half. The
// resumed victim must NOT re-run the journaled slot: the population's
// initiator-commit total stays exactly the uncrashed run's (a replayed
// merge would commit — and count — twice), the responder total is
// exactly one short (the discarded half), and the whole scenario
// replays to identical counter totals and centroids at the same seed.
func TestKillDuringFinNeverDoubleApplies(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	baseline := runtime.NumGoroutine()
	ts := newSetup(t, 12, 0)
	policy := Policy{MaxRetries: 3, Backoff: 50 * time.Millisecond}
	clean := launchResumeNodes(t, ts, -1, "", nil, nil, policy)
	cleanTot := exchangeTotals(clean)

	const victim = 3
	runCrash := func(dir string) ([]*Result, bool) {
		var killed atomic.Bool
		var killCycle, killSeq atomic.Int64
		hook := func(phase, iter, cycle, seq int, initiator bool) bool {
			if phase == phaseSum && cycle >= 2 && initiator {
				if killed.CompareAndSwap(false, true) {
					killCycle.Store(int64(cycle))
					killSeq.Store(int64(seq))
					return true
				}
			}
			return false
		}
		// The crash hook swallows exactly the killed slot's FIN: a real
		// kill -9 dies between the journal fsync and the send, and the
		// wire must see that silence regardless of how fast the closing
		// sockets drain buffered writes.
		crash := func(leg, phase, iter, cycle, seq int) bool {
			return leg == LegFin && phase == phaseSum && killed.Load() &&
				int64(cycle) == killCycle.Load() && int64(seq) == killSeq.Load()
		}
		res := launchResumeNodes(t, ts, victim, dir, hook, crash, policy)
		return res, killed.Load()
	}

	resA, killedA := runCrash(t.TempDir())
	if !killedA {
		t.Fatal("commit hook never fired — nothing was killed")
	}
	totA := exchangeTotals(resA)
	if totA.Initiated != cleanTot.Initiated {
		t.Fatalf("initiator commits %d, want %d: the journaled merge was lost or double-applied",
			totA.Initiated, cleanTot.Initiated)
	}
	if totA.Responded != cleanTot.Responded-1 {
		t.Fatalf("responder commits %d, want %d (exactly the killed exchange's half discarded)",
			totA.Responded, cleanTot.Responded-1)
	}
	for i, r := range resA {
		if len(r.Centroids) == 0 {
			t.Fatalf("node %d released no centroids", i)
		}
	}

	resB, killedB := runCrash(t.TempDir())
	if !killedB {
		t.Fatal("replay: commit hook never fired")
	}
	totB := exchangeTotals(resB)
	// As in the resume test, merge commits replay exactly; dial-retry
	// counts depend on wall-clock landing inside the relaunch window.
	if totA.Initiated != totB.Initiated || totA.Responded != totB.Responded {
		t.Fatalf("same-seed replay counter totals diverged:\n  A %+v\n  B %+v", totA, totB)
	}
	assertCentroidsEqual(t, "replay node 0", resA[0].Centroids, resB[0].Centroids)
	assertCentroidsEqual(t, "replay victim", resA[victim].Centroids, resB[victim].Centroids)
	checkNoLeak(t, baseline)
}
