package node

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/faultnet"
)

// checkNoLeak polls until the live goroutine count is back at (or
// below) the pre-test baseline — retry loops, suspicion bookkeeping and
// re-awaited responder slots must all unwind on Close. On timeout it
// dumps every stack (the cancel_test.go pattern, local to this package).
func checkNoLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// launchChaosNodes is launchNodes with a fault policy and a faultnet
// injector wired into every node's dialer and crash hook. It closes the
// nodes before returning so callers can assert on goroutine baselines.
func launchChaosNodes(t *testing.T, ts testSetup, plan faultnet.Plan, policy Policy) []*Result {
	t.Helper()
	inj := faultnet.New(plan)
	nodes := make([]*Node, ts.n)
	var bootstrap string
	for i := 0; i < ts.n; i++ {
		nf := inj.Node(i)
		cfg := Config{
			Index:           i,
			N:               ts.n,
			Series:          ts.data.Row(i),
			Scheme:          ts.scheme,
			Proto:           ts.proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: 20 * time.Second,
			FinTimeout:      20 * time.Second,
			JoinTimeout:     20 * time.Second,
			ViewInterval:    200 * time.Millisecond,
			Policy:          policy,
			Dialer:          nf,
			CrashHook:       nf.Crash,
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		nodes[i] = nd
		if i == 0 {
			bootstrap = nd.Addr()
		}
	}
	results := make([]*Result, ts.n)
	errs := make([]error, ts.n)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *Node) {
			defer wg.Done()
			results[i], errs[i] = nd.Run()
		}(i, nd)
	}
	wg.Wait()
	for _, nd := range nodes {
		_ = nd.Close()
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results
}

// TestChaosRunBitMatchesSimulator is the robustness acceptance e2e: 12
// real TCP nodes complete a clustering round under modeled churn plus a
// seeded fault plan — connection refusals, asymmetric partitions, added
// latency — with retries turned on, and still release centroids
// bit-identical to the in-memory simulator. The plan injects no crashes
// and no cuts, and MaxRetries exceeds the plan's MaxStreak, so every
// scheduled exchange completes: same completed-exchange trace, same
// bits. Running the whole thing twice pins both the determinism of the
// fault schedule and that no retry ever double-applies a merge (a
// double-applied half would shift the centroids off the simulator's).
func TestChaosRunBitMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	baseline := runtime.NumGoroutine()
	ts := newSetup(t, 12, 0.2)
	ts.proto.DissCycles = 16
	ts.proto.DecryptCycles = 16
	simRes := runSim(t, ts)
	if len(simRes.Centroids) == 0 {
		t.Fatal("simulator produced no centroids")
	}
	plan := faultnet.Plan{
		Seed:          99,
		RefuseProb:    0.15,
		PartitionProb: 0.15,
		LatencyMax:    500 * time.Microsecond,
	}
	policy := Policy{MaxRetries: 4, Backoff: 5 * time.Millisecond}

	totals := func(results []*Result) (initiated, responded, retries int64) {
		for _, r := range results {
			initiated += r.Counters.Initiated
			responded += r.Counters.Responded
			retries += r.Counters.Retries
		}
		return
	}
	run1 := launchChaosNodes(t, ts, plan, policy)
	assertCentroidsEqual(t, "chaos run 1 vs sim", simRes.Centroids, run1[0].Centroids)
	for i, r := range run1 {
		if len(r.Centroids) == 0 {
			t.Fatalf("node %d released no centroids under chaos", i)
		}
	}
	init1, resp1, retries1 := totals(run1)
	if retries1 == 0 {
		t.Fatal("fault plan injected nothing: no retries recorded")
	}

	run2 := launchChaosNodes(t, ts, plan, policy)
	assertCentroidsEqual(t, "chaos run 2 vs sim", simRes.Centroids, run2[0].Centroids)
	init2, resp2, retries2 := totals(run2)
	if init1 != init2 || resp1 != resp2 || retries1 != retries2 {
		t.Fatalf("same seed, different executions: run 1 initiated/responded/retries %d/%d/%d, run 2 %d/%d/%d",
			init1, resp1, retries1, init2, resp2, retries2)
	}
	checkNoLeak(t, baseline)
}

// flakyDialer fails the first `fails` exchange dials with a transient
// error, then delegates to plain TCP. Membership dials pass through.
type flakyDialer struct {
	mu    sync.Mutex
	fails int
}

func (d *flakyDialer) Dial(peer int, addr string, timeout time.Duration) (net.Conn, error) {
	if peer >= 0 {
		d.mu.Lock()
		if d.fails > 0 {
			d.fails--
			d.mu.Unlock()
			return nil, errors.New("flaky: connection refused") // transient, so retried
		}
		d.mu.Unlock()
	}
	return tcpDialer{}.Dial(peer, addr, timeout)
}

// TestRetryRecoversExchange pins the retry path end to end: the first
// two dial attempts of a dissemination exchange fail, the third lands,
// and both sides converge to exactly the state a clean single-attempt
// exchange produces — the retries are invisible to the protocol.
func TestRetryRecoversExchange(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := newSetup(t, 2, 0)
	flaky := &flakyDialer{fails: 2}
	mk := func(idx int, bootstrap string, dialer Dialer) *Node {
		cfg := Config{
			Index: idx, N: 2,
			Series: ts.data.Row(idx), Scheme: ts.scheme, Proto: ts.proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: 5 * time.Second,
			FinTimeout:      time.Second,
			ViewInterval:    -1,
			Policy:          Policy{MaxRetries: 3, Backoff: time.Millisecond},
			Dialer:          dialer,
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nd
	}
	ndA := mk(0, "", flaky)
	ndB := mk(1, ndA.Addr(), nil)
	ndA.book.Learn(1, ndB.Addr())
	ndB.book.Learn(0, ndA.Addr())

	stA := &iterState{corID: 5, corVec: []float64{1, 2, 3}}
	stB := &iterState{corID: 3, corVec: []float64{9, 8, 7}}

	s := slot{iter: 1, phase: phaseDiss, cycle: 0, seq: 0}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ndB.respondDiss(stB, s, 0)
	}()
	ndA.initiateDiss(stA, 1, s, true)
	<-done

	// Both sides adopted the smaller correction identifier.
	for name, st := range map[string]*iterState{"initiator": stA, "responder": stB} {
		if st.corID != 3 || st.corVec[0] != 9 {
			t.Fatalf("%s holds corID %d vec %v, want the exchanged 3/[9 8 7]", name, st.corID, st.corVec)
		}
	}
	ca, cb := ndA.Counters(), ndB.Counters()
	if ca.Retries != 2 {
		t.Fatalf("initiator recorded %d retries, want 2", ca.Retries)
	}
	if ca.Initiated != 1 || cb.Responded != 1 {
		t.Fatalf("committed %d/%d exchanges, want exactly 1/1 (no double apply)", ca.Initiated, cb.Responded)
	}
	if ca.Timeouts != 0 || cb.Timeouts != 0 {
		t.Fatalf("recovered exchange still recorded timeouts: %d/%d", ca.Timeouts, cb.Timeouts)
	}
	_ = ndA.Close()
	_ = ndB.Close()
	checkNoLeak(t, baseline)
}

// refusingDialer refuses every exchange dial, forever.
type refusingDialer struct{}

func (refusingDialer) Dial(peer int, addr string, timeout time.Duration) (net.Conn, error) {
	if peer >= 0 {
		return nil, errors.New("refused: no route to peer")
	}
	return tcpDialer{}.Dial(peer, addr, timeout)
}

// TestSuspicionEvictsPeer pins the suspicion policy: after SuspicionK
// consecutive initiator-side failures the peer is evicted from the
// address book, the eviction is counted and reported to the churn
// observer, and later slots fast-fail on the missing address instead of
// burning their retry budget.
func TestSuspicionEvictsPeer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := newSetup(t, 2, 0)
	type churnEv struct {
		down   int
		reason string
	}
	var churns []churnEv
	ts.proto.Observer.Churn = func(iter, cycle, down int, reason string) {
		churns = append(churns, churnEv{down, reason})
	}
	cfg := Config{
		Index: 0, N: 2,
		Series: ts.data.Row(0), Scheme: ts.scheme, Proto: ts.proto,
		ViewInterval: -1,
		Policy:       Policy{SuspicionK: 2, Backoff: time.Millisecond},
		Dialer:       refusingDialer{},
	}
	nd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nd.book.Learn(1, "127.0.0.1:1") // reachable on paper, refused on dial
	st := &iterState{corVec: []float64{1}}

	nd.initiateDiss(st, 1, slot{iter: 1, phase: phaseDiss, cycle: 0, seq: 0}, true)
	if got := nd.book.Addr(1); got == "" {
		t.Fatal("one failure already evicted the peer (SuspicionK = 2)")
	}
	nd.initiateDiss(st, 1, slot{iter: 1, phase: phaseDiss, cycle: 1, seq: 0}, true)

	if got := nd.book.Addr(1); got != "" {
		// evicted: addr must be gone
		t.Fatalf("peer still resolvable at %q after %d consecutive failures", got, 2)
	}
	c := nd.Counters()
	if c.Evicted != 1 || c.Suspected != 2 {
		t.Fatalf("evicted/suspected = %d/%d, want 1/2", c.Evicted, c.Suspected)
	}
	if len(churns) != 1 || churns[0].reason != core.ChurnEvicted || churns[0].down != 1 {
		t.Fatalf("churn observer saw %+v, want one %q event", churns, core.ChurnEvicted)
	}
	// The third slot fast-fails on the missing address: one timeout, no
	// retries burned, no second eviction.
	before := c.Timeouts
	nd.initiateDiss(st, 1, slot{iter: 1, phase: phaseDiss, cycle: 2, seq: 0}, true)
	c = nd.Counters()
	if c.Timeouts != before+1 || c.Retries != 0 {
		t.Fatalf("evicted-peer slot recorded timeouts %d→%d retries %d, want one fast-fail and zero retries",
			before, c.Timeouts, c.Retries)
	}
	if c.Evicted != 1 {
		t.Fatalf("evicted twice: %d", c.Evicted)
	}
	// A direct hello reinstates the peer.
	nd.book.Learn(1, "127.0.0.1:1")
	if nd.book.Addr(1) == "" {
		t.Fatal("hello did not reinstate the evicted peer")
	}
	_ = nd.Close()
	checkNoLeak(t, baseline)
}

// TestBadFrameDropsConnNotListener is the regression for the accept
// path: a malformed frame — impossible length, over-limit length — must
// increment BadFrames and kill that connection only. The listener keeps
// serving: a well-formed join afterwards succeeds.
func TestBadFrameDropsConnNotListener(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := newSetup(t, 2, 0)
	cfgA := Config{Index: 0, N: 2, Series: ts.data.Row(0), Scheme: ts.scheme, Proto: ts.proto, ViewInterval: -1}
	ndA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}

	send := func(frame []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", ndA.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		// The node must drop the connection, not stall it until a timeout.
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("read after garbage = %v, want the connection dropped (EOF)", err)
		}
	}

	// A frame shorter than its own fixed header.
	short := make([]byte, 4)
	binary.BigEndian.PutUint32(short, 4)
	send(short)
	// A frame claiming more bytes than any Chiaroscuro message may carry.
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, 1<<27)
	send(huge)

	if got := ndA.Counters().BadFrames; got != 2 {
		t.Fatalf("BadFrames = %d after two hostile frames, want 2", got)
	}

	// The accept loop survived: a real peer can still join through it.
	cfgB := Config{Index: 1, N: 2, Series: ts.data.Row(1), Scheme: ts.scheme, Proto: ts.proto,
		Bootstrap: ndA.Addr(), ViewInterval: -1, JoinTimeout: 5 * time.Second}
	ndB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := ndB.Join(); err != nil {
		t.Fatalf("join after hostile frames: %v", err)
	}
	if got := ndA.book.Addr(1); got != ndB.Addr() {
		t.Fatalf("bootstrap learned %q for the joiner, want %q", got, ndB.Addr())
	}
	_ = ndA.Close()
	_ = ndB.Close()
	checkNoLeak(t, baseline)
}

// TestResponderSurvivesFinCut pins the bounded fin-loss re-await: when
// the initiator's commit leg is cut mid-frame, the responder resolves
// the slot as half-completed within its short re-await window — it does
// not burn the slot's whole exchange deadline — and applies nothing.
func TestResponderSurvivesFinCut(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := newSetup(t, 2, 0)
	mk := func(idx int, dialer Dialer) *Node {
		cfg := Config{
			Index: idx, N: 2,
			Series: ts.data.Row(idx), Scheme: ts.scheme, Proto: ts.proto,
			ExchangeTimeout: 30 * time.Second,
			FinTimeout:      300 * time.Millisecond,
			ViewInterval:    -1,
			Policy:          Policy{MaxRetries: 2, Backoff: time.Millisecond},
			Dialer:          dialer,
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return nd
	}
	// The dialer lets the first frame of each connection (the REQ)
	// through and severs the second (the FIN) mid-frame: the responder
	// sees the commit leg die after its own merge point was armed.
	ndA := mk(0, finCutDialer{})
	ndB := mk(1, nil)
	ndA.book.Learn(1, ndB.Addr())
	ndB.book.Learn(0, ndA.Addr())

	stA := &iterState{corID: 5, corVec: []float64{1}}
	stB := &iterState{corID: 3, corVec: []float64{9}}
	preB := stB.corID

	s := slot{iter: 1, phase: phaseDiss, cycle: 0, seq: 0}
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		ndB.respondDiss(stB, s, 0)
	}()
	ndA.initiateDiss(stA, 1, s, true)
	<-done
	elapsed := time.Since(start)

	// The initiator committed (merge before the fin); the responder saw
	// the fin die and stayed untouched — the Section 6.1.5 half-completed
	// shape — well inside the 30s exchange deadline.
	if ndA.Counters().Initiated != 1 {
		t.Fatalf("initiator committed %d times, want 1", ndA.Counters().Initiated)
	}
	if stB.corID != preB {
		t.Fatal("responder applied a half-completed exchange")
	}
	if ndB.Counters().Timeouts == 0 {
		t.Fatal("responder did not account the lost fin")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("fin loss burned %s, want the bounded re-await window", elapsed)
	}
	_ = ndA.Close()
	_ = ndB.Close()
	checkNoLeak(t, baseline)
}

// finCutDialer wraps plain TCP so the second frame written on each
// exchange connection — the FIN — emits one byte and dies mid-frame.
type finCutDialer struct{}

func (finCutDialer) Dial(peer int, addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := tcpDialer{}.Dial(peer, addr, timeout)
	if err != nil || peer < 0 {
		return conn, err
	}
	return &finCutConn{Conn: conn}, nil
}

type finCutConn struct {
	net.Conn
	writes int
}

func (c *finCutConn) Write(p []byte) (int, error) {
	c.writes++
	if c.writes < 2 {
		return c.Conn.Write(p)
	}
	_, _ = c.Conn.Write(p[:1])
	_ = c.Conn.Close()
	return 1, errors.New("cut: connection severed mid-frame")
}
