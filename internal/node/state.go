package node

import (
	"fmt"
	"math"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/journal"
	"chiaroscuro/internal/timeseries"
	"chiaroscuro/internal/wireproto"
)

// This file is the node's durable crash-recovery layer: what gets
// written to the journal, when, and how a relaunched process turns the
// journal back into a live participant that is bit-identical to one
// that never crashed.
//
// Three record kinds, in strict append order:
//
//	recIdentity    once, at first open: who this journal belongs to
//	               (digest/index/population/epoch/seed/listen address).
//	               A reopen that disagrees is refused — replaying a
//	               journal under different provisioning would corrupt
//	               the population, not just this peer.
//	recIteration   at each iteration start: the input centroids, the
//	               iteration's privacy spend, and everything already
//	               accumulated (traces, budget, counters).
//	recCheckpoint  at each exchange commit point: the full iteration
//	               state plus the committed slot. The append and fsync
//	               happen after the merge and before the initiator's
//	               FIN leg, which is what makes recovery exact — see
//	               the WAL-ordering note on journalCommit.
//
// Replay keeps only the newest iteration record and the newest
// checkpoint belonging to it (an iteration record supersedes the
// previous iteration's checkpoints). Resume then re-executes the run
// from the top, skipping every slot at or before the checkpointed
// position and replaying (and discarding) the shared-seed RNG draws the
// pre-crash run consumed, so the RNG cursors, the schedule mirror and
// the privacy accountant all sit exactly where they did at the crash.

// Journal record kinds.
const (
	recIdentity   byte = 1
	recIteration  byte = 2
	recCheckpoint byte = 3
)

// stateVecMax bounds decoded centroid/trace vector lengths in state
// records. The journal is this node's own writing, but a corrupted or
// hostile file must fail with ErrCorrupt, never an absurd allocation.
const stateVecMax = 1 << 20

// State is a node's durable protocol position: a crc-framed journal
// (internal/journal) holding the identity, per-iteration and per-commit
// records described above. Open it with OpenState and hand it to the
// node via Config.State; the node owns it afterwards (Close flushes and
// closes it).
type State struct {
	j        *journal.Journal
	identity *identity
	lastIter []byte // newest iteration record payload, raw
	lastCkpt []byte // newest checkpoint payload belonging to lastIter
}

// identity pins a journal to the participant that wrote it.
type identity struct {
	digest uint64
	index  int
	n      int
	epoch  uint64
	seed   uint64
	addr   string
}

// OpenState opens (or creates) a node state journal and replays it. A
// torn final record — the crash landed mid-append — is truncated away
// by the journal layer; anything else that does not decode is
// journal.ErrCorrupt.
func OpenState(path string) (*State, error) {
	j, recs, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	st := &State{j: j}
	for _, r := range recs {
		switch r.Kind {
		case recIdentity:
			id, err := decodeIdentity(r.Payload)
			if err != nil {
				_ = j.Close()
				return nil, err
			}
			st.identity = &id
		case recIteration:
			// A new iteration supersedes the previous iteration's
			// checkpoints: they describe state the run has moved past.
			st.lastIter = r.Payload
			st.lastCkpt = nil
		case recCheckpoint:
			st.lastCkpt = r.Payload
		default:
			_ = j.Close()
			return nil, fmt.Errorf("%w: unknown state record kind %d", journal.ErrCorrupt, r.Kind)
		}
	}
	if st.identity == nil && (st.lastIter != nil || st.lastCkpt != nil) {
		_ = j.Close()
		return nil, fmt.Errorf("%w: protocol records precede the identity record", journal.ErrCorrupt)
	}
	return st, nil
}

// Path returns the journal's file path.
func (st *State) Path() string { return st.j.Path() }

// Lag reports the journal's unsynced tail (entries and bytes appended
// since the last fsync) — zero whenever the node is between commits,
// which is what /healthz reports as journal lag.
func (st *State) Lag() (entries int, bytes int64) {
	if st == nil || st.j == nil {
		return 0, 0
	}
	return st.j.Lag()
}

// Close flushes and closes the journal.
func (st *State) Close() error {
	if st == nil || st.j == nil {
		return nil
	}
	return st.j.Close()
}

// Resuming reports whether the journal already carries an identity —
// i.e. this open is a relaunch of an existing participant, not a first
// start.
func (st *State) Resuming() bool { return st != nil && st.identity != nil }

// savedAddr returns the listen address the journal's identity recorded,
// or "" (nil-safe). A relaunch tries to rebind it so peers' address
// books stay valid across the kill window.
func (st *State) savedAddr() string {
	if st == nil || st.identity == nil {
		return ""
	}
	return st.identity.addr
}

// --- binary cursors (journal-local; mirrors wireproto's enc/dec) ---

type senc struct{ b []byte }

func (e *senc) u8(v byte) { e.b = append(e.b, v) }
func (e *senc) u32(v uint32) {
	e.b = append(e.b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (e *senc) u64(v uint64) {
	e.u32(uint32(v >> 32))
	e.u32(uint32(v))
}
func (e *senc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *senc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *senc) blob(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

type sdec struct {
	b   []byte
	err error
}

func (d *sdec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", journal.ErrCorrupt, msg)
	}
}

func (d *sdec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("short state record")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *sdec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("short state record")
		return 0
	}
	v := uint32(d.b[0])<<24 | uint32(d.b[1])<<16 | uint32(d.b[2])<<8 | uint32(d.b[3])
	d.b = d.b[4:]
	return v
}

func (d *sdec) u64() uint64 {
	hi := d.u32()
	return uint64(hi)<<32 | uint64(d.u32())
}

func (d *sdec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *sdec) str(maxLen int) string {
	n := int(d.u32())
	if d.err != nil {
		return ""
	}
	if n > maxLen || len(d.b) < n {
		d.fail("string exceeds bound")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *sdec) blob(maxLen int) []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > maxLen || len(d.b) < n {
		d.fail("blob exceeds bound")
		return nil
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p
}

func (d *sdec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: trailing bytes in state record", journal.ErrCorrupt)
	}
	return nil
}

// --- identity record ---

func encodeIdentity(id identity) []byte {
	var e senc
	e.u64(id.digest)
	e.u32(uint32(id.index))
	e.u32(uint32(id.n))
	e.u64(id.epoch)
	e.u64(id.seed)
	e.str(id.addr)
	return e.b
}

func decodeIdentity(p []byte) (identity, error) {
	d := sdec{b: p}
	id := identity{
		digest: d.u64(),
		index:  int(d.u32()),
		n:      int(d.u32()),
		epoch:  d.u64(),
		seed:   d.u64(),
	}
	id.addr = d.str(256)
	return id, d.done()
}

// --- iteration record ---

// iterationRecord is what RunContext needs to re-enter the loop at the
// top of iteration iter: its input centroids (nil slots preserved — the
// protocol dimensions are population-wide constants), the budget
// already spent, the traces already released, and the wire counters.
type iterationRecord struct {
	iter        int
	epsIter     float64
	totalBefore float64
	centroids   []timeseries.Series
	traces      []core.IterationTrace
	counters    wireproto.Counters
}

func encodeCounters(e *senc, c wireproto.Counters) {
	for _, v := range []int64{
		c.Initiated, c.Responded, c.Timeouts, c.Rejected, c.BadFrames,
		c.Retries, c.Suspected, c.Evicted, c.Resumed, c.BytesSent, c.BytesRecv,
	} {
		e.u64(uint64(v))
	}
}

func decodeCounters(d *sdec) wireproto.Counters {
	var c wireproto.Counters
	for _, p := range []*int64{
		&c.Initiated, &c.Responded, &c.Timeouts, &c.Rejected, &c.BadFrames,
		&c.Retries, &c.Suspected, &c.Evicted, &c.Resumed, &c.BytesSent, &c.BytesRecv,
	} {
		*p = int64(d.u64())
	}
	return c
}

func encodeIteration(r iterationRecord) []byte {
	var e senc
	e.u32(uint32(r.iter))
	e.f64(r.epsIter)
	e.f64(r.totalBefore)
	e.u32(uint32(len(r.centroids)))
	for _, c := range r.centroids {
		if c == nil {
			e.u8(0)
			continue
		}
		e.u8(1)
		e.u32(uint32(len(c)))
		for _, v := range c {
			e.f64(v)
		}
	}
	e.u32(uint32(len(r.traces)))
	for _, t := range r.traces {
		e.u32(uint32(t.Iteration))
		e.u32(uint32(t.CentroidsIn))
		e.u32(uint32(t.CentroidsOut))
		e.f64(t.EpsilonSpent)
		e.u32(uint32(t.SumCycles))
		e.u32(uint32(t.DissCycles))
		e.u32(uint32(t.DecryptCycles))
		e.f64(t.Agreement)
		e.u32(uint32(len(t.Deviants)))
		for _, dv := range t.Deviants {
			e.u32(uint32(dv))
		}
		e.f64(t.PreInertia)
		e.f64(t.PostInertia)
	}
	encodeCounters(&e, r.counters)
	return e.b
}

func decodeIteration(p []byte) (iterationRecord, error) {
	d := sdec{b: p}
	r := iterationRecord{
		iter:        int(d.u32()),
		epsIter:     d.f64(),
		totalBefore: d.f64(),
	}
	k := int(d.u32())
	if d.err == nil && k > stateVecMax {
		d.fail("centroid count exceeds bound")
	}
	for i := 0; i < k && d.err == nil; i++ {
		if d.u8() == 0 {
			r.centroids = append(r.centroids, nil)
			continue
		}
		dim := int(d.u32())
		if d.err == nil && dim > stateVecMax {
			d.fail("centroid length exceeds bound")
			break
		}
		c := make(timeseries.Series, 0, minInt(dim, len(d.b)/8+1))
		for j := 0; j < dim && d.err == nil; j++ {
			c = append(c, d.f64())
		}
		r.centroids = append(r.centroids, c)
	}
	nt := int(d.u32())
	if d.err == nil && nt > stateVecMax {
		d.fail("trace count exceeds bound")
	}
	for i := 0; i < nt && d.err == nil; i++ {
		var t core.IterationTrace
		t.Iteration = int(d.u32())
		t.CentroidsIn = int(d.u32())
		t.CentroidsOut = int(d.u32())
		t.EpsilonSpent = d.f64()
		t.SumCycles = int(d.u32())
		t.DissCycles = int(d.u32())
		t.DecryptCycles = int(d.u32())
		t.Agreement = d.f64()
		ndv := int(d.u32())
		if d.err == nil && ndv > stateVecMax {
			d.fail("deviant count exceeds bound")
			break
		}
		for j := 0; j < ndv && d.err == nil; j++ {
			t.Deviants = append(t.Deviants, int(d.u32()))
		}
		t.PreInertia = d.f64()
		t.PostInertia = d.f64()
		r.traces = append(r.traces, t)
	}
	r.counters = decodeCounters(&d)
	if err := d.done(); err != nil {
		return iterationRecord{}, err
	}
	return r, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- checkpoint record ---

// checkpointRecord is one commit point's full iteration state. The
// three protocol segments reuse the wire codecs (with zeroed exchange
// headers): the journal speaks the same canonical encoding as the wire,
// so the bounded decoders and their fuzzing cover both.
type checkpointRecord struct {
	pos      slot
	sum      wireproto.SumMsg
	diss     wireproto.DissMsg
	dec      wireproto.DecMsg
	counters wireproto.Counters
}

func encodeCheckpoint(s slot, st *iterState, ctrs wireproto.Counters) []byte {
	var e senc
	e.u32(uint32(s.iter))
	e.u32(uint32(s.phase))
	e.u32(uint32(s.cycle))
	e.u32(uint32(s.seq))
	e.blob(wireproto.MarshalSum(wireproto.SumMsg{
		Means: st.means, Noise: st.noise, CtrSigma: st.ctrS, CtrOmega: st.ctrW,
	}))
	e.blob(wireproto.MarshalDiss(wireproto.DissMsg{ID: st.corID, Vec: st.corVec}))
	e.blob(wireproto.MarshalDec(wireproto.DecMsg{
		CTs: st.decCTs, Omega: st.decOmega, Parts: st.decParts,
	}))
	encodeCounters(&e, ctrs)
	return e.b
}

func decodeCheckpoint(p []byte, lim wireproto.Limits) (checkpointRecord, error) {
	d := sdec{b: p}
	r := checkpointRecord{pos: slot{
		iter:  int(d.u32()),
		phase: int(d.u32()),
		cycle: int(d.u32()),
		seq:   int(d.u32()),
	}}
	sumB := d.blob(lim.MaxFrameLen)
	dissB := d.blob(lim.MaxFrameLen)
	decB := d.blob(lim.MaxFrameLen)
	r.counters = decodeCounters(&d)
	if err := d.done(); err != nil {
		return checkpointRecord{}, err
	}
	if r.pos.phase < phaseSum || r.pos.phase > phaseDec {
		return checkpointRecord{}, fmt.Errorf("%w: checkpoint phase %d out of range", journal.ErrCorrupt, r.pos.phase)
	}
	var err error
	if r.sum, err = wireproto.UnmarshalSum(sumB, lim); err != nil {
		return checkpointRecord{}, fmt.Errorf("%w: checkpoint sum segment: %v", journal.ErrCorrupt, err)
	}
	if r.diss, err = wireproto.UnmarshalDiss(dissB, lim); err != nil {
		return checkpointRecord{}, fmt.Errorf("%w: checkpoint diss segment: %v", journal.ErrCorrupt, err)
	}
	if r.dec, err = wireproto.UnmarshalDec(decB, lim); err != nil {
		return checkpointRecord{}, fmt.Errorf("%w: checkpoint dec segment: %v", journal.ErrCorrupt, err)
	}
	return r, nil
}

// restoreIterState rebuilds the live iteration state from a checkpoint.
// Fields belonging to phases the checkpoint had not reached yet stay
// unset: the resumed iterate computes them at the phase boundary
// exactly as an uncrashed run would.
func restoreIterState(ck checkpointRecord) *iterState {
	st := &iterState{
		means: ck.sum.Means,
		noise: ck.sum.Noise,
		ctrS:  ck.sum.CtrSigma,
		ctrW:  ck.sum.CtrOmega,
	}
	if ck.pos.phase >= phaseDiss {
		st.corID, st.corVec = ck.diss.ID, ck.diss.Vec
	}
	if ck.pos.phase >= phaseDec {
		st.decCTs, st.decOmega, st.decParts = ck.dec.CTs, ck.dec.Omega, ck.dec.Parts
		if st.decParts == nil {
			st.decParts = make(map[int][]homenc.PartialDecryption)
		}
	}
	return st
}

// --- append paths ---

func (st *State) append(kind byte, payload []byte) error {
	if err := st.j.Append(kind, payload); err != nil {
		return err
	}
	return st.j.Sync()
}

func (st *State) saveIdentity(id identity) error {
	if err := st.append(recIdentity, encodeIdentity(id)); err != nil {
		return err
	}
	st.identity = &id
	return nil
}

func (st *State) saveIteration(r iterationRecord) error {
	return st.append(recIteration, encodeIteration(r))
}

func (st *State) saveCheckpoint(s slot, is *iterState, ctrs wireproto.Counters) error {
	return st.append(recCheckpoint, encodeCheckpoint(s, is, ctrs))
}

// --- node integration ---

// resumePoint is a decoded journal handed to RunContext: where to
// re-enter the protocol and with what state.
type resumePoint struct {
	iter        int     // iteration to re-enter
	epsIter     float64 // its recorded privacy spend (sanity only; recomputed)
	totalBefore float64 // budget spent by completed iterations
	centroids   []timeseries.Series
	traces      []core.IterationTrace
	pos         *slot      // last committed slot, nil: resume at the iteration start
	st          *iterState // restored live state, non-nil iff pos is
}

// attachState binds an opened journal to the node: a fresh journal gets
// the identity record; an existing one is verified against this
// provisioning and decoded into the resume point RunContext consumes.
// Called from New before any background goroutine starts.
func (nd *Node) attachState(st *State) error {
	if st.identity != nil {
		id := st.identity
		if id.digest != nd.digest || id.index != nd.cfg.Index || id.n != nd.cfg.N ||
			id.epoch != nd.epoch || id.seed != nd.cfg.Proto.Seed {
			return fmt.Errorf("%w: journal %s was written by participant %d of %d under digest %016x, epoch %d",
				ErrConfigMismatch, st.Path(), id.index, id.n, id.digest, id.epoch)
		}
		nd.resuming = true
	} else if err := st.saveIdentity(identity{
		digest: nd.digest, index: nd.cfg.Index, n: nd.cfg.N,
		epoch: nd.epoch, seed: nd.cfg.Proto.Seed, addr: nd.addr,
	}); err != nil {
		return err
	}
	nd.state = st
	nd.resumeAnn = wireproto.Resume{
		Index: uint32(nd.cfg.Index), Addr: nd.addr,
		N: uint32(nd.cfg.N), Digest: nd.digest,
	}
	if st.lastIter == nil {
		return nil
	}
	itRec, err := decodeIteration(st.lastIter)
	if err != nil {
		return err
	}
	rp := &resumePoint{
		iter:        itRec.iter,
		epsIter:     itRec.epsIter,
		totalBefore: itRec.totalBefore,
		centroids:   itRec.centroids,
		traces:      itRec.traces,
	}
	ctrs := itRec.counters
	if st.lastCkpt != nil {
		ck, err := decodeCheckpoint(st.lastCkpt, nd.lim)
		if err != nil {
			return err
		}
		if ck.pos.iter == itRec.iter {
			pos := ck.pos
			rp.pos = &pos
			rp.st = restoreIterState(ck)
			ctrs = ck.counters
			nd.resumeAnn.Iter = uint32(pos.iter)
			nd.resumeAnn.Phase = uint32(pos.phase)
			nd.resumeAnn.Cycle = uint32(pos.cycle)
			nd.resumeAnn.Seq = uint32(pos.seq)
		}
	}
	nd.counters.Restore(ctrs)
	nd.resume = rp
	return nil
}

// journalCommit makes one exchange commit durable. Ordering is the
// whole point: the merge has been applied, the journal append+fsync
// happens HERE, and only then does the initiator send its FIN. A crash
// in the merge→fsync window loses at most this one merge, and both
// directions of that loss are legal protocol outcomes: an initiator
// that loses it never sent the FIN, so the responder never merged and
// the exchange simply didn't happen; a responder that loses it leaves
// the initiator committed alone — exactly the paper's Section 6.1.5
// half-completed exchange. A resume never double-applies because it
// skips every slot at or before the journaled position.
//
// A journal that stops taking writes halts the node instead of running
// on: continuing un-journaled would let a later crash replay exchanges
// the population already saw happen.
func (nd *Node) journalCommit(s slot, st *iterState, initiator bool) {
	if nd.state != nil && nd.stateErr == nil {
		if err := nd.state.saveCheckpoint(s, st, nd.counters.Snapshot()); err != nil {
			nd.stateErr = fmt.Errorf("node %d: journal write failed: %w", nd.cfg.Index, err)
			_ = nd.Close()
			return
		}
	}
	if nd.commitHook != nil && nd.commitHook(s.phase, s.iter, s.cycle, s.seq, initiator) {
		_ = nd.Close() // simulated kill −9 at a commit point
	}
}
