package node

import (
	"context"
	"fmt"
	"math/big"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/timeseries"
)

// Run joins the population (if Join was not called yet) and drives the
// full clustering protocol to completion, returning this participant's
// own released view.
//
// The iteration schedule is fixed (Exchanges + DissCycles +
// DecryptCycles per iteration, MaxIterations iterations or until the
// budget runs dry): with no global observer, participants stay in
// lockstep by construction rather than by agreement. The first
// iteration's released centroids are bit-identical to the in-memory
// simulator at the same seed and parameters; from the second iteration
// on each participant continues from its own decoded view (the
// simulator instead replays participant 0's view for everyone), so
// views may drift within the gossip-error envelope the paper's unicity
// argument bounds.
func (nd *Node) Run() (*Result, error) {
	return nd.RunContext(context.Background())
}

// RunContext is Run with cancellation: when ctx is cancelled the node
// shuts down — listener, live connections and loops included — and
// RunContext returns ctx.Err(). The node cannot be reused afterwards
// (a cancelled participant has left the population for good).
func (nd *Node) RunContext(ctx context.Context) (*Result, error) {
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				_ = nd.Close()
			case <-watchDone:
			}
		}()
	}
	if nd.book.Size() < nd.cfg.N {
		if err := nd.Join(); err != nil {
			return nil, ctxErr(ctx, err)
		}
	}
	centroids := kmeans.Compact(nd.cfg.Proto.InitCentroids)
	res := &Result{}
	startIter := 1
	rz := nd.resume
	nd.resume = nil
	if rz != nil {
		// Crash recovery: re-enter the run where the journal left it.
		// The announcement sweep lifts suspicion evictions across the
		// population before any exchange is re-attempted, then the loop
		// variables, the privacy accountant and the shared-seed RNG
		// cursor are replayed to their pre-crash positions — the journal
		// stores results, not randomness, so the RNG state is recovered
		// by re-drawing (and discarding) what the completed iterations
		// consumed.
		nd.resumeSweep()
		startIter = rz.iter
		centroids = rz.centroids
		res.TotalEpsilon = rz.totalBefore
		res.Traces = append(res.Traces, rz.traces...)
		if rz.totalBefore > 0 {
			if err := nd.acct.Spend(rz.totalBefore); err != nil {
				return nil, err
			}
		}
		perIter := nd.cfg.Proto.Exchanges + nd.cfg.Proto.DissCycles + nd.cfg.Proto.DecryptCycles
		for i := 0; i < (startIter-1)*perIter; i++ {
			_ = nd.sched.DrawCycle()
		}
		for it := 1; it < startIter; it++ {
			_ = eesum.NodeNoiseStreams(nd.protoRNG, nd.cfg.N)
		}
	}
	for it := startIter; it <= nd.cfg.Proto.MaxIterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		epsIter := nd.cfg.Proto.Budget.Epsilon(it)
		if epsIter <= 0 {
			break // privacy budget exhausted
		}
		if err := nd.acct.Spend(epsIter); err != nil {
			return nil, err
		}
		nd.iterNow.Store(int64(it))
		// Journal the iteration boundary — except when resuming into
		// this very iteration, whose record (and checkpoints) the
		// journal already holds: appending it again would supersede
		// those checkpoints and make a second crash replay committed
		// exchanges.
		if nd.state != nil && (rz == nil || it != rz.iter) {
			if err := nd.state.saveIteration(iterationRecord{
				iter: it, epsIter: epsIter, totalBefore: res.TotalEpsilon,
				centroids: centroids, traces: res.Traces, counters: nd.counters.Snapshot(),
			}); err != nil {
				return nil, fmt.Errorf("node %d: journal write failed: %w", nd.cfg.Index, err)
			}
		}
		var rzIter *resumePoint
		if rz != nil && it == rz.iter && rz.pos != nil {
			rzIter = rz
		}
		trace, next, err := nd.iterate(it, centroids, epsIter, rzIter)
		if err != nil {
			if nd.stateErr != nil {
				return nil, nd.stateErr
			}
			return nil, ctxErr(ctx, err)
		}
		res.TotalEpsilon += epsIter
		res.Traces = append(res.Traces, *trace)
		if len(kmeans.Compact(next)) == 0 {
			break // noise overwhelmed every centroid in this node's view
		}
		// Keep the full slot layout (lost means stay nil): participants
		// may disagree on which slots died, but the protocol dimensions
		// stay population-wide constants.
		centroids = next
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Centroids = kmeans.Compact(centroids)
	res.AvgMessages = nd.sched.AvgMessages()
	res.AvgBytes = nd.sched.AvgBytes()
	res.Counters = nd.counters.Snapshot()
	return res, nil
}

// ctxErr prefers the context's error: a cancelled run fails all over
// the place (timed-out exchanges, missing key-shares), and every such
// symptom must surface as the cancellation that caused it.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// iterate runs one full protocol iteration over the wire. A non-nil rz
// resumes the iteration mid-flight from its journaled checkpoint: the
// restored state replaces the locally-built one, every slot at or
// before the checkpointed position is skipped (its merge is already in
// the restored state — re-executing it would double-apply), and the
// shared-seed noise draws the pre-crash run consumed are replayed and
// discarded so the stream cursor advances identically. Phase-boundary
// transitions the pre-crash run already performed (the correction
// proposal, the noise perturbation) are likewise skipped — their
// results are in the restored ciphertexts.
func (nd *Node) iterate(it int, centroids []timeseries.Series, epsIter float64, rz *resumePoint) (*core.IterationTrace, []timeseries.Series, error) {
	k := len(centroids)
	n := len(nd.cfg.Series)
	trace := &core.IterationTrace{Iteration: it, CentroidsIn: len(kmeans.Compact(centroids)), EpsilonSpent: epsIter}

	var st *iterState
	var after *slot
	if rz != nil {
		st, after = rz.st, rz.pos
	}

	// --- Noise streams: every participant derives the same family from
	// the shared seed and keeps stream Index (the simulator materializes
	// all of them). Deriving the family consumes base-RNG draws, so a
	// resumed iteration derives it too.
	streams := eesum.NodeNoiseStreams(nd.protoRNG, nd.cfg.N)
	myStream := streams[nd.cfg.Index]
	noiseCfg := eesum.NoiseConfig{
		Lambdas: core.NoiseLambdas(k, n, epsIter, nd.cfg.Proto.SumShare, nd.cfg.Proto.DMin, nd.cfg.Proto.DMax),
		NShares: nd.cfg.Proto.NoiseShares,
	}
	if st == nil {
		// --- Assignment step (local, cleartext). The contribution is
		// packed into the deployment's shared slot layout before
		// encryption; the noise shares come from this node's own stream.
		st = &iterState{}
		st.means = nd.encryptState(nd.pack.Pack(core.BuildContribution(nd.cfg.Series, centroids, nd.codec)))
		shares := eesum.NoiseShareVector(myStream, noiseCfg)
		noiseVec := make([]*big.Int, len(shares))
		for j, x := range shares {
			noiseVec[j] = nd.codec.Encode(x)
		}
		st.noise = nd.encryptState(nd.pack.Pack(noiseVec))
		st.ctrS = 1
		if nd.cfg.Index == 0 {
			st.ctrW = 1
		}
	} else {
		// Resume: the restored ciphertexts already contain these shares;
		// replay the draw so the stream cursor matches the crashed run.
		_ = eesum.NoiseShareVector(myStream, noiseCfg)
	}

	// --- Algorithm 3 (a): means and noise sums in lockstep, counter
	// piggybacking, over the wire.
	nd.phaseNow.Store(int64(phaseSum))
	nd.runPhase(it, phaseSum, nd.cfg.Proto.Exchanges, st, after)
	trace.SumCycles = nd.cfg.Proto.Exchanges

	// --- Algorithm 3 (b): correction proposal from own stream, min-
	// identifier dissemination, local application. The counter freezes
	// when the sum phase ends, so a resume past that point replays the
	// proposal with the identical estimate and discards it (the restored
	// corID/corVec may already have adopted a lower identifier).
	est, ok := 0.0, st.ctrW > 0
	if ok {
		est = st.ctrS / st.ctrW
	}
	corID, corVec := eesum.CorrectionProposal(myStream, noiseCfg, est, ok)
	if after == nil || after.phase < phaseDiss {
		st.corID, st.corVec = corID, corVec
	}
	nd.phaseNow.Store(int64(phaseDiss))
	nd.runPhase(it, phaseDiss, nd.cfg.Proto.DissCycles, st, after)
	trace.DissCycles = nd.cfg.Proto.DissCycles
	if after == nil || after.phase < phaseDec {
		cor := make([]*big.Int, len(st.corVec))
		for j, x := range st.corVec {
			cor[j] = new(big.Int).Neg(nd.codec.Encode(x))
		}
		// Packing is linear, so the packed negated correction subtracts
		// exactly per slot.
		if err := eesum.AddEncryptedState(nd.cfg.Scheme, st.noise, nd.pack.Pack(cor), nd.dimWk); err != nil {
			return nil, nil, err
		}
		if err := eesum.PerturbState(nd.cfg.Scheme, st.means, st.noise); err != nil {
			return nil, nil, fmt.Errorf("node %d: %w", nd.cfg.Index, err)
		}

		// --- Algorithm 3 (c): epidemic threshold decryption over the wire.
		st.decCTs = st.means.CTs
		st.decOmega = st.means.Omega
		st.decParts = make(map[int][]homenc.PartialDecryption, nd.cfg.Scheme.Threshold())
	}
	nd.phaseNow.Store(int64(phaseDec))
	nd.runPhase(it, phaseDec, nd.cfg.Proto.DecryptCycles, st, after)
	trace.DecryptCycles = nd.cfg.Proto.DecryptCycles

	tau := nd.cfg.Scheme.Threshold()
	if len(st.decParts) < tau {
		return nil, nil, fmt.Errorf("node %d: gathered %d of %d key-shares in the fixed decryption budget", nd.cfg.Index, len(st.decParts), tau)
	}
	ms, err := eesum.CombineParts(nd.cfg.Scheme, st.decCTs, st.decParts, tau, nd.dimWk)
	if err != nil {
		return nil, nil, err
	}
	vals, err := eesum.DecodePackedState(nd.cfg.Scheme, nd.pack, ms, st.decOmega, k*(n+1))
	if err != nil {
		return nil, nil, err
	}

	// --- Convergence step (local).
	next := core.Postprocess(vals, k, n, core.PostprocessParams{
		DMin: nd.cfg.Proto.DMin, DMax: nd.cfg.Proto.DMax,
		RangeSlack: nd.cfg.Proto.RangeSlack, CountFloor: nd.cfg.Proto.CountFloor,
		Smooth: nd.cfg.Proto.Smooth, SMAFraction: nd.cfg.Proto.SMAFraction,
	})
	released := kmeans.Compact(next)
	trace.CentroidsOut = len(released)
	if hook := nd.cfg.Proto.Observer.Iteration; hook != nil {
		hook(*trace, released)
	}
	return trace, next, nil
}

// runPhase executes one phase's fixed cycle budget: every cycle's
// schedule is drawn from the mirror engine (identical on every
// participant), and this node's participations execute strictly in
// schedule order. A non-nil after is the resume position: slots at or
// before it were committed (and journaled) by the pre-crash run and are
// skipped — the cycle is still drawn (the schedule cursor must advance)
// and the registry horizon still moves (stale deliveries from retrying
// peers get closed out instead of stranding connections).
func (nd *Node) runPhase(it, phase, cycles int, st *iterState, after *slot) {
	me := nd.cfg.Index
	for c := 0; c < cycles; c++ {
		if nd.stopped.Load() {
			return
		}
		sched := nd.sched.DrawCycle()
		for seq, ex := range sched {
			if ex.A != me && ex.B != me {
				continue
			}
			if nd.stopped.Load() {
				return
			}
			s := slot{iter: it, phase: phase, cycle: c, seq: seq}
			if after != nil && !after.before(s) {
				continue // already executed before the crash
			}
			if ex.A == me {
				nd.initiate(phase, st, ex.B, s, ex.Full)
			} else {
				nd.respond(phase, st, s, ex.A)
			}
		}
		nd.reg.advance(slot{iter: it, phase: phase, cycle: c + 1})
		if hook := nd.cfg.Proto.Observer.Phase; hook != nil {
			hook(it, core.Phase(phase), c+1, cycles)
		}
	}
}

func (nd *Node) initiate(phase int, st *iterState, peer int, s slot, full bool) {
	switch phase {
	case phaseSum:
		nd.initiateSum(st, peer, s, full)
	case phaseDiss:
		nd.initiateDiss(st, peer, s, full)
	default:
		nd.initiateDec(st, peer, s, full)
	}
}

func (nd *Node) respond(phase int, st *iterState, s slot, from int) {
	switch phase {
	case phaseSum:
		nd.respondSum(st, s, from)
	case phaseDiss:
		nd.respondDiss(st, s, from)
	default:
		nd.respondDec(st, s, from)
	}
}
