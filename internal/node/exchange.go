package node

import (
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"

	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/wireproto"
)

// iterState is the participant's live protocol state for one iteration:
// the two lockstep EESum states, the cleartext counter, the correction
// proposal, and the decryption state. Only the exchange currently being
// processed by the main loop touches it, so no locking is needed.
type iterState struct {
	means eesum.SumState
	noise eesum.SumState
	ctrS  float64
	ctrW  float64

	corID  uint64
	corVec []float64

	decCTs   []homenc.Ciphertext
	decOmega *big.Int
	decParts map[int][]homenc.PartialDecryption
}

// hdrFor stamps an exchange header for a scheduled slot.
func (nd *Node) hdrFor(s slot, to int) wireproto.ExchangeHdr {
	return wireproto.ExchangeHdr{
		Iter:  uint32(s.iter),
		Cycle: uint32(s.cycle),
		Seq:   uint32(s.seq),
		From:  uint32(nd.cfg.Index),
		To:    uint32(to),
	}
}

// tryOutcome classifies one attempt at an exchange slot. The taxonomy
// is what makes retries safe: only tryRetry — a failure strictly before
// this side's state merge — may run the attempt again. Once a side has
// merged (tryCommitted) its half is applied exactly once, so a chaos
// run with the same completed-exchange trace stays bit-identical to the
// simulator.
type tryOutcome int

const (
	// tryCommitted: this side's merge was applied. Terminal; the slot
	// is never re-attempted, whatever happens to the commit leg after.
	tryCommitted tryOutcome = iota
	// tryRetry: a transient connection failure strictly before this
	// side's merge (dial, request write, response read, fin loss). No
	// state changed, so the identical attempt may run again.
	tryRetry
	// tryReject: the peer sent invalid protocol data. Terminal —
	// retrying a hostile peer re-downloads the same garbage.
	tryReject
	// tryAbandon: terminal without a usable connection (no address for
	// the peer). Counts as a timeout, is never retried.
	tryAbandon
	// tryHalf: the slot deliberately ends half-completed — a crash-hook
	// firing on this side's send, or modeled churn's abort flag. No
	// counter: this is the paper's Section 6.1.5 outcome, not an error.
	tryHalf
	// tryFinLost (responder only): the commit leg never arrived. Almost
	// always the initiator committed and died (or its fin was cut) — a
	// half-completed exchange — but it may also have failed reading the
	// response pre-merge, in which case its redial is already in
	// flight. The responder re-awaits only a short, backoff-sized
	// window instead of the slot's full deadline.
	tryFinLost
)

// crashes consults the crash hook for one of this node's send legs.
func (nd *Node) crashes(leg int, s slot) bool {
	return nd.crashHook != nil && nd.crashHook(leg, s.phase, s.iter, s.cycle, s.seq)
}

// initiateWith drives one initiator slot under the fault policy: run
// attempts until one commits, a terminal outcome lands, or the retry
// budget is spent, backing off between attempts with capped jitter.
// Suspicion strikes are charged to the peer on terminal failures and
// cleared on commit.
func (nd *Node) initiateWith(peer int, s slot, try func() tryOutcome) {
	for attempt := 0; ; attempt++ {
		switch try() {
		case tryCommitted:
			nd.peerOK(peer)
			return
		case tryReject:
			nd.counters.Rejected.Add(1)
			nd.peerFailed(peer, s)
			return
		case tryAbandon:
			nd.counters.Timeouts.Add(1)
			nd.peerFailed(peer, s)
			return
		case tryHalf:
			return
		case tryRetry:
			if attempt >= nd.policy.MaxRetries {
				nd.counters.Timeouts.Add(1)
				nd.peerFailed(peer, s)
				return
			}
			nd.counters.Retries.Add(1)
			if !nd.sleep(backoffDelay(nd.jitter, nd.policy.Backoff, attempt, 8*nd.policy.Backoff)) {
				return // shutting down
			}
		}
	}
}

// respondWith drives one responder slot: await the request, serve it,
// and — when a pre-commit connection failure suggests the initiator
// failed before its own merge and will redial — re-await the slot
// within its absolute deadline. The serve callback commits at most
// once; every re-served attempt starts from the same untouched state,
// so the response bytes are identical across attempts. from is the
// scheduled initiator: when it is known-unreachable (crash-suspected or
// departed) the wait is cut short instead of burning the deadline —
// under a restart storm those abandoned waits, 50 slots × the full
// exchange timeout per storm, were the collapse from 227 to 1.45
// cycles/s the crash-storm soak measured.
func (nd *Node) respondWith(s slot, from int, serve func(in inbound) tryOutcome) {
	defer nd.reg.release(s)
	deadline := time.Now().Add(nd.cfg.ExchangeTimeout)
	wait := nd.cfg.ExchangeTimeout
	for attempt := 0; ; attempt++ {
		in, ok := nd.awaitSlot(s, from, minDur(wait, time.Until(deadline)))
		if !ok {
			nd.counters.Timeouts.Add(1)
			return
		}
		out := serve(in)
		_ = in.conn.Close()
		switch out {
		case tryCommitted, tryHalf:
			return
		case tryReject:
			nd.counters.Rejected.Add(1)
			return
		case tryAbandon:
			nd.counters.Timeouts.Add(1)
			return
		case tryRetry, tryFinLost:
			if attempt >= nd.policy.MaxRetries || !time.Now().Before(deadline) {
				nd.counters.Timeouts.Add(1)
				return
			}
			nd.counters.Retries.Add(1)
			if out == tryFinLost {
				// Wait only for a redial already in flight: one backoff
				// envelope, not the slot's whole deadline — the far more
				// likely reading of a lost fin is an initiator that
				// committed and died, and nobody redials a committed slot.
				wait = 8*nd.policy.Backoff + 250*time.Millisecond
			} else {
				wait = nd.cfg.ExchangeTimeout
			}
		}
	}
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// suspicionPoll is how often a waiting responder re-checks whether the
// initiator it awaits became unreachable.
const suspicionPoll = 250 * time.Millisecond

// awaitSlot is registry.await sliced into short waits so the responder
// can release a slot early once its scheduled initiator is known to be
// unreachable. The early exit still performs one final zero-timeout
// poll — a request parked in the race window is served, and the caller
// counts exactly one timeout either way, keeping counter totals
// identical to a full-deadline wait. The check only ever fires for
// peers the suspicion policy evicted or the book marked gone, so runs
// without suspicion (every deterministic replay test) behave exactly as
// before.
func (nd *Node) awaitSlot(s slot, from int, timeout time.Duration) (inbound, bool) {
	deadline := time.Now().Add(timeout)
	for {
		slice := minDur(suspicionPoll, time.Until(deadline))
		if slice <= 0 {
			return nd.reg.await(s, 0)
		}
		if in, ok := nd.reg.await(s, slice); ok {
			return in, true
		}
		if nd.stopped.Load() {
			return inbound{}, false
		}
		if nd.peerUnreachable(from) {
			return nd.reg.await(s, 0)
		}
	}
}

// dialOutcome classifies a dial error for the retry loop.
func dialOutcome(err error) tryOutcome {
	if errors.Is(err, errNoAddress) {
		return tryAbandon // fast-fail: retrying cannot conjure an address
	}
	return tryRetry
}

// sendFin emits the commit leg unless the crash hook kills the exchange
// here. Modeled mid-exchange churn (full=false in the schedule) sends
// an explicit abort so the responder resolves instantly; the slow path
// — saying nothing and letting the responder's fin timeout fire — is
// what a genuine crash produces, with the identical half-completed
// outcome.
func (nd *Node) sendFin(conn net.Conn, kind byte, hdr wireproto.ExchangeHdr, s slot, full bool, payload func(wireproto.ExchangeHdr) []byte) {
	if nd.crashes(LegFin, s) {
		return // simulated crash between the merge and FIN
	}
	if !full {
		hdr.Flags |= wireproto.FlagAbort
	}
	_ = nd.writeFrame(conn, kind, payload(hdr))
}

// --- sum phase (encrypted means + noise lockstep + counter) ---

func (nd *Node) initiateSum(st *iterState, peer int, s slot, full bool) {
	nd.initiateWith(peer, s, func() tryOutcome {
		conn, err := nd.dial(peer)
		if err != nil {
			return dialOutcome(err)
		}
		defer conn.Close()
		if nd.crashes(LegReq, s) {
			return tryHalf
		}
		hdr := nd.hdrFor(s, peer)
		req := wireproto.SumMsg{Hdr: hdr, Means: st.means, Noise: st.noise, CtrSigma: st.ctrS, CtrOmega: st.ctrW}
		// Request legs carry the destination index so a multiplexed
		// listener can route them; later legs ride the routed connection.
		if err := nd.writeFrameTo(conn, wireproto.KindSumReq, peer, wireproto.MarshalSum(req)); err != nil {
			return tryRetry
		}
		f, err := nd.readFrame(conn)
		if err != nil || f.Kind != wireproto.KindSumResp {
			return tryRetry
		}
		resp, err := wireproto.UnmarshalSum(f.Payload, nd.lim)
		if err != nil || !nd.validSumState(resp.Means, len(st.means.CTs)) || !nd.validSumState(resp.Noise, len(st.noise.CTs)) {
			return tryReject
		}
		// Initiator half: the commit point. Applied exactly once — no
		// failure after this line is ever retried (the sim's
		// Exchange(a, b, *) a-side).
		st.means = eesum.MergeSum(nd.cfg.Scheme, st.means, resp.Means, nd.dimWk)
		st.noise = eesum.MergeSum(nd.cfg.Scheme, st.noise, resp.Noise, nd.dimWk)
		st.ctrS, st.ctrW = (st.ctrS+resp.CtrSigma)/2, (st.ctrW+resp.CtrOmega)/2
		nd.counters.Initiated.Add(1)
		nd.journalCommit(s, st, true)
		nd.sendFin(conn, wireproto.KindSumFin, hdr, s, full, func(h wireproto.ExchangeHdr) []byte {
			return wireproto.MarshalFin(wireproto.Fin{Hdr: h})
		})
		return tryCommitted
	})
}

func (nd *Node) respondSum(st *iterState, s slot, from int) {
	nd.respondWith(s, from, func(in inbound) tryOutcome {
		req, err := wireproto.UnmarshalSum(in.frame.Payload, nd.lim)
		if err != nil || int(req.Hdr.From) != from ||
			!nd.validSumState(req.Means, len(st.means.CTs)) || !nd.validSumState(req.Noise, len(st.noise.CTs)) {
			return tryReject
		}
		if nd.crashes(LegResp, s) {
			return tryHalf
		}
		resp := wireproto.SumMsg{Hdr: req.Hdr, Means: st.means, Noise: st.noise, CtrSigma: st.ctrS, CtrOmega: st.ctrW}
		if err := nd.writeFrame(in.conn, wireproto.KindSumResp, wireproto.MarshalSum(resp)); err != nil {
			return tryRetry
		}
		fin, out := nd.awaitFin(in.conn, wireproto.KindSumFin)
		if out != tryCommitted {
			return out
		}
		if fin.Flags&wireproto.FlagAbort != 0 {
			return tryHalf // modeled mid-exchange churn
		}
		// Responder half (the sim's Exchange b-side under full=true); the
		// merge arguments keep (initiator, responder) order on both sides.
		st.means = eesum.MergeSum(nd.cfg.Scheme, req.Means, st.means, nd.dimWk)
		st.noise = eesum.MergeSum(nd.cfg.Scheme, req.Noise, st.noise, nd.dimWk)
		st.ctrS, st.ctrW = (req.CtrSigma+st.ctrS)/2, (req.CtrOmega+st.ctrW)/2
		nd.counters.Responded.Add(1)
		nd.journalCommit(s, st, false)
		return tryCommitted
	})
}

// awaitFin reads the commit leg with the fin deadline. A clean read
// returns tryCommitted; a lost or mistyped fin returns tryFinLost; a
// fin that arrived but does not decode is a tryReject.
func (nd *Node) awaitFin(conn net.Conn, wantKind byte) (wireproto.ExchangeHdr, tryOutcome) {
	_ = conn.SetReadDeadline(time.Now().Add(nd.cfg.FinTimeout))
	f, err := nd.readFrame(conn)
	if err != nil || f.Kind != wantKind {
		return wireproto.ExchangeHdr{}, tryFinLost
	}
	hdr, err := wireproto.PeekHdr(f.Payload)
	if err != nil {
		return wireproto.ExchangeHdr{}, tryReject
	}
	return hdr, tryCommitted
}

// --- correction dissemination phase ---

func (nd *Node) initiateDiss(st *iterState, peer int, s slot, full bool) {
	nd.initiateWith(peer, s, func() tryOutcome {
		conn, err := nd.dial(peer)
		if err != nil {
			return dialOutcome(err)
		}
		defer conn.Close()
		if nd.crashes(LegReq, s) {
			return tryHalf
		}
		hdr := nd.hdrFor(s, peer)
		req := wireproto.DissMsg{Hdr: hdr, ID: st.corID, Vec: st.corVec}
		if err := nd.writeFrameTo(conn, wireproto.KindDissReq, peer, wireproto.MarshalDiss(req)); err != nil {
			return tryRetry
		}
		f, err := nd.readFrame(conn)
		if err != nil || f.Kind != wireproto.KindDissResp {
			return tryRetry
		}
		resp, err := wireproto.UnmarshalDiss(f.Payload, nd.lim)
		if err != nil || len(resp.Vec) != len(st.corVec) {
			return tryReject
		}
		// Commit point.
		if resp.ID < st.corID {
			st.corID, st.corVec = resp.ID, resp.Vec
		}
		nd.counters.Initiated.Add(1)
		nd.journalCommit(s, st, true)
		nd.sendFin(conn, wireproto.KindDissFin, hdr, s, full, func(h wireproto.ExchangeHdr) []byte {
			return wireproto.MarshalFin(wireproto.Fin{Hdr: h})
		})
		return tryCommitted
	})
}

func (nd *Node) respondDiss(st *iterState, s slot, from int) {
	nd.respondWith(s, from, func(in inbound) tryOutcome {
		req, err := wireproto.UnmarshalDiss(in.frame.Payload, nd.lim)
		if err != nil || int(req.Hdr.From) != from || len(req.Vec) != len(st.corVec) {
			return tryReject
		}
		if nd.crashes(LegResp, s) {
			return tryHalf
		}
		resp := wireproto.DissMsg{Hdr: req.Hdr, ID: st.corID, Vec: st.corVec}
		if err := nd.writeFrame(in.conn, wireproto.KindDissResp, wireproto.MarshalDiss(resp)); err != nil {
			return tryRetry
		}
		fin, out := nd.awaitFin(in.conn, wireproto.KindDissFin)
		if out != tryCommitted {
			return out
		}
		if fin.Flags&wireproto.FlagAbort != 0 {
			return tryHalf
		}
		if req.ID < st.corID {
			st.corID, st.corVec = req.ID, req.Vec
		}
		nd.counters.Responded.Add(1)
		nd.journalCommit(s, st, false)
		return tryCommitted
	})
}

// --- epidemic decryption phase ---

func (nd *Node) initiateDec(st *iterState, peer int, s slot, full bool) {
	nd.initiateWith(peer, s, func() tryOutcome {
		conn, err := nd.dial(peer)
		if err != nil {
			return dialOutcome(err)
		}
		defer conn.Close()
		if nd.crashes(LegReq, s) {
			return tryHalf
		}
		hdr := nd.hdrFor(s, peer)
		req := wireproto.DecMsg{Hdr: hdr, CTs: st.decCTs, Omega: st.decOmega, Parts: st.decParts}
		if err := nd.writeFrameTo(conn, wireproto.KindDecReq, peer, wireproto.MarshalDec(req)); err != nil {
			return tryRetry
		}
		f, err := nd.readFrame(conn)
		if err != nil || f.Kind != wireproto.KindDecResp {
			return tryRetry
		}
		resp, err := wireproto.UnmarshalDec(f.Payload, nd.lim)
		if err != nil || !validDecState(resp, len(st.decCTs), nd.cfg.Scheme.NumShares()) {
			return tryReject
		}
		tau := nd.cfg.Scheme.Threshold()
		peerShare := peer + 1

		// Everything below mirrors the sim's Exchange(a, b, full) with this
		// node as a. Adoption decisions and the fin-leg partials depend only
		// on pre-exchange states, so compute them before mutating anything.
		aAdopts := eesum.DecAdopts(len(st.decParts), len(resp.Parts))
		peerAdopts := eesum.DecAdopts(len(resp.Parts), len(st.decParts))

		// FIN payload: this side's key-share applied to the responder's
		// post-adoption ciphertexts (the sim's apply(b, a); adoption copies
		// pre-exchange state, so pre-state is the right input).
		var freshForPeer []homenc.PartialDecryption
		if full {
			peerPostCTs, peerPostParts := resp.CTs, resp.Parts
			if peerAdopts {
				peerPostCTs, peerPostParts = st.decCTs, st.decParts
			}
			if eesum.DecNeeds(peerPostParts, tau, nd.share) {
				if ps, err := eesum.DecPartials(nd.cfg.Scheme, nd.share, peerPostCTs, nd.dimWk); err == nil {
					freshForPeer = ps
				}
			}
		}

		// a-side transition (adopt, apply(a,b), apply(a,a)): the commit
		// point — applied exactly once.
		if aAdopts {
			st.decCTs, st.decOmega = resp.CTs, resp.Omega
			st.decParts = eesum.CopyParts(resp.Parts, tau)
		}
		if len(resp.Fresh) > 0 && eesum.DecNeeds(st.decParts, tau, peerShare) {
			if ps, err := validPartials(resp.Fresh, peerShare, len(st.decCTs)); err == nil {
				st.decParts[peerShare] = ps
			} else {
				nd.counters.Rejected.Add(1)
			}
		}
		if eesum.DecNeeds(st.decParts, tau, nd.share) {
			if ps, err := eesum.DecPartials(nd.cfg.Scheme, nd.share, st.decCTs, nd.dimWk); err == nil {
				st.decParts[nd.share] = ps
			}
		}
		nd.counters.Initiated.Add(1)
		nd.journalCommit(s, st, true)

		nd.sendFin(conn, wireproto.KindDecFin, hdr, s, full, func(h wireproto.ExchangeHdr) []byte {
			return wireproto.MarshalDec(wireproto.DecMsg{Hdr: h, Fresh: freshForPeer})
		})
		return tryCommitted
	})
}

func (nd *Node) respondDec(st *iterState, s slot, from int) {
	nd.respondWith(s, from, func(in inbound) tryOutcome {
		req, err := wireproto.UnmarshalDec(in.frame.Payload, nd.lim)
		if err != nil || int(req.Hdr.From) != from || !validDecState(req, len(st.decCTs), nd.cfg.Scheme.NumShares()) {
			return tryReject
		}
		if nd.crashes(LegResp, s) {
			return tryHalf
		}
		tau := nd.cfg.Scheme.Threshold()
		myPartsPre, reqParts := len(st.decParts), len(req.Parts)

		// This side's key-share over the initiator's post-adoption
		// ciphertexts (the sim's apply(a, b)), computed before any commit.
		reqAdopts := eesum.DecAdopts(reqParts, myPartsPre)
		initPostCTs, initPostParts := req.CTs, req.Parts
		if reqAdopts {
			initPostCTs = st.decCTs
			initPostParts = st.decParts
		}
		var fresh []homenc.PartialDecryption
		if eesum.DecNeeds(initPostParts, tau, nd.share) {
			if ps, err := eesum.DecPartials(nd.cfg.Scheme, nd.share, initPostCTs, nd.dimWk); err == nil {
				fresh = ps
			}
		}
		resp := wireproto.DecMsg{Hdr: req.Hdr, CTs: st.decCTs, Omega: st.decOmega, Parts: st.decParts, Fresh: fresh}
		if err := nd.writeFrame(in.conn, wireproto.KindDecResp, wireproto.MarshalDec(resp)); err != nil {
			return tryRetry
		}
		_ = in.conn.SetReadDeadline(time.Now().Add(nd.cfg.FinTimeout))
		f, err := nd.readFrame(in.conn)
		if err != nil || f.Kind != wireproto.KindDecFin {
			return tryFinLost
		}
		fin, err := wireproto.UnmarshalDec(f.Payload, nd.lim)
		if err != nil {
			return tryReject
		}
		if fin.Hdr.Flags&wireproto.FlagAbort != 0 {
			return tryHalf
		}

		// b-side commit (sim's adopt(b,a), apply(b,a), apply(b,b)):
		// applied exactly once.
		if eesum.DecAdopts(myPartsPre, reqParts) {
			st.decCTs, st.decOmega = req.CTs, req.Omega
			st.decParts = eesum.CopyParts(req.Parts, tau)
		}
		fromShare := from + 1
		if len(fin.Fresh) > 0 && eesum.DecNeeds(st.decParts, tau, fromShare) {
			if ps, err := validPartials(fin.Fresh, fromShare, len(st.decCTs)); err == nil {
				st.decParts[fromShare] = ps
			} else {
				nd.counters.Rejected.Add(1)
			}
		}
		if eesum.DecNeeds(st.decParts, tau, nd.share) {
			if ps, err := eesum.DecPartials(nd.cfg.Scheme, nd.share, st.decCTs, nd.dimWk); err == nil {
				st.decParts[nd.share] = ps
			}
		}
		nd.counters.Responded.Add(1)
		nd.journalCommit(s, st, false)
		return tryCommitted
	})
}

// validPartials checks a fresh partial vector claims the expected share
// index on every element and covers the full vector.
func validPartials(ps []homenc.PartialDecryption, share, dim int) ([]homenc.PartialDecryption, error) {
	if len(ps) != dim {
		return nil, fmt.Errorf("node: %d partials for a %d-vector", len(ps), dim)
	}
	for _, p := range ps {
		if p.Index != share || p.V == nil {
			return nil, fmt.Errorf("node: partial claims share %d, want %d", p.Index, share)
		}
	}
	return ps, nil
}

// validDecState vets a peer's decryption state before any of it can be
// adopted: the ciphertext vector covers the full dimension, the weight
// is present, and every gathered partial set is a full-length vector
// under its claimed share index — a malformed map must not be able to
// panic CombineParts after adoption.
func validDecState(m wireproto.DecMsg, dim, numShares int) bool {
	if len(m.CTs) != dim || m.Omega == nil {
		return false
	}
	//lint:orderfree pure validation: rejects on any bad entry, order cannot change the verdict
	for idx, ps := range m.Parts {
		if idx < 1 || idx > numShares {
			return false
		}
		if _, err := validPartials(ps, idx, dim); err != nil {
			return false
		}
	}
	return true
}

// validSumState vets a peer's EESum state: full dimension, weight
// present, and an epoch within the deployment's headroom bound — a
// hostile epoch would otherwise drive a 2^(epoch diff) ciphertext
// rescaling of unbounded cost.
func (nd *Node) validSumState(st eesum.SumState, dim int) bool {
	return len(st.CTs) == dim && st.Omega != nil && st.Epoch >= 0 && st.Epoch <= nd.maxEpoch
}
