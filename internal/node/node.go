// Package node is the networked Chiaroscuro peer runtime: it drives
// the full encrypted Diptych protocol — assignment, encrypted
// means/noise sums, noise-surplus correction, epidemic threshold
// decryption, centroid update — over real TCP connections framed by
// internal/wireproto.
//
// Determinism model. Every participant is provisioned with the same
// seed and protocol parameters, mirrors the simulation engine
// (sim.Engine.DrawCycle) to derive the identical per-cycle exchange
// schedule, and executes its own participations strictly in schedule
// order. Exchanges that share no participant commute, and exchanges
// sharing one are ordered identically on both sides, so the distributed
// execution is conflict-serializable in the schedule order: a networked
// run releases bit-identical centroids to an in-memory simulation of
// the same seed and parameters (first iteration exactly; later
// iterations each participant continues from its own decoded view, as
// a real deployment must).
//
// Exchange shape. Each scheduled exchange is a three-leg round trip on
// one TCP connection: REQ (initiator state) → RESP (responder pre-merge
// state) → FIN (commit). The initiator applies its half after RESP; the
// responder applies its half only after a clean FIN. A responder that
// dies after RESP leaves the initiator with exactly the half-completed
// state of the paper's Section 6.1.5 churn model; a FIN that never
// arrives (initiator crash, or modeled churn's abort flag) leaves the
// responder untouched the same way.
package node

import (
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
	"chiaroscuro/internal/wireproto"
)

// Dialer opens connections to peers. The default dials TCP directly;
// fault-injection layers (internal/faultnet) substitute their own.
// peer is the destination's population index, or -1 for membership
// traffic (hello/view gossip) whose destination index is unknown.
type Dialer interface {
	Dial(peer int, addr string, timeout time.Duration) (net.Conn, error)
}

// tcpDialer is the default Dialer: a plain TCP dial.
type tcpDialer struct{}

func (tcpDialer) Dial(_ int, addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Exchange legs, in wire order. CrashHook and the fault plans speak
// this numbering.
const (
	LegReq  = 0 // initiator's request push
	LegResp = 1 // responder's pre-merge state
	LegFin  = 2 // initiator's commit
)

// CrashHook, when set, is consulted before sending any exchange leg;
// returning true crashes the node's side of the exchange at exactly
// that point (the leg is never written, the connection dies silently).
// A crash before LegFin reproduces the half-completed-exchange state of
// the paper's Section 6.1.5 churn model — the generalization of the
// original fin-leg test hook.
type CrashHook func(leg, phase, iter, cycle, seq int) bool

// Policy is the node-side fault-tolerance policy (the public API's
// Options.FaultPolicy). The zero value reproduces the unhardened
// behavior: one attempt per exchange, no suspicion.
type Policy struct {
	// MaxRetries is how many additional attempts a failed exchange leg
	// gets before the slot is abandoned. Only failures strictly before
	// this side's state merge are retried — a committed half is never
	// re-applied, which is what keeps retried runs bit-identical to the
	// simulator on the same completed-exchange trace.
	MaxRetries int
	// Backoff is the initial retry backoff; it doubles per attempt
	// (capped at 8×) with ±50% jitter. Defaults to 25ms when
	// MaxRetries > 0.
	Backoff time.Duration
	// SuspicionK evicts a peer from the address book after this many
	// consecutive initiator-side exchange failures (0 = never). Later
	// exchanges to an evicted peer fast-fail instead of burning their
	// deadline; a direct hello from the peer reinstates it.
	SuspicionK int
}

// Config provisions one participant.
type Config struct {
	Index  int               // population index (0-based; key-share Index+1)
	N      int               // population size
	Series timeseries.Series // this participant's own time-series
	Scheme homenc.Scheme     // shared threshold scheme (key material)
	Proto  core.Config       // shared protocol parameters (seed included)
	Epoch  uint64            // population epoch for the wire (0: derived from seed)

	Listen    string // listen address (default "127.0.0.1:0")
	Bootstrap string // address of any live peer ("" for the first node)

	// External marks a virtual node hosted behind a shared listener
	// (mux.Host): the node opens no listener and runs no membership
	// loops of its own — inbound frames arrive via Deliver, the host
	// handles hello/view gossip, and Join passively waits for the shared
	// book to cover the population. Addr is then required: the shared
	// listener's address this participant advertises.
	External bool
	Addr     string

	// Book, when set, is a shared address book (one per mux.Host instead
	// of one per participant). The node registers itself in it via
	// AddLocal. Nil: the node owns a private book.
	Book *Book

	// Schedule, when set, is this participant's cursor over a shared
	// ScheduleSource (one schedule mirror per process instead of one
	// sim.Engine per participant). Nil: the node builds a private
	// source. Views of one source MUST all come from configurations that
	// would build identical private sources.
	Schedule *ScheduleView

	// ExchangeTimeout bounds every blocking step of an exchange: the
	// dial, the wait for a scheduled request, and the response read.
	// FinTimeout bounds only the responder's wait for the commit leg
	// (shorter under modeled churn so half-completed exchanges resolve
	// quickly). JoinTimeout bounds the roster bootstrap. ViewInterval
	// paces the background address-book gossip (<0 disables).
	ExchangeTimeout time.Duration
	FinTimeout      time.Duration
	JoinTimeout     time.Duration
	ViewInterval    time.Duration

	// Policy hardens the node against hostile networks: exchange
	// retries with capped jittered exponential backoff, and peer
	// suspicion. The zero value keeps the single-attempt behavior.
	Policy Policy

	// Dialer substitutes the connection layer (nil: plain TCP). The
	// fault-injection harness wires internal/faultnet in here.
	Dialer Dialer

	// CrashHook, when set, crashes exchanges at chosen legs (tests and
	// chaos harnesses).
	CrashHook CrashHook

	// State, when set, is the node's durable crash-recovery journal
	// (OpenState). The node verifies it belongs to this provisioning,
	// checkpoints every exchange commit into it (append + fsync before
	// the initiator's FIN), and — when the journal already carries
	// protocol records — resumes the run from the last durable commit
	// instead of starting over. The node owns the State from here on;
	// Close flushes and closes it.
	State *State

	// CommitHook, when set, is consulted after every exchange commit
	// point (merge applied and journaled, initiator's FIN not yet sent);
	// returning true kills the whole node right there — the test- and
	// chaos-harness stand-in for kill −9 at a commit point.
	CommitHook CommitHook
}

// CommitHook observes exchange commit points; see Config.CommitHook.
type CommitHook func(phase, iter, cycle, seq int, initiator bool) bool

// Result is the participant's own outcome of a networked run.
type Result struct {
	Centroids    []timeseries.Series // this participant's released view (compacted)
	Traces       []core.IterationTrace
	TotalEpsilon float64
	AvgMessages  float64 // scheduled messages per participant (mirror accounting)
	AvgBytes     float64 // scheduled bytes per participant (mirror accounting)
	Counters     wireproto.Counters
}

// Node is one live networked participant.
type Node struct {
	cfg      Config
	codec    homenc.Codec
	pack     homenc.PackedCodec // shared ciphertext slot layout (Slots == 1: packing off)
	lim      wireproto.Limits
	epoch    uint64
	share    int // own 1-based key-share index
	dimWk    int // worker count for per-dimension sweeps
	maxEpoch int // EESum epoch bound a peer state may legitimately carry

	ln   net.Listener // nil for external (mux-hosted) nodes
	addr string
	live connSet // every open conn, closable on shutdown

	book       *Book
	sharedBook bool // book is shared with co-located participants
	reg        *registry

	sched    *ScheduleView // cursor over the schedule mirror (never executes exchanges)
	digest   uint64        // shared-config digest carried in hellos
	protoRNG *randx.RNG    // base noise source; per-node streams split off
	jitter   *randx.Jitter // timing-only draws (backoff, hello targets), seeded per node
	acct     *dp.Accountant

	counters wireproto.CounterSet
	iterNow  atomic.Int64 // current iteration, for metrics
	phaseNow atomic.Int64 // current phase rank, for metrics

	policy     Policy
	dialer     Dialer
	crashHook  CrashHook
	commitHook CommitHook

	// state is the durable crash-recovery journal (nil: volatile node);
	// stateErr is the first journal write failure, sticky — it halts the
	// node, and RunContext reports it. resume/resuming/resumeAnn are
	// decoded from the journal at attach: the point to re-enter the run
	// at, and the KindResume announcement a relaunch sends instead of a
	// fresh hello. stateErr and resume are touched only by the main
	// protocol loop.
	state     *State
	stateErr  error
	resume    *resumePoint
	resuming  bool
	resumeAnn wireproto.Resume

	// suspect counts consecutive initiator-side failures per peer for
	// the suspicion policy; evicted is the node-local eviction overlay
	// used when the book is shared (one participant's suspicion must not
	// expel a peer for its co-located siblings). Guarded by suspMu: the
	// main loop writes strikes, but a resume announcement arriving on a
	// connection goroutine reinstates peers, and responder waits consult
	// the eviction state to release early.
	suspMu  sync.Mutex
	suspect map[int]int
	evicted map[int]bool

	// joinReject is a typed handshake refusal received during Join
	// (config-digest mismatch). Touched only by the Join goroutine.
	joinReject error

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// connSet tracks every open connection of a node so shutdown can close
// them all: a blocked read or write then returns immediately instead of
// burning its full exchange deadline, which is what makes context
// cancellation prompt.
type connSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// add registers a connection; it reports false (and the caller must
// treat the conn as dead) when the set already shut down.
func (cs *connSet) add(c net.Conn) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return false
	}
	if cs.conns == nil {
		cs.conns = make(map[net.Conn]struct{})
	}
	cs.conns[c] = struct{}{}
	return true
}

func (cs *connSet) remove(c net.Conn) {
	cs.mu.Lock()
	delete(cs.conns, c)
	cs.mu.Unlock()
}

// closeAll closes every tracked connection and refuses future adds.
func (cs *connSet) closeAll() {
	cs.mu.Lock()
	cs.closed = true
	conns := cs.conns
	cs.conns = nil
	cs.mu.Unlock()
	//lint:orderfree every connection is closed; close order is not protocol state
	for c := range conns {
		_ = c.Close()
	}
}

// trackedConn removes itself from the node's live set on Close, so the
// set only holds genuinely open connections.
type trackedConn struct {
	net.Conn
	nd *Node
}

func (c *trackedConn) Close() error {
	c.nd.live.remove(c.Conn)
	return c.Conn.Close()
}

// track registers a fresh connection with the node's live set and wraps
// it so its Close deregisters it. A conn arriving after shutdown is
// closed immediately (subsequent I/O fails fast).
func (nd *Node) track(conn net.Conn) net.Conn {
	if !nd.live.add(conn) {
		_ = conn.Close()
	}
	return &trackedConn{Conn: conn, nd: nd}
}

// New validates the configuration, normalizes the shared protocol
// parameters exactly as the simulator does, and starts the listener.
func New(cfg Config) (*Node, error) {
	if cfg.N < 2 {
		return nil, errors.New("node: population must be at least 2")
	}
	if cfg.Index < 0 || cfg.Index >= cfg.N {
		return nil, fmt.Errorf("node: index %d out of range for population %d", cfg.Index, cfg.N)
	}
	if cfg.Scheme == nil {
		return nil, errors.New("node: nil scheme")
	}
	if cfg.Scheme.NumShares() < cfg.N {
		return nil, fmt.Errorf("node: scheme has %d key-shares for %d participants", cfg.Scheme.NumShares(), cfg.N)
	}
	if len(cfg.Series) == 0 {
		return nil, errors.New("node: empty series")
	}
	if cfg.Proto.Epsilon <= 0 {
		return nil, errors.New("node: epsilon must be positive")
	}
	if cfg.Proto.Threshold != 0 {
		return nil, errors.New("node: networked runs use the fixed iteration schedule; set Threshold to 0")
	}
	if len(kmeans.Compact(cfg.Proto.InitCentroids)) == 0 {
		return nil, kmeans.ErrNoCentroids
	}
	cfg.Proto = cfg.Proto.Normalize(cfg.N)
	if cfg.Proto.DissCycles <= 0 || cfg.Proto.DecryptCycles <= 0 {
		return nil, errors.New("node: networked runs need fixed DissCycles and DecryptCycles (no participant can observe global convergence)")
	}
	if cfg.External {
		if cfg.Addr == "" {
			return nil, errors.New("node: external node needs the shared listener address")
		}
		// The host owns the listener and the membership loops.
		cfg.ViewInterval = -1
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.ExchangeTimeout <= 0 {
		cfg.ExchangeTimeout = 30 * time.Second
	}
	if cfg.FinTimeout <= 0 {
		cfg.FinTimeout = cfg.ExchangeTimeout
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	if cfg.ViewInterval == 0 {
		cfg.ViewInterval = 500 * time.Millisecond
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = cfg.Proto.Seed ^ 0xC41A305C0
	}
	if cfg.Policy.MaxRetries < 0 || cfg.Policy.Backoff < 0 || cfg.Policy.SuspicionK < 0 {
		return nil, fmt.Errorf("node: negative fault policy %+v", cfg.Policy)
	}
	if cfg.Policy.MaxRetries > 0 && cfg.Policy.Backoff == 0 {
		cfg.Policy.Backoff = 25 * time.Millisecond
	}
	if cfg.Dialer == nil {
		cfg.Dialer = tcpDialer{}
	}

	codec := homenc.NewCodec(cfg.Proto.FracBits)
	// Packing layout and plaintext-headroom pre-flight: the same shared
	// derivation the simulator performs, so every peer agrees on the
	// slot layout (and therefore on ciphertext vector lengths).
	pack, err := core.PackingFor(cfg.Proto, cfg.N, len(cfg.Series), cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}

	// fullDim bounds the wire decoders: the correction vectors of the
	// dissemination phase stay unpacked (cleartext per-variable floats),
	// so MaxDim must admit the full k·(n+1) length even when the
	// ciphertext vectors travel packed. Exact per-phase lengths are
	// enforced at the use sites (validSumState, validDecState, the
	// corVec length checks).
	fullDim := len(kmeans.Compact(cfg.Proto.InitCentroids)) * (len(cfg.Series) + 1)
	dim := pack.PackedLen(fullDim)
	nd := &Node{
		cfg:        cfg,
		codec:      codec,
		pack:       pack,
		lim:        wireproto.NewLimits(cfg.Scheme.CiphertextBytes(), fullDim, cfg.Scheme.Threshold(), cfg.N),
		epoch:      cfg.Epoch,
		share:      cfg.Index + 1,
		dimWk:      eesum.DimWorkers(dim, cfg.Proto.Workers),
		maxEpoch:   core.HeadroomNeeded(cfg.Proto.Exchanges),
		digest:     ConfigDigest(cfg.Proto, cfg.N, len(cfg.Series), pack),
		addr:       cfg.Addr,
		protoRNG:   core.ProtocolRNG(cfg.Proto.Seed),
		jitter:     randx.NewJitter(cfg.Proto.Seed^0x6A177E12, uint64(cfg.Index)),
		acct:       &dp.Accountant{Cap: cfg.Proto.Epsilon * (1 + 1e-9)},
		policy:     cfg.Policy,
		dialer:     cfg.Dialer,
		crashHook:  cfg.CrashHook,
		commitHook: cfg.CommitHook,
		suspect:    make(map[int]int),
		evicted:    make(map[int]bool),
		stop:       make(chan struct{}),
	}
	if !cfg.External {
		// A relaunch first tries the address its journal recorded: Go
		// listeners set SO_REUSEADDR, so rebinding the dead process's
		// port works immediately and every peer's address book stays
		// valid across the kill window. Any bind failure (the port went
		// to someone else) falls back to the configured address.
		if saved := cfg.State.savedAddr(); saved != "" {
			if ln, err := net.Listen("tcp", saved); err == nil {
				nd.ln = ln
				nd.addr = ln.Addr().String()
			}
		}
		if nd.ln == nil {
			ln, err := net.Listen("tcp", cfg.Listen)
			if err != nil {
				return nil, err
			}
			nd.ln = ln
			nd.addr = ln.Addr().String()
		}
	}
	nd.sched = cfg.Schedule
	if nd.sched == nil {
		src, err := NewScheduleSource(cfg.Proto, cfg.N, len(cfg.Series), cfg.Scheme, pack)
		if err != nil {
			if nd.ln != nil {
				_ = nd.ln.Close()
			}
			return nil, err
		}
		nd.sched = src.View()
	}
	if hook := cfg.Proto.Observer.Churn; hook != nil {
		// The iteration is recovered from the cumulative cycle index, so
		// the observation is identical whether this participant or a
		// faster co-located one first demands the cycle.
		nd.sched.src.bindChurn(func(iter, cycle, down int) {
			hook(iter, cycle, down, core.ChurnModel)
		})
	}
	nd.book = cfg.Book
	nd.sharedBook = cfg.Book != nil
	if nd.book == nil {
		nd.book = NewBook(cfg.N)
	}
	nd.book.AddLocal(cfg.Index, nd.addr)
	nd.reg = newRegistry(nd.stop)
	if cfg.State != nil {
		if err := nd.attachState(cfg.State); err != nil {
			if nd.ln != nil {
				_ = nd.ln.Close()
			}
			return nil, err
		}
	}
	if !cfg.External {
		nd.wg.Add(1)
		go nd.serve()
	}
	if cfg.ViewInterval > 0 {
		nd.wg.Add(1)
		go nd.viewLoop()
	}
	return nd, nil
}

// Addr returns the node's listen address.
func (nd *Node) Addr() string { return nd.addr }

// Index returns the node's population index.
func (nd *Node) Index() int { return nd.cfg.Index }

// Counters returns a snapshot of the node's wire counters.
func (nd *Node) Counters() wireproto.Counters { return nd.counters.Snapshot() }

// Progress returns the current iteration and phase rank, for metrics.
func (nd *Node) Progress() (iter, phase int64) {
	return nd.iterNow.Load(), nd.phaseNow.Load()
}

// RosterSize returns how many participants the address book covers.
func (nd *Node) RosterSize() int { return nd.book.Size() }

// ErrConfigMismatch marks a handshake refused because the peers were
// provisioned with different shared protocol parameters (the
// config-digest check of the hello exchange).
var ErrConfigMismatch = errors.New("node: peer configuration mismatch")

// Join fills the address book: the node announces itself to the
// bootstrap peer (when it has one) and polls known peers until it can
// dial the entire population or the join timeout passes. Sweeps are
// paced by a jittered exponential backoff (reset whenever the roster
// grows) so a flood of joiners does not hammer the bootstrap peer in a
// tight re-dial loop for the whole JoinTimeout. An external node sends
// no hellos of its own — its host's membership pump fills the shared
// book — so it just waits for the roster to cover the population.
func (nd *Node) Join() error {
	deadline := time.Now().Add(nd.cfg.JoinTimeout)
	idle := 0 // consecutive sweeps without roster growth
	for nd.book.Size() < nd.cfg.N {
		if nd.stopped.Load() {
			return errors.New("node: closed during join")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node %d: roster has %d of %d peers after join timeout", nd.cfg.Index, nd.book.Size(), nd.cfg.N)
		}
		before := nd.book.Size()
		if !nd.cfg.External {
			if target := nd.helloTarget(); target != "" {
				nd.hello(target)
			}
			if err := nd.joinReject; err != nil {
				return err
			}
		}
		if nd.book.Size() > before {
			idle = 0
		} else {
			idle++
		}
		if !nd.sleep(backoffDelay(nd.jitter, 10*time.Millisecond, idle, 500*time.Millisecond)) {
			return errors.New("node: closed during join")
		}
	}
	return nil
}

// backoffDelay is the shared capped jittered exponential backoff:
// base·2^attempt, capped, with ±50% jitter. The jitter decorrelates
// retry storms across peers; it touches no protocol randomness, but it
// still draws from the node's seeded jitter stream so a run replays
// from its seed alone.
func backoffDelay(j *randx.Jitter, base time.Duration, attempt int, cap time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	half := d / 2
	return half + j.DurationN(d-half+1)
}

// sleep waits for d, returning false if the node shuts down first.
func (nd *Node) sleep(d time.Duration) bool {
	if d <= 0 {
		return !nd.stopped.Load()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-nd.stop:
		return false
	case <-t.C:
		return true
	}
}

// helloTarget picks who to announce to: the bootstrap address first,
// then any known peer (round-robining via random choice).
func (nd *Node) helloTarget() string {
	if nd.cfg.Bootstrap != "" {
		if nd.jitter.IntN(2) == 0 {
			return nd.cfg.Bootstrap
		}
	}
	items := nd.book.Roster()
	cands := make([]string, 0, len(items))
	for _, it := range items {
		if int(it.Index) != nd.cfg.Index && it.Addr != "" {
			cands = append(cands, it.Addr)
		}
	}
	if len(cands) == 0 {
		return nd.cfg.Bootstrap
	}
	return cands[nd.jitter.IntN(len(cands))]
}

// hello performs one hello round trip: announce (with the shared-config
// digest), merge the ack roster. A node relaunched from its journal
// announces KindResume — identity plus journal position — instead, so
// receivers reinstate it from suspicion rather than treating it as a
// fresh joiner. A KindReject answer — the peer's digest differs — is
// recorded as a sticky typed error that aborts the join: retrying
// cannot reconcile inconsistent provisioning.
func (nd *Node) hello(addr string) {
	conn, err := nd.dialAddr(addr)
	if err != nil {
		return
	}
	defer conn.Close()
	kind, ackKind := wireproto.KindHello, wireproto.KindHelloAck
	payload := wireproto.MarshalHello(wireproto.Hello{
		Index: uint32(nd.cfg.Index), Addr: nd.addr, N: uint32(nd.cfg.N), Digest: nd.digest,
	})
	if nd.resuming {
		kind, ackKind = wireproto.KindResume, wireproto.KindResumeAck
		payload = wireproto.MarshalResume(nd.resumeAnn)
	}
	if err := nd.writeFrame(conn, kind, payload); err != nil {
		return
	}
	f, err := nd.readFrame(conn)
	if err != nil {
		return
	}
	if f.Kind == wireproto.KindReject {
		r, rerr := wireproto.UnmarshalReject(f.Payload)
		if rerr != nil {
			nd.counters.Rejected.Add(1)
			return
		}
		nd.joinReject = fmt.Errorf("%w: peer %s: %s", ErrConfigMismatch, addr, r.Reason)
		return
	}
	if f.Kind != ackKind {
		return
	}
	items, err := wireproto.UnmarshalView(f.Payload, nd.lim)
	if err != nil {
		nd.counters.Rejected.Add(1)
		return
	}
	nd.book.Merge(items)
}

// resumeSweep announces the resume to every peer the roster knows,
// best-effort: peers that evicted this node by suspicion fast-fail its
// slots until they hear the reinstatement, so a single announcement to
// whichever peer answered the join is not enough — the whole population
// should learn the comeback before the run re-enters the protocol.
func (nd *Node) resumeSweep() {
	payload := wireproto.MarshalResume(nd.resumeAnn)
	for _, it := range nd.book.Roster() {
		if int(it.Index) == nd.cfg.Index || it.Addr == "" {
			continue
		}
		conn, err := nd.dialPeer(int(it.Index), it.Addr, 2*time.Second)
		if err != nil {
			continue
		}
		_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
		if nd.writeFrame(conn, wireproto.KindResume, payload) == nil {
			if f, err := nd.readFrame(conn); err == nil && f.Kind == wireproto.KindResumeAck {
				if items, err := wireproto.UnmarshalView(f.Payload, nd.lim); err == nil {
					nd.book.Merge(items)
				}
			}
		}
		_ = conn.Close()
	}
}

// viewLoop gossips the address-book view with random known peers — the
// Newscast connectivity layer keeping rosters fresh while the protocol
// runs (and after joins/leaves).
func (nd *Node) viewLoop() {
	defer nd.wg.Done()
	for {
		select {
		case <-nd.stop:
			return
		case <-time.After(nd.cfg.ViewInterval):
		}
		addr := nd.helloTarget()
		if addr == "" {
			continue
		}
		conn, err := nd.dialAddr(addr)
		if err != nil {
			continue
		}
		if err := nd.writeFrame(conn, wireproto.KindView, wireproto.MarshalView(nd.book.Roster())); err == nil {
			if f, err := nd.readFrame(conn); err == nil && f.Kind == wireproto.KindView {
				if items, err := wireproto.UnmarshalView(f.Payload, nd.lim); err == nil {
					nd.book.Merge(items)
				}
			}
		}
		_ = conn.Close()
	}
}

// Leave departs gracefully: every known peer is notified so it can
// mark this node gone instead of burning timeouts on it.
func (nd *Node) Leave() error {
	for _, it := range nd.book.Roster() {
		if int(it.Index) == nd.cfg.Index || it.Addr == "" {
			continue
		}
		conn, err := nd.dialPeer(-1, it.Addr, time.Second)
		if err != nil {
			continue
		}
		_ = conn.SetDeadline(time.Now().Add(time.Second))
		_ = nd.writeFrame(conn, wireproto.KindLeave, wireproto.MarshalLeave(wireproto.Leave{Index: uint32(nd.cfg.Index)}))
		_ = conn.Close()
	}
	return nd.Close()
}

// Crash departs abruptly: no notice, connections die mid-flight — the
// Section 6.1.5 failure mode.
func (nd *Node) Crash() error { return nd.Close() }

// Close stops the listener, closes every live connection and joins the
// background loops. Closing the live conns is what makes shutdown (and
// context cancellation) prompt: peers blocked mid-exchange fail fast
// instead of waiting out their deadlines.
func (nd *Node) Close() error {
	if nd.stopped.Swap(true) {
		return nil
	}
	close(nd.stop)
	var err error
	if nd.ln != nil {
		err = nd.ln.Close()
	}
	nd.live.closeAll()
	nd.reg.close()
	nd.wg.Wait()
	// Flush and close the crash-recovery journal last: a SIGTERM that
	// lands here (the daemon's signal handler calls Close) leaves every
	// committed exchange durable on disk.
	if nd.state != nil {
		if cerr := nd.state.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// JournalLag reports the crash-recovery journal's unsynced tail, or
// zeros for a volatile node. Between commits it is always zero (every
// checkpoint fsyncs), so a non-zero lag on /healthz means a commit is
// being written right now — or fsync is failing.
func (nd *Node) JournalLag() (entries int, bytes int64) {
	return nd.state.Lag()
}

// serve accepts connections; each is one interaction (membership round
// trip or a full three-leg exchange owned by the main loop).
func (nd *Node) serve() {
	defer nd.wg.Done()
	for {
		conn, err := nd.ln.Accept()
		if err != nil {
			return // listener closed
		}
		nd.wg.Add(1)
		go nd.handleConn(nd.track(conn))
	}
}

func (nd *Node) handleConn(conn net.Conn) {
	defer nd.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(nd.cfg.ExchangeTimeout))
	f, err := nd.readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	nd.dispatch(conn, f)
}

// Deliver hands the node one frame read off a connection the node does
// not own the accept loop for — the mux.Host route-in path. The node
// takes ownership of the connection (response legs travel back on it,
// and shutdown closes it); the frame's wire bytes are credited here, so
// byte accounting matches a connection the node read itself.
func (nd *Node) Deliver(conn net.Conn, f wireproto.Frame) {
	conn = nd.track(conn)
	nd.counters.BytesRecv.Add(int64(wireproto.FrameWireSize(f.Target, len(f.Payload))))
	nd.dispatch(conn, f)
}

// dispatch routes one decoded inbound frame. The exchange-request kinds
// park the connection with the registry for the main protocol loop;
// every other kind is a self-contained round trip handled here.
func (nd *Node) dispatch(conn net.Conn, f wireproto.Frame) {
	if f.Epoch != nd.epoch || (f.Target >= 0 && f.Target != nd.cfg.Index) {
		nd.counters.Rejected.Add(1)
		_ = conn.Close()
		return
	}
	switch f.Kind {
	case wireproto.KindHello:
		h, err := wireproto.UnmarshalHello(f.Payload, nd.lim)
		if err != nil || int(h.N) != nd.cfg.N || int(h.Index) >= nd.cfg.N {
			nd.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		_ = conn.SetWriteDeadline(time.Now().Add(nd.cfg.ExchangeTimeout))
		if h.Digest != 0 && h.Digest != nd.digest {
			nd.counters.Rejected.Add(1)
			_ = nd.writeFrame(conn, wireproto.KindReject, wireproto.MarshalReject(wireproto.Reject{
				Reason: fmt.Sprintf("config digest %016x, want %016x (check population/k/frac-bits/pack-slots)", h.Digest, nd.digest),
			}))
			_ = conn.Close()
			return
		}
		nd.book.Learn(int(h.Index), h.Addr)
		_ = nd.writeFrame(conn, wireproto.KindHelloAck, wireproto.MarshalView(nd.book.Roster()))
		_ = conn.Close()

	case wireproto.KindResume:
		// A restarted peer re-announcing itself mid-run: same validation
		// as a hello, but additionally lift any suspicion eviction — the
		// peer is provably back, and fast-failing its slots would turn
		// its recovery into a permanent hole in the schedule.
		r, err := wireproto.UnmarshalResume(f.Payload, nd.lim)
		if err != nil || int(r.N) != nd.cfg.N || int(r.Index) >= nd.cfg.N {
			nd.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		_ = conn.SetWriteDeadline(time.Now().Add(nd.cfg.ExchangeTimeout))
		if r.Digest != 0 && r.Digest != nd.digest {
			nd.counters.Rejected.Add(1)
			_ = nd.writeFrame(conn, wireproto.KindReject, wireproto.MarshalReject(wireproto.Reject{
				Reason: fmt.Sprintf("config digest %016x, want %016x (check population/k/frac-bits/pack-slots)", r.Digest, nd.digest),
			}))
			_ = conn.Close()
			return
		}
		nd.book.Learn(int(r.Index), r.Addr)
		nd.Reinstate(int(r.Index))
		nd.counters.Resumed.Add(1)
		_ = nd.writeFrame(conn, wireproto.KindResumeAck, wireproto.MarshalView(nd.book.Roster()))
		_ = conn.Close()

	case wireproto.KindView:
		items, err := wireproto.UnmarshalView(f.Payload, nd.lim)
		if err != nil {
			nd.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		nd.book.Merge(items)
		_ = conn.SetWriteDeadline(time.Now().Add(nd.cfg.ExchangeTimeout))
		_ = nd.writeFrame(conn, wireproto.KindView, wireproto.MarshalView(nd.book.Roster()))
		_ = conn.Close()

	case wireproto.KindLeave:
		l, err := wireproto.UnmarshalLeave(f.Payload)
		if err == nil && int(l.Index) < nd.cfg.N {
			nd.book.MarkGone(int(l.Index))
		}
		_ = conn.Close()

	case wireproto.KindSumReq, wireproto.KindDissReq, wireproto.KindDecReq:
		hdr, err := wireproto.PeekHdr(f.Payload)
		if err != nil || int(hdr.To) != nd.cfg.Index || int(hdr.From) >= nd.cfg.N {
			nd.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		s := slot{iter: int(hdr.Iter), phase: phaseOfKind(f.Kind), cycle: int(hdr.Cycle), seq: int(hdr.Seq)}
		// The responder's main loop owns the connection from here on.
		_ = conn.SetDeadline(time.Time{})
		nd.reg.deliver(s, inbound{frame: f, conn: conn})

	default:
		nd.counters.Rejected.Add(1)
		_ = conn.Close()
	}
}

func phaseOfKind(kind byte) int {
	switch kind {
	case wireproto.KindSumReq:
		return phaseSum
	case wireproto.KindDissReq:
		return phaseDiss
	default:
		return phaseDec
	}
}

// writeFrame and readFrame wrap the wire layer with byte accounting.
// A malformed or over-limit frame — as opposed to a connection dying
// mid-frame — additionally counts toward BadFrames: hostile input is
// accounted separately from network weather, and the offending
// connection is always dropped by the caller.
func (nd *Node) writeFrame(conn net.Conn, kind byte, payload []byte) error {
	return nd.writeFrameTo(conn, kind, -1, payload)
}

// writeFrameTo writes a frame addressed to a population index (< 0:
// untargeted), so a multiplexed listener on the far side can route it
// without decoding the payload. Exchange request legs carry the target;
// every later leg travels on an already-routed connection.
func (nd *Node) writeFrameTo(conn net.Conn, kind byte, target int, payload []byte) error {
	err := wireproto.WriteFrameTarget(conn, kind, nd.epoch, target, payload)
	if err == nil {
		nd.counters.BytesSent.Add(int64(wireproto.FrameWireSize(target, len(payload))))
	}
	return err
}

func (nd *Node) readFrame(conn net.Conn) (wireproto.Frame, error) {
	f, err := wireproto.ReadFrame(conn, nd.lim.MaxFrameLen)
	if err == nil {
		nd.counters.BytesRecv.Add(int64(wireproto.FrameWireSize(f.Target, len(f.Payload))))
	} else if errors.Is(err, wireproto.ErrMalformed) {
		nd.counters.BadFrames.Add(1)
	}
	return f, err
}

// dialAddr opens a tracked membership connection (destination index
// unknown) with the exchange deadline set.
func (nd *Node) dialAddr(addr string) (net.Conn, error) {
	return nd.dialPeer(-1, addr, nd.cfg.ExchangeTimeout)
}

func (nd *Node) dialPeer(peer int, addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := nd.dialer.Dial(peer, addr, timeout)
	if err != nil {
		return nil, err
	}
	conn = nd.track(conn)
	_ = conn.SetDeadline(time.Now().Add(nd.cfg.ExchangeTimeout))
	return conn, nil
}

// dial opens a connection to a peer with the exchange deadline set.
// When retries are on, each attempt gets an even share of the exchange
// deadline as its dial budget, so a blackholed first dial cannot eat
// the retries' time.
func (nd *Node) dial(idx int) (net.Conn, error) {
	nd.suspMu.Lock()
	ev := nd.evicted[idx]
	nd.suspMu.Unlock()
	if ev {
		return nil, errNoAddress
	}
	addr := nd.book.Addr(idx)
	if addr == "" {
		return nil, errNoAddress
	}
	timeout := nd.cfg.ExchangeTimeout
	if nd.policy.MaxRetries > 0 {
		timeout /= time.Duration(nd.policy.MaxRetries + 1)
		if timeout < 250*time.Millisecond {
			timeout = 250 * time.Millisecond
		}
	}
	return nd.dialPeer(idx, addr, timeout)
}

// errNoAddress marks a dial to a peer the address book cannot resolve
// (never learned, departed, or evicted by suspicion). It fails fast and
// is not retried: retrying cannot conjure an address, and the gossip
// layer reinstating the peer serves later slots, not this one.
var errNoAddress = errors.New("node: no address for peer")

// --- peer suspicion ---

// peerOK and peerFailed track consecutive initiator-side outcomes per
// peer; strikes are charged only by the main protocol loop, but the
// maps are shared with Reinstate (connection goroutines) and the
// responder's early-release check, hence suspMu. After SuspicionK
// consecutive failures a peer is evicted: later exchanges fast-fail
// instead of burning their deadline, and the churn observer reports the
// eviction. With a private book the eviction is recorded there, and a
// direct hello from the peer reinstates it (Book.Learn clears the gone
// mark); with a shared book the eviction lives in the node-local
// overlay instead — one participant's suspicion must not expel a peer
// for every co-located sibling. Either way a KindResume announcement
// from the peer lifts the eviction (Reinstate).
func (nd *Node) peerOK(peer int) {
	nd.suspMu.Lock()
	delete(nd.suspect, peer)
	nd.suspMu.Unlock()
}

func (nd *Node) peerFailed(peer int, s slot) {
	if nd.policy.SuspicionK <= 0 {
		return
	}
	nd.suspMu.Lock()
	nd.suspect[peer]++
	nd.counters.Suspected.Add(1)
	if nd.suspect[peer] < nd.policy.SuspicionK {
		nd.suspMu.Unlock()
		return
	}
	delete(nd.suspect, peer)
	if nd.evicted[peer] || nd.book.Addr(peer) == "" {
		nd.suspMu.Unlock()
		return // already unreachable (departed or evicted)
	}
	if nd.sharedBook {
		nd.evicted[peer] = true
	} else {
		nd.book.MarkGone(peer)
	}
	nd.suspMu.Unlock()
	nd.counters.Evicted.Add(1)
	if hook := nd.cfg.Proto.Observer.Churn; hook != nil {
		hook(s.iter, s.cycle, 1, core.ChurnEvicted)
	}
}

// Reinstate clears a peer's suspicion state — a resume announcement
// proved it alive. A lifted eviction is reported to the churn observer
// as a "resumed" event, the inverse of the eviction it undoes. Safe to
// call from connection goroutines.
func (nd *Node) Reinstate(peer int) {
	if peer < 0 || peer >= nd.cfg.N || peer == nd.cfg.Index {
		return
	}
	nd.suspMu.Lock()
	wasEvicted := nd.evicted[peer]
	delete(nd.suspect, peer)
	delete(nd.evicted, peer)
	nd.suspMu.Unlock()
	if wasEvicted {
		if hook := nd.cfg.Proto.Observer.Churn; hook != nil {
			hook(int(nd.iterNow.Load()), 0, 1, core.ChurnResumed)
		}
	}
}

// peerUnreachable reports whether a peer is currently hopeless to hear
// from: evicted by this node's suspicion, or without an address in the
// book (departed, or evicted there). The responder's await loop uses it
// to stop burning a full exchange deadline on an initiator that is
// known to be down — if the initiator resumes, its announcement
// reinstates it before it re-enters the schedule.
func (nd *Node) peerUnreachable(peer int) bool {
	nd.suspMu.Lock()
	ev := nd.evicted[peer]
	nd.suspMu.Unlock()
	return ev || nd.book.Addr(peer) == ""
}

// encryptState builds this participant's initial EESum state for one
// phase: its encrypted vector, weight 1 on participant 0 (Section 3.2
// footnote 5), epoch 0.
func (nd *Node) encryptState(vec []*big.Int) eesum.SumState {
	cts := make([]homenc.Ciphertext, len(vec))
	for j, v := range vec {
		cts[j] = nd.cfg.Scheme.Encrypt(v)
	}
	omega := big.NewInt(0)
	if nd.cfg.Index == 0 {
		omega = big.NewInt(1)
	}
	return eesum.SumState{CTs: cts, Omega: omega, Epoch: 0}
}
