package node

import (
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// testSetup is a shared deployment description for sim-vs-wire runs.
type testSetup struct {
	n      int
	data   *timeseries.Dataset
	scheme *damgardjurik.Scheme
	proto  core.Config
}

func newSetup(t *testing.T, n int, churn float64) testSetup {
	t.Helper()
	data, _ := datasets.GenerateCER(n, randx.New(7, 0))
	scheme, err := damgardjurik.NewTestScheme(128, 4, n, max(2, n/3))
	if err != nil {
		t.Fatal(err)
	}
	// Data-independent seeds: two flat series at distinct levels.
	seeds := make([]timeseries.Series, 2)
	for c := range seeds {
		s := make(timeseries.Series, data.Dim())
		for j := range s {
			s[j] = 10 + 30*float64(c)
		}
		seeds[c] = s
	}
	return testSetup{
		n:      n,
		data:   data,
		scheme: scheme,
		proto: core.Config{
			K:             2,
			InitCentroids: seeds,
			DMin:          datasets.CERMin,
			DMax:          datasets.CERMax,
			Epsilon:       1e4, // huge budget: noise cannot wipe centroids
			MaxIterations: 1,
			Exchanges:     10,
			DissCycles:    8,
			DecryptCycles: 10,
			FracBits:      24,
			Seed:          21,
			Churn:         churn,
			MidFailure:    churn > 0,
			Workers:       2,
		},
	}
}

// runSim executes the in-memory simulator on the setup.
func runSim(t *testing.T, ts testSetup) *core.Result {
	t.Helper()
	nw, err := core.NewNetwork(ts.data, ts.scheme, ts.proto)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// launchNodes starts the full population as real TCP listeners and runs
// the protocol, returning each node's own result.
func launchNodes(t *testing.T, ts testSetup) []*Result {
	t.Helper()
	nodes := make([]*Node, ts.n)
	var bootstrap string
	for i := 0; i < ts.n; i++ {
		cfg := Config{
			Index:           i,
			N:               ts.n,
			Series:          ts.data.Row(i),
			Scheme:          ts.scheme,
			Proto:           ts.proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: 20 * time.Second,
			FinTimeout:      20 * time.Second,
			JoinTimeout:     20 * time.Second,
			ViewInterval:    200 * time.Millisecond,
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		nodes[i] = nd
		if i == 0 {
			bootstrap = nd.Addr()
		}
	}
	results := make([]*Result, ts.n)
	errs := make([]error, ts.n)
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *Node) {
			defer wg.Done()
			results[i], errs[i] = nd.Run()
		}(i, nd)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results
}

func assertCentroidsEqual(t *testing.T, label string, want, got []timeseries.Series) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d centroids, want %d", label, len(got), len(want))
	}
	for c := range want {
		if (want[c] == nil) != (got[c] == nil) {
			t.Fatalf("%s: centroid %d liveness differs", label, c)
		}
		if want[c] == nil {
			continue
		}
		for j := range want[c] {
			if got[c][j] != want[c][j] {
				t.Fatalf("%s: centroid %d[%d] = %v, want %v (bit mismatch)",
					label, c, j, got[c][j], want[c][j])
			}
		}
	}
}

// TestNetworkedBitMatchesSimulator is the acceptance end-to-end: 12 real
// TCP nodes running test-scheme Damgård–Jurik crypto complete a full
// clustering round over the wire, and participant 0's released
// centroids bit-match the in-memory simulator at the same seed.
func TestNetworkedBitMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	ts := newSetup(t, 12, 0)
	simRes := runSim(t, ts)
	if len(simRes.Centroids) == 0 {
		t.Fatal("simulator produced no centroids")
	}
	results := launchNodes(t, ts)
	assertCentroidsEqual(t, "node 0 vs sim", simRes.Centroids, results[0].Centroids)
	if results[0].AvgMessages != simRes.AvgMessages || results[0].AvgBytes != simRes.AvgBytes {
		t.Fatalf("mirror accounting diverged: %v/%v vs %v/%v",
			results[0].AvgMessages, results[0].AvgBytes, simRes.AvgMessages, simRes.AvgBytes)
	}
	// Every participant finished with released centroids and real wire
	// traffic on the counters.
	for i, r := range results {
		if len(r.Centroids) == 0 {
			t.Fatalf("node %d released no centroids", i)
		}
		if r.Counters.Exchanges() == 0 || r.Counters.BytesSent == 0 {
			t.Fatalf("node %d saw no wire traffic: %+v", i, r.Counters)
		}
	}
}

// TestNetworkedChurnMatchesSimulator runs the same end-to-end under the
// Section 6.1.5 churn model (disconnections + mid-exchange failures).
// The mirror schedule reproduces the sim's churn draws, and the abort
// fin leg reproduces its half-completed exchanges, so the released
// centroids must still bit-match the simulator's churn handling.
func TestNetworkedChurnMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	ts := newSetup(t, 8, 0.3)
	ts.proto.DissCycles = 16
	ts.proto.DecryptCycles = 16
	simRes := runSim(t, ts)
	if len(simRes.Centroids) == 0 {
		t.Fatal("simulator produced no centroids under churn")
	}
	results := launchNodes(t, ts)
	assertCentroidsEqual(t, "node 0 vs sim (churn)", simRes.Centroids, results[0].Centroids)
}

// TestCrashMidExchangeLeavesHalfCompletedState exercises the genuine
// crash path (no abort frame, just silence): the initiator applies its
// half after RESP, the responder times out waiting for FIN and applies
// nothing — exactly the state the simulator's Exchange(a, b, false)
// produces.
func TestCrashMidExchangeLeavesHalfCompletedState(t *testing.T) {
	ts := newSetup(t, 2, 0)
	vecA := []*big.Int{big.NewInt(5 << 24), big.NewInt(-3 << 24), big.NewInt(7 << 24), big.NewInt(1 << 24)}
	vecB := []*big.Int{big.NewInt(2 << 24), big.NewInt(9 << 24), big.NewInt(-4 << 24), big.NewInt(6 << 24)}

	// Reference: the simulator's half-completed exchange on the same
	// initial plaintexts.
	ref, err := eesum.NewSumWorkers(ts.scheme, [][]*big.Int{vecA, vecB}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref.Exchange(0, 1, false)

	mk := func(idx int, bootstrap string) *Node {
		cfg := Config{
			Index: idx, N: 2,
			Series: ts.data.Row(idx), Scheme: ts.scheme, Proto: ts.proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: 5 * time.Second,
			FinTimeout:      300 * time.Millisecond,
			ViewInterval:    -1,
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		return nd
	}
	ndA := mk(0, "")
	ndB := mk(1, ndA.Addr())
	ndA.book.Learn(1, ndB.Addr())
	ndB.book.Learn(0, ndA.Addr())

	mkState := func(nd *Node, vec []*big.Int) *iterState {
		return &iterState{
			means: nd.encryptState(vec),
			noise: nd.encryptState(vec),
			ctrS:  1, ctrW: float64(1 - nd.cfg.Index),
		}
	}
	stA := mkState(ndA, vecA)
	stB := mkState(ndB, vecB)
	preB := stB.means.Clone()

	// The initiator crashes right before the FIN leg.
	ndA.crashHook = func(leg, phase, iter, cycle, seq int) bool { return leg == LegFin }

	s := slot{iter: 1, phase: phaseSum, cycle: 0, seq: 0}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ndB.respondSum(stB, s, 0)
	}()
	ndA.initiateSum(stA, 1, s, true)
	<-done

	// Initiator holds the sim's post-exchange initiator state...
	want := ref.State(0)
	if stA.means.Epoch != want.Epoch || stA.means.Omega.Cmp(want.Omega) != 0 {
		t.Fatalf("initiator epoch/omega = (%d, %v), want (%d, %v)",
			stA.means.Epoch, stA.means.Omega, want.Epoch, want.Omega)
	}
	decrypt := func(cts []homenc.Ciphertext) []*big.Int {
		out := make([]*big.Int, len(cts))
		for j, c := range cts {
			out[j] = ts.scheme.Decrypt(c)
		}
		return out
	}
	gotPlain := decrypt(stA.means.CTs)
	wantPlain := decrypt(want.CTs)
	for j := range wantPlain {
		if gotPlain[j].Cmp(wantPlain[j]) != 0 {
			t.Fatalf("initiator plaintext[%d] = %v, want %v", j, gotPlain[j], wantPlain[j])
		}
	}
	// ...and the responder never applied its half.
	if stB.means.Epoch != preB.Epoch || stB.means.Omega.Cmp(preB.Omega) != 0 {
		t.Fatal("responder applied a half-completed exchange")
	}
	gotB := decrypt(stB.means.CTs)
	preBPlain := decrypt(preB.CTs)
	for j := range preBPlain {
		if gotB[j].Cmp(preBPlain[j]) != 0 {
			t.Fatalf("responder plaintext[%d] changed on a half-completed exchange", j)
		}
	}
	if ndB.Counters().Timeouts == 0 {
		t.Fatal("responder did not record the fin timeout")
	}
}

// TestLeaveMarksPeerGone checks the graceful departure path: a leave
// notice removes the peer from the address book so no exchange dials it.
func TestLeaveMarksPeerGone(t *testing.T) {
	ts := newSetup(t, 2, 0)
	cfgA := Config{Index: 0, N: 2, Series: ts.data.Row(0), Scheme: ts.scheme, Proto: ts.proto, ViewInterval: -1}
	ndA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ndA.Close() })
	cfgB := Config{Index: 1, N: 2, Series: ts.data.Row(1), Scheme: ts.scheme, Proto: ts.proto,
		Bootstrap: ndA.Addr(), ViewInterval: -1, JoinTimeout: 5 * time.Second}
	ndB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := ndB.Join(); err != nil {
		t.Fatal(err)
	}
	if got := ndA.book.Addr(1); got != ndB.Addr() {
		t.Fatalf("bootstrap learned %q for peer 1, want %q", got, ndB.Addr())
	}
	if err := ndB.Leave(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for ndA.book.Addr(1) != "" {
		if time.Now().After(deadline) {
			t.Fatal("leave notice did not mark the peer gone")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRegistryOrdering pins the registry contract: early requests park,
// stale requests are refused, pruning closes passed slots.
func TestRegistryOrdering(t *testing.T) {
	r := newRegistry(nil)
	s0 := slot{iter: 1, phase: phaseSum, cycle: 0, seq: 0}
	s1 := slot{iter: 1, phase: phaseSum, cycle: 0, seq: 3}
	c1, c2 := newFakeConn(), newFakeConn()
	if !r.deliver(s1, inbound{conn: c1}) {
		t.Fatal("early delivery refused")
	}
	if in, ok := r.await(s1, time.Second); !ok || in.conn != c1 {
		t.Fatal("parked request not delivered")
	}
	r.advance(slot{iter: 1, phase: phaseDiss})
	if r.deliver(s0, inbound{conn: c2}) {
		t.Fatal("stale delivery accepted")
	}
	if !c2.closed.Load() {
		t.Fatal("stale connection left open")
	}
	if _, ok := r.await(slot{iter: 2, phase: phaseSum}, 20*time.Millisecond); ok {
		t.Fatal("await invented a request")
	}
}

// fakeConn is a net.Conn stub recording Close for registry tests.
type fakeConn struct {
	net.Conn
	closed atomic.Bool
}

func newFakeConn() *fakeConn { return &fakeConn{} }

func (f *fakeConn) Close() error {
	f.closed.Store(true)
	return nil
}
