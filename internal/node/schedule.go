package node

import (
	"sync"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/sim"
)

// ScheduleSource materializes the deterministic exchange schedule — the
// networked runtime's mirror of sim.Engine — once, and serves it to any
// number of co-located participants through per-participant cursors
// (View). A classic single daemon owns a private source; a mux.Host
// shares one source across all its virtual nodes, so a thousand
// co-located peers draw the schedule (and pay its RNG work and memory)
// once instead of a thousand times.
//
// Cycles are drawn lazily, on first demand from the fastest cursor, and
// retained: participants progress at different speeds, and every cursor
// must see the identical draw for cycle i.
type ScheduleSource struct {
	mu      sync.Mutex
	eng     *sim.Engine
	perIter int // cycles per protocol iteration, for churn reporting
	cycles  [][]sim.Scheduled
	// churn, when bound, observes churn resamplings with the iteration
	// the cycle belongs to. Invoked with mu held, on the goroutine that
	// first demands the cycle.
	churn func(iter, cycle, down int)
}

// NewScheduleSource builds the shared schedule mirror from the
// normalized protocol parameters, exactly as the simulator does.
func NewScheduleSource(proto core.Config, np, seriesDim int, sch homenc.Scheme, pack homenc.PackedCodec) (*ScheduleSource, error) {
	src := &ScheduleSource{perIter: proto.Exchanges + proto.DissCycles + proto.DecryptCycles}
	if src.perIter <= 0 {
		src.perIter = 1
	}
	ecfg := core.MirrorEngineConfig(proto, np, seriesDim, sch, pack)
	ecfg.OnChurn = func(cycle, down int) {
		// Runs inside cycle() with src.mu held; the cumulative cycle
		// index recovers the iteration the resampling belongs to.
		if src.churn != nil {
			src.churn(cycle/src.perIter+1, cycle, down)
		}
	}
	eng, err := sim.New(ecfg, proto.Sampler)
	if err != nil {
		return nil, err
	}
	src.eng = eng
	return src, nil
}

// bindChurn registers the churn observer (the one participant carrying
// the run's Observer; later binds replace earlier ones).
func (src *ScheduleSource) bindChurn(fn func(iter, cycle, down int)) {
	src.mu.Lock()
	src.churn = fn
	src.mu.Unlock()
}

// cycle returns the schedule of cumulative cycle i, drawing forward as
// needed.
func (src *ScheduleSource) cycle(i int) []sim.Scheduled {
	src.mu.Lock()
	defer src.mu.Unlock()
	for len(src.cycles) <= i {
		src.cycles = append(src.cycles, src.eng.DrawCycle())
	}
	return src.cycles[i]
}

// AvgMessages and AvgBytes expose the mirror's scheduled-traffic
// accounting over every cycle drawn so far.
func (src *ScheduleSource) AvgMessages() float64 {
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.eng.AvgMessages()
}

func (src *ScheduleSource) AvgBytes() float64 {
	src.mu.Lock()
	defer src.mu.Unlock()
	return src.eng.AvgBytes()
}

// View returns a fresh cursor over the shared schedule, positioned at
// cycle 0.
func (src *ScheduleSource) View() *ScheduleView {
	return &ScheduleView{src: src}
}

// ScheduleView is one participant's cursor over a shared
// ScheduleSource. Not safe for concurrent use — each participant's main
// protocol loop owns its own view, mirroring how each classic daemon
// owned its own engine.
type ScheduleView struct {
	src *ScheduleSource
	pos int
}

// DrawCycle returns the next cycle's schedule, identical across every
// view of the same source.
func (v *ScheduleView) DrawCycle() []sim.Scheduled {
	c := v.src.cycle(v.pos)
	v.pos++
	return c
}

// AvgMessages and AvgBytes delegate to the shared source.
func (v *ScheduleView) AvgMessages() float64 { return v.src.AvgMessages() }
func (v *ScheduleView) AvgBytes() float64    { return v.src.AvgBytes() }
