package node

import (
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns one end of a net.Pipe with the other end drained
// and discarded.
func pipeEnd(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a
}

// TestConnSetConcurrent hammers one connSet from many goroutines —
// adds, removes and a mid-flight closeAll — under the race detector:
// the shutdown path must tolerate connections arriving while the set
// is being torn down.
func TestConnSetConcurrent(t *testing.T) {
	var cs connSet
	const workers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				a, b := net.Pipe()
				if !cs.add(a) {
					// Set already closed: the caller must close the
					// connection itself.
					_ = a.Close()
				} else if i%2 == 0 {
					cs.remove(a)
					_ = a.Close()
				}
				_ = b.Close()
			}
		}()
	}
	close(start)
	time.Sleep(time.Millisecond)
	cs.closeAll()
	wg.Wait()
	// After closeAll, every add must be refused.
	if cs.add(pipeEnd(t)) {
		t.Fatal("add accepted after closeAll")
	}
	// closeAll is idempotent.
	cs.closeAll()
}

// TestConnSetCloseAllClosesTracked pins that closeAll really closes
// what was added and forgets what was removed.
func TestConnSetCloseAllClosesTracked(t *testing.T) {
	var cs connSet
	tracked, peerT := net.Pipe()
	defer peerT.Close()
	removed, peerR := net.Pipe()
	defer peerR.Close()
	defer removed.Close()
	if !cs.add(tracked) || !cs.add(removed) {
		t.Fatal("adds refused on fresh set")
	}
	cs.remove(removed)
	cs.closeAll()
	if _, err := tracked.Read(make([]byte, 1)); err == nil {
		t.Fatal("tracked conn still open after closeAll")
	}
	// The removed conn must have survived closeAll: a write must not
	// fail with "closed pipe" (it times out instead, nobody is reading).
	_ = removed.SetWriteDeadline(time.Now().Add(10 * time.Millisecond))
	if _, err := removed.Write([]byte{1}); err == nil || !err.(net.Error).Timeout() {
		t.Fatalf("removed conn: want deadline timeout, got %v", err)
	}
}
