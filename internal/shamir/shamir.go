// Package shamir implements Shamir secret sharing over Z_m for a
// composite modulus m of unknown factorization, as needed by the
// threshold Damgård–Jurik scheme (Section 3.3.1 of the paper).
//
// Because share indices are generally not invertible modulo a composite
// m, reconstruction uses the standard Δ = ℓ! trick (Shoup/Fouque-
// Poupard-Stern, also used by Damgård–Jurik): the Lagrange coefficients
// are premultiplied by Δ so they become integers, and reconstruction
// yields Δ·secret rather than the secret itself. Callers either divide
// by Δ when gcd(Δ, m) = 1, or absorb Δ into a later exponentiation the
// way threshold Paillier decryption does.
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Share is one point (x, f(x) mod m) of the sharing polynomial.
type Share struct {
	X int      // 1-based share index
	Y *big.Int // f(X) mod m
}

// Split shares secret among nShares parties so that any threshold of
// them can reconstruct it. The polynomial has degree threshold-1 with
// uniformly random coefficients modulo m. random may be nil, in which
// case crypto/rand is used.
func Split(secret, m *big.Int, threshold, nShares int, random io.Reader) ([]Share, error) {
	if threshold < 1 || nShares < threshold {
		return nil, fmt.Errorf("shamir: invalid threshold %d of %d", threshold, nShares)
	}
	if m.Sign() <= 0 {
		return nil, errors.New("shamir: modulus must be positive")
	}
	if secret.Sign() < 0 || secret.Cmp(m) >= 0 {
		return nil, errors.New("shamir: secret out of range [0, m)")
	}
	if random == nil {
		random = rand.Reader
	}
	coeffs := make([]*big.Int, threshold)
	coeffs[0] = new(big.Int).Set(secret)
	for i := 1; i < threshold; i++ {
		c, err := rand.Int(random, m)
		if err != nil {
			return nil, err
		}
		coeffs[i] = c
	}
	shares := make([]Share, nShares)
	for x := 1; x <= nShares; x++ {
		// Horner evaluation of f(x) mod m.
		y := new(big.Int)
		bx := big.NewInt(int64(x))
		for i := threshold - 1; i >= 0; i-- {
			y.Mul(y, bx)
			y.Add(y, coeffs[i])
			y.Mod(y, m)
		}
		shares[x-1] = Share{X: x, Y: y}
	}
	return shares, nil
}

// Delta returns Δ = nShares! as a big integer.
func Delta(nShares int) *big.Int {
	return new(big.Int).MulRange(1, int64(nShares))
}

// Lambda0 returns the integer Lagrange coefficient
//
//	μ_i = Δ · Π_{j∈xs, j≠xi} (-x_j) / (x_i - x_j)
//
// evaluated at 0, where Δ = nShares!. The result is always an integer
// because Δ absorbs every denominator. xs is the set of participating
// share indices; xi must be a member of xs.
func Lambda0(xs []int, xi, nShares int) (*big.Int, error) {
	num := Delta(nShares)
	den := big.NewInt(1)
	seen := false
	for _, xj := range xs {
		if xj == xi {
			seen = true
			continue
		}
		num.Mul(num, big.NewInt(int64(-xj)))
		den.Mul(den, big.NewInt(int64(xi-xj)))
	}
	if !seen {
		return nil, fmt.Errorf("shamir: index %d not in subset", xi)
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		// Cannot happen for distinct indices in [1, nShares]: Δ contains
		// every (x_i - x_j) as a factor.
		return nil, fmt.Errorf("shamir: non-integer Lagrange coefficient for %d", xi)
	}
	return q, nil
}

// ReconstructDelta combines at least `threshold` distinct shares and
// returns Δ·secret mod m, where Δ = nShares!.
func ReconstructDelta(shares []Share, m *big.Int, nShares int) (*big.Int, error) {
	if len(shares) == 0 {
		return nil, errors.New("shamir: no shares")
	}
	xs := make([]int, len(shares))
	dup := make(map[int]bool, len(shares))
	for i, s := range shares {
		if s.X < 1 || s.X > nShares {
			return nil, fmt.Errorf("shamir: share index %d out of range", s.X)
		}
		if dup[s.X] {
			return nil, fmt.Errorf("shamir: duplicate share index %d", s.X)
		}
		dup[s.X] = true
		xs[i] = s.X
	}
	acc := new(big.Int)
	for _, s := range shares {
		mu, err := Lambda0(xs, s.X, nShares)
		if err != nil {
			return nil, err
		}
		term := new(big.Int).Mul(mu, s.Y)
		acc.Add(acc, term)
	}
	return acc.Mod(acc, m), nil
}

// Reconstruct combines shares and returns the secret itself. It requires
// gcd(Δ, m) = 1 (true when m's prime factors all exceed nShares) so that
// Δ can be inverted modulo m.
func Reconstruct(shares []Share, m *big.Int, nShares int) (*big.Int, error) {
	ds, err := ReconstructDelta(shares, m, nShares)
	if err != nil {
		return nil, err
	}
	inv := new(big.Int).ModInverse(Delta(nShares), m)
	if inv == nil {
		return nil, errors.New("shamir: Δ not invertible mod m")
	}
	ds.Mul(ds, inv)
	return ds.Mod(ds, m), nil
}
