package shamir

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestSplitReconstruct(t *testing.T) {
	m := big.NewInt(1000003) // prime > any Δ factor used here
	secret := big.NewInt(123456)
	shares, err := Split(secret, m, 3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 5 {
		t.Fatalf("got %d shares", len(shares))
	}
	got, err := Reconstruct(shares[:3], m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Errorf("reconstructed %v, want %v", got, secret)
	}
}

func TestAnySubsetReconstructs(t *testing.T) {
	m := big.NewInt(999999937)
	secret := big.NewInt(424242)
	const nShares, threshold = 6, 3
	shares, err := Split(secret, m, threshold, nShares, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every 3-subset of 6 shares must reconstruct.
	for a := 0; a < nShares; a++ {
		for b := a + 1; b < nShares; b++ {
			for c := b + 1; c < nShares; c++ {
				sub := []Share{shares[a], shares[b], shares[c]}
				got, err := Reconstruct(sub, m, nShares)
				if err != nil {
					t.Fatalf("subset (%d,%d,%d): %v", a, b, c, err)
				}
				if got.Cmp(secret) != 0 {
					t.Errorf("subset (%d,%d,%d) reconstructed %v", a, b, c, got)
				}
			}
		}
	}
}

func TestMoreThanThresholdWorks(t *testing.T) {
	m := big.NewInt(1000003)
	secret := big.NewInt(7)
	shares, err := Split(secret, m, 2, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(shares, m, 5) // all 5 > threshold 2
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) != 0 {
		t.Errorf("reconstructed %v, want %v", got, secret)
	}
}

func TestBelowThresholdGarbage(t *testing.T) {
	// One share of a 3-threshold sharing carries no information: a single
	// share reconstructs to the share value itself (degenerate Lagrange),
	// which should essentially never equal the secret.
	m := big.NewInt(1000003)
	secret := big.NewInt(31337)
	mismatches := 0
	for trial := 0; trial < 10; trial++ {
		shares, err := Split(secret, m, 3, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reconstruct(shares[:1], m, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Error("single share reconstructed the secret every time; sharing is leaking")
	}
}

func TestReconstructDeltaCompositeModulus(t *testing.T) {
	// The crypto use-case: composite m with unknown factorization, Δ kept
	// on the reconstruction side. Δ·secret mod m must match.
	m := new(big.Int).Mul(big.NewInt(1000003), big.NewInt(999999937))
	secret := big.NewInt(987654321)
	const nShares, threshold = 8, 4
	shares, err := Split(secret, m, threshold, nShares, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ReconstructDelta(shares[2:6], m, nShares)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(Delta(nShares), secret)
	want.Mod(want, m)
	if ds.Cmp(want) != 0 {
		t.Errorf("Δ·secret = %v, want %v", ds, want)
	}
}

func TestLambdaSumsToDeltaQuick(t *testing.T) {
	// Fundamental identity: Σ_i μ_i = Δ when interpolating the constant
	// polynomial f ≡ 1 (all shares equal 1).
	f := func(pick uint8) bool {
		const nShares = 7
		xs := []int{}
		for b := 0; b < nShares; b++ {
			if pick&(1<<b) != 0 {
				xs = append(xs, b+1)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sum := new(big.Int)
		for _, xi := range xs {
			mu, err := Lambda0(xs, xi, nShares)
			if err != nil {
				return false
			}
			sum.Add(sum, mu)
		}
		return sum.Cmp(Delta(nShares)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelta(t *testing.T) {
	if Delta(5).Cmp(big.NewInt(120)) != 0 {
		t.Errorf("Delta(5) = %v, want 120", Delta(5))
	}
	if Delta(1).Cmp(big.NewInt(1)) != 0 {
		t.Errorf("Delta(1) = %v, want 1", Delta(1))
	}
}

func TestErrors(t *testing.T) {
	m := big.NewInt(101)
	if _, err := Split(big.NewInt(1), m, 0, 5, nil); err == nil {
		t.Error("threshold 0 should fail")
	}
	if _, err := Split(big.NewInt(1), m, 6, 5, nil); err == nil {
		t.Error("threshold > nShares should fail")
	}
	if _, err := Split(big.NewInt(200), m, 2, 3, nil); err == nil {
		t.Error("secret >= m should fail")
	}
	if _, err := Split(big.NewInt(1), big.NewInt(0), 1, 1, nil); err == nil {
		t.Error("zero modulus should fail")
	}
	shares, _ := Split(big.NewInt(5), m, 2, 3, nil)
	if _, err := ReconstructDelta(nil, m, 3); err == nil {
		t.Error("no shares should fail")
	}
	dupes := []Share{shares[0], shares[0]}
	if _, err := ReconstructDelta(dupes, m, 3); err == nil {
		t.Error("duplicate shares should fail")
	}
	bad := []Share{{X: 9, Y: big.NewInt(1)}}
	if _, err := ReconstructDelta(bad, m, 3); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := Lambda0([]int{1, 2}, 3, 5); err == nil {
		t.Error("xi not in subset should fail")
	}
}

func TestDeterministicWithReader(t *testing.T) {
	// Split with an explicit zero reader must be deterministic.
	m := big.NewInt(1000003)
	secret := big.NewInt(55)
	zr := zeroReader{}
	a, err := Split(secret, m, 3, 4, zr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(secret, m, 3, 4, zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Y.Cmp(b[i].Y) != 0 {
			t.Fatal("deterministic reader produced differing shares")
		}
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}
