// Package p2p is an asynchronous, goroutine-per-participant runtime for
// the epidemic sum — the concurrency-native counterpart of the
// deterministic cycle engine in internal/sim. There are no global
// rounds: every participant runs its own loop, initiates push-pull
// exchanges with random live peers on its own schedule, and may join or
// leave at any moment (the paper's requirement that the execution "cope
// with arbitrary connections and disconnections").
//
// Exchanges are atomic pairwise state merges guarded by per-node locks
// (consistent lock ordering by id prevents deadlock); this corresponds
// to the full push-pull exchange of Section 3.2. Departures come in two
// flavors:
//
//   - Leave: the graceful protocol — the departing participant hands its
//     (σ, ω) mass to a random live peer, so the global sum estimate is
//     unaffected (an extension beyond the paper, which only bounds the
//     error churn causes);
//   - Crash: the abrupt disconnection of Section 6.1.5 — the state
//     vanishes and the global mass is corrupted accordingly.
package p2p

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/wireproto"
)

// stateBytes is the notional wire size of one exchanged (σ, ω) state —
// what a deployment would put on the wire per leg; used for the byte
// counters so the in-memory runtime reports deployment-shaped numbers.
const stateBytes = 16

// SumNetwork hosts the asynchronous epidemic sum.
type SumNetwork struct {
	interval time.Duration

	mu     sync.RWMutex
	nodes  map[int]*sumNode
	ids    []int // live ids, for O(1) random peer sampling
	nextID int

	// world serializes whole-network snapshots against exchanges:
	// exchanges hold it for read, monitoring methods for write, so
	// TotalMass and Spread observe an exchange-atomic state.
	world sync.RWMutex

	exchanges atomic.Int64
	counters  wireproto.CounterSet
	wg        sync.WaitGroup

	// jitter paces the gossip loops and samples partners from a seeded
	// stream instead of the global source (rngsource invariant).
	jitter  *randx.Jitter
	stopped atomic.Bool
}

type sumNode struct {
	id  int
	net *SumNetwork

	mu    sync.Mutex
	sigma float64
	omega float64
	gone  bool

	stop chan struct{}
}

// NewSumNetwork creates an empty asynchronous network. interval is the
// mean pause between a participant's exchange initiations (jittered
// ±50%); tests use microseconds, a deployment would use seconds.
func NewSumNetwork(interval time.Duration) *SumNetwork {
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &SumNetwork{
		interval: interval,
		nodes:    make(map[int]*sumNode),
		jitter:   randx.NewJitter(0x6A177E12, uint64(interval)),
	}
}

// Join adds a participant holding the given local value and starts its
// gossip loop. The first participant to join carries the epidemic weight
// ω = 1 (Section 3.2, footnote 5). It returns the participant id.
func (n *SumNetwork) Join(value float64) int {
	n.mu.Lock()
	id := n.nextID
	n.nextID++
	node := &sumNode{
		id:    id,
		net:   n,
		sigma: value,
		stop:  make(chan struct{}),
	}
	if len(n.nodes) == 0 {
		node.omega = 1
	}
	n.nodes[id] = node
	n.ids = append(n.ids, id)
	n.mu.Unlock()

	n.wg.Add(1)
	go node.loop()
	return id
}

// Leave removes a participant gracefully: its (σ, ω) state is merged
// into a random live peer, preserving the global mass.
func (n *SumNetwork) Leave(id int) error {
	node, err := n.remove(id)
	if err != nil {
		return err
	}
	// The whole hand-off happens under the world lock so snapshots never
	// observe the mass in flight.
	n.world.RLock()
	defer n.world.RUnlock()
	node.mu.Lock()
	sigma, omega := node.sigma, node.omega
	node.gone = true
	node.mu.Unlock()
	// Hand the mass to a live peer; retry if the chosen heir is itself
	// departing concurrently (its gone flag wins the race), so mass is
	// only lost when the whole population vanishes at once.
	for tries := 0; tries < 64; tries++ {
		peer := n.randomPeer(-1)
		if peer == nil {
			break // nobody left to inherit
		}
		peer.mu.Lock()
		if !peer.gone {
			peer.sigma += sigma
			peer.omega += omega
			peer.mu.Unlock()
			return nil
		}
		peer.mu.Unlock()
	}
	return nil
}

// Crash removes a participant abruptly: its state is lost, corrupting
// the global mass (the churn failure mode of Section 6.1.5).
func (n *SumNetwork) Crash(id int) error {
	node, err := n.remove(id)
	if err != nil {
		return err
	}
	node.mu.Lock()
	node.gone = true
	node.mu.Unlock()
	return nil
}

func (n *SumNetwork) remove(id int) (*sumNode, error) {
	n.mu.Lock()
	node, ok := n.nodes[id]
	if !ok {
		n.mu.Unlock()
		return nil, errors.New("p2p: unknown participant")
	}
	delete(n.nodes, id)
	for i, v := range n.ids {
		if v == id {
			n.ids[i] = n.ids[len(n.ids)-1]
			n.ids = n.ids[:len(n.ids)-1]
			break
		}
	}
	n.mu.Unlock()
	close(node.stop)
	return node, nil
}

// Size returns the number of live participants.
func (n *SumNetwork) Size() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.nodes)
}

// Exchanges returns the total number of completed exchanges.
func (n *SumNetwork) Exchanges() int64 { return n.exchanges.Load() }

// Stats returns the network-wide counters in the same shape the
// transport layer and chiaroscurod export: initiated/responded halves
// of completed exchanges, aborted attempts (a peer crashed between
// selection and lock — the in-memory analogue of an exchange timeout),
// and notional byte volume.
func (n *SumNetwork) Stats() wireproto.Counters { return n.counters.Snapshot() }

// Estimate returns participant id's current estimate σ/ω of the global
// sum, and whether it is defined (ω > 0).
func (n *SumNetwork) Estimate(id int) (float64, bool) {
	n.mu.RLock()
	node, ok := n.nodes[id]
	n.mu.RUnlock()
	if !ok {
		return 0, false
	}
	node.mu.Lock()
	defer node.mu.Unlock()
	if node.omega <= 0 {
		return 0, false
	}
	return node.sigma / node.omega, true
}

// Spread returns the min and max defined estimates across live
// participants, and the fraction of participants with a defined
// estimate — the convergence monitor.
func (n *SumNetwork) Spread() (lo, hi, definedFrac float64) {
	n.world.Lock()
	defer n.world.Unlock()
	n.mu.RLock()
	nodes := make([]*sumNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		nodes = append(nodes, node)
	}
	n.mu.RUnlock()
	lo, hi = 0, 0
	defined := 0
	for _, node := range nodes {
		node.mu.Lock()
		sigma, omega := node.sigma, node.omega
		node.mu.Unlock()
		if omega <= 0 {
			continue
		}
		est := sigma / omega
		if defined == 0 || est < lo {
			lo = est
		}
		if defined == 0 || est > hi {
			hi = est
		}
		defined++
	}
	if len(nodes) == 0 {
		return 0, 0, 0
	}
	return lo, hi, float64(defined) / float64(len(nodes))
}

// TotalMass returns Σσ and Σω over live participants. The snapshot is
// exchange-atomic (no exchange can be half-observed), so it is exact up
// to departures racing with the call.
func (n *SumNetwork) TotalMass() (sigma, omega float64) {
	n.world.Lock()
	defer n.world.Unlock()
	n.mu.RLock()
	nodes := make([]*sumNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		nodes = append(nodes, node)
	}
	n.mu.RUnlock()
	for _, node := range nodes {
		node.mu.Lock()
		sigma += node.sigma
		omega += node.omega
		node.mu.Unlock()
	}
	return sigma, omega
}

// WaitConverged blocks until every live participant's estimate is within
// tol of every other (and all are defined), or the deadline passes. It
// reports whether convergence was reached.
func (n *SumNetwork) WaitConverged(tol float64, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		lo, hi, defined := n.Spread()
		if defined == 1 && hi-lo <= tol {
			return true
		}
		time.Sleep(n.interval)
	}
	return false
}

// Stop terminates every participant loop and waits for them to exit.
// The network is unusable afterwards.
func (n *SumNetwork) Stop() {
	if n.stopped.Swap(true) {
		return
	}
	n.mu.Lock()
	for _, node := range n.nodes {
		close(node.stop)
	}
	n.nodes = make(map[int]*sumNode)
	n.ids = nil
	n.mu.Unlock()
	n.wg.Wait()
}

// randomPeer picks a live participant other than exclude (-1 for none).
func (n *SumNetwork) randomPeer(exclude int) *sumNode {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.ids) == 0 {
		return nil
	}
	for tries := 0; tries < 8; tries++ {
		id := n.ids[n.jitter.IntN(len(n.ids))]
		if id != exclude {
			return n.nodes[id]
		}
	}
	return nil
}

// loop is one participant's autonomous gossip schedule.
func (node *sumNode) loop() {
	defer node.net.wg.Done()
	for {
		// Jittered pause: ±50% around the configured interval, so loops
		// desynchronize naturally (no global rounds).
		pause := node.net.interval/2 + node.net.jitter.DurationN(node.net.interval)
		select {
		case <-node.stop:
			return
		case <-time.After(pause):
		}
		peer := node.net.randomPeer(node.id)
		if peer == nil || peer.id == node.id {
			continue
		}
		node.exchange(peer)
	}
}

// exchange atomically merges the two states to their average (the
// push-pull update rule). Locks are taken in id order so concurrent
// exchanges cannot deadlock.
func (node *sumNode) exchange(peer *sumNode) {
	node.net.world.RLock()
	defer node.net.world.RUnlock()
	first, second := node, peer
	if second.id < first.id {
		first, second = second, first
	}
	first.mu.Lock()
	second.mu.Lock()
	defer second.mu.Unlock()
	defer first.mu.Unlock()
	if node.gone || peer.gone {
		// The peer crashed between selection and lock — the in-memory
		// analogue of a wire exchange abandoned on a deadline.
		node.net.counters.Timeouts.Add(1)
		return
	}
	ms := (node.sigma + peer.sigma) / 2
	mw := (node.omega + peer.omega) / 2
	node.sigma, node.omega = ms, mw
	peer.sigma, peer.omega = ms, mw
	node.net.exchanges.Add(1)
	node.net.counters.Initiated.Add(1)
	node.net.counters.Responded.Add(1)
	node.net.counters.BytesSent.Add(2 * stateBytes) // one state each way
	node.net.counters.BytesRecv.Add(2 * stateBytes)
}
