package p2p

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"
)

func TestAsyncSumConverges(t *testing.T) {
	n := NewSumNetwork(50 * time.Microsecond)
	defer n.Stop()
	const count = 200
	var want float64
	for i := 0; i < count; i++ {
		v := float64(i % 13)
		want += v
		n.Join(v)
	}
	if !n.WaitConverged(1e-6, 10*time.Second) {
		t.Fatal("asynchronous sum did not converge")
	}
	lo, hi, _ := n.Spread()
	if math.Abs(lo-want) > 1e-3 || math.Abs(hi-want) > 1e-3 {
		t.Errorf("estimates [%v, %v], want %v", lo, hi, want)
	}
	if n.Exchanges() == 0 {
		t.Error("no exchanges happened")
	}
}

func TestJoinMidRun(t *testing.T) {
	n := NewSumNetwork(50 * time.Microsecond)
	defer n.Stop()
	var want float64
	for i := 0; i < 50; i++ {
		want += 2
		n.Join(2)
	}
	n.WaitConverged(1e-3, 5*time.Second)
	// Late joiners must be absorbed into the running computation.
	for i := 0; i < 25; i++ {
		want += 4
		n.Join(4)
	}
	if !n.WaitConverged(1e-6, 10*time.Second) {
		t.Fatal("sum did not re-converge after late joins")
	}
	lo, hi, _ := n.Spread()
	if math.Abs(lo-want) > 1e-3 || math.Abs(hi-want) > 1e-3 {
		t.Errorf("estimates [%v, %v] after joins, want %v", lo, hi, want)
	}
}

func TestGracefulLeavePreservesMass(t *testing.T) {
	n := NewSumNetwork(50 * time.Microsecond)
	defer n.Stop()
	ids := make([]int, 0, 60)
	var want float64
	for i := 0; i < 60; i++ {
		v := float64(i)
		want += v
		ids = append(ids, n.Join(v))
	}
	n.WaitConverged(1e-3, 5*time.Second)
	// A third of the population leaves gracefully: the sum estimate must
	// still converge to the ORIGINAL total (their series were part of the
	// computation; the hand-off preserves it).
	for _, id := range ids[:20] {
		if err := n.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	if !n.WaitConverged(1e-6, 10*time.Second) {
		t.Fatal("sum did not re-converge after graceful departures")
	}
	// TotalMass snapshots are exchange-atomic, so conservation holds up
	// to float summation error.
	sigma, omega := n.TotalMass()
	if math.Abs(sigma-want) > 1e-9*want {
		t.Errorf("Σσ = %v after graceful leaves, want %v (mass lost)", sigma, want)
	}
	if math.Abs(omega-1) > 1e-9 {
		t.Errorf("Σω = %v, want 1", omega)
	}
}

func TestCrashCorruptsMass(t *testing.T) {
	n := NewSumNetwork(50 * time.Microsecond)
	defer n.Stop()
	ids := make([]int, 0, 40)
	for i := 0; i < 40; i++ {
		ids = append(ids, n.Join(10))
	}
	n.WaitConverged(1e-3, 5*time.Second)
	// Crash 10 nodes: each takes ~1/40 of the σ mass with it.
	for _, id := range ids[5:15] {
		if err := n.Crash(id); err != nil {
			t.Fatal(err)
		}
	}
	sigma, _ := n.TotalMass()
	if math.Abs(sigma-400) < 1e-6 {
		t.Error("crashes conserved mass exactly; churn corruption not modeled")
	}
	if sigma < 250 || sigma > 400 {
		t.Errorf("Σσ = %v after 25%% crashes, want roughly 300", sigma)
	}
}

func TestUnknownParticipant(t *testing.T) {
	n := NewSumNetwork(time.Millisecond)
	defer n.Stop()
	if err := n.Leave(99); err == nil {
		t.Error("leaving an unknown id must fail")
	}
	if err := n.Crash(99); err == nil {
		t.Error("crashing an unknown id must fail")
	}
	if _, ok := n.Estimate(99); ok {
		t.Error("estimate of unknown id must be undefined")
	}
}

// TestConcurrentChaos stresses joins, leaves, crashes and reads happening
// concurrently with the gossip loops. Run with -race.
func TestConcurrentChaos(t *testing.T) {
	n := NewSumNetwork(20 * time.Microsecond)
	defer n.Stop()
	for i := 0; i < 50; i++ {
		n.Join(1)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churner: joins and removes participants at random.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var local []int
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch rand.IntN(3) {
			case 0:
				local = append(local, n.Join(rand.Float64()*5))
			case 1:
				if len(local) > 0 {
					i := rand.IntN(len(local))
					_ = n.Leave(local[i])
					local = append(local[:i], local[i+1:]...)
				}
			case 2:
				if len(local) > 0 {
					i := rand.IntN(len(local))
					_ = n.Crash(local[i])
					local = append(local[:i], local[i+1:]...)
				}
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	// Reader: hammers the monitoring APIs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n.Spread()
			n.TotalMass()
			n.Size()
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n.Size() == 0 {
		t.Error("population died out entirely")
	}
}

func TestStopIdempotent(t *testing.T) {
	n := NewSumNetwork(time.Millisecond)
	n.Join(1)
	n.Join(2)
	n.Stop()
	n.Stop() // second stop must be a no-op
	if n.Size() != 0 {
		t.Error("network not empty after Stop")
	}
}

func TestStatsMirrorExchanges(t *testing.T) {
	n := NewSumNetwork(100 * time.Microsecond)
	for i := 0; i < 8; i++ {
		n.Join(float64(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Exchanges() < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	n.Stop() // freeze the counters before comparing snapshots
	s := n.Stats()
	if s.Initiated != n.Exchanges() || s.Responded != n.Exchanges() {
		t.Fatalf("stats %d/%d, exchanges %d", s.Initiated, s.Responded, n.Exchanges())
	}
	if s.BytesSent == 0 || s.BytesSent != s.BytesRecv {
		t.Fatalf("byte accounting off: sent %d, recv %d", s.BytesSent, s.BytesRecv)
	}
}
