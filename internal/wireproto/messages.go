package wireproto

import (
	"errors"
	"fmt"
	"math/big"

	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/homenc"
)

// ExchangeHdr tags every exchange-phase message with its scheduled
// slot, which is how peers running the deterministic schedule pair up
// requests with the exchange they are waiting for: iteration, gossip
// cycle within the phase, index within the cycle's schedule, and the
// population indices of both sides.
type ExchangeHdr struct {
	Iter  uint32
	Cycle uint32
	Seq   uint32
	From  uint32
	To    uint32
	Flags byte
}

// FlagAbort on a fin leg tells the responder its half of the exchange
// is lost — the initiator applied its update, the responder must not.
// Modeled mid-exchange churn sends it explicitly; a genuine crash
// produces the same half-completed outcome via the fin timeout.
const FlagAbort byte = 0x01

func (h ExchangeHdr) encode(e *enc) {
	e.u32(h.Iter)
	e.u32(h.Cycle)
	e.u32(h.Seq)
	e.u32(h.From)
	e.u32(h.To)
	e.u8(h.Flags)
}

func decodeHdr(d *dec) ExchangeHdr {
	return ExchangeHdr{
		Iter:  d.u32(),
		Cycle: d.u32(),
		Seq:   d.u32(),
		From:  d.u32(),
		To:    d.u32(),
		Flags: d.u8(),
	}
}

// PeekHdr decodes just the leading ExchangeHdr of an exchange payload,
// letting a listener route a request to its scheduled slot without
// paying for the full (possibly large) message decode.
func PeekHdr(data []byte) (ExchangeHdr, error) {
	d := dec{b: data}
	h := decodeHdr(&d)
	if d.err != nil {
		return ExchangeHdr{}, d.err
	}
	return h, nil
}

// --- membership ---

// Hello is a joiner's first message to any known peer: its population
// index, listen address, the population size it was provisioned for,
// and a digest of its shared protocol parameters. A receiver whose own
// digest differs answers KindReject instead of a roster — the two
// daemons were provisioned inconsistently (different -k, -pack-slots,
// -frac-bits, …) and would diverge silently mid-run otherwise. A zero
// digest is never checked (pre-digest peers).
type Hello struct {
	Index  uint32
	Addr   string
	N      uint32
	Digest uint64
}

// MarshalHello encodes a Hello payload.
func MarshalHello(h Hello) []byte {
	var e enc
	e.u32(h.Index)
	e.str(h.Addr)
	e.u32(h.N)
	e.u64(h.Digest)
	return e.bytes()
}

// UnmarshalHello decodes a Hello payload.
func UnmarshalHello(data []byte, lim Limits) (Hello, error) {
	d := dec{b: data}
	h := Hello{Index: d.u32()}
	h.Addr = d.str(lim.MaxAddrLen)
	h.N = d.u32()
	h.Digest = d.u64()
	return h, d.done()
}

// Resume is a restarted peer's re-announcement: the Hello identity
// fields plus the protocol position its journal replayed to (the last
// committed slot; zero position for a peer that crashed before any
// commit). Receivers validate it exactly like a Hello — same digest
// refusal — then reinstate the peer (suspicion strikes and eviction
// overlays cleared, address relearned) instead of treating it as new.
type Resume struct {
	Index  uint32
	Addr   string
	N      uint32
	Digest uint64
	Iter   uint32
	Phase  uint32
	Cycle  uint32
	Seq    uint32
}

// MarshalResume encodes a Resume payload (KindResume).
func MarshalResume(r Resume) []byte {
	var e enc
	e.u32(r.Index)
	e.str(r.Addr)
	e.u32(r.N)
	e.u64(r.Digest)
	e.u32(r.Iter)
	e.u32(r.Phase)
	e.u32(r.Cycle)
	e.u32(r.Seq)
	return e.bytes()
}

// UnmarshalResume decodes a Resume payload.
func UnmarshalResume(data []byte, lim Limits) (Resume, error) {
	d := dec{b: data}
	r := Resume{Index: d.u32()}
	r.Addr = d.str(lim.MaxAddrLen)
	r.N = d.u32()
	r.Digest = d.u64()
	r.Iter = d.u32()
	r.Phase = d.u32()
	r.Cycle = d.u32()
	r.Seq = d.u32()
	return r, d.done()
}

// Reject is a handshake refusal with a human-readable reason, sent in
// place of a HelloAck when the peers' provisioning disagrees.
type Reject struct {
	Reason string
}

// maxRejectReason bounds the reason string independently of Limits: the
// refusal travels before the peers agree on anything.
const maxRejectReason = 256

// MarshalReject encodes a Reject payload, truncating oversize reasons.
func MarshalReject(r Reject) []byte {
	if len(r.Reason) > maxRejectReason {
		r.Reason = r.Reason[:maxRejectReason]
	}
	var e enc
	e.str(r.Reason)
	return e.bytes()
}

// UnmarshalReject decodes a Reject payload.
func UnmarshalReject(data []byte) (Reject, error) {
	d := dec{b: data}
	r := Reject{Reason: d.str(maxRejectReason)}
	return r, d.done()
}

// ViewItem is one serializable Newscast news item: who (population
// index and dialable address) and how fresh. It is the wire form of a
// newscast.Item extended with the address a real deployment needs.
type ViewItem struct {
	Index     uint32
	Addr      string
	Heartbeat int64
}

// MarshalView encodes a view exchange (or HelloAck roster) payload.
func MarshalView(items []ViewItem) []byte {
	var e enc
	e.u32(uint32(len(items)))
	for _, it := range items {
		e.u32(it.Index)
		e.str(it.Addr)
		e.u64(uint64(it.Heartbeat))
	}
	return e.bytes()
}

// UnmarshalView decodes a view payload, bounded by lim.MaxPeers.
func UnmarshalView(data []byte, lim Limits) ([]ViewItem, error) {
	d := dec{b: data}
	n := int(d.u32())
	if d.err == nil && n > lim.MaxPeers {
		return nil, fmt.Errorf("wireproto: view of %d items exceeds bound %d", n, lim.MaxPeers)
	}
	items := make([]ViewItem, 0, minInt(n, len(data)/7+1))
	for i := 0; i < n; i++ {
		it := ViewItem{Index: d.u32()}
		it.Addr = d.str(lim.MaxAddrLen)
		it.Heartbeat = int64(d.u64())
		if d.err != nil {
			break
		}
		items = append(items, it)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return items, nil
}

// Leave is a graceful departure notice.
type Leave struct {
	Index uint32
}

// MarshalLeave encodes a Leave payload.
func MarshalLeave(l Leave) []byte {
	var e enc
	e.u32(l.Index)
	return e.bytes()
}

// UnmarshalLeave decodes a Leave payload.
func UnmarshalLeave(data []byte) (Leave, error) {
	d := dec{b: data}
	l := Leave{Index: d.u32()}
	return l, d.done()
}

// --- encrypted sum phase ---

// SumMsg carries one side's full sum-phase state: the encrypted means
// EESum state, the encrypted noise EESum state running in lockstep, and
// the cleartext participant counter piggybacking on the same exchange.
type SumMsg struct {
	Hdr      ExchangeHdr
	Means    eesum.SumState
	Noise    eesum.SumState
	CtrSigma float64
	CtrOmega float64
}

func encodeSumState(e *enc, st eesum.SumState) {
	e.u32(uint32(len(st.CTs)))
	for _, ct := range st.CTs {
		e.raw(homenc.MarshalInt(ct.V))
	}
	e.raw(homenc.MarshalInt(st.Omega))
	e.u32(uint32(st.Epoch))
}

func decodeSumState(d *dec, lim Limits) eesum.SumState {
	n := int(d.u32())
	if d.err == nil && n > lim.MaxDim {
		d.fail("sum state dimension exceeds bound")
		return eesum.SumState{}
	}
	st := eesum.SumState{CTs: make([]homenc.Ciphertext, 0, minInt(n, len(d.b)/5+1))}
	for i := 0; i < n && d.err == nil; i++ {
		st.CTs = append(st.CTs, homenc.Ciphertext{V: d.bigInt(lim.MaxCTBytes)})
	}
	st.Omega = d.bigInt(lim.MaxCTBytes)
	st.Epoch = int(d.u32())
	return st
}

// MarshalSum encodes a SumMsg payload (KindSumReq and KindSumResp).
func MarshalSum(m SumMsg) []byte {
	var e enc
	m.Hdr.encode(&e)
	encodeSumState(&e, m.Means)
	encodeSumState(&e, m.Noise)
	e.f64(m.CtrSigma)
	e.f64(m.CtrOmega)
	return e.bytes()
}

// UnmarshalSum decodes a SumMsg payload.
func UnmarshalSum(data []byte, lim Limits) (SumMsg, error) {
	d := dec{b: data}
	m := SumMsg{Hdr: decodeHdr(&d)}
	m.Means = decodeSumState(&d, lim)
	m.Noise = decodeSumState(&d, lim)
	m.CtrSigma = d.f64()
	m.CtrOmega = d.f64()
	return m, d.done()
}

// Fin is the bare commit leg closing a sum or dissemination exchange:
// the responder applies its half only when it arrives, which is what
// reproduces the half-completed exchange of Section 6.1.5 when the
// initiator (or the link) dies in between.
type Fin struct {
	Hdr ExchangeHdr
}

// MarshalFin encodes a Fin payload (KindSumFin, KindDissFin).
func MarshalFin(f Fin) []byte {
	var e enc
	f.Hdr.encode(&e)
	return e.bytes()
}

// UnmarshalFin decodes a Fin payload.
func UnmarshalFin(data []byte) (Fin, error) {
	d := dec{b: data}
	f := Fin{Hdr: decodeHdr(&d)}
	return f, d.done()
}

// --- noise-correction dissemination ---

// DissMsg carries one side's correction proposal: the random identifier
// and the surplus correction vector (min identifier wins, Section
// 4.2.2).
type DissMsg struct {
	Hdr ExchangeHdr
	ID  uint64
	Vec []float64
}

// MarshalDiss encodes a DissMsg payload (KindDissReq, KindDissResp).
func MarshalDiss(m DissMsg) []byte {
	var e enc
	m.Hdr.encode(&e)
	e.u64(m.ID)
	e.u32(uint32(len(m.Vec)))
	for _, v := range m.Vec {
		e.f64(v)
	}
	return e.bytes()
}

// UnmarshalDiss decodes a DissMsg payload.
func UnmarshalDiss(data []byte, lim Limits) (DissMsg, error) {
	d := dec{b: data}
	m := DissMsg{Hdr: decodeHdr(&d), ID: d.u64()}
	n := int(d.u32())
	if d.err == nil && n > lim.MaxDim {
		return m, fmt.Errorf("wireproto: correction vector of %d exceeds bound %d", n, lim.MaxDim)
	}
	m.Vec = make([]float64, 0, minInt(n, len(d.b)/8+1))
	for i := 0; i < n && d.err == nil; i++ {
		m.Vec = append(m.Vec, d.f64())
	}
	return m, d.done()
}

// --- epidemic decryption ---

// DecMsg carries one side's epidemic decryption state — the ciphertext
// vector it is decrypting, the weight that decodes it, and the partial
// decryptions gathered so far — plus, on the response and fin legs,
// the sender's own key-share applied to the receiver's (post-adoption)
// ciphertexts. Fresh is empty on KindDecReq; CTs/Omega/Parts are empty
// on KindDecFin.
type DecMsg struct {
	Hdr   ExchangeHdr
	CTs   []homenc.Ciphertext
	Omega *big.Int
	Parts map[int][]homenc.PartialDecryption
	Fresh []homenc.PartialDecryption
}

func encodePartials(e *enc, ps []homenc.PartialDecryption) {
	e.u32(uint32(len(ps)))
	for _, p := range ps {
		e.u32(uint32(p.Index))
		e.raw(homenc.MarshalInt(p.V))
	}
}

func decodePartials(d *dec, lim Limits) []homenc.PartialDecryption {
	n := int(d.u32())
	if d.err == nil && n > lim.MaxDim+1 {
		d.fail("partials vector exceeds bound")
		return nil
	}
	ps := make([]homenc.PartialDecryption, 0, minInt(n, len(d.b)/9+1))
	for i := 0; i < n && d.err == nil; i++ {
		idx := int(d.u32())
		v := d.bigInt(lim.MaxCTBytes)
		ps = append(ps, homenc.PartialDecryption{Index: idx, V: v})
	}
	return ps
}

// MarshalDec encodes a DecMsg payload (KindDecReq, KindDecResp,
// KindDecFin).
func MarshalDec(m DecMsg) []byte {
	var e enc
	m.Hdr.encode(&e)
	e.u32(uint32(len(m.CTs)))
	for _, ct := range m.CTs {
		e.raw(homenc.MarshalInt(ct.V))
	}
	if m.Omega == nil {
		e.raw(homenc.MarshalInt(big.NewInt(0)))
	} else {
		e.raw(homenc.MarshalInt(m.Omega))
	}
	e.u16(uint16(len(m.Parts)))
	// Canonical share-index order: encoding must not depend on map
	// iteration order (peers compare and hash frames in tests).
	idxs := make([]int, 0, len(m.Parts))
	for idx := range m.Parts {
		idxs = append(idxs, idx)
	}
	sortInts(idxs)
	for _, idx := range idxs {
		e.u32(uint32(idx))
		encodePartials(&e, m.Parts[idx])
	}
	encodePartials(&e, m.Fresh)
	return e.bytes()
}

// UnmarshalDec decodes a DecMsg payload.
func UnmarshalDec(data []byte, lim Limits) (DecMsg, error) {
	d := dec{b: data}
	m := DecMsg{Hdr: decodeHdr(&d)}
	n := int(d.u32())
	if d.err == nil && n > lim.MaxDim {
		return m, fmt.Errorf("wireproto: ciphertext vector of %d exceeds bound %d", n, lim.MaxDim)
	}
	m.CTs = make([]homenc.Ciphertext, 0, minInt(n, len(d.b)/5+1))
	for i := 0; i < n && d.err == nil; i++ {
		m.CTs = append(m.CTs, homenc.Ciphertext{V: d.bigInt(lim.MaxCTBytes)})
	}
	m.Omega = d.bigInt(lim.MaxCTBytes)
	nParts := int(d.u16())
	if d.err == nil && nParts > lim.MaxParts {
		return m, fmt.Errorf("wireproto: %d partial sets exceed bound %d", nParts, lim.MaxParts)
	}
	m.Parts = make(map[int][]homenc.PartialDecryption, nParts)
	for i := 0; i < nParts && d.err == nil; i++ {
		idx := int(d.u32())
		ps := decodePartials(&d, lim)
		if d.err == nil {
			if _, dup := m.Parts[idx]; dup {
				return m, errors.New("wireproto: duplicate partial share index")
			}
			m.Parts[idx] = ps
		}
	}
	m.Fresh = decodePartials(&d, lim)
	return m, d.done()
}

// bigInt consumes one homenc canonical integer from the cursor.
func (d *dec) bigInt(maxBytes int) *big.Int {
	if d.err != nil {
		return nil
	}
	v, rest, err := homenc.UnmarshalIntBound(d.b, maxBytes)
	if err != nil {
		d.err = err
		return nil
	}
	d.b = rest
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortInts(v []int) {
	// Insertion sort: share-index sets are tiny (≤ τ).
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
