// Package wireproto is Chiaroscuro's binary wire protocol: the framing
// and message encodings that carry every protocol interaction of the
// Diptych between real peers — Newscast view exchanges, the encrypted
// means/noise push-pull (EESum states as homenc wire encodings), the
// noise-correction dissemination, epidemic partial-decryption shares,
// and membership (hello/roster/leave).
//
// A frame is
//
//	uint32 BE  length of everything after this field
//	byte       protocol version (Version or Version2)
//	byte       message kind (Kind*)
//	uint64 BE  population epoch — identifies the run a peer belongs to;
//	           frames from another epoch are rejected at the door
//	uint32 BE  target population index (Version2 frames only) — lets a
//	           multiplexed listener route the frame to a co-located
//	           virtual node without decoding the payload
//	payload    kind-specific binary encoding
//
// Every decoder takes explicit Limits so a malicious frame cannot force
// allocations beyond what its own bytes justify; integers and
// ciphertexts reuse homenc's canonical bounded encoding.
package wireproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version byte for untargeted frames. A peer
// speaking an unknown version is rejected (no negotiation: populations
// are provisioned together).
const Version = 1

// Version2 frames carry a 4-byte target population index after the
// epoch, so a multiplexed listener hosting many virtual nodes can route
// the frame without decoding the payload. Readers accept both versions
// (a Version frame decodes with Target == -1), which keeps single-node
// daemons bump-compatible with multiplexing peers.
const Version2 = 2

// Message kinds.
const (
	// Membership and connectivity.
	KindHello    byte = 0x01 // joiner -> bootstrap: index + listen address
	KindHelloAck byte = 0x02 // bootstrap -> joiner: current roster view
	KindView     byte = 0x03 // Newscast view push (either direction)
	KindLeave    byte = 0x04 // graceful departure notice
	KindReject   byte = 0x05 // handshake refusal: typed reason (config mismatch)
	// Crash recovery: a peer relaunched from its journal re-announces
	// itself with its protocol position instead of joining as new, so
	// receivers reconcile the roster and reinstate it from suspicion
	// rather than treating it as a fresh (or evicted) participant.
	KindResume    byte = 0x06 // restarted peer -> anyone: identity + journal position
	KindResumeAck byte = 0x07 // receiver -> restarted peer: current roster view

	// Encrypted sum phase (means + noise EESum lockstep + counter).
	KindSumReq  byte = 0x10 // initiator state push
	KindSumResp byte = 0x11 // responder pre-merge state
	KindSumFin  byte = 0x12 // commit: responder applies its half

	// Noise-correction min-identifier dissemination.
	KindDissReq  byte = 0x20
	KindDissResp byte = 0x21
	KindDissFin  byte = 0x22

	// Epidemic threshold decryption.
	KindDecReq  byte = 0x30 // initiator decryption state
	KindDecResp byte = 0x31 // responder pre-merge state + its share's partials for the initiator
	KindDecFin  byte = 0x32 // initiator's share partials for the responder; commit
)

// maxFrameHard is the absolute frame-size ceiling regardless of Limits:
// no Chiaroscuro message legitimately approaches it.
const maxFrameHard = 1 << 28

// ErrMalformed marks frames that decoded wrongly at the framing layer —
// over-limit lengths, impossible headers, version mismatches — as
// opposed to plain I/O failures (a peer dying mid-frame). Receivers use
// it to count hostile input separately from network weather.
var ErrMalformed = errors.New("wireproto: malformed frame")

// headerBytes is the fixed frame overhead after the length prefix;
// headerBytesV2 additionally covers the target index.
const (
	headerBytes   = 1 + 1 + 8
	headerBytesV2 = headerBytes + 4
)

// Frame is one decoded wire frame. Target is the routed population
// index of a Version2 frame, or -1 for an untargeted Version frame.
type Frame struct {
	Kind    byte
	Epoch   uint64
	Target  int
	Payload []byte
}

// FrameWireSize is the on-the-wire byte count of a frame with the given
// target (< 0: untargeted Version frame) and payload length — the unit
// both ends use for byte accounting, so Figure 5(b) wire numbers stay
// honest whatever transport the frame travels on.
func FrameWireSize(target, payloadLen int) int {
	if target < 0 {
		return 4 + headerBytes + payloadLen
	}
	return 4 + headerBytesV2 + payloadLen
}

// WriteFrame writes one untargeted (Version) frame.
func WriteFrame(w io.Writer, kind byte, epoch uint64, payload []byte) error {
	return WriteFrameTarget(w, kind, epoch, -1, payload)
}

// WriteFrameTarget writes one frame addressed to a population index; a
// negative target writes the classic untargeted Version frame instead,
// so callers can thread the destination through unconditionally.
func WriteFrameTarget(w io.Writer, kind byte, epoch uint64, target int, payload []byte) error {
	if len(payload) > maxFrameHard-headerBytesV2 {
		return fmt.Errorf("wireproto: payload of %d bytes exceeds the frame ceiling", len(payload))
	}
	hdr := headerBytes
	if target >= 0 {
		hdr = headerBytesV2
	}
	buf := make([]byte, 4+hdr+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(hdr+len(payload)))
	buf[4] = Version
	buf[5] = kind
	binary.BigEndian.PutUint64(buf[6:], epoch)
	if target >= 0 {
		buf[4] = Version2
		binary.BigEndian.PutUint32(buf[14:], uint32(target))
	}
	copy(buf[4+hdr:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame of either version, rejecting frames longer
// than maxFrame (a value <= 0 uses the hard ceiling) before allocating
// the payload.
func ReadFrame(r io.Reader, maxFrame int) (Frame, error) {
	if maxFrame <= 0 || maxFrame > maxFrameHard {
		maxFrame = maxFrameHard
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerBytes {
		return Frame{}, fmt.Errorf("%w: frame shorter than its header", ErrMalformed)
	}
	if uint64(n) > uint64(maxFrame)+headerBytesV2-headerBytes {
		return Frame{}, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrMalformed, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	f := Frame{
		Kind:    body[1],
		Epoch:   binary.BigEndian.Uint64(body[2:10]),
		Target:  -1,
		Payload: body[10:],
	}
	switch body[0] {
	case Version:
	case Version2:
		if n < headerBytesV2 {
			return Frame{}, fmt.Errorf("%w: targeted frame shorter than its header", ErrMalformed)
		}
		f.Target = int(binary.BigEndian.Uint32(body[10:14]))
		f.Payload = body[14:]
	default:
		return Frame{}, fmt.Errorf("%w: version %d, want %d or %d", ErrMalformed, body[0], Version, Version2)
	}
	return f, nil
}

// Limits bounds every allocation a decoder performs on behalf of a
// remote peer. The zero value is unusable; build one from the scheme
// and protocol dimensions with NewLimits.
type Limits struct {
	MaxCTBytes  int // ciphertext / weight / partial magnitude bound
	MaxDim      int // protocol vector length bound (k·(n+1) slots)
	MaxParts    int // gathered partial-decryption share bound (τ)
	MaxPeers    int // roster / view entries bound
	MaxAddrLen  int // peer address string bound
	MaxFrameLen int // whole-frame bound derived from the above
}

// NewLimits derives decoder limits from the deployment's actual sizes:
// ctBytes is the scheme's ciphertext wire size, dim the protocol vector
// length, parts the decryption threshold, peers the population bound.
func NewLimits(ctBytes, dim, parts, peers int) Limits {
	l := Limits{
		// Weights grow by one bit per exchange epoch on top of the
		// plaintext size; doubling the ciphertext bound leaves orders of
		// magnitude of slack while still refusing absurd frames.
		MaxCTBytes: 2*ctBytes + 64,
		MaxDim:     dim,
		MaxParts:   parts,
		MaxPeers:   peers,
		MaxAddrLen: 256,
	}
	// A decryption response is the largest message: a full state (dim
	// ciphertexts) plus up to parts×dim gathered partials plus dim fresh
	// partials, each integer costing at most MaxCTBytes+5 bytes.
	perInt := l.MaxCTBytes + 16
	l.MaxFrameLen = headerBytes + 64 + (parts+2)*(dim+1)*perInt + peers*(l.MaxAddrLen+16)
	if l.MaxFrameLen > maxFrameHard {
		l.MaxFrameLen = maxFrameHard
	}
	return l
}

// --- primitive cursors ---

// enc is an append-only payload builder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)  { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) raw(p []byte)  { e.b = append(e.b, p...) }
func (e *enc) str(s string)  { e.u16(uint16(len(s))); e.b = append(e.b, s...) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) bytes() []byte { return e.b }

// dec is a sticky-error payload reader.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = errors.New("wireproto: " + msg)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("short payload")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail("short payload")
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("short payload")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("short payload")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str(maxLen int) string {
	n := int(d.u16())
	if d.err != nil {
		return ""
	}
	if n > maxLen {
		d.fail("string exceeds bound")
		return ""
	}
	if len(d.b) < n {
		d.fail("short payload")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return errors.New("wireproto: trailing bytes")
	}
	return nil
}
