package wireproto

import "sync/atomic"

// CounterSet is the live wire-level accounting every networked
// component keeps: exchanges by role, timeouts, fault-tolerance
// activity and byte volume. It is safe for concurrent use; Snapshot
// returns a consistent-enough copy for metrics export (fields are read
// independently, which is fine for monotone counters).
type CounterSet struct {
	Initiated atomic.Int64 // exchanges this peer started
	Responded atomic.Int64 // exchanges this peer answered
	Timeouts  atomic.Int64 // exchanges abandoned on a deadline
	Rejected  atomic.Int64 // frames refused (bad version/epoch/bounds)
	BadFrames atomic.Int64 // malformed or over-limit frames that dropped a connection
	Retries   atomic.Int64 // exchange attempts retried after a transient failure
	Suspected atomic.Int64 // consecutive-failure strikes recorded against peers
	Evicted   atomic.Int64 // peers evicted from the address book by suspicion
	Resumed   atomic.Int64 // resume announcements accepted from restarted peers
	BytesSent atomic.Int64
	BytesRecv atomic.Int64
}

// Counters is a plain snapshot of a CounterSet.
type Counters struct {
	Initiated int64
	Responded int64
	Timeouts  int64
	Rejected  int64
	BadFrames int64
	Retries   int64
	Suspected int64
	Evicted   int64
	Resumed   int64
	BytesSent int64
	BytesRecv int64
}

// Snapshot copies the current counter values.
func (c *CounterSet) Snapshot() Counters {
	return Counters{
		Initiated: c.Initiated.Load(),
		Responded: c.Responded.Load(),
		Timeouts:  c.Timeouts.Load(),
		Rejected:  c.Rejected.Load(),
		BadFrames: c.BadFrames.Load(),
		Retries:   c.Retries.Load(),
		Suspected: c.Suspected.Load(),
		Evicted:   c.Evicted.Load(),
		Resumed:   c.Resumed.Load(),
		BytesSent: c.BytesSent.Load(),
		BytesRecv: c.BytesRecv.Load(),
	}
}

// Restore overwrites the live counters with a snapshot — the
// crash-recovery path: a node relaunched from its journal continues
// counting where its last durable checkpoint left off, so replayed
// runs report totals comparable to uncrashed ones.
func (c *CounterSet) Restore(s Counters) {
	c.Initiated.Store(s.Initiated)
	c.Responded.Store(s.Responded)
	c.Timeouts.Store(s.Timeouts)
	c.Rejected.Store(s.Rejected)
	c.BadFrames.Store(s.BadFrames)
	c.Retries.Store(s.Retries)
	c.Suspected.Store(s.Suspected)
	c.Evicted.Store(s.Evicted)
	c.Resumed.Store(s.Resumed)
	c.BytesSent.Store(s.BytesSent)
	c.BytesRecv.Store(s.BytesRecv)
}

// Exchanges returns the total exchange count (both roles).
func (c Counters) Exchanges() int64 { return c.Initiated + c.Responded }
