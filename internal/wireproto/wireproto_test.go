package wireproto

import (
	"bytes"
	"math/big"
	"reflect"
	"strings"
	"testing"

	"chiaroscuro/internal/eesum"
	"chiaroscuro/internal/homenc"
)

func testLimits() Limits { return NewLimits(64, 16, 4, 32) }

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := WriteFrame(&buf, KindSumReq, 42, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, KindLeave, 42, nil); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindSumReq || f.Epoch != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame mismatch: %+v", f)
	}
	f2, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Kind != KindLeave || len(f2.Payload) != 0 {
		t.Fatalf("second frame mismatch: %+v", f2)
	}
}

func TestFrameRejectsOversizeAndBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindView, 1, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), 100); err == nil {
		t.Fatal("oversize frame accepted")
	}
	// Corrupt the version byte.
	raw := buf.Bytes()
	raw[4] = 99
	if _, err := ReadFrame(bytes.NewReader(raw), 0); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
	// A length prefix shorter than the header is refused.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 2, 1, 1}), 0); err == nil {
		t.Fatal("undersize frame accepted")
	}
}

func TestHelloViewLeaveRoundTrip(t *testing.T) {
	lim := testLimits()
	h := Hello{Index: 7, Addr: "127.0.0.1:9000", N: 12}
	got, err := UnmarshalHello(MarshalHello(h), lim)
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	items := []ViewItem{
		{Index: 0, Addr: "127.0.0.1:9000", Heartbeat: 3},
		{Index: 5, Addr: "10.0.0.8:1234", Heartbeat: -1},
	}
	gotItems, err := UnmarshalView(MarshalView(items), lim)
	if err != nil || !reflect.DeepEqual(items, gotItems) {
		t.Fatalf("view round trip: %+v, %v", gotItems, err)
	}
	l := Leave{Index: 3}
	gotLeave, err := UnmarshalLeave(MarshalLeave(l))
	if err != nil || gotLeave != l {
		t.Fatalf("leave round trip: %+v, %v", gotLeave, err)
	}
}

func TestViewRejectsHostileCount(t *testing.T) {
	lim := testLimits()
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := UnmarshalView(hostile, lim); err == nil {
		t.Fatal("hostile view count accepted")
	}
}

func sumState(vals ...int64) eesum.SumState {
	cts := make([]homenc.Ciphertext, len(vals))
	for i, v := range vals {
		cts[i] = homenc.Ciphertext{V: big.NewInt(v)}
	}
	return eesum.SumState{CTs: cts, Omega: big.NewInt(3), Epoch: 5}
}

func sumStatesEqual(a, b eesum.SumState) bool {
	if len(a.CTs) != len(b.CTs) || a.Epoch != b.Epoch || a.Omega.Cmp(b.Omega) != 0 {
		return false
	}
	for i := range a.CTs {
		if a.CTs[i].V.Cmp(b.CTs[i].V) != 0 {
			return false
		}
	}
	return true
}

func TestSumMsgRoundTrip(t *testing.T) {
	lim := testLimits()
	m := SumMsg{
		Hdr:      ExchangeHdr{Iter: 1, Cycle: 2, Seq: 3, From: 4, To: 5},
		Means:    sumState(10, -20, 30),
		Noise:    sumState(7, 8, 9),
		CtrSigma: 12.5,
		CtrOmega: 1,
	}
	got, err := UnmarshalSum(MarshalSum(m), lim)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hdr != m.Hdr || got.CtrSigma != m.CtrSigma || got.CtrOmega != m.CtrOmega {
		t.Fatalf("header/counter mismatch: %+v", got)
	}
	if !sumStatesEqual(got.Means, m.Means) || !sumStatesEqual(got.Noise, m.Noise) {
		t.Fatal("sum states mismatch")
	}
}

func TestSumMsgRejectsOversizeDim(t *testing.T) {
	lim := testLimits()
	cts := make([]homenc.Ciphertext, lim.MaxDim+1)
	for i := range cts {
		cts[i] = homenc.Ciphertext{V: big.NewInt(int64(i))}
	}
	m := SumMsg{Means: eesum.SumState{CTs: cts, Omega: big.NewInt(1)},
		Noise: sumState(1)}
	if _, err := UnmarshalSum(MarshalSum(m), lim); err == nil {
		t.Fatal("oversize dimension accepted")
	}
}

func TestDissAndFinRoundTrip(t *testing.T) {
	lim := testLimits()
	m := DissMsg{Hdr: ExchangeHdr{Iter: 2, Seq: 9, From: 1, To: 2}, ID: 0xDEAD, Vec: []float64{1.5, -2.25}}
	got, err := UnmarshalDiss(MarshalDiss(m), lim)
	if err != nil || got.ID != m.ID || !reflect.DeepEqual(got.Vec, m.Vec) || got.Hdr != m.Hdr {
		t.Fatalf("diss round trip: %+v, %v", got, err)
	}
	f := Fin{Hdr: ExchangeHdr{Iter: 2, Cycle: 1, Seq: 9, From: 1, To: 2}}
	gotF, err := UnmarshalFin(MarshalFin(f))
	if err != nil || gotF != f {
		t.Fatalf("fin round trip: %+v, %v", gotF, err)
	}
}

func TestDecMsgRoundTrip(t *testing.T) {
	lim := testLimits()
	m := DecMsg{
		Hdr:   ExchangeHdr{Iter: 1, Cycle: 4, Seq: 0, From: 2, To: 6},
		CTs:   []homenc.Ciphertext{{V: big.NewInt(99)}, {V: big.NewInt(-100)}},
		Omega: big.NewInt(8),
		Parts: map[int][]homenc.PartialDecryption{
			3: {{Index: 3, V: big.NewInt(11)}, {Index: 3, V: big.NewInt(12)}},
			1: {{Index: 1, V: big.NewInt(21)}, {Index: 1, V: big.NewInt(22)}},
		},
		Fresh: []homenc.PartialDecryption{{Index: 5, V: big.NewInt(31)}, {Index: 5, V: big.NewInt(32)}},
	}
	got, err := UnmarshalDec(MarshalDec(m), lim)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hdr != m.Hdr || got.Omega.Cmp(m.Omega) != 0 || len(got.CTs) != 2 {
		t.Fatalf("dec header mismatch: %+v", got)
	}
	if len(got.Parts) != 2 || len(got.Parts[3]) != 2 || got.Parts[1][1].V.Int64() != 22 {
		t.Fatalf("parts mismatch: %+v", got.Parts)
	}
	if len(got.Fresh) != 2 || got.Fresh[0].Index != 5 || got.Fresh[1].V.Int64() != 32 {
		t.Fatalf("fresh mismatch: %+v", got.Fresh)
	}
	// Encoding is canonical: re-encoding the decoded message yields the
	// identical bytes regardless of map iteration order.
	if !bytes.Equal(MarshalDec(m), MarshalDec(got)) {
		t.Fatal("dec encoding not canonical")
	}
}

func TestDecMsgRejectsDuplicateShares(t *testing.T) {
	lim := testLimits()
	// Hand-build a payload whose two part sets claim the same share index.
	var e enc
	ExchangeHdr{}.encode(&e)
	e.u32(0)                                // no cts
	e.raw(homenc.MarshalInt(big.NewInt(1))) // omega
	e.u16(2)                                // two part sets
	for i := 0; i < 2; i++ {
		e.u32(2) // same share index both times
		e.u32(1) // one partial
		e.u32(2)
		e.raw(homenc.MarshalInt(big.NewInt(7)))
	}
	e.u32(0) // no fresh partials
	if _, err := UnmarshalDec(e.bytes(), lim); err == nil {
		t.Fatal("duplicate share index accepted")
	}
}

func TestGarbagePayloadsError(t *testing.T) {
	lim := testLimits()
	garbage := [][]byte{
		nil,
		{0x00},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0xAB}, 64),
	}
	for _, g := range garbage {
		if _, err := UnmarshalSum(g, lim); err == nil {
			t.Fatalf("sum accepted garbage %x", g)
		}
		if _, err := UnmarshalDec(g, lim); err == nil {
			t.Fatalf("dec accepted garbage %x", g)
		}
		if _, err := UnmarshalDiss(g, lim); err == nil {
			t.Fatalf("diss accepted garbage %x", g)
		}
		if _, err := UnmarshalHello(g, lim); err == nil {
			t.Fatalf("hello accepted garbage %x", g)
		}
	}
}

func TestCounterSet(t *testing.T) {
	var cs CounterSet
	cs.Initiated.Add(3)
	cs.Responded.Add(4)
	cs.BytesSent.Add(100)
	snap := cs.Snapshot()
	if snap.Exchanges() != 7 || snap.BytesSent != 100 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestTargetedFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{9, 8, 7}
	if err := WriteFrameTarget(&buf, KindSumReq, 42, 7, payload); err != nil {
		t.Fatal(err)
	}
	// Untargeted frames still travel as Version on the same stream.
	if err := WriteFrame(&buf, KindSumResp, 42, payload); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindSumReq || f.Epoch != 42 || f.Target != 7 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("targeted frame mismatch: %+v", f)
	}
	f2, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Target != -1 {
		t.Fatalf("v1 frame decoded with target %d, want -1", f2.Target)
	}
	// Target 0 is a real participant, not "no target".
	buf.Reset()
	if err := WriteFrameTarget(&buf, KindDecReq, 1, 0, nil); err != nil {
		t.Fatal(err)
	}
	f3, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Target != 0 {
		t.Fatalf("target 0 decoded as %d", f3.Target)
	}
}

func TestFrameWireSize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindHello, 1, make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if got := FrameWireSize(-1, 5); got != buf.Len() {
		t.Fatalf("v1 wire size %d, want %d", got, buf.Len())
	}
	buf.Reset()
	if err := WriteFrameTarget(&buf, KindHello, 1, 3, make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	if got := FrameWireSize(3, 5); got != buf.Len() {
		t.Fatalf("v2 wire size %d, want %d", got, buf.Len())
	}
}

func TestTargetedFrameAtMaxLenAccepted(t *testing.T) {
	// The 4 extra header bytes of a targeted frame must not push a
	// payload at exactly MaxFrameLen over the reader's bound.
	lim := testLimits()
	var buf bytes.Buffer
	payload := make([]byte, lim.MaxFrameLen-10) // headerBytes = 10
	if err := WriteFrameTarget(&buf, KindSumReq, 1, 2, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, lim.MaxFrameLen); err != nil {
		t.Fatalf("targeted frame at the limit refused: %v", err)
	}
}

func TestHelloDigestRoundTrip(t *testing.T) {
	lim := testLimits()
	h := Hello{Index: 7, Addr: "127.0.0.1:9000", N: 12, Digest: 0xDEADBEEFCAFEF00D}
	got, err := UnmarshalHello(MarshalHello(h), lim)
	if err != nil || got != h {
		t.Fatalf("hello digest round trip: %+v, %v", got, err)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	r := Reject{Reason: "config digest 0123456789abcdef, want fedcba9876543210"}
	got, err := UnmarshalReject(MarshalReject(r))
	if err != nil || got != r {
		t.Fatalf("reject round trip: %+v, %v", got, err)
	}
	// Hostile reason lengths are truncated on marshal, refused on parse.
	long := Reject{Reason: strings.Repeat("x", 10_000)}
	got, err = UnmarshalReject(MarshalReject(long))
	if err != nil || len(got.Reason) > 256 {
		t.Fatalf("oversize reason survived: %d bytes, %v", len(got.Reason), err)
	}
	if _, err := UnmarshalReject([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("hostile reject length accepted")
	}
}
