package mux_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/homenc/damgardjurik"
	"chiaroscuro/internal/mux"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/timeseries"
)

// testSetup is a shared deployment description for sim-vs-wire-vs-
// virtual runs (mirrors the node package's, which is test-private).
type testSetup struct {
	n      int
	data   *timeseries.Dataset
	scheme *damgardjurik.Scheme
	proto  core.Config
}

func newSetup(t *testing.T, n int, churn float64) testSetup {
	t.Helper()
	data, _ := datasets.GenerateCER(n, randx.New(7, 0))
	scheme, err := damgardjurik.NewTestScheme(128, 4, n, max(2, n/3))
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]timeseries.Series, 2)
	for c := range seeds {
		s := make(timeseries.Series, data.Dim())
		for j := range s {
			s[j] = 10 + 30*float64(c)
		}
		seeds[c] = s
	}
	return testSetup{
		n:      n,
		data:   data,
		scheme: scheme,
		proto: core.Config{
			K:             2,
			InitCentroids: seeds,
			DMin:          datasets.CERMin,
			DMax:          datasets.CERMax,
			Epsilon:       1e4, // huge budget: noise cannot wipe centroids
			MaxIterations: 1,
			Exchanges:     10,
			DissCycles:    8,
			DecryptCycles: 10,
			FracBits:      24,
			Seed:          21,
			Churn:         churn,
			MidFailure:    churn > 0,
			Workers:       2,
		},
	}
}

func runSim(t *testing.T, ts testSetup) *core.Result {
	t.Helper()
	nw, err := core.NewNetwork(ts.data, ts.scheme, ts.proto)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// launchTCP runs the population as separate daemons: one TCP listener
// per participant, the pre-mux deployment shape.
func launchTCP(t *testing.T, ts testSetup) []*node.Result {
	t.Helper()
	nodes := make([]*node.Node, ts.n)
	var bootstrap string
	for i := 0; i < ts.n; i++ {
		nd, err := node.New(node.Config{
			Index:           i,
			N:               ts.n,
			Series:          ts.data.Row(i),
			Scheme:          ts.scheme,
			Proto:           ts.proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: 20 * time.Second,
			FinTimeout:      20 * time.Second,
			JoinTimeout:     20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = nd.Close() })
		nodes[i] = nd
		if i == 0 {
			bootstrap = nd.Addr()
		}
	}
	return runAll(t, nodes)
}

// launchVirtual runs the population as virtual nodes: hostSizes[h]
// participants on host h (consecutive indices), the first host
// bootstrapping the rest. One size covering everything is the
// single-process shape; several exercise the cross-host v2-over-TCP
// path and the membership pump.
func launchVirtual(t *testing.T, ts testSetup, hostSizes ...int) []*node.Result {
	t.Helper()
	nodes := make([]*node.Node, 0, ts.n)
	bootstrap := ""
	base := 0
	for _, size := range hostSizes {
		h, err := mux.NewHost(mux.Config{
			N:               ts.n,
			SeriesDim:       ts.data.Dim(),
			Scheme:          ts.scheme,
			Proto:           ts.proto,
			Bootstrap:       bootstrap,
			ExchangeTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = h.Close() })
		for i := base; i < base+size; i++ {
			nd, err := h.AddNode(node.Config{
				Index:           i,
				Series:          ts.data.Row(i),
				ExchangeTimeout: 20 * time.Second,
				FinTimeout:      20 * time.Second,
				JoinTimeout:     20 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, nd)
		}
		if bootstrap == "" {
			bootstrap = h.Addr()
		}
		base += size
	}
	if base != ts.n {
		t.Fatalf("host sizes cover %d of %d participants", base, ts.n)
	}
	return runAll(t, nodes)
}

func runAll(t *testing.T, nodes []*node.Node) []*node.Result {
	t.Helper()
	results := make([]*node.Result, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, nd := range nodes {
		wg.Add(1)
		go func(i int, nd *node.Node) {
			defer wg.Done()
			results[i], errs[i] = nd.Run()
		}(i, nd)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return results
}

func assertCentroidsEqual(t *testing.T, label string, want, got []timeseries.Series) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d centroids, want %d", label, len(got), len(want))
	}
	for c := range want {
		if (want[c] == nil) != (got[c] == nil) {
			t.Fatalf("%s: centroid %d liveness differs", label, c)
		}
		if want[c] == nil {
			continue
		}
		for j := range want[c] {
			if got[c][j] != want[c][j] {
				t.Fatalf("%s: centroid %d[%d] = %v, want %v (bit mismatch)",
					label, c, j, got[c][j], want[c][j])
			}
		}
	}
}

// TestVirtualBitMatchesTCPAndSimulator is the acceptance end-to-end of
// the virtual-node runtime: the same 12-participant population run
// three ways — the in-memory simulator, 12 separate TCP daemons, and 12
// virtual nodes behind one mux.Host — releases bit-identical centroids
// with identical schedule accounting, for every participant.
func TestVirtualBitMatchesTCPAndSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	ts := newSetup(t, 12, 0)
	simRes := runSim(t, ts)
	if len(simRes.Centroids) == 0 {
		t.Fatal("simulator produced no centroids")
	}
	tcp := launchTCP(t, ts)
	virt := launchVirtual(t, ts, 12)
	assertCentroidsEqual(t, "virtual node 0 vs sim", simRes.Centroids, virt[0].Centroids)
	if virt[0].AvgMessages != simRes.AvgMessages || virt[0].AvgBytes != simRes.AvgBytes {
		t.Fatalf("mirror accounting diverged: %v/%v vs %v/%v",
			virt[0].AvgMessages, virt[0].AvgBytes, simRes.AvgMessages, simRes.AvgBytes)
	}
	for i := range tcp {
		assertCentroidsEqual(t, "virtual vs tcp", tcp[i].Centroids, virt[i].Centroids)
		if len(virt[i].Centroids) == 0 {
			t.Fatalf("virtual node %d released no centroids", i)
		}
		if virt[i].Counters.Exchanges() == 0 || virt[i].Counters.BytesSent == 0 {
			t.Fatalf("virtual node %d saw no wire traffic: %+v", i, virt[i].Counters)
		}
	}
}

// TestVirtualChurnMatchesSimulator pins the virtual runtime under the
// Section 6.1.5 churn model: the shared schedule mirror reproduces the
// simulator's churn draws even though one draw now serves every
// co-located participant.
func TestVirtualChurnMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	ts := newSetup(t, 8, 0.3)
	ts.proto.DissCycles = 16
	ts.proto.DecryptCycles = 16
	simRes := runSim(t, ts)
	if len(simRes.Centroids) == 0 {
		t.Fatal("simulator produced no centroids under churn")
	}
	virt := launchVirtual(t, ts, 8)
	assertCentroidsEqual(t, "virtual node 0 vs sim (churn)", simRes.Centroids, virt[0].Centroids)
}

// TestVirtualTwoHostsBitMatchesSimulator splits the population across
// two hosts — co-located pairs on pipes, cross-host pairs on TCP with
// targeted frames, rosters merged through the membership pump — and the
// result must still bit-match the simulator.
func TestVirtualTwoHostsBitMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	ts := newSetup(t, 12, 0)
	simRes := runSim(t, ts)
	virt := launchVirtual(t, ts, 7, 5)
	for i := range virt {
		if i == 0 {
			assertCentroidsEqual(t, "two-host virtual vs sim", simRes.Centroids, virt[0].Centroids)
		}
		if len(virt[i].Centroids) == 0 {
			t.Fatalf("virtual node %d released no centroids", i)
		}
	}
}

// TestHostCloseNoGoroutineLeak pins host shutdown: accept loop, pump,
// per-connection routers and every virtual node's loops are all joined
// by Close (the cancel_test.go discipline, host edition).
func TestHostCloseNoGoroutineLeak(t *testing.T) {
	ts := newSetup(t, 4, 0)
	baseline := runtime.NumGoroutine()
	h, err := mux.NewHost(mux.Config{
		N:         ts.n,
		SeriesDim: ts.data.Dim(),
		Scheme:    ts.scheme,
		Proto:     ts.proto,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ts.n; i++ {
		if _, err := h.AddNode(node.Config{Index: i, Series: ts.data.Row(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Open a routed pipe so shutdown has a live in-flight connection to
	// tear down, not just idle loops.
	conn, err := h.Transport().Dial(1, h.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_ = conn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after Close\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAddNodeValidation pins the host-side provisioning checks.
func TestAddNodeValidation(t *testing.T) {
	ts := newSetup(t, 4, 0)
	h, err := mux.NewHost(mux.Config{N: ts.n, SeriesDim: ts.data.Dim(), Scheme: ts.scheme, Proto: ts.proto})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.AddNode(node.Config{Index: 0, Series: ts.data.Row(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddNode(node.Config{Index: 0, Series: ts.data.Row(0)}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := h.AddNode(node.Config{Index: 1, Series: ts.data.Row(1)[:3]}); err == nil {
		t.Fatal("short series accepted")
	}
}
