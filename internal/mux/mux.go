// Package mux is the virtual-node multiplexer: a runtime hosting
// hundreds to thousands of protocol participants inside one process
// behind a single listener — the piece that turns chiaroscurod from a
// demo daemon into a deployment unit for the paper's massive
// populations.
//
// A Host owns one TCP accept loop and routes inbound frames to its
// virtual nodes by the Version2 frame target (wireproto), so N
// co-located peers cost one listener and one accept goroutine instead
// of N. Untargeted (Version) frames are membership traffic — hello,
// view gossip, leave — handled centrally against the single shared
// address book. Expensive per-participant state is shared across the
// host: one schedule mirror (node.ScheduleSource) instead of one
// sim.Engine per peer, one address book, one scheme instance (whose
// randomizer pools and comb tables are already process-wide).
//
// Co-located pairs exchange over in-process pipe connections
// (net.Pipe) handed out by the host's Transport dialer: same frames,
// same accounting (both ends count wireproto.FrameWireSize), no TCP —
// so Figure 5(b) wire numbers stay honest while a single process
// sustains populations the kernel's socket limits would otherwise cap.
// Pairs on different hosts fall back to TCP with Version2 frames,
// which any single chiaroscurod daemon also accepts (bump-compatible).
//
// Determinism is untouched: virtual nodes run the same main protocol
// loop, mirror the same schedule, and a 12-peer population on one Host
// releases bit-identical centroids to 12 separate daemons and to the
// simulator (pinned by the e2e tests).
package mux

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/homenc"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/node"
	"chiaroscuro/internal/randx"
	"chiaroscuro/internal/wireproto"
)

// Config provisions one Host.
type Config struct {
	// Listen is the shared listener address (default "127.0.0.1:0").
	Listen string
	// N is the total population size (across every host).
	N int
	// SeriesDim is the per-participant time-series length; every
	// participant's series must have it.
	SeriesDim int
	// Scheme is the shared threshold scheme (key material).
	Scheme homenc.Scheme
	// Proto is the shared protocol configuration (seed included).
	Proto core.Config
	// Epoch is the population epoch for the wire (0: derived from seed).
	Epoch uint64
	// Bootstrap is another host's (or daemon's) address; the host pumps
	// its roster there until the shared book covers the population (""
	// for the first/only host).
	Bootstrap string
	// ExchangeTimeout bounds the host's membership I/O and the read of
	// each inbound connection's first frame (default 30s).
	ExchangeTimeout time.Duration
}

// Host is one multiplexed listener and its virtual nodes.
type Host struct {
	cfg    Config
	lim    wireproto.Limits
	epoch  uint64
	digest uint64
	pack   homenc.PackedCodec

	ln   net.Listener
	addr string
	live connSet

	book   *node.Book
	sched  *node.ScheduleSource
	jitter *randx.Jitter // membership-pump pacing, seeded from the protocol seed

	counters wireproto.CounterSet // host-side membership traffic

	mu    sync.Mutex
	nodes map[int]*node.Node

	pumpErr atomic.Value // error: sticky membership-pump refusal

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// NewHost validates the shared configuration (the same checks every
// virtual node would perform), starts the listener and, when a
// bootstrap address is configured, the membership pump.
func NewHost(cfg Config) (*Host, error) {
	if cfg.N < 2 {
		return nil, errors.New("mux: population must be at least 2")
	}
	if cfg.Scheme == nil {
		return nil, errors.New("mux: nil scheme")
	}
	if cfg.Scheme.NumShares() < cfg.N {
		return nil, fmt.Errorf("mux: scheme has %d key-shares for %d participants", cfg.Scheme.NumShares(), cfg.N)
	}
	if cfg.SeriesDim <= 0 {
		return nil, errors.New("mux: series dimension must be positive")
	}
	if cfg.Proto.Epsilon <= 0 {
		return nil, errors.New("mux: epsilon must be positive")
	}
	if cfg.Proto.Threshold != 0 {
		return nil, errors.New("mux: networked runs use the fixed iteration schedule; set Threshold to 0")
	}
	if len(kmeans.Compact(cfg.Proto.InitCentroids)) == 0 {
		return nil, kmeans.ErrNoCentroids
	}
	cfg.Proto = cfg.Proto.Normalize(cfg.N)
	if cfg.Proto.DissCycles <= 0 || cfg.Proto.DecryptCycles <= 0 {
		return nil, errors.New("mux: networked runs need fixed DissCycles and DecryptCycles")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.ExchangeTimeout <= 0 {
		cfg.ExchangeTimeout = 30 * time.Second
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = cfg.Proto.Seed ^ 0xC41A305C0
	}
	pack, err := core.PackingFor(cfg.Proto, cfg.N, cfg.SeriesDim, cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("mux: %w", err)
	}
	sched, err := node.NewScheduleSource(cfg.Proto, cfg.N, cfg.SeriesDim, cfg.Scheme, pack)
	if err != nil {
		return nil, err
	}
	fullDim := len(kmeans.Compact(cfg.Proto.InitCentroids)) * (cfg.SeriesDim + 1)
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	h := &Host{
		cfg:    cfg,
		lim:    wireproto.NewLimits(cfg.Scheme.CiphertextBytes(), fullDim, cfg.Scheme.Threshold(), cfg.N),
		epoch:  cfg.Epoch,
		digest: node.ConfigDigest(cfg.Proto, cfg.N, cfg.SeriesDim, pack),
		pack:   pack,
		ln:     ln,
		addr:   ln.Addr().String(),
		book:   node.NewBook(cfg.N),
		sched:  sched,
		nodes:  make(map[int]*node.Node),
		stop:   make(chan struct{}),
	}
	// Pump pacing draws from the seeded lineage; the stream is keyed by
	// the host's listen address so co-bootstrapping hosts decorrelate.
	h.jitter = randx.NewJitter(cfg.Proto.Seed^0x6A177E12, addrStream(h.addr))
	h.wg.Add(1)
	go h.serve()
	if cfg.Bootstrap != "" {
		h.wg.Add(1)
		go h.pump()
	}
	return h, nil
}

// Addr returns the shared listener address every virtual node
// advertises.
func (h *Host) Addr() string { return h.addr }

// RosterSize returns how many participants the shared book covers.
func (h *Host) RosterSize() int { return h.book.Size() }

// Counters snapshots the host's own membership-traffic counters; the
// routed exchange traffic is credited to the virtual nodes it was
// routed to.
func (h *Host) Counters() wireproto.Counters { return h.counters.Snapshot() }

// Err reports a sticky membership-pump failure — a bootstrap peer that
// refused this host's configuration digest. Virtual nodes then time out
// joining; this surfaces why.
func (h *Host) Err() error {
	if err, ok := h.pumpErr.Load().(error); ok {
		return err
	}
	return nil
}

// AddNode provisions one virtual node on this host. The caller supplies
// the participant-specific fields (Index, Series, Observer, fault
// policy, dialer, hooks); the host fills in everything shared — the
// listener address, book, schedule cursor, epoch and, when no dialer is
// given, the in-process transport. Nodes must be added before the run
// starts.
func (h *Host) AddNode(cfg node.Config) (*node.Node, error) {
	if h.stopped.Load() {
		return nil, errors.New("mux: host closed")
	}
	cfg.N = h.cfg.N
	cfg.Scheme = h.cfg.Scheme
	obs := cfg.Proto.Observer // participant-specific; everything else shared
	cfg.Proto = h.cfg.Proto
	cfg.Proto.Observer = obs
	cfg.External = true
	cfg.Addr = h.addr
	cfg.Book = h.book
	cfg.Schedule = h.sched.View()
	cfg.Epoch = h.epoch
	cfg.Bootstrap = ""
	if len(cfg.Series) != h.cfg.SeriesDim {
		return nil, fmt.Errorf("mux: node %d series has %d points, host expects %d", cfg.Index, len(cfg.Series), h.cfg.SeriesDim)
	}
	if cfg.Dialer == nil {
		cfg.Dialer = h.Transport()
	}
	nd, err := node.New(cfg)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev := h.nodes[cfg.Index]; prev != nil {
		_ = nd.Close()
		return nil, fmt.Errorf("mux: index %d already hosted", cfg.Index)
	}
	h.nodes[cfg.Index] = nd
	return nd, nil
}

// Nodes returns the hosted virtual nodes.
func (h *Host) Nodes() []*node.Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*node.Node, 0, len(h.nodes))
	for _, nd := range h.nodes {
		out = append(out, nd)
	}
	return out
}

// Close stops the listener, closes every virtual node and live
// connection, and joins the host's goroutines.
func (h *Host) Close() error {
	if h.stopped.Swap(true) {
		return nil
	}
	close(h.stop)
	err := h.ln.Close()
	for _, nd := range h.Nodes() {
		_ = nd.Close()
	}
	h.live.closeAll()
	h.wg.Wait()
	return err
}

// serve accepts connections on the shared listener; each is routed by
// its first frame.
func (h *Host) serve() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go h.serveConn(h.track(conn))
	}
}

// serveConn reads one frame and routes it: targeted frames go to the
// virtual node they name (which takes connection ownership — the
// remaining exchange legs travel on it), untargeted frames are
// membership traffic the host answers itself against the shared book.
func (h *Host) serveConn(conn net.Conn) {
	defer h.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(h.cfg.ExchangeTimeout))
	f, err := wireproto.ReadFrame(conn, h.lim.MaxFrameLen)
	if err != nil {
		if errors.Is(err, wireproto.ErrMalformed) {
			h.counters.BadFrames.Add(1)
		}
		_ = conn.Close()
		return
	}
	if f.Epoch != h.epoch {
		h.counters.Rejected.Add(1)
		_ = conn.Close()
		return
	}
	if f.Target >= 0 {
		h.mu.Lock()
		nd := h.nodes[f.Target]
		h.mu.Unlock()
		if nd == nil {
			h.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		_ = conn.SetDeadline(time.Time{})
		nd.Deliver(conn, f)
		return
	}

	h.counters.BytesRecv.Add(int64(wireproto.FrameWireSize(-1, len(f.Payload))))
	_ = conn.SetWriteDeadline(time.Now().Add(h.cfg.ExchangeTimeout))
	switch f.Kind {
	case wireproto.KindHello:
		hello, err := wireproto.UnmarshalHello(f.Payload, h.lim)
		if err != nil || int(hello.N) != h.cfg.N || int(hello.Index) >= h.cfg.N {
			h.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		if hello.Digest != 0 && hello.Digest != h.digest {
			h.counters.Rejected.Add(1)
			_ = h.writeFrame(conn, wireproto.KindReject, wireproto.MarshalReject(wireproto.Reject{
				Reason: fmt.Sprintf("config digest %016x, want %016x (check population/k/frac-bits/pack-slots)", hello.Digest, h.digest),
			}))
			_ = conn.Close()
			return
		}
		h.book.Learn(int(hello.Index), hello.Addr)
		_ = h.writeFrame(conn, wireproto.KindHelloAck, wireproto.MarshalView(h.book.Roster()))
		_ = conn.Close()

	case wireproto.KindResume:
		// A crash-recovered peer re-announcing itself: validate like a
		// hello, then reinstate it with every hosted virtual node — each
		// keeps its own suspicion overlay over the shared book, and all
		// of them must stop fast-failing the returned peer.
		r, err := wireproto.UnmarshalResume(f.Payload, h.lim)
		if err != nil || int(r.N) != h.cfg.N || int(r.Index) >= h.cfg.N {
			h.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		if r.Digest != 0 && r.Digest != h.digest {
			h.counters.Rejected.Add(1)
			_ = h.writeFrame(conn, wireproto.KindReject, wireproto.MarshalReject(wireproto.Reject{
				Reason: fmt.Sprintf("config digest %016x, want %016x (check population/k/frac-bits/pack-slots)", r.Digest, h.digest),
			}))
			_ = conn.Close()
			return
		}
		h.book.Learn(int(r.Index), r.Addr)
		h.mu.Lock()
		nodes := make([]*node.Node, 0, len(h.nodes))
		//lint:orderfree every hosted node is reinstated; order is not protocol state
		for _, nd := range h.nodes {
			nodes = append(nodes, nd)
		}
		h.mu.Unlock()
		for _, nd := range nodes {
			nd.Reinstate(int(r.Index))
		}
		h.counters.Resumed.Add(1)
		_ = h.writeFrame(conn, wireproto.KindResumeAck, wireproto.MarshalView(h.book.Roster()))
		_ = conn.Close()

	case wireproto.KindView:
		items, err := wireproto.UnmarshalView(f.Payload, h.lim)
		if err != nil {
			h.counters.Rejected.Add(1)
			_ = conn.Close()
			return
		}
		h.book.Merge(items)
		_ = h.writeFrame(conn, wireproto.KindView, wireproto.MarshalView(h.book.Roster()))
		_ = conn.Close()

	case wireproto.KindLeave:
		l, err := wireproto.UnmarshalLeave(f.Payload)
		if err == nil && int(l.Index) < h.cfg.N {
			h.book.MarkGone(int(l.Index))
		}
		_ = conn.Close()

	default:
		h.counters.Rejected.Add(1)
		_ = conn.Close()
	}
}

func (h *Host) writeFrame(conn net.Conn, kind byte, payload []byte) error {
	err := wireproto.WriteFrame(conn, kind, h.epoch, payload)
	if err == nil {
		h.counters.BytesSent.Add(int64(wireproto.FrameWireSize(-1, len(payload))))
	}
	return err
}

// pump is the host's membership loop: it announces itself to the
// bootstrap (digest handshake) and pushes/merges rosters until the
// shared book covers the population, so every co-located participant
// joins through one connection stream instead of N hello storms.
func (h *Host) pump() {
	defer h.wg.Done()
	idle := 0
	for h.book.Size() < h.cfg.N {
		if !h.pumpOnce() {
			return // rejected or shut down
		}
		d := 10 * time.Millisecond << min(idle, 6)
		idle++
		t := time.NewTimer(d/2 + h.jitter.DurationN(d/2+1))
		select {
		case <-h.stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// pumpOnce performs one membership round trip with the bootstrap: a
// digest-checked hello announcing one local participant, then a view
// push sharing every local address. Reports false on a terminal
// refusal or shutdown.
func (h *Host) pumpOnce() bool {
	if h.stopped.Load() {
		return false
	}
	conn, err := net.DialTimeout("tcp", h.cfg.Bootstrap, h.cfg.ExchangeTimeout)
	if err != nil {
		return true
	}
	conn = h.track(conn)
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(h.cfg.ExchangeTimeout))
	first := -1
	h.mu.Lock()
	for idx := range h.nodes {
		if first < 0 || idx < first {
			first = idx
		}
	}
	h.mu.Unlock()
	if first < 0 {
		return true // nothing to announce yet
	}
	if err := h.writeFrame(conn, wireproto.KindHello, wireproto.MarshalHello(wireproto.Hello{
		Index: uint32(first), Addr: h.addr, N: uint32(h.cfg.N), Digest: h.digest,
	})); err != nil {
		return true
	}
	f, err := wireproto.ReadFrame(conn, h.lim.MaxFrameLen)
	if err != nil {
		return true
	}
	h.counters.BytesRecv.Add(int64(wireproto.FrameWireSize(f.Target, len(f.Payload))))
	if f.Kind == wireproto.KindReject {
		if r, rerr := wireproto.UnmarshalReject(f.Payload); rerr == nil {
			h.pumpErr.Store(fmt.Errorf("%w: bootstrap %s: %s", node.ErrConfigMismatch, h.cfg.Bootstrap, r.Reason))
		}
		return false
	}
	if f.Kind == wireproto.KindHelloAck {
		if items, err := wireproto.UnmarshalView(f.Payload, h.lim); err == nil {
			h.book.Merge(items)
		}
	}
	// Second leg: push the full local roster so the far side learns
	// every co-located participant, not just the announcer.
	conn2, err := net.DialTimeout("tcp", h.cfg.Bootstrap, h.cfg.ExchangeTimeout)
	if err != nil {
		return true
	}
	conn2 = h.track(conn2)
	defer conn2.Close()
	_ = conn2.SetDeadline(time.Now().Add(h.cfg.ExchangeTimeout))
	if err := h.writeFrame(conn2, wireproto.KindView, wireproto.MarshalView(h.book.Roster())); err != nil {
		return true
	}
	if f, err := wireproto.ReadFrame(conn2, h.lim.MaxFrameLen); err == nil && f.Kind == wireproto.KindView {
		h.counters.BytesRecv.Add(int64(wireproto.FrameWireSize(f.Target, len(f.Payload))))
		if items, err := wireproto.UnmarshalView(f.Payload, h.lim); err == nil {
			h.book.Merge(items)
		}
	}
	return true
}

// Transport returns the host's dialer: co-located destinations (the
// host's own listener address) get a zero-copy in-process pipe whose
// server end feeds the same routing path as an accepted TCP connection;
// anything else is dialed over TCP. Byte accounting is unchanged either
// way — both ends count the frames they write and read.
func (h *Host) Transport() node.Dialer { return hostDialer{h} }

type hostDialer struct{ h *Host }

func (d hostDialer) Dial(peer int, addr string, timeout time.Duration) (net.Conn, error) {
	h := d.h
	if addr == h.addr {
		if h.stopped.Load() {
			return nil, errors.New("mux: host closed")
		}
		client, server := net.Pipe()
		h.wg.Add(1)
		go h.serveConn(h.track(server))
		return client, nil
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// connSet tracks the host's open connections for prompt shutdown
// (mirrors the node runtime's set; pipe ends additionally get closed by
// the virtual node that took ownership — double close is harmless).
type connSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func (cs *connSet) add(c net.Conn) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return false
	}
	if cs.conns == nil {
		cs.conns = make(map[net.Conn]struct{})
	}
	cs.conns[c] = struct{}{}
	return true
}

func (cs *connSet) remove(c net.Conn) {
	cs.mu.Lock()
	delete(cs.conns, c)
	cs.mu.Unlock()
}

func (cs *connSet) closeAll() {
	cs.mu.Lock()
	cs.closed = true
	conns := cs.conns
	cs.conns = nil
	cs.mu.Unlock()
	for c := range conns {
		_ = c.Close()
	}
}

type trackedConn struct {
	net.Conn
	h *Host
}

func (c *trackedConn) Close() error {
	c.h.live.remove(c.Conn)
	return c.Conn.Close()
}

func (h *Host) track(conn net.Conn) net.Conn {
	if !h.live.add(conn) {
		_ = conn.Close()
	}
	return &trackedConn{Conn: conn, h: h}
}

// addrStream folds an address string into a jitter stream id (FNV-1a).
func addrStream(addr string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return h.Sum64()
}
