package chiaroscuro

import (
	"chiaroscuro/internal/dpkmeans"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/randx"
)

// ClusterOptions parametrizes the centralized baselines.
type ClusterOptions struct {
	// InitCentroids seeds the clustering. Required.
	InitCentroids []Series
	// MaxIterations bounds the run (default 10, the paper's n_it^max).
	MaxIterations int
	// Threshold is the θ convergence bound on centroid movement
	// (0 = run all iterations).
	Threshold float64
}

// ClusterStats traces one iteration of a centralized run.
type ClusterStats struct {
	Iteration    int
	Inertia      float64 // intra-cluster inertia (Definition 1)
	Centroids    int     // live centroids
	PostInertia  float64 // inertia against the released (perturbed) means; equals Inertia when unperturbed
	EpsilonSpent float64
}

// ClusterResult is the outcome of a centralized run.
type ClusterResult struct {
	Centroids    []Series   // centroids after the last iteration
	History      [][]Series // released centroids of every iteration (DP runs)
	BestIter     int        // 1-based iteration with the lowest inertia (0 if none)
	Stats        []ClusterStats
	Converged    bool
	TotalEpsilon float64
}

// Best returns the released centroids of the best (lowest-inertia)
// iteration — the paper's methodology for reading a perturbed run, where
// late iterations are expected to drown in noise under GREEDY budgets.
// It falls back to the final centroids when no history is available.
func (r *ClusterResult) Best() []Series {
	if r.BestIter >= 1 && r.BestIter <= len(r.History) {
		return r.History[r.BestIter-1]
	}
	return r.Centroids
}

// Cluster runs plain (non-private) centralized k-means — the paper's
// "No perturbation" baseline.
func Cluster(d *Dataset, opts ClusterOptions) (*ClusterResult, error) {
	maxIt := opts.MaxIterations
	if maxIt <= 0 {
		maxIt = 10
	}
	res, err := kmeans.Run(d, kmeans.Config{
		InitCentroids: opts.InitCentroids,
		Threshold:     opts.Threshold,
		MaxIterations: maxIt,
	})
	if err != nil {
		return nil, err
	}
	out := &ClusterResult{Centroids: res.Centroids, Converged: res.Converged}
	for _, s := range res.Stats {
		out.Stats = append(out.Stats, ClusterStats{
			Iteration:   s.Iteration,
			Inertia:     s.IntraInertia,
			Centroids:   s.Centroids,
			PostInertia: s.IntraInertia,
		})
	}
	return out, nil
}

// DPOptions parametrizes the differentially private centralized run —
// the configuration the paper uses for its quality evaluation at
// millions of series (Section 6.1, item 2).
type DPOptions struct {
	InitCentroids []Series
	// Budget is the ε concentration strategy (Greedy, GreedyFloor,
	// UniformFast). Required.
	Budget Budget
	// DMin, DMax bound each measure; they calibrate the Laplace scale
	// through the Sum sensitivity n·max(|DMin|, |DMax|) (Definition 4).
	DMin, DMax float64
	// Smooth enables the circular moving-average smoothing of the
	// perturbed means (Section 5.2; window = 20% of the series length).
	Smooth bool
	// MaxIterations bounds the run (default 10).
	MaxIterations int
	// Threshold is the θ convergence bound (0 = run all iterations).
	Threshold float64
	// Churn disconnects each series with this probability at every
	// iteration (Section 6.1.5).
	Churn float64
	// Seed makes the run reproducible.
	Seed uint64
}

// ClusterDP runs the perturbed centralized k-means: every iteration's
// cluster sums and counts are released through the Laplace mechanism
// under the budget strategy, then divided, smoothed, and filtered for
// aberrant means exactly as the distributed protocol does.
func ClusterDP(d *Dataset, opts DPOptions) (*ClusterResult, error) {
	res, err := dpkmeans.Run(d, dpkmeans.Config{
		InitCentroids: opts.InitCentroids,
		Budget:        opts.Budget,
		DMin:          opts.DMin,
		DMax:          opts.DMax,
		Smooth:        opts.Smooth,
		MaxIterations: opts.MaxIterations,
		Threshold:     opts.Threshold,
		Churn:         opts.Churn,
		KeepHistory:   true,
		RNG:           randx.New(opts.Seed, 0xD9),
	})
	if err != nil {
		return nil, err
	}
	best, _ := res.BestIteration()
	out := &ClusterResult{
		Centroids:    res.Centroids,
		History:      res.History,
		BestIter:     best,
		Converged:    res.Converged,
		TotalEpsilon: res.TotalEpsilon,
	}
	for _, s := range res.Stats {
		out.Stats = append(out.Stats, ClusterStats{
			Iteration:    s.Iteration,
			Inertia:      s.PreInertia,
			Centroids:    s.CentroidsOut,
			PostInertia:  s.PostInertia,
			EpsilonSpent: s.EpsilonSpent,
		})
	}
	return out, nil
}
