package chiaroscuro

import "context"

// ClusterOptions parametrizes the centralized baselines.
//
// Deprecated: use Options with Mode Centralized and NewJob, which adds
// context cancellation and the Events stream. Cluster remains as a
// thin wrapper and releases bit-identical centroids.
type ClusterOptions struct {
	// InitCentroids seeds the clustering. Required.
	InitCentroids []Series
	// MaxIterations bounds the run (default 10, the paper's n_it^max).
	MaxIterations int
	// Threshold is the θ convergence bound on centroid movement
	// (0 = run all iterations).
	Threshold float64
}

// ClusterStats traces one iteration of a centralized run.
type ClusterStats struct {
	Iteration    int
	Inertia      float64 // intra-cluster inertia (Definition 1)
	Centroids    int     // live centroids
	PostInertia  float64 // inertia against the released (perturbed) means; equals Inertia when unperturbed
	EpsilonSpent float64
}

// ClusterResult is the outcome of a centralized run.
type ClusterResult struct {
	Centroids    []Series   // centroids after the last iteration
	History      [][]Series // released centroids of every iteration (DP runs)
	BestIter     int        // 1-based iteration with the lowest inertia (0 if none)
	Stats        []ClusterStats
	Converged    bool
	TotalEpsilon float64
}

// Best returns the released centroids of the best (lowest-inertia)
// iteration — the paper's methodology for reading a perturbed run, where
// late iterations are expected to drown in noise under GREEDY budgets.
// It falls back to the final centroids when no history is available.
func (r *ClusterResult) Best() []Series {
	if r.BestIter >= 1 && r.BestIter <= len(r.History) {
		return r.History[r.BestIter-1]
	}
	return r.Centroids
}

// clusterResult maps a unified Job result back onto the legacy shape.
func clusterResult(res *Result) *ClusterResult {
	return &ClusterResult{
		Centroids:    res.Centroids,
		History:      res.History,
		BestIter:     res.BestIter,
		Stats:        res.Stats,
		Converged:    res.Converged,
		TotalEpsilon: res.TotalEpsilon,
	}
}

// Cluster runs plain (non-private) centralized k-means — the paper's
// "No perturbation" baseline.
//
// Deprecated: use NewJob with Mode Centralized; Cluster is a thin
// wrapper over it (bit-identical centroids) kept for compatibility.
func Cluster(d *Dataset, opts ClusterOptions) (*ClusterResult, error) {
	job, err := NewJob(d, Options{
		Mode:          Centralized,
		InitCentroids: opts.InitCentroids,
		MaxIterations: max(opts.MaxIterations, 0),
		Threshold:     opts.Threshold,
	})
	if err != nil {
		return nil, err
	}
	res, err := job.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return clusterResult(res), nil
}

// DPOptions parametrizes the differentially private centralized run —
// the configuration the paper uses for its quality evaluation at
// millions of series (Section 6.1, item 2).
//
// Deprecated: use Options with Mode CentralizedDP and NewJob.
type DPOptions struct {
	InitCentroids []Series
	// Budget is the ε concentration strategy (Greedy, GreedyFloor,
	// UniformFast). Required.
	Budget Budget
	// DMin, DMax bound each measure; they calibrate the Laplace scale
	// through the Sum sensitivity n·max(|DMin|, |DMax|) (Definition 4).
	DMin, DMax float64
	// Smooth enables the circular moving-average smoothing of the
	// perturbed means (Section 5.2; window = 20% of the series length).
	Smooth bool
	// MaxIterations bounds the run (default 10).
	MaxIterations int
	// Threshold is the θ convergence bound (0 = run all iterations).
	Threshold float64
	// Churn disconnects each series with this probability at every
	// iteration (Section 6.1.5).
	Churn float64
	// Seed makes the run reproducible.
	Seed uint64
}

// ClusterDP runs the perturbed centralized k-means: every iteration's
// cluster sums and counts are released through the Laplace mechanism
// under the budget strategy, then divided, smoothed, and filtered for
// aberrant means exactly as the distributed protocol does.
//
// Deprecated: use NewJob with Mode CentralizedDP; ClusterDP is a thin
// wrapper over it (bit-identical centroids per seed) kept for
// compatibility.
func ClusterDP(d *Dataset, opts DPOptions) (*ClusterResult, error) {
	job, err := NewJob(d, Options{
		Mode:          CentralizedDP,
		InitCentroids: opts.InitCentroids,
		Budget:        opts.Budget,
		DMin:          opts.DMin,
		DMax:          opts.DMax,
		Smooth:        opts.Smooth,
		MaxIterations: max(opts.MaxIterations, 0),
		Threshold:     opts.Threshold,
		Churn:         opts.Churn,
		Seed:          opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	res, err := job.Run(context.Background())
	if err != nil {
		return nil, err
	}
	return clusterResult(res), nil
}
