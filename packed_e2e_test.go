package chiaroscuro

import "testing"

// TestRunNetworkedPackedMatchesRun pins the packed ciphertext layout
// across the TCP runtime: with an explicit PackSlots >= 2 every frame
// carries ⌈dim/slots⌉ ciphertexts, and the networked run must still
// release bit-identical centroids to the in-memory simulator at the
// same seed. (The auto layout also packs on this s=4 scheme; pinning
// the count keeps the test meaningful if auto-sizing defaults change.)
func TestRunNetworkedPackedMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full crypto e2e")
	}
	data, _ := GenerateCER(8, 14)
	seeds := SeedCentroids("cer", 2, 15)
	scheme, err := NewTestScheme(128, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	diss, dec := FixedPhaseCycles(data.Len())
	opts := NetworkOptions{
		K: 2, InitCentroids: seeds,
		DMin: CERMin, DMax: CERMax,
		Epsilon: 1e4, MaxIterations: 1, Exchanges: 10,
		DissCycles: diss, DecryptCycles: dec,
		// NoiseShares below the population forces a nonzero surplus
		// correction, so the (unpacked, cleartext) correction vector
		// must actually cross the wire and win the min-identifier
		// dissemination — with the default it is all zeros and a broken
		// diss phase would be invisible.
		NoiseShares: 6,
		FracBits:    24, PackSlots: 2, Seed: 44, Workers: 2,
	}
	want, err := Run(data, scheme, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunNetworked(data, scheme, NetworkedOptions{NetworkOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Centroids) != len(want.Centroids) || len(want.Centroids) == 0 {
		t.Fatalf("centroid count %d, want %d (non-zero)", len(got.Centroids), len(want.Centroids))
	}
	for c := range want.Centroids {
		for j := range want.Centroids[c] {
			if got.Centroids[c][j] != want.Centroids[c][j] {
				t.Fatalf("centroid %d[%d]: networked %v, sim %v", c, j, got.Centroids[c][j], want.Centroids[c][j])
			}
		}
	}
	// The packed run must also pack the unpacked baseline's bytes down:
	// same options with PackSlots = 1 moves strictly more bytes.
	unpacked := opts
	unpacked.PackSlots = 1
	ref, err := Run(data, scheme, unpacked)
	if err != nil {
		t.Fatal(err)
	}
	if want.AvgBytes >= ref.AvgBytes {
		t.Fatalf("packed run moved %v bytes/node, unpacked %v — packing must shrink the wire", want.AvgBytes, ref.AvgBytes)
	}
	for c := range ref.Centroids {
		for j := range ref.Centroids[c] {
			if ref.Centroids[c][j] != want.Centroids[c][j] {
				t.Fatalf("centroid %d[%d]: packed %v, unpacked %v — packing must be exact", c, j, want.Centroids[c][j], ref.Centroids[c][j])
			}
		}
	}
}
