package chiaroscuro

import (
	"errors"

	"chiaroscuro/internal/journal"
)

// Sentinel errors of the eager Options validation: NewJob (and the
// legacy entry points, which build Jobs underneath) reject a bad
// configuration up front with one of these, instead of failing deep in
// the protocol stack mid-run. Match with errors.Is; the returned error
// may wrap a sentinel with the offending value.
var (
	// ErrNoData rejects a nil or empty dataset.
	ErrNoData = errors.New("chiaroscuro: nil or empty dataset")
	// ErrNoSeeds rejects a run with no (non-nil) initial centroids.
	// Seeds are required and must be data-independent (privacy).
	ErrNoSeeds = errors.New("chiaroscuro: no initial centroids")
	// ErrSeedLength rejects initial centroids whose length differs from
	// the dataset's series length.
	ErrSeedLength = errors.New("chiaroscuro: initial centroid length does not match the series length")
	// ErrBadMode rejects an unknown Options.Mode.
	ErrBadMode = errors.New("chiaroscuro: unknown run mode")
	// ErrBadK rejects a negative cluster count.
	ErrBadK = errors.New("chiaroscuro: negative cluster count")
	// ErrBadEpsilon rejects a privacy budget that is not positive and
	// finite in a mode that perturbs releases (every mode but
	// Centralized; CentralizedDP accepts a Budget instead).
	ErrBadEpsilon = errors.New("chiaroscuro: privacy budget must be positive and finite")
	// ErrBadRange rejects DMin > DMax (or NaN bounds): the measure range
	// calibrates the Laplace sensitivity and must be a real interval.
	ErrBadRange = errors.New("chiaroscuro: invalid measure range (DMin must not exceed DMax)")
	// ErrBadIterations rejects a negative iteration cap.
	ErrBadIterations = errors.New("chiaroscuro: negative iteration cap")
	// ErrBadThreshold rejects a negative (or NaN) convergence threshold.
	ErrBadThreshold = errors.New("chiaroscuro: invalid convergence threshold")
	// ErrThresholdNetworked rejects a convergence threshold in Networked
	// mode: networked runs use the fixed iteration schedule (no
	// participant can observe global convergence), so θ must be 0.
	ErrThresholdNetworked = errors.New("chiaroscuro: networked runs use the fixed iteration schedule; set Threshold to 0")
	// ErrBadChurn rejects a disconnection probability outside [0, 1).
	ErrBadChurn = errors.New("chiaroscuro: churn must be in [0, 1)")
	// ErrNilScheme rejects a distributed run without an encryption
	// scheme.
	ErrNilScheme = errors.New("chiaroscuro: nil scheme (Simulated and Networked modes need one)")
	// ErrSchemeShares rejects a scheme with fewer key-shares than the
	// population has participants.
	ErrSchemeShares = errors.New("chiaroscuro: scheme has fewer key-shares than participants")
	// ErrTooFewParticipants rejects a distributed run over fewer than 2
	// series (one participant per series).
	ErrTooFewParticipants = errors.New("chiaroscuro: distributed modes need at least 2 participants")
	// ErrBadCycles rejects negative exchange, dissemination, decryption
	// or noise-share counts.
	ErrBadCycles = errors.New("chiaroscuro: negative exchange/cycle/share count")
	// ErrBadWorkers rejects a negative worker count.
	ErrBadWorkers = errors.New("chiaroscuro: negative worker count")
	// ErrBadPackSlots rejects a negative packing slot count.
	ErrBadPackSlots = errors.New("chiaroscuro: negative pack slots")
	// ErrBadFaultPolicy rejects a FaultPolicy with negative knobs
	// (retries, backoff, or suspicion threshold).
	ErrBadFaultPolicy = errors.New("chiaroscuro: invalid fault policy (negative retries, backoff, or suspicion threshold)")
	// ErrJobReused rejects a second Run on the same Job: a Job is one
	// run; build a new one with NewJob.
	ErrJobReused = errors.New("chiaroscuro: job already run (create a new Job per run)")
	// ErrJournalCorrupt surfaces an unreadable crash-recovery journal: a
	// record failed its checksum, a payload decoded out of bounds, or
	// the file's framing is broken beyond the torn tail that an
	// interrupted append legally leaves (that tail is truncated, not an
	// error). A journal that fails this way cannot resume the run; start
	// the participant fresh or restore the file.
	ErrJournalCorrupt = journal.ErrCorrupt
)
