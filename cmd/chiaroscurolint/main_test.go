package main

import (
	"os"
	"path/filepath"
	"testing"

	"chiaroscuro/internal/analysis"
)

// TestTreeIsLintClean runs the full suite over the whole repository —
// the same invocation CI makes — and fails on any finding. Every
// invariant violation must either be fixed or carry a justified
// //lint: annotation before it can merge.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loading and typechecking the whole tree is not short")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/chiaroscurolint -> repo root
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, all)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
