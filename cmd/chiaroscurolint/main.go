// Command chiaroscurolint runs Chiaroscuro's invariant analyzers over
// the tree and exits non-zero on any finding. CI runs it on every PR:
//
//	go run ./cmd/chiaroscurolint ./...
//
// Flags select a subset of analyzers (-checks maporder,rngsource) and
// machine-readable output (-json). See internal/analysis and each
// analyzer package's doc for the invariants and their //lint: escape
// hatches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chiaroscuro/internal/analysis"
	"chiaroscuro/internal/analysis/bigintalias"
	"chiaroscuro/internal/analysis/boundeddecode"
	"chiaroscuro/internal/analysis/maporder"
	"chiaroscuro/internal/analysis/obsalloc"
	"chiaroscuro/internal/analysis/rngsource"
)

// All is the full suite, in diagnostic-prefix order.
var all = []*analysis.Analyzer{
	maporder.Analyzer,
	rngsource.Analyzer,
	boundeddecode.Analyzer,
	bigintalias.Analyzer,
	obsalloc.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chiaroscurolint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := all
	if *checks != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "chiaroscurolint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chiaroscurolint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chiaroscurolint:", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chiaroscurolint:", err)
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type finding struct {
			Analyzer string `json:"analyzer"`
			Position string `json:"position"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(findings))
		for _, f := range findings {
			out = append(out, finding{f.Analyzer, f.Position.String(), f.Message})
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "chiaroscurolint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "chiaroscurolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
